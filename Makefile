# Tier-1: the build/test gate every change must keep green. vet catches
# dropped-error patterns; the GOARCH=386 cross-build catches 32-bit key
# arithmetic regressions (the pq/bandKey int64 invariants) mechanically.
tier1:
	go build ./... && go test ./...
	go vet ./...
	GOARCH=386 go build ./...

# Tier-2: vet + race-checked tests + the chaos smoke + the dense-core bench
# smoke + the incremental-engine bench smoke + the widening-point family
# smoke + a bounded fuzz pass — the concurrency gate for the parallel solver
# (PSW), the differential harness, and the fault-isolation layer.
tier2:
	go vet ./... && go test -race ./...
	$(MAKE) chaos-smoke
	$(MAKE) serve-smoke
	$(MAKE) cpw-smoke
	$(MAKE) bench-smoke
	$(MAKE) incr-smoke
	$(MAKE) slr-smoke
	$(MAKE) fuzz

# Chaos smoke: the seeded fault-injection property tests (every solver
# completes certified or aborts with a resumable checkpoint; PSW pool
# hygiene at workers 1/2/4/8) under the race detector.
chaos-smoke:
	go test -race -count=1 ./internal/chaos

# Serve smoke: the eqsolved daemon under the race detector — wire protocol,
# admission/rejection, preempt/resume bit-identity, mid-solve disconnect and
# network-fault leak checks, the seeded soak, and the daemon binaries
# end-to-end (including eqsolve -connect).
serve-smoke:
	go test -race -count=1 ./internal/serve/... ./cmd/eqsolved ./cmd/eqsolve

# Native fuzzing of the differential harness, the certifier, and the chaos
# property (seed corpora under internal/*/testdata/fuzz). Each target runs
# for FUZZTIME.
FUZZTIME ?= 10s
fuzz:
	go test ./internal/diffsolve -run '^$$' -fuzz '^FuzzSolvers$$' -fuzztime $(FUZZTIME)
	go test ./internal/diffsolve -run '^$$' -fuzz '^FuzzCertify$$' -fuzztime $(FUZZTIME)
	go test ./internal/diffsolve -run '^$$' -fuzz '^FuzzIncremental$$' -fuzztime $(FUZZTIME)
	go test ./internal/chaos -run '^$$' -fuzz '^FuzzChaos$$' -fuzztime $(FUZZTIME)
	go test ./internal/serve/proto -run '^$$' -fuzz '^FuzzProto$$' -fuzztime $(FUZZTIME)
	go test ./internal/ckptcodec -run '^$$' -fuzz '^FuzzCkptDecode$$' -fuzztime $(FUZZTIME)

# Race-check just the solver package (fast inner loop while touching PSW).
race-solver:
	go test -race ./internal/solver/...

# CPW smoke: the chaotic intra-stratum solver's certified claim ladder under
# the race detector — the solver's own tests, the differential worker/core
# sweep with cross-core resume, the adversarial-schedule chaos harness, the
# serving-tier preemption path, and the CLI — plus a reduced giant-SCC bench
# run (-allow-serial: the smoke gate is certification, not speedup).
cpw-smoke:
	go test -race -count=1 -run 'CPW' ./internal/solver ./internal/diffsolve ./internal/chaos ./internal/serve ./cmd/eqsolve
	go run ./cmd/bench -cpw -smoke -allow-serial

# Regenerate the committed machine-readable perf trajectory. bench-psw
# refuses to run on GOMAXPROCS=1 hosts (serial hardware cannot measure
# parallel speedup); pass -allow-serial manually to record correctness-only
# rows with a prominent note in the JSON.
bench-psw:
	go run ./cmd/bench -psw -json BENCH_psw.json

# Regenerate the committed giant-SCC artifact at mega scale (>=1e5 unknowns
# in one SCC): the PSW no-speedup baseline against CPW at workers 1/2/4/8,
# every CPW row certified, plus the eqgen giant-SCC recipe row. Like
# bench-psw this refuses GOMAXPROCS=1 hosts unless -allow-serial is passed.
bench-mega:
	go run ./cmd/bench -cpw -mega -json BENCH_cpw.json

bench-dense:
	go run ./cmd/bench -dense -json BENCH_dense.json

bench-unboxed:
	go run ./cmd/bench -unboxed -json BENCH_unboxed.json

bench-incr:
	go run ./cmd/bench -incr -json BENCH_incr.json

# Regenerate the committed widening-point-family artifact: SLR2/SLR3/SLR4
# precision (interval widths on the WCET suite) and evaluation totals (eqgen
# macro matrix) against the ⊟-everywhere SW baseline, every row certified.
bench-slr:
	go run ./cmd/bench -slr -slrjson BENCH_slr.json

# SLR smoke: the reduced WCET + eqgen matrices — certification and the
# at-least-one-strictly-tighter gate in seconds, without rewriting the
# committed artifact.
slr-smoke:
	go run ./cmd/bench -slr -smoke

# Incremental smoke: the reduced edit-workload matrix — bit-identity of
# every incremental re-solve against its from-scratch control, on all three
# domains, in seconds.
incr-smoke:
	go run ./cmd/bench -incr -smoke

# Bench smoke: the reduced map-vs-dense and dense-vs-unboxed matrices
# (bit-identity gate + timing sanity, minutes not tens of minutes) plus the
# -benchmem micro-benchmarks of the solver hot loops — including the
# zero-alloc unboxed rows. Keeps the compiled cores' perf claims
# continuously exercised without regenerating the committed BENCH_*.json
# artifacts.
bench-smoke:
	go run ./cmd/bench -dense -smoke
	go run ./cmd/bench -unboxed -smoke
	go test ./internal/solver -run '^$$' -bench 'BenchmarkRR|BenchmarkSW|BenchmarkSLRThunk' -benchmem -benchtime 50x

.PHONY: tier1 tier2 chaos-smoke serve-smoke cpw-smoke fuzz race-solver bench-psw bench-mega bench-dense bench-unboxed bench-smoke bench-incr incr-smoke bench-slr slr-smoke
