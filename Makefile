# Tier-1: the build/test gate every change must keep green. vet catches
# dropped-error patterns; the GOARCH=386 cross-build catches 32-bit key
# arithmetic regressions (the pq/bandKey int64 invariants) mechanically.
tier1:
	go build ./... && go test ./...
	go vet ./...
	GOARCH=386 go build ./...

# Tier-2: vet + race-checked tests + a bounded fuzz pass — the concurrency
# gate for the parallel solver (PSW) and the differential solver harness.
tier2:
	go vet ./... && go test -race ./...
	$(MAKE) fuzz

# Native fuzzing of the differential harness and the certifier (seed corpora
# under internal/diffsolve/testdata/fuzz). Each target runs for FUZZTIME.
FUZZTIME ?= 10s
fuzz:
	go test ./internal/diffsolve -run '^$$' -fuzz '^FuzzSolvers$$' -fuzztime $(FUZZTIME)
	go test ./internal/diffsolve -run '^$$' -fuzz '^FuzzCertify$$' -fuzztime $(FUZZTIME)

# Race-check just the solver package (fast inner loop while touching PSW).
race-solver:
	go test -race ./internal/solver/...

# Regenerate the committed machine-readable perf trajectory.
bench-psw:
	go run ./cmd/bench -psw -json BENCH_psw.json

.PHONY: tier1 tier2 fuzz race-solver bench-psw
