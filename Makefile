# Tier-1: the build/test gate every change must keep green.
tier1:
	go build ./... && go test ./...

# Tier-2: vet + race-checked tests — the concurrency gate for the parallel
# solver (PSW) and the concurrent experiment harness.
tier2:
	go vet ./... && go test -race ./...

# Race-check just the solver package (fast inner loop while touching PSW).
race-solver:
	go test -race ./internal/solver/...

# Regenerate the committed machine-readable perf trajectory.
bench-psw:
	go run ./cmd/bench -psw -json BENCH_psw.json

.PHONY: tier1 tier2 race-solver bench-psw
