// Benchmarks regenerating the paper's evaluation artifacts, one group per
// table/figure:
//
//	BenchmarkFig7/*      — Fig. 7: ⊟ vs two-phase precision runs on the
//	                       WCET suite (the measured quantity is solver
//	                       runtime; precision deltas are reported via -v
//	                       metrics).
//	BenchmarkTable1/*    — Table 1: ∇ vs ⊟, without and with context, on
//	                       the SpecCPU-scale synthetic suite.
//	BenchmarkSolvers/*   — solver micro-benchmarks (RR/W/SRR/SW on chain
//	                       systems; cost model of Theorems 1–2).
//	BenchmarkDegrading   — ⊟ₖ ablation on the non-monotonic oscillator.
//
// Run: go test -bench=. -benchmem
package warrow_test

import (
	"fmt"
	"strings"
	"testing"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/eqn"
	"warrow/internal/experiments"
	"warrow/internal/lattice"
	"warrow/internal/precision"
	"warrow/internal/solver"
	"warrow/internal/synth"
	"warrow/internal/wcet"
)

// BenchmarkFig7 measures, per WCET benchmark, the ⊟-solver and the
// two-phase baseline under the Fig. 7 configuration, and reports the
// precision improvement as a custom metric.
func BenchmarkFig7(b *testing.B) {
	for _, bench := range wcet.All() {
		ast, err := cint.Parse(bench.Src)
		if err != nil {
			b.Fatal(err)
		}
		g := cfg.Build(ast)
		b.Run(bench.Name+"/warrow", func(b *testing.B) {
			var last *analysis.Result
			for i := 0; i < b.N; i++ {
				last, err = analysis.Run(g, analysis.Options{Op: analysis.OpWarrow, MaxEvals: 20_000_000})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(last.Stats.Evals), "evals")
			b.ReportMetric(float64(last.NumUnknowns()), "unknowns")
		})
		b.Run(bench.Name+"/twophase", func(b *testing.B) {
			var base *analysis.Result
			for i := 0; i < b.N; i++ {
				base, err = analysis.Run(g, analysis.Options{Op: analysis.OpTwoPhase, MaxEvals: 20_000_000})
				if err != nil {
					b.Fatal(err)
				}
			}
			warrow, err := analysis.Run(g, analysis.Options{Op: analysis.OpWarrow, MaxEvals: 20_000_000})
			if err != nil {
				b.Fatal(err)
			}
			c := precision.Compare(warrow, base)
			b.ReportMetric(c.ImprovedPct(), "%improved")
		})
	}
}

// BenchmarkTable1 measures the four Table 1 configurations per synthetic
// SpecCPU-scale program. The context-sensitive runs are the expensive ones;
// unknown counts are reported as metrics.
func BenchmarkTable1(b *testing.B) {
	type config struct {
		name    string
		ctx     analysis.ContextPolicy
		op      analysis.OpKind
		degrade int
	}
	configs := []config{
		{"noctx/widen", analysis.NoContext, analysis.OpWiden, 0},
		{"noctx/warrow", analysis.NoContext, analysis.OpWarrow, 0},
		{"ctx/widen", analysis.BucketContext, analysis.OpWiden, 0},
		// ⊟₂: the degrading operator of Sec. 4; context-sensitive systems
		// are non-monotonic, so plain ⊟ has no termination guarantee.
		{"ctx/warrow", analysis.BucketContext, analysis.OpWarrow, 2},
	}
	for _, p := range synth.SpecSuite() {
		ast, err := cint.Parse(p.Src)
		if err != nil {
			b.Fatal(err)
		}
		g := cfg.Build(ast)
		for _, c := range configs {
			b.Run(p.Name+"/"+c.name, func(b *testing.B) {
				var last *analysis.Result
				for i := 0; i < b.N; i++ {
					last, err = analysis.Run(g, analysis.Options{
						Context: c.ctx, Op: c.op, DegradeAfter: c.degrade, MaxEvals: 200_000_000,
					})
					if err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(last.NumUnknowns()), "unknowns")
				b.ReportMetric(float64(last.Stats.Evals), "evals")
			})
		}
	}
}

// chainSystem builds the n-unknown chain x_i = x_{i-1}+1 capped at h, a
// worst-case for round-robin and a best case for the structured solvers.
func chainSystem(n int, h uint64) *eqn.System[int, lattice.Nat] {
	sys := eqn.NewSystem[int, lattice.Nat]()
	for i := 0; i < n; i++ {
		i := i
		if i == 0 {
			sys.Define(0, nil, func(func(int) lattice.Nat) lattice.Nat {
				return lattice.NatOf(1)
			})
			continue
		}
		sys.Define(i, []int{i - 1}, func(get func(int) lattice.Nat) lattice.Nat {
			v := get(i - 1)
			if v.IsInf() || v.Val() >= h {
				return lattice.NatOf(h)
			}
			return lattice.NatOf(v.Val() + 1)
		})
	}
	return sys
}

// BenchmarkSolvers compares the generic solvers on the chain system with
// ⊞ = ⊔ — the cost model behind Theorems 1 and 2.
func BenchmarkSolvers(b *testing.B) {
	l := lattice.NatInf
	init := func(int) lattice.Nat { return lattice.NatOf(0) }
	op := solver.Op[int](solver.Join[lattice.Nat](l))
	for _, n := range []int{64, 256} {
		sys := chainSystem(n, 32)
		b.Run(fmt.Sprintf("RR/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.RR(sys, l, op, init, solver.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("W/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.W(sys, l, op, init, solver.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("SRR/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.SRR(sys, l, op, init, solver.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("SW/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := solver.SW(sys, l, op, init, solver.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("SLR/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := solver.SLR(sys.AsPure(), l, op, init, n-1, solver.Config{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPSW compares sequential SW against the parallel SCC-stratified
// solver PSW at 1/2/4/8 workers on the synthetic wide system (independent
// loop nests = independent strata). Solutions are bit-identical by
// construction; the measured quantity is wall clock.
func BenchmarkPSW(b *testing.B) {
	l := lattice.Ints
	sys := experiments.WideSystem(8, 1500, 24)
	init := func(experiments.WideKey) lattice.Interval { return lattice.EmptyInterval }
	op := func() solver.Operator[experiments.WideKey, lattice.Interval] {
		return solver.Op[experiments.WideKey](solver.Warrow[lattice.Interval](l))
	}
	b.Run("SW", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := solver.SW(sys, l, op(), init, solver.Config{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("PSW/workers=%d", w), func(b *testing.B) {
			var st solver.Stats
			for i := 0; i < b.N; i++ {
				var err error
				_, st, err = solver.PSW(sys, l, op(), init, solver.Config{Workers: w})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(st.Strata), "strata")
			b.ReportMetric(float64(st.Evals), "evals")
		})
	}
}

// BenchmarkWarrowVsTwoPhaseSolve measures end-to-end solving cost of ⊟ vs
// the two-phase regime on the loop-heavy WCET programs taken together —
// the "⊟ costs about the same" claim of Sec. 7.
func BenchmarkWarrowVsTwoPhaseSolve(b *testing.B) {
	var graphs []*cfg.Program
	for _, bench := range wcet.All() {
		ast, err := cint.Parse(bench.Src)
		if err != nil {
			b.Fatal(err)
		}
		graphs = append(graphs, cfg.Build(ast))
	}
	b.Run("warrow", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, g := range graphs {
				if _, err := analysis.Run(g, analysis.Options{Op: analysis.OpWarrow, MaxEvals: 20_000_000}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("twophase", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, g := range graphs {
				if _, err := analysis.Run(g, analysis.Options{Op: analysis.OpTwoPhase, MaxEvals: 20_000_000}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkDegrading measures the ⊟ₖ ablation: enforcing termination on a
// non-monotonic oscillator for increasing thresholds k.
func BenchmarkDegrading(b *testing.B) {
	l := lattice.Ints
	osc := eqn.NewSystem[string, lattice.Interval]()
	osc.Define("x", []string{"x"}, func(get func(string) lattice.Interval) lattice.Interval {
		v := get("x")
		if v.IsEmpty() {
			return lattice.Singleton(0)
		}
		if v.Hi.IsPosInf() {
			return lattice.Range(0, 5)
		}
		return lattice.NewInterval(lattice.Fin(0), v.Hi.Add(lattice.Fin(1)))
	})
	init := func(string) lattice.Interval { return lattice.EmptyInterval }
	for _, k := range []int{0, 1, 2, 4} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				deg := solver.NewDegrading[string, lattice.Interval](l, k)
				if _, _, err := solver.SRR(osc, l, deg, init, solver.Config{MaxEvals: 100000}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// The experiments package is exercised here so `go test ./...` covers the
// exact code paths cmd/bench runs.
func TestExperimentsFig7Shape(t *testing.T) {
	r, err := experiments.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 20 {
		t.Fatalf("only %d rows", len(r.Rows))
	}
	if r.WeightedAvg <= 5 {
		t.Errorf("weighted average improvement %.1f%% implausibly low", r.WeightedAvg)
	}
	zero := 0
	for _, row := range r.Rows {
		if row.Improved == 0 {
			zero++
		}
	}
	if zero == 0 {
		t.Error("expected at least one 0%-improvement benchmark (qsort-exam analogue)")
	}
	t.Log("\n" + experiments.FormatFig7(r))
}

func TestExperimentsTraces(t *testing.T) {
	out := experiments.TraceExamples()
	for _, want := range []string{"diverges", "terminated"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace output missing %q:\n%s", want, out)
		}
	}
}

// TestExperimentsCPWSpeedupShape exercises the giant-SCC workload and the
// CPW scaling experiment exactly as cmd/bench -cpw runs them: the system
// must really be one giant component (the envelope's giant_scc stamp), PSW
// must see a single stratum, and every CPW row must come back certified
// (CPWSpeedup errors out otherwise).
func TestExperimentsCPWSpeedupShape(t *testing.T) {
	sys := experiments.GiantSCCSystem(4, 50, 2, 0)
	if frac := experiments.GiantFraction(sys); frac != 1.0 {
		t.Fatalf("giant fraction = %.3f, want 1.0 (ring of chains is one SCC)", frac)
	}
	rows, frac, err := experiments.CPWSpeedup(4, 50, 2, 0, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if frac != 1.0 {
		t.Errorf("reported giant fraction = %.3f, want 1.0", frac)
	}
	if len(rows) != 4 { // psw@1, psw@4, cpw@1, cpw@2
		t.Fatalf("got %d rows, want 4:\n%s", len(rows), experiments.FormatPerfRows(rows))
	}
	for _, r := range rows {
		if r.Unknowns != 200 || r.Evals == 0 {
			t.Errorf("row %s/w=%d: unknowns %d, evals %d", r.Solver, r.Workers, r.Unknowns, r.Evals)
		}
	}
	t.Log("\n" + experiments.FormatPerfRows(rows))
}
