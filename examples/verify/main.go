// Verify: use the ⊟-analysis as a lightweight verifier. Mini-C supports
// assert(e); the analyzer classifies every assertion as proved, failed,
// unknown, or unreachable against the computed interval invariants — and
// the same program run under the two-phase baseline proves strictly fewer
// assertions, because the baseline cannot narrow flow-insensitive globals.
package main

import (
	"fmt"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
)

const program = `
int total = 0;
int last = 0;

void record(int v) {
    total = total + v;
    last = v;
}

int main() {
    int i;
    i = 0;
    while (i < 10) {
        i = i + 1;
        record(i);
    }
    assert(i == 10);        // exact loop exit: proved by both regimes
    assert(last >= 1);      // unknown in both: the initializer last = 0 joins in
    assert(last <= 10);     // proved ONLY by ⊟: needs narrowing the global
    assert(total >= 0);     // proved by both: all contributions are >= 0
    return total;
}
`

func main() {
	prog := cfg.Build(cint.MustParse(program))
	for _, op := range []analysis.OpKind{analysis.OpWarrow, analysis.OpTwoPhase} {
		res, err := analysis.Run(prog, analysis.Options{Op: op})
		if err != nil {
			panic(err)
		}
		fmt.Printf("=== %s ===\n%s\n", op, res.AssertionReport())
	}
}
