// Quickstart: define a small system of interval equations — the constraint
// system of the counting loop
//
//	i = 0; while (i < 100) i = i + 1;
//
// — and solve it with the structured worklist solver SW instantiated with
// the combined widening/narrowing operator ⊟. One solver pass computes the
// exact invariants, with no separate narrowing phase.
package main

import (
	"fmt"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

func main() {
	l := lattice.Ints

	// Unknowns: h = loop head, b = loop body, e = loop exit.
	sys := eqn.NewSystem[string, lattice.Interval]()
	sys.Define("h", []string{"b"}, func(get func(string) lattice.Interval) lattice.Interval {
		// Entry contributes [0,0]; the back edge contributes b+1.
		return l.Join(lattice.Singleton(0), get("b").Add(lattice.Singleton(1)))
	})
	sys.Define("b", []string{"h"}, func(get func(string) lattice.Interval) lattice.Interval {
		return get("h").RestrictLt(lattice.Singleton(100)) // guard i < 100
	})
	sys.Define("e", []string{"h"}, func(get func(string) lattice.Interval) lattice.Interval {
		return get("h").RestrictGe(lattice.Singleton(100)) // guard i >= 100
	})

	bottom := func(string) lattice.Interval { return lattice.EmptyInterval }

	// The combined operator ⊟: widen while values grow, narrow as soon as
	// they stop — interleaved, in one pass (Sec. 3 of the paper).
	warrow := solver.Op[string](solver.Warrow[lattice.Interval](l))
	sigma, stats, err := solver.SW(sys, l, warrow, bottom, solver.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("⊟-solver (SW):")
	for _, x := range sys.Order() {
		fmt.Printf("  %s = %s\n", x, sigma[x])
	}
	fmt.Printf("  (%d right-hand-side evaluations)\n\n", stats.Evals)

	// Compare: plain widening never recovers the upper bounds.
	widen := solver.Op[string](solver.Widen[lattice.Interval](l))
	sigmaW, _, err := solver.SW(sys, l, widen, bottom, solver.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("∇-only solver (SW):")
	for _, x := range sys.Order() {
		fmt.Printf("  %s = %s\n", x, sigmaW[x])
	}
}
