// Globalsolver: build a finite equation system from one function's CFG and
// solve it with the *global* structured solvers — and measure how much the
// linear order matters, as the paper notes (Sec. 4, citing Bourdoncle):
// "the linear ordering should be chosen in a way that innermost loops would
// be evaluated before iteration on outer loops." The same system is solved
// under the Bourdoncle weak-topological order and under the worst-case
// reversed order, with SRR and SW, using the combined operator ⊟.
package main

import (
	"fmt"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

const program = `
int main() {
    int i; int j; int s;
    s = 0;
    for (i = 0; i < 10; i = i + 1) {
        for (j = 0; j < i; j = j + 1) {
            s = s + 1;
        }
    }
    return s;
}
`

// evalE evaluates the +-only integer expressions this program contains.
func evalE(in analysis.Env, x cint.Expr) lattice.Interval {
	switch x := x.(type) {
	case *cint.IntLit:
		return lattice.Singleton(x.Value)
	case *cint.Ident:
		return in.Get(x.Obj.ID)
	case *cint.BinaryExpr:
		if x.Op == cint.TokPlus {
			return evalE(in, x.X).Add(evalE(in, x.Y))
		}
	}
	return lattice.FullInterval
}

// applyEdge is the transfer function for the edge kinds the program uses.
func applyEdge(e *cfg.Edge, in analysis.Env) analysis.Env {
	if in.IsBot() {
		return analysis.BotEnv
	}
	switch e.Kind {
	case cfg.Decl:
		return in.Set(e.Var.ID, lattice.FullInterval)
	case cfg.Assign:
		if id, ok := e.Lhs.(*cint.Ident); ok {
			return in.Set(id.Obj.ID, evalE(in, e.Rhs))
		}
	case cfg.Guard:
		b, ok := e.Cond.(*cint.BinaryExpr)
		if !ok || b.Op != cint.TokLt {
			return in
		}
		id, ok := b.X.(*cint.Ident)
		if !ok {
			return in
		}
		cur := in.Get(id.Obj.ID)
		bound := evalE(in, b.Y)
		if e.Branch {
			return in.Set(id.Obj.ID, cur.RestrictLt(bound))
		}
		return in.Set(id.Obj.ID, cur.RestrictGe(bound))
	case cfg.Ret:
		if e.Rhs != nil {
			return in.Set("@ret", evalE(in, e.Rhs))
		}
	}
	return in
}

func main() {
	prog := cfg.Build(cint.MustParse(program))
	g := prog.Graphs["main"]
	envL := analysis.NewEnvLattice(lattice.Ints)

	buildSystem := func(order []*cfg.Node) *eqn.System[int, analysis.Env] {
		sys := eqn.NewSystem[int, analysis.Env]()
		for _, n := range order {
			if n == g.Entry {
				sys.Define(n.ID, nil, func(func(int) analysis.Env) analysis.Env {
					return analysis.TopEnv
				})
				continue
			}
			var deps []int
			for _, e := range n.In {
				deps = append(deps, e.From.ID)
			}
			in := append([]*cfg.Edge(nil), n.In...)
			sys.Define(n.ID, deps, func(get func(int) analysis.Env) analysis.Env {
				out := analysis.BotEnv
				for _, e := range in {
					out = envL.Join(out, applyEdge(e, get(e.From.ID)))
				}
				return out
			})
		}
		return sys
	}

	op := solver.Op[int](solver.Warrow[analysis.Env](envL))
	init := func(int) analysis.Env { return analysis.BotEnv }

	run := func(name string, order []*cfg.Node, useSW bool) {
		sys := buildSystem(order)
		var sigma map[int]analysis.Env
		var st solver.Stats
		var err error
		if useSW {
			sigma, st, err = solver.SW(sys, envL, op, init, solver.Config{MaxEvals: 1_000_000})
		} else {
			sigma, st, err = solver.SRR(sys, envL, op, init, solver.Config{MaxEvals: 1_000_000})
		}
		if err != nil {
			fmt.Printf("  %-22s diverged after %d evaluations\n", name, st.Evals)
			return
		}
		fmt.Printf("  %-22s %5d evaluations, %4d updates, exit %s\n",
			name, st.Evals, st.Updates, sigma[g.Exit.ID])
	}

	wto := g.WTO()
	wtoOrder := cfg.LinearizeWTO(wto)
	reversed := make([]*cfg.Node, len(wtoOrder))
	for i, n := range wtoOrder {
		reversed[len(wtoOrder)-1-i] = n
	}

	rpoOrder := g.Nodes // reverse postorder: the front-end's native order

	fmt.Printf("nested-loop CFG, %d nodes\nWTO: %s\n\n", len(g.Nodes), cfg.FormatWTO(wto))
	run("SW, RPO order", rpoOrder, true)
	run("SW, WTO order", wtoOrder, true)
	run("SW, reversed order", reversed, true)
	run("SRR, RPO order", rpoOrder, false)
	run("SRR, WTO order", wtoOrder, false)
	run("SRR, reversed order", reversed, false)

	fmt.Println()
	fmt.Println("Both cost AND precision depend on the order: with an unfortunate")
	fmt.Println("schedule the inner loop head widens i to +inf and its own back edge")
	fmt.Println("then justifies the loss forever — narrowing cannot recover it. The")
	fmt.Println("paper's remark that the ordering \"has a significant impact on")
	fmt.Println("performance\" (citing Bourdoncle) extends to precision under ⊟.")
}
