// Localsolver: the infinite equation system of the paper's Examples 5–6,
//
//	y_{2n}   = max(y_{y_{2n}}, n)        (the index y_{2n} is a *value*!)
//	y_{2n+1} = y_{6n+4}
//
// has infinitely many unknowns, so no global solver applies. The local
// solver SLR explores only the unknowns the query y1 actually depends on —
// discovering dependences on the fly, since the right-hand sides are pure —
// and returns the finite partial solution {y0↦0, y1↦2, y2↦2, y4↦2}.
package main

import (
	"fmt"
	"sort"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

func main() {
	l := lattice.NatInf
	sys := func(x uint64) eqn.RHS[uint64, lattice.Nat] {
		if x%2 == 0 {
			n := x / 2
			return func(get func(uint64) lattice.Nat) lattice.Nat {
				idx := get(x) // dynamic dependence: index is the current value
				if idx.IsInf() {
					return lattice.NatInfElem
				}
				return l.Join(get(idx.Val()), lattice.NatOf(n))
			}
		}
		n := (x - 1) / 2
		return func(get func(uint64) lattice.Nat) lattice.Nat {
			return get(6*n + 4)
		}
	}

	res, err := solver.SLR[uint64, lattice.Nat](
		sys, l,
		solver.Op[uint64](solver.Join[lattice.Nat](l)),
		func(uint64) lattice.Nat { return lattice.NatOf(0) },
		1, // query: y1
		solver.Config{},
	)
	if err != nil {
		panic(err)
	}

	fmt.Println("querying y1 of the infinite system of Example 5:")
	keys := make([]uint64, 0, len(res.Values))
	for k := range res.Values {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fmt.Printf("  y%-3d = %s\n", k, res.Values[k])
	}
	fmt.Printf("explored %d of infinitely many unknowns (%d evaluations)\n",
		res.Stats.Unknowns, res.Stats.Evals)
}
