// Loopinvariants: analyze an embedded WCET-style benchmark end to end —
// parse, build CFGs, run the points-to analysis and the interval analysis —
// and contrast the invariants computed by the ⊟-solver with the classical
// two-phase baseline at every program point of the sort routine.
package main

import (
	"fmt"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/precision"
	"warrow/internal/wcet"
)

func main() {
	b, ok := wcet.ByName("bsort")
	if !ok {
		panic("bsort missing from suite")
	}
	ast, err := cint.Parse(b.Src)
	if err != nil {
		panic(err)
	}
	prog := cfg.Build(ast)

	warrow, err := analysis.Run(prog, analysis.Options{Op: analysis.OpWarrow})
	if err != nil {
		panic(err)
	}
	base, err := analysis.Run(prog, analysis.Options{Op: analysis.OpTwoPhase})
	if err != nil {
		panic(err)
	}

	fmt.Printf("benchmark %s (%d loc)\n\n", b.Name, b.LOC())
	fmt.Println("invariants in bubble() — ⊟ vs two-phase:")
	g := prog.Graphs["bubble"]
	for _, n := range g.Nodes {
		a := warrow.PointEnv("bubble", n.ID)
		t := base.PointEnv("bubble", n.ID)
		marker := "  "
		if !warrow.EnvL.Eq(a, t) {
			marker = "≺ " // ⊟ strictly better here
		}
		fmt.Printf("  @%-3d %s %-60s | %s\n", n.ID, marker, a, t)
	}

	c := precision.Compare(warrow, base)
	fmt.Printf("\nwhole program: %s\n", c)
	fmt.Printf("global 'sorted':  ⊟ %s   two-phase %s\n",
		warrow.Global("sorted"), base.Global("sorted"))
	fmt.Printf("array 'arr':      ⊟ %s   two-phase %s\n",
		warrow.Global("arr"), base.Global("arr"))
}
