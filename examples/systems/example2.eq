# Example 2 of the paper: LIFO worklist iteration (W) with ⊟ diverges;
# the priority-queue variant SW terminates.
#
#   eqsolve -solver w  -op warrow example2.eq     # exhausts its budget
#   eqsolve -solver sw -op warrow example2.eq     # x1 = x2 = ∞
domain natinf
x1 = min(x1 + 1, x2 + 1)
x2 = min(x2 + 1, x1 + 1)
