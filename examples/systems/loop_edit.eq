# An edit overlay for loop.eq: the loop bound tightens from 100 to 50
# (i = 0; while (i < 50) i = i + 1;). Overlaying replaces b's equation; with
# eqsolve -edit loop_edit.eq -resolve the incremental engine re-solves only
# the dirty cone of b and reuses everything the edit cannot reach.
domain interval
open
b = meet(h, [-inf,49])
e = meet(h, [50,inf])
