# Example 1 of the paper (PLDI'13): a finite MONOTONIC system on which
# plain round-robin iteration with the combined operator ⊟ never
# terminates, while structured round-robin (SRR) stabilizes quickly.
#
#   eqsolve -solver rr  -op warrow example1.eq    # exhausts its budget
#   eqsolve -solver srr -op warrow example1.eq    # x1 = x2 = x3 = ∞
domain natinf
x1 = x2
x2 = x3 + 1
x3 = x1
