# The constraint system of:  i = 0; while (i < 100) i = i + 1;
# h = loop head, b = body entry, e = exit. With ⊟ every structured solver
# computes the exact bounds in one pass: h=[0,100], b=[0,99], e=[100,100].
domain interval
h = join([0,0], b + [1,1])
b = meet(h, [-inf,99])
e = meet(h, [100,inf])
