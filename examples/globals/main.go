// Globals: the running example of the paper (Examples 7–9). A
// flow-insensitive global g collects contributions 0, 2 and 3 from three
// calling contexts; solving with SLR⁺ and the combined operator ⊟ first
// widens g to [0,+inf] and immediately narrows it back to the tight
// interval [0,3] — something the classical two-phase regime cannot do,
// because narrowing individual contributions to a shared global is unsound.
package main

import (
	"fmt"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
)

const program = `
int g = 0;

void f(int b) {
    if (b) { g = b + 1; } else { g = -b - 1; }
}

int main() {
    f(1);
    f(2);
    return 0;
}
`

func run(op analysis.OpKind) {
	prog := cfg.Build(cint.MustParse(program))
	res, err := analysis.Run(prog, analysis.Options{
		Context: analysis.FullContext,
		Op:      op,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-10s g = %-12s (%d unknowns, %d evaluations, contexts of f: %v)\n",
		op.String()+":", res.Global("g"), res.NumUnknowns(), res.Stats.Evals,
		res.Contexts("f"))
}

func main() {
	fmt.Println("int g = 0;  void f(int b) { if (b) g = b+1; else g = -b-1; }")
	fmt.Println("int main() { f(1); f(2); return 0; }")
	fmt.Println()
	run(analysis.OpWiden)  // plain widening: g stays [0,+inf]
	run(analysis.OpWarrow) // ⊟: g = [0,3], as in the paper's Example 9
}
