package cfg

import (
	"fmt"
	"math"
	"strings"
)

// The paper (Sec. 4) prescribes choosing the solvers' linear order "in a
// way that innermost loops would be evaluated before iteration on outer
// loops", citing Bourdoncle. This file implements Bourdoncle's weak
// topological ordering (WTO): a hierarchical decomposition of the graph
// into nested components, each headed by the entry of a loop. Linearizing
// a WTO yields exactly such an order, and the component heads are the
// canonical widening points.

// WTOElem is a vertex or a component of a weak topological ordering.
type WTOElem interface{ wtoElem() }

// WTOVertex is a single program point outside any (further) component.
type WTOVertex struct{ Node *Node }

// WTOComponent is a loop: its head followed by the nested ordering of its
// body.
type WTOComponent struct {
	Head *Node
	Body []WTOElem
}

func (WTOVertex) wtoElem()     {}
func (*WTOComponent) wtoElem() {}

// WTO computes the weak topological ordering of the graph from its entry,
// using Bourdoncle's partitioning algorithm.
func (g *Graph) WTO() []WTOElem {
	w := &wtoState{
		num:   make(map[*Node]int),
		onStk: make(map[*Node]bool),
	}
	var partition []WTOElem
	w.visit(g.Entry, &partition)
	return partition
}

type wtoState struct {
	cnt   int
	num   map[*Node]int
	stack []*Node
	onStk map[*Node]bool
}

func (w *wtoState) push(v *Node) {
	w.stack = append(w.stack, v)
	w.onStk[v] = true
}

func (w *wtoState) pop() *Node {
	v := w.stack[len(w.stack)-1]
	w.stack = w.stack[:len(w.stack)-1]
	w.onStk[v] = false
	return v
}

// visit implements Bourdoncle's recursive partitioning; it prepends
// elements to partition and returns the head number of the SCC v belongs
// to.
func (w *wtoState) visit(v *Node, partition *[]WTOElem) int {
	w.push(v)
	w.cnt++
	w.num[v] = w.cnt
	head := w.num[v]
	loop := false
	for _, e := range v.Out {
		s := e.To
		var min int
		if w.num[s] == 0 {
			min = w.visit(s, partition)
		} else {
			min = w.num[s]
		}
		// Completed vertices carry num = MaxInt, so min ≤ head exactly when
		// s (or a vertex reachable from it) is still on the stack — i.e. v
		// and s share a component.
		if min <= head {
			head = min
			loop = true
		}
	}
	if head == w.num[v] {
		w.num[v] = math.MaxInt
		element := w.pop()
		if loop {
			for element != v {
				w.num[element] = 0 // to be revisited inside the component
				element = w.pop()
			}
			*partition = prepend(*partition, w.component(v))
		} else {
			*partition = prepend(*partition, WTOVertex{Node: v})
		}
	}
	return head
}

// component builds the WTO of the strongly connected component headed by v.
func (w *wtoState) component(v *Node) *WTOComponent {
	var body []WTOElem
	for _, e := range v.Out {
		if w.num[e.To] == 0 {
			w.visit(e.To, &body)
		}
	}
	return &WTOComponent{Head: v, Body: body}
}

func prepend(xs []WTOElem, x WTOElem) []WTOElem {
	return append([]WTOElem{x}, xs...)
}

// LinearizeWTO flattens a WTO into the linear order the structured solvers
// consume: each component head immediately precedes its body.
func LinearizeWTO(wto []WTOElem) []*Node {
	var out []*Node
	var walk func(es []WTOElem)
	walk = func(es []WTOElem) {
		for _, e := range es {
			switch x := e.(type) {
			case WTOVertex:
				out = append(out, x.Node)
			case *WTOComponent:
				out = append(out, x.Head)
				walk(x.Body)
			}
		}
	}
	walk(wto)
	return out
}

// WTOHeads returns the component heads at all nesting depths — the
// canonical widening points of the graph.
func WTOHeads(wto []WTOElem) []*Node {
	var out []*Node
	var walk func(es []WTOElem)
	walk = func(es []WTOElem) {
		for _, e := range es {
			if c, ok := e.(*WTOComponent); ok {
				out = append(out, c.Head)
				walk(c.Body)
			}
		}
	}
	walk(wto)
	return out
}

// FormatWTO renders the ordering in Bourdoncle's parenthesized notation,
// e.g. "0 1 (2 3 (4 5) 6) 7".
func FormatWTO(wto []WTOElem) string {
	var sb strings.Builder
	var walk func(es []WTOElem)
	walk = func(es []WTOElem) {
		for i, e := range es {
			if i > 0 {
				sb.WriteByte(' ')
			}
			switch x := e.(type) {
			case WTOVertex:
				fmt.Fprintf(&sb, "%d", x.Node.ID)
			case *WTOComponent:
				fmt.Fprintf(&sb, "(%d", x.Head.ID)
				if len(x.Body) > 0 {
					sb.WriteByte(' ')
					walk(x.Body)
				}
				sb.WriteByte(')')
			}
		}
	}
	walk(wto)
	return sb.String()
}
