package cfg

import (
	"strings"
	"testing"
)

func wtoOf(t *testing.T, src string) (*Graph, []WTOElem) {
	t.Helper()
	p := build(t, src)
	g := p.Graphs["main"]
	return g, g.WTO()
}

func TestWTOStraightLine(t *testing.T) {
	g, wto := wtoOf(t, `int main() { int x; x = 1; x = x + 1; return x; }`)
	if len(WTOHeads(wto)) != 0 {
		t.Fatalf("no loops, but heads: %s", FormatWTO(wto))
	}
	lin := LinearizeWTO(wto)
	if len(lin) != len(g.Nodes) {
		t.Fatalf("linearization covers %d of %d nodes", len(lin), len(g.Nodes))
	}
	// Straight-line WTO is a topological order: every edge goes forward.
	pos := map[*Node]int{}
	for i, n := range lin {
		pos[n] = i
	}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if pos[e.To] <= pos[e.From] {
				t.Errorf("edge %d->%d goes backward in %s", e.From.ID, e.To.ID, FormatWTO(wto))
			}
		}
	}
}

func TestWTOSingleLoop(t *testing.T) {
	g, wto := wtoOf(t, `int main() { int i; i = 0; while (i < 9) { i = i + 1; } return i; }`)
	heads := WTOHeads(wto)
	if len(heads) != 1 {
		t.Fatalf("heads = %v in %s", heads, FormatWTO(wto))
	}
	// The single head must agree with the back-edge-target computation.
	backTargets := map[*Node]bool{}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.To.ID <= e.From.ID {
				backTargets[e.To] = true
			}
		}
	}
	if !backTargets[heads[0]] {
		t.Errorf("WTO head %d is not a back-edge target", heads[0].ID)
	}
	// Bourdoncle notation contains exactly one parenthesized component.
	s := FormatWTO(wto)
	if strings.Count(s, "(") != 1 {
		t.Errorf("notation: %s", s)
	}
}

func TestWTONestedLoops(t *testing.T) {
	_, wto := wtoOf(t, `
int main() {
    int i; int j; int s;
    s = 0;
    for (i = 0; i < 5; i = i + 1) {
        for (j = 0; j < i; j = j + 1) {
            s = s + 1;
        }
    }
    return s;
}`)
	heads := WTOHeads(wto)
	if len(heads) != 2 {
		t.Fatalf("want 2 heads, got %v in %s", heads, FormatWTO(wto))
	}
	// Nesting: the inner component sits inside the outer one in the
	// notation — two opening parens before the first closing one.
	s := FormatWTO(wto)
	first := strings.IndexByte(s, ')')
	if strings.Count(s[:first], "(") != 2 {
		t.Errorf("inner loop not nested in outer: %s", s)
	}
}

func TestWTOCoversAllReachable(t *testing.T) {
	p := build(t, `
int main() {
    int i; int x;
    i = 0;
    while (1) {
        i = i + 1;
        if (i > 5) { break; }
        if (i == 2) { continue; }
        x = i;
    }
    do { i = i - 1; } while (i > 0);
    return i;
}`)
	g := p.Graphs["main"]
	lin := LinearizeWTO(g.WTO())
	seen := map[*Node]bool{}
	for _, n := range lin {
		if seen[n] {
			t.Fatalf("node %d appears twice", n.ID)
		}
		seen[n] = true
	}
	for _, n := range g.Nodes {
		reachableFromEntry := n == g.Entry || len(n.In) > 0
		if reachableFromEntry && !seen[n] {
			t.Errorf("node %d missing from WTO", n.ID)
		}
	}
}

// TestWTOHeadsMatchBackEdgeTargets: on the reducible CFGs our front-end
// produces, the WTO component heads coincide with the loop heads the
// localized analysis computes from retreating edges.
func TestWTOHeadsMatchBackEdgeTargets(t *testing.T) {
	src := `
int f(int n) {
    int s; int i; int j;
    s = 0;
    for (i = 0; i < n; i = i + 1) {
        j = i;
        while (j > 0) {
            s = s + j;
            j = j - 1;
        }
    }
    do { s = s - 1; } while (s > 100);
    return s;
}
int main() { int r; r = f(9); return r; }`
	p := build(t, src)
	g := p.Graphs["f"]
	wtoHeads := map[int]bool{}
	for _, h := range WTOHeads(g.WTO()) {
		wtoHeads[h.ID] = true
	}
	backTargets := map[int]bool{}
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.To.ID <= e.From.ID {
				backTargets[e.To.ID] = true
			}
		}
	}
	if len(wtoHeads) != len(backTargets) {
		t.Fatalf("heads %v vs back-edge targets %v", wtoHeads, backTargets)
	}
	for id := range backTargets {
		if !wtoHeads[id] {
			t.Errorf("back-edge target %d is not a WTO head", id)
		}
	}
}
