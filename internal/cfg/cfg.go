// Package cfg builds control-flow graphs for mini-C functions. Nodes are
// program points; edges carry the actions the abstract interpreter
// executes: declarations, assignments, branch guards (with short-circuit
// && and || compiled into guard chains), calls, and returns.
//
// Nodes of each function are numbered in reverse postorder from the entry,
// the Bourdoncle-style linear order the structured solvers SRR/SW and the
// local solver SLR consume: inner-loop heads receive consistent positions
// so iteration stabilizes inner loops before outer ones.
package cfg

import (
	"fmt"
	"sort"
	"strings"

	"warrow/internal/cint"
)

// EdgeKind enumerates CFG edge actions.
type EdgeKind int

// Edge kinds.
const (
	// Nop transfers control without effect.
	Nop EdgeKind = iota
	// Decl introduces a local variable (Var), optionally with initializer
	// Rhs.
	Decl
	// Assign stores Rhs into the lvalue Lhs.
	Assign
	// Guard is taken when Cond evaluates to Branch.
	Guard
	// Call invokes Call.Fn, optionally storing the result into Lhs.
	Call
	// Ret leaves the function with optional result Rhs; it always targets
	// the exit node.
	Ret
	// Assert continues only when Cond holds; the analyzer classifies each
	// assertion as proved, failed, or unknown.
	Assert
)

// String renders the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case Nop:
		return "nop"
	case Decl:
		return "decl"
	case Assign:
		return "assign"
	case Guard:
		return "guard"
	case Call:
		return "call"
	case Ret:
		return "ret"
	case Assert:
		return "assert"
	default:
		return fmt.Sprintf("EdgeKind(%d)", int(k))
	}
}

// Node is a program point.
type Node struct {
	// ID is the reverse-postorder index within the function, 0 = entry.
	ID int
	// Fn is the function the node belongs to.
	Fn *cint.FuncDecl
	// Out and In are the adjacent edges.
	Out []*Edge
	In  []*Edge
	// Pos approximates the source position of the point.
	Pos cint.Pos
}

// Name returns a stable human-readable identifier like "main@3".
func (n *Node) Name() string { return fmt.Sprintf("%s@%d", n.Fn.Name, n.ID) }

// Edge is a CFG edge labelled with an action.
type Edge struct {
	From, To *Node
	Kind     EdgeKind

	Var    *cint.VarDecl  // Decl
	Lhs    cint.Expr      // Assign, Call (optional result target)
	Rhs    cint.Expr      // Assign, Decl initializer, Ret value (optional)
	Cond   cint.Expr      // Guard
	Branch bool           // Guard polarity
	Call   *cint.CallExpr // Call
	Pos    cint.Pos
}

// Label renders the edge action for diagnostics.
func (e *Edge) Label() string {
	switch e.Kind {
	case Nop:
		return "nop"
	case Decl:
		if e.Rhs != nil {
			return fmt.Sprintf("decl %s %s = %s", e.Var.Type, e.Var.Name, e.Rhs)
		}
		return fmt.Sprintf("decl %s %s", e.Var.Type, e.Var.Name)
	case Assign:
		return fmt.Sprintf("%s = %s", e.Lhs, e.Rhs)
	case Guard:
		if e.Branch {
			return fmt.Sprintf("[%s]", e.Cond)
		}
		return fmt.Sprintf("[!(%s)]", e.Cond)
	case Call:
		if e.Lhs != nil {
			return fmt.Sprintf("%s = %s", e.Lhs, e.Call)
		}
		return e.Call.String()
	case Ret:
		if e.Rhs != nil {
			return fmt.Sprintf("return %s", e.Rhs)
		}
		return "return"
	case Assert:
		return fmt.Sprintf("assert(%s)", e.Cond)
	default:
		return "?"
	}
}

// Graph is the control-flow graph of one function.
type Graph struct {
	Fn    *cint.FuncDecl
	Entry *Node
	Exit  *Node
	// Nodes lists all reachable nodes in reverse postorder (Entry first).
	Nodes []*Node
}

// Program bundles the CFGs of a translation unit.
type Program struct {
	AST    *cint.Program
	Graphs map[string]*Graph
	// Order lists function names in declaration order.
	Order []string
}

// Build constructs CFGs for all functions of a checked program.
func Build(prog *cint.Program) *Program {
	p := &Program{AST: prog, Graphs: make(map[string]*Graph, len(prog.Funcs))}
	for _, fn := range prog.Funcs {
		p.Graphs[fn.Name] = buildFunc(fn)
		p.Order = append(p.Order, fn.Name)
	}
	return p
}

// builder accumulates nodes and edges during construction.
type builder struct {
	fn    *cint.FuncDecl
	nodes []*Node
	exit  *Node

	breaks    []*Node
	continues []*Node
}

func buildFunc(fn *cint.FuncDecl) *Graph {
	b := &builder{fn: fn}
	entry := b.newNode(fn.Pos)
	b.exit = b.newNode(fn.Pos)
	end := b.stmt(entry, fn.Body)
	if end != nil {
		// Falling off the end returns without a value.
		b.edge(&Edge{From: end, To: b.exit, Kind: Ret, Pos: fn.Pos})
	}
	g := &Graph{Fn: fn, Entry: entry, Exit: b.exit}
	g.number()
	return g
}

func (b *builder) newNode(pos cint.Pos) *Node {
	n := &Node{ID: -1, Fn: b.fn, Pos: pos}
	b.nodes = append(b.nodes, n)
	return n
}

func (b *builder) edge(e *Edge) {
	e.From.Out = append(e.From.Out, e)
	e.To.In = append(e.To.In, e)
}

// stmt emits s starting at cur and returns the node where control
// continues, or nil if control never falls through (return/break/continue).
func (b *builder) stmt(cur *Node, s cint.Stmt) *Node {
	if cur == nil {
		return nil // unreachable code is dropped
	}
	switch s := s.(type) {
	case *cint.BlockStmt:
		for _, sub := range s.Stmts {
			cur = b.stmt(cur, sub)
		}
		return cur
	case *cint.EmptyStmt:
		return cur
	case *cint.DeclStmt:
		next := b.newNode(s.Position())
		b.edge(&Edge{From: cur, To: next, Kind: Decl, Var: s.Decl, Rhs: s.Decl.Init, Pos: s.Position()})
		return next
	case *cint.AssignStmt:
		next := b.newNode(s.Position())
		if s.Call != nil {
			b.edge(&Edge{From: cur, To: next, Kind: Call, Lhs: s.Lhs, Call: s.Call, Pos: s.Position()})
		} else {
			b.edge(&Edge{From: cur, To: next, Kind: Assign, Lhs: s.Lhs, Rhs: s.Rhs, Pos: s.Position()})
		}
		return next
	case *cint.ExprStmt:
		next := b.newNode(s.Position())
		b.edge(&Edge{From: cur, To: next, Kind: Call, Call: s.Call, Pos: s.Position()})
		return next
	case *cint.IfStmt:
		thenN := b.newNode(s.Then.Position())
		join := b.newNode(s.Position())
		elseN := join
		if s.Else != nil {
			elseN = b.newNode(s.Else.Position())
		}
		b.cond(cur, s.Cond, thenN, elseN)
		if end := b.stmt(thenN, s.Then); end != nil {
			b.edge(&Edge{From: end, To: join, Kind: Nop, Pos: s.Position()})
		}
		if s.Else != nil {
			if end := b.stmt(elseN, s.Else); end != nil {
				b.edge(&Edge{From: end, To: join, Kind: Nop, Pos: s.Position()})
			}
		}
		return join
	case *cint.WhileStmt:
		head := b.newNode(s.Position())
		body := b.newNode(s.Body.Position())
		exit := b.newNode(s.Position())
		b.edge(&Edge{From: cur, To: head, Kind: Nop, Pos: s.Position()})
		b.cond(head, s.Cond, body, exit)
		b.pushLoop(exit, head)
		end := b.stmt(body, s.Body)
		b.popLoop()
		if end != nil {
			b.edge(&Edge{From: end, To: head, Kind: Nop, Pos: s.Position()})
		}
		return exit
	case *cint.DoWhileStmt:
		body := b.newNode(s.Body.Position())
		check := b.newNode(s.Position())
		exit := b.newNode(s.Position())
		b.edge(&Edge{From: cur, To: body, Kind: Nop, Pos: s.Position()})
		b.pushLoop(exit, check)
		end := b.stmt(body, s.Body)
		b.popLoop()
		if end != nil {
			b.edge(&Edge{From: end, To: check, Kind: Nop, Pos: s.Position()})
		}
		b.cond(check, s.Cond, body, exit)
		return exit
	case *cint.ForStmt:
		if s.Init != nil {
			cur = b.stmt(cur, s.Init)
			if cur == nil {
				return nil
			}
		}
		head := b.newNode(s.Position())
		body := b.newNode(s.Body.Position())
		post := b.newNode(s.Position())
		exit := b.newNode(s.Position())
		b.edge(&Edge{From: cur, To: head, Kind: Nop, Pos: s.Position()})
		if s.Cond != nil {
			b.cond(head, s.Cond, body, exit)
		} else {
			b.edge(&Edge{From: head, To: body, Kind: Nop, Pos: s.Position()})
		}
		b.pushLoop(exit, post)
		end := b.stmt(body, s.Body)
		b.popLoop()
		if end != nil {
			b.edge(&Edge{From: end, To: post, Kind: Nop, Pos: s.Position()})
		}
		if s.Post != nil {
			if after := b.stmt(post, s.Post); after != nil {
				b.edge(&Edge{From: after, To: head, Kind: Nop, Pos: s.Position()})
			}
		} else {
			b.edge(&Edge{From: post, To: head, Kind: Nop, Pos: s.Position()})
		}
		return exit
	case *cint.AssertStmt:
		next := b.newNode(s.Position())
		b.edge(&Edge{From: cur, To: next, Kind: Assert, Cond: s.Cond, Branch: true, Pos: s.Position()})
		return next
	case *cint.ReturnStmt:
		b.edge(&Edge{From: cur, To: b.exit, Kind: Ret, Rhs: s.Value, Pos: s.Position()})
		return nil
	case *cint.BreakStmt:
		if len(b.breaks) == 0 {
			// Checked structurally here rather than in sema: break outside
			// a loop.
			panic(fmt.Sprintf("cfg: break outside loop at %s", s.Position()))
		}
		b.edge(&Edge{From: cur, To: b.breaks[len(b.breaks)-1], Kind: Nop, Pos: s.Position()})
		return nil
	case *cint.ContinueStmt:
		if len(b.continues) == 0 {
			panic(fmt.Sprintf("cfg: continue outside loop at %s", s.Position()))
		}
		b.edge(&Edge{From: cur, To: b.continues[len(b.continues)-1], Kind: Nop, Pos: s.Position()})
		return nil
	default:
		panic(fmt.Sprintf("cfg: unhandled statement %T", s))
	}
}

func (b *builder) pushLoop(brk, cont *Node) {
	b.breaks = append(b.breaks, brk)
	b.continues = append(b.continues, cont)
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-1]
	b.continues = b.continues[:len(b.continues)-1]
}

// cond emits guard edges routing control from cur to tTarget when e holds
// and to fTarget otherwise, compiling short-circuit operators into guard
// chains.
func (b *builder) cond(cur *Node, e cint.Expr, tTarget, fTarget *Node) {
	switch x := e.(type) {
	case *cint.BinaryExpr:
		switch x.Op {
		case cint.TokAndAnd:
			mid := b.newNode(x.Position())
			b.cond(cur, x.X, mid, fTarget)
			b.cond(mid, x.Y, tTarget, fTarget)
			return
		case cint.TokOrOr:
			mid := b.newNode(x.Position())
			b.cond(cur, x.X, tTarget, mid)
			b.cond(mid, x.Y, tTarget, fTarget)
			return
		}
	case *cint.UnaryExpr:
		if x.Op == cint.TokNot {
			b.cond(cur, x.X, fTarget, tTarget)
			return
		}
	}
	b.edge(&Edge{From: cur, To: tTarget, Kind: Guard, Cond: e, Branch: true, Pos: e.Position()})
	b.edge(&Edge{From: cur, To: fTarget, Kind: Guard, Cond: e, Branch: false, Pos: e.Position()})
}

// number assigns reverse-postorder IDs to the nodes reachable from Entry,
// prunes unreachable nodes and edges, and fills g.Nodes.
func (g *Graph) number() {
	seen := make(map[*Node]bool)
	var post []*Node
	var dfs func(n *Node)
	dfs = func(n *Node) {
		seen[n] = true
		for _, e := range n.Out {
			if !seen[e.To] {
				dfs(e.To)
			}
		}
		post = append(post, n)
	}
	dfs(g.Entry)
	// Ensure the exit exists even if unreachable (e.g. infinite loop).
	if !seen[g.Exit] {
		post = append([]*Node{g.Exit}, post...)
		seen[g.Exit] = true
	}
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	for i, n := range post {
		n.ID = i
	}
	// Drop in-edges from unreachable nodes.
	for _, n := range post {
		kept := n.In[:0]
		for _, e := range n.In {
			if seen[e.From] {
				kept = append(kept, e)
			}
		}
		n.In = kept
	}
	g.Nodes = post
}

// Dump renders the graph as one edge per line, for tests and debugging.
func (g *Graph) Dump() string {
	var sb strings.Builder
	edges := make([]*Edge, 0)
	for _, n := range g.Nodes {
		edges = append(edges, n.Out...)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From.ID != edges[j].From.ID {
			return edges[i].From.ID < edges[j].From.ID
		}
		return edges[i].To.ID < edges[j].To.ID
	})
	for _, e := range edges {
		fmt.Fprintf(&sb, "%s -> %s: %s\n", e.From.Name(), e.To.Name(), e.Label())
	}
	return sb.String()
}
