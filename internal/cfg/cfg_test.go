package cfg

import (
	"strings"
	"testing"

	"warrow/internal/cint"
)

func build(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := cint.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return Build(prog)
}

func TestStraightLine(t *testing.T) {
	p := build(t, `int main() { int x; x = 1; x = x + 1; return x; }`)
	g := p.Graphs["main"]
	if g.Entry.ID != 0 {
		t.Errorf("entry ID = %d", g.Entry.ID)
	}
	// entry -decl-> -assign-> -assign-> -ret-> exit
	kinds := []EdgeKind{}
	n := g.Entry
	for len(n.Out) == 1 {
		kinds = append(kinds, n.Out[0].Kind)
		n = n.Out[0].To
	}
	want := []EdgeKind{Decl, Assign, Assign, Ret}
	if len(kinds) != len(want) {
		t.Fatalf("edge chain %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("edge %d is %s, want %s", i, kinds[i], want[i])
		}
	}
	if n != g.Exit {
		t.Error("chain should end at exit")
	}
}

func TestIfElseJoins(t *testing.T) {
	p := build(t, `int main() { int x; if (x < 0) { x = 0; } else { x = 1; } return x; }`)
	g := p.Graphs["main"]
	// There must be exactly two guard edges with the same condition and
	// opposite polarity.
	var guards []*Edge
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Kind == Guard {
				guards = append(guards, e)
			}
		}
	}
	if len(guards) != 2 {
		t.Fatalf("%d guard edges, want 2\n%s", len(guards), g.Dump())
	}
	if guards[0].Branch == guards[1].Branch {
		t.Error("guards should have opposite polarity")
	}
}

func TestWhileLoopShape(t *testing.T) {
	p := build(t, `int main() { int i; i = 0; while (i < 10) { i = i + 1; } return i; }`)
	g := p.Graphs["main"]
	dump := g.Dump()
	if !strings.Contains(dump, "[(i < 10)]") || !strings.Contains(dump, "[!((i < 10))]") {
		t.Errorf("missing guards:\n%s", dump)
	}
	// The loop head must have two in-edges (initial entry + back edge).
	var head *Node
	for _, n := range g.Nodes {
		hasGuardOut := false
		for _, e := range n.Out {
			if e.Kind == Guard {
				hasGuardOut = true
			}
		}
		if hasGuardOut && len(n.In) >= 2 {
			head = n
		}
	}
	if head == nil {
		t.Fatalf("no loop head found:\n%s", dump)
	}
	// Reverse postorder: the loop head precedes the loop body and exit.
	for _, e := range head.Out {
		if e.To.ID <= head.ID && e.To != head {
			t.Errorf("successor %s numbered before head %s", e.To.Name(), head.Name())
		}
	}
}

func TestForDesugar(t *testing.T) {
	p := build(t, `int main() { int s; s = 0; for (int i = 0; i < 4; i = i + 1) { s = s + i; } return s; }`)
	g := p.Graphs["main"]
	dump := g.Dump()
	for _, want := range []string{"decl int s", "decl int i = 0", "[(i < 4)]", "i = (i + 1)", "s = (s + i)"} {
		if !strings.Contains(dump, want) {
			t.Errorf("dump missing %q:\n%s", want, dump)
		}
	}
}

func TestBreakContinue(t *testing.T) {
	p := build(t, `
int main() {
    int i;
    i = 0;
    while (1) {
        i = i + 1;
        if (i > 5) { break; }
        if (i == 2) { continue; }
        i = i + 1;
    }
    return i;
}`)
	g := p.Graphs["main"]
	if len(g.Nodes) < 8 {
		t.Errorf("suspiciously small graph:\n%s", g.Dump())
	}
	// All nodes reachable, and exit is reachable via the break.
	if g.Exit.ID < 0 {
		t.Error("exit unnumbered")
	}
	if len(g.Exit.In) == 0 {
		t.Errorf("exit unreachable:\n%s", g.Dump())
	}
}

func TestShortCircuitCompilesToGuardChain(t *testing.T) {
	p := build(t, `int main() { int a; int b; if (a > 0 && b > 0 || a < -3) { a = 1; } return a; }`)
	g := p.Graphs["main"]
	count := 0
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Kind == Guard {
				count++
				// No && or || may survive into guard conditions.
				if be, ok := e.Cond.(*cint.BinaryExpr); ok {
					if be.Op == cint.TokAndAnd || be.Op == cint.TokOrOr {
						t.Errorf("short-circuit operator in guard: %s", e.Cond)
					}
				}
			}
		}
	}
	if count != 6 { // three atomic conditions, two polarities each
		t.Errorf("%d guard edges, want 6:\n%s", count, g.Dump())
	}
}

func TestNotInCondSwapsTargets(t *testing.T) {
	p := build(t, `int main() { int a; a = 0; if (!(a < 3)) { a = 1; } else { a = 2; } return a; }`)
	g := p.Graphs["main"]
	dump := g.Dump()
	// The negation disappears; the guards are on (a < 3) itself.
	if strings.Contains(dump, "!(a") && !strings.Contains(dump, "[!((a < 3))]") {
		t.Errorf("negation not compiled away:\n%s", dump)
	}
}

func TestUnreachableCodePruned(t *testing.T) {
	p := build(t, `int main() { return 0; int x; x = 1; }`)
	g := p.Graphs["main"]
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Kind == Assign {
				t.Errorf("unreachable assignment survived: %s", e.Label())
			}
		}
	}
}

func TestInfiniteLoopKeepsExitNode(t *testing.T) {
	p := build(t, `int main() { int i; i = 0; while (1) { i = i + 1; } return i; }`)
	g := p.Graphs["main"]
	if g.Exit == nil {
		t.Fatal("exit missing")
	}
	// while(1) still generates a false guard edge to the exit-side node, so
	// the exit may be reachable; the important property is that numbering
	// does not crash and entry is node 0.
	if g.Entry.ID != 0 {
		t.Errorf("entry ID = %d", g.Entry.ID)
	}
}

func TestReversePostorderProperty(t *testing.T) {
	p := build(t, `
int f(int n) {
    int s;
    s = 0;
    for (int i = 0; i < n; i = i + 1) {
        for (int j = 0; j < i; j = j + 1) {
            s = s + j;
        }
    }
    return s;
}
int main() { int r; r = f(3); return r; }
`)
	g := p.Graphs["f"]
	// In reverse postorder, every non-back edge goes from lower to higher ID.
	backEdges := 0
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.To.ID <= e.From.ID {
				backEdges++
			}
		}
	}
	if backEdges != 2 { // one per loop
		t.Errorf("%d back edges, want 2:\n%s", backEdges, g.Dump())
	}
	if len(p.Order) != 2 || p.Order[0] != "f" {
		t.Errorf("order: %v", p.Order)
	}
}

func TestCallEdges(t *testing.T) {
	p := build(t, `
void f(int b) { b = b + 1; }
int id(int x) { return x; }
int main() { int y; f(1); y = id(2); return y; }
`)
	g := p.Graphs["main"]
	var calls []*Edge
	for _, n := range g.Nodes {
		for _, e := range n.Out {
			if e.Kind == Call {
				calls = append(calls, e)
			}
		}
	}
	if len(calls) != 2 {
		t.Fatalf("%d call edges, want 2", len(calls))
	}
	if calls[0].Call.Fn.Name != "f" || calls[0].Lhs != nil {
		t.Errorf("first call: %s", calls[0].Label())
	}
	if calls[1].Call.Fn.Name != "id" || calls[1].Lhs == nil {
		t.Errorf("second call: %s", calls[1].Label())
	}
}

func TestDoWhileRunsBodyFirst(t *testing.T) {
	p := build(t, `int main() { int i; i = 0; do { i = i + 1; } while (i < 3); return i; }`)
	g := p.Graphs["main"]
	dump := g.Dump()
	if !strings.Contains(dump, "[(i < 3)]") {
		t.Errorf("missing loop guard:\n%s", dump)
	}
	// The body assignment node must be reachable from entry without passing
	// a guard (do-while enters the body unconditionally).
	n := g.Entry
	steps := 0
	for n != nil && steps < 10 {
		var next *Node
		for _, e := range n.Out {
			if e.Kind == Guard {
				next = nil
				break
			}
			next = e.To
			if e.Kind == Assign && strings.Contains(e.Label(), "i = (i + 1)") {
				return // found body before any guard
			}
		}
		n = next
		steps++
	}
	t.Errorf("body not reached unconditionally:\n%s", dump)
}
