package cfg

import (
	"strings"
	"testing"
)

func TestGraphDOT(t *testing.T) {
	p := build(t, `int main() { int i; i = 0; while (i < 3) { i = i + 1; } return i; }`)
	dot := p.Graphs["main"].DOT()
	for _, want := range []string{
		`digraph "main"`,
		"style=filled, fillcolor=palegreen", // entry
		"style=filled, fillcolor=lightpink", // exit
		`label="[(i < 3)]", style=dashed`,   // guard edge
		`label="i = (i + 1)"`,               // assign edge
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Balanced braces.
	if strings.Count(dot, "{") != strings.Count(dot, "}") {
		t.Error("unbalanced braces")
	}
}

func TestProgramDOT(t *testing.T) {
	p := build(t, `
void f(int x) { x = x + 1; }
int main() { f(3); return 0; }`)
	dot := p.DOT()
	for _, want := range []string{"cluster_0", "cluster_1", `label="f"`, `label="main"`, "color=blue"} {
		if !strings.Contains(dot, want) {
			t.Errorf("program DOT missing %q:\n%s", want, dot)
		}
	}
	// Node names are function-prefixed, so clusters cannot collide.
	if !strings.Contains(dot, "f0_n0") || !strings.Contains(dot, "f1_n0") {
		t.Error("missing prefixed node names")
	}
}
