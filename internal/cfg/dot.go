package cfg

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot syntax for visual inspection:
//
//	go run ./cmd/warrow -dot prog.c | dot -Tsvg > cfg.svg
func (g *Graph) DOT() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "digraph %q {\n", g.Fn.Name)
	g.dotBody(&sb, "n", "  ")
	sb.WriteString("}\n")
	return sb.String()
}

// dotBody emits node and edge statements with the given node-name prefix
// and indentation.
func (g *Graph) dotBody(sb *strings.Builder, prefix, indent string) {
	fmt.Fprintf(sb, "%snode [shape=circle, fontsize=10];\n", indent)
	for _, n := range g.Nodes {
		attrs := ""
		switch n {
		case g.Entry:
			attrs = ", style=filled, fillcolor=palegreen"
		case g.Exit:
			attrs = ", style=filled, fillcolor=lightpink, shape=doublecircle"
		}
		fmt.Fprintf(sb, "%s%s%d [label=\"%d\"%s];\n", indent, prefix, n.ID, n.ID, attrs)
	}
	edges := make([]*Edge, 0)
	for _, n := range g.Nodes {
		edges = append(edges, n.Out...)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From.ID != edges[j].From.ID {
			return edges[i].From.ID < edges[j].From.ID
		}
		return edges[i].To.ID < edges[j].To.ID
	})
	for _, e := range edges {
		style := ""
		switch e.Kind {
		case Guard:
			style = ", style=dashed"
		case Call:
			style = ", color=blue"
		}
		fmt.Fprintf(sb, "%s%s%d -> %s%d [label=%q%s];\n",
			indent, prefix, e.From.ID, prefix, e.To.ID, e.Label(), style)
	}
}

// DOT renders all function graphs of the program as one dot document with
// one clustered subgraph per function.
func (p *Program) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph program {\n")
	for i, name := range p.Order {
		g := p.Graphs[name]
		fmt.Fprintf(&sb, "  subgraph cluster_%d {\n    label=%q;\n", i, name)
		g.dotBody(&sb, fmt.Sprintf("f%d_n", i), "    ")
		sb.WriteString("  }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}
