package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"

	"warrow/internal/analysis"
	"warrow/internal/certify"
	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
	"warrow/internal/wcet"
)

// slrSolvers is the column order of the SLR experiment: the ⊟-everywhere
// warrow baseline first, then the widening-point family.
var slrSolvers = []string{"sw", "slr2", "slr3", "slr4"}

// SLRWCETRow is one (benchmark, solver) cell of the Fig. 7 extension: the
// work spent and the precision reached on the materialized analysis system
// of one WCET program. Precision is the paper's sum-of-interval-widths
// metric over every binding of every unknown; infinite bounds are counted
// separately instead of saturating the sum.
type SLRWCETRow struct {
	Bench    string `json:"bench"`
	Solver   string `json:"solver"`
	Unknowns int    `json:"unknowns"`
	Evals    int    `json:"evals"`
	Restarts int    `json:"restarts,omitempty"`
	// WidthSum totals hi−lo over all finite-bounded non-empty intervals.
	WidthSum int64 `json:"width_sum"`
	// InfBounds counts interval ends at ±∞.
	InfBounds int `json:"inf_bounds"`
	// LeqSW reports pointwise σ ≤ σ_SW over all unknowns (true for sw).
	LeqSW bool `json:"leq_sw"`
	// Tighter counts unknowns with σ strictly below σ_SW.
	Tighter int `json:"tighter_points,omitempty"`
}

// SLRResult is the full outcome of the -slr experiment.
type SLRResult struct {
	WCET []SLRWCETRow `json:"wcet_rows"`
	// EqgenEvals totals right-hand-side evaluations per solver over the
	// eqgen macro matrix.
	EqgenEvals map[string]int `json:"eqgen_total_evals"`
	// TighterCases lists WCET benchmarks on which SLR3/SLR4 computed
	// strictly tighter invariants than the warrow baseline.
	TighterCases []string `json:"tighter_cases"`
}

// SLRBench runs the widening-point family experiment: per WCET benchmark,
// materialize the NoContext analysis system (analysis.StaticSystem), solve
// it with SW and SLR2/SLR3/SLR4, certify every result via internal/certify,
// and measure evaluations and precision; then total evaluations over the
// eqgen macro matrix. It enforces the acceptance gate: every run certified,
// SLR3/SLR4 pointwise ≤ AND strictly tighter than the warrow baseline on at
// least one WCET case, and fewer total evaluations than SW on the macro
// matrix. Per-case order is recorded in LeqSW, not gated per case: on a
// minority of benchmarks selective ∇ placement lands the family on
// certified post-solutions incomparable to SW's (see FormatSLR's "!" mark).
func SLRBench(workers int, smoke bool) (*SLRResult, error) {
	benches := wcet.All()
	if smoke {
		if len(benches) > 6 {
			benches = benches[:6]
		}
	}
	type benchOut struct {
		rows    []SLRWCETRow
		tighter bool
	}
	outs, err := fanOut(workers, len(benches), func(i int) (benchOut, error) {
		return slrWCETBench(benches[i])
	}, nil)
	if err != nil {
		return nil, err
	}
	res := &SLRResult{EqgenEvals: map[string]int{}}
	for i, o := range outs {
		res.WCET = append(res.WCET, o.rows...)
		if o.tighter {
			res.TighterCases = append(res.TighterCases, benches[i].Name)
		}
	}
	if len(res.TighterCases) == 0 {
		return res, fmt.Errorf("slr: no WCET case with SLR3/SLR4 invariants pointwise ≤ and strictly tighter than the warrow baseline")
	}

	if err := slrEqgenMatrix(res.EqgenEvals, smoke); err != nil {
		return res, err
	}
	for _, name := range slrSolvers[1:] {
		if res.EqgenEvals[name] >= res.EqgenEvals["sw"] {
			return res, fmt.Errorf("slr: %s spent %d evals on the eqgen macro matrix, not fewer than sw's %d",
				name, res.EqgenEvals[name], res.EqgenEvals["sw"])
		}
	}
	return res, nil
}

// slrWCETBench materializes and solves one WCET benchmark with every column.
func slrWCETBench(b wcet.Benchmark) (struct {
	rows    []SLRWCETRow
	tighter bool
}, error) {
	var out struct {
		rows    []SLRWCETRow
		tighter bool
	}
	ast, err := cint.Parse(b.Src)
	if err != nil {
		return out, fmt.Errorf("%s: parse: %w", b.Name, err)
	}
	prog := cfg.Build(ast)
	sys, l, err := analysis.StaticSystemOf(prog)
	if err != nil {
		return out, fmt.Errorf("%s: materialize: %w", b.Name, err)
	}
	init := func(analysis.Key) analysis.Env { return analysis.BotEnv }
	op := solver.Op[analysis.Key](solver.Warrow[analysis.Env](l))
	cfgS := solver.Config{MaxEvals: 20_000_000, Timeout: SolveTimeout}

	type run struct {
		sigma map[analysis.Key]analysis.Env
		st    solver.Stats
	}
	runs := map[string]run{}
	for _, name := range slrSolvers {
		var (
			sigma map[analysis.Key]analysis.Env
			st    solver.Stats
			rerr  error
		)
		switch name {
		case "sw":
			sigma, st, rerr = solver.SW(sys, l, op, init, cfgS)
		case "slr2":
			sigma, st, rerr = solver.SLR2(sys, l, op, init, cfgS)
		case "slr3":
			sigma, st, rerr = solver.SLR3(sys, l, op, init, cfgS)
		case "slr4":
			sigma, st, rerr = solver.SLR4(sys, l, op, init, cfgS)
		}
		if rerr != nil {
			return out, fmt.Errorf("%s: %s: %w", b.Name, name, rerr)
		}
		if rep := certify.System[analysis.Key, analysis.Env](l, sys, sigma, init); !rep.OK() {
			return out, fmt.Errorf("%s: %s: certification: %w", b.Name, name, rep.Err())
		}
		runs[name] = run{sigma, st}
	}

	base := runs["sw"].sigma
	for _, name := range slrSolvers {
		r := runs[name]
		row := SLRWCETRow{
			Bench:    b.Name,
			Solver:   name,
			Unknowns: sys.Len(),
			Evals:    r.st.Evals,
			Restarts: r.st.Restarts,
			LeqSW:    true,
		}
		for _, x := range sys.Order() {
			env := r.sigma[x]
			if env.IsBot() {
				continue
			}
			for _, id := range env.Ids() {
				iv := env.Get(id)
				if iv.IsEmpty() {
					continue
				}
				if iv.Lo.IsFinite() {
					if iv.Hi.IsFinite() {
						row.WidthSum += iv.Hi.Int() - iv.Lo.Int()
					}
				} else {
					row.InfBounds++
				}
				if !iv.Hi.IsFinite() {
					row.InfBounds++
				}
			}
			if name != "sw" {
				switch {
				case l.Eq(env, base[x]):
				case l.Leq(env, base[x]):
					row.Tighter++
				default:
					row.LeqSW = false
				}
			}
		}
		if (name == "slr3" || name == "slr4") && row.LeqSW && row.Tighter > 0 {
			out.tighter = true
		}
		out.rows = append(out.rows, row)
	}
	return out, nil
}

// slrEqgenMatrix totals the evaluation spend of every column over the eqgen
// macro matrix: monotone loop-shaped systems at macro sizes. The SCC blocks
// are kept small (MaxSCC 4) deliberately — that is the shape of real control
// flow, where cycles are loops with a handful of unknowns each, and it is
// the regime the widening-point family is built for. On large random
// strongly-connected blocks the restart cascades of SLR3/SLR4 reset most of
// the component per nesting level and re-ascension dominates; selective
// widening (SLR2) still wins there, restarting does not. Every run must
// terminate and certify.
func slrEqgenMatrix(totals map[string]int, smoke bool) error {
	sizes := []int{64, 192, 512}
	seeds := []uint64{3, 17, 41}
	if smoke {
		sizes, seeds = sizes[:2], seeds[:2]
	}
	l := lattice.Ints
	init := eqn.ConstBottom[int, lattice.Interval](l)
	op := solver.Op[int](solver.Warrow[lattice.Interval](l))
	for _, n := range sizes {
		for _, seed := range seeds {
			shape := eqgen.BuildShape(eqgen.Config{
				Seed: seed, Dom: eqgen.Interval, N: n,
				FanIn: 2, MaxSCC: 4, WidenDensity: 0.6,
			})
			sys := eqgen.IntervalSystem(shape)
			cfgS := solver.Config{MaxEvals: 20_000_000, Timeout: SolveTimeout}
			for _, name := range slrSolvers {
				var (
					sigma map[int]lattice.Interval
					st    solver.Stats
					err   error
				)
				switch name {
				case "sw":
					sigma, st, err = solver.SW(sys, l, op, init, cfgS)
				case "slr2":
					sigma, st, err = solver.SLR2(sys, l, op, init, cfgS)
				case "slr3":
					sigma, st, err = solver.SLR3(sys, l, op, init, cfgS)
				case "slr4":
					sigma, st, err = solver.SLR4(sys, l, op, init, cfgS)
				}
				if err != nil {
					return fmt.Errorf("slr eqgen n=%d seed=%d: %s: %w", n, seed, name, err)
				}
				if rep := certify.System(l, sys, sigma, init); !rep.OK() {
					return fmt.Errorf("slr eqgen n=%d seed=%d: %s: certification: %w", n, seed, name, rep.Err())
				}
				totals[name] += st.Evals
			}
		}
	}
	return nil
}

// FormatSLR renders the experiment as the Fig. 7-style text table.
func FormatSLR(res *SLRResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %9s | %10s %9s %9s | %6s %8s\n",
		"bench", "unknowns", "solver", "evals", "restarts", "width", "tighter")
	byBench := map[string][]SLRWCETRow{}
	var order []string
	for _, r := range res.WCET {
		if len(byBench[r.Bench]) == 0 {
			order = append(order, r.Bench)
		}
		byBench[r.Bench] = append(byBench[r.Bench], r)
	}
	for _, bench := range order {
		for i, r := range byBench[bench] {
			name, unk := "", ""
			if i == 0 {
				name, unk = r.Bench, fmt.Sprint(r.Unknowns)
			}
			tight := ""
			if r.Solver != "sw" {
				tight = fmt.Sprint(r.Tighter)
				if !r.LeqSW {
					tight += "!"
				}
			}
			fmt.Fprintf(&sb, "%-14s %9s | %10s %9d %9d | %6s %8s\n",
				name, unk, r.Solver, r.Evals, r.Restarts,
				fmt.Sprintf("%d+%d∞", r.WidthSum, r.InfBounds), tight)
		}
	}
	keys := make([]string, 0, len(res.EqgenEvals))
	for k := range res.EqgenEvals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(&sb, "\neqgen macro matrix total evals:")
	for _, k := range keys {
		fmt.Fprintf(&sb, "  %s=%d", k, res.EqgenEvals[k])
	}
	fmt.Fprintf(&sb, "\nstrictly tighter WCET cases: %s\n", strings.Join(res.TighterCases, ", "))
	return sb.String()
}

// SLRBenchFile is the envelope of the committed BENCH_slr.json artifact.
// Unlike the wall-clock suites, every number in it is a deterministic work
// or precision count, so the artifact is reproducible on any host; the
// machine facts are recorded for provenance only.
type SLRBenchFile struct {
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	Note       string `json:"note,omitempty"`
	SLRResult
}

// WriteSLRBench writes the experiment result to path, stamping host facts.
func WriteSLRBench(path, note string, res *SLRResult) error {
	f := SLRBenchFile{
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Note:       note,
		SLRResult:  *res,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
