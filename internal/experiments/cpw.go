// CPW scaling experiment: the giant-SCC workload the chaotic intra-stratum
// solver exists for, and the speedup rows cmd/bench -cpw persists.
//
// WideSystem (psw.go) gives PSW genuine parallelism by construction — many
// independent components. GiantSCCSystem is its adversary: the same chains,
// but linked head-to-tail into one ring, so the entire system condenses to
// a single strongly connected component. PSW's stratified scheduler sees
// one stratum and degenerates to sequential SW; CPW's sharded workers are
// the only source of parallelism. CPWSpeedup measures exactly that split —
// a PSW no-speedup baseline alongside CPW at several pool sizes, every CPW
// result gated through internal/certify (CPW is certified, never
// bit-pinned).
package experiments

import (
	"fmt"
	"time"

	"warrow/internal/certify"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// GiantSCCSystem builds a constraint system of chains counting chains of
// length unknowns each, joined into a single ring: the head of chain c
// reads the tail of chain c-1 (mod chains), so every unknown reaches every
// other and the dependence graph is one giant SCC. Unknowns are the ints
// 0..chains*length-1 in definition order, which keeps the system eligible
// for the dense and unboxed execution cores. The iteration profile is the
// paper's: ⊟ widens the circulating interval to [0,+inf] and then narrows
// it back below the ring bound through the per-chain guards. fan adds that
// many extra intra-ring reads per unknown — value-neutral (meet-capped, as
// in WideSystem's heavy) but real dependence edges, so chaotic workers
// collide on shared unknowns the way a dense real analysis would. work adds
// rounds of value-neutral interval arithmetic per evaluation, emulating
// transfer-function cost.
func GiantSCCSystem(chains, length, fan, work int) *eqn.System[int, lattice.Interval] {
	l := lattice.Ints
	one := lattice.Singleton(1)
	heavy := func(v lattice.Interval) lattice.Interval {
		sink := v
		for i := 0; i < work; i++ {
			sink = sink.Add(one)
		}
		return l.Join(v, l.Meet(sink, v))
	}
	n := chains * length
	// capped folds extra reads into v without changing it: Meet(w, v) ⊑ v,
	// so the join is a no-op on values and a real edge in the graph.
	capped := func(get func(int) lattice.Interval, v lattice.Interval, i int) lattice.Interval {
		for k := 1; k <= fan; k++ {
			v = l.Join(v, l.Meet(get((i+k*7)%n), v))
		}
		return v
	}
	sys := eqn.NewSystem[int, lattice.Interval]()
	bound := lattice.Singleton(int64(4 * n))
	for c := 0; c < chains; c++ {
		base := c * length
		// Head: reads the tail of the previous chain in the ring.
		prevTail := ((c+chains-1)%chains)*length + (length - 1)
		head := base
		deps := ringDeps(head, []int{prevTail}, fan, n)
		sys.Define(head, deps, func(get func(int) lattice.Interval) lattice.Interval {
			v := heavy(l.Join(lattice.Singleton(0), get(prevTail).Add(one)))
			return capped(get, v, head)
		})
		for p := 1; p < length; p++ {
			i := base + p
			prev := i - 1
			deps := ringDeps(i, []int{prev}, fan, n)
			if p == 1 {
				// Guard: the chain's narrowing handle, restricting the
				// circulated interval below the ring bound.
				sys.Define(i, deps, func(get func(int) lattice.Interval) lattice.Interval {
					return capped(get, heavy(get(prev).RestrictLt(bound)), i)
				})
				continue
			}
			sys.Define(i, deps, func(get func(int) lattice.Interval) lattice.Interval {
				return capped(get, heavy(get(prev).Add(one)), i)
			})
		}
	}
	return sys
}

// ringDeps lists an unknown's declared dependences: its structural reads
// plus the fan extra intra-ring edges capped reads walk.
func ringDeps(i int, structural []int, fan, n int) []int {
	deps := append([]int(nil), structural...)
	for k := 1; k <= fan; k++ {
		deps = append(deps, (i+k*7)%n)
	}
	return deps
}

// GiantFraction returns the fraction of unknowns in the largest strongly
// connected component of sys's dependence graph — the honesty stamp of the
// giant-SCC benchmark envelopes (a "giant SCC" claim is checkable, not
// asserted). Computed with a local iterative Tarjan over DepGraph.
func GiantFraction[X comparable, D any](sys *eqn.System[X, D]) float64 {
	adj := sys.DepGraph()
	n := len(adj)
	if n == 0 {
		return 0
	}
	comp := make([]int, n)
	low := make([]int, n)
	num := make([]int, n)
	onStack := make([]bool, n)
	for i := range num {
		num[i] = -1
	}
	stack := make([]int, 0, n)
	type frame struct{ v, ei int }
	var frames []frame
	counter, ncomp := 0, 0
	for root := 0; root < n; root++ {
		if num[root] >= 0 {
			continue
		}
		frames = append(frames[:0], frame{root, 0})
		num[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if num[w] < 0 {
					num[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && num[w] < low[v] {
					low[v] = num[w]
				}
				continue
			}
			if low[v] == num[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	sizes := make([]int, ncomp)
	for _, c := range comp {
		sizes[c]++
	}
	best := 0
	for _, s := range sizes {
		if s > best {
			best = s
		}
	}
	return float64(best) / float64(n)
}

// CPWSpeedup measures PSW (whose stratified scheduler finds nothing to
// parallelize in a single-SCC system) against CPW at the given worker
// counts on GiantSCCSystem(chains, length, fan, work). Every CPW result is
// certified as a post-solution before its row is reported — the solver's
// claim is certified, not bit-identical, so there is no value comparison
// across runs. The returned fraction is GiantFraction of the system, for
// the benchmark envelope's giant_scc stamp.
func CPWSpeedup(chains, length, fan, work int, workerCounts []int) ([]PerfRow, float64, error) {
	l := lattice.Ints
	sys := GiantSCCSystem(chains, length, fan, work)
	init := eqn.ConstBottom[int, lattice.Interval](l)
	op := func() solver.Operator[int, lattice.Interval] {
		return solver.WarrowOp[int, lattice.Interval](l)
	}
	name := fmt.Sprintf("giant(%dx%d,fan=%d,work=%d)", chains, length, fan, work)
	frac := GiantFraction(sys)

	var rows []PerfRow
	for _, w := range []int{1, 4} {
		start := time.Now()
		_, st, err := solver.PSW(sys, l, op(), init, solver.Config{Workers: w, Timeout: SolveTimeout})
		if err != nil {
			return nil, frac, fmt.Errorf("%s: PSW workers=%d: %w", name, w, err)
		}
		rows = append(rows, PerfRow{
			Name: name, Solver: "psw", Workers: st.Workers,
			WallNs: time.Since(start).Nanoseconds(),
			Evals:  st.Evals, Updates: st.Updates, Unknowns: st.Unknowns,
		})
	}
	for _, w := range workerCounts {
		start := time.Now()
		sigma, st, err := solver.CPW(sys, l, op(), init, solver.Config{Workers: w, Timeout: SolveTimeout})
		if err != nil {
			return rows, frac, fmt.Errorf("%s: CPW workers=%d: %w", name, w, err)
		}
		if rep := certify.System(l, sys, sigma, init); rep.Err() != nil {
			return rows, frac, fmt.Errorf("%s: CPW workers=%d: %w", name, w, rep.Err())
		}
		rows = append(rows, PerfRow{
			Name: name, Solver: "cpw", Workers: st.Workers,
			WallNs: time.Since(start).Nanoseconds(),
			Evals:  st.Evals, Updates: st.Updates, Unknowns: st.Unknowns,
		})
	}
	return rows, frac, nil
}

// CPWGenRow solves one eqgen interval recipe with CPW, certifies the
// result, and returns its perf row plus the recipe's measured giant-SCC
// fraction — the generator-backed row of the -cpw suite, tying the
// benchmark to the same recipe format the differential harness and the
// serving tier consume (and exercising eqgen's GiantSCC knob end to end).
func CPWGenRow(cfg eqgen.Config, workers int) (PerfRow, float64, error) {
	g := eqgen.New(cfg)
	l := lattice.Ints
	sys := g.Interval
	if sys == nil {
		return PerfRow{}, 0, fmt.Errorf("cpw: recipe %s is not an interval system", g.Shape.Cfg)
	}
	name := fmt.Sprintf("eqgen(%s)", g.Shape.Cfg)
	frac := GiantFraction(sys)
	init := eqn.ConstBottom[int, lattice.Interval](l)
	start := time.Now()
	sigma, st, err := solver.CPW(sys, l, solver.WarrowOp[int, lattice.Interval](l), init,
		solver.Config{Workers: workers, MaxEvals: 2_000_000, Timeout: SolveTimeout})
	if err != nil {
		return PerfRow{}, frac, fmt.Errorf("%s: CPW workers=%d: %w", name, workers, err)
	}
	if rep := certify.System(l, sys, sigma, init); rep.Err() != nil {
		return PerfRow{}, frac, fmt.Errorf("%s: CPW workers=%d: %w", name, workers, rep.Err())
	}
	return PerfRow{
		Name: name, Solver: "cpw", Workers: st.Workers,
		WallNs: time.Since(start).Nanoseconds(),
		Evals:  st.Evals, Updates: st.Updates, Unknowns: st.Unknowns,
	}, frac, nil
}
