// PSW speedup experiment and machine-readable benchmark output.
//
// WideSystem builds the Table 1-scale synthetic constraint system the PSW
// rows measure: many independent loop nests, each a strongly connected
// component of its own, so the stratified scheduler has genuine parallelism
// to exploit. PSWSpeedup runs SW and PSW over it at several worker counts,
// verifies the solutions agree per unknown, and emits PerfRows — the rows
// cmd/bench -json persists to BENCH_*.json so future changes have a perf
// trajectory to compare against.
package experiments

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// PerfRow is one machine-readable benchmark measurement. Core distinguishes
// the map and dense execution cores in the map-vs-dense rows; the
// allocation columns are per performed evaluation, measured with
// runtime.MemStats around a dedicated run.
type PerfRow struct {
	Name          string  `json:"name"`
	Solver        string  `json:"solver"`
	Core          string  `json:"core,omitempty"`
	Workers       int     `json:"workers"`
	WallNs        int64   `json:"wall_ns"`
	Evals         int     `json:"evals"`
	Updates       int     `json:"updates"`
	Unknowns      int     `json:"unknowns"`
	AllocsPerEval float64 `json:"allocs_per_eval,omitempty"`
	BytesPerEval  float64 `json:"bytes_per_eval,omitempty"`
}

// BenchFile is the envelope of a BENCH_*.json artifact. Host facts are
// recorded prominently because wall-clock rows are only comparable on like
// hardware — a single-CPU container cannot show parallel speedup, however
// good the decomposition; Note flags exactly that kind of caveat, and
// GeomeanSpeedup summarizes map-vs-dense comparisons.
type BenchFile struct {
	NumCPU         int       `json:"num_cpu"`
	GoMaxProcs     int       `json:"gomaxprocs"`
	GoVersion      string    `json:"go_version"`
	GOOS           string    `json:"goos"`
	GOARCH         string    `json:"goarch"`
	Note           string            `json:"note,omitempty"`
	GeomeanSpeedup float64           `json:"geomean_speedup,omitempty"`
	Breakdown      *GeomeanBreakdown `json:"geomean_breakdown,omitempty"`
	// GiantSCC stamps the -cpw envelopes with the measured fraction of
	// unknowns in the workload's largest SCC (see GiantFraction): the
	// "single giant component" premise of the CPW rows is recorded as a
	// checked fact, not an assertion.
	GiantSCC float64   `json:"giant_scc,omitempty"`
	Rows     []PerfRow `json:"rows"`
}

// WriteBenchJSON writes rows wrapped in a BenchFile to path.
func WriteBenchJSON(path string, rows []PerfRow) error {
	return WriteBenchFile(path, BenchFile{Rows: rows})
}

// WriteBenchFile writes f to path, stamping the machine facts.
func WriteBenchFile(path string, f BenchFile) error {
	f.NumCPU = runtime.NumCPU()
	f.GoMaxProcs = runtime.GOMAXPROCS(0)
	f.GoVersion = runtime.Version()
	f.GOOS = runtime.GOOS
	f.GOARCH = runtime.GOARCH
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// WideKey identifies unknown (component, node) of the wide system.
type WideKey struct{ C, N int }

// String renders the unknown.
func (k WideKey) String() string { return fmt.Sprintf("c%d.n%d", k.C, k.N) }

// WideSystem builds a synthetic constraint system of comps independent
// loop nests: component c is a ring of size unknowns circulating a counting
// interval capped by a guard, i.e. one SCC that ⊟ first widens to [0,+inf]
// and then narrows back ring pass by ring pass — the iteration profile of a
// Table 1-scale loop nest. Each right-hand side additionally performs work
// rounds of value-neutral interval arithmetic, emulating the transfer-
// function cost of a real analysis (where evaluating an edge is far more
// expensive than the solver bookkeeping around it).
func WideSystem(comps, size, work int) *eqn.System[WideKey, lattice.Interval] {
	l := lattice.Ints
	one := lattice.Singleton(1)
	heavy := func(v lattice.Interval) lattice.Interval {
		sink := v
		for i := 0; i < work; i++ {
			sink = sink.Add(one)
		}
		// Meet(sink, v) ⊑ v, so joining it back never changes the value:
		// the arithmetic is paid for but the result stays exact.
		return l.Join(v, l.Meet(sink, v))
	}
	sys := eqn.NewSystem[WideKey, lattice.Interval]()
	bound := lattice.Singleton(int64(4 * size))
	for c := 0; c < comps; c++ {
		c := c
		// Head: x₀ = [0,0] ⊔ (x_{size-1} + 1).
		last := WideKey{c, size - 1}
		sys.Define(WideKey{c, 0}, []WideKey{last}, func(get func(WideKey) lattice.Interval) lattice.Interval {
			return heavy(l.Join(lattice.Singleton(0), get(last).Add(one)))
		})
		for j := 1; j < size; j++ {
			j := j
			prev := WideKey{c, j - 1}
			if j == 1 {
				// Guard: x₁ = x₀ restricted below the loop bound — the
				// narrowing handle of the component.
				sys.Define(WideKey{c, j}, []WideKey{prev}, func(get func(WideKey) lattice.Interval) lattice.Interval {
					return heavy(get(prev).RestrictLt(bound))
				})
				continue
			}
			sys.Define(WideKey{c, j}, []WideKey{prev}, func(get func(WideKey) lattice.Interval) lattice.Interval {
				return heavy(get(prev).Add(one))
			})
		}
	}
	return sys
}

// PSWSpeedup measures sequential SW against PSW at the given worker counts
// on WideSystem(comps, size, work), verifying per-unknown equality of every
// PSW run against the SW solution before reporting.
func PSWSpeedup(comps, size, work int, workerCounts []int) ([]PerfRow, error) {
	l := lattice.Ints
	sys := WideSystem(comps, size, work)
	init := func(WideKey) lattice.Interval { return lattice.EmptyInterval }
	op := func() solver.Operator[WideKey, lattice.Interval] {
		return solver.Op[WideKey](solver.Warrow[lattice.Interval](l))
	}
	name := fmt.Sprintf("wide(%dx%d,work=%d)", comps, size, work)

	start := time.Now()
	want, st, err := solver.SW(sys, l, op(), init, solver.Config{Timeout: SolveTimeout})
	if err != nil {
		return nil, fmt.Errorf("%s: SW: %w", name, err)
	}
	rows := []PerfRow{{
		Name: name, Solver: "sw", Workers: 1,
		WallNs: time.Since(start).Nanoseconds(),
		Evals:  st.Evals, Updates: st.Updates, Unknowns: st.Unknowns,
	}}
	for _, w := range workerCounts {
		sigma, pst, err := solver.PSW(sys, l, op(), init, solver.Config{Workers: w, Timeout: SolveTimeout})
		if err != nil {
			return rows, fmt.Errorf("%s: PSW workers=%d: %w", name, w, err)
		}
		for _, x := range sys.Order() {
			if !l.Eq(sigma[x], want[x]) {
				return rows, fmt.Errorf("%s: PSW workers=%d: σ[%v] = %s, SW has %s",
					name, w, x, sigma[x], want[x])
			}
		}
		rows = append(rows, PerfRow{
			Name: name, Solver: "psw", Workers: pst.Workers,
			WallNs: pst.WallNs,
			Evals:  pst.Evals, Updates: pst.Updates, Unknowns: pst.Unknowns,
		})
	}
	return rows, nil
}

// FormatPerfRows renders perf rows as a speedup table against the first
// row's wall time.
func FormatPerfRows(rows []PerfRow) string {
	if len(rows) == 0 {
		return "no perf rows"
	}
	base := rows[0].WallNs
	out := fmt.Sprintf("%-24s %-8s %7s %12s %10s %9s %8s\n",
		"name", "solver", "workers", "wall", "evals", "updates", "speedup")
	for _, r := range rows {
		speedup := "-"
		if r.WallNs > 0 && base > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(base)/float64(r.WallNs))
		}
		out += fmt.Sprintf("%-24s %-8s %7d %12s %10d %9d %8s\n",
			r.Name, r.Solver, r.Workers, time.Duration(r.WallNs).Round(time.Microsecond),
			r.Evals, r.Updates, speedup)
	}
	return out
}

// Table1PerfRows flattens Table 1 measurements into machine-readable rows.
func Table1PerfRows(rows []Table1Row) []PerfRow {
	var out []PerfRow
	for _, r := range rows {
		for _, c := range []struct {
			solver string
			cell   Table1Cell
		}{
			{"slr-widen-noctx", r.WidenNoCtx},
			{"slr-warrow-noctx", r.WarrowNoCtx},
			{"slr-widen-ctx", r.WidenCtx},
			{"slr-warrow-ctx", r.WarrowCtx},
		} {
			out = append(out, PerfRow{
				Name: r.Name, Solver: c.solver, Workers: 1,
				WallNs: c.cell.Time.Nanoseconds(),
				Evals:  c.cell.Evals, Unknowns: c.cell.Unknowns,
			})
		}
	}
	return out
}
