package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/precision"
	"warrow/internal/solver"
	"warrow/internal/wcet"
)

// Ablations runs all ablation studies on a bounded worker pool and returns
// their reports in fixed order (0 workers = GOMAXPROCS).
func Ablations(workers int) []string {
	studies := []func() string{
		AblationDegrading,
		AblationSWvsW,
		AblationThresholds,
		AblationLocalized,
	}
	out, _ := fanOut(workers, len(studies), func(i int) (string, error) {
		return studies[i](), nil
	}, nil)
	return out
}

// oscillator is a single-unknown non-monotonic system on which plain ⊟
// never stabilizes: f(⊥)=[0,0]; f([0,+inf])=[0,5]; f([0,h])=[0,h+1].
func oscillator() *eqn.System[string, lattice.Interval] {
	s := eqn.NewSystem[string, lattice.Interval]()
	s.Define("x", []string{"x"}, func(get func(string) lattice.Interval) lattice.Interval {
		v := get("x")
		if v.IsEmpty() {
			return lattice.Singleton(0)
		}
		if v.Hi.IsPosInf() {
			return lattice.Range(0, 5)
		}
		return lattice.NewInterval(lattice.Fin(0), v.Hi.Add(lattice.Fin(1)))
	})
	return s
}

// AblationDegrading demonstrates the ⊟ₖ operator of Sec. 4: on a
// non-monotonic oscillator, plain ⊟ diverges while every finite threshold k
// enforces termination, trading precision for the guarantee.
func AblationDegrading() string {
	var sb strings.Builder
	sb.WriteString("Ablation: ⊟ₖ degradation thresholds on a non-monotonic oscillator\n")
	sb.WriteString("(f(⊥)=[0,0]; f([0,∞])=[0,5]; f([0,h])=[0,h+1])\n\n")
	l := lattice.Ints
	init := func(string) lattice.Interval { return lattice.EmptyInterval }
	sys := oscillator()
	_, st, err := solver.SRR(sys, l, solver.Op[string](solver.Warrow[lattice.Interval](l)), init, solver.Config{MaxEvals: 10000})
	fmt.Fprintf(&sb, "  plain ⊟ : diverges=%v after %d evaluations\n", err != nil, st.Evals)
	for k := 0; k <= 3; k++ {
		deg := solver.NewDegrading[string, lattice.Interval](l, k)
		sigma, st, err := solver.SRR(sys, l, deg, init, solver.Config{MaxEvals: 10000})
		if err != nil {
			fmt.Fprintf(&sb, "  ⊟_%d     : diverged (%d evals)\n", k, st.Evals)
			continue
		}
		fmt.Fprintf(&sb, "  ⊟_%d     : x = %-12s (%d evals, %d narrow→widen switches)\n",
			k, sigma["x"], st.Evals, deg.Switches("x"))
	}
	return sb.String()
}

// AblationSWvsW compares the work of the four global solvers under plain
// join on random monotonic systems — the cost model behind Theorems 1–2:
// the structured solvers pay at most a modest overhead over their classical
// counterparts while gaining the ⊟ termination guarantee.
func AblationSWvsW() string {
	var sb strings.Builder
	sb.WriteString("Ablation: right-hand-side evaluations of RR/W/SRR/SW (⊞ = ⊔, monotone systems)\n\n")
	sb.WriteString("  vars      RR        W      SRR       SW\n")
	r := rand.New(rand.NewSource(1))
	l := lattice.NatInf
	for _, n := range []int{8, 16, 32, 64, 128} {
		sys := eqn.NewSystem[int, lattice.Nat]()
		const h = 16
		for i := 0; i < n; i++ {
			d := r.Intn(n)
			sys.Define(i, []int{d}, func(get func(int) lattice.Nat) lattice.Nat {
				v := get(d)
				if v.IsInf() || v.Val() >= h {
					return lattice.NatOf(h)
				}
				return lattice.NatOf(v.Val() + 1)
			})
		}
		init := func(int) lattice.Nat { return lattice.NatOf(0) }
		op := solver.Op[int](solver.Join[lattice.Nat](l))
		_, stRR, _ := solver.RR(sys, l, op, init, solver.Config{})
		_, stW, _ := solver.W(sys, l, op, init, solver.Config{})
		_, stSRR, _ := solver.SRR(sys, l, op, init, solver.Config{})
		_, stSW, _ := solver.SW(sys, l, op, init, solver.Config{})
		fmt.Fprintf(&sb, "  %4d %8d %8d %8d %8d\n", n, stRR.Evals, stW.Evals, stSRR.Evals, stSW.Evals)
	}
	return sb.String()
}

// AblationThresholds measures how threshold widening (a complementary
// technique the paper's related work cites) interacts with ⊟: improved
// points of threshold-∇ two-phase vs plain-∇ ⊟ on the WCET suite.
func AblationThresholds() string {
	var sb strings.Builder
	sb.WriteString("Ablation: ⊟ with plain widening vs two-phase with threshold widening\n\n")
	thresholds := lattice.NewIntervalLattice(0, 1, 8, 16, 64, 100, 256, 1024)
	totalA, totalB, points := 0, 0, 0
	for _, b := range wcet.All() {
		ast, err := cint.Parse(b.Src)
		if err != nil {
			continue
		}
		g := cfg.Build(ast)
		warrowPlain, err1 := analysis.Run(g, analysis.Options{Op: analysis.OpWarrow, MaxEvals: 20_000_000, Timeout: SolveTimeout})
		baseThresh, err2 := analysis.Run(g, analysis.Options{Op: analysis.OpTwoPhase, Widening: thresholds, MaxEvals: 20_000_000, Timeout: SolveTimeout})
		if err1 != nil || err2 != nil {
			fmt.Fprintf(&sb, "  %-16s solver error (%v / %v)\n", b.Name, err1, err2)
			continue
		}
		c := precision.Compare(warrowPlain, baseThresh)
		fmt.Fprintf(&sb, "  %-16s ⊟ better at %2d, threshold-baseline better at %2d of %3d points\n",
			b.Name, c.Improved, c.Worse, c.Total)
		totalA += c.Improved
		totalB += c.Worse
		points += c.Total
	}
	fmt.Fprintf(&sb, "\n  totals: ⊟ better at %d, threshold two-phase better at %d of %d points\n",
		totalA, totalB, points)
	sb.WriteString("  (thresholds recover some precision for the baseline, but cannot replace narrowing)\n")
	return sb.String()
}

// AblationLocalized compares full ⊟ against localized ⊟₂ (acceleration only
// at widening points, plain updates elsewhere — the Bourdoncle discipline)
// on the WCET suite: solver work and per-point precision.
func AblationLocalized() string {
	var sb strings.Builder
	sb.WriteString("Ablation: full ⊟ vs localized ⊟₂ (accelerate only at loop heads)\n\n")
	var evalsFull, evalsLoc, better, worse, points int
	for _, b := range wcet.All() {
		ast, err := cint.Parse(b.Src)
		if err != nil {
			continue
		}
		g := cfg.Build(ast)
		full, err1 := analysis.Run(g, analysis.Options{Op: analysis.OpWarrow, MaxEvals: 20_000_000, Timeout: SolveTimeout})
		loc, err2 := analysis.Run(g, analysis.Options{Op: analysis.OpWarrow, Localized: true, MaxEvals: 20_000_000, Timeout: SolveTimeout})
		if err1 != nil || err2 != nil {
			fmt.Fprintf(&sb, "  %-16s solver error (%v / %v)\n", b.Name, err1, err2)
			continue
		}
		evalsFull += full.Stats.Evals
		evalsLoc += loc.Stats.Evals
		for _, fn := range g.Order {
			for _, n := range g.Graphs[fn].Nodes {
				points++
				ef := full.PointEnv(fn, n.ID)
				el := loc.PointEnv(fn, n.ID)
				switch {
				case full.EnvL.Eq(el, ef):
				case full.EnvL.Leq(el, ef):
					better++
				default:
					worse++
				}
			}
		}
	}
	fmt.Fprintf(&sb, "  evaluations: full ⊟ %d, localized ⊟₂ %d\n", evalsFull, evalsLoc)
	fmt.Fprintf(&sb, "  precision:   localized better at %d, worse at %d of %d points\n",
		better, worse, points)
	sb.WriteString("  (plain updates at joins skip the widen-then-narrow detour; the ⊟₂\n")
	sb.WriteString("   backstop at loop heads occasionally gives up a narrowing step)\n")
	return sb.String()
}
