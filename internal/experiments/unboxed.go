// Dense-boxed vs unboxed-core macro benchmark.
//
// UnboxedVsDense drives the four global solvers over the same eqgen matrix
// as DenseVsMap, once per compiled core — dense-boxed (Config.CoreDense,
// which pins the boxed []D assignment) and unboxed (Config.CoreUnboxed,
// which compiles interval/flat/powerset values into flat machine words and
// runs the fused raw right-hand sides) — verifies three-way bit-identity
// against the map core, and reports wall-clock plus allocations per
// evaluation. The headline number is the geometric-mean unboxed-over-dense
// wall-clock speedup, broken down per solver and per domain; cmd/bench
// -unboxed persists the rows to BENCH_unboxed.json.
package experiments

import (
	"fmt"
	"math"
	"time"

	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// GeomeanBreakdown slices a geometric-mean speedup along the two benchmark
// axes. Each entry is the geomean over the (system, solver) pairs matching
// the key, so the aggregate can be traced to the solver loops or domains
// that earn (or lose) it.
type GeomeanBreakdown struct {
	BySolver map[string]float64 `json:"by_solver"`
	ByDomain map[string]float64 `json:"by_domain"`
}

// speedupLog is one measured pair tagged with its breakdown keys.
type speedupLog struct {
	solver string
	domain string
	log    float64
}

func geomeanOf(logs []speedupLog, key func(speedupLog) string) map[string]float64 {
	sums := map[string]float64{}
	counts := map[string]int{}
	for _, s := range logs {
		k := key(s)
		sums[k] += s.log
		counts[k]++
	}
	out := make(map[string]float64, len(sums))
	for k, sum := range sums {
		out[k] = round2(math.Exp(sum / float64(counts[k])))
	}
	return out
}

// UnboxedVsDense runs the matrix with reps timed repetitions per (system,
// solver, core) and returns the rows, the overall geomean unboxed-over-dense
// speedup, its per-solver/per-domain breakdown, and notes for skipped pairs.
func UnboxedVsDense(cases []DenseCase, reps int) ([]PerfRow, float64, *GeomeanBreakdown, []string, error) {
	var rows []PerfRow
	var logs []speedupLog
	var notes []string
	for _, dc := range cases {
		g := eqgen.New(dc.Gen)
		var (
			caseRows  []PerfRow
			caseLogs  []speedupLog
			caseNotes []string
			err       error
		)
		switch {
		case g.Interval != nil:
			caseRows, caseLogs, caseNotes, err = unboxedCaseRows(dc.Name, "interval", lattice.Ints, g.Interval, reps)
		case g.Flat != nil:
			caseRows, caseLogs, caseNotes, err = unboxedCaseRows(dc.Name, "flat", eqgen.FlatL, g.Flat, reps)
		case g.Powerset != nil:
			caseRows, caseLogs, caseNotes, err = unboxedCaseRows(dc.Name, "powerset", eqgen.PowersetL(), g.Powerset, reps)
		}
		if err != nil {
			return rows, 0, nil, notes, fmt.Errorf("%s: %w", dc.Name, err)
		}
		rows = append(rows, caseRows...)
		logs = append(logs, caseLogs...)
		notes = append(notes, caseNotes...)
	}
	if len(logs) == 0 {
		return rows, 0, nil, notes, nil
	}
	sum := 0.0
	for _, s := range logs {
		sum += s.log
	}
	bd := &GeomeanBreakdown{
		BySolver: geomeanOf(logs, func(s speedupLog) string { return s.solver }),
		ByDomain: geomeanOf(logs, func(s speedupLog) string { return s.domain }),
	}
	return rows, math.Exp(sum / float64(len(logs))), bd, notes, nil
}

func unboxedCaseRows[D any](name, domain string, l lattice.Lattice[D], sys *eqn.System[int, D], reps int) ([]PerfRow, []speedupLog, []string, error) {
	init := eqn.ConstBottom[int, D](l)
	// The structured operator is what unlocks the raw fast path; the boxed
	// cores apply it through the identical Apply, so all three runs use the
	// same ⊟ semantics.
	op := func() solver.Operator[int, D] { return solver.WarrowOp[int, D](l) }
	runs := []denseRun[D]{
		{"rr", func(c solver.Config) (map[int]D, solver.Stats, error) { return solver.RR(sys, l, op(), init, c) }},
		{"w", func(c solver.Config) (map[int]D, solver.Stats, error) { return solver.W(sys, l, op(), init, c) }},
		{"srr", func(c solver.Config) (map[int]D, solver.Stats, error) { return solver.SRR(sys, l, op(), init, c) }},
		{"sw", func(c solver.Config) (map[int]D, solver.Stats, error) { return solver.SW(sys, l, op(), init, c) }},
	}
	var rows []PerfRow
	var logs []speedupLog
	var notes []string
	for _, r := range runs {
		cfg := func(core solver.Core) solver.Config {
			return solver.Config{Core: core, MaxEvals: denseBudget, Timeout: SolveTimeout}
		}
		mapSigma, mapSt, err := r.run(cfg(solver.CoreMap))
		if err != nil {
			if rep, ok := solver.ReportOf(err); ok && rep.Reason == solver.AbortBudget {
				notes = append(notes, fmt.Sprintf(
					"%s/%s skipped: no fixpoint within %d evals (unstructured iteration with the warrow operator need not terminate)",
					name, r.name, denseBudget))
				continue
			}
			return rows, logs, notes, fmt.Errorf("%s map: %w", r.name, err)
		}
		// Three-way bit-identity gate: the unboxed rows claim nothing unless
		// the word encodings reproduce the boxed computation exactly.
		for _, core := range []solver.Core{solver.CoreDense, solver.CoreUnboxed} {
			sigma, st, err := r.run(cfg(core))
			if err != nil {
				return rows, logs, notes, fmt.Errorf("%s %s: %w", r.name, core, err)
			}
			if mapSt.Evals != st.Evals || mapSt.Updates != st.Updates ||
				mapSt.Rounds != st.Rounds || mapSt.MaxQueue != st.MaxQueue {
				return rows, logs, notes, fmt.Errorf("%s: cores diverge: map %+v, %s %+v", r.name, mapSt, core, st)
			}
			for x, v := range mapSigma {
				if !l.Eq(v, sigma[x]) {
					return rows, logs, notes, fmt.Errorf("%s: %s core diverges at σ[%d]", r.name, core, x)
				}
			}
		}
		denseWall, denseAllocs, denseBytes, err := denseMeasure(r.run, cfg(solver.CoreDense), reps)
		if err != nil {
			return rows, logs, notes, fmt.Errorf("%s dense: %w", r.name, err)
		}
		ubWall, ubAllocs, ubBytes, err := denseMeasure(r.run, cfg(solver.CoreUnboxed), reps)
		if err != nil {
			return rows, logs, notes, fmt.Errorf("%s unboxed: %w", r.name, err)
		}
		evals := float64(mapSt.Evals)
		rows = append(rows,
			PerfRow{
				Name: name, Solver: r.name, Core: "dense", Workers: 1,
				WallNs: denseWall, Evals: mapSt.Evals, Updates: mapSt.Updates, Unknowns: mapSt.Unknowns,
				AllocsPerEval: round2(float64(denseAllocs) / evals), BytesPerEval: round2(float64(denseBytes) / evals),
			},
			PerfRow{
				Name: name, Solver: r.name, Core: "unboxed", Workers: 1,
				WallNs: ubWall, Evals: mapSt.Evals, Updates: mapSt.Updates, Unknowns: mapSt.Unknowns,
				AllocsPerEval: round2(float64(ubAllocs) / evals), BytesPerEval: round2(float64(ubBytes) / evals),
			})
		logs = append(logs, speedupLog{r.name, domain, math.Log(float64(denseWall) / float64(ubWall))})
	}
	return rows, logs, notes, nil
}

// FormatUnboxedRows renders the dense-vs-unboxed rows as per-pair speedup
// lines followed by the geomean and its breakdown.
func FormatUnboxedRows(rows []PerfRow, geomean float64, bd *GeomeanBreakdown) string {
	out := fmt.Sprintf("%-22s %-6s %12s %12s %8s %14s %14s\n",
		"name", "solver", "dense", "unboxed", "speedup", "allocs/eval", "(dense)")
	for i := 0; i+1 < len(rows); i += 2 {
		d, u := rows[i], rows[i+1]
		if d.Core != "dense" || u.Core != "unboxed" || d.Solver != u.Solver {
			continue
		}
		out += fmt.Sprintf("%-22s %-6s %12s %12s %7.2fx %14.2f %14.2f\n",
			d.Name, d.Solver,
			time.Duration(d.WallNs).Round(time.Microsecond),
			time.Duration(u.WallNs).Round(time.Microsecond),
			float64(d.WallNs)/float64(u.WallNs),
			u.AllocsPerEval, d.AllocsPerEval)
	}
	out += fmt.Sprintf("geomean unboxed-core speedup: %.2fx\n", geomean)
	if bd != nil {
		out += fmt.Sprintf("  by solver: %v\n  by domain: %v\n", bd.BySolver, bd.ByDomain)
	}
	return out
}
