// Package experiments regenerates the tables and figures of the paper's
// evaluation (Sec. 7): Fig. 7 (precision of ⊟ vs. two-phase
// widening/narrowing on the WCET suite) and Table 1 (runtime and unknown
// counts of the ∇- and ⊟-solvers on SpecCPU-scale programs, with and
// without context sensitivity), plus the divergence traces of Examples 1–2
// and two ablations. The cmd/bench tool prints them; bench_test.go wraps
// them in testing.B benchmarks.
package experiments

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/precision"
	"warrow/internal/synth"
	"warrow/internal/wcet"
)

// SolveTimeout, when positive, bounds every solver and analysis invocation
// the experiment suites make with a wall-clock deadline (threaded into
// analysis.Options.Timeout / solver.Config.Timeout, where the watchdog turns
// it into a structured deadline abort). cmd/bench sets it from its -timeout
// flag before launching any suite; it must not be written concurrently with
// a running suite. The zero value means unbounded.
var SolveTimeout time.Duration

func init() {
	// SLR explores fresh unknowns by recursion, so the stack grows with the
	// longest discovery chain. Context-sensitive analysis of the Table 1
	// programs discovers hundreds of thousands of unknowns along deep call
	// chains; raise the limit well beyond Go's 1 GB default (stacks are
	// committed lazily, so this costs nothing unless used). 6 GiB overflows
	// a 32-bit int, so clamp to the platform maximum.
	stack := int64(6) << 30
	if stack > int64(^uint(0)>>1) {
		stack = int64(^uint(0) >> 1)
	}
	debug.SetMaxStack(int(stack))
}

// fanOut runs job(0..n-1) on a bounded worker pool and collects results by
// index, so callers iterate them in deterministic input order no matter
// which worker finished first. onDone, if non-nil, fires once per completed
// job in completion order, serialized under a mutex (progress reporting).
// After the first error, queued jobs are skipped, in-flight ones finish,
// and the first error is returned.
func fanOut[T any](workers, n int, job func(int) (T, error), onDone func(T)) ([]T, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	out := make([]T, n)
	jobs := make(chan int)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				mu.Lock()
				skip := firstErr != nil
				mu.Unlock()
				if skip {
					continue
				}
				v, err := job(i)
				mu.Lock()
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
				} else {
					out[i] = v
					if onDone != nil {
						onDone(v)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out, firstErr
}

// Fig7Row is one bar of Fig. 7.
type Fig7Row struct {
	Name        string
	LOC         int
	Points      int     // compared program points
	Improved    int     // points strictly improved by ⊟
	ImprovedPct float64 // percentage
}

// Fig7Result is the regenerated figure.
type Fig7Result struct {
	Rows []Fig7Row
	// WeightedAvg is the improvement percentage weighted by program
	// points, the paper's headline 39%.
	WeightedAvg float64
}

// Fig7 analyzes every WCET benchmark with the ⊟-solver and the two-phase
// baseline (context-insensitive locals, flow-insensitive globals — the
// paper's Fig. 7 configuration) and compares precision per program point,
// fanning the benchmarks out across GOMAXPROCS workers.
func Fig7() (Fig7Result, error) { return Fig7Workers(0) }

// Fig7Workers is Fig7 with an explicit harness worker-pool size
// (0 = GOMAXPROCS). Rows come back in suite order regardless of which
// benchmark finished first.
func Fig7Workers(workers int) (Fig7Result, error) {
	benches := wcet.All()
	rows, err := fanOut(workers, len(benches), func(i int) (Fig7Row, error) {
		return fig7Row(benches[i])
	}, nil)
	if err != nil {
		return Fig7Result{}, err
	}
	var out Fig7Result
	totalPoints, totalImproved := 0, 0
	for _, row := range rows {
		out.Rows = append(out.Rows, row)
		totalPoints += row.Points
		totalImproved += row.Improved
	}
	if totalPoints > 0 {
		out.WeightedAvg = 100 * float64(totalImproved) / float64(totalPoints)
	}
	return out, nil
}

// fig7Row measures one WCET benchmark in the Fig. 7 configuration.
func fig7Row(b wcet.Benchmark) (Fig7Row, error) {
	ast, err := cint.Parse(b.Src)
	if err != nil {
		return Fig7Row{}, fmt.Errorf("%s: %w", b.Name, err)
	}
	g := cfg.Build(ast)
	warrow, err := analysis.Run(g, analysis.Options{
		Context: analysis.NoContext, Op: analysis.OpWarrow, MaxEvals: 20_000_000,
		Timeout: SolveTimeout,
	})
	if err != nil {
		return Fig7Row{}, fmt.Errorf("%s (⊟): %w", b.Name, err)
	}
	base, err := analysis.Run(g, analysis.Options{
		Context: analysis.NoContext, Op: analysis.OpTwoPhase, MaxEvals: 20_000_000,
		Timeout: SolveTimeout,
	})
	if err != nil {
		return Fig7Row{}, fmt.Errorf("%s (two-phase): %w", b.Name, err)
	}
	c := precision.Compare(warrow, base)
	return Fig7Row{
		Name:        b.Name,
		LOC:         b.LOC(),
		Points:      c.Total,
		Improved:    c.Improved,
		ImprovedPct: c.ImprovedPct(),
	}, nil
}

// FormatFig7 renders the figure as an ASCII bar chart, benchmarks sorted by
// program size as in the paper.
func FormatFig7(r Fig7Result) string {
	var sb strings.Builder
	sb.WriteString("Figure 7: percentage of program points improved by the ⊟-solver\n")
	sb.WriteString("over two-phase widening/narrowing (sorted by program size)\n\n")
	for _, row := range r.Rows {
		bar := strings.Repeat("█", int(row.ImprovedPct/2+0.5))
		fmt.Fprintf(&sb, "%-16s %4d loc  %5.1f%%  %-50s (%d/%d points)\n",
			row.Name, row.LOC, row.ImprovedPct, bar, row.Improved, row.Points)
	}
	fmt.Fprintf(&sb, "\nweighted average improvement: %.1f%% (paper: 39%%)\n", r.WeightedAvg)
	return sb.String()
}

// Table1Cell is one measurement of Table 1.
type Table1Cell struct {
	Time     time.Duration
	Unknowns int
	Evals    int
}

// Table1Row is one program of Table 1: ∇- and ⊟-solver, context-insensitive
// and context-sensitive.
type Table1Row struct {
	Name        string
	LOC         int
	WidenNoCtx  Table1Cell
	WarrowNoCtx Table1Cell
	WidenCtx    Table1Cell
	WarrowCtx   Table1Cell
}

// Table1 runs the four configurations of the paper's Table 1 on the
// SpecCPU-scale synthetic suite, fanning programs out across GOMAXPROCS
// workers. The optional progress callback receives each completed row in
// completion order; the returned slice is in suite order.
func Table1(progress func(Table1Row)) ([]Table1Row, error) {
	return Table1Workers(0, progress)
}

// Table1Workers is Table1 with an explicit harness worker-pool size
// (0 = GOMAXPROCS). Concurrent rows contend for CPU, so per-cell times are
// only comparable within a run at the same pool size.
func Table1Workers(workers int, progress func(Table1Row)) ([]Table1Row, error) {
	suite := synth.SpecSuite()
	return fanOut(workers, len(suite), func(i int) (Table1Row, error) {
		return Table1Program(suite[i])
	}, progress)
}

// Table1Program measures one program in the four Table 1 configurations.
func Table1Program(p synth.Program) (Table1Row, error) {
	row := Table1Row{Name: p.Name, LOC: p.LOC()}
	ast, err := cint.Parse(p.Src)
	if err != nil {
		return row, fmt.Errorf("%s: %w", p.Name, err)
	}
	g := cfg.Build(ast)
	configs := []struct {
		cell    *Table1Cell
		ctx     analysis.ContextPolicy
		op      analysis.OpKind
		degrade int
	}{
		{&row.WidenNoCtx, analysis.NoContext, analysis.OpWiden, 0},
		{&row.WarrowNoCtx, analysis.NoContext, analysis.OpWarrow, 0},
		{&row.WidenCtx, analysis.BucketContext, analysis.OpWiden, 0},
		// Context-sensitive systems are non-monotonic: plain ⊟ can
		// oscillate forever (widened arguments select different callee
		// contexts whose exits flip between ⊥ and live). The paper's
		// Sec. 4 remedy is the self-terminating ⊟ₖ; k = 2 narrow→widen
		// switches per unknown.
		{&row.WarrowCtx, analysis.BucketContext, analysis.OpWarrow, 2},
	}
	for _, c := range configs {
		startT := time.Now()
		res, err := analysis.Run(g, analysis.Options{
			Context: c.ctx, Op: c.op, DegradeAfter: c.degrade, MaxEvals: 100_000_000,
			Timeout: SolveTimeout,
		})
		if err != nil {
			return row, fmt.Errorf("%s (%v/%v): %w", p.Name, c.op, c.ctx, err)
		}
		*c.cell = Table1Cell{
			Time:     time.Since(startT),
			Unknowns: res.NumUnknowns(),
			Evals:    res.Stats.Evals,
		}
	}
	return row, nil
}

// FormatTable1 renders the table in the paper's layout: the ∇-solver and
// the ⊟-solver side by side, without and with context.
func FormatTable1(rows []Table1Row) string {
	var sb strings.Builder
	sb.WriteString("Table 1: interval analysis of SpecCPU-scale programs (synthetic stand-ins)\n\n")
	sb.WriteString("                         ------ without context ------   ------- with context --------\n")
	sb.WriteString("                         ∇-solver        ⊟-solver        ∇-solver        ⊟-solver\n")
	sb.WriteString("Program         LOC      Time(s) Unkn    Time(s) Unkn    Time(s) Unkn    Time(s) Unkn\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-15s %-8d %7.3f %-7d %7.3f %-7d %7.3f %-7d %7.3f %-7d\n",
			r.Name, r.LOC,
			r.WidenNoCtx.Time.Seconds(), r.WidenNoCtx.Unknowns,
			r.WarrowNoCtx.Time.Seconds(), r.WarrowNoCtx.Unknowns,
			r.WidenCtx.Time.Seconds(), r.WidenCtx.Unknowns,
			r.WarrowCtx.Time.Seconds(), r.WarrowCtx.Unknowns)
	}
	return sb.String()
}
