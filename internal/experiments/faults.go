package experiments

import (
	"fmt"
	"time"

	"warrow/internal/chaos"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// FaultOverhead measures what the fault-isolation layer costs on a healthy
// workload and what it buys on a faulty one, all on the synthetic wide
// system solved by SW:
//
//   - "sw": the plain solve — the recover barrier is always armed, so this
//     row is the floor the isolation layer imposes on everyone;
//   - "sw+ckpt": the solve snapshotting a checkpoint every ckptEvery
//     evaluations into a discarding sink — the marginal cost of periodic
//     durability;
//   - "sw+chaos": the solve under seeded transient-fault injection healed
//     by retries — the cost of surviving a faulty fact provider. The row's
//     Evals must match the plain row (failed attempts never count), which
//     the function verifies along with value equality across all rows.
func FaultOverhead(comps, size, work, ckptEvery int, faultRate float64) ([]PerfRow, error) {
	l := lattice.Ints
	sys := WideSystem(comps, size, work)
	init := func(WideKey) lattice.Interval { return lattice.EmptyInterval }
	op := func() solver.Operator[WideKey, lattice.Interval] {
		return solver.Op[WideKey](solver.Warrow[lattice.Interval](l))
	}
	name := fmt.Sprintf("wide(%dx%d,work=%d)", comps, size, work)

	start := time.Now()
	want, st, err := solver.SW(sys, l, op(), init, solver.Config{Timeout: SolveTimeout})
	if err != nil {
		return nil, fmt.Errorf("%s: SW: %w", name, err)
	}
	rows := []PerfRow{{
		Name: name, Solver: "sw", Workers: 1,
		WallNs: time.Since(start).Nanoseconds(),
		Evals:  st.Evals, Updates: st.Updates, Unknowns: st.Unknowns,
	}}
	same := func(variant string, sigma map[WideKey]lattice.Interval) error {
		for _, x := range sys.Order() {
			if !l.Eq(sigma[x], want[x]) {
				return fmt.Errorf("%s: %s: σ[%v] = %s, plain SW has %s",
					name, variant, x, sigma[x], want[x])
			}
		}
		return nil
	}

	snapshots := 0
	start = time.Now()
	sigma, cst, err := solver.SW(sys, l, op(), init, solver.Config{
		Timeout:         SolveTimeout,
		CheckpointEvery: ckptEvery,
		CheckpointSink:  func(any) { snapshots++ },
	})
	if err != nil {
		return rows, fmt.Errorf("%s: SW+ckpt: %w", name, err)
	}
	if err := same("sw+ckpt", sigma); err != nil {
		return rows, err
	}
	if snapshots == 0 {
		return rows, fmt.Errorf("%s: SW+ckpt: no snapshots taken", name)
	}
	rows = append(rows, PerfRow{
		Name: name, Solver: "sw+ckpt", Workers: 1,
		WallNs: time.Since(start).Nanoseconds(),
		Evals:  cst.Evals, Updates: cst.Updates, Unknowns: cst.Unknowns,
	})

	chaotic, inj := chaos.Wrap(sys, chaos.Config{Seed: 1, Transient: faultRate})
	start = time.Now()
	sigma, fst, err := solver.SW(chaotic, l, op(), init, solver.Config{
		Timeout: SolveTimeout,
		Retry:   solver.RetryPolicy{MaxAttempts: 20, Seed: 1},
	})
	if err != nil {
		return rows, fmt.Errorf("%s: SW+chaos: %w", name, err)
	}
	if err := same("sw+chaos", sigma); err != nil {
		return rows, err
	}
	if fst.Evals != st.Evals {
		return rows, fmt.Errorf("%s: SW+chaos: %d evals, plain SW has %d (failed attempts must not count)",
			name, fst.Evals, st.Evals)
	}
	if fst.Retries == 0 || inj.Faults() == 0 {
		return rows, fmt.Errorf("%s: SW+chaos: no faults healed (retries=%d, injected=%d)",
			name, fst.Retries, inj.Faults())
	}
	rows = append(rows, PerfRow{
		Name: name, Solver: "sw+chaos", Workers: 1,
		WallNs: time.Since(start).Nanoseconds(),
		Evals:  fst.Evals, Updates: fst.Updates, Unknowns: fst.Unknowns,
	})
	return rows, nil
}
