package experiments

import (
	"fmt"
	"strings"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// Example1System is the monotonic system of the paper's Example 1 over
// ℕ ∪ {∞}: x1 = x2, x2 = x3 + 1, x3 = x1.
func Example1System() *eqn.System[string, lattice.Nat] {
	inc := func(n lattice.Nat) lattice.Nat {
		if n.IsInf() {
			return n
		}
		return lattice.NatOf(n.Val() + 1)
	}
	s := eqn.NewSystem[string, lattice.Nat]()
	s.Define("x1", []string{"x2"}, func(get func(string) lattice.Nat) lattice.Nat { return get("x2") })
	s.Define("x2", []string{"x3"}, func(get func(string) lattice.Nat) lattice.Nat { return inc(get("x3")) })
	s.Define("x3", []string{"x1"}, func(get func(string) lattice.Nat) lattice.Nat { return get("x1") })
	return s
}

// Example2System is the monotonic system of the paper's Example 2:
// x1 = (x1+1) ⊓ (x2+1), x2 = (x2+1) ⊓ (x1+1).
func Example2System() *eqn.System[string, lattice.Nat] {
	inc := func(n lattice.Nat) lattice.Nat {
		if n.IsInf() {
			return n
		}
		return lattice.NatOf(n.Val() + 1)
	}
	rhs := func(self, other string) eqn.RHS[string, lattice.Nat] {
		return func(get func(string) lattice.Nat) lattice.Nat {
			return lattice.NatInf.Meet(inc(get(self)), inc(get(other)))
		}
	}
	s := eqn.NewSystem[string, lattice.Nat]()
	s.Define("x1", []string{"x1", "x2"}, rhs("x1", "x2"))
	s.Define("x2", []string{"x1", "x2"}, rhs("x2", "x1"))
	return s
}

// traceOp wraps ⊟ and logs every changed update.
type traceOp struct {
	l     lattice.NatInfLattice
	inner solver.Combine[lattice.Nat]
	sb    *strings.Builder
	steps int
	limit int
}

func (o *traceOp) Apply(x string, old, new lattice.Nat) lattice.Nat {
	res := o.inner(old, new)
	if res != old && o.steps < o.limit {
		o.steps++
		fmt.Fprintf(o.sb, "  %-3s: %s -> %s\n", x, old, res)
	}
	return res
}

// TraceExamples renders the divergence of RR and W with ⊟ on Examples 1–2
// and the terminating runs of SRR and SW (Examples 3–4).
func TraceExamples() string {
	var sb strings.Builder
	l := lattice.NatInf
	zero := func(string) lattice.Nat { return lattice.NatOf(0) }
	run := func(title string, f func(op solver.Operator[string, lattice.Nat]) (map[string]lattice.Nat, solver.Stats, error)) {
		fmt.Fprintf(&sb, "%s\n", title)
		op := &traceOp{inner: solver.Warrow[lattice.Nat](l), sb: &sb, limit: 12}
		sigma, st, err := f(op)
		if err != nil {
			fmt.Fprintf(&sb, "  ... diverges (stopped after %d evaluations)\n\n", st.Evals)
			return
		}
		var parts []string
		for _, x := range []string{"x1", "x2", "x3"} {
			if v, ok := sigma[x]; ok {
				parts = append(parts, fmt.Sprintf("%s=%s", x, v))
			}
		}
		fmt.Fprintf(&sb, "  terminated after %d evaluations: %s\n\n", st.Evals, strings.Join(parts, " "))
	}
	cfgSmall := solver.Config{MaxEvals: 2000}
	run("Example 1: round-robin RR with ⊟ (diverges)", func(op solver.Operator[string, lattice.Nat]) (map[string]lattice.Nat, solver.Stats, error) {
		return solver.RR(Example1System(), l, op, zero, cfgSmall)
	})
	run("Example 3: structured round-robin SRR with ⊟ (terminates)", func(op solver.Operator[string, lattice.Nat]) (map[string]lattice.Nat, solver.Stats, error) {
		return solver.SRR(Example1System(), l, op, zero, cfgSmall)
	})
	run("Example 2: worklist W with ⊟ (diverges)", func(op solver.Operator[string, lattice.Nat]) (map[string]lattice.Nat, solver.Stats, error) {
		return solver.W(Example2System(), l, op, zero, cfgSmall)
	})
	run("Example 4: structured worklist SW with ⊟ (terminates)", func(op solver.Operator[string, lattice.Nat]) (map[string]lattice.Nat, solver.Stats, error) {
		return solver.SW(Example2System(), l, op, zero, cfgSmall)
	})
	return sb.String()
}
