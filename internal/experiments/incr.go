package experiments

// Edit-workload benchmark for the incremental re-solve engine: how much of
// a from-scratch solve does an edit actually cost? Each case solves a
// generated system once, then pushes three edit sweeps through an
// incremental engine — a single localized edit (one unknown in the last
// stratum, fresh constant material, same dependences), a 1% batch and a 10%
// batch of random eqgen.Mutate edits — measuring the incremental re-solve
// against a from-scratch run of the same solver on the edited system. Every
// pair is gated on bit-identity, and the single-edit rows on ≥1000-unknown
// systems are additionally gated on the headline claim: the incremental
// re-solve performs less than 25% of the scratch evaluations.
//
// The single edit deliberately targets the last stratum. eqgen's dependence
// edges reach uniformly far back, so the influence cone of a *random*
// unknown covers about half the system — the random-target sweeps (1%, 10%)
// show exactly that graceful degradation toward scratch cost. The localized
// row models the common incremental scenario (a leaf-ward definition
// changes) where the cone, and hence the work, collapses to one stratum.

import (
	"fmt"
	"math"
	"time"

	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/incr"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// IncrCase is one system of the edit-workload benchmark.
type IncrCase struct {
	Cfg      eqgen.Config
	EditSeed uint64
}

// IncrCases returns the benchmark matrix: one ≥1000-unknown system per
// domain (shrunk for CI smoke runs).
func IncrCases(smoke bool) []IncrCase {
	n := func(full, small int) int {
		if smoke {
			return small
		}
		return full
	}
	return []IncrCase{
		{Cfg: eqgen.Config{Seed: 101, Dom: eqgen.Interval, N: n(1500, 150)}, EditSeed: 1},
		{Cfg: eqgen.Config{Seed: 202, Dom: eqgen.Flat, N: n(1200, 120)}, EditSeed: 2},
		{Cfg: eqgen.Config{Seed: 303, Dom: eqgen.Powerset, N: n(1000, 100)}, EditSeed: 3},
	}
}

// IncrWorkload runs the edit-workload benchmark and returns the perf rows
// in scratch/incremental pairs plus the geometric-mean wall-clock speedup
// of incremental over scratch across all sweeps.
func IncrWorkload(cases []IncrCase) ([]PerfRow, float64, error) {
	var rows []PerfRow
	var logSum float64
	var pairs int
	for _, c := range cases {
		g := eqgen.New(c.Cfg)
		var rs []PerfRow
		var ratios []float64
		var err error
		switch {
		case g.Interval != nil:
			rs, ratios, err = incrRows(lattice.Ints, g, g.Interval, c, eqgen.IntervalRHS)
		case g.Flat != nil:
			rs, ratios, err = incrRows(eqgen.FlatL, g, g.Flat, c, eqgen.FlatRHS)
		case g.Powerset != nil:
			rs, ratios, err = incrRows(eqgen.PowersetL(), g, g.Powerset, c, eqgen.PowersetRHS)
		}
		rows = append(rows, rs...)
		if err != nil {
			return rows, 0, err
		}
		for _, r := range ratios {
			if r > 0 {
				logSum += math.Log(r)
				pairs++
			}
		}
	}
	geomean := 0.0
	if pairs > 0 {
		geomean = math.Exp(logSum / float64(pairs))
	}
	return rows, geomean, nil
}

func incrRows[D any](l lattice.Lattice[D], g eqgen.System, sys *eqn.System[int, D], c IncrCase,
	build func(eqgen.Spec) (eqn.RHS[int, D], eqn.RawRHS[int])) ([]PerfRow, []float64, error) {
	n := sys.Len()
	init := eqn.ConstBottom[int, D](l)
	eng, err := incr.New(l, sys, init, "sw")
	if err != nil {
		return nil, nil, err
	}
	cfg := solver.Config{Timeout: SolveTimeout}
	name := fmt.Sprintf("incr(%s,n=%d)", c.Cfg.Dom, n)
	if _, err := eng.Solve(cfg); err != nil {
		return nil, nil, fmt.Errorf("%s: initial solve: %w", name, err)
	}

	onePct, tenPct := maxInt(1, n/100), maxInt(1, n/10)
	sweeps := []struct {
		label string
		k     int
		tail  bool
	}{
		{"k=1@tail", 1, true},
		{fmt.Sprintf("k=%d(1%%)", onePct), onePct, false},
		{fmt.Sprintf("k=%d(10%%)", tenPct), tenPct, false},
	}
	var rows []PerfRow
	var ratios []float64
	for si, sw := range sweeps {
		if sw.tail {
			// Localized edit: fresh material for one unknown of the last
			// stratum, dependences unchanged (the compiled shape is patched,
			// not rebuilt).
			strata := solver.Stratify(sys.DepGraph())
			i := strata[len(strata)-1].Lo
			sp := g.Shape.SpecOf(i)
			sp.Mat = (c.EditSeed + uint64(si)) * 0x9e3779b97f4a7c15
			rhs, raw := build(sp)
			sys.RedefineRaw(i, sp.Deps, rhs, raw)
		} else {
			eqgen.Mutate(g, c.EditSeed+uint64(si)*0x6c62272e07bb0142, sw.k)
		}

		t0 := time.Now()
		res, err := eng.Resolve(cfg)
		incrWall := time.Since(t0).Nanoseconds()
		if err != nil {
			return rows, ratios, fmt.Errorf("%s/%s: incremental resolve: %w", name, sw.label, err)
		}
		t1 := time.Now()
		sigma, st, err := solver.SW(sys, l, solver.WarrowOp[int](l), eng.Init(), cfg)
		scratchWall := time.Since(t1).Nanoseconds()
		if err != nil {
			return rows, ratios, fmt.Errorf("%s/%s: scratch solve: %w", name, sw.label, err)
		}
		for _, x := range sys.Order() {
			if !l.Eq(res.Values[x], sigma[x]) {
				return rows, ratios, fmt.Errorf("%s/%s: incremental value of %v = %s, scratch = %s",
					name, sw.label, x, l.Format(res.Values[x]), l.Format(sigma[x]))
			}
		}
		if sw.tail && n >= 1000 && 4*res.Stats.Evals >= st.Evals {
			return rows, ratios, fmt.Errorf("%s/%s: incremental evals %d are not under 25%% of scratch %d",
				name, sw.label, res.Stats.Evals, st.Evals)
		}
		rows = append(rows,
			PerfRow{Name: name + "/" + sw.label, Solver: "sw", Core: "scratch", Workers: 1,
				WallNs: scratchWall, Evals: st.Evals, Updates: st.Updates, Unknowns: n},
			PerfRow{Name: name + "/" + sw.label, Solver: "sw", Core: "incr", Workers: 1,
				WallNs: incrWall, Evals: res.Stats.Evals, Updates: res.Stats.Updates, Unknowns: res.DirtyUnknowns})
		if incrWall > 0 {
			ratios = append(ratios, float64(scratchWall)/float64(incrWall))
		}
	}
	return rows, ratios, nil
}

// FormatIncrRows renders the scratch/incremental pairs as a table with
// per-sweep evaluation shares and wall-clock speedups.
func FormatIncrRows(rows []PerfRow, geomean float64) string {
	out := fmt.Sprintf("%-32s %-8s %12s %10s %9s %8s %9s\n",
		"name", "run", "wall", "evals", "dirty", "evals%", "speedup")
	for i := 0; i+1 < len(rows); i += 2 {
		s, r := rows[i], rows[i+1]
		share, speedup := "-", "-"
		if s.Evals > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(r.Evals)/float64(s.Evals))
		}
		if r.WallNs > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(s.WallNs)/float64(r.WallNs))
		}
		out += fmt.Sprintf("%-32s %-8s %12s %10d %9s %8s %9s\n",
			s.Name, "scratch", time.Duration(s.WallNs).Round(time.Microsecond), s.Evals, "-", "-", "-")
		out += fmt.Sprintf("%-32s %-8s %12s %10d %9d %8s %9s\n",
			r.Name, "incr", time.Duration(r.WallNs).Round(time.Microsecond), r.Evals, r.Unknowns, share, speedup)
	}
	if geomean > 0 {
		out += fmt.Sprintf("geomean incremental speedup: %.2fx\n", geomean)
	}
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
