// Map-core vs dense-core macro benchmark.
//
// DenseVsMap drives the four global solvers over seeded eqgen systems —
// the same generator family the differential fuzzing harness pins
// bit-identity on — once per execution core, verifies that values and every
// scheduling counter agree, and reports wall-clock plus allocations per
// evaluation for both cores. The headline number is the geometric-mean
// wall-clock speedup of the dense core across all (system, solver) pairs;
// cmd/bench -dense persists the rows to BENCH_dense.json.
package experiments

import (
	"fmt"
	"math"
	"runtime"
	"time"

	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// DenseCase is one macro-benchmark system of the map-vs-dense comparison.
type DenseCase struct {
	Name string
	Gen  eqgen.Config
}

// DenseCases returns the benchmark matrix. The smoke matrix is a strict
// subset sized for CI; the full matrix covers all three eqgen domains,
// systems up to the generator's 4096-unknown cap, and a deliberately
// non-monotone instance.
func DenseCases(smoke bool) []DenseCase {
	if smoke {
		return []DenseCase{
			{"interval-1k", eqgen.Config{Seed: 11, Dom: eqgen.Interval, N: 1024, FanIn: 3, MaxSCC: 6}},
			{"flat-512", eqgen.Config{Seed: 13, Dom: eqgen.Flat, N: 512, FanIn: 3, MaxSCC: 6}},
		}
	}
	return []DenseCase{
		{"interval-1k", eqgen.Config{Seed: 11, Dom: eqgen.Interval, N: 1024, FanIn: 3, MaxSCC: 6}},
		{"interval-4k", eqgen.Config{Seed: 12, Dom: eqgen.Interval, N: 4096, FanIn: 4, MaxSCC: 8}},
		{"interval-nonmono-2k", eqgen.Config{Seed: 21, Dom: eqgen.Interval, N: 2048, FanIn: 3, MaxSCC: 6, NonMonoDensity: 0.25}},
		{"flat-2k", eqgen.Config{Seed: 13, Dom: eqgen.Flat, N: 2048, FanIn: 3, MaxSCC: 6}},
		{"powerset-1k", eqgen.Config{Seed: 17, Dom: eqgen.Powerset, N: 1024, FanIn: 3, MaxSCC: 6}},
	}
}

// denseBudget bounds every benchmark solve. Plain worklist iteration with
// ⊟ carries no termination guarantee — that is the paper's motivating
// observation — so a (system, solver) pair that exhausts the budget is
// reported as diverged and skipped rather than hanging the suite.
const denseBudget = 20_000_000

// DenseVsMap runs the matrix with reps timed repetitions per (system,
// solver, core) — the minimum is reported, the standard way to suppress
// scheduler noise — and returns the rows together with the geometric-mean
// dense-over-map wall-clock speedup and notes for any skipped pairs.
func DenseVsMap(cases []DenseCase, reps int) ([]PerfRow, float64, []string, error) {
	var rows []PerfRow
	var logs []float64
	var notes []string
	for _, dc := range cases {
		g := eqgen.New(dc.Gen)
		var (
			caseRows  []PerfRow
			speedups  []float64
			caseNotes []string
			err       error
		)
		switch {
		case g.Interval != nil:
			caseRows, speedups, caseNotes, err = denseCaseRows(dc.Name, lattice.Ints, g.Interval, reps)
		case g.Flat != nil:
			caseRows, speedups, caseNotes, err = denseCaseRows(dc.Name, eqgen.FlatL, g.Flat, reps)
		case g.Powerset != nil:
			caseRows, speedups, caseNotes, err = denseCaseRows(dc.Name, eqgen.PowersetL(), g.Powerset, reps)
		}
		if err != nil {
			return rows, 0, notes, fmt.Errorf("%s: %w", dc.Name, err)
		}
		rows = append(rows, caseRows...)
		notes = append(notes, caseNotes...)
		for _, s := range speedups {
			logs = append(logs, math.Log(s))
		}
	}
	if len(logs) == 0 {
		return rows, 0, notes, nil
	}
	sum := 0.0
	for _, v := range logs {
		sum += v
	}
	return rows, math.Exp(sum / float64(len(logs))), notes, nil
}

// denseCaseRows measures one system: every global solver on both cores.
func denseCaseRows[D any](name string, l lattice.Lattice[D], sys *eqn.System[int, D], reps int) ([]PerfRow, []float64, []string, error) {
	return denseSolverRows(name, l, sys, eqn.ConstBottom[int, D](l), reps)
}

type denseRun[D any] struct {
	name string
	run  func(solver.Config) (map[int]D, solver.Stats, error)
}

func denseSolverRows[D any](name string, l lattice.Lattice[D], sys *eqn.System[int, D], init func(int) D, reps int) ([]PerfRow, []float64, []string, error) {
	op := func() solver.Operator[int, D] { return solver.Op[int](solver.Warrow[D](l)) }
	runs := []denseRun[D]{
		{"rr", func(c solver.Config) (map[int]D, solver.Stats, error) { return solver.RR(sys, l, op(), init, c) }},
		{"w", func(c solver.Config) (map[int]D, solver.Stats, error) { return solver.W(sys, l, op(), init, c) }},
		{"srr", func(c solver.Config) (map[int]D, solver.Stats, error) { return solver.SRR(sys, l, op(), init, c) }},
		{"sw", func(c solver.Config) (map[int]D, solver.Stats, error) { return solver.SW(sys, l, op(), init, c) }},
	}
	var rows []PerfRow
	var speedups []float64
	var notes []string
	for _, r := range runs {
		cfg := func(core solver.Core) solver.Config {
			return solver.Config{Core: core, MaxEvals: denseBudget, Timeout: SolveTimeout}
		}
		mapSigma, mapSt, err := r.run(cfg(solver.CoreMap))
		if err != nil {
			if rep, ok := solver.ReportOf(err); ok && rep.Reason == solver.AbortBudget {
				notes = append(notes, fmt.Sprintf(
					"%s/%s skipped: no fixpoint within %d evals (unstructured iteration with the warrow operator need not terminate)",
					name, r.name, denseBudget))
				continue
			}
			return rows, speedups, notes, fmt.Errorf("%s map: %w", r.name, err)
		}
		denseSigma, denseSt, err := r.run(cfg(solver.CoreDense))
		if err != nil {
			return rows, speedups, notes, fmt.Errorf("%s dense: %w", r.name, err)
		}
		// Bit-identity gate: a benchmark over diverging cores measures
		// nothing.
		if mapSt.Evals != denseSt.Evals || mapSt.Updates != denseSt.Updates ||
			mapSt.Rounds != denseSt.Rounds || mapSt.MaxQueue != denseSt.MaxQueue {
			return rows, speedups, notes, fmt.Errorf("%s: cores diverge: map %+v, dense %+v", r.name, mapSt, denseSt)
		}
		for x, v := range mapSigma {
			if !l.Eq(v, denseSigma[x]) {
				return rows, speedups, notes, fmt.Errorf("%s: cores diverge at σ[%d]", r.name, x)
			}
		}
		mapWall, mapAllocs, mapBytes, err := denseMeasure(r.run, cfg(solver.CoreMap), reps)
		if err != nil {
			return rows, speedups, notes, fmt.Errorf("%s map: %w", r.name, err)
		}
		denseWall, denseAllocs, denseBytes, err := denseMeasure(r.run, cfg(solver.CoreDense), reps)
		if err != nil {
			return rows, speedups, notes, fmt.Errorf("%s dense: %w", r.name, err)
		}
		evals := float64(mapSt.Evals)
		rows = append(rows,
			PerfRow{
				Name: name, Solver: r.name, Core: "map", Workers: 1,
				WallNs: mapWall, Evals: mapSt.Evals, Updates: mapSt.Updates, Unknowns: mapSt.Unknowns,
				AllocsPerEval: round2(float64(mapAllocs) / evals), BytesPerEval: round2(float64(mapBytes) / evals),
			},
			PerfRow{
				Name: name, Solver: r.name, Core: "dense", Workers: 1,
				WallNs: denseWall, Evals: denseSt.Evals, Updates: denseSt.Updates, Unknowns: denseSt.Unknowns,
				AllocsPerEval: round2(float64(denseAllocs) / evals), BytesPerEval: round2(float64(denseBytes) / evals),
			})
		speedups = append(speedups, float64(mapWall)/float64(denseWall))
	}
	return rows, speedups, notes, nil
}

// denseMeasure times reps runs and measures the allocation profile of reps
// further runs via the runtime's monotonic allocation counters, reporting
// the minimum of each — the standard way to suppress scheduler and GC
// noise. Each rep starts from a freshly collected heap so GC pacing from
// earlier runs cannot bleed into the measurement, and runs shorter than
// 100ms get extra reps (minimums of short runs are noisy).
func denseMeasure[D any](run func(solver.Config) (map[int]D, solver.Stats, error), cfg solver.Config, reps int) (wallNs int64, allocs, bytes uint64, err error) {
	wallNs = math.MaxInt64
	for i := 0; i < reps; i++ {
		runtime.GC()
		start := time.Now()
		if _, _, err = run(cfg); err != nil {
			return 0, 0, 0, err
		}
		d := time.Since(start).Nanoseconds()
		if d < wallNs {
			wallNs = d
		}
		if i == reps-1 && d < (100*time.Millisecond).Nanoseconds() && reps < 10 {
			reps++
		}
	}
	allocs, bytes = math.MaxUint64, math.MaxUint64
	for i := 0; i < 3; i++ {
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		if _, _, err = run(cfg); err != nil {
			return 0, 0, 0, err
		}
		runtime.ReadMemStats(&m1)
		if a := m1.Mallocs - m0.Mallocs; a < allocs {
			allocs = a
		}
		if b := m1.TotalAlloc - m0.TotalAlloc; b < bytes {
			bytes = b
		}
	}
	return wallNs, allocs, bytes, nil
}

func round2(v float64) float64 { return math.Round(v*100) / 100 }

// FormatDenseRows renders the map-vs-dense rows as per-pair speedup lines.
func FormatDenseRows(rows []PerfRow, geomean float64) string {
	out := fmt.Sprintf("%-22s %-6s %12s %12s %8s %14s %14s\n",
		"name", "solver", "map", "dense", "speedup", "allocs/eval", "(map)")
	for i := 0; i+1 < len(rows); i += 2 {
		m, d := rows[i], rows[i+1]
		if m.Core != "map" || d.Core != "dense" || m.Solver != d.Solver {
			continue
		}
		out += fmt.Sprintf("%-22s %-6s %12s %12s %7.2fx %14.2f %14.2f\n",
			m.Name, m.Solver,
			time.Duration(m.WallNs).Round(time.Microsecond),
			time.Duration(d.WallNs).Round(time.Microsecond),
			float64(m.WallNs)/float64(d.WallNs),
			d.AllocsPerEval, m.AllocsPerEval)
	}
	out += fmt.Sprintf("geomean dense-core speedup: %.2fx\n", geomean)
	return out
}
