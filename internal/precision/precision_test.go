package precision

import (
	"testing"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/wcet"
)

func analyzeBoth(t *testing.T, src string) (*analysis.Result, *analysis.Result) {
	t.Helper()
	ast, err := cint.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(ast)
	warrow, err := analysis.Run(g, analysis.Options{Op: analysis.OpWarrow, MaxEvals: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	base, err := analysis.Run(g, analysis.Options{Op: analysis.OpTwoPhase, MaxEvals: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	return warrow, base
}

// TestWarrowImprovesGlobalDependentPoints: the Example 7 pattern — globals
// fed from bounded locals — improves under ⊟ versus the two-phase baseline
// (which cannot soundly narrow flow-insensitive globals).
func TestWarrowImprovesGlobalDependentPoints(t *testing.T) {
	warrow, base := analyzeBoth(t, `
int g = 0;
int main() {
    int i;
    int x;
    for (i = 0; i < 10; i = i + 1) {
        g = i + 1;
    }
    x = g;
    return x;
}`)
	c := Compare(warrow, base)
	t.Logf("%s", c)
	if c.Improved == 0 {
		t.Error("⊟ should improve at least one point on the global-feeding loop")
	}
	if c.Worse > 0 {
		t.Errorf("⊟ worse at %d points", c.Worse)
	}
	if c.GlobalsImproved == 0 {
		t.Error("⊟ should improve the global g")
	}
}

// TestNoImprovementOnPureLocalCode: purely local loop invariants are
// recovered equally by the baseline's narrowing phase — 0% improvement,
// like qsort-exam in Fig. 7.
func TestNoImprovementOnPureLocalCode(t *testing.T) {
	warrow, base := analyzeBoth(t, `
int main() {
    int i;
    int s;
    s = 0;
    for (i = 0; i < 100; i = i + 1) {
        s = s + 1;
    }
    return i + s;
}`)
	c := Compare(warrow, base)
	t.Logf("%s", c)
	if c.Improved != 0 || c.Worse != 0 {
		t.Errorf("expected identical results on pure local code: %s", c)
	}
}

// TestSelfComparisonIsAllEqual: comparing a result against itself yields
// only Equal points.
func TestSelfComparisonIsAllEqual(t *testing.T) {
	warrow, _ := analyzeBoth(t, `int main() { int i; i = 1; return i; }`)
	c := Compare(warrow, warrow)
	if c.Improved != 0 || c.Worse != 0 || c.Incomparable != 0 || c.Equal != c.Total {
		t.Errorf("self comparison: %s", c)
	}
}

// TestFig7ShapeOnSuite: across the WCET suite, ⊟ improves a substantial
// fraction of benchmarks, is never less precise at any point, and at least
// one benchmark shows exactly 0% improvement (the qsort-exam analogue).
func TestFig7ShapeOnSuite(t *testing.T) {
	improvedBenchmarks, zeroBenchmarks := 0, 0
	for _, b := range wcet.All() {
		warrow, base := analyzeBoth(t, b.Src)
		c := Compare(warrow, base)
		t.Logf("%-16s %s", b.Name, c)
		if c.Worse > 0 {
			t.Errorf("%s: ⊟ less precise at %d points", b.Name, c.Worse)
		}
		if c.Improved > 0 {
			improvedBenchmarks++
		} else {
			zeroBenchmarks++
		}
	}
	if improvedBenchmarks < len(wcet.All())/2 {
		t.Errorf("only %d benchmarks improved; expected a majority", improvedBenchmarks)
	}
	if zeroBenchmarks == 0 {
		t.Error("expected at least one benchmark with 0%% improvement (qsort-exam analogue)")
	}
}
