// Package precision compares analysis results per program point — the
// metric of the paper's Fig. 7, which reports for each benchmark the
// percentage of program points at which the ⊟-solver computes strictly
// more precise invariants than the two-phase widening/narrowing baseline.
package precision

import (
	"fmt"
	"sort"

	"warrow/internal/analysis"
	"warrow/internal/lattice"
)

// Comparison summarizes a per-point comparison of result A against
// result B.
type Comparison struct {
	// Total counts compared program points (reachable in at least one of
	// the two results).
	Total int
	// Improved counts points where A is strictly more precise than B.
	Improved int
	// Worse counts points where A is strictly less precise than B.
	Worse int
	// Incomparable counts points where neither ordering holds.
	Incomparable int
	// Equal counts points with identical invariants.
	Equal int
	// GlobalsImproved / GlobalsWorse compare the flow-insensitive
	// variables the same way.
	GlobalsImproved, GlobalsWorse, GlobalsTotal int
}

// ImprovedPct returns the percentage of points at which A improves on B.
func (c Comparison) ImprovedPct() float64 {
	if c.Total == 0 {
		return 0
	}
	return 100 * float64(c.Improved) / float64(c.Total)
}

// String renders the comparison compactly.
func (c Comparison) String() string {
	return fmt.Sprintf("points: %d/%d improved (%.1f%%), %d worse, %d incomparable; globals: %d/%d improved",
		c.Improved, c.Total, c.ImprovedPct(), c.Worse, c.Incomparable,
		c.GlobalsImproved, c.GlobalsTotal)
}

// Compare evaluates result a against result b point by point. Both results
// must come from analyzing the same CFG program.
func Compare(a, b *analysis.Result) Comparison {
	var c Comparison
	l := a.EnvL
	for _, fn := range a.CFG.Order {
		g := a.CFG.Graphs[fn]
		for _, n := range g.Nodes {
			ea := a.PointEnv(fn, n.ID)
			eb := b.PointEnv(fn, n.ID)
			if ea.IsBot() && eb.IsBot() {
				continue // unreachable in both: not a program point that counts
			}
			c.Total++
			switch {
			case l.Eq(ea, eb):
				c.Equal++
			case l.Leq(ea, eb):
				c.Improved++
			case l.Leq(eb, ea):
				c.Worse++
			default:
				c.Incomparable++
			}
		}
	}
	for _, id := range globalIDs(a) {
		va, vb := a.Global(id), b.Global(id)
		if va.IsEmpty() && vb.IsEmpty() {
			continue
		}
		c.GlobalsTotal++
		switch {
		case lattice.Ints.Eq(va, vb):
		case lattice.Ints.Leq(va, vb):
			c.GlobalsImproved++
		case lattice.Ints.Leq(vb, va):
			c.GlobalsWorse++
		}
	}
	return c
}

// globalIDs collects the flow-insensitive unknowns present in either
// result.
func globalIDs(a *analysis.Result) []string {
	seen := map[string]bool{}
	for k := range a.Values {
		if k.Kind == analysis.KGlobal {
			seen[k.Var] = true
		}
	}
	out := make([]string, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
