// Package chaos wraps finite equation systems with a deterministic fault
// injector, so the solvers' fault-isolation layer can be exercised under
// test: seeded panics (persistent faults), retryable transient failures
// (panics wrapping solver.ErrTransient) and latency spikes, decided per
// right-hand-side evaluation from (seed, unknown, per-unknown eval count)
// alone. The same seed always injects the same fault schedule for the same
// evaluation sequence, so single-solver failures reproduce exactly; under
// PSW the schedule depends on the interleaving, which is precisely the
// point — the pool must stay clean whichever worker trips the fault.
//
// The wrapper never alters values: a wrapped right-hand side either panics
// before evaluating or returns exactly what the pristine one returns. Any
// assignment a solver completes on the chaotic system is therefore a result
// of the pristine system, and any checkpoint captured on abort resumes on
// the pristine system (the wrapper preserves order and dependences, hence
// the checkpoint fingerprint).
package chaos

import (
	"fmt"
	"sync"
	"time"

	"warrow/internal/eqn"
	"warrow/internal/solver"
)

// Config tunes the injector. The zero value injects nothing.
type Config struct {
	// Seed fixes the fault schedule.
	Seed uint64
	// Transient is the per-evaluation probability of a retryable fault: a
	// panic whose value wraps solver.ErrTransient.
	Transient float64
	// Persistent is the per-evaluation probability of a non-retryable fault:
	// a plain panic that aborts the solve on the first attempt.
	Persistent float64
	// Latency is the per-evaluation probability of a latency spike.
	Latency float64
	// Delay is the spike duration; 0 means 200µs. Keep it small: spikes
	// reorder PSW workers, they should not dominate test wall-clock.
	Delay time.Duration
	// MaxFaults caps the total number of injected faults (transient and
	// persistent combined); 0 means unlimited. A cap lets retry-enabled runs
	// provably drain the schedule and terminate.
	MaxFaults int
}

// Injector is the mutable state behind one wrapped system: per-unknown
// evaluation counters and fault tallies. Safe for concurrent use (PSW).
type Injector struct {
	cfg Config

	mu          sync.Mutex
	count       map[uint64]uint64
	transients  int
	persistents int
	delays      int
}

// Counts reports how many transient faults, persistent faults and latency
// spikes have been injected so far.
func (in *Injector) Counts() (transients, persistents, delays int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.transients, in.persistents, in.delays
}

// Faults reports the total number of injected faults.
func (in *Injector) Faults() int {
	t, p, _ := in.Counts()
	return t + p
}

// splitmix64 is the draw behind every injection decision.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// unit maps a draw to [0, 1).
func unit(z uint64) float64 { return float64(z>>11) / (1 << 53) }

// visit decides the fate of the n-th evaluation of unknown idx. It returns
// a positive duration for a latency spike and panics for faults; the panic
// happens outside the injector lock.
func (in *Injector) visit(idx uint64, name string) {
	in.mu.Lock()
	n := in.count[idx]
	in.count[idx] = n + 1
	draw := unit(splitmix64(in.cfg.Seed ^ splitmix64(idx)<<1 ^ splitmix64(n)))
	budget := in.cfg.MaxFaults == 0 || in.transients+in.persistents < in.cfg.MaxFaults
	var fault error
	var delay time.Duration
	switch {
	case budget && draw < in.cfg.Transient:
		in.transients++
		fault = fmt.Errorf("%w: chaos: injected fault at %s (eval %d)", solver.ErrTransient, name, n)
	case budget && draw < in.cfg.Transient+in.cfg.Persistent:
		in.persistents++
		fault = fmt.Errorf("chaos: injected persistent fault at %s (eval %d)", name, n)
	case draw < in.cfg.Transient+in.cfg.Persistent+in.cfg.Latency:
		in.delays++
		delay = in.cfg.Delay
		if delay <= 0 {
			delay = 200 * time.Microsecond
		}
	}
	in.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fault != nil {
		panic(fault)
	}
}

// Wrap returns a chaotic view of sys — same unknowns, same order, same
// dependences, same values — whose right-hand sides pass through the
// injector before evaluating, plus the injector itself for inspection.
func Wrap[X comparable, D any](sys *eqn.System[X, D], cfg Config) (*eqn.System[X, D], *Injector) {
	in := &Injector{cfg: cfg, count: make(map[uint64]uint64)}
	out := eqn.NewSystem[X, D]()
	for i, x := range sys.Order() {
		idx, name, rhs := uint64(i), fmt.Sprint(x), sys.RHS(x)
		out.Define(x, sys.Deps(x), func(get func(X) D) D {
			in.visit(idx, name)
			return rhs(get)
		})
	}
	return out, in
}
