package chaos

import (
	"net"
	"sync"
	"time"
)

// This file is the network side of the chaos package: net.Conn wrappers
// that misbehave the way real clients of a solve daemon do — vanishing
// mid-request, trickling bytes out slower than any reasonable frame rate,
// or corrupting frames in flight. The daemon tests drive eqsolved with
// these to prove sessions are dropped or answered, never leaked.

// CutAfter returns a conn that writes through normally until n total bytes
// have been written, then closes the underlying connection mid-write — a
// client dying in the middle of a request. Reads are untouched until the
// cut. n <= 0 cuts on the first write.
func CutAfter(c net.Conn, n int) net.Conn {
	return &cutConn{Conn: c, left: n}
}

type cutConn struct {
	net.Conn
	mu   sync.Mutex
	left int
	cut  bool
}

func (c *cutConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if c.cut {
		c.mu.Unlock()
		return 0, net.ErrClosed
	}
	if len(p) >= c.left {
		// Deliver the prefix that fits, then sever the connection so the
		// peer sees a truncated frame, not a clean shutdown boundary.
		keep := c.left
		if keep < 0 {
			keep = 0
		}
		c.cut = true
		c.mu.Unlock()
		var n int
		var err error
		if keep > 0 {
			n, err = c.Conn.Write(p[:keep])
		}
		c.Conn.Close()
		if err != nil {
			return n, err
		}
		return n, net.ErrClosed
	}
	c.left -= len(p)
	c.mu.Unlock()
	return c.Conn.Write(p)
}

// SlowWriter returns a conn whose writes trickle out chunk bytes at a time
// with delay between chunks — a slow-loris client. chunk <= 0 means one
// byte; delay <= 0 means 1ms.
func SlowWriter(c net.Conn, chunk int, delay time.Duration) net.Conn {
	if chunk <= 0 {
		chunk = 1
	}
	if delay <= 0 {
		delay = time.Millisecond
	}
	return &slowConn{Conn: c, chunk: chunk, delay: delay}
}

type slowConn struct {
	net.Conn
	chunk int
	delay time.Duration
}

func (c *slowConn) Write(p []byte) (int, error) {
	var written int
	for len(p) > 0 {
		if written > 0 {
			time.Sleep(c.delay)
		}
		k := c.chunk
		if k > len(p) {
			k = len(p)
		}
		n, err := c.Conn.Write(p[:k])
		written += n
		if err != nil {
			return written, err
		}
		p = p[k:]
	}
	return written, nil
}

// CorruptByte returns a conn that XORs mask into the byte at offset (counted
// across the whole written stream) — one flipped bit is enough to desync a
// length-prefixed framing layer or break a JSON envelope, depending on where
// it lands. A zero mask is promoted to 0xff.
func CorruptByte(c net.Conn, offset int, mask byte) net.Conn {
	if mask == 0 {
		mask = 0xff
	}
	return &corruptConn{Conn: c, offset: offset, mask: mask}
}

type corruptConn struct {
	net.Conn
	mu      sync.Mutex
	written int
	offset  int
	mask    byte
	done    bool
}

func (c *corruptConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	if !c.done && c.offset < c.written+len(p) && c.offset >= c.written {
		q := make([]byte, len(p))
		copy(q, p)
		q[c.offset-c.written] ^= c.mask
		c.done = true
		p = q
	}
	c.written += len(p)
	c.mu.Unlock()
	return c.Conn.Write(p)
}
