package chaos

import (
	"errors"
	"fmt"

	"warrow/internal/certify"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// Verdict records how one solver fared under injection.
type Verdict struct {
	// Solver names the solver ("rr", "psw/w=4", …).
	Solver string
	// Completed is true when the chaotic run terminated with a certified
	// post-solution despite the injection (retry healed every fault).
	Completed bool
	// Resumed is true when the chaotic run aborted cleanly and the attached
	// checkpoint resumed to a certified result on the pristine system.
	Resumed bool
	// Faults is the number of faults the injector fired during the run.
	Faults int
}

// Check is the chaos property: against a fault-injecting view of sys, every
// solver must either
//
//   - complete, in which case its assignment must certify as a
//     post-solution of the pristine system (injected faults never corrupt
//     values), or
//   - abort cleanly — a structured *solver.AbortError, not a raw panic —
//     carrying a checkpoint that resumes on the pristine system to a
//     certified result.
//
// The solver config scfg is applied to the chaotic runs as given (set
// scfg.Retry to let transient faults heal); resumed runs get the same
// config without injection. workers selects the PSW pool sizes to test.
// A nil error means every solver upheld the property; the verdicts report
// which branch each one took.
func Check[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, ccfg Config, scfg solver.Config, workers []int) ([]Verdict, error) {
	// The structured ⊟: bit-identical to Op(Warrow(l)) and eligible for the
	// unboxed value store when scfg requests (or auto-selects) it.
	op := solver.WarrowOp[X, D](l)

	type runner struct {
		name string
		run  func(*eqn.System[X, D], solver.Config) (map[X]D, solver.Stats, error)
	}
	runners := []runner{
		{"rr", func(s *eqn.System[X, D], c solver.Config) (map[X]D, solver.Stats, error) {
			return solver.RR(s, l, op, init, c)
		}},
		{"w", func(s *eqn.System[X, D], c solver.Config) (map[X]D, solver.Stats, error) {
			return solver.W(s, l, op, init, c)
		}},
		{"srr", func(s *eqn.System[X, D], c solver.Config) (map[X]D, solver.Stats, error) {
			return solver.SRR(s, l, op, init, c)
		}},
		{"sw", func(s *eqn.System[X, D], c solver.Config) (map[X]D, solver.Stats, error) {
			return solver.SW(s, l, op, init, c)
		}},
		// The widening-point family: selective ∇/⊟ placement changes where
		// values settle, not the fault contract — certified completion or a
		// clean, resumable abort, like every other global solver.
		{"slr2", func(s *eqn.System[X, D], c solver.Config) (map[X]D, solver.Stats, error) {
			return solver.SLR2(s, l, op, init, c)
		}},
		{"slr3", func(s *eqn.System[X, D], c solver.Config) (map[X]D, solver.Stats, error) {
			return solver.SLR3(s, l, op, init, c)
		}},
		{"slr4", func(s *eqn.System[X, D], c solver.Config) (map[X]D, solver.Stats, error) {
			return solver.SLR4(s, l, op, init, c)
		}},
	}
	for _, wk := range workers {
		wk := wk
		runners = append(runners, runner{fmt.Sprintf("psw/w=%d", wk), func(s *eqn.System[X, D], c solver.Config) (map[X]D, solver.Stats, error) {
			c.Workers = wk
			return solver.PSW(s, l, op, init, c)
		}})
	}
	// CPW under chaos doubles as a schedule perturbation harness: injected
	// per-evaluation latency shifts which worker claims which unknown, so
	// each seed exercises a different chaotic interleaving — and the verdict
	// contract (certified completion or clean resumable abort) must hold for
	// all of them.
	for _, wk := range workers {
		wk := wk
		runners = append(runners, runner{fmt.Sprintf("cpw/w=%d", wk), func(s *eqn.System[X, D], c solver.Config) (map[X]D, solver.Stats, error) {
			c.Workers = wk
			return solver.CPW(s, l, op, init, c)
		}})
	}

	var verdicts []Verdict
	for _, r := range runners {
		chaotic, inj := Wrap(sys, ccfg)
		v := Verdict{Solver: r.name}
		got, _, err := runCaught(func() (map[X]D, solver.Stats, error) { return r.run(chaotic, scfg) })
		v.Faults = inj.Faults()
		switch {
		case err == nil:
			if rep := certify.System(l, sys, got, init); rep.Err() != nil {
				return verdicts, fmt.Errorf("%s: completed under chaos but does not certify: %w", r.name, rep.Err())
			}
			v.Completed = true
		default:
			var ab *solver.AbortError
			if !errors.As(err, &ab) {
				return verdicts, fmt.Errorf("%s: dirty failure under chaos: %w", r.name, err)
			}
			cp, ok := solver.CheckpointOf[X, D](err)
			if !ok {
				return verdicts, fmt.Errorf("%s: clean abort without resumable checkpoint: %w", r.name, err)
			}
			rc := scfg
			rc.Resume = cp
			res, _, rerr := r.run(sys, rc)
			if rerr != nil {
				if rep, ok := solver.ReportOf(rerr); !ok || rep.Reason == solver.AbortEvalFailure {
					return verdicts, fmt.Errorf("%s: pristine resume failed: %w", r.name, rerr)
				}
				// The workload itself exhausts the budget; the chaos property
				// only promises fault-free resumption, not termination.
				break
			}
			if rep := certify.System(l, sys, res, init); rep.Err() != nil {
				return verdicts, fmt.Errorf("%s: resumed result does not certify: %w", r.name, rep.Err())
			}
			v.Resumed = true
		}
		verdicts = append(verdicts, v)
	}

	lv, err := checkLocals(l, sys, init, ccfg, scfg)
	verdicts = append(verdicts, lv...)
	return verdicts, err
}

// checkLocals runs the chaos property over the demand-driven solvers. Their
// checkpoints are warm restarts, so a resumed run is held to completion and
// certification, not to work-counter identity. RLD is special: it is not a
// generic solver, so with ⊟ even a fault-free run need not certify (the
// paper's Sec. 5 counterexample class) — its completed chaotic runs are
// instead compared against the pristine run, which injection must reproduce
// exactly, and its warm restarts are only held to clean completion.
func checkLocals[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, ccfg Config, scfg solver.Config) ([]Verdict, error) {
	n := sys.Len()
	if n == 0 {
		return nil, nil
	}
	query := sys.Order()[n-1]
	op := solver.Op[X](solver.Warrow[D](l))

	type runner struct {
		name    string
		run     func(eqn.Pure[X, D], solver.Config) (solver.Result[X, D], error)
		certify func(map[X]D) error
		// certifyWarm judges a warm-restarted result; nil holds the restart
		// to clean completion only (RLD: a warm start legitimately computes
		// values the pristine cold run never sees).
		certifyWarm func(map[X]D) error
	}
	certPartial := func(sigma map[X]D) error { return certify.Partial(l, sys.AsPure(), sigma, init).Err() }
	rldRun := func(p eqn.Pure[X, D], c solver.Config) (solver.Result[X, D], error) {
		return solver.RLD(p, l, op, init, query, c)
	}
	certRLD := func(sigma map[X]D) error {
		// The injector faults before the right-hand side runs, so a healed
		// chaotic RLD run performs exactly the pristine evaluation sequence:
		// demand injection reproduce the pristine outcome verbatim.
		ref, err := rldRun(sys.AsPure(), scfg)
		if err != nil {
			return nil // pristine workload itself aborts; nothing to compare
		}
		if len(sigma) != len(ref.Values) {
			return fmt.Errorf("chaotic run discovered %d unknowns, pristine %d", len(sigma), len(ref.Values))
		}
		for x, v := range ref.Values {
			got, ok := sigma[x]
			if !ok || !l.Eq(got, v) {
				return fmt.Errorf("value of %v diverged from pristine run", x)
			}
		}
		return nil
	}
	certSides := func(sigma map[X]D) error { return certify.Sides(l, asSides(sys.AsPure()), sigma, init).Err() }
	runners := []runner{
		{"rld", rldRun, certRLD, nil},
		{"slr", func(p eqn.Pure[X, D], c solver.Config) (solver.Result[X, D], error) {
			return solver.SLR(p, l, op, init, query, c)
		}, certPartial, certPartial},
		{"slr+", func(p eqn.Pure[X, D], c solver.Config) (solver.Result[X, D], error) {
			return solver.SLRPlus(asSides(p), l, op, init, query, c)
		}, certSides, certSides},
	}

	var verdicts []Verdict
	for _, r := range runners {
		chaotic, inj := Wrap(sys, ccfg)
		v := Verdict{Solver: r.name}
		res, err := runResCaught(func() (solver.Result[X, D], error) { return r.run(chaotic.AsPure(), scfg) })
		v.Faults = inj.Faults()
		switch {
		case err == nil:
			if cerr := r.certify(res.Values); cerr != nil {
				return verdicts, fmt.Errorf("%s: completed under chaos but does not certify: %w", r.name, cerr)
			}
			v.Completed = true
		default:
			var ab *solver.AbortError
			if !errors.As(err, &ab) {
				return verdicts, fmt.Errorf("%s: dirty failure under chaos: %w", r.name, err)
			}
			cp, ok := solver.CheckpointOf[X, D](err)
			if !ok {
				return verdicts, fmt.Errorf("%s: clean abort without resumable checkpoint: %w", r.name, err)
			}
			rc := scfg
			rc.Resume = cp
			warm, rerr := r.run(sys.AsPure(), rc)
			if rerr != nil {
				if rep, ok := solver.ReportOf(rerr); !ok || rep.Reason == solver.AbortEvalFailure {
					return verdicts, fmt.Errorf("%s: pristine warm restart failed: %w", r.name, rerr)
				}
				break
			}
			if r.certifyWarm != nil {
				if cerr := r.certifyWarm(warm.Values); cerr != nil {
					return verdicts, fmt.Errorf("%s: warm-restarted result does not certify: %w", r.name, cerr)
				}
			}
			v.Resumed = true
		}
		verdicts = append(verdicts, v)
	}
	return verdicts, nil
}

// asSides views a pure system as a side-effecting one with no effects.
func asSides[X comparable, D any](sys eqn.Pure[X, D]) eqn.Sides[X, D] {
	return func(x X) eqn.SideRHS[X, D] {
		rhs := sys(x)
		if rhs == nil {
			return nil
		}
		return func(get func(X) D, _ func(X, D)) D { return rhs(get) }
	}
}

// runCaught converts an escaped panic — which the solvers' recover barrier
// must make impossible — into an error, so Check reports a barrier breach
// as a verdict failure instead of crashing the test binary.
func runCaught[X comparable, D any](f func() (map[X]D, solver.Stats, error)) (got map[X]D, st solver.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("chaos: panic escaped the solver: %v", r)
		}
	}()
	return f()
}

func runResCaught[X comparable, D any](f func() (solver.Result[X, D], error)) (res solver.Result[X, D], err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("chaos: panic escaped the solver: %v", r)
		}
	}()
	return f()
}
