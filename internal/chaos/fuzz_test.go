package chaos_test

import (
	"testing"
	"time"

	"warrow/internal/chaos"
	"warrow/internal/eqgen"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// FuzzChaos fuzzes the chaos property itself: one uint64 drives both the
// generated system and the fault schedule, and every solver must either
// complete with a certified post-solution or abort cleanly with a
// checkpoint that resumes faithfully on the pristine system. Any escaped
// panic, dirty abort, non-certifying result or failed resume is a finding.
func FuzzChaos(f *testing.F) {
	for _, seed := range []uint64{0, 1, 7, 42, 0xdeadbeef, 1 << 40} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed uint64) {
		gcfg := eqgen.Config{
			Seed: seed,
			Dom:  eqgen.Domain(seed % 3),
			N:    int(8 + seed%12),
		}
		if seed%5 == 0 {
			gcfg.NonMonoDensity = 0.25
		}
		g := eqgen.New(gcfg)
		ccfg := chaos.Config{
			Seed:       seed ^ 0xc0ffee,
			Transient:  float64(seed%4) * 0.05,
			Persistent: float64(seed%3) * 0.01,
			Latency:    0.02,
			Delay:      10 * time.Microsecond,
			MaxFaults:  int(seed % 64),
		}
		// Keep the budget small: diverging workloads burn it on every runner
		// (chaotic run plus pristine resume), and the fuzzer treats a slow
		// input as a hang.
		scfg := solver.Config{
			MaxEvals: 20_000,
			Retry:    solver.RetryPolicy{MaxAttempts: 1 + int(seed%5), Seed: seed},
		}
		workers := []int{1 + int(seed%4)}
		var err error
		switch {
		case g.Interval != nil:
			_, err = chaos.Check(lattice.Ints, g.Interval,
				ivInit(), ccfg, scfg, workers)
		case g.Flat != nil:
			_, err = chaos.Check(eqgen.FlatL, g.Flat,
				func(int) lattice.Flat[int64] { return eqgen.FlatL.Bottom() }, ccfg, scfg, workers)
		case g.Powerset != nil:
			pl := eqgen.PowersetL()
			_, err = chaos.Check(pl, g.Powerset,
				func(int) lattice.Set[int] { return pl.Bottom() }, ccfg, scfg, workers)
		}
		if err != nil {
			t.Fatalf("chaos property violated: %v", err)
		}
	})
}
