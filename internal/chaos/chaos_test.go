package chaos_test

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"warrow/internal/certify"
	"warrow/internal/chaos"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

func genInterval(seed uint64, n int) *eqn.System[int, lattice.Interval] {
	cfg := eqgen.Config{Seed: seed, Dom: eqgen.Interval, N: n}
	return eqgen.New(cfg).Interval
}

func ivInit() func(int) lattice.Interval {
	return eqn.ConstBottom[int, lattice.Interval](lattice.Ints)
}

// TestChaosInjectionIsDeterministic pins the injector contract the whole
// harness rests on: the same seed yields the same fault schedule for the
// same evaluation sequence.
func TestChaosInjectionIsDeterministic(t *testing.T) {
	sys := genInterval(7, 12)
	ccfg := chaos.Config{Seed: 99, Transient: 0.15, Persistent: 0.02, Latency: 0.1, Delay: time.Microsecond}
	run := func() (int, int, int, error) {
		chaotic, inj := chaos.Wrap(sys, ccfg)
		_, _, err := solver.RR(chaotic, lattice.Ints, solver.Op[int](solver.Warrow[lattice.Interval](lattice.Ints)), ivInit(), solver.Config{MaxEvals: 100_000})
		tr, pe, de := inj.Counts()
		return tr, pe, de, err
	}
	tr1, pe1, de1, err1 := run()
	tr2, pe2, de2, err2 := run()
	if tr1 != tr2 || pe1 != pe2 || de1 != de2 {
		t.Fatalf("fault schedule not deterministic: (%d,%d,%d) vs (%d,%d,%d)", tr1, pe1, de1, tr2, pe2, de2)
	}
	if (err1 == nil) != (err2 == nil) {
		t.Fatalf("outcome not deterministic: %v vs %v", err1, err2)
	}
	if err1 != nil {
		// The rendered abort string embeds wall-clock time; compare the
		// structured diagnosis instead.
		r1, _ := solver.ReportOf(err1)
		r2, _ := solver.ReportOf(err2)
		if r1.Reason != r2.Reason || r1.Evals != r2.Evals ||
			(r1.Failure == nil) != (r2.Failure == nil) ||
			(r1.Failure != nil && (r1.Failure.Unknown != r2.Failure.Unknown || r1.Failure.Attempt != r2.Failure.Attempt)) {
			t.Fatalf("abort diagnosis not deterministic: %v vs %v", err1, err2)
		}
	}
	if tr1+pe1 == 0 {
		t.Fatalf("injector fired no faults; the determinism check is vacuous")
	}
}

// TestChaosPropertyTransientHealing: with retry enabled and a capped
// transient-fault schedule, every solver must uphold the chaos property,
// and the sequential solvers must in fact complete (the cap guarantees the
// schedule drains).
func TestChaosPropertyTransientHealing(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 4, 5} {
		sys := genInterval(seed, 16)
		ccfg := chaos.Config{Seed: seed * 1000, Transient: 0.2, MaxFaults: 40}
		scfg := solver.Config{
			MaxEvals: 300_000,
			Retry:    solver.RetryPolicy{MaxAttempts: 45, Seed: seed},
		}
		verdicts, err := chaos.Check(lattice.Ints, sys, ivInit(), ccfg, scfg, []int{1, 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		faults := 0
		for _, v := range verdicts {
			faults += v.Faults
			if !v.Completed {
				t.Errorf("seed %d: %s did not complete under healed transients (resumed=%v, faults=%d)",
					seed, v.Solver, v.Resumed, v.Faults)
			}
		}
		if faults == 0 {
			t.Fatalf("seed %d: no faults injected; healing untested", seed)
		}
	}
}

// TestChaosPropertyPersistentFaults: without retry, persistent faults must
// produce clean aborts whose checkpoints resume on the pristine system.
// Check enforces the property; this test additionally demands that at least
// one solver actually took the abort-and-resume branch.
func TestChaosPropertyPersistentFaults(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		sys := genInterval(seed, 16)
		ccfg := chaos.Config{Seed: seed, Persistent: 0.03}
		scfg := solver.Config{MaxEvals: 300_000}
		verdicts, err := chaos.Check(lattice.Ints, sys, ivInit(), ccfg, scfg, []int{1, 2, 4, 8})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		resumed := 0
		for _, v := range verdicts {
			if v.Resumed {
				resumed++
			}
		}
		if resumed == 0 {
			t.Fatalf("seed %d: no solver exercised the abort-and-resume branch", seed)
		}
	}
}

// TestChaosPropertyLatencyOnly: pure latency injection must never change
// results — every solver completes and certifies.
func TestChaosPropertyLatencyOnly(t *testing.T) {
	sys := genInterval(11, 16)
	ccfg := chaos.Config{Seed: 11, Latency: 0.3, Delay: 50 * time.Microsecond}
	verdicts, err := chaos.Check(lattice.Ints, sys, ivInit(), ccfg, solver.Config{MaxEvals: 300_000}, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range verdicts {
		if !v.Completed {
			t.Errorf("%s: did not complete under latency-only chaos", v.Solver)
		}
	}
}

// TestChaosMixedDomains runs the property over the flat and powerset
// domains as well, with a mixed fault schedule.
func TestChaosMixedDomains(t *testing.T) {
	scfg := solver.Config{
		MaxEvals: 300_000,
		Retry:    solver.RetryPolicy{MaxAttempts: 4},
	}
	ccfg := chaos.Config{Seed: 5, Transient: 0.1, Persistent: 0.01, Latency: 0.05, Delay: 20 * time.Microsecond}
	for seed := uint64(1); seed <= 3; seed++ {
		g := eqgen.New(eqgen.Config{Seed: seed, Dom: eqgen.Flat, N: 14})
		if _, err := chaos.Check(eqgen.FlatL, g.Flat, eqn.ConstBottom[int, lattice.Flat[int64]](eqgen.FlatL), ccfg, scfg, []int{2}); err != nil {
			t.Errorf("flat seed %d: %v", seed, err)
		}
		pl := eqgen.PowersetL()
		gp := eqgen.New(eqgen.Config{Seed: seed, Dom: eqgen.Powerset, N: 14})
		if _, err := chaos.Check(pl, gp.Powerset, eqn.ConstBottom[int, lattice.Set[int]](pl), ccfg, scfg, []int{2}); err != nil {
			t.Errorf("powerset seed %d: %v", seed, err)
		}
	}
}

// TestChaosPSWPoolHygiene drives PSW at pool sizes 1, 2, 4 and 8 into
// persistent-fault aborts and checks, for each, that the abort is a
// structured eval-failure report with a resumable checkpoint and that the
// worker pool drains — no goroutine outlives the call.
func TestChaosPSWPoolHygiene(t *testing.T) {
	l := lattice.Ints
	op := solver.Op[int](solver.Warrow[lattice.Interval](l))
	for _, workers := range []int{1, 2, 4, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			before := runtime.NumGoroutine()
			sys := genInterval(3, 20)
			chaotic, _ := chaos.Wrap(sys, chaos.Config{Seed: 42, Persistent: 0.2})
			_, _, err := solver.PSW(chaotic, l, op, ivInit(), solver.Config{Workers: workers, MaxEvals: 300_000})
			if err == nil {
				t.Fatalf("expected a persistent-fault abort")
			}
			var ab *solver.AbortError
			if !errors.As(err, &ab) {
				t.Fatalf("dirty failure: %v", err)
			}
			if ab.Report.Reason != solver.AbortEvalFailure || ab.Report.Failure == nil {
				t.Fatalf("abort is not a structured eval failure: %+v", ab.Report)
			}
			if _, ok := solver.CheckpointOf[int, lattice.Interval](err); !ok {
				t.Fatalf("abort carries no checkpoint")
			}
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before {
				t.Fatalf("worker pool leaked: %d goroutines before, %d after", before, n)
			}
		})
	}
}

// TestChaosDenseCore holds the dense compiled core to the chaos property —
// faults heal under retry or abort cleanly with a checkpoint that resumes
// on the pristine system — and then pins cross-core determinism under
// injection: the injector draws per (seed, unknown, per-unknown eval
// count), so the bit-identical schedules of the two cores must fire the
// identical fault sequence and land on the identical outcome.
func TestChaosDenseCore(t *testing.T) {
	l := lattice.Ints
	op := solver.Op[int](solver.Warrow[lattice.Interval](l))
	for _, seed := range []uint64{1, 2, 3} {
		sys := genInterval(seed, 24)
		ccfg := chaos.Config{Seed: seed * 77, Transient: 0.1, Persistent: 0.01, MaxFaults: 30}
		scfg := solver.Config{
			Core:     solver.CoreDense,
			MaxEvals: 300_000,
			Retry:    solver.RetryPolicy{MaxAttempts: 45, Seed: seed},
		}
		verdicts, err := chaos.Check(l, sys, ivInit(), ccfg, scfg, []int{1, 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		faults := 0
		for _, v := range verdicts {
			faults += v.Faults
		}
		if faults == 0 {
			t.Fatalf("seed %d: no faults injected; the dense-core chaos check is vacuous", seed)
		}

		run := func(core solver.Core) (faults int, st solver.Stats, err error, sigma map[int]lattice.Interval) {
			chaotic, inj := chaos.Wrap(sys, ccfg)
			c := scfg
			c.Core = core
			sigma, st, err = solver.SW(chaotic, l, op, ivInit(), c)
			return inj.Faults(), st, err, sigma
		}
		mf, mst, merr, msig := run(solver.CoreMap)
		df, dst, derr, dsig := run(solver.CoreDense)
		if mf != df {
			t.Fatalf("seed %d: fault schedules diverge across cores: map %d, dense %d", seed, mf, df)
		}
		if (merr == nil) != (derr == nil) {
			t.Fatalf("seed %d: chaotic termination differs: map err=%v, dense err=%v", seed, merr, derr)
		}
		if mst.Evals != dst.Evals || mst.Updates != dst.Updates {
			t.Fatalf("seed %d: chaotic schedules diverge: map %d/%d, dense %d/%d",
				seed, mst.Evals, mst.Updates, dst.Evals, dst.Updates)
		}
		if merr == nil {
			for _, x := range sys.Order() {
				if !l.Eq(msig[x], dsig[x]) {
					t.Fatalf("seed %d: chaotic value of %d diverges across cores", seed, x)
				}
			}
		}
	}
}

// TestChaosUnboxedCore is TestChaosDenseCore for the unboxed value store:
// chaos.Check runs the full solver matrix with Core=CoreUnboxed (the
// structured ⊟ plus the interval lattice's raw encoding route these solves
// through the word-store core, with the injector living in the boxed
// right-hand sides behind the boundary adapter), and the cross-core
// determinism pin compares map against unboxed under the identical fault
// schedule.
func TestChaosUnboxedCore(t *testing.T) {
	l := lattice.Ints
	op := solver.WarrowOp[int, lattice.Interval](l)
	for _, seed := range []uint64{1, 2, 3} {
		sys := genInterval(seed, 24)
		ccfg := chaos.Config{Seed: seed * 77, Transient: 0.1, Persistent: 0.01, MaxFaults: 30}
		scfg := solver.Config{
			Core:     solver.CoreUnboxed,
			MaxEvals: 300_000,
			Retry:    solver.RetryPolicy{MaxAttempts: 45, Seed: seed},
		}
		verdicts, err := chaos.Check(l, sys, ivInit(), ccfg, scfg, []int{1, 4})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		faults := 0
		for _, v := range verdicts {
			faults += v.Faults
		}
		if faults == 0 {
			t.Fatalf("seed %d: no faults injected; the unboxed-core chaos check is vacuous", seed)
		}

		run := func(core solver.Core) (faults int, st solver.Stats, err error, sigma map[int]lattice.Interval) {
			chaotic, inj := chaos.Wrap(sys, ccfg)
			c := scfg
			c.Core = core
			sigma, st, err = solver.SW(chaotic, l, op, ivInit(), c)
			return inj.Faults(), st, err, sigma
		}
		mf, mst, merr, msig := run(solver.CoreMap)
		uf, ust, uerr, usig := run(solver.CoreUnboxed)
		if mf != uf {
			t.Fatalf("seed %d: fault schedules diverge across cores: map %d, unboxed %d", seed, mf, uf)
		}
		if (merr == nil) != (uerr == nil) {
			t.Fatalf("seed %d: chaotic termination differs: map err=%v, unboxed err=%v", seed, merr, uerr)
		}
		if mst.Evals != ust.Evals || mst.Updates != ust.Updates {
			t.Fatalf("seed %d: chaotic schedules diverge: map %d/%d, unboxed %d/%d",
				seed, mst.Evals, mst.Updates, ust.Evals, ust.Updates)
		}
		if merr == nil {
			for _, x := range sys.Order() {
				if !l.Eq(msig[x], usig[x]) {
					t.Fatalf("seed %d: chaotic value of %d diverges across cores", seed, x)
				}
			}
		}
	}
}

// TestChaosCPWAdversarialSchedules is the schedule-perturbation harness for
// the chaotic parallel solver: seeded per-evaluation latency spikes shift
// which worker claims which unknown, so every (recipe, chaos seed, pool
// size) triple drives CPW through a different interleaving — including on
// giant-SCC recipes where the whole stratum is contended. The property is
// the claim ladder's: a completed run must certify as a post-solution of
// the pristine system, and a bounded run must abort cleanly with a
// quiesce-and-drain checkpoint that resumes on the pristine system to a
// certified result.
func TestChaosCPWAdversarialSchedules(t *testing.T) {
	l := lattice.Ints
	op := solver.WarrowOp[int, lattice.Interval](l)
	recipes := []eqgen.Config{
		{Seed: 1, N: 24},
		{Seed: 2, N: 32, GiantSCC: 0.9},
		{Seed: 3, N: 40, GiantSCC: 0.95},
	}
	for _, rc := range recipes {
		sys := eqgen.New(rc).Interval
		for _, seed := range []uint64{1, 2, 3} {
			ccfg := chaos.Config{Seed: seed * 131, Latency: 0.5, Delay: 20 * time.Microsecond}
			for _, workers := range []int{1, 2, 4, 8} {
				name := fmt.Sprintf("n=%d giant=%.2f chaos=%d w=%d", rc.N, rc.GiantSCC, seed, workers)

				// Perturbed but unbounded: the run must complete and certify.
				chaotic, inj := chaos.Wrap(sys, ccfg)
				scfg := solver.Config{Workers: workers, MaxEvals: 300_000}
				sigma, _, err := solver.CPW(chaotic, l, op, ivInit(), scfg)
				if err != nil {
					t.Fatalf("%s: perturbed run aborted: %v", name, err)
				}
				if _, _, delays := inj.Counts(); delays == 0 {
					t.Fatalf("%s: no latency injected; the perturbation is vacuous", name)
				}
				if rep := certify.System(l, sys, sigma, ivInit()); !rep.OK() {
					t.Errorf("%s: perturbed result does not certify: %s", name, rep)
				}

				// Perturbed and budget-bound: the abort must carry a resumable
				// checkpoint, and the pristine resume must certify.
				chaotic, _ = chaos.Wrap(sys, ccfg)
				tight := solver.Config{Workers: workers, MaxEvals: rc.N}
				_, _, err = solver.CPW(chaotic, l, op, ivInit(), tight)
				if err == nil {
					t.Fatalf("%s: budget %d did not bound the solve", name, rc.N)
				}
				cp, ok := solver.CheckpointOf[int, lattice.Interval](err)
				if !ok {
					t.Fatalf("%s: budget abort carries no checkpoint: %v", name, err)
				}
				rcfg := solver.Config{Workers: workers, MaxEvals: 300_000, Resume: cp}
				sigma, _, err = solver.CPW(sys, l, op, ivInit(), rcfg)
				if err != nil {
					t.Fatalf("%s: pristine resume failed: %v", name, err)
				}
				if rep := certify.System(l, sys, sigma, ivInit()); !rep.OK() {
					t.Errorf("%s: resumed result does not certify: %s", name, rep)
				}
			}
		}
	}
}
