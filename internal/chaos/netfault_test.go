package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// pipePair builds a real TCP loopback pair, so deadline and close semantics
// match what the daemon sees.
func pipePair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err = net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestCutAfterSeversMidWrite(t *testing.T) {
	client, server := pipePair(t)
	cut := CutAfter(client, 10)
	if _, err := cut.Write(make([]byte, 6)); err != nil {
		t.Fatalf("write below the cut: %v", err)
	}
	n, err := cut.Write(make([]byte, 20))
	if n != 4 || err == nil {
		t.Fatalf("crossing write: n=%d err=%v, want 4 bytes then an error", n, err)
	}
	if _, err := cut.Write([]byte("more")); err == nil {
		t.Error("write after the cut succeeded")
	}
	// The peer sees exactly the delivered prefix, then EOF — a truncated
	// stream, not a clean boundary the framing layer could absorb.
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, _ := io.ReadAll(server)
	if len(got) != 10 {
		t.Errorf("peer read %d bytes, want 10", len(got))
	}
}

func TestSlowWriterDeliversEverything(t *testing.T) {
	client, server := pipePair(t)
	slow := SlowWriter(client, 3, time.Millisecond)
	payload := bytes.Repeat([]byte("abc"), 10)
	done := make(chan error, 1)
	go func() {
		defer client.Close()
		n, err := slow.Write(payload)
		if err == nil && n != len(payload) {
			err = io.ErrShortWrite
		}
		done <- err
	}()
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	if werr := <-done; werr != nil {
		t.Fatal(werr)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("slow write mangled the payload: %d bytes", len(got))
	}
}

func TestCorruptByteFlipsExactlyOne(t *testing.T) {
	client, server := pipePair(t)
	corrupt := CorruptByte(client, 5, 0x01)
	payload := []byte("0123456789")
	go func() {
		defer client.Close()
		// Two writes, so the offset bookkeeping must span write boundaries.
		corrupt.Write(payload[:4])
		corrupt.Write(payload[4:])
	}()
	server.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := io.ReadAll(server)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte("01234\x34" + "6789") // '5' ^ 0x01 = 0x34
	if !bytes.Equal(got, want) {
		t.Errorf("stream = %q, want %q", got, want)
	}
}
