package serve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"warrow/internal/serve/proto"
)

// Client is a pipelining eqsolved client: requests are written under one
// lock, responses are routed back to their callers by ID from a single
// reader goroutine, so many solves may be in flight over one connection
// (up to the server's per-client cap).
type Client struct {
	conn net.Conn

	wmu sync.Mutex

	mu      sync.Mutex
	pending map[uint64]chan *proto.Response
	nextID  uint64
	err     error
	closed  chan struct{}
}

// Dial connects, performs the handshake in both directions, and starts the
// response reader.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Now().Add(timeout))
	if err := proto.WriteMagic(conn); err != nil {
		conn.Close()
		return nil, err
	}
	if err := proto.ReadMagic(conn); err != nil {
		conn.Close()
		return nil, fmt.Errorf("serve: not an eqsolved server: %w", err)
	}
	conn.SetDeadline(time.Time{})
	c := &Client{
		conn:    conn,
		pending: make(map[uint64]chan *proto.Response),
		closed:  make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Do submits one request and blocks until its response arrives or the
// connection dies. The request's ID is assigned by the client; the caller's
// value is overwritten.
func (c *Client) Do(req *proto.Request) (*proto.Response, error) {
	ch := make(chan *proto.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := proto.WriteRequest(c.conn, req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	select {
	case resp := <-ch:
		return resp, nil
	case <-c.closed:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
}

// Close tears the connection down; in-flight Do calls fail.
func (c *Client) Close() error {
	err := c.conn.Close()
	<-c.closed
	return err
}

func (c *Client) readLoop() {
	for {
		resp, err := proto.ReadResponse(c.conn)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
		// Responses to IDs nobody waits on (a raced Close) are dropped.
	}
}

func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		if err == nil {
			err = errors.New("serve: connection closed")
		}
		c.err = err
	}
	c.pending = make(map[uint64]chan *proto.Response)
	c.mu.Unlock()
	close(c.closed)
}
