package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"warrow/internal/serve/proto"
)

// Options tunes a Server. The zero value is usable; Defaults documents what
// it means.
type Options struct {
	// Workers is the solve worker-pool size (default GOMAXPROCS, min 2).
	Workers int
	// Queue is how many admitted-but-unfinished requests may exist beyond
	// the workers (default 16). Admission capacity is Workers+Queue; excess
	// requests are rejected with "overloaded", never buffered unboundedly.
	Queue int
	// MaxTimeout is the server-side ceiling on any request's wall-clock
	// deadline (default 1 minute). A client asking for more — or for no
	// bound — gets exactly this much.
	MaxTimeout time.Duration
	// Quantum is the scheduling slice in evaluations (default 0: no
	// preemption). A preemptible solve that exceeds it is checkpointed,
	// parked and requeued, so long batch solves cannot monopolize workers.
	Quantum int
	// PerClient caps one connection's in-flight requests (default 4);
	// excess requests are rejected with "client-cap".
	PerClient int
	// HandshakeTimeout bounds how long a fresh connection may take to
	// present the magic line (default 10s) — slow-loris connections are
	// dropped before they hold any solving state.
	HandshakeTimeout time.Duration
	// WriteTimeout bounds one response write (default 30s). A client that
	// stops draining its socket loses the connection, not the server a
	// worker.
	WriteTimeout time.Duration
	// LogWriter receives structured JSON log lines (nil: logging off).
	LogWriter io.Writer
}

// withDefaults fills unset knobs.
func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
		if o.Workers < 2 {
			o.Workers = 2
		}
	}
	if o.Queue <= 0 {
		o.Queue = 16
	}
	if o.MaxTimeout <= 0 {
		o.MaxTimeout = time.Minute
	}
	if o.PerClient <= 0 {
		o.PerClient = 4
	}
	if o.HandshakeTimeout <= 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
	if o.WriteTimeout <= 0 {
		o.WriteTimeout = 30 * time.Second
	}
	return o
}

// Server is the eqsolved daemon: an accept loop feeding per-connection
// sessions, which feed the shared scheduler. Create with New, run with
// Serve, stop with Close — Close guarantees every accepted request has
// reached its terminal outcome before returning.
type Server struct {
	opts    Options
	metrics *Metrics
	sched   *scheduler

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	closed bool

	sessWG sync.WaitGroup
	taskWG sync.WaitGroup
	logMu  sync.Mutex
}

// New builds a server and starts its worker pool.
func New(opts Options) *Server {
	opts = opts.withDefaults()
	m := newMetrics()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		opts:    opts,
		metrics: m,
		sched:   newScheduler(opts.Workers, opts.Workers+opts.Queue, opts.Quantum, m),
		ctx:     ctx,
		cancel:  cancel,
	}
}

// Metrics exposes the aggregate counters (the /metrics endpoint handler).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Serve accepts connections on ln until Close. It returns nil after a clean
// shutdown and the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("serve: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.log("listening", map[string]any{"addr": ln.Addr().String()})
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.ctx.Done():
				return nil
			default:
				return err
			}
		}
		s.sessWG.Add(1)
		go s.session(conn)
	}
}

// Close stops accepting, cancels every in-flight request, and waits until
// all accepted requests have terminated (completed, aborted or rejected —
// zero lost requests) and all sessions and workers have exited.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	s.mu.Unlock()
	s.cancel()
	if ln != nil {
		ln.Close()
	}
	s.taskWG.Wait()
	s.sched.stop()
	s.sessWG.Wait()
	s.log("stopped", nil)
	return nil
}

// session owns one connection: the handshake, the request read loop, and
// the shared write path its tasks answer through.
type session struct {
	srv  *Server
	conn net.Conn
	ctx  context.Context
	stop context.CancelFunc

	wmu  sync.Mutex
	dead bool

	inflight atomic.Int64
}

func (s *Server) session(conn net.Conn) {
	defer s.sessWG.Done()
	defer conn.Close()
	s.metrics.sessionDelta(1)
	defer s.metrics.sessionDelta(-1)

	ctx, stop := context.WithCancel(s.ctx)
	defer stop()
	// Unblock the read loop when the server shuts down or a write fails.
	go func() {
		<-ctx.Done()
		conn.Close()
	}()

	conn.SetReadDeadline(time.Now().Add(s.opts.HandshakeTimeout))
	if err := proto.ReadMagic(conn); err != nil {
		s.metrics.incBadHandshake()
		s.log("bad-handshake", map[string]any{"remote": conn.RemoteAddr().String()})
		return
	}
	sess := &session{srv: s, conn: conn, ctx: ctx, stop: stop}
	if err := sess.writeRaw(func(w io.Writer) error { return proto.WriteMagic(w) }); err != nil {
		return
	}
	conn.SetReadDeadline(time.Time{})
	s.log("session-open", map[string]any{"remote": conn.RemoteAddr().String()})

	for {
		payload, err := proto.ReadFrame(conn)
		if err != nil {
			// EOF is a clean disconnect; anything else (oversize prefix,
			// truncated frame) means the stream framing is untrustworthy, so
			// the connection is dropped rather than resynchronized.
			if !errors.Is(err, io.EOF) {
				s.metrics.incBadFrame()
			}
			break
		}
		req, err := proto.DecodeRequest(payload)
		if err != nil {
			// The frame layer is intact, so the session survives a bad
			// envelope: answer with a rejection and keep reading.
			s.metrics.incRejected("malformed")
			sess.send(&proto.Response{Status: proto.StatusRejected, Reason: err.Error()})
			continue
		}
		s.dispatch(sess, req)
	}
	stop()
	s.log("session-close", map[string]any{"remote": conn.RemoteAddr().String()})
	// In-flight tasks of this session abort via ctx and find the write path
	// dead; their outcomes are recorded as undelivered.
}

// dispatch admits one decoded request: per-client cap, job construction
// (parse/generate + resume validation), then the scheduler's bounded
// admission. Every rejection is explicit and immediate.
func (s *Server) dispatch(sess *session, req *proto.Request) {
	reject := func(reason, class string) {
		s.metrics.incRejected(class)
		sess.send(&proto.Response{ID: req.ID, Status: proto.StatusRejected, Reason: reason})
		s.log("rejected", map[string]any{"id": req.ID, "reason": reason})
	}
	if sess.inflight.Load() >= int64(s.opts.PerClient) {
		reject("client-cap", "client-cap")
		return
	}
	j, err := buildJob(req)
	if err != nil {
		reject(err.Error(), "malformed")
		return
	}
	if req.Checkpoint != "" {
		s.metrics.incResume()
	}
	timeout := effectiveTimeout(req.Timeout(), s.opts.MaxTimeout)
	tctx, tcancel := context.WithTimeout(sess.ctx, timeout)
	start := time.Now()
	t := &task{job: j, ctx: tctx, cancel: tcancel}
	t.finish = func(resp *proto.Response, preempts int) {
		resp.ID = req.ID
		resp.Preemptions = preempts
		delivered := sess.send(resp)
		reason := ""
		if resp.Abort != nil {
			reason = resp.Abort.Reason.String()
		}
		s.metrics.finishSolve(resp.Status, reason, resp.Stats, delivered)
		s.logSolve(req, resp, delivered, time.Since(start))
		sess.inflight.Add(-1)
		s.taskWG.Done()
	}
	sess.inflight.Add(1)
	s.taskWG.Add(1)
	if !s.sched.admit(t) {
		sess.inflight.Add(-1)
		s.taskWG.Done()
		tcancel()
		reject("overloaded", "overloaded")
		return
	}
	s.metrics.incAccepted()
	s.log("accepted", map[string]any{"id": req.ID, "solver": req.Solver, "source": req.Source, "timeout_ns": int64(timeout)})
}

// send writes one response under the session write lock, with the write
// deadline armed. A failed or timed-out write marks the session dead and
// cancels its context, so its remaining tasks abort promptly.
func (sess *session) send(resp *proto.Response) bool {
	return sess.writeRaw(func(w io.Writer) error { return proto.WriteResponse(w, resp) }) == nil
}

func (sess *session) writeRaw(write func(io.Writer) error) error {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	if sess.dead {
		return errors.New("serve: session closed")
	}
	sess.conn.SetWriteDeadline(time.Now().Add(sess.srv.opts.WriteTimeout))
	if err := write(sess.conn); err != nil {
		sess.dead = true
		sess.stop()
		return err
	}
	return nil
}

// logSolve emits the per-solve structured log line.
func (s *Server) logSolve(req *proto.Request, resp *proto.Response, delivered bool, elapsed time.Duration) {
	fields := map[string]any{
		"id":          resp.ID,
		"solver":      req.Solver,
		"status":      resp.Status,
		"preemptions": resp.Preemptions,
		"delivered":   delivered,
		"elapsed_ns":  int64(elapsed),
	}
	if resp.Stats != nil {
		fields["stats"] = resp.Stats
	}
	if resp.Abort != nil {
		fields["abort"] = resp.Abort
	}
	if resp.Reason != "" {
		fields["reason"] = resp.Reason
	}
	s.log("solve", fields)
}

// log writes one JSON log line to the configured sink.
func (s *Server) log(event string, fields map[string]any) {
	if s.opts.LogWriter == nil {
		return
	}
	rec := make(map[string]any, len(fields)+2)
	for k, v := range fields {
		rec[k] = v
	}
	rec["event"] = event
	rec["ts"] = time.Now().UnixNano()
	data, err := json.Marshal(rec)
	if err != nil {
		data = []byte(fmt.Sprintf(`{"event":%q,"marshal_error":%q}`, event, err))
	}
	s.logMu.Lock()
	s.opts.LogWriter.Write(append(data, '\n'))
	s.logMu.Unlock()
}
