// Package serve implements the eqsolved daemon: a long-running solve
// service multiplexing many concurrent solves over a bounded worker pool,
// with admission control, per-request deadlines and quantum-based
// preempt/resume scheduling on top of the solver library's checkpoint
// machinery.
package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"warrow/internal/chaos"
	"warrow/internal/ckptcodec"
	"warrow/internal/eqdsl"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/serve/proto"
	"warrow/internal/solver"
)

// pswWorkers fixes the PSW worker-pool size of served solves. The daemon
// already multiplexes requests across its own worker pool, so each PSW run
// gets a small fixed pool instead of GOMAXPROCS — and a fixed size keeps
// served Stats comparable to a local control run with the same setting.
const pswWorkers = 2

// cpwWorkers fixes the CPW worker-pool size of served solves, for the same
// reason as pswWorkers. CPW results are certified rather than bit-pinned,
// so the fixed size buys bounded goroutine fan-out, not reproducibility.
const cpwWorkers = 2

// outcome is the result of one scheduling slice of a job.
type outcome struct {
	// final: the job reached a terminal state and resp is ready. When
	// false, the job checkpointed at its quantum boundary and must be
	// requeued.
	final bool
	resp  *proto.Response
}

// job is one admitted solve, sliced at quantum boundaries by the scheduler.
// Implementations are not safe for concurrent use; the scheduler runs each
// job on one worker at a time.
type job interface {
	// runSlice advances the solve by up to quantum evaluations (0 = no
	// preemption: run to completion or a client bound). ctx carries the
	// request's effective deadline and the connection's cancellation.
	runSlice(ctx context.Context, quantum int) outcome
}

// solveJob is the typed implementation of job for one (unknown, domain)
// instantiation. Preemption slices the client's evaluation budget: each
// slice runs with MaxEvals = done + quantum, and a budget abort at the
// quantum boundary (below the client's own budget) parks the exact-resume
// checkpoint instead of answering.
type solveJob[X comparable, D any] struct {
	solverName string
	sys        *eqn.System[X, D]
	l          lattice.Lattice[D]
	op         solver.Operator[X, D]
	init       func(X) D
	codec      solver.Codec[X, D]

	// maxEvals is the client's evaluation budget (0 = unbounded) and
	// maxFlips its oscillation bound.
	maxEvals int
	maxFlips int

	// cp is the parked checkpoint between slices (or the client-provided
	// resume handle before the first), and done the cumulative evaluation
	// count it restores.
	cp   *solver.Checkpoint[X, D]
	done int
}

func (j *solveJob[X, D]) runSlice(ctx context.Context, quantum int) outcome {
	cfg := solver.Config{Ctx: ctx, MaxFlips: j.maxFlips, MaxEvals: j.maxEvals}
	finalSlice := true
	if quantum > 0 && proto.Preemptible(j.solverName) {
		if slice := j.done + quantum; j.maxEvals <= 0 || slice < j.maxEvals {
			// Budgets are cumulative across a resume (the checkpoint
			// restores the evaluation count), so the slice bound is an
			// absolute target, not a per-slice delta.
			cfg.MaxEvals = slice
			finalSlice = false
		}
	}
	if j.solverName == "psw" {
		cfg.Workers = pswWorkers
	}
	if j.solverName == "cpw" {
		cfg.Workers = cpwWorkers
	}
	if j.cp != nil {
		cfg.Resume = j.cp
	}
	sigma, st, err := runByName(j.solverName, j.sys, j.l, j.op, j.init, cfg)
	if err == nil {
		values := make(map[string]string, len(sigma))
		for x, d := range sigma {
			values[j.codec.EncodeX(x)] = j.codec.EncodeD(d)
		}
		return outcome{final: true, resp: &proto.Response{
			Status: proto.StatusCompleted,
			Values: values,
			Stats:  &st,
		}}
	}
	rep, ok := solver.ReportOf(err)
	if !ok {
		// Not an abort: a malformed resume handle or another structural
		// failure. The request was accepted, so answer it — as a rejection,
		// since no solving state survived to resume from.
		return outcome{final: true, resp: &proto.Response{
			Status: proto.StatusRejected,
			Reason: err.Error(),
		}}
	}
	cp, hasCp := solver.CheckpointOf[X, D](err)
	if rep.Reason == solver.AbortBudget && !finalSlice && hasCp {
		// The slice bound fired below the client's own budget: park the
		// checkpoint and yield the worker.
		j.cp = cp
		j.done = cp.Evals
		return outcome{final: false}
	}
	resp := &proto.Response{
		Status: proto.StatusAborted,
		Abort:  &rep,
		Stats:  &st,
	}
	if hasCp {
		if data, mErr := solver.MarshalCheckpoint(cp, j.codec); mErr == nil {
			resp.Checkpoint = string(data)
		}
	}
	return outcome{final: true, resp: resp}
}

// runByName dispatches to the named global solver entry point.
func runByName[X comparable, D any](name string, sys *eqn.System[X, D], l lattice.Lattice[D], op solver.Operator[X, D], init func(X) D, cfg solver.Config) (map[X]D, solver.Stats, error) {
	switch name {
	case "rr":
		return solver.RR(sys, l, op, init, cfg)
	case "w":
		return solver.W(sys, l, op, init, cfg)
	case "srr":
		return solver.SRR(sys, l, op, init, cfg)
	case "sw":
		return solver.SW(sys, l, op, init, cfg)
	case "psw":
		return solver.PSW(sys, l, op, init, cfg)
	case "cpw":
		return solver.CPW(sys, l, op, init, cfg)
	case "slr2":
		return solver.SLR2(sys, l, op, init, cfg)
	case "slr3":
		return solver.SLR3(sys, l, op, init, cfg)
	case "slr4":
		return solver.SLR4(sys, l, op, init, cfg)
	default:
		return nil, solver.Stats{}, fmt.Errorf("serve: unknown solver %q", name)
	}
}

// buildJob turns a validated request into a typed job: parse or generate
// the system, pick the domain's lattice/init/codec (the same conventions
// the diffsolve harness uses, so served and local runs are bit-identical),
// and decode a resume handle if the client sent one. Any error here is an
// admission-time rejection — nothing ran yet.
func buildJob(req *proto.Request) (job, error) {
	switch req.Source {
	case proto.SourceEq:
		f, err := eqdsl.Parse(req.System)
		if err != nil {
			return nil, err
		}
		if f.Open {
			return nil, errors.New("serve: system is an edit overlay, not solvable on its own")
		}
		switch f.Domain {
		case eqdsl.DomainNatInf:
			sys, err := f.NatSystem()
			if err != nil {
				return nil, err
			}
			return newSolveJob(req, sys, lattice.NatInf,
				func(string) lattice.Nat { return lattice.NatOf(0) }, ckptcodec.NatCodec())
		default:
			sys, err := f.IntervalSystem()
			if err != nil {
				return nil, err
			}
			return newSolveJob(req, sys, lattice.Ints,
				func(string) lattice.Interval { return lattice.EmptyInterval }, ckptcodec.StringIntervalCodec())
		}
	default: // proto.SourceGen, per Validate
		g := eqgen.New(*req.Gen)
		switch {
		case g.Flat != nil:
			l := eqgen.FlatL
			return newSolveJob(req, chaosWrap(g.Flat, req.Chaos), l,
				eqn.ConstBottom[int, lattice.Flat[int64]](l), ckptcodec.FlatCodec())
		case g.Powerset != nil:
			l := eqgen.PowersetL()
			return newSolveJob(req, chaosWrap(g.Powerset, req.Chaos), l,
				eqn.ConstBottom[int, lattice.Set[int]](l), ckptcodec.PowersetCodec())
		default:
			l := lattice.Ints
			return newSolveJob(req, chaosWrap(g.Interval, req.Chaos), l,
				eqn.ConstBottom[int, lattice.Interval](l), ckptcodec.IntervalCodec())
		}
	}
}

// chaosWrap applies the request's fault-injection spec to a generated
// system (nil spec: the system unchanged).
func chaosWrap[X comparable, D any](sys *eqn.System[X, D], spec *chaos.Config) *eqn.System[X, D] {
	if spec == nil {
		return sys
	}
	wrapped, _ := chaos.Wrap(sys, *spec)
	return wrapped
}

// newSolveJob builds the typed job and validates a client-provided resume
// handle against the target system before any solving state exists.
func newSolveJob[X comparable, D any](req *proto.Request, sys *eqn.System[X, D], l lattice.Lattice[D], init func(X) D, codec solver.Codec[X, D]) (job, error) {
	j := &solveJob[X, D]{
		solverName: req.Solver,
		sys:        sys,
		l:          l,
		op:         solver.Op[X](solver.Warrow[D](l)),
		init:       init,
		codec:      codec,
		maxEvals:   req.MaxEvals,
		maxFlips:   req.MaxFlips,
	}
	if req.Checkpoint != "" {
		cp, err := solver.UnmarshalCheckpoint([]byte(req.Checkpoint), codec)
		if err != nil {
			return nil, err
		}
		if cp.Solver != req.Solver {
			return nil, fmt.Errorf("serve: checkpoint was captured by solver %q, request names %q", cp.Solver, req.Solver)
		}
		if fp := solver.Fingerprint(sys); cp.SysFP != fp {
			return nil, fmt.Errorf("serve: checkpoint fingerprints a different system (%d != %d)", cp.SysFP, fp)
		}
		j.cp = cp
		j.done = cp.Evals
	}
	return j, nil
}

// effectiveTimeout clamps the client's requested wall-clock bound to the
// server ceiling: the minimum of the two, with 0 (no client bound) meaning
// the ceiling itself. The resulting deadline is carried by the request
// context, so AbortReport.Bound attributes served deadline aborts to "ctx".
func effectiveTimeout(requested, ceiling time.Duration) time.Duration {
	if requested <= 0 || requested > ceiling {
		return ceiling
	}
	return requested
}
