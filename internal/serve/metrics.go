package serve

import (
	"fmt"
	"net/http"
	"sort"
	"sync"

	"warrow/internal/solver"
)

// Metrics is the daemon's aggregate accounting: admission decisions, the
// outcome taxonomy of every accepted request, abort reasons, preemption
// traffic and cumulative solve work. All counters are monotone except the
// two gauges (queue depth and active sessions), which the server maintains.
// Safe for concurrent use.
type Metrics struct {
	mu sync.Mutex

	accepted     uint64
	rejected     map[string]uint64 // by reason class: overloaded, client-cap, malformed
	completed    uint64
	aborted      map[string]uint64 // by solver.AbortReason name
	undelivered  uint64            // final outcomes whose client was gone
	preemptions  uint64
	resumes      uint64 // requests that arrived carrying a checkpoint
	badFrames    uint64
	badHandshake uint64

	totalEvals   uint64
	totalRetries uint64
	totalWallNs  uint64

	queueDepth     int64
	activeSessions int64
}

func newMetrics() *Metrics {
	return &Metrics{
		rejected: make(map[string]uint64),
		aborted:  make(map[string]uint64),
	}
}

func (m *Metrics) incAccepted() {
	m.mu.Lock()
	m.accepted++
	m.queueDepth++
	m.mu.Unlock()
}

func (m *Metrics) incRejected(class string) {
	m.mu.Lock()
	m.rejected[class]++
	m.mu.Unlock()
}

// finishSolve records one accepted request reaching its terminal state.
func (m *Metrics) finishSolve(status string, abortReason string, st *solver.Stats, delivered bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth--
	switch status {
	case "completed":
		m.completed++
	case "aborted":
		m.aborted[abortReason]++
	default:
		// Post-admission rejections (malformed resume handles) keep the
		// rejection taxonomy.
		m.rejected["malformed"]++
	}
	if !delivered {
		m.undelivered++
	}
	if st != nil {
		m.totalEvals += uint64(st.Evals)
		m.totalRetries += uint64(st.Retries)
		m.totalWallNs += uint64(st.WallNs)
	}
}

func (m *Metrics) incPreemption() {
	m.mu.Lock()
	m.preemptions++
	m.mu.Unlock()
}

func (m *Metrics) incResume() {
	m.mu.Lock()
	m.resumes++
	m.mu.Unlock()
}

func (m *Metrics) incBadFrame() {
	m.mu.Lock()
	m.badFrames++
	m.mu.Unlock()
}

func (m *Metrics) incBadHandshake() {
	m.mu.Lock()
	m.badHandshake++
	m.mu.Unlock()
}

func (m *Metrics) sessionDelta(d int64) {
	m.mu.Lock()
	m.activeSessions += d
	m.mu.Unlock()
}

// Snapshot renders every counter under stable names, sorted — the exact
// lines the /metrics endpoint serves, one "name value" pair each.
func (m *Metrics) Snapshot() map[string]uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := map[string]uint64{
		"eqsolved_accepted_total":      m.accepted,
		"eqsolved_completed_total":     m.completed,
		"eqsolved_undelivered_total":   m.undelivered,
		"eqsolved_preemptions_total":   m.preemptions,
		"eqsolved_resumes_total":       m.resumes,
		"eqsolved_bad_frames_total":    m.badFrames,
		"eqsolved_bad_handshake_total": m.badHandshake,
		"eqsolved_evals_total":         m.totalEvals,
		"eqsolved_retries_total":       m.totalRetries,
		"eqsolved_wall_ns_total":       m.totalWallNs,
		"eqsolved_queue_depth":         uint64(m.queueDepth),
		"eqsolved_active_sessions":     uint64(m.activeSessions),
	}
	for class, n := range m.rejected {
		out["eqsolved_rejected_total{reason="+class+"}"] = n
	}
	for reason, n := range m.aborted {
		out["eqsolved_aborted_total{reason="+reason+"}"] = n
	}
	return out
}

// ServeHTTP implements the /metrics-style endpoint: plain text, one
// "name value" line per counter, sorted by name.
func (m *Metrics) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	snap := m.Snapshot()
	names := make([]string, 0, len(snap))
	for name := range snap {
		names = append(names, name)
	}
	sort.Strings(names)
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	for _, name := range names {
		fmt.Fprintf(w, "%s %d\n", name, snap[name])
	}
}
