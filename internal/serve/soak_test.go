package serve

import (
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"warrow/internal/chaos"
	"warrow/internal/serve/proto"
	"warrow/internal/solver"
)

// TestServeSoak is the seeded mixed-workload soak: short solves, long
// preempted solves, wall-clock-heavy solves that blow their deadline, and
// chaos-panicking solves, all through a small saturated daemon. Every
// submitted request must reach a terminal outcome — completed, aborted with
// a structured report (resumable where the solver supports it), or
// explicitly rejected — the metrics must balance, and the server must drain
// to its goroutine baseline. Run it under -race for the full effect.
func TestServeSoak(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, addr := startServer(t, Options{Workers: 2, Queue: 6, Quantum: 64, PerClient: 6,
		MaxTimeout: 300 * time.Millisecond, WriteTimeout: 2 * time.Second})

	rng := rand.New(rand.NewSource(4242))
	kinds := []func(seed uint64) *proto.Request{
		// Short: completes comfortably.
		func(seed uint64) *proto.Request { return genReq("sw", seed, 16, 0) },
		// Long with a budget: preempted between quanta, aborts at its budget.
		func(seed uint64) *proto.Request { return genReq("sw", seed, 300, 200) },
		// Slow: per-eval latency pushes it past the server deadline ceiling.
		func(seed uint64) *proto.Request { return slowed(genReq("rr", seed, 64, 0), 10*time.Millisecond) },
		// Panicking: persistent chaos faults abort with eval-failure.
		func(seed uint64) *proto.Request {
			req := genReq("psw", seed, 40, 0)
			req.Chaos = &chaos.Config{Seed: seed, Persistent: 0.3}
			return req
		},
	}

	const clients = 4
	const perClient = 10
	var (
		mu       sync.Mutex
		resolved int
		statuses = map[string]int{}
		reasons  = map[string]int{}
	)
	var wg sync.WaitGroup
	for ci := 0; ci < clients; ci++ {
		c := dialT(t, addr)
		// Each client pipelines a seeded shuffle of the workload kinds.
		seeds := make([]uint64, perClient)
		picks := make([]int, perClient)
		for i := range seeds {
			seeds[i] = rng.Uint64() % 1000
			picks[i] = rng.Intn(len(kinds))
		}
		wg.Add(1)
		// Each client submits sequentially: four concurrent clients stay
		// under the admission capacity, so every request is accepted and the
		// outcome mix is a property of the workloads alone (overload and
		// client-cap rejection have their own dedicated tests).
		go func(c *Client, seeds []uint64, picks []int) {
			defer wg.Done()
			for i := range seeds {
				req := kinds[picks[i]](seeds[i])
				resp, err := c.Do(req)
				if err != nil {
					t.Errorf("soak request died: %v", err)
					return
				}
				mu.Lock()
				resolved++
				statuses[resp.Status]++
				if resp.Status == proto.StatusAborted {
					reasons[resp.Abort.Reason.String()]++
					// Complete-certified-or-resumable: preemptible solver
					// aborts must carry a resumable handle.
					if proto.Preemptible(req.Solver) && resp.Checkpoint == "" {
						t.Errorf("aborted %s solve carries no checkpoint (reason %s)", req.Solver, resp.Abort.Reason)
					}
				}
				if resp.Status == proto.StatusCompleted && len(resp.Values) == 0 {
					t.Error("completed solve returned no values")
				}
				mu.Unlock()
			}
		}(c, seeds, picks)
	}
	wg.Wait()

	if resolved != clients*perClient {
		t.Fatalf("resolved %d of %d requests", resolved, clients*perClient)
	}
	if statuses[proto.StatusCompleted] == 0 {
		t.Error("soak produced no completed solve")
	}
	if reasons[solver.AbortBudget.String()] == 0 {
		t.Error("soak produced no budget abort")
	}
	if reasons[solver.AbortEvalFailure.String()] == 0 {
		t.Error("soak produced no eval-failure abort from the panicking workload")
	}
	t.Logf("soak outcomes: %v, abort reasons: %v", statuses, reasons)

	// Metrics balance: accepted == completed + aborted, and rejected covers
	// the rest of what the clients saw.
	snap := srv.Metrics().Snapshot()
	finished := snap["eqsolved_completed_total"]
	for name, n := range snap {
		if strings.HasPrefix(name, "eqsolved_aborted_total{") {
			finished += n
		}
	}
	if snap["eqsolved_accepted_total"] != finished {
		t.Errorf("accepted %d != terminal outcomes %d", snap["eqsolved_accepted_total"], finished)
	}
	if snap["eqsolved_queue_depth"] != 0 {
		t.Errorf("queue depth %d after the soak drained", snap["eqsolved_queue_depth"])
	}

	srv.Close()
	waitGoroutines(t, before)
}
