package serve

import (
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"warrow/internal/chaos"
	"warrow/internal/serve/proto"
)

// dialRaw opens a raw protocol connection with the client half of the
// handshake already sent (the server's reply is left for the caller).
func dialRaw(addr string) (net.Conn, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if err := proto.WriteMagic(conn); err != nil {
		conn.Close()
		return nil, err
	}
	return conn, nil
}

func dialRawNoMagic(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// waitGoroutines polls until the goroutine count returns to the baseline or
// the deadline passes, and fails the test with a stack dump hint otherwise.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutine leak: %d running, %d before\n%s", n, before, buf[:runtime.Stack(buf, true)])
	}
}

// TestServeNoLeakOnMidSolveDisconnects fires many clients that vanish in the
// middle of their solves — some cleanly, some mid-frame via the chaos conn
// wrappers — and asserts the server drains to its baseline goroutine count
// and loses no accepted request.
func TestServeNoLeakOnMidSolveDisconnects(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, addr := startServer(t, Options{Workers: 2, Queue: 16, Quantum: 32, PerClient: 8,
		MaxTimeout: 2 * time.Second, WriteTimeout: time.Second})

	const clients = 8
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(addr, 5*time.Second)
			if err != nil {
				t.Error(err)
				return
			}
			// Launch slow solves, then disconnect while they run.
			for k := 0; k < 3; k++ {
				go c.Do(slowed(genReq("sw", uint64(i*10+k), 64, 0), time.Millisecond))
			}
			time.Sleep(time.Duration(5+i*3) * time.Millisecond)
			c.Close()
		}(i)
	}
	wg.Wait()

	// Every accepted request must reach a terminal outcome even though its
	// client is gone (recorded as undelivered), and the queue must drain.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		snap := srv.Metrics().Snapshot()
		if snap["eqsolved_queue_depth"] == 0 && snap["eqsolved_active_sessions"] == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	snap := srv.Metrics().Snapshot()
	if snap["eqsolved_queue_depth"] != 0 {
		t.Errorf("queue depth %d after all clients vanished", snap["eqsolved_queue_depth"])
	}
	finished := snap["eqsolved_completed_total"]
	for name, n := range snap {
		if strings.HasPrefix(name, "eqsolved_aborted_total{") {
			finished += n
		}
	}
	if snap["eqsolved_accepted_total"] != finished {
		t.Errorf("accepted %d != terminal outcomes %d (lost requests)", snap["eqsolved_accepted_total"], finished)
	}

	// Shut the server down and require the goroutine count to return to the
	// pre-test baseline: no leaked sessions, workers, watchers or tasks.
	srv.Close()
	waitGoroutines(t, before)
}

// TestServeNoLeakOnNetworkFaults drives the daemon with the chaos conn
// wrappers: connections cut mid-frame, slow-loris handshakes and corrupted
// frames. All must be dropped without leaking.
func TestServeNoLeakOnNetworkFaults(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, addr := startServer(t, Options{Workers: 2, Queue: 8,
		HandshakeTimeout: 200 * time.Millisecond, WriteTimeout: time.Second, MaxTimeout: 2 * time.Second})

	// A request big enough that CutAfter severs it mid-frame.
	req := genReq("sw", 5, 32, 0)
	payload, err := proto.EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	faults := []func() error{
		// Cut mid-frame after the handshake: the server sees a truncated
		// frame and must count it and drop the session.
		func() error {
			conn, err := dialRaw(addr)
			if err != nil {
				return err
			}
			defer conn.Close()
			if err := proto.ReadMagic(conn); err != nil {
				return err
			}
			cut := chaos.CutAfter(conn, len(payload)/2)
			proto.WriteFrame(cut, payload)
			return nil
		},
		// Slow-loris the handshake itself: the handshake timeout must fire.
		func() error {
			conn, err := dialRawNoMagic(addr)
			if err != nil {
				return err
			}
			defer conn.Close()
			slow := chaos.SlowWriter(conn, 1, 60*time.Millisecond)
			slow.Write([]byte(proto.Magic))
			return nil
		},
		// Corrupt the length prefix: the server reads an absurd frame size
		// and must reject it without allocating.
		func() error {
			conn, err := dialRaw(addr)
			if err != nil {
				return err
			}
			defer conn.Close()
			if err := proto.ReadMagic(conn); err != nil {
				return err
			}
			corrupt := chaos.CorruptByte(conn, 0, 0xff)
			proto.WriteFrame(corrupt, payload)
			// Give the server a moment to read the poisoned prefix.
			time.Sleep(50 * time.Millisecond)
			return nil
		},
	}
	for i := 0; i < 3; i++ {
		for _, fault := range faults {
			wg.Add(1)
			go func(f func() error) {
				defer wg.Done()
				if err := f(); err != nil {
					t.Error(err)
				}
			}(fault)
		}
	}
	wg.Wait()

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Metrics().Snapshot()["eqsolved_active_sessions"] == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	snap := srv.Metrics().Snapshot()
	if snap["eqsolved_active_sessions"] != 0 {
		t.Errorf("%d sessions still active after every faulty client left", snap["eqsolved_active_sessions"])
	}
	if snap["eqsolved_bad_frames_total"] == 0 {
		t.Error("no bad frame recorded despite cut and corrupted clients")
	}
	if snap["eqsolved_bad_handshake_total"] == 0 {
		t.Error("no bad handshake recorded despite the slow-loris client")
	}
	srv.Close()
	waitGoroutines(t, before)
}
