// Package proto defines the wire protocol of the eqsolved daemon: a
// handshake line followed by length-prefixed JSON frames, with constraint
// systems carried as eqdsl text or as deterministic eqgen recipes and
// checkpoints carried through the solver's own versioned text format
// (solver.MarshalCheckpoint), never re-encoded.
//
// The daemon decodes untrusted bytes, so every decoder in this package must
// fail cleanly on malformed input — wrong magic, oversized or truncated
// frames, unknown solver names, out-of-range knobs — with an error and no
// partial state. FuzzProto pins that contract.
package proto

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"warrow/internal/chaos"
	"warrow/internal/eqgen"
	"warrow/internal/solver"
)

// Magic is the handshake line each side writes before its first frame; a
// connection whose peer leads with anything else is dropped before any JSON
// is parsed. The trailing newline makes a telnet session fail fast instead
// of hanging inside a length prefix.
const Magic = "eqsolved/1\n"

// MaxFrame bounds one frame's payload. Systems are text and values are
// canonical strings, so 8 MiB comfortably fits the 4096-unknown generator
// ceiling while keeping a hostile length prefix from allocating gigabytes.
const MaxFrame = 8 << 20

// Frame-layer errors.
var (
	// ErrFrameTooBig: the length prefix exceeds MaxFrame.
	ErrFrameTooBig = errors.New("proto: frame exceeds size limit")
	// ErrBadMagic: the peer's handshake line is not Magic.
	ErrBadMagic = errors.New("proto: bad handshake")
)

// WriteMagic writes the handshake line.
func WriteMagic(w io.Writer) error {
	_, err := io.WriteString(w, Magic)
	return err
}

// ReadMagic consumes and verifies the peer's handshake line.
func ReadMagic(r io.Reader) error {
	buf := make([]byte, len(Magic))
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("%w: %v", ErrBadMagic, err)
	}
	if string(buf) != Magic {
		return ErrBadMagic
	}
	return nil
}

// WriteFrame writes one length-prefixed frame: a u32 big-endian payload
// length followed by the payload.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return ErrFrameTooBig
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame. A length prefix beyond
// MaxFrame fails before any payload allocation; a truncated payload fails
// with io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, ErrFrameTooBig
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// Solvers lists the solver names a request may carry: the entry points over
// parsed/generated systems that the daemon can run. All but the slr2–4
// family support exact checkpoint resume and are therefore preemptible;
// slr2–4 run each request in one slice.
var Solvers = []string{"rr", "w", "srr", "sw", "psw", "cpw", "slr2", "slr3", "slr4"}

// Preemptible reports whether the named solver supports exact checkpoint
// resume, which is what quantum preemption and client-side resume rely on.
// cpw's resume handles are quiesce-and-drain snapshots: exact in the sense
// that the resumed run restores every suspended unknown, not that it replays
// the same worker interleaving (cpw results are certified, not bit-pinned).
func Preemptible(solverName string) bool {
	switch solverName {
	case "rr", "w", "srr", "sw", "psw", "cpw":
		return true
	}
	return false
}

// knownSolver reports whether name is in Solvers.
func knownSolver(name string) bool {
	for _, s := range Solvers {
		if s == name {
			return true
		}
	}
	return false
}

// Source values of a Request.
const (
	// SourceEq: the request carries an eqdsl system file in System.
	SourceEq = "eq"
	// SourceGen: the request carries an eqgen recipe in Gen; client and
	// server regenerate the identical system from the deterministic
	// generator, so only the recipe crosses the wire.
	SourceGen = "gen"
)

// Request is one solve submission. IDs are client-chosen and echoed in the
// response, so a client may pipeline requests over one connection.
type Request struct {
	// ID is echoed verbatim in the matching Response.
	ID uint64 `json:"id"`
	// Solver names the entry point (see Solvers).
	Solver string `json:"solver"`
	// Source says how the system is carried: SourceEq or SourceGen.
	Source string `json:"source"`
	// System is the eqdsl text (Source == SourceEq).
	System string `json:"system,omitempty"`
	// Gen is the generator recipe (Source == SourceGen).
	Gen *eqgen.Config `json:"gen,omitempty"`
	// MaxEvals bounds the solve's evaluation budget; 0 means the server
	// default (unbounded up to the deadline).
	MaxEvals int `json:"max_evals,omitempty"`
	// TimeoutNs is the client's wall-clock bound in nanoseconds; the server
	// clamps it to its own -max-timeout.
	TimeoutNs int64 `json:"timeout_ns,omitempty"`
	// MaxFlips arms the oscillation watchdog.
	MaxFlips int `json:"max_flips,omitempty"`
	// Checkpoint, when non-empty, resumes a previous solve: the verbatim
	// solver.MarshalCheckpoint text returned by an earlier Response.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Chaos, when non-nil, wraps the system with deterministic fault
	// injection before solving (generated sources only) — the soak tests'
	// way of exercising the daemon's panic isolation end to end.
	Chaos *chaos.Config `json:"chaos,omitempty"`
}

// Timeout converts TimeoutNs.
func (r *Request) Timeout() time.Duration { return time.Duration(r.TimeoutNs) }

// Validate rejects structurally malformed requests before any solving
// state is allocated for them.
func (r *Request) Validate() error {
	if !knownSolver(r.Solver) {
		return fmt.Errorf("proto: unknown solver %q", r.Solver)
	}
	switch r.Source {
	case SourceEq:
		if r.System == "" {
			return errors.New("proto: source eq carries no system text")
		}
		if r.Gen != nil {
			return errors.New("proto: source eq with a gen recipe")
		}
		if r.Chaos != nil {
			return errors.New("proto: chaos injection requires source gen")
		}
	case SourceGen:
		if r.Gen == nil {
			return errors.New("proto: source gen carries no recipe")
		}
		if r.System != "" {
			return errors.New("proto: source gen with system text")
		}
	default:
		return fmt.Errorf("proto: unknown source %q", r.Source)
	}
	if r.MaxEvals < 0 || r.TimeoutNs < 0 || r.MaxFlips < 0 {
		return errors.New("proto: negative bound")
	}
	if r.Checkpoint != "" && !Preemptible(r.Solver) {
		return fmt.Errorf("proto: solver %q does not support exact resume", r.Solver)
	}
	return nil
}

// Response statuses: the full outcome taxonomy of an accepted request, plus
// the explicit rejection of one that was not.
const (
	// StatusCompleted: the solve ran to a fixpoint; Values and Stats are set.
	StatusCompleted = "completed"
	// StatusAborted: a bound fired; Abort carries the diagnosis, and
	// Checkpoint a resumable handle when the solver supports exact resume.
	StatusAborted = "aborted"
	// StatusRejected: admission control refused the request (overload,
	// per-client cap, malformed request); Reason says why. Nothing ran.
	StatusRejected = "rejected"
)

// Response is the daemon's answer to one Request.
type Response struct {
	// ID echoes the request.
	ID uint64 `json:"id"`
	// Status is one of the Status constants.
	Status string `json:"status"`
	// Reason details a rejection ("overloaded", "client-cap", or the
	// validation error text).
	Reason string `json:"reason,omitempty"`
	// Values maps encoded unknowns to canonically encoded values
	// (completed solves only).
	Values map[string]string `json:"values,omitempty"`
	// Stats is the solve's work accounting (completed and aborted solves).
	Stats *Stats `json:"stats,omitempty"`
	// Abort is the structured diagnosis of an aborted solve.
	Abort *AbortReport `json:"abort,omitempty"`
	// Checkpoint, when non-empty, is a resumable handle: the verbatim
	// solver.MarshalCheckpoint text, to be sent back in a follow-up
	// Request.Checkpoint.
	Checkpoint string `json:"checkpoint,omitempty"`
	// Preemptions counts how often the scheduler parked this solve at a
	// quantum boundary before it reached its final outcome.
	Preemptions int `json:"preemptions,omitempty"`
}

// Stats and AbortReport alias the solver's wire-stable types (field names
// pinned by the solver package's golden test), so responses carry them
// verbatim instead of hand-rolling a parallel serialization.
type (
	Stats       = solver.Stats
	AbortReport = solver.AbortReport
)

// EncodeRequest marshals req into one frame payload.
func EncodeRequest(req *Request) ([]byte, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(req)
}

// DecodeRequest unmarshals and validates one frame payload. Unknown fields
// are rejected: a version-skewed client must fail loudly, not have its new
// knobs silently ignored.
func DecodeRequest(payload []byte) (*Request, error) {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("proto: bad request: %w", err)
	}
	if dec.More() {
		return nil, errors.New("proto: trailing data after request")
	}
	if err := req.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// EncodeResponse marshals resp into one frame payload.
func EncodeResponse(resp *Response) ([]byte, error) {
	return json.Marshal(resp)
}

// DecodeResponse unmarshals one frame payload.
func DecodeResponse(payload []byte) (*Response, error) {
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	var resp Response
	if err := dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("proto: bad response: %w", err)
	}
	if dec.More() {
		return nil, errors.New("proto: trailing data after response")
	}
	switch resp.Status {
	case StatusCompleted, StatusAborted, StatusRejected:
	default:
		return nil, fmt.Errorf("proto: unknown status %q", resp.Status)
	}
	return &resp, nil
}

// WriteRequest frames and writes one request.
func WriteRequest(w io.Writer, req *Request) error {
	payload, err := EncodeRequest(req)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// ReadRequest reads and decodes one request frame.
func ReadRequest(r io.Reader) (*Request, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return DecodeRequest(payload)
}

// WriteResponse frames and writes one response.
func WriteResponse(w io.Writer, resp *Response) error {
	payload, err := EncodeResponse(resp)
	if err != nil {
		return err
	}
	return WriteFrame(w, payload)
}

// ReadResponse reads and decodes one response frame.
func ReadResponse(r io.Reader) (*Response, error) {
	payload, err := ReadFrame(r)
	if err != nil {
		return nil, err
	}
	return DecodeResponse(payload)
}
