package proto

import (
	"bytes"
	"testing"

	"warrow/internal/eqgen"
)

// FuzzProto feeds arbitrary bytes to the daemon-facing decoders: the frame
// reader, the handshake check and the request/response JSON envelopes. The
// contract under fuzz is purely negative — no panic, no runaway allocation
// (the frame reader must reject hostile length prefixes before allocating)
// — plus one positive invariant: whatever decodes successfully re-encodes
// and decodes to the same value.
func FuzzProto(f *testing.F) {
	// Seed corpus: valid frames of valid envelopes, plus the classic
	// off-by-ones — truncated header, truncated payload, oversize prefix.
	seed := func(payload []byte) {
		var buf bytes.Buffer
		_ = WriteFrame(&buf, payload)
		f.Add(buf.Bytes())
	}
	req, _ := EncodeRequest(&Request{ID: 1, Solver: "sw", Source: SourceEq, System: "domain natinf\nx = x + 1\n"})
	seed(req)
	req2, _ := EncodeRequest(&Request{ID: 2, Solver: "psw", Source: SourceGen, Gen: &eqgen.Config{Seed: 7, N: 16}, TimeoutNs: 1e6})
	seed(req2)
	resp, _ := EncodeResponse(&Response{ID: 1, Status: StatusCompleted, Values: map[string]string{"x": "inf"}})
	seed(resp)
	resp2, _ := EncodeResponse(&Response{ID: 2, Status: StatusRejected, Reason: "overloaded"})
	seed(resp2)
	f.Add([]byte(Magic))
	f.Add([]byte{0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 'x'})
	f.Add([]byte{0, 0, 0, 5, 'h', 'i'})
	f.Add([]byte(`{"id":1,"solver":"sw","source":"eq","system":"x"}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		_ = ReadMagic(bytes.NewReader(data))

		payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			// Also exercise the envelope decoders on the raw bytes, so
			// mutations of bare JSON (no frame header) reach them too.
			payload = data
		}
		if req, err := DecodeRequest(payload); err == nil {
			re, err := EncodeRequest(req)
			if err != nil {
				t.Fatalf("decoded request failed to re-encode: %v", err)
			}
			back, err := DecodeRequest(re)
			if err != nil {
				t.Fatalf("re-encoded request failed to decode: %v", err)
			}
			if back.ID != req.ID || back.Solver != req.Solver || back.Source != req.Source {
				t.Fatalf("request round trip drifted: %+v vs %+v", back, req)
			}
		}
		if resp, err := DecodeResponse(payload); err == nil {
			re, err := EncodeResponse(resp)
			if err != nil {
				t.Fatalf("decoded response failed to re-encode: %v", err)
			}
			if _, err := DecodeResponse(re); err != nil {
				t.Fatalf("re-encoded response failed to decode: %v", err)
			}
		}
	})
}
