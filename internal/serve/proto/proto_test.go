package proto

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"

	"warrow/internal/chaos"
	"warrow/internal/eqgen"
	"warrow/internal/solver"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payloads := [][]byte{[]byte("hello"), {}, bytes.Repeat([]byte("x"), 100000)}
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("write: %v", err)
		}
	}
	for i, want := range payloads {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Errorf("drained stream: err = %v, want io.EOF", err)
	}
}

func TestFrameRejectsOversizeAndTruncation(t *testing.T) {
	// A hostile length prefix must fail before allocating the payload.
	huge := []byte{0xff, 0xff, 0xff, 0xff}
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversize prefix: err = %v, want ErrFrameTooBig", err)
	}
	if err := WriteFrame(io.Discard, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooBig) {
		t.Errorf("oversize write: err = %v, want ErrFrameTooBig", err)
	}
	// A truncated payload is an unexpected EOF, not a hang or a short read.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("full payload")); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(cut)); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated payload: err = %v, want ErrUnexpectedEOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader([]byte{0, 0})); !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Errorf("truncated header: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestMagicHandshake(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMagic(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ReadMagic(&buf); err != nil {
		t.Fatalf("good handshake rejected: %v", err)
	}
	if err := ReadMagic(strings.NewReader("GET / HTTP/1.1\r\n")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("HTTP request accepted as handshake: %v", err)
	}
	if err := ReadMagic(strings.NewReader("eq")); !errors.Is(err, ErrBadMagic) {
		t.Errorf("truncated handshake: err = %v, want ErrBadMagic", err)
	}
}

func TestRequestRoundTrip(t *testing.T) {
	reqs := []*Request{
		{ID: 1, Solver: "sw", Source: SourceEq, System: "domain natinf\nx = x + 1\n", MaxEvals: 100},
		{ID: 2, Solver: "psw", Source: SourceGen, Gen: &eqgen.Config{Seed: 7, N: 20}, TimeoutNs: 1e9},
		{ID: 3, Solver: "rr", Source: SourceGen, Gen: &eqgen.Config{Seed: 1}, Checkpoint: "warrow-checkpoint v1\n...", MaxFlips: 8},
	}
	for _, req := range reqs {
		var buf bytes.Buffer
		if err := WriteRequest(&buf, req); err != nil {
			t.Fatalf("write %d: %v", req.ID, err)
		}
		got, err := ReadRequest(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", req.ID, err)
		}
		if got.ID != req.ID || got.Solver != req.Solver || got.Source != req.Source ||
			got.System != req.System || got.Checkpoint != req.Checkpoint ||
			got.MaxEvals != req.MaxEvals || got.TimeoutNs != req.TimeoutNs || got.MaxFlips != req.MaxFlips {
			t.Errorf("round trip %d: got %+v, want %+v", req.ID, got, req)
		}
		if (got.Gen == nil) != (req.Gen == nil) || (got.Gen != nil && *got.Gen != *req.Gen) {
			t.Errorf("round trip %d lost the recipe: %+v", req.ID, got.Gen)
		}
	}
}

func TestRequestValidation(t *testing.T) {
	cc := chaos.Config{Transient: 0.1}
	bad := []*Request{
		{Solver: "magic", Source: SourceEq, System: "domain natinf\nx = 0\n"},
		{Solver: "sw", Source: "carrier-pigeon", System: "x"},
		{Solver: "sw", Source: SourceEq},                                            // no system
		{Solver: "sw", Source: SourceGen},                                           // no recipe
		{Solver: "sw", Source: SourceEq, System: "x", Gen: &eqgen.Config{}},         // both
		{Solver: "sw", Source: SourceGen, Gen: &eqgen.Config{}, System: "x"},        // both
		{Solver: "sw", Source: SourceEq, System: "x", MaxEvals: -1},                 // negative bound
		{Solver: "slr3", Source: SourceGen, Gen: &eqgen.Config{}, Checkpoint: "cp"}, // no exact resume
		{Solver: "sw", Source: SourceEq, System: "x", Chaos: &cc},                   // chaos needs gen
	}
	for i, req := range bad {
		if err := req.Validate(); err == nil {
			t.Errorf("case %d: %+v validated, want error", i, req)
		}
		if _, err := EncodeRequest(req); err == nil {
			t.Errorf("case %d: encoded despite failing validation", i)
		}
	}
}

func TestDecodeRequestRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		[]byte(``),
		[]byte(`{`),
		[]byte(`[]`),
		[]byte(`{"id":1,"solver":"sw","source":"eq","system":"x","surprise":true}`), // unknown field
		[]byte(`{"id":1,"solver":"sw","source":"eq","system":"x"}{"id":2}`),         // trailing data
		[]byte(`{"id":"not-a-number"}`),
	}
	for i, payload := range cases {
		if _, err := DecodeRequest(payload); err == nil {
			t.Errorf("case %d: garbage %q decoded without error", i, payload)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	resp := &Response{
		ID:     9,
		Status: StatusAborted,
		Stats:  &Stats{Evals: 42, Updates: 7},
		Abort: &AbortReport{
			Reason: solver.AbortDeadline,
			Bound:  "timeout",
			Evals:  42,
		},
		Checkpoint:  "warrow-checkpoint v1\nsolver sw\n",
		Preemptions: 3,
	}
	var buf bytes.Buffer
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 9 || got.Status != StatusAborted || got.Preemptions != 3 || got.Checkpoint != resp.Checkpoint {
		t.Errorf("round trip: %+v", got)
	}
	if got.Stats == nil || got.Stats.Evals != 42 {
		t.Errorf("round trip lost stats: %+v", got.Stats)
	}
	if got.Abort == nil || got.Abort.Reason != solver.AbortDeadline || got.Abort.Bound != "timeout" {
		t.Errorf("round trip lost abort report: %+v", got.Abort)
	}

	if _, err := DecodeResponse([]byte(`{"id":1,"status":"exploded"}`)); err == nil {
		t.Error("unknown status decoded without error")
	}
}
