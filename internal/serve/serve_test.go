package serve

import (
	"net"
	"strings"
	"testing"
	"time"

	"warrow/internal/certify"
	"warrow/internal/chaos"
	"warrow/internal/ckptcodec"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/serve/proto"
	"warrow/internal/solver"
)

// startServer spins up a daemon on a loopback listener and returns its
// address plus a shutdown func that asserts a clean close.
func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := New(opts)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		srv.Close()
		if err := <-done; err != nil {
			t.Errorf("Serve returned %v after Close, want nil", err)
		}
	})
	return srv, ln.Addr().String()
}

func dialT(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// loopEq terminates under every solver: h = 0..100, b = 0..99, e = 100..100.
const loopEq = "domain interval\nh = join([0,0], b + [1,1])\nb = meet(h, [-inf,99])\ne = meet(h, [100,inf])\n"

// genReq builds a generated-system request: a seeded interval workload whose
// size controls how much evaluation work the solve needs.
func genReq(sv string, seed uint64, n, maxEvals int) *proto.Request {
	return &proto.Request{
		Solver:   sv,
		Source:   proto.SourceGen,
		Gen:      &eqgen.Config{Seed: seed, N: n},
		MaxEvals: maxEvals,
	}
}

// slowed adds a deterministic per-evaluation latency spike to a generated
// request, turning it into a wall-clock-heavy workload without changing its
// values.
func slowed(req *proto.Request, delay time.Duration) *proto.Request {
	req.Chaos = &chaos.Config{Latency: 1, Delay: delay}
	return req
}

func TestServeCompleted(t *testing.T) {
	_, addr := startServer(t, Options{Workers: 2})
	c := dialT(t, addr)
	resp, err := c.Do(&proto.Request{Solver: "sw", Source: proto.SourceEq, System: loopEq, MaxEvals: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusCompleted {
		t.Fatalf("status = %s (%s), want completed", resp.Status, resp.Reason)
	}
	if got := resp.Values["h"]; got != "0..100" {
		t.Errorf("h = %q, want 0..100", got)
	}
	if got := resp.Values["b"]; got != "0..99" {
		t.Errorf("b = %q, want 0..99", got)
	}
	if resp.Stats == nil || resp.Stats.Evals == 0 {
		t.Errorf("stats missing: %+v", resp.Stats)
	}
}

func TestServeAbortTaxonomy(t *testing.T) {
	_, addr := startServer(t, Options{Workers: 2, MaxTimeout: 100 * time.Millisecond})
	c := dialT(t, addr)

	// Budget abort: a 400-unknown system needs well over 50 evaluations, so
	// the response is a structured report plus a resumable checkpoint handle.
	resp, err := c.Do(genReq("sw", 3, 400, 50))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusAborted || resp.Abort == nil || resp.Abort.Reason != solver.AbortBudget {
		t.Fatalf("budget solve: %+v", resp)
	}
	if !strings.HasPrefix(resp.Checkpoint, "warrow-checkpoint v") {
		t.Errorf("budget abort carries no resumable checkpoint: %q", resp.Checkpoint)
	}

	// Resume from the returned handle with a larger budget: the follow-up
	// continues (cumulative evals) instead of starting over.
	req2 := genReq("sw", 3, 400, 80)
	req2.Checkpoint = resp.Checkpoint
	resp2, err := c.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	if resp2.Status != proto.StatusAborted || resp2.Abort.Evals != 80 {
		t.Fatalf("resumed solve: status %s, evals %d, want aborted at cumulative 80", resp2.Status, resp2.Abort.Evals)
	}

	// Deadline abort: the server ceiling caps an unbounded slow request; the
	// bound is carried by the request context.
	resp3, err := c.Do(slowed(genReq("rr", 5, 64, 0), 5*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if resp3.Status != proto.StatusAborted || resp3.Abort.Reason != solver.AbortDeadline {
		t.Fatalf("deadline solve: %+v", resp3)
	}
	if resp3.Abort.Bound != "ctx" {
		t.Errorf("served deadline bound = %q, want ctx", resp3.Abort.Bound)
	}

	// A checkpoint handle that fingerprints a different system is rejected
	// at admission, before any solving state exists.
	req4 := genReq("sw", 99, 12, 0)
	req4.Checkpoint = resp.Checkpoint
	resp4, err := c.Do(req4)
	if err != nil {
		t.Fatal(err)
	}
	if resp4.Status != proto.StatusRejected || !strings.Contains(resp4.Reason, "fingerprint") {
		t.Fatalf("mismatched resume handle: %+v", resp4)
	}
}

func TestServePreemptResume(t *testing.T) {
	// Quantum 16 with one worker: a long solve is preempted many times; a
	// short solve admitted behind it still completes (fairness).
	srv, addr := startServer(t, Options{Workers: 1, Queue: 8, Quantum: 16, MaxTimeout: 30 * time.Second})
	c := dialT(t, addr)

	long := make(chan *proto.Response, 1)
	go func() {
		resp, err := c.Do(genReq("sw", 3, 400, 400))
		if err != nil {
			t.Error(err)
			long <- nil
			return
		}
		long <- resp
	}()
	// Give the long solve a head start so it occupies the worker.
	time.Sleep(50 * time.Millisecond)
	short, err := c.Do(&proto.Request{Solver: "sw", Source: proto.SourceEq, System: loopEq, MaxEvals: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if short.Status != proto.StatusCompleted {
		t.Fatalf("short solve behind a long one: %+v", short)
	}
	resp := <-long
	if resp == nil {
		t.Fatal("long solve lost")
	}
	if resp.Status != proto.StatusAborted || resp.Abort.Reason != solver.AbortBudget {
		t.Fatalf("long solve: %+v", resp)
	}
	if resp.Abort.Evals != 400 {
		t.Errorf("long solve evals = %d, want the full client budget 400", resp.Abort.Evals)
	}
	if resp.Preemptions == 0 {
		t.Error("long solve was never preempted despite quantum ≪ budget")
	}
	snap := srv.Metrics().Snapshot()
	if snap["eqsolved_preemptions_total"] == 0 {
		t.Error("metrics recorded no preemptions")
	}
}

func TestServePreemptedResultsBitIdentical(t *testing.T) {
	// A solve preempted and resumed many times must agree bit-for-bit
	// (values and Stats) with an unpreempted local run of the same workload.
	_, addr := startServer(t, Options{Workers: 2, Quantum: 7, MaxTimeout: 30 * time.Second})
	c := dialT(t, addr)
	resp, err := c.Do(genReq("sw", 11, 40, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusCompleted {
		t.Fatalf("served: %+v", resp)
	}
	if resp.Preemptions == 0 {
		t.Fatal("solve was not preempted; quantum too large for the workload?")
	}
	local, err := localControl(genReq("sw", 11, 40, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Values) != len(local.Values) {
		t.Fatalf("served %d values, local %d", len(resp.Values), len(local.Values))
	}
	for x, v := range local.Values {
		if resp.Values[x] != v {
			t.Errorf("value of %s: served %q, local %q", x, resp.Values[x], v)
		}
	}
	if resp.Stats.Evals != local.Stats.Evals || resp.Stats.Updates != local.Stats.Updates {
		t.Errorf("served stats (evals %d, updates %d) != local (evals %d, updates %d)",
			resp.Stats.Evals, resp.Stats.Updates, local.Stats.Evals, local.Stats.Updates)
	}
}

// localControl runs the request's workload in-process with no quantum — the
// bit-identity reference for served solves.
func localControl(req *proto.Request) (*proto.Response, error) {
	j, err := buildJob(req)
	if err != nil {
		return nil, err
	}
	out := j.runSlice(nil, 0)
	return out.resp, nil
}

func TestServeOverloadRejection(t *testing.T) {
	// One worker, tiny queue, and per-client cap above capacity: saturating
	// the daemon with slow solves must produce explicit overload rejections,
	// and every accepted solve must still terminate.
	srv, addr := startServer(t, Options{Workers: 1, Queue: 2, PerClient: 64, MaxTimeout: 10 * time.Second})
	c := dialT(t, addr)

	const n = 12
	results := make(chan *proto.Response, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := c.Do(slowed(genReq("sw", 7, 24, 0), 2*time.Millisecond))
			if err != nil {
				results <- nil
				return
			}
			results <- resp
		}()
	}
	var accepted, overloaded int
	for i := 0; i < n; i++ {
		resp := <-results
		if resp == nil {
			t.Fatal("lost request")
		}
		switch {
		case resp.Status == proto.StatusCompleted:
			accepted++
		case resp.Status == proto.StatusRejected && resp.Reason == "overloaded":
			overloaded++
		default:
			t.Errorf("unexpected outcome: %+v", resp)
		}
	}
	if accepted == 0 {
		t.Error("no request was accepted")
	}
	if overloaded == 0 {
		t.Error("saturation produced no overload rejection (capacity 3, 12 requests)")
	}
	snap := srv.Metrics().Snapshot()
	if got := snap["eqsolved_rejected_total{reason=overloaded}"]; got != uint64(overloaded) {
		t.Errorf("metrics overloaded = %d, responses said %d", got, overloaded)
	}
	if got := snap["eqsolved_accepted_total"]; got != uint64(accepted) {
		t.Errorf("metrics accepted = %d, responses said %d", got, accepted)
	}
}

func TestServePerClientCap(t *testing.T) {
	_, addr := startServer(t, Options{Workers: 1, Queue: 16, PerClient: 2, MaxTimeout: 10 * time.Second})
	c := dialT(t, addr)
	const n = 8
	results := make(chan *proto.Response, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := c.Do(slowed(genReq("sw", 7, 24, 0), 2*time.Millisecond))
			if err != nil {
				results <- nil
				return
			}
			results <- resp
		}()
	}
	var capped int
	for i := 0; i < n; i++ {
		resp := <-results
		if resp == nil {
			t.Fatal("lost request")
		}
		if resp.Status == proto.StatusRejected && resp.Reason == "client-cap" {
			capped++
		}
	}
	if capped == 0 {
		t.Error("8 pipelined requests against PerClient=2 produced no client-cap rejection")
	}
}

func TestServeMalformedEnvelopeKeepsSession(t *testing.T) {
	// A syntactically valid frame with a garbage envelope is answered with
	// a rejection and the session stays usable.
	_, addr := startServer(t, Options{Workers: 1})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := proto.WriteMagic(conn); err != nil {
		t.Fatal(err)
	}
	if err := proto.ReadMagic(conn); err != nil {
		t.Fatal(err)
	}
	if err := proto.WriteFrame(conn, []byte(`{"solver":"nope"}`)); err != nil {
		t.Fatal(err)
	}
	resp, err := proto.ReadResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusRejected {
		t.Fatalf("garbage envelope: %+v", resp)
	}
	// The same connection still serves a real request.
	if err := proto.WriteRequest(conn, &proto.Request{ID: 7, Solver: "sw", Source: proto.SourceEq, System: loopEq, MaxEvals: 100000}); err != nil {
		t.Fatal(err)
	}
	resp, err = proto.ReadResponse(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 7 || resp.Status != proto.StatusCompleted {
		t.Fatalf("request after garbage: %+v", resp)
	}
}

func TestServeRejectsBadHandshake(t *testing.T) {
	srv, addr := startServer(t, Options{Workers: 1, HandshakeTimeout: 500 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	conn.Write([]byte("GET /metrics HTTP/1.1\r\n\r\n"))
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered a non-protocol client")
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Metrics().Snapshot()["eqsolved_bad_handshake_total"] > 0 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Error("bad handshake not recorded")
}

// TestServeCPWPreemptedCertified: a served cpw solve survives quantum
// preemption — the quiesce-and-drain checkpoints park and resume across
// slices — and the completed result certifies as a post-solution of the
// regenerated system. cpw is certified, never bit-pinned, so unlike
// TestServePreemptedResultsBitIdentical there is no Stats comparison.
func TestServeCPWPreemptedCertified(t *testing.T) {
	_, addr := startServer(t, Options{Workers: 2, Quantum: 7, MaxTimeout: 30 * time.Second})
	c := dialT(t, addr)
	resp, err := c.Do(genReq("cpw", 11, 40, 100000))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != proto.StatusCompleted {
		t.Fatalf("served: %+v", resp)
	}
	if resp.Preemptions == 0 {
		t.Fatal("solve was not preempted; quantum too large for the workload?")
	}
	g := eqgen.New(eqgen.Config{Seed: 11, N: 40})
	codec := ckptcodec.IntervalCodec()
	sigma := make(map[int]lattice.Interval, len(resp.Values))
	for xs, ds := range resp.Values {
		x, err := codec.DecodeX(xs)
		if err != nil {
			t.Fatal(err)
		}
		v, err := codec.DecodeD(ds)
		if err != nil {
			t.Fatal(err)
		}
		sigma[x] = v
	}
	init := eqn.ConstBottom[int, lattice.Interval](lattice.Ints)
	if rep := certify.System(lattice.Ints, g.Interval, sigma, init); !rep.OK() {
		t.Errorf("preempted cpw result does not certify: %s", rep)
	}
}
