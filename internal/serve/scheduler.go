package serve

import (
	"context"
	"sync"
	"time"

	"warrow/internal/serve/proto"
)

// task is one admitted request moving through the scheduler: the typed job,
// the request-scoped context (connection cancellation + effective deadline),
// and the completion callback that delivers the response and releases every
// admission resource. A task is always in exactly one place — the run queue
// or a worker — so the requeue of a preempted task can never block.
type task struct {
	job      job
	ctx      context.Context
	cancel   context.CancelFunc
	preempts int
	// wallNs accumulates on-worker solve time across slices. The sequential
	// solvers leave Stats.WallNs zero, so the scheduler measures it — queue
	// and parked time excluded.
	wallNs int64
	// finish delivers the final response (session write, metrics, slot and
	// cap release). Called exactly once per task.
	finish func(*proto.Response, int)
}

// scheduler multiplexes admitted tasks over a fixed worker pool with a
// bounded admission semaphore. Admission and queueing share one capacity:
// a task holds its slot from admit until finish, whether queued, running,
// or parked between quanta, so the total number of admitted-but-unfinished
// requests is bounded and a requeue always finds space in runq.
type scheduler struct {
	quantum int
	slots   chan struct{}
	runq    chan *task
	done    chan struct{}
	wg      sync.WaitGroup
	metrics *Metrics
}

// newScheduler starts workers goroutines over a capacity-bounded queue.
func newScheduler(workers, capacity, quantum int, m *Metrics) *scheduler {
	s := &scheduler{
		quantum: quantum,
		slots:   make(chan struct{}, capacity),
		runq:    make(chan *task, capacity),
		done:    make(chan struct{}),
		metrics: m,
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// admit tries to take an admission slot and enqueue t. It never blocks:
// when the semaphore is full the task is rejected and the caller answers
// REJECTED overloaded — bounded, observable backpressure instead of an
// unbounded buffer.
func (s *scheduler) admit(t *task) bool {
	select {
	case s.slots <- struct{}{}:
		s.runq <- t // cannot block: #queued ≤ #slots held ≤ cap(runq)
		return true
	default:
		return false
	}
}

// stop terminates the worker pool. The caller must first ensure every
// admitted task has finished (the server cancels contexts and waits on its
// task group), so no task is stranded in runq.
func (s *scheduler) stop() {
	close(s.done)
	s.wg.Wait()
}

func (s *scheduler) worker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case t := <-s.runq:
			s.run(t)
		}
	}
}

// run advances one task by one quantum. A non-final slice parks the job's
// checkpoint inside the task and requeues it at the back of the FIFO, so
// short solves admitted later interleave fairly with long batch solves; a
// final slice delivers the response and releases the admission slot.
func (s *scheduler) run(t *task) {
	start := time.Now()
	out := t.job.runSlice(t.ctx, s.quantum)
	t.wallNs += time.Since(start).Nanoseconds()
	if !out.final {
		t.preempts++
		s.metrics.incPreemption()
		s.runq <- t
		return
	}
	t.cancel()
	if out.resp.Stats != nil {
		out.resp.Stats.WallNs = t.wallNs
	}
	t.finish(out.resp, t.preempts)
	<-s.slots
}
