package eqgen

// Seeded mutation of generated systems: the edit-workload generator behind
// the incremental re-solve harness (internal/incr, diffsolve.CheckIncremental
// and cmd/bench -incr). A mutation redefines an unknown's equation in place
// — fresh constant material, re-rolled widening/bound/flip flags, and
// occasionally a changed dependence list — through eqn.RedefineRaw, so both
// the boxed right-hand side and its fused unboxed twin are replaced in one
// step and same-dependences edits patch compiled solver shapes instead of
// discarding them. The same (seed, k) always produces the same edit batch:
// a failing fuzz input is a complete reproduction recipe, exactly like the
// generator configs themselves.

// Mutate applies k seeded redefinitions to a generated system, each to a
// distinct unknown, and returns the edited unknowns' indices in application
// order. The Shape is never modified: it remains the record of the original
// generation, and every new right-hand side captures its own Spec. About a
// quarter of the edits also change the unknown's dependence list (dropping
// one dependence or adding a fresh one), exercising the full shape
// invalidation path; the rest keep the dependences, exercising in-place
// patching of memoized compiled shapes.
func Mutate(g System, seed uint64, k int) []int {
	s := g.Shape
	n := len(s.Deps)
	if n == 0 || k <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	r := &rng{s: seed ^ 0xa24baed4963ee407}
	edited := make([]int, 0, k)
	seen := make(map[int]bool, k)
	for len(edited) < k {
		i := r.intn(n)
		if seen[i] {
			continue
		}
		seen[i] = true
		edited = append(edited, i)

		sp := s.SpecOf(i)
		sp.Deps = append([]int(nil), sp.Deps...)
		if r.prob(0.25) {
			if len(sp.Deps) > 1 && r.prob(0.5) {
				// Drop one dependence.
				di := r.intn(len(sp.Deps))
				sp.Deps = append(sp.Deps[:di], sp.Deps[di+1:]...)
			} else {
				// Add a fresh one (any target: backward, forward, or a new
				// cycle — the cone is recomputed from the edited graph).
				j := r.intn(n)
				dup := false
				for _, d := range sp.Deps {
					if d == j {
						dup = true
						break
					}
				}
				if !dup {
					sp.Deps = append(sp.Deps, j)
				}
			}
		}
		sp.Mat = r.next()
		sp.Grow = r.prob(s.Cfg.WidenDensity)
		sp.Bound = r.prob(0.7)
		sp.NonMono = -1
		if len(sp.Deps) > 0 && r.prob(s.Cfg.NonMonoDensity) {
			sp.NonMono = r.intn(len(sp.Deps))
		}

		switch {
		case g.Interval != nil:
			rhs, raw := IntervalRHS(sp)
			g.Interval.RedefineRaw(i, sp.Deps, rhs, raw)
		case g.Flat != nil:
			rhs, raw := FlatRHS(sp)
			g.Flat.RedefineRaw(i, sp.Deps, rhs, raw)
		case g.Powerset != nil:
			rhs, raw := PowersetRHS(sp)
			g.Powerset.RedefineRaw(i, sp.Deps, rhs, raw)
		}
	}
	return edited
}
