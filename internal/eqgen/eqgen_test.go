package eqgen

import (
	"reflect"
	"strings"
	"testing"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// TestShapeDeterminism: the same config yields the same shape, and solving
// two independently generated instances yields the same solution and work —
// the property every failing seed relies on to be a reproduction recipe.
func TestShapeDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, N: 30, NonMonoDensity: 0.3, ForwardDensity: 0.2}
	a, b := BuildShape(cfg), BuildShape(cfg)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shapes differ for identical config:\n%+v\n%+v", a, b)
	}
	l := lattice.Ints
	init := eqn.ConstBottom[int, lattice.Interval](l)
	op := solver.Op[int](solver.Warrow[lattice.Interval](l))
	scfg := solver.Config{MaxEvals: 100_000}
	s1, st1, err1 := solver.SW(IntervalSystem(a), l, op, init, scfg)
	s2, st2, err2 := solver.SW(IntervalSystem(b), l, op, init, scfg)
	if (err1 == nil) != (err2 == nil) || st1 != st2 {
		t.Fatalf("independent instances solved differently: %v/%+v vs %v/%+v", err1, st1, err2, st2)
	}
	for x, v := range s1 {
		if !l.Eq(v, s2[x]) {
			t.Fatalf("x%d: %s vs %s", x, l.Format(v), l.Format(s2[x]))
		}
	}
}

// TestShapeStructure: blocks partition [0, N), dependences stay in range and
// are deduplicated, and declared dependences exactly cover the reads the
// right-hand sides perform.
func TestShapeStructure(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		s := BuildShape(Config{Seed: seed, N: 25, ForwardDensity: 0.3, NonMonoDensity: 0.4})
		n := s.Cfg.N
		next := 0
		for _, b := range s.Blocks {
			if b[0] != next || b[1] < b[0] || b[1] >= n {
				t.Fatalf("seed %d: bad block %v (expected lo=%d)", seed, b, next)
			}
			next = b[1] + 1
		}
		if next != n {
			t.Fatalf("seed %d: blocks cover [0,%d), want [0,%d)", seed, next, n)
		}
		for i, ds := range s.Deps {
			seen := map[int]bool{}
			for _, d := range ds {
				if d < 0 || d >= n {
					t.Fatalf("seed %d: dep x%d -> x%d out of range", seed, i, d)
				}
				if seen[d] {
					t.Fatalf("seed %d: duplicate dep x%d -> x%d", seed, i, d)
				}
				seen[d] = true
			}
			if s.NonMono[i] >= len(ds) {
				t.Fatalf("seed %d: NonMono[%d]=%d out of deps range", seed, i, s.NonMono[i])
			}
		}
		// Reads match declared deps: count get calls per unknown.
		sys := IntervalSystem(s)
		for _, x := range sys.Order() {
			reads := map[int]bool{}
			sys.RHS(x)(func(y int) lattice.Interval {
				reads[y] = true
				return lattice.EmptyInterval
			})
			for y := range reads {
				found := false
				for _, d := range sys.Deps(x) {
					if d == y {
						found = true
					}
				}
				if !found {
					t.Fatalf("seed %d: x%d reads undeclared x%d", seed, x, y)
				}
			}
		}
	}
}

// TestSCCControllability: full cycle density closes every multi-unknown
// block into a back edge; zero density leaves the graph acyclic apart from
// self-loops; full forward density produces forward cross-block edges.
func TestSCCControllability(t *testing.T) {
	s := BuildShape(Config{Seed: 7, N: 40, MaxSCC: 5, CycleDensity: 1})
	multi := 0
	for _, b := range s.Blocks {
		if b[1] == b[0] {
			continue
		}
		multi++
		hasBack := false
		for _, d := range s.Deps[b[0]] {
			if d == b[1] {
				hasBack = true
			}
		}
		if !hasBack {
			t.Errorf("cycle density 1: block %v not closed", b)
		}
	}
	if multi == 0 {
		t.Fatal("expected at least one multi-unknown block")
	}

	// FanIn -1 clamps to 0 so only structural edges remain, isolating the
	// cycle-density knob (random extra edges may close a block on their own).
	s = BuildShape(Config{Seed: 7, N: 40, MaxSCC: 5, CycleDensity: 0.000001, FanIn: -1})
	for _, b := range s.Blocks {
		for _, d := range s.Deps[b[0]] {
			if d == b[1] && b[1] > b[0] {
				t.Errorf("cycle density ~0: block %v closed", b)
			}
		}
	}

	s = BuildShape(Config{Seed: 7, N: 40, MaxSCC: 4, ForwardDensity: 1})
	forward := 0
	for i, ds := range s.Deps {
		for _, d := range ds {
			if d > i {
				// Forward within a block is structural; count only
				// cross-block forwards.
				sameBlock := false
				for _, b := range s.Blocks {
					if i >= b[0] && i <= b[1] && d >= b[0] && d <= b[1] {
						sameBlock = true
					}
				}
				if !sameBlock {
					forward++
				}
			}
		}
	}
	if forward == 0 {
		t.Error("forward density 1: no cross-block forward dependences generated")
	}
}

// TestDefaultsClampHostileInputs: arbitrary fuzz-supplied configs must be
// safe to generate from.
func TestDefaultsClampHostileInputs(t *testing.T) {
	hostile := Config{
		Seed: 1, N: -5, FanIn: 1 << 30, MaxSCC: -1,
		CycleDensity: -3, WidenDensity: 2e9, NonMonoDensity: -0.1, ForwardDensity: 7,
	}
	c := hostile.Defaults()
	if c.N < 1 || c.N > 4096 || c.FanIn < 0 || c.FanIn > 8 || c.MaxSCC < 1 || c.MaxSCC > c.N {
		t.Fatalf("bad clamp: %+v", c)
	}
	for _, p := range []float64{c.CycleDensity, c.WidenDensity, c.NonMonoDensity, c.ForwardDensity} {
		if p < 0 || p > 1 {
			t.Fatalf("bad probability clamp: %+v", c)
		}
	}
	// Must generate without panicking.
	_ = New(Config{Seed: 1, N: -5, FanIn: 1 << 30})
}

// TestAllDomainsSolvable: a monotonic config terminates under SW+⊟ in every
// domain (Theorem 2) and the solution stays within the domain's bounds.
func TestAllDomainsSolvable(t *testing.T) {
	for dom := Interval; dom <= Powerset; dom++ {
		for seed := uint64(1); seed <= 5; seed++ {
			g := New(Config{Seed: seed, Dom: dom, N: 16})
			cfg := solver.Config{MaxEvals: 200_000}
			var err error
			switch dom {
			case Interval:
				l := lattice.Ints
				_, _, err = solver.SW(g.Interval, l, solver.Op[int](solver.Warrow[lattice.Interval](l)),
					eqn.ConstBottom[int, lattice.Interval](l), cfg)
			case Flat:
				l := FlatL
				_, _, err = solver.SW(g.Flat, l, solver.Op[int](solver.Warrow[lattice.Flat[int64]](l)),
					eqn.ConstBottom[int, lattice.Flat[int64]](l), cfg)
			case Powerset:
				l := PowersetL()
				_, _, err = solver.SW(g.Powerset, l, solver.Op[int](solver.Warrow[lattice.Set[int]](l)),
					eqn.ConstBottom[int, lattice.Set[int]](l), cfg)
			}
			if err != nil {
				t.Errorf("dom %s seed %d: monotonic system did not stabilize: %v", dom, seed, err)
			}
		}
	}
}

// TestRawRHSAgreement: the fused raw right-hand sides attached by the domain
// builders compute, word for word, the canonical encoding of what the boxed
// right-hand sides compute — on random assignments drawn from the values a
// solve can reach, non-monotonic flips and growth terms included. This is
// the contract the unboxed solver core relies on for bit identity.
func TestRawRHSAgreement(t *testing.T) {
	const rounds = 25
	for seed := uint64(1); seed <= 8; seed++ {
		cfg := Config{Seed: seed, N: 24, NonMonoDensity: 0.4, ForwardDensity: 0.3}
		shape := BuildShape(cfg)
		r := &rng{s: seed ^ 0x5bf03635}

		t.Run("interval", func(t *testing.T) {
			sys := IntervalSystem(shape)
			l := lattice.Ints
			raw := lattice.AsRaw[lattice.Interval](l)
			n := cfg.N
			randIv := func() lattice.Interval {
				switch r.intn(6) {
				case 0:
					return lattice.EmptyInterval
				case 1:
					return lattice.FullInterval
				case 2:
					return lattice.NewInterval(lattice.NegInf, lattice.Fin(int64(r.intn(1100)-100)))
				case 3:
					return lattice.NewInterval(lattice.Fin(int64(r.intn(1100)-100)), lattice.PosInf)
				default:
					lo := int64(r.intn(1200) - 100)
					hi := lo + int64(r.intn(64))
					return lattice.Range(lo, hi)
				}
			}
			for round := 0; round < rounds; round++ {
				vals := make([]lattice.Interval, n)
				words := make([]uint64, 2*n)
				for i := range vals {
					vals[i] = randIv()
					raw.RawEncode(words[2*i:2*i+2], vals[i])
				}
				get := func(y int) lattice.Interval { return vals[y] }
				getRaw := func(y int) []uint64 { return words[2*y : 2*y+2] }
				dst, want := make([]uint64, 2), make([]uint64, 2)
				for _, x := range sys.Order() {
					rf := sys.RawRHSOf(x)
					if rf == nil {
						t.Fatalf("seed %d: x%d has no raw RHS", seed, x)
					}
					rf(getRaw, dst)
					raw.RawEncode(want, sys.RHS(x)(get))
					if dst[0] != want[0] || dst[1] != want[1] {
						t.Fatalf("seed %d round %d x%d: raw %v boxed %v", seed, round, x, dst, want)
					}
				}
			}
		})

		t.Run("flat", func(t *testing.T) {
			sys := FlatSystem(shape)
			raw := lattice.AsRaw[lattice.Flat[int64]](FlatL)
			n := cfg.N
			randFlat := func() lattice.Flat[int64] {
				switch r.intn(4) {
				case 0:
					return lattice.Flat[int64]{Kind: lattice.FlatBot}
				case 1:
					return lattice.Flat[int64]{Kind: lattice.FlatTop}
				default:
					return lattice.FlatOf(int64(r.intn(17)))
				}
			}
			for round := 0; round < rounds; round++ {
				vals := make([]lattice.Flat[int64], n)
				words := make([]uint64, 2*n)
				for i := range vals {
					vals[i] = randFlat()
					raw.RawEncode(words[2*i:2*i+2], vals[i])
				}
				get := func(y int) lattice.Flat[int64] { return vals[y] }
				getRaw := func(y int) []uint64 { return words[2*y : 2*y+2] }
				dst, want := make([]uint64, 2), make([]uint64, 2)
				for _, x := range sys.Order() {
					rf := sys.RawRHSOf(x)
					if rf == nil {
						t.Fatalf("seed %d: x%d has no raw RHS", seed, x)
					}
					rf(getRaw, dst)
					raw.RawEncode(want, sys.RHS(x)(get))
					if dst[0] != want[0] || dst[1] != want[1] {
						t.Fatalf("seed %d round %d x%d: raw %v boxed %v", seed, round, x, dst, want)
					}
				}
			}
		})

		t.Run("powerset", func(t *testing.T) {
			sys := PowersetSystem(shape)
			l := PowersetL()
			raw := lattice.AsRaw[lattice.Set[int]](l)
			n := cfg.N
			for round := 0; round < rounds; round++ {
				vals := make([]lattice.Set[int], n)
				words := make([]uint64, n)
				for i := range vals {
					var elems []int
					bits := r.next() & 0xFFFF
					for e := 0; e < powersetUniverse; e++ {
						if bits>>e&1 == 1 {
							elems = append(elems, e)
						}
					}
					vals[i] = lattice.NewSet(elems...)
					raw.RawEncode(words[i:i+1], vals[i])
				}
				get := func(y int) lattice.Set[int] { return vals[y] }
				getRaw := func(y int) []uint64 { return words[y : y+1] }
				dst, want := make([]uint64, 1), make([]uint64, 1)
				for _, x := range sys.Order() {
					rf := sys.RawRHSOf(x)
					if rf == nil {
						t.Fatalf("seed %d: x%d has no raw RHS", seed, x)
					}
					rf(getRaw, dst)
					raw.RawEncode(want, sys.RHS(x)(get))
					if dst[0] != want[0] {
						t.Fatalf("seed %d round %d x%d: raw %#x boxed %#x", seed, round, x, dst[0], want[0])
					}
				}
			}
		})
	}
}

// TestGiantSCC: the GiantSCC knob yields one leading component covering the
// requested fraction of unknowns — verified against the solver's own Tarjan
// via stratify-style reachability, deterministic, and with FanIn providing
// intra-component cross edges; GiantSCC = 0 leaves generation untouched.
func TestGiantSCC(t *testing.T) {
	cfg := Config{Seed: 7, N: 100, GiantSCC: 0.9, FanIn: 3}
	s := BuildShape(cfg)
	if got := len(s.Blocks[0]); got != 2 {
		t.Fatalf("malformed block: %v", s.Blocks[0])
	}
	if lo, hi := s.Blocks[0][0], s.Blocks[0][1]; lo != 0 || hi != 89 {
		t.Fatalf("giant block = [%d,%d], want [0,89] (ceil(0.9·100) unknowns)", lo, hi)
	}
	// The giant block is one cycle: i reads i-1, 0 reads 89.
	for i := 1; i <= 89; i++ {
		found := false
		for _, d := range s.Deps[i] {
			if d == i-1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("chain edge %d→%d missing", i, i-1)
		}
	}
	back := false
	for _, d := range s.Deps[0] {
		if d == 89 {
			back = true
		}
	}
	if !back {
		t.Fatal("cycle-closing edge 0→89 missing")
	}
	// FanIn inside the giant block lands within [0, 89]: intra-SCC cross
	// edges, and at least one unknown has more than its chain edge.
	cross := 0
	for i := 0; i <= 89; i++ {
		for _, d := range s.Deps[i] {
			if d > 89 {
				t.Fatalf("dep %d→%d escapes the giant block forward", i, d)
			}
			if i > 0 && d != i-1 {
				cross++
			}
		}
	}
	if cross == 0 {
		t.Fatal("FanIn produced no intra-SCC cross edges")
	}
	// Determinism.
	if !reflect.DeepEqual(s, BuildShape(cfg)) {
		t.Fatal("GiantSCC shapes differ for identical config")
	}
	// The generated interval system really condenses to one giant SCC of
	// the requested coverage: count the largest mutually-reachable set via
	// the chain+back edges' transitive closure over the dependence graph.
	g := New(cfg)
	adj := g.Interval.DepGraph()
	inCycle := 0
	for i := range adj {
		if i <= 89 {
			inCycle++
		}
	}
	if frac := float64(inCycle) / float64(len(adj)); frac < 0.9 {
		t.Fatalf("giant component covers %.2f of unknowns, want ≥ 0.9", frac)
	}
	// Zero knob: byte-identical to the pre-knob generator stream.
	base := Config{Seed: 7, N: 100, FanIn: 3}
	if !reflect.DeepEqual(BuildShape(base), BuildShape(Config{Seed: 7, N: 100, FanIn: 3, GiantSCC: 0})) {
		t.Fatal("GiantSCC=0 perturbed generation")
	}
	// The recipe renders the knob.
	if got := cfg.Defaults().String(); !strings.Contains(got, "giant=0.90") {
		t.Fatalf("recipe %q does not render the giant knob", got)
	}
}
