// Package eqgen generates seeded random constraint systems for the
// differential fuzzing harness (internal/diffsolve) and the fuzz targets.
//
// Unlike internal/synth, which generates mini-C *programs* for the paper's
// Table 1, eqgen generates equation *systems* directly — over the interval,
// flat and powerset lattices — with controllable fan-in, SCC shape,
// widening-point density and an adjustable dose of deliberate
// non-monotonicity. The same Seed always produces the same system
// (the generator uses its own splitmix64 stream, independent of math/rand),
// so every fuzz input and every failing seed is a complete reproduction
// recipe.
//
// The generator works in two layers. BuildShape derives a domain-independent
// Shape from the Config: a partition of the unknowns into consecutive blocks
// (the intended SCCs — closed into cycles with probability CycleDensity),
// extra dependence edges (FanIn per unknown; ForwardDensity of them point
// forward, past the block, producing linear orders that are *not*
// topologically consistent with the condensation — the stratify-coarsening
// path of PSW), plus per-unknown flags: growth (a +1-style self-feeding term
// that forces widening), a bound (a meet with constants that gives narrowing
// something to recover), and a non-monotonic flip (a right-hand side that
// *decreases* when a chosen dependency grows — the systems of the paper's
// Sec. 4 on which plain ⊟ may oscillate). The domain constructors then
// interpret the same Shape over a concrete lattice.
package eqgen

import (
	"fmt"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// Domain selects the value domain of a generated system.
type Domain int

// Supported domains.
const (
	Interval Domain = iota
	Flat
	Powerset
)

// String renders the domain name.
func (d Domain) String() string {
	switch d {
	case Interval:
		return "interval"
	case Flat:
		return "flat"
	case Powerset:
		return "powerset"
	default:
		return "?"
	}
}

// Config controls the generator. The zero value is usable: Defaults fills
// every unset knob.
type Config struct {
	// Seed determines the system completely.
	Seed uint64
	// Dom selects the value domain.
	Dom Domain
	// N is the number of unknowns (default 12, clamped to [1, 4096]).
	N int
	// FanIn is the number of extra dependence edges per unknown on top of
	// the structural chain/cycle edges (default 2, clamped to [0, 8]; pass
	// a negative value for an explicit zero).
	FanIn int
	// MaxSCC is the maximum block size of the SCC partition (default 4,
	// clamped to [1, N]); blocks are 1..MaxSCC unknowns long.
	MaxSCC int
	// CycleDensity is the probability that a block of size ≥ 2 is closed
	// into a cycle, i.e. becomes a genuine SCC (default 0.75).
	CycleDensity float64
	// WidenDensity is the probability that an unknown carries a growth term
	// (a widening point; default 0.5).
	WidenDensity float64
	// NonMonoDensity is the probability that an unknown carries a
	// non-monotonic flip (default 0 — monotonic system).
	NonMonoDensity float64
	// ForwardDensity is the probability that an extra dependence points
	// forward past the unknown's block (default 0), making the linear order
	// inconsistent with the condensation.
	ForwardDensity float64
	// GiantSCC, when positive, is the fraction of unknowns fused into one
	// leading giant component (clamped to [0, 1]): the first
	// ceil(GiantSCC·N) unknowns form a single block that is closed into a
	// cycle unconditionally, with the remaining unknowns partitioned as
	// usual. FanIn edges drawn inside the giant block become intra-SCC
	// cross edges, so FanIn doubles as the cross-edge density knob of the
	// cycle-heavy regime PSW cannot parallelize (one giant SCC is one
	// stratum) and CPW targets (default 0 — no giant component).
	GiantSCC float64
}

// Defaults returns the config with unset knobs replaced by defaults and all
// knobs clamped to their legal ranges, so arbitrary fuzz inputs are safe.
func (c Config) Defaults() Config {
	if c.N == 0 {
		c.N = 12
	}
	c.N = clamp(c.N, 1, 4096)
	if c.FanIn == 0 {
		c.FanIn = 2
	}
	c.FanIn = clamp(c.FanIn, 0, 8)
	if c.MaxSCC == 0 {
		c.MaxSCC = 4
	}
	c.MaxSCC = clamp(c.MaxSCC, 1, c.N)
	if c.CycleDensity == 0 {
		c.CycleDensity = 0.75
	}
	if c.WidenDensity == 0 {
		c.WidenDensity = 0.5
	}
	c.CycleDensity = clampF(c.CycleDensity)
	c.WidenDensity = clampF(c.WidenDensity)
	c.NonMonoDensity = clampF(c.NonMonoDensity)
	c.ForwardDensity = clampF(c.ForwardDensity)
	c.GiantSCC = clampF(c.GiantSCC)
	return c
}

// String renders the config as a reproduction recipe.
func (c Config) String() string {
	return fmt.Sprintf("eqgen{seed=%d dom=%s n=%d fanin=%d maxscc=%d cyc=%.2f wid=%.2f nonmono=%.2f fwd=%.2f giant=%.2f}",
		c.Seed, c.Dom, c.N, c.FanIn, c.MaxSCC,
		c.CycleDensity, c.WidenDensity, c.NonMonoDensity, c.ForwardDensity, c.GiantSCC)
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func clampF(v float64) float64 {
	if v < 0 || v != v { // negative or NaN
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// rng is a splitmix64 stream: tiny, fast, and stable across Go releases
// (math/rand makes no cross-version stream guarantees).
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

func (r *rng) prob(p float64) bool {
	return float64(r.next()>>11)/(1<<53) < p
}

// Shape is the domain-independent skeleton of a generated system.
type Shape struct {
	// Cfg is the (defaulted) generating config.
	Cfg Config
	// Deps lists the dependence targets of each unknown, deduplicated, in
	// generation order. Deps[i] is exactly the set the right-hand side of
	// unknown i reads.
	Deps [][]int
	// Blocks partitions [0, N) into consecutive [lo, hi] index ranges, the
	// intended SCCs.
	Blocks [][2]int
	// Grow marks widening points: unknowns whose right-hand side includes a
	// strictly increasing term over their first dependency.
	Grow []bool
	// Bound marks unknowns whose right-hand side is capped by a meet with
	// constants, giving narrowing precision to recover after widening.
	Bound []bool
	// NonMono is the position in Deps[i] of the dependency driving a
	// non-monotonic flip, or -1 for a monotonic right-hand side.
	NonMono []int
	// Mat is per-unknown constant material the domain builders draw
	// literals from.
	Mat []uint64
}

// BuildShape derives the deterministic Shape for a config.
func BuildShape(cfg Config) *Shape {
	cfg = cfg.Defaults()
	n := cfg.N
	r := &rng{s: cfg.Seed ^ 0xda3e39cb94b95bdb}
	s := &Shape{
		Cfg:     cfg,
		Deps:    make([][]int, n),
		Grow:    make([]bool, n),
		Bound:   make([]bool, n),
		NonMono: make([]int, n),
		Mat:     make([]uint64, n),
	}

	// Giant component first, when configured: one leading block of
	// ceil(GiantSCC·n) unknowns closed into a cycle unconditionally. It
	// consumes no rng draws, so configs with GiantSCC = 0 generate exactly
	// the systems they always did (the committed fuzz corpora stay valid).
	start := 0
	if cfg.GiantSCC > 0 {
		g := int(cfg.GiantSCC * float64(n))
		if float64(g) < cfg.GiantSCC*float64(n) {
			g++ // ceil
		}
		g = clamp(g, 1, n)
		s.Blocks = append(s.Blocks, [2]int{0, g - 1})
		for i := 1; i < g; i++ {
			s.Deps[i] = append(s.Deps[i], i-1)
		}
		if g > 1 {
			s.Deps[0] = append(s.Deps[0], g-1)
		}
		start = g
	}

	// Partition into blocks and lay the structural chain/cycle edges.
	for lo := start; lo < n; {
		hi := lo + 1 + r.intn(cfg.MaxSCC)
		if hi > n {
			hi = n
		}
		hi--
		s.Blocks = append(s.Blocks, [2]int{lo, hi})
		for i := lo + 1; i <= hi; i++ {
			s.Deps[i] = append(s.Deps[i], i-1)
		}
		if hi > lo && r.prob(cfg.CycleDensity) {
			s.Deps[lo] = append(s.Deps[lo], hi)
		}
		lo = hi + 1
	}

	// Extra edges, flags and constant material.
	blockOf := make([]int, n)
	for bi, b := range s.Blocks {
		for i := b[0]; i <= b[1]; i++ {
			blockOf[i] = bi
		}
	}
	for i := 0; i < n; i++ {
		hi := s.Blocks[blockOf[i]][1]
		for k := 0; k < cfg.FanIn; k++ {
			var j int
			if r.prob(cfg.ForwardDensity) && hi < n-1 {
				j = hi + 1 + r.intn(n-hi-1)
			} else {
				j = r.intn(hi + 1)
			}
			dup := false
			for _, d := range s.Deps[i] {
				if d == j {
					dup = true
					break
				}
			}
			if !dup {
				s.Deps[i] = append(s.Deps[i], j)
			}
		}
		s.Grow[i] = r.prob(cfg.WidenDensity)
		s.Bound[i] = r.prob(0.7)
		s.NonMono[i] = -1
		if len(s.Deps[i]) > 0 && r.prob(cfg.NonMonoDensity) {
			s.NonMono[i] = r.intn(len(s.Deps[i]))
		}
		s.Mat[i] = r.next()
	}
	return s
}

// System builds the equation system for the config's domain as a uniform
// tagged result: exactly one of the three system fields is non-nil.
type System struct {
	Shape    *Shape
	Interval *eqn.System[int, lattice.Interval]
	Flat     *eqn.System[int, lattice.Flat[int64]]
	Powerset *eqn.System[int, lattice.Set[int]]
}

// New generates the system for cfg.
func New(cfg Config) System {
	sh := BuildShape(cfg)
	out := System{Shape: sh}
	switch sh.Cfg.Dom {
	case Flat:
		out.Flat = FlatSystem(sh)
	case Powerset:
		out.Powerset = PowersetSystem(sh)
	default:
		out.Interval = IntervalSystem(sh)
	}
	return out
}

// Spec is the per-unknown material a domain builder interprets: the
// dependence list, the widening/bound/flip flags and the constant material,
// copied out of the Shape (or freshly drawn by Mutate). Right-hand sides
// capture a Spec by value, never the Shape itself, so redefining one unknown
// can draw new material without aliasing the equations of any other.
type Spec struct {
	Deps    []int
	Grow    bool
	Bound   bool
	NonMono int
	Mat     uint64
}

// SpecOf extracts unknown i's spec from the shape.
func (s *Shape) SpecOf(i int) Spec {
	return Spec{Deps: s.Deps[i], Grow: s.Grow[i], Bound: s.Bound[i], NonMono: s.NonMono[i], Mat: s.Mat[i]}
}

// IntervalSystem interprets the shape over integer intervals. Growth points
// add +1 around the cycle (the loop-counter pattern that forces widening);
// bounds are meets with small constant ranges (the precision ⊟ recovers by
// narrowing); a non-monotonic flip returns a large constant while the chosen
// dependency is under a threshold and caps the result once it grows past it.
func IntervalSystem(s *Shape) *eqn.System[int, lattice.Interval] {
	sys := eqn.NewSystem[int, lattice.Interval]()
	for i := 0; i < len(s.Deps); i++ {
		rhs, raw := IntervalRHS(s.SpecOf(i))
		sys.Define(i, s.Deps[i], rhs)
		sys.AttachRaw(i, raw)
	}
	return sys
}

// IntervalRHS builds the interval right-hand side a spec describes, together
// with its fused unboxed twin. The twin encodes the constants once and never
// materializes a boxed Interval; reads are consumed before the next get
// call, and tmp is private to the unknown (one stratum owns one unknown),
// so the closure is safe under PSW. The raw-vs-boxed agreement test pins
// the bit identity of the two forms.
func IntervalRHS(sp Spec) (eqn.RHS[int, lattice.Interval], eqn.RawRHS[int]) {
	ds := sp.Deps
	mat := sp.Mat
	base := lattice.Singleton(int64(mat % 8))
	boundLo := int64(mat >> 3 % 4)
	boundHi := boundLo + int64(8+mat>>5%96)
	flip := lattice.Range(0, int64(4+mat>>12%32))
	big := lattice.Singleton(int64(mat >> 17 % 1000))
	rhs := func(get func(int) lattice.Interval) lattice.Interval {
		vals := make([]lattice.Interval, len(ds))
		for k, d := range ds {
			vals[k] = get(d)
		}
		v := base
		for k := range vals {
			t := vals[k]
			if sp.Grow && k == 0 {
				t = t.Add(lattice.Singleton(1))
			}
			v = lattice.Ints.Join(v, t)
		}
		if sp.Bound {
			v = lattice.Ints.Meet(v, lattice.Range(boundLo, boundHi))
		}
		if nm := sp.NonMono; nm >= 0 {
			// Antitone in vals[nm]: while the dependency is still inside
			// flip, the result includes big; once it grows past, the
			// result is capped instead — strictly smaller.
			if lattice.Ints.Leq(vals[nm], flip) {
				v = lattice.Ints.Join(v, big)
			} else {
				v = lattice.Ints.Meet(v, flip)
			}
		}
		return v
	}
	encIv := func(v lattice.Interval) []uint64 {
		w := make([]uint64, 2)
		lattice.Ints.RawEncode(w, v)
		return w
	}
	rawBase := encIv(base)
	rawBound := encIv(lattice.Range(boundLo, boundHi))
	rawFlip := encIv(flip)
	rawBig := encIv(big)
	rawOne := encIv(lattice.Singleton(1))
	tmp := make([]uint64, 2)
	raw := func(get func(int) []uint64, dst []uint64) {
		copy(dst, rawBase)
		for k, d := range ds {
			t := get(d)
			if sp.Grow && k == 0 {
				lattice.RawIntervalAdd(tmp, t, rawOne)
				t = tmp
			}
			lattice.RawIntervalJoin(dst, dst, t)
		}
		if sp.Bound {
			lattice.RawIntervalMeet(dst, dst, rawBound)
		}
		if nm := sp.NonMono; nm >= 0 {
			if lattice.RawIntervalLeq(get(ds[nm]), rawFlip) {
				lattice.RawIntervalJoin(dst, dst, rawBig)
			} else {
				lattice.RawIntervalMeet(dst, dst, rawFlip)
			}
		}
	}
	return rhs, raw
}

// FlatL is the flat constant-propagation lattice the generated flat systems
// use; its two-level height makes join a sound widening.
var FlatL = lattice.JoinWiden[lattice.Flat[int64]]{Inner: lattice.FlatLattice[int64]{}}

// FlatSystem interprets the shape over the flat lattice on int64. Monotone
// terms are joins of dependencies mapped through lifted arithmetic; a
// non-monotonic flip collapses the result to a constant once the chosen
// dependency reaches ⊤.
func FlatSystem(s *Shape) *eqn.System[int, lattice.Flat[int64]] {
	sys := eqn.NewSystem[int, lattice.Flat[int64]]()
	for i := 0; i < len(s.Deps); i++ {
		rhs, raw := FlatRHS(s.SpecOf(i))
		sys.Define(i, s.Deps[i], rhs)
		sys.AttachRaw(i, raw)
	}
	return sys
}

// FlatRHS builds the flat right-hand side a spec describes, with its fused
// unboxed twin: flat values are (kind, value) word pairs with the value word
// zero unless the kind is FlatVal, and the join is inlined. All values in a
// generated flat system are non-negative, so the int64 modular arithmetic
// matches the boxed form exactly.
func FlatRHS(sp Spec) (eqn.RHS[int, lattice.Flat[int64]], eqn.RawRHS[int]) {
	ds := sp.Deps
	mat := sp.Mat
	base := lattice.FlatOf(int64(mat % 5))
	mul := int64(1 + mat>>3%3)
	add := int64(mat >> 5 % 7)
	reset := lattice.FlatOf(int64(mat >> 8 % 5))
	rhs := func(get func(int) lattice.Flat[int64]) lattice.Flat[int64] {
		vals := make([]lattice.Flat[int64], len(ds))
		for k, d := range ds {
			vals[k] = get(d)
		}
		v := base
		for _, t := range vals {
			if t.Kind == lattice.FlatVal {
				t = lattice.FlatOf((t.V*mul + add) % 17)
			}
			v = FlatL.Join(v, t)
		}
		if nm := sp.NonMono; nm >= 0 && vals[nm].Kind == lattice.FlatTop {
			return reset // antitone: a dependency reaching ⊤ shrinks the result
		}
		return v
	}
	rawBase := [2]uint64{uint64(lattice.FlatVal), uint64(base.V)}
	rawReset := [2]uint64{uint64(lattice.FlatVal), uint64(reset.V)}
	raw := func(get func(int) []uint64, dst []uint64) {
		dst[0], dst[1] = rawBase[0], rawBase[1]
		for _, d := range ds {
			t := get(d)
			tk, tv := t[0], t[1]
			if lattice.FlatKind(tk) == lattice.FlatVal {
				tv = uint64((int64(tv)*mul + add) % 17)
			}
			switch {
			case lattice.FlatKind(tk) == lattice.FlatBot:
				// join with ⊥: keep dst
			case lattice.FlatKind(dst[0]) == lattice.FlatBot:
				dst[0], dst[1] = tk, tv
			case lattice.FlatKind(dst[0]) == lattice.FlatVal && lattice.FlatKind(tk) == lattice.FlatVal && dst[1] == tv:
				// equal values: keep dst
			default:
				dst[0], dst[1] = uint64(lattice.FlatTop), 0
			}
		}
		if nm := sp.NonMono; nm >= 0 && lattice.FlatKind(get(ds[nm])[0]) == lattice.FlatTop {
			dst[0], dst[1] = rawReset[0], rawReset[1]
		}
	}
	return rhs, raw
}

// powersetUniverse is the element universe of generated powerset systems.
const powersetUniverse = 16

// PowersetL returns the powerset lattice over the generator's universe
// {0, …, 15}; finite, so join is a sound widening.
func PowersetL() *lattice.SetLattice[int] {
	u := make([]int, powersetUniverse)
	for i := range u {
		u[i] = i
	}
	return lattice.NewSetLattice(u...)
}

// PowersetSystem interprets the shape over the powerset of {0, …, 15}.
// Monotone terms are unions of (rotated) dependencies; bounds intersect
// with a constant mask; a non-monotonic flip removes an element once the
// chosen dependency has acquired a trigger element.
func PowersetSystem(s *Shape) *eqn.System[int, lattice.Set[int]] {
	sys := eqn.NewSystem[int, lattice.Set[int]]()
	for i := 0; i < len(s.Deps); i++ {
		rhs, raw := PowersetRHS(s.SpecOf(i))
		sys.Define(i, s.Deps[i], rhs)
		sys.AttachRaw(i, raw)
	}
	return sys
}

// PowersetRHS builds the powerset right-hand side a spec describes, with its
// fused unboxed twin: PowersetL's universe is 0..15 in order, so the raw
// encoding maps element e to bit e and every set is one word. Rotating every
// element by +rot mod 16 is a 16-bit rotate of the mask; union, intersection
// and membership are single bit operations.
func PowersetRHS(sp Spec) (eqn.RHS[int, lattice.Set[int]], eqn.RawRHS[int]) {
	ds := sp.Deps
	mat := sp.Mat
	base := lattice.NewSet(int(mat%powersetUniverse), int(mat>>4%powersetUniverse))
	rot := int(mat >> 8 % 3)
	maskBits := mat>>11%0xFFFF | uint64(mat%powersetUniverse)<<1 | 1
	var maskElems []int
	for e := 0; e < powersetUniverse; e++ {
		if maskBits>>e&1 == 1 {
			maskElems = append(maskElems, e)
		}
	}
	mask := lattice.NewSet(maskElems...)
	trigger := int(mat >> 27 % powersetUniverse)
	var dropElems []int
	drop := int(mat >> 31 % powersetUniverse)
	for e := 0; e < powersetUniverse; e++ {
		if e != drop {
			dropElems = append(dropElems, e)
		}
	}
	dropMask := lattice.NewSet(dropElems...)
	rhs := func(get func(int) lattice.Set[int]) lattice.Set[int] {
		vals := make([]lattice.Set[int], len(ds))
		for k, d := range ds {
			vals[k] = get(d)
		}
		v := base
		for k, t := range vals {
			if sp.Grow && k == 0 && rot > 0 {
				rotated := make([]int, 0, t.Len())
				for _, e := range t.Elems() {
					rotated = append(rotated, (e+rot)%powersetUniverse)
				}
				t = t.Union(lattice.NewSet(rotated...))
			}
			v = v.Union(t)
		}
		if sp.Bound {
			v = v.Intersect(mask.Union(base))
		}
		if nm := sp.NonMono; nm >= 0 && vals[nm].Has(trigger) {
			v = v.Intersect(dropMask) // antitone: gaining trigger drops an element
		}
		return v
	}
	baseBits := uint64(1)<<(mat%powersetUniverse) | uint64(1)<<(mat>>4%powersetUniverse)
	boundBits := maskBits&0xFFFF | baseBits
	dropBits := uint64(0xFFFF) &^ (uint64(1) << drop)
	triggerBit := uint64(1) << trigger
	raw := func(get func(int) []uint64, dst []uint64) {
		v := baseBits
		for k, d := range ds {
			t := get(d)[0]
			if sp.Grow && k == 0 && rot > 0 {
				t |= (t<<rot | t>>(powersetUniverse-rot)) & 0xFFFF
			}
			v |= t
		}
		if sp.Bound {
			v &= boundBits
		}
		if nm := sp.NonMono; nm >= 0 && get(ds[nm])[0]&triggerBit != 0 {
			v &= dropBits
		}
		dst[0] = v
	}
	return rhs, raw
}
