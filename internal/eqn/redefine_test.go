package eqn

import (
	"testing"

	"warrow/internal/lattice"
)

// chainSys builds 0 ← 1 ← 2 ← 3 over intervals: each unknown copies its
// predecessor, unknown 0 is the constant [c, c].
func chainSys(c int64) *System[int, lattice.Interval] {
	sys := NewSystem[int, lattice.Interval]()
	sys.Define(0, nil, func(get func(int) lattice.Interval) lattice.Interval {
		return lattice.Singleton(c)
	})
	for i := 1; i < 4; i++ {
		i := i
		sys.Define(i, []int{i - 1}, func(get func(int) lattice.Interval) lattice.Interval {
			return get(i - 1)
		})
	}
	return sys
}

func TestRedefineUndefinedPanics(t *testing.T) {
	sys := chainSys(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Redefine of an undefined unknown did not panic")
		}
	}()
	sys.Redefine(99, nil, func(get func(int) lattice.Interval) lattice.Interval {
		return lattice.Singleton(0)
	})
}

func TestEditJournal(t *testing.T) {
	sys := chainSys(1)
	v0 := sys.Version()
	if v0 != 4 {
		t.Fatalf("Version after 4 Defines = %d, want 4", v0)
	}
	if got := sys.EditsSince(v0); len(got) != 0 {
		t.Fatalf("EditsSince(now) = %v, want empty", got)
	}

	sys.Redefine(2, []int{1}, func(get func(int) lattice.Interval) lattice.Interval {
		return get(1)
	})
	sys.Define(4, []int{3}, func(get func(int) lattice.Interval) lattice.Interval {
		return get(3)
	})
	if got := sys.Version(); got != v0+2 {
		t.Fatalf("Version after Redefine+Define = %d, want %d", got, v0+2)
	}
	edits := sys.EditsSince(v0)
	if len(edits) != 2 || edits[0] != 2 || edits[1] != 4 {
		t.Fatalf("EditsSince(%d) = %v, want [2 4]", v0, edits)
	}
	// A stale cursor sees the full journal; a future one sees nothing.
	if got := sys.EditsSince(0); len(got) != 6 {
		t.Fatalf("EditsSince(0) = %v, want all 6 edits", got)
	}
	if got := sys.EditsSince(1000); got != nil {
		t.Fatalf("EditsSince(1000) = %v, want nil", got)
	}
}

func TestRedefineSameDepsKeepsShape(t *testing.T) {
	sys := chainSys(1)
	fpBefore := sys.ShapeHash()
	idxBefore := sys.Index()
	inflBefore := sys.Infl()
	adjBefore := sys.DepGraph()

	sys.Redefine(1, []int{0}, func(get func(int) lattice.Interval) lattice.Interval {
		return lattice.Ints.Join(get(0), lattice.Singleton(7))
	})

	if got := sys.ShapeHash(); got != fpBefore {
		t.Fatalf("same-deps Redefine changed ShapeHash %x -> %x", fpBefore, got)
	}
	if !sameIntMap(sys.Index(), idxBefore) {
		t.Fatal("same-deps Redefine changed Index")
	}
	// The memoized maps themselves survive (no invalidation, not a rebuild).
	if len(sys.Infl()) != len(inflBefore) || len(sys.DepGraph()) != len(adjBefore) {
		t.Fatal("same-deps Redefine rebuilt Infl/DepGraph with different contents")
	}

	// The equation itself reflects the edit.
	got := sys.RHS(1)(func(int) lattice.Interval { return lattice.Singleton(1) })
	want := lattice.Ints.Join(lattice.Singleton(1), lattice.Singleton(7))
	if !lattice.Ints.Eq(got, want) {
		t.Fatalf("redefined RHS evaluates to %s, want %s", lattice.Ints.Format(got), lattice.Ints.Format(want))
	}
}

func TestRedefineDepsChangeInvalidatesShape(t *testing.T) {
	sys := chainSys(1)
	fpBefore := sys.ShapeHash()
	idxBefore := sys.Index()

	sys.Redefine(3, []int{2, 0}, func(get func(int) lattice.Interval) lattice.Interval {
		return lattice.Ints.Join(get(2), get(0))
	})

	if got := sys.ShapeHash(); got == fpBefore {
		t.Fatal("deps-changed Redefine kept ShapeHash")
	}
	if got := sys.Deps(3); len(got) != 2 || got[0] != 2 || got[1] != 0 {
		t.Fatalf("Deps(3) = %v, want [2 0]", got)
	}
	adj := sys.DepGraph()
	if len(adj[3]) != 2 {
		t.Fatalf("DepGraph row 3 = %v, want two edges", adj[3])
	}
	// The linear order never changes, so Index is stable even here.
	if !sameIntMap(sys.Index(), idxBefore) {
		t.Fatal("deps-changed Redefine changed Index")
	}
	// Unknown 0 gained a reader: Infl reflects the new edge.
	found := false
	for _, y := range sys.Infl()[0] {
		if y == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("Infl(0) = %v does not include the new reader 3", sys.Infl()[0])
	}
}

// TestRedefineMemoPatched pins the granular-invalidation contract: a
// same-deps Redefine hands memoized shape values implementing RHSPatcher the
// new equation in place, and drops values that don't, while a deps-changed
// Redefine drops everything.
func TestRedefineMemoPatched(t *testing.T) {
	sys := chainSys(1)

	p := &patchRecorder{}
	plain := "opaque"
	got := sys.ShapeMemo("test.patchable", func() any { return p })
	if got != any(p) {
		t.Fatal("ShapeMemo did not store the patchable value")
	}
	sys.ShapeMemo("test.plain", func() any { return plain })

	rhs := func(get func(int) lattice.Interval) lattice.Interval { return lattice.Singleton(9) }
	sys.Redefine(0, nil, rhs)

	if got := sys.ShapeMemo("test.patchable", func() any { return &patchRecorder{} }); got != any(p) {
		t.Fatal("same-deps Redefine dropped a patchable memo value")
	}
	if p.patched != 1 {
		t.Fatalf("patchable memo value patched %d times, want 1", p.patched)
	}
	if p.lastRHS == nil || !lattice.Ints.Eq(p.lastRHS(nil), lattice.Singleton(9)) {
		t.Fatal("patch did not carry the new right-hand side")
	}
	rebuilt := sys.ShapeMemo("test.plain", func() any { return "rebuilt" })
	if rebuilt != any("rebuilt") {
		t.Fatalf("same-deps Redefine kept a non-patchable memo value: %v", rebuilt)
	}

	sys.Redefine(0, []int{1}, func(get func(int) lattice.Interval) lattice.Interval {
		return get(1)
	})
	if got := sys.ShapeMemo("test.patchable", func() any { return "gone" }); got != any("gone") {
		t.Fatal("deps-changed Redefine kept the memo")
	}
}

// patchRecorder is a memoized shape value implementing RHSPatcher: it
// records every patch it receives.
type patchRecorder struct {
	patched int
	lastRHS RHS[int, lattice.Interval]
	lastRaw RawRHS[int]
}

func (p *patchRecorder) PatchRHS(i int, rhs RHS[int, lattice.Interval], raw RawRHS[int]) {
	p.patched++
	p.lastRHS = rhs
	p.lastRaw = raw
}

func sameIntMap(a, b map[int]int) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}
