package eqn

import (
	"reflect"
	"testing"

	"warrow/internal/lattice"
)

type iv = lattice.Interval

func ivb(string) iv { return lattice.EmptyInterval }

func two() *System[string, iv] {
	s := NewSystem[string, iv]()
	s.Define("a", nil, func(func(string) iv) iv { return lattice.Range(1, 3) })
	s.Define("b", []string{"a"}, func(get func(string) iv) iv {
		return get("a").Add(lattice.Singleton(1))
	})
	return s
}

func TestSystemBasics(t *testing.T) {
	s := two()
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Order(); got[0] != "a" || got[1] != "b" {
		t.Fatalf("Order = %v", got)
	}
	if s.RHS("a") == nil || s.RHS("missing") != nil {
		t.Fatal("RHS lookup")
	}
	if d := s.Deps("b"); len(d) != 1 || d[0] != "a" {
		t.Fatalf("Deps(b) = %v", d)
	}
}

func TestEvalReadsInitForAbsent(t *testing.T) {
	s := two()
	v := s.Eval("b", map[string]iv{}, func(string) iv { return lattice.Range(10, 10) })
	if !lattice.Ints.Eq(v, lattice.Singleton(11)) {
		t.Fatalf("Eval(b) = %s", v)
	}
	v = s.Eval("b", map[string]iv{"a": lattice.Range(0, 1)}, ivb)
	if !lattice.Ints.Eq(v, lattice.Range(1, 2)) {
		t.Fatalf("Eval(b) = %s", v)
	}
}

func TestInflSets(t *testing.T) {
	s := two()
	infl := s.Infl()
	has := func(y, x string) bool {
		for _, z := range infl[y] {
			if z == x {
				return true
			}
		}
		return false
	}
	if !has("a", "a") || !has("a", "b") || !has("b", "b") {
		t.Fatalf("Infl = %v", infl)
	}
	if has("b", "a") {
		t.Fatalf("a does not depend on b: %v", infl)
	}
}

func TestIsPostSolution(t *testing.T) {
	s := two()
	good := map[string]iv{"a": lattice.Range(1, 3), "b": lattice.Range(2, 4)}
	if x, ok := IsPostSolution[string, iv](lattice.Ints, s, good, ivb); !ok {
		t.Fatalf("good solution rejected at %v", x)
	}
	bigger := map[string]iv{"a": lattice.Range(0, 5), "b": lattice.Range(1, 9)}
	if _, ok := IsPostSolution[string, iv](lattice.Ints, s, bigger, ivb); !ok {
		t.Fatal("larger post-solution rejected")
	}
	bad := map[string]iv{"a": lattice.Range(1, 3), "b": lattice.Range(2, 3)}
	if x, ok := IsPostSolution[string, iv](lattice.Ints, s, bad, ivb); ok || x != "b" {
		t.Fatalf("bad solution accepted (x=%v ok=%v)", x, ok)
	}
}

func TestIsCombineSolution(t *testing.T) {
	s := two()
	l := lattice.Ints
	exact := map[string]iv{"a": lattice.Range(1, 3), "b": lattice.Range(2, 4)}
	replace := func(_, new iv) iv { return new }
	if x, ok := IsCombineSolution[string, iv](l, replace, s, exact, ivb); !ok {
		t.Fatalf("exact solution rejected for ⊞=replace at %v", x)
	}
	slack := map[string]iv{"a": lattice.Range(1, 4), "b": lattice.Range(2, 5)}
	if _, ok := IsCombineSolution[string, iv](l, replace, s, slack, ivb); ok {
		t.Fatal("non-fixpoint accepted for ⊞=replace")
	}
	if _, ok := IsCombineSolution[string, iv](l, l.Join, s, slack, ivb); !ok {
		t.Fatal("post-solution rejected for ⊞=⊔")
	}
}

func TestIsPartialPostSolution(t *testing.T) {
	s := two()
	pure := s.AsPure()
	full := map[string]iv{"a": lattice.Range(1, 3), "b": lattice.Range(2, 4)}
	if x, ok := IsPartialPostSolution[string, iv](lattice.Ints, pure, full); !ok {
		t.Fatalf("full solution rejected at %v", x)
	}
	// b's right-hand side reads a, which is outside the domain: rejected.
	partial := map[string]iv{"b": lattice.Range(2, 4)}
	if _, ok := IsPartialPostSolution[string, iv](lattice.Ints, pure, partial); ok {
		t.Fatal("domain escape accepted")
	}
	// a alone is self-contained.
	aOnly := map[string]iv{"a": lattice.Range(1, 3)}
	if x, ok := IsPartialPostSolution[string, iv](lattice.Ints, pure, aOnly); !ok {
		t.Fatalf("self-contained partial solution rejected at %v", x)
	}
}

// TestDerivedViewsMemoized pins the memoization contract: Index, Infl and
// DepGraph return the cached storage on repeated calls, and Define
// invalidates all three caches.
func TestDerivedViewsMemoized(t *testing.T) {
	s := two()
	samePtr := func(a, b any) bool {
		return reflect.ValueOf(a).Pointer() == reflect.ValueOf(b).Pointer()
	}
	idx, infl, adj := s.Index(), s.Infl(), s.DepGraph()
	if !samePtr(idx, s.Index()) {
		t.Fatal("Index not memoized")
	}
	if !samePtr(infl, s.Infl()) {
		t.Fatal("Infl not memoized")
	}
	if !samePtr(adj, s.DepGraph()) {
		t.Fatal("DepGraph not memoized")
	}

	s.Define("c", []string{"b"}, func(get func(string) iv) iv { return get("b") })
	idx2, infl2, adj2 := s.Index(), s.Infl(), s.DepGraph()
	if samePtr(idx, idx2) || samePtr(infl, infl2) || samePtr(adj, adj2) {
		t.Fatal("Define did not invalidate the caches")
	}
	if idx2["c"] != 2 {
		t.Fatalf("Index[c] = %d after Define", idx2["c"])
	}
	found := false
	for _, x := range infl2["b"] {
		if x == "c" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Infl[b] = %v misses the new reader c", infl2["b"])
	}
	if len(adj2) != 3 || len(adj2[2]) != 1 || adj2[2][0] != 1 {
		t.Fatalf("DepGraph = %v after Define", adj2)
	}
}

func TestInitHelpers(t *testing.T) {
	cb := ConstBottom[string, iv](lattice.Ints)
	if !cb("x").IsEmpty() {
		t.Fatal("ConstBottom")
	}
	c := Const[string](lattice.Singleton(5))
	if !lattice.Ints.Eq(c("y"), lattice.Singleton(5)) {
		t.Fatal("Const")
	}
}
