// Package eqn represents systems of equations x = fₓ over an arbitrary
// value domain, in the three flavours used by the paper's solvers:
//
//   - System: a finite system with statically declared dependences, as
//     required by the global solvers RR, W, SRR and SW;
//   - Pure: a possibly infinite system whose right-hand sides are pure in
//     the sense of Hofmann, Karbyshev and Seidl — they interact with the
//     current assignment only through a get callback, so dependences can be
//     discovered on the fly by the local solvers RLD and SLR;
//   - Sides: a side-effecting system whose right-hand sides may additionally
//     contribute values to other unknowns through a side callback, solved by
//     SLR⁺.
//
// The package also provides solution verifiers used throughout the tests:
// a ⊞-solution for a binary operator ⊞ satisfies σ[x] = σ[x] ⊞ fₓ(σ) for
// all x, and a post-solution satisfies fₓ(σ) ⊑ σ[x].
package eqn

import (
	"fmt"
	"hash/fnv"
	"sync"

	"warrow/internal/lattice"
)

// RHS is a pure right-hand side of an equation: it may observe the current
// assignment only through get.
type RHS[X comparable, D any] func(get func(X) D) D

// SideRHS is a right-hand side that may additionally produce side effects:
// side(z, d) contributes the value d to the unknown z. Per the paper's
// convention, a right-hand side must not side-effect its own left-hand side
// and contributes to each other unknown at most once per evaluation.
type SideRHS[X comparable, D any] func(get func(X) D, side func(z X, d D)) D

// RawRHS is the fused unboxed form of a right-hand side: it reads the
// raw-encoded values of other unknowns through get (a slice of the
// lattice's RawWords() words, valid only until the next get call or the
// end of the evaluation) and writes the raw-encoded result into dst. A
// RawRHS attached via AttachRaw must compute exactly the same value as the
// boxed RHS it shadows — the unboxed solver core relies on this for bit
// identity, and the eqgen/eqdsl generators pin it with differential tests.
type RawRHS[X comparable] func(get func(X) []uint64, dst []uint64)

// Pure is a possibly infinite system of pure equations: it maps an unknown
// to its right-hand side, or nil if the unknown has no equation (its value
// stays at the initial assignment).
type Pure[X comparable, D any] func(x X) RHS[X, D]

// Sides is a possibly infinite system of side-effecting equations.
type Sides[X comparable, D any] func(x X) SideRHS[X, D]

// System is a finite system of equations with statically known dependences,
// in a fixed linear order x₁, …, xₙ. The order matters: SRR and SW iterate
// along it, so it should list innermost-loop unknowns first (Bourdoncle).
type System[X comparable, D any] struct {
	order []X
	rhs   map[X]RHS[X, D]
	deps  map[X][]X

	// Derived views (Index, Infl, DepGraph) are memoized: solvers request
	// them once per solve, and recomputing them is O(edges) each time. The
	// caches are invalidated by Define and built lazily under mu, so several
	// solver runs may share one System concurrently once it is fully defined.
	// Callers must treat the returned maps and slices as read-only.
	mu       sync.Mutex
	idx      map[X]int
	infl     map[X][]X
	depGraph [][]int
	shapeFP  uint64
	hasFP    bool
	memo     map[string]any

	// journal records every unknown that gained or replaced an equation
	// (Define and Redefine), in order. Its length is the system's version;
	// EditsSince(v) returns the suffix an incremental consumer has not yet
	// absorbed. AttachRaw is not journaled: a fused twin must compute the
	// same value as the boxed form, so attaching one changes no solution.
	journal []X

	// raw holds the fused unboxed right-hand sides attached via AttachRaw,
	// keyed by unknown. Nil entries (unknowns without a fused form) are
	// evaluated through the boxed boundary adapter instead.
	raw map[X]RawRHS[X]
}

// NewSystem returns an empty finite system.
func NewSystem[X comparable, D any]() *System[X, D] {
	return &System[X, D]{
		rhs:  make(map[X]RHS[X, D]),
		deps: make(map[X][]X),
	}
}

// Define appends the equation x = rhs with the given static dependence set
// (a superset of the unknowns rhs actually reads). Defining the same
// unknown twice panics: equations are single-assignment.
func (s *System[X, D]) Define(x X, deps []X, rhs RHS[X, D]) *System[X, D] {
	if _, dup := s.rhs[x]; dup {
		panic(fmt.Sprintf("eqn: duplicate definition of %v", x))
	}
	s.order = append(s.order, x)
	s.rhs[x] = rhs
	s.deps[x] = append([]X(nil), deps...)
	s.mu.Lock()
	s.idx, s.infl, s.depGraph, s.hasFP, s.memo = nil, nil, nil, false, nil
	s.journal = append(s.journal, x)
	s.mu.Unlock()
	return s
}

// RHSPatcher is implemented by memoized shape derivatives (values stored via
// ShapeMemo) that can absorb a same-dependences redefinition in place: when
// Redefine replaces the right-hand side of the i-th unknown without touching
// its dependence list, the system shape is unchanged, so a compiled
// representation stays valid except for the one right-hand-side slot.
// PatchRHS must replace that slot (raw is the fused unboxed twin, or nil if
// the new equation has none). Memo values that do not implement the
// interface are dropped instead and rebuilt on next use.
type RHSPatcher[X comparable, D any] interface {
	PatchRHS(i int, rhs RHS[X, D], raw RawRHS[X])
}

// Redefine replaces the equation of an already-defined unknown, keeping its
// position in the linear order. It panics if x is not defined — Define is
// for new unknowns, Redefine for edits.
//
// Invalidation is as granular as the edit: when deps equals the current
// dependence list element-for-element, the system shape is unchanged, so
// Index, Infl, DepGraph and ShapeHash all stay memoized and shape-derived
// memo values implementing RHSPatcher are patched in place (any others are
// dropped). A changed dependence list invalidates the shape derivatives
// wholesale, exactly like Define. Either way the edit is journaled for
// EditsSince. The previously attached fused raw form, if any, is removed:
// it computed the old equation. Use RedefineRaw to supply the new twin in
// the same step.
func (s *System[X, D]) Redefine(x X, deps []X, rhs RHS[X, D]) *System[X, D] {
	return s.redefine(x, deps, rhs, nil)
}

// RedefineRaw is Redefine with a fused unboxed twin of the new right-hand
// side, the edit-time analogue of Define followed by AttachRaw — in one step
// so a same-dependences edit patches compiled shapes in place instead of
// discarding them (AttachRaw alone must invalidate wholesale, since it
// cannot know the previous raw form is obsolete).
func (s *System[X, D]) RedefineRaw(x X, deps []X, rhs RHS[X, D], raw RawRHS[X]) *System[X, D] {
	return s.redefine(x, deps, rhs, raw)
}

func (s *System[X, D]) redefine(x X, deps []X, rhs RHS[X, D], raw RawRHS[X]) *System[X, D] {
	if _, ok := s.rhs[x]; !ok {
		panic(fmt.Sprintf("eqn: Redefine of undefined unknown %v", x))
	}
	sameDeps := len(deps) == len(s.deps[x])
	if sameDeps {
		for i, d := range deps {
			if d != s.deps[x][i] {
				sameDeps = false
				break
			}
		}
	}
	s.rhs[x] = rhs
	if raw != nil {
		if s.raw == nil {
			s.raw = make(map[X]RawRHS[X])
		}
		s.raw[x] = raw
	} else {
		delete(s.raw, x)
	}
	if !sameDeps {
		s.deps[x] = append([]X(nil), deps...)
	}
	// Index is keyed by position in the order, which Redefine never changes,
	// so it survives every edit; the remaining shape derivatives survive only
	// same-dependences edits.
	var i int
	if sameDeps {
		i = s.Index()[x]
	}
	s.mu.Lock()
	if sameDeps {
		for key, v := range s.memo {
			if p, ok := v.(RHSPatcher[X, D]); ok {
				p.PatchRHS(i, rhs, raw)
			} else {
				delete(s.memo, key)
			}
		}
	} else {
		s.infl, s.depGraph, s.hasFP, s.memo = nil, nil, false, nil
	}
	s.journal = append(s.journal, x)
	s.mu.Unlock()
	return s
}

// Version is the number of journaled edits (Define and Redefine calls). A
// consumer that recorded Version v can later ask EditsSince(v) for exactly
// the unknowns edited in between.
func (s *System[X, D]) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return uint64(len(s.journal))
}

// EditsSince returns the unknowns defined or redefined after version v (a
// value previously returned by Version), in edit order, possibly with
// repeats. It is the hook incremental consumers use to pick up edits applied
// directly to the system rather than routed through them.
func (s *System[X, D]) EditsSince(v uint64) []X {
	s.mu.Lock()
	defer s.mu.Unlock()
	if v >= uint64(len(s.journal)) {
		return nil
	}
	return append([]X(nil), s.journal[v:]...)
}

// AttachRaw attaches the fused unboxed form of x's right-hand side. The
// unknown must already be defined, and raw must compute exactly the value
// the boxed RHS computes (same reads, same result) — AttachRaw declares
// that equivalence, it cannot check it. Attaching invalidates memoized
// shape derivatives so compiled solver cores pick the fused form up.
func (s *System[X, D]) AttachRaw(x X, raw RawRHS[X]) *System[X, D] {
	if _, ok := s.rhs[x]; !ok {
		panic(fmt.Sprintf("eqn: AttachRaw for undefined unknown %v", x))
	}
	if s.raw == nil {
		s.raw = make(map[X]RawRHS[X])
	}
	s.raw[x] = raw
	s.mu.Lock()
	s.memo = nil
	s.mu.Unlock()
	return s
}

// RawRHSOf returns the fused unboxed right-hand side of x, or nil if none
// was attached.
func (s *System[X, D]) RawRHSOf(x X) RawRHS[X] { return s.raw[x] }

// ShapeMemo caches an arbitrary value derived from the system shape under
// key, built by build on the first call and invalidated by Define — the
// hook solvers use to keep their compiled representations across solves.
// build runs outside the lock (it may call Index, Infl or DepGraph); if two
// goroutines race to build, the first stored value wins and the loser's
// result is discarded, so build must be pure.
func (s *System[X, D]) ShapeMemo(key string, build func() any) any {
	s.mu.Lock()
	if v, ok := s.memo[key]; ok {
		s.mu.Unlock()
		return v
	}
	s.mu.Unlock()
	v := build()
	s.mu.Lock()
	defer s.mu.Unlock()
	if w, ok := s.memo[key]; ok {
		return w
	}
	if s.memo == nil {
		s.memo = make(map[string]any)
	}
	s.memo[key] = v
	return v
}

// Order returns the unknowns in definition order.
func (s *System[X, D]) Order() []X { return s.order }

// Len returns the number of equations.
func (s *System[X, D]) Len() int { return len(s.order) }

// RHS returns the right-hand side of x, or nil if x is not defined.
func (s *System[X, D]) RHS(x X) RHS[X, D] { return s.rhs[x] }

// Deps returns the declared dependences of x.
func (s *System[X, D]) Deps(x X) []X { return s.deps[x] }

// Index returns the position of every defined unknown in the linear order.
// The map is memoized until the next Define; treat it as read-only.
func (s *System[X, D]) Index() map[X]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.idx == nil {
		s.idx = make(map[X]int, len(s.order))
		for i, x := range s.order {
			s.idx[x] = i
		}
	}
	return s.idx
}

// DepGraph returns the static dependence graph in index space: adj[i] lists
// the order indices of the unknowns the right-hand side of the i-th unknown
// may read. Dependences on undefined unknowns are omitted — they hold their
// initial value throughout any solve and impose no ordering constraint.
// The graph is memoized until the next Define; treat it as read-only.
func (s *System[X, D]) DepGraph() [][]int {
	idx := s.Index()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.depGraph == nil {
		adj := make([][]int, len(s.order))
		for i, x := range s.order {
			for _, y := range s.deps[x] {
				if j, ok := idx[y]; ok {
					adj[i] = append(adj[i], j)
				}
			}
		}
		s.depGraph = adj
	}
	return s.depGraph
}

// Infl returns the influence sets: Infl[y] contains y itself together with
// every x whose right-hand side depends on y (the sets infl_y of the paper,
// which include y as a precaution for non-idempotent operators).
// The map is memoized until the next Define; treat it as read-only.
func (s *System[X, D]) Infl() map[X][]X {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.infl == nil {
		s.infl = s.buildInfl()
	}
	return s.infl
}

func (s *System[X, D]) buildInfl() map[X][]X {
	infl := make(map[X][]X, len(s.order))
	seen := make(map[X]map[X]bool, len(s.order))
	add := func(y, x X) {
		if seen[y] == nil {
			seen[y] = make(map[X]bool)
		}
		if !seen[y][x] {
			seen[y][x] = true
			infl[y] = append(infl[y], x)
		}
	}
	for _, y := range s.order {
		add(y, y)
	}
	for _, x := range s.order {
		for _, y := range s.deps[x] {
			add(y, x)
		}
	}
	return infl
}

// ShapeHash returns the FNV-64a hash of the system shape — the rendered
// linear order and every dependence list. Values and right-hand sides are
// deliberately not hashed: checkpoint warm restarts (solver.Fingerprint
// persists this hash on the wire) must survive an environment that healed.
// The hash is memoized until the next Define.
func (s *System[X, D]) ShapeHash() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.hasFP {
		h := fnv.New64a()
		for _, x := range s.order {
			fmt.Fprintf(h, "%v;", x)
			for _, d := range s.deps[x] {
				fmt.Fprintf(h, "%v,", d)
			}
			h.Write([]byte{'\n'})
		}
		s.shapeFP = h.Sum64()
		s.hasFP = true
	}
	return s.shapeFP
}

// Eval evaluates the right-hand side of x under the assignment σ, reading
// absent unknowns as init(x).
func (s *System[X, D]) Eval(x X, sigma map[X]D, init func(X) D) D {
	get := func(y X) D {
		if v, ok := sigma[y]; ok {
			return v
		}
		return init(y)
	}
	return s.rhs[x](get)
}

// AsPure views the finite system as a pure system for the local solvers.
func (s *System[X, D]) AsPure() Pure[X, D] {
	return func(x X) RHS[X, D] { return s.rhs[x] }
}

// ConstBottom returns an initial assignment mapping every unknown to the
// lattice's bottom element.
func ConstBottom[X comparable, D any](l lattice.Lattice[D]) func(X) D {
	return func(X) D { return l.Bottom() }
}

// Const returns an initial assignment mapping every unknown to d.
func Const[X comparable, D any](d D) func(X) D {
	return func(X) D { return d }
}

// IsPostSolution reports whether σ is a post-solution of the finite system:
// fₓ(σ) ⊑ σ[x] for every defined unknown, reading absent unknowns as
// init(x). On failure it returns the offending unknown.
func IsPostSolution[X comparable, D any](l lattice.Lattice[D], s *System[X, D], sigma map[X]D, init func(X) D) (X, bool) {
	get := func(y X) D {
		if v, ok := sigma[y]; ok {
			return v
		}
		return init(y)
	}
	for _, x := range s.order {
		if !l.Leq(s.rhs[x](get), get(x)) {
			return x, false
		}
	}
	var zero X
	return zero, true
}

// IsCombineSolution reports whether σ is a ⊞-solution of the finite system:
// σ[x] = σ[x] ⊞ fₓ(σ) for every defined unknown, where equality is the
// lattice's. On failure it returns the offending unknown.
func IsCombineSolution[X comparable, D any](l lattice.Lattice[D], combine func(old, new D) D, s *System[X, D], sigma map[X]D, init func(X) D) (X, bool) {
	get := func(y X) D {
		if v, ok := sigma[y]; ok {
			return v
		}
		return init(y)
	}
	for _, x := range s.order {
		if !l.Eq(get(x), combine(get(x), s.rhs[x](get))) {
			return x, false
		}
	}
	var zero X
	return zero, true
}

// IsPartialPostSolution reports whether (dom σ, σ) is a partial
// post-solution of the pure system: every defined unknown in dom satisfies
// fₓ(σ) ⊑ σ[x], and evaluation of fₓ touches only unknowns in dom.
func IsPartialPostSolution[X comparable, D any](l lattice.Lattice[D], sys Pure[X, D], sigma map[X]D) (X, bool) {
	for x := range sigma {
		rhs := sys(x)
		if rhs == nil {
			continue
		}
		escaped := false
		get := func(y X) D {
			v, ok := sigma[y]
			if !ok {
				escaped = true
			}
			return v
		}
		v := rhs(get)
		if escaped || !l.Leq(v, sigma[x]) {
			return x, false
		}
	}
	var zero X
	return zero, true
}
