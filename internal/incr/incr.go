// Package incr is the incremental re-solve engine: it treats a solved
// constraint system as a live artifact that absorbs batches of edits —
// equation replacements (eqn.Redefine) and initial-value perturbations —
// and re-solves only what an edit can actually reach, seeded from the
// previous assignment instead of ⊥.
//
// The engine computes the downstream dirty cone of an edit batch over the
// memoized static dependence graph (solver.DirtyCone: the transitive
// readers of the edited unknowns, rounded up to whole strata of the SCC
// stratification) and re-runs the chosen solver on the induced subsystem.
// Unknowns outside the cone are pinned at their previous finals: the
// subsystem's initial assignment answers out-of-cone reads with the stored
// values, which every execution core (map, dense, unboxed) already treats
// as the fallback for out-of-system unknowns. Inside the cone the solve
// starts from the original initial assignment, so warrowing — the ∇/Δ phase
// machinery of ⊟ — re-arms exactly there and nowhere else: an unknown
// re-entered at its previous (narrowed) final would otherwise have nothing
// left to widen from, and a non-monotonic edit could strand it above the
// scratch solution (DESIGN.md §12).
//
// Exactness contract: for the structured solvers SRR, SW and PSW the merged
// incremental result is bit-identical to re-running the same solver from
// scratch on the edited system (stratum-compositionality; certified over
// the whole solver×core×workers matrix by diffsolve.CheckIncremental). The
// generic solvers RR and W do not decompose over strata — their sweeps read
// cross-stratum intermediate values, and no cone granularity preserves
// bit-identity for them (§12 has a counterexample) — so for "rr" and "w"
// the engine re-solves the full system from scratch: still correct, never
// silently approximate, with the delta stats reporting zero reuse.
//
// Interrupted incremental solves resume: the solver's checkpoint machinery
// runs unchanged on the induced subsystem, pending edits stay queued until
// a Resolve completes, and the subsystem is rebuilt deterministically from
// the system state plus the pending batch, so a checkpoint taken mid-cone
// fingerprint-matches the rebuilt subsystem in a later call (or process —
// the wire format is unchanged).
package incr

import (
	"fmt"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// EditKind distinguishes the two edit flavours.
type EditKind int8

// Edit kinds.
const (
	// EditRedefine replaces (or newly defines) the equation of an unknown.
	EditRedefine EditKind = iota
	// EditPerturb overrides the initial value σ₀(x) of an unknown — the
	// "input changed" edit: for a defined unknown the re-solve restarts it
	// from the new value; for an undefined one (a parameter every reader
	// falls back to σ₀ for) the new value flows into the readers' cone.
	EditPerturb
)

// Edit is one element of an edit batch.
type Edit[X comparable, D any] struct {
	Kind    EditKind
	Unknown X
	// Deps, RHS, Raw describe the replacement equation (EditRedefine); Raw
	// is the optional fused unboxed twin and must compute the same value.
	Deps []X
	RHS  eqn.RHS[X, D]
	Raw  eqn.RawRHS[X]
	// Value is the σ₀ override (EditPerturb).
	Value D
}

// Redefine builds an equation-replacement edit.
func Redefine[X comparable, D any](x X, deps []X, rhs eqn.RHS[X, D]) Edit[X, D] {
	return Edit[X, D]{Kind: EditRedefine, Unknown: x, Deps: deps, RHS: rhs}
}

// RedefineRaw builds an equation-replacement edit with a fused unboxed twin.
func RedefineRaw[X comparable, D any](x X, deps []X, rhs eqn.RHS[X, D], raw eqn.RawRHS[X]) Edit[X, D] {
	return Edit[X, D]{Kind: EditRedefine, Unknown: x, Deps: deps, RHS: rhs, Raw: raw}
}

// Perturb builds an initial-value perturbation edit.
func Perturb[X comparable, D any](x X, v D) Edit[X, D] {
	return Edit[X, D]{Kind: EditPerturb, Unknown: x, Value: v}
}

// Result is the outcome of a Solve or Resolve: the full merged assignment
// plus the delta accounting of how much work the edit actually cost.
type Result[X comparable, D any] struct {
	// Values is the complete assignment for the whole system — reused finals
	// outside the cone, freshly solved values inside it.
	Values map[X]D
	// Stats records the re-solve's work only: evaluations of reused unknowns
	// never happen, so they are not counted anywhere.
	Stats solver.Stats
	// DirtyUnknowns is the number of unknowns re-solved (the rounded cone),
	// ReusedUnknowns the number whose previous finals were reused verbatim;
	// the two always sum to the system size.
	DirtyUnknowns  int
	ReusedUnknowns int
	// ConeStrata is the number of strata the cone covers (0 when an edit
	// batch turned out to reach nothing).
	ConeStrata int
}

// Engine drives incremental re-solves of one system with one solver. It is
// not safe for concurrent use; like the System it wraps, it expects edits
// and solves to be serialized.
type Engine[X comparable, D any] struct {
	l          lattice.Lattice[D]
	sys        *eqn.System[X, D]
	init       func(X) D
	solverName string

	overrides map[X]D // accumulated σ₀ perturbations, part of the live init
	prev      map[X]D // finals of the last completed solve
	solved    bool
	version   uint64     // journal cursor: sys edits past this are pending
	perturbed map[X]bool // pending perturbation seeds
}

// Solvers the engine dispatches to.
var solverNames = map[string]bool{"rr": true, "w": true, "srr": true, "sw": true, "psw": true}

// New builds an engine over a system for one of the global solvers ("rr",
// "w", "srr", "sw", "psw"). The local solvers discover dependences on the
// fly and have no static cone to restrict; they are out of scope here.
func New[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, solverName string) (*Engine[X, D], error) {
	if !solverNames[solverName] {
		return nil, fmt.Errorf("incr: unknown solver %q (want rr, w, srr, sw or psw)", solverName)
	}
	return &Engine[X, D]{l: l, sys: sys, init: init, solverName: solverName}, nil
}

// SolverName reports the solver the engine dispatches to.
func (e *Engine[X, D]) SolverName() string { return e.solverName }

// Init returns the engine's live initial assignment: the constructor's init
// overlaid with every perturbation applied so far. A from-scratch control
// solve must use this function to be comparable with the engine's results.
func (e *Engine[X, D]) Init() func(X) D {
	return func(x X) D {
		if v, ok := e.overrides[x]; ok {
			return v
		}
		return e.init(x)
	}
}

// run dispatches one solve. The structured operator form is used so the
// unboxed core engages whenever the domain supports it.
func (e *Engine[X, D]) run(sys *eqn.System[X, D], init func(X) D, cfg solver.Config) (map[X]D, solver.Stats, error) {
	op := solver.WarrowOp[X](e.l)
	switch e.solverName {
	case "rr":
		return solver.RR(sys, e.l, op, init, cfg)
	case "w":
		return solver.W(sys, e.l, op, init, cfg)
	case "srr":
		return solver.SRR(sys, e.l, op, init, cfg)
	case "sw":
		return solver.SW(sys, e.l, op, init, cfg)
	default:
		return solver.PSW(sys, e.l, op, init, cfg)
	}
}

// Solve runs the initial from-scratch solve and arms the engine: subsequent
// edits are re-solved incrementally by Resolve. cfg passes through to the
// solver unchanged (budget, deadline, checkpointing, core, resume). On an
// abort the engine state does not advance; re-running Solve — optionally
// resuming the abort's checkpoint via cfg.Resume — continues the work.
func (e *Engine[X, D]) Solve(cfg solver.Config) (*Result[X, D], error) {
	sigma, st, err := e.run(e.sys, e.Init(), cfg)
	if err != nil {
		return nil, err
	}
	e.prev = sigma
	e.solved = true
	e.version = e.sys.Version()
	e.perturbed = nil
	n := e.sys.Len()
	return &Result[X, D]{
		Values:        sigma,
		Stats:         st,
		DirtyUnknowns: n,
		ConeStrata:    len(solver.Stratify(e.sys.DepGraph())),
	}, nil
}

// Apply stages a batch of edits. Redefinitions are applied to the system
// immediately (and journaled by eqn, so edits made directly on the system
// through Redefine/Define are picked up just the same); perturbations
// update the live initial assignment. Nothing is re-solved until Resolve.
func (e *Engine[X, D]) Apply(edits ...Edit[X, D]) {
	for _, ed := range edits {
		switch ed.Kind {
		case EditPerturb:
			if e.overrides == nil {
				e.overrides = make(map[X]D)
			}
			e.overrides[ed.Unknown] = ed.Value
			if e.perturbed == nil {
				e.perturbed = make(map[X]bool)
			}
			e.perturbed[ed.Unknown] = true
		default: // EditRedefine
			if e.sys.RHS(ed.Unknown) == nil {
				e.sys.Define(ed.Unknown, ed.Deps, ed.RHS)
				if ed.Raw != nil {
					e.sys.AttachRaw(ed.Unknown, ed.Raw)
				}
			} else {
				e.sys.RedefineRaw(ed.Unknown, ed.Deps, ed.RHS, ed.Raw)
			}
		}
	}
}

// pending collects the dirty seeds of the staged batch in index space: the
// journal suffix the engine has not absorbed plus the perturbed unknowns.
// Perturbing an undefined unknown (a parameter) seeds its readers instead —
// the parameter itself has no equation to re-solve, but everything that
// falls back to σ₀ for it sees the new value.
func (e *Engine[X, D]) pending() []int {
	idx := e.sys.Index()
	var seeds []int
	seen := make(map[int]bool)
	add := func(i int) {
		if !seen[i] {
			seen[i] = true
			seeds = append(seeds, i)
		}
	}
	addUnknown := func(x X) {
		if i, ok := idx[x]; ok {
			add(i)
			return
		}
		for i, y := range e.sys.Order() {
			for _, d := range e.sys.Deps(y) {
				if d == x {
					add(i)
					break
				}
			}
		}
	}
	for _, x := range e.sys.EditsSince(e.version) {
		addUnknown(x)
	}
	for x := range e.perturbed {
		addUnknown(x)
	}
	return seeds
}

// Resolve re-solves the staged edit batch and returns the merged delta
// result. It requires a completed Solve. On success the engine advances (the
// merged assignment becomes the new baseline and the batch is consumed); on
// an abort the batch stays pending, and a later Resolve — with a larger
// budget, or resuming the abort's checkpoint via cfg.Resume — continues.
// The subsystem a checkpoint was taken on is rebuilt deterministically from
// the system and the pending batch, so the fingerprint matches.
func (e *Engine[X, D]) Resolve(cfg solver.Config) (*Result[X, D], error) {
	if !e.solved {
		return nil, fmt.Errorf("incr: Resolve before a completed Solve")
	}
	n := e.sys.Len()
	seeds := e.pending()
	if len(seeds) == 0 {
		return &Result[X, D]{Values: copyMap(e.prev), ReusedUnknowns: n}, nil
	}

	if e.solverName == "rr" || e.solverName == "w" {
		// The generic solvers read cross-stratum intermediates: no cone
		// restriction preserves bit-identity (DESIGN.md §12), so the honest
		// incremental policy is a full re-solve of the edited system.
		sigma, st, err := e.run(e.sys, e.Init(), cfg)
		if err != nil {
			return nil, err
		}
		e.prev = sigma
		e.version = e.sys.Version()
		e.perturbed = nil
		return &Result[X, D]{
			Values:        sigma,
			Stats:         st,
			DirtyUnknowns: n,
			ConeStrata:    len(solver.Stratify(e.sys.DepGraph())),
		}, nil
	}

	members, coneStrata := solver.DirtyCone(e.sys.DepGraph(), seeds)
	order := e.sys.Order()
	sub := eqn.NewSystem[X, D]()
	inCone := make(map[X]bool, len(members))
	for _, i := range members {
		x := order[i]
		sub.Define(x, e.sys.Deps(x), e.sys.RHS(x))
		if raw := e.sys.RawRHSOf(x); raw != nil {
			sub.AttachRaw(x, raw)
		}
		inCone[x] = true
	}
	effInit := e.Init()
	prev := e.prev
	// Inside the cone the solve restarts from σ₀ — re-arming ⊟'s widening
	// phase — while reads that escape the subsystem are pinned at the
	// previous finals (or at σ₀ for unknowns no solve has ever defined).
	init := func(y X) D {
		if inCone[y] {
			return effInit(y)
		}
		if v, ok := prev[y]; ok {
			return v
		}
		return effInit(y)
	}
	sigma, st, err := e.run(sub, init, cfg)
	if err != nil {
		return nil, err
	}
	merged := copyMap(prev)
	for x, v := range sigma {
		merged[x] = v
	}
	e.prev = merged
	e.version = e.sys.Version()
	e.perturbed = nil
	return &Result[X, D]{
		Values:         merged,
		Stats:          st,
		DirtyUnknowns:  len(members),
		ReusedUnknowns: n - len(members),
		ConeStrata:     coneStrata,
	}, nil
}

// Values returns the engine's current baseline assignment (the last
// completed solve's finals), or nil before the first Solve. Callers must
// treat it as read-only.
func (e *Engine[X, D]) Values() map[X]D { return e.prev }

func copyMap[X comparable, D any](m map[X]D) map[X]D {
	out := make(map[X]D, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
