package incr

import (
	"errors"
	"testing"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// chain builds an n-unknown interval chain: unknown 0 is [c, c], unknown i
// copies its predecessor joined with [i, i]. Every unknown is its own
// stratum, so cone sizes are exactly suffix lengths.
func chain(n int, c int64) *eqn.System[int, lattice.Interval] {
	sys := eqn.NewSystem[int, lattice.Interval]()
	sys.Define(0, nil, func(func(int) lattice.Interval) lattice.Interval {
		return lattice.Singleton(c)
	})
	for i := 1; i < n; i++ {
		i := i
		sys.Define(i, []int{i - 1}, func(get func(int) lattice.Interval) lattice.Interval {
			return lattice.Ints.Join(get(i-1), lattice.Singleton(int64(i)))
		})
	}
	return sys
}

var l = lattice.Ints

func scratch(t *testing.T, e *Engine[int, lattice.Interval], sys *eqn.System[int, lattice.Interval], cfg solver.Config) map[int]lattice.Interval {
	t.Helper()
	op := solver.WarrowOp[int](l)
	var sigma map[int]lattice.Interval
	var err error
	switch e.SolverName() {
	case "rr":
		sigma, _, err = solver.RR(sys, l, op, e.Init(), cfg)
	case "sw":
		sigma, _, err = solver.SW(sys, l, op, e.Init(), cfg)
	default:
		t.Fatalf("no scratch dispatch for %s", e.SolverName())
	}
	if err != nil {
		t.Fatal(err)
	}
	return sigma
}

func mustEqual(t *testing.T, sys *eqn.System[int, lattice.Interval], got, want map[int]lattice.Interval) {
	t.Helper()
	for _, x := range sys.Order() {
		if !l.Eq(got[x], want[x]) {
			t.Fatalf("value of %v = %s, want %s", x, l.Format(got[x]), l.Format(want[x]))
		}
	}
}

func TestResolveBeforeSolve(t *testing.T) {
	e, err := New(l, chain(8, 0), eqn.ConstBottom[int, lattice.Interval](l), "sw")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Resolve(solver.Config{MaxEvals: 1000}); err == nil {
		t.Fatal("Resolve before Solve succeeded")
	}
}

func TestUnknownSolverRejected(t *testing.T) {
	if _, err := New(l, chain(4, 0), eqn.ConstBottom[int, lattice.Interval](l), "slr"); err == nil {
		t.Fatal("New accepted the local solver slr")
	}
}

func TestNoEditFastPath(t *testing.T) {
	sys := chain(12, 0)
	e, _ := New(l, sys, eqn.ConstBottom[int, lattice.Interval](l), "sw")
	cfg := solver.Config{MaxEvals: 100_000}
	first, err := e.Solve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Resolve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyUnknowns != 0 || res.ReusedUnknowns != 12 || res.ConeStrata != 0 {
		t.Fatalf("no-edit resolve reported dirty/reused/strata %d/%d/%d",
			res.DirtyUnknowns, res.ReusedUnknowns, res.ConeStrata)
	}
	if res.Stats.Evals != 0 {
		t.Fatalf("no-edit resolve evaluated %d times", res.Stats.Evals)
	}
	mustEqual(t, sys, res.Values, first.Values)
}

func TestConeIsSuffixOfChain(t *testing.T) {
	sys := chain(20, 0)
	e, _ := New(l, sys, eqn.ConstBottom[int, lattice.Interval](l), "sw")
	cfg := solver.Config{MaxEvals: 100_000}
	if _, err := e.Solve(cfg); err != nil {
		t.Fatal(err)
	}
	// Raise unknown 10's constant: the cone is exactly unknowns 10..19.
	e.Apply(Redefine(10, []int{9}, func(get func(int) lattice.Interval) lattice.Interval {
		return l.Join(get(9), lattice.Singleton(100))
	}))
	res, err := e.Resolve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyUnknowns != 10 || res.ReusedUnknowns != 10 || res.ConeStrata != 10 {
		t.Fatalf("cone dirty/reused/strata = %d/%d/%d, want 10/10/10",
			res.DirtyUnknowns, res.ReusedUnknowns, res.ConeStrata)
	}
	mustEqual(t, sys, res.Values, scratch(t, e, sys, cfg))
	if got := res.Values[19]; !l.Eq(got, lattice.Range(0, 100)) {
		t.Fatalf("chain tail = %s, want [0,100]", l.Format(got))
	}
}

func TestGenericSolverResolvesInFull(t *testing.T) {
	sys := chain(20, 0)
	e, _ := New(l, sys, eqn.ConstBottom[int, lattice.Interval](l), "rr")
	cfg := solver.Config{MaxEvals: 100_000}
	if _, err := e.Solve(cfg); err != nil {
		t.Fatal(err)
	}
	e.Apply(Redefine(19, []int{18}, func(get func(int) lattice.Interval) lattice.Interval {
		return l.Join(get(18), lattice.Singleton(77))
	}))
	res, err := e.Resolve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyUnknowns != 20 || res.ReusedUnknowns != 0 {
		t.Fatalf("rr resolve reported dirty/reused %d/%d, want 20/0", res.DirtyUnknowns, res.ReusedUnknowns)
	}
	mustEqual(t, sys, res.Values, scratch(t, e, sys, cfg))
}

func TestPerturbDefinedUnknown(t *testing.T) {
	sys := chain(16, 0)
	e, _ := New(l, sys, eqn.ConstBottom[int, lattice.Interval](l), "sw")
	cfg := solver.Config{MaxEvals: 100_000}
	if _, err := e.Solve(cfg); err != nil {
		t.Fatal(err)
	}
	e.Apply(Perturb(3, lattice.Range(-5, -5)))
	res, err := e.Resolve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyUnknowns != 13 {
		t.Fatalf("perturb of unknown 3 dirtied %d unknowns, want 13", res.DirtyUnknowns)
	}
	mustEqual(t, sys, res.Values, scratch(t, e, sys, cfg))
	if got := res.Values[15]; !l.Eq(got, lattice.Range(-5, 15)) {
		t.Fatalf("chain tail = %s, want [-5,15]", l.Format(got))
	}
}

// TestPerturbParameter perturbs an unknown no equation defines: the readers
// fall back to σ₀ for it, so the perturbation seeds exactly those readers.
func TestPerturbParameter(t *testing.T) {
	sys := chain(10, 0)
	// Unknown 4 additionally reads the undefined parameter 99.
	sys.Redefine(4, []int{3, 99}, func(get func(int) lattice.Interval) lattice.Interval {
		return l.Join(get(3), get(99))
	})
	e, _ := New(l, sys, eqn.ConstBottom[int, lattice.Interval](l), "sw")
	cfg := solver.Config{MaxEvals: 100_000}
	if _, err := e.Solve(cfg); err != nil {
		t.Fatal(err)
	}
	e.Apply(Perturb(99, lattice.Singleton(42)))
	res, err := e.Resolve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyUnknowns != 6 {
		t.Fatalf("parameter perturb dirtied %d unknowns, want 6 (readers 4..9)", res.DirtyUnknowns)
	}
	mustEqual(t, sys, res.Values, scratch(t, e, sys, cfg))
	if got := res.Values[9]; !l.Eq(got, lattice.Range(0, 42)) {
		t.Fatalf("chain tail = %s, want [0,42]", l.Format(got))
	}
}

// TestDefineNewUnknown grows the system through the engine: the new unknown
// is its own cone seed and the delta accounting tracks the new size.
func TestDefineNewUnknown(t *testing.T) {
	sys := chain(8, 0)
	e, _ := New(l, sys, eqn.ConstBottom[int, lattice.Interval](l), "sw")
	cfg := solver.Config{MaxEvals: 100_000}
	if _, err := e.Solve(cfg); err != nil {
		t.Fatal(err)
	}
	e.Apply(Redefine(8, []int{7}, func(get func(int) lattice.Interval) lattice.Interval {
		return l.Join(get(7), lattice.Singleton(200))
	}))
	res, err := e.Resolve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyUnknowns != 1 || res.ReusedUnknowns != 8 {
		t.Fatalf("new-unknown resolve reported dirty/reused %d/%d, want 1/8", res.DirtyUnknowns, res.ReusedUnknowns)
	}
	if got := res.Values[8]; !l.Eq(got, lattice.Range(0, 200)) {
		t.Fatalf("new unknown = %s, want [0,200]", l.Format(got))
	}
}

// TestAbortKeepsBatchPending interrupts a cone re-solve with a tiny budget:
// the edit stays staged, and a later Resolve with room completes to the
// scratch result.
func TestAbortKeepsBatchPending(t *testing.T) {
	sys := chain(24, 0)
	e, _ := New(l, sys, eqn.ConstBottom[int, lattice.Interval](l), "sw")
	cfg := solver.Config{MaxEvals: 100_000}
	if _, err := e.Solve(cfg); err != nil {
		t.Fatal(err)
	}
	e.Apply(Redefine(2, []int{1}, func(get func(int) lattice.Interval) lattice.Interval {
		return l.Join(get(1), lattice.Singleton(300))
	}))
	_, aerr := e.Resolve(solver.Config{MaxEvals: 3})
	if aerr == nil {
		t.Fatal("budget 3 did not abort the cone re-solve")
	}
	if !errors.Is(aerr, solver.ErrEvalBudget) {
		if _, ok := solver.ReportOf(aerr); !ok {
			t.Fatalf("abort is not a controlled budget abort: %v", aerr)
		}
	}
	// The baseline did not advance and the batch is still pending.
	res, err := e.Resolve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.DirtyUnknowns != 22 {
		t.Fatalf("retried resolve dirtied %d unknowns, want 22", res.DirtyUnknowns)
	}
	mustEqual(t, sys, res.Values, scratch(t, e, sys, cfg))
}

// TestResumeMidCone resumes an interrupted cone re-solve from its abort
// checkpoint and demands the uninterrupted incremental result.
func TestResumeMidCone(t *testing.T) {
	sys := chain(24, 0)
	mk := func() *Engine[int, lattice.Interval] {
		e, _ := New(l, sys, eqn.ConstBottom[int, lattice.Interval](l), "sw")
		return e
	}
	cfg := solver.Config{MaxEvals: 100_000}
	ref, intr := mk(), mk()
	if _, err := ref.Solve(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := intr.Solve(cfg); err != nil {
		t.Fatal(err)
	}
	sys.Redefine(4, []int{3}, func(get func(int) lattice.Interval) lattice.Interval {
		return l.Join(get(3), lattice.Singleton(123))
	})
	refRes, err := ref.Resolve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, aerr := intr.Resolve(solver.Config{MaxEvals: refRes.Stats.Evals / 2})
	cp, ok := solver.CheckpointOf[int, lattice.Interval](aerr)
	if !ok {
		t.Fatalf("mid-cone abort carries no checkpoint: %v", aerr)
	}
	rc := cfg
	rc.Resume = cp
	got, err := intr.Resolve(rc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.Evals != refRes.Stats.Evals || got.Stats.Updates != refRes.Stats.Updates {
		t.Fatalf("resumed evals/updates %d/%d, uninterrupted %d/%d",
			got.Stats.Evals, got.Stats.Updates, refRes.Stats.Evals, refRes.Stats.Updates)
	}
	mustEqual(t, sys, got.Values, refRes.Values)
}
