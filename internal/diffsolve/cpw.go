// The chaotic parallel solver's differential column. CPW is certified,
// never bit-pinned: chaotic claim order means distinct runs may land on
// distinct post-solutions with distinct work records, so unlike PSW there
// is no value or Stats comparison against SW. The verdict is the claim
// ladder instead — every completed run certifies as a post-solution
// (Lemma 1 via certify.System), and every bounded run aborts cleanly with
// a quiesce-and-drain checkpoint that resumes, on any execution core, to a
// certified completion.
package diffsolve

import (
	"fmt"

	"warrow/internal/certify"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// cpwWorkerDefaults is the worker-count sweep CheckCPW runs when the
// options don't name one: the full pool ladder, including oversubscribed
// sizes that force claim contention even on small strata.
var cpwWorkerDefaults = []int{1, 2, 4, 8}

// CheckCPW runs CPW across execution cores and worker counts on one system
// and enforces the certified-only claim ladder:
//
//   - a completed run must certify as a post-solution of sys;
//   - an aborted run must be a controlled watchdog abort carrying a
//     resumable checkpoint (the quiesce-and-drain snapshot);
//   - a checkpoint taken under one core must resume under every other core
//     to a certified completion.
//
// A nil error means every (core, worker) cell upheld the ladder.
func CheckCPW[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, opt Options) error {
	opt = opt.defaults()
	workers := opt.Workers
	if len(workers) == 0 {
		workers = cpwWorkerDefaults
	}
	op := solver.WarrowOp[X, D](l)
	cores := []solver.Core{solver.CoreMap, solver.CoreDense, solver.CoreUnboxed}

	for _, core := range cores {
		for _, w := range workers {
			name := fmt.Sprintf("cpw/%s/w=%d", core, w)
			c := solver.Config{MaxEvals: opt.MaxEvals, MaxFlips: opt.MaxFlips, Core: core, Workers: w}
			sigma, _, err := solver.CPW(sys, l, op, init, c)
			if err != nil {
				if !acceptableAbort(err) {
					return fmt.Errorf("%s: unexpected error: %w", name, err)
				}
				if _, ok := solver.CheckpointOf[X, D](err); !ok {
					return fmt.Errorf("%s: abort carries no checkpoint: %w", name, err)
				}
				continue
			}
			if rep := certify.System(l, sys, sigma, init); rep.Err() != nil {
				return fmt.Errorf("%s: %w", name, rep.Err())
			}
		}
	}

	// Cross-core quiesce-and-drain resume. Budgets are taken relative to a
	// reference run rather than fixed, so the interrupt lands mid-solve; a
	// different interleaving may still complete inside the tighter budget,
	// in which case that cell degenerates to the certify gate above.
	ref := solver.Config{MaxEvals: opt.MaxEvals, Workers: 2, Core: solver.CoreMap}
	_, refSt, refErr := solver.CPW(sys, l, op, init, ref)
	if refErr != nil || refSt.Evals < 2 {
		// Divergent (or trivial) workload: the ladder above already covered
		// its abort behavior per cell; there is no completion to resume to.
		return nil
	}
	directions := []struct {
		name              string
		interrupt, resume solver.Core
	}{
		{"map→dense", solver.CoreMap, solver.CoreDense},
		{"dense→map", solver.CoreDense, solver.CoreMap},
		{"map→unboxed", solver.CoreMap, solver.CoreUnboxed},
		{"unboxed→map", solver.CoreUnboxed, solver.CoreMap},
		{"dense→unboxed", solver.CoreDense, solver.CoreUnboxed},
		{"unboxed→dense", solver.CoreUnboxed, solver.CoreDense},
	}
	for _, dir := range directions {
		for _, w := range workers {
			name := fmt.Sprintf("cpw %s/w=%d", dir.name, w)
			c := solver.Config{MaxEvals: refSt.Evals / 2, Workers: w, Core: dir.interrupt}
			sigma, _, err := solver.CPW(sys, l, op, init, c)
			if err == nil {
				// This interleaving finished inside half the reference work;
				// nothing to resume, but the completion must still certify.
				if rep := certify.System(l, sys, sigma, init); rep.Err() != nil {
					return fmt.Errorf("%s: %w", name, rep.Err())
				}
				continue
			}
			if !acceptableAbort(err) {
				return fmt.Errorf("%s: unexpected error: %w", name, err)
			}
			cp, ok := solver.CheckpointOf[X, D](err)
			if !ok {
				return fmt.Errorf("%s: abort carries no checkpoint: %w", name, err)
			}
			rc := solver.Config{MaxEvals: opt.MaxEvals, Workers: w, Core: dir.resume, Resume: cp}
			got, _, err := solver.CPW(sys, l, op, init, rc)
			if err != nil {
				return fmt.Errorf("%s: resume failed: %w", name, err)
			}
			if rep := certify.System(l, sys, got, init); rep.Err() != nil {
				return fmt.Errorf("%s: resumed result does not certify: %w", name, rep.Err())
			}
		}
	}
	return nil
}

// CheckGeneratedCPW runs the CPW claim-ladder verdict on a generated
// system. Errors carry the reproduction recipe.
func CheckGeneratedCPW(cfg eqgen.Config, opt Options) error {
	g := eqgen.New(cfg)
	var err error
	switch {
	case g.Interval != nil:
		l := lattice.Ints
		err = CheckCPW[int, lattice.Interval](l, g.Interval, eqn.ConstBottom[int, lattice.Interval](l), opt)
	case g.Flat != nil:
		l := eqgen.FlatL
		err = CheckCPW[int, lattice.Flat[int64]](l, g.Flat, eqn.ConstBottom[int, lattice.Flat[int64]](l), opt)
	case g.Powerset != nil:
		l := eqgen.PowersetL()
		err = CheckCPW[int, lattice.Set[int]](l, g.Powerset, eqn.ConstBottom[int, lattice.Set[int]](l), opt)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", g.Shape.Cfg, err)
	}
	return nil
}
