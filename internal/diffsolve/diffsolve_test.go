package diffsolve

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"warrow/internal/certify"
	"warrow/internal/eqdsl"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// recipes returns the seeded reproduction recipes the property tests sweep:
// per domain, a spread of sizes, fan-ins, SCC shapes, non-monotonicity doses
// and order-inconsistent (forward-edge) systems.
func recipes(dom eqgen.Domain, seeds int) []eqgen.Config {
	out := make([]eqgen.Config, 0, seeds)
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		out = append(out, eqgen.Config{
			Seed:           seed,
			Dom:            dom,
			N:              6 + int(seed%14),
			FanIn:          int(seed % 4),
			MaxSCC:         1 + int(seed%5),
			WidenDensity:   0.3 + 0.1*float64(seed%5),
			NonMonoDensity: 0.2 * float64(seed%3),
			ForwardDensity: 0.25 * float64(seed%2),
		})
	}
	return out
}

// TestDifferentialOnGeneratedSystems is the harness's own property test:
// 120 seeded systems (40 per domain, monotonic and non-monotonic, with and
// without order-consistent linearizations) must produce no differential
// disagreement — every terminating solver certifies, and PSW matches SW
// bit-for-bit.
func TestDifferentialOnGeneratedSystems(t *testing.T) {
	for _, dom := range []eqgen.Domain{eqgen.Interval, eqgen.Flat, eqgen.Powerset} {
		dom := dom
		t.Run(dom.String(), func(t *testing.T) {
			t.Parallel()
			for _, cfg := range recipes(dom, 40) {
				if err := CheckGenerated(cfg, Options{MaxEvals: 30_000, Workers: []int{1, 3}}); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// pswVsSW runs SW and PSW at several worker counts and demands bit-identical
// results: same termination status, and on termination the same values,
// Evals and Updates.
func pswVsSW[X comparable, D any](t *testing.T, tag string, l lattice.Lattice[D], sys *eqn.System[X, D], workers []int) {
	t.Helper()
	op := solver.Op[X](solver.Warrow[D](l))
	init := eqn.ConstBottom[X, D](l)
	cfg := solver.Config{MaxEvals: 50_000}
	swSigma, swSt, swErr := solver.SW(sys, l, op, init, cfg)
	for _, w := range workers {
		pcfg := cfg
		pcfg.Workers = w
		sigma, st, err := solver.PSW(sys, l, op, init, pcfg)
		if (err == nil) != (swErr == nil) {
			t.Errorf("%s w=%d: termination err=%v, sw err=%v", tag, w, err, swErr)
			continue
		}
		if err != nil {
			if !errors.Is(err, solver.ErrEvalBudget) || st.Evals != swSt.Evals {
				t.Errorf("%s w=%d: err=%v evals=%d, sw evals=%d", tag, w, err, st.Evals, swSt.Evals)
			}
			continue
		}
		if st.Evals != swSt.Evals || st.Updates != swSt.Updates {
			t.Errorf("%s w=%d: evals/updates %d/%d, sw %d/%d",
				tag, w, st.Evals, st.Updates, swSt.Evals, swSt.Updates)
		}
		for _, x := range sys.Order() {
			if !l.Eq(sigma[x], swSigma[x]) {
				t.Errorf("%s w=%d: value %v = %s, sw %s", tag, w, x, l.Format(sigma[x]), l.Format(swSigma[x]))
				break
			}
		}
	}
}

// TestPSWMatchesSWAcrossWorkerCounts replaces the reliance on hand-picked
// systems: 50 machine-generated systems — mixed domains, SCC shapes,
// non-monotonic doses, and order-inconsistent linearizations — are solved
// at worker counts 1, 2, 4 and 8 and compared against SW on values, Evals
// and Updates. Run under -race by the tier-2 gate.
func TestPSWMatchesSWAcrossWorkerCounts(t *testing.T) {
	workers := []int{1, 2, 4, 8}
	for seed := uint64(1); seed <= 50; seed++ {
		cfg := eqgen.Config{
			Seed:           seed,
			Dom:            eqgen.Domain(seed % 3),
			N:              8 + int(seed%25),
			FanIn:          int(seed % 4),
			MaxSCC:         1 + int(seed%6),
			NonMonoDensity: 0.25 * float64(seed%2),
			ForwardDensity: 0.2 * float64(seed%3),
		}
		tag := cfg.String()
		g := eqgen.New(cfg)
		switch {
		case g.Interval != nil:
			pswVsSW(t, tag, lattice.Lattice[lattice.Interval](lattice.Ints), g.Interval, workers)
		case g.Flat != nil:
			pswVsSW(t, tag, lattice.Lattice[lattice.Flat[int64]](eqgen.FlatL), g.Flat, workers)
		case g.Powerset != nil:
			pswVsSW(t, tag, lattice.Lattice[lattice.Set[int]](eqgen.PowersetL()), g.Powerset, workers)
		}
	}
}

// systemsDir is the repository's example-system directory.
const systemsDir = "../../examples/systems"

// checkEqFile runs the differential matrix on a parsed .eq system and then
// the mutation property: for every unknown whose lowering to ⊥ is
// falsifiable (the re-evaluated right-hand side exceeds ⊥), the certifier
// must reject the mutated solution with a counterexample naming exactly
// that unknown.
func checkEqFile[D any](t *testing.T, name string, l lattice.Lattice[D], sys *eqn.System[string, D], init func(string) D) {
	t.Helper()
	if err := Check(l, sys, init, Options{MaxEvals: 50_000, Workers: []int{1, 2, 4}}); err != nil {
		t.Errorf("%s: %v", name, err)
	}

	op := solver.Op[string](solver.Warrow[D](l))
	sigma, _, err := solver.SW(sys, l, op, init, solver.Config{MaxEvals: 50_000})
	if err != nil {
		t.Fatalf("%s: sw: %v", name, err)
	}
	rejected := 0
	for _, x := range sys.Order() {
		mut := make(map[string]D, len(sigma))
		for k, v := range sigma {
			mut[k] = v
		}
		mut[x] = l.Bottom()
		if l.Leq(sys.Eval(x, mut, init), l.Bottom()) {
			continue // lowering x is not falsifiable at x itself
		}
		rep := certify.System(l, sys, mut, init)
		if rep.OK() {
			t.Errorf("%s: solution with %s lowered to ⊥ certified", name, x)
			continue
		}
		named := false
		for _, v := range rep.Violations {
			if v.Unknown == x && v.Kind == certify.NotPost {
				named = true
			}
		}
		if !named {
			t.Errorf("%s: lowering %s rejected, but no counterexample names it: %s", name, x, rep)
		}
		rejected++
	}
	if rejected == 0 {
		t.Errorf("%s: no lowering was falsifiable — mutation property vacuous", name)
	}
}

// TestCertifierOnExampleSystems: every .eq system in examples/systems goes
// through the full differential matrix (terminating solvers certify,
// divergence tolerated for the generic solvers), plus the hand-mutation
// rejection property.
func TestCertifierOnExampleSystems(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(systemsDir, "*.eq"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no example systems found: %v", err)
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			t.Parallel()
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := eqdsl.Parse(string(data))
			if err != nil {
				t.Fatal(err)
			}
			if f.Open {
				t.Skip("edit overlay, not a closed system")
			}
			switch f.Domain {
			case eqdsl.DomainNatInf:
				sys, err := f.NatSystem()
				if err != nil {
					t.Fatal(err)
				}
				checkEqFile(t, path, lattice.Lattice[lattice.Nat](lattice.NatInf), sys,
					func(string) lattice.Nat { return lattice.NatOf(0) })
			case eqdsl.DomainInterval:
				sys, err := f.IntervalSystem()
				if err != nil {
					t.Fatal(err)
				}
				checkEqFile(t, path, lattice.Lattice[lattice.Interval](lattice.Ints),
					sys, func(string) lattice.Interval { return lattice.EmptyInterval })
			}
		})
	}
}

// loadNatExample parses one of the paper's example systems.
func loadNatExample(t *testing.T, name string) *eqn.System[string, lattice.Nat] {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(systemsDir, name))
	if err != nil {
		t.Fatal(err)
	}
	f, err := eqdsl.Parse(string(data))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := f.NatSystem()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestNonTerminationRegressionExamples encodes the paper's Examples 1 and 2
// as budgeted regression tests: the generic solvers RR (Example 1) and W
// (Example 2) exhaust their evaluation budget with ⊟ even though both
// systems are finite and monotonic, while the structured solvers SRR, SW
// and SLR terminate — and their results certify as post-solutions, which by
// Lemma 1 is exactly what termination must deliver.
func TestNonTerminationRegressionExamples(t *testing.T) {
	l := lattice.NatInf
	op := solver.Op[string](solver.Warrow[lattice.Nat](l))
	init := func(string) lattice.Nat { return lattice.NatOf(0) }
	budget := solver.Config{MaxEvals: 20_000}

	cases := []struct {
		file     string
		diverges string // the generic solver the paper proves divergent
	}{
		{"example1.eq", "rr"},
		{"example2.eq", "w"},
	}
	for _, c := range cases {
		sys := loadNatExample(t, c.file)

		var err error
		switch c.diverges {
		case "rr":
			_, _, err = solver.RR(sys, l, op, init, budget)
		case "w":
			_, _, err = solver.W(sys, l, op, init, budget)
		}
		if !errors.Is(err, solver.ErrEvalBudget) {
			t.Errorf("%s: %s with ⊟ should exhaust its budget, got %v", c.file, c.diverges, err)
		}

		structured := []struct {
			name string
			run  func() (map[string]lattice.Nat, error)
		}{
			{"srr", func() (map[string]lattice.Nat, error) {
				sigma, _, err := solver.SRR(sys, l, op, init, budget)
				return sigma, err
			}},
			{"sw", func() (map[string]lattice.Nat, error) {
				sigma, _, err := solver.SW(sys, l, op, init, budget)
				return sigma, err
			}},
			{"slr", func() (map[string]lattice.Nat, error) {
				res, err := solver.SLR(sys.AsPure(), l, op, init, sys.Order()[0], budget)
				return res.Values, err
			}},
		}
		for _, s := range structured {
			sigma, err := s.run()
			if err != nil {
				t.Errorf("%s: %s with ⊟ must terminate on the monotonic system: %v", c.file, s.name, err)
				continue
			}
			var rep interface {
				OK() bool
				Err() error
			}
			if s.name == "slr" {
				rep = certify.Partial(l, sys.AsPure(), sigma, init)
			} else {
				rep = certify.System(l, sys, sigma, init)
			}
			if !rep.OK() {
				t.Errorf("%s: %s terminated but did not certify: %v", c.file, s.name, rep.Err())
			}
		}
	}
}

// TestCheckReportsMismatch: a deliberately broken differential comparison
// must surface — feed Check a system whose SW result we can't corrupt
// directly, so instead corrupt via certify on a constant system to ensure
// Check's certification plumbing can fail at all (guards against a harness
// that silently passes everything).
func TestCheckReportsMismatch(t *testing.T) {
	// A constant system certifies trivially; Check must return nil.
	l := lattice.Ints
	sys := eqn.NewSystem[string, lattice.Interval]()
	sys.Define("c", nil, func(func(string) lattice.Interval) lattice.Interval {
		return lattice.Singleton(7)
	})
	init := func(string) lattice.Interval { return lattice.EmptyInterval }
	if err := Check(l, sys, init, Options{}); err != nil {
		t.Fatalf("constant system: %v", err)
	}
	// The certifier the harness calls must reject a corrupted map (sanity
	// that the Outcome wiring uses the same init/system it solved with).
	rep := certify.System(l, sys, map[string]lattice.Interval{"c": lattice.EmptyInterval}, init)
	if rep.OK() {
		t.Fatal("corrupted constant solution certified")
	}
	if want := "c"; fmt.Sprint(rep.Violations[0].Unknown) != want {
		t.Fatalf("counterexample names %v, want %s", rep.Violations[0].Unknown, want)
	}
	if !strings.Contains(rep.String(), "[7,7]") {
		t.Fatalf("report lacks recomputed evidence: %s", rep)
	}
}
