// Cross-core differential verdicts: the compiled execution cores — dense
// with boxed values and unboxed with raw words (valuerep.go) — must be
// bit-identical to the map core: same values, same Evals, Updates, Rounds
// and MaxQueue, same termination status, for every global solver; and
// checkpoints taken under any core must resume under any other with no
// observable difference. These are the properties the compiled cores'
// correctness argument rests on (see DESIGN.md §10 and §11), so they get
// their own harness entry points next to the solver-vs-solver matrix.
package diffsolve

import (
	"fmt"

	"warrow/internal/certify"
	"warrow/internal/ckptcodec"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// coreRunner is one global solver, parameterized over the full Config so the
// harness can force either execution core.
type coreRunner[X comparable, D any] struct {
	name string
	run  func(solver.Config) (map[X]D, solver.Stats, error)
}

func coreRunners[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D) []coreRunner[X, D] {
	// WarrowOp is the structured ⊟: bit-identical to Op(Warrow(l)) on the
	// boxed cores and the form that unlocks the unboxed value store.
	op := solver.WarrowOp[X, D](l)
	return []coreRunner[X, D]{
		{"rr", func(c solver.Config) (map[X]D, solver.Stats, error) { return solver.RR(sys, l, op, init, c) }},
		{"w", func(c solver.Config) (map[X]D, solver.Stats, error) { return solver.W(sys, l, op, init, c) }},
		{"srr", func(c solver.Config) (map[X]D, solver.Stats, error) { return solver.SRR(sys, l, op, init, c) }},
		{"sw", func(c solver.Config) (map[X]D, solver.Stats, error) { return solver.SW(sys, l, op, init, c) }},
	}
}

// CheckCores runs every global solver once per execution core — map, dense
// with boxed values, and unboxed — and demands bit-identity: identical
// termination status, identical Evals, Updates, Rounds and MaxQueue (on
// aborts too — the cores run the same schedule, so the work record at the
// abort point must agree exactly), and identical values on termination.
// PSW — which always executes on the compiled structures — is then compared
// against the map-core SW outcome for every worker count in opt.Workers and
// both value stores, crossing the cores a second way.
func CheckCores[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, opt Options) error {
	opt = opt.defaults()
	base := solver.Config{MaxEvals: opt.MaxEvals, MaxFlips: opt.MaxFlips}

	var swVals map[X]D
	var swSt solver.Stats
	var swErr error
	compiledCores := []solver.Core{solver.CoreDense, solver.CoreUnboxed}
	for _, r := range coreRunners(l, sys, init) {
		mc := base
		mc.Core = solver.CoreMap
		mSigma, mSt, mErr := r.run(mc)
		if mErr != nil && !acceptableAbort(mErr) {
			return fmt.Errorf("%s map: unexpected error: %w", r.name, mErr)
		}
		for _, core := range compiledCores {
			dc := base
			dc.Core = core
			dSigma, dSt, dErr := r.run(dc)
			if dErr != nil && !acceptableAbort(dErr) {
				return fmt.Errorf("%s %s: unexpected error: %w", r.name, core, dErr)
			}
			if (mErr == nil) != (dErr == nil) {
				return fmt.Errorf("%s: termination differs: map err=%v, %s err=%v", r.name, mErr, core, dErr)
			}
			if mSt.Evals != dSt.Evals || mSt.Updates != dSt.Updates ||
				mSt.Rounds != dSt.Rounds || mSt.MaxQueue != dSt.MaxQueue {
				return fmt.Errorf("%s: schedules diverge: map %+v, %s %+v", r.name, mSt, core, dSt)
			}
			if mErr == nil {
				for _, x := range sys.Order() {
					if !l.Eq(mSigma[x], dSigma[x]) {
						return fmt.Errorf("%s: value of %v: map %s, %s %s",
							r.name, x, l.Format(mSigma[x]), core, l.Format(dSigma[x]))
					}
				}
			}
		}
		if r.name == "sw" {
			swVals, swSt, swErr = mSigma, mSt, mErr
		}
	}

	for _, w := range opt.Workers {
		for _, core := range compiledCores {
			cfg := base
			cfg.Workers = w
			cfg.Core = core
			op := solver.WarrowOp[X, D](l)
			sigma, st, err := solver.PSW(sys, l, op, init, cfg)
			if err != nil && !acceptableAbort(err) {
				return fmt.Errorf("psw/%s/w=%d: unexpected error: %w", core, w, err)
			}
			if (err == nil) != (swErr == nil) {
				return fmt.Errorf("psw/%s/w=%d: termination differs from map-core sw: psw err=%v, sw err=%v", core, w, err, swErr)
			}
			if st.Evals != swSt.Evals {
				return fmt.Errorf("psw/%s/w=%d: %d evals, map-core sw %d", core, w, st.Evals, swSt.Evals)
			}
			if err != nil {
				continue
			}
			if st.Updates != swSt.Updates {
				return fmt.Errorf("psw/%s/w=%d: %d updates, map-core sw %d", core, w, st.Updates, swSt.Updates)
			}
			for _, x := range sys.Order() {
				if !l.Eq(sigma[x], swVals[x]) {
					return fmt.Errorf("psw/%s/w=%d: value of %v = %s, map-core sw %s",
						core, w, x, l.Format(sigma[x]), l.Format(swVals[x]))
				}
			}
		}
	}
	return nil
}

// CheckCoreResume interrupts every global solver under one core, resumes the
// checkpoint under another — all six cross-core directions over map, dense
// and unboxed, at the usual abort points —
// and demands the resumed run reproduce the uninterrupted map-core run's
// Evals, Updates and assignment exactly. Checkpoints store the assignment
// and queue in X-space precisely so they cross cores; this is the verdict
// that keeps that claim honest. codec, when non-nil, additionally pushes
// every checkpoint through the versioned wire format before resuming.
func CheckCoreResume[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, opt Options, codec *solver.Codec[X, D]) error {
	opt = opt.defaults()
	base := solver.Config{MaxEvals: opt.MaxEvals}

	directions := []struct {
		name              string
		interrupt, resume solver.Core
	}{
		{"map→dense", solver.CoreMap, solver.CoreDense},
		{"dense→map", solver.CoreDense, solver.CoreMap},
		{"map→unboxed", solver.CoreMap, solver.CoreUnboxed},
		{"unboxed→map", solver.CoreUnboxed, solver.CoreMap},
		{"dense→unboxed", solver.CoreDense, solver.CoreUnboxed},
		{"unboxed→dense", solver.CoreUnboxed, solver.CoreDense},
	}
	for _, r := range coreRunners(l, sys, init) {
		mc := base
		mc.Core = solver.CoreMap
		ref, refSt, refErr := r.run(mc)
		if refErr != nil {
			if !acceptableAbort(refErr) {
				return fmt.Errorf("%s: unexpected error: %w", r.name, refErr)
			}
			continue // diverged workload: nothing to resume against
		}
		if refSt.Evals < 2 {
			continue
		}
		for _, dir := range directions {
			for _, budget := range abortPoints(refSt.Evals) {
				c := base
				c.Core = dir.interrupt
				c.MaxEvals = budget
				_, _, err := r.run(c)
				if err == nil {
					return fmt.Errorf("%s %s: budget %d of %d did not abort", r.name, dir.name, budget, refSt.Evals)
				}
				cp, ok := solver.CheckpointOf[X, D](err)
				if !ok {
					return fmt.Errorf("%s %s: abort at budget %d carries no checkpoint: %w", r.name, dir.name, budget, err)
				}
				if codec != nil {
					data, merr := solver.MarshalCheckpoint(cp, *codec)
					if merr != nil {
						return fmt.Errorf("%s %s: marshal at budget %d: %w", r.name, dir.name, budget, merr)
					}
					cp, merr = solver.UnmarshalCheckpoint[X, D](data, *codec)
					if merr != nil {
						return fmt.Errorf("%s %s: unmarshal at budget %d: %w", r.name, dir.name, budget, merr)
					}
				}
				rc := base
				rc.Core = dir.resume
				rc.Resume = cp
				got, gotSt, err := r.run(rc)
				if err != nil {
					return fmt.Errorf("%s %s: resume from budget %d failed: %w", r.name, dir.name, budget, err)
				}
				if rep := certify.System(l, sys, got, init); rep.Err() != nil {
					return fmt.Errorf("%s %s: resumed result from budget %d does not certify: %w", r.name, dir.name, budget, rep.Err())
				}
				if gotSt.Evals != refSt.Evals || gotSt.Updates != refSt.Updates {
					return fmt.Errorf("%s %s: resumed from budget %d with evals/updates %d/%d, uninterrupted %d/%d",
						r.name, dir.name, budget, gotSt.Evals, gotSt.Updates, refSt.Evals, refSt.Updates)
				}
				for _, x := range sys.Order() {
					if !l.Eq(got[x], ref[x]) {
						return fmt.Errorf("%s %s: resumed from budget %d: value of %v = %s, uninterrupted %s",
							r.name, dir.name, budget, x, l.Format(got[x]), l.Format(ref[x]))
					}
				}
			}
		}
	}
	return nil
}

// CheckGeneratedCores runs the cross-core verdict on a generated system.
// Errors carry the reproduction recipe.
func CheckGeneratedCores(cfg eqgen.Config, opt Options) error {
	g := eqgen.New(cfg)
	var err error
	switch {
	case g.Interval != nil:
		l := lattice.Ints
		err = CheckCores[int, lattice.Interval](l, g.Interval, eqn.ConstBottom[int, lattice.Interval](l), opt)
	case g.Flat != nil:
		l := eqgen.FlatL
		err = CheckCores[int, lattice.Flat[int64]](l, g.Flat, eqn.ConstBottom[int, lattice.Flat[int64]](l), opt)
	case g.Powerset != nil:
		l := eqgen.PowersetL()
		err = CheckCores[int, lattice.Set[int]](l, g.Powerset, eqn.ConstBottom[int, lattice.Set[int]](l), opt)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", g.Shape.Cfg, err)
	}
	return nil
}

// CheckGeneratedCoreResume runs the cross-core checkpoint/resume verdict on
// a generated system, wiring in the domain's wire-format codec. Errors carry
// the reproduction recipe.
func CheckGeneratedCoreResume(cfg eqgen.Config, opt Options) error {
	g := eqgen.New(cfg)
	var err error
	switch {
	case g.Interval != nil:
		l := lattice.Ints
		codec := ckptcodec.IntervalCodec()
		err = CheckCoreResume[int, lattice.Interval](l, g.Interval, eqn.ConstBottom[int, lattice.Interval](l), opt, &codec)
	case g.Flat != nil:
		l := eqgen.FlatL
		codec := ckptcodec.FlatCodec()
		err = CheckCoreResume[int, lattice.Flat[int64]](l, g.Flat, eqn.ConstBottom[int, lattice.Flat[int64]](l), opt, &codec)
	case g.Powerset != nil:
		l := eqgen.PowersetL()
		codec := ckptcodec.PowersetCodec()
		err = CheckCoreResume[int, lattice.Set[int]](l, g.Powerset, eqn.ConstBottom[int, lattice.Set[int]](l), opt, &codec)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", g.Shape.Cfg, err)
	}
	return nil
}
