package diffsolve

import (
	"fmt"

	"warrow/internal/certify"
	"warrow/internal/ckptcodec"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// CheckResume is the differential verdict for the checkpoint/resume layer.
// For every global solver it interrupts the reference workload at several
// budgets, resumes the checkpoint attached to each abort, and demands that
// the resumed run (a) completes, (b) certifies as a post-solution, and (c)
// reproduces the uninterrupted run's Evals, Updates and assignment exactly
// — interruption must be invisible in the result. The local solvers are
// held to the warm-restart contract instead: the resumed query completes
// and certifies, with no claim on its work counters.
//
// codec, when non-nil, additionally pushes every checkpoint through the
// versioned wire format (Marshal → Unmarshal) before resuming, so the
// serialization layer is covered by the same exactness verdict.
//
// Solvers whose reference run aborts inside the budget (RR and W may
// legitimately diverge with ⊟) are skipped: there is no uninterrupted
// outcome to compare against.
func CheckResume[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, opt Options, codec *solver.Codec[X, D]) error {
	opt = opt.defaults()
	op := solver.Op[X](solver.Warrow[D](l))
	cfg := solver.Config{MaxEvals: opt.MaxEvals}

	type runner struct {
		name string
		run  func(solver.Config) (map[X]D, solver.Stats, error)
	}
	runners := []runner{
		{"rr", func(c solver.Config) (map[X]D, solver.Stats, error) { return solver.RR(sys, l, op, init, c) }},
		{"w", func(c solver.Config) (map[X]D, solver.Stats, error) { return solver.W(sys, l, op, init, c) }},
		{"srr", func(c solver.Config) (map[X]D, solver.Stats, error) { return solver.SRR(sys, l, op, init, c) }},
		{"sw", func(c solver.Config) (map[X]D, solver.Stats, error) { return solver.SW(sys, l, op, init, c) }},
	}
	for _, wk := range opt.Workers {
		wk := wk
		runners = append(runners, runner{fmt.Sprintf("psw/w=%d", wk), func(c solver.Config) (map[X]D, solver.Stats, error) {
			c.Workers = wk
			return solver.PSW(sys, l, op, init, c)
		}})
	}

	for _, r := range runners {
		ref, refSt, refErr := r.run(cfg)
		if refErr != nil {
			if !acceptableAbort(refErr) {
				return fmt.Errorf("%s: unexpected error: %w", r.name, refErr)
			}
			continue // diverged workload: nothing to resume against
		}
		if refSt.Evals < 2 {
			continue
		}
		for _, budget := range abortPoints(refSt.Evals) {
			c := cfg
			c.MaxEvals = budget
			_, _, err := r.run(c)
			if err == nil {
				return fmt.Errorf("%s: budget %d of %d did not abort", r.name, budget, refSt.Evals)
			}
			cp, ok := solver.CheckpointOf[X, D](err)
			if !ok {
				return fmt.Errorf("%s: abort at budget %d carries no checkpoint: %w", r.name, budget, err)
			}
			if codec != nil {
				data, merr := solver.MarshalCheckpoint(cp, *codec)
				if merr != nil {
					return fmt.Errorf("%s: marshal at budget %d: %w", r.name, budget, merr)
				}
				cp, merr = solver.UnmarshalCheckpoint[X, D](data, *codec)
				if merr != nil {
					return fmt.Errorf("%s: unmarshal at budget %d: %w", r.name, budget, merr)
				}
			}
			rc := cfg
			rc.Resume = cp
			got, gotSt, err := r.run(rc)
			if err != nil {
				return fmt.Errorf("%s: resume from budget %d failed: %w", r.name, budget, err)
			}
			if rep := certify.System(l, sys, got, init); rep.Err() != nil {
				return fmt.Errorf("%s: resumed result from budget %d does not certify: %w", r.name, budget, rep.Err())
			}
			if gotSt.Evals != refSt.Evals || gotSt.Updates != refSt.Updates {
				return fmt.Errorf("%s: resumed from budget %d with evals/updates %d/%d, uninterrupted %d/%d",
					r.name, budget, gotSt.Evals, gotSt.Updates, refSt.Evals, refSt.Updates)
			}
			for _, x := range sys.Order() {
				if !l.Eq(got[x], ref[x]) {
					return fmt.Errorf("%s: resumed from budget %d: value of %v = %s, uninterrupted %s",
						r.name, budget, x, l.Format(got[x]), l.Format(ref[x]))
				}
			}
		}
	}

	return checkLocalResume(l, sys, init, opt)
}

// checkLocalResume holds SLR and SLR⁺ to the warm-restart contract: the
// resumed query completes and its result certifies.
func checkLocalResume[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, opt Options) error {
	n := sys.Len()
	if n == 0 {
		return nil
	}
	query := sys.Order()[n-1]
	op := solver.Op[X](solver.Warrow[D](l))
	cfg := solver.Config{MaxEvals: opt.MaxEvals}

	res, err := solver.SLR(sys.AsPure(), l, op, init, query, cfg)
	if err == nil && res.Stats.Evals >= 2 {
		c := cfg
		c.MaxEvals = res.Stats.Evals / 2
		_, aerr := solver.SLR(sys.AsPure(), l, op, init, query, c)
		if cp, ok := solver.CheckpointOf[X, D](aerr); ok {
			rc := cfg
			rc.Resume = cp
			warm, rerr := solver.SLR(sys.AsPure(), l, op, init, query, rc)
			if rerr != nil {
				return fmt.Errorf("slr: warm restart failed: %w", rerr)
			}
			if rep := certify.Partial(l, sys.AsPure(), warm.Values, init); rep.Err() != nil {
				return fmt.Errorf("slr: warm-restarted result does not certify: %w", rep.Err())
			}
		} else if aerr != nil {
			return fmt.Errorf("slr: abort carries no checkpoint: %w", aerr)
		}
	}

	sides := asSides(sys)
	resP, errP := solver.SLRPlus(sides, l, op, init, query, cfg)
	if errP == nil && resP.Stats.Evals >= 2 {
		c := cfg
		c.MaxEvals = resP.Stats.Evals / 2
		_, aerr := solver.SLRPlus(sides, l, op, init, query, c)
		if cp, ok := solver.CheckpointOf[X, D](aerr); ok {
			rc := cfg
			rc.Resume = cp
			warm, rerr := solver.SLRPlus(sides, l, op, init, query, rc)
			if rerr != nil {
				return fmt.Errorf("slr+: warm restart failed: %w", rerr)
			}
			if rep := certify.Sides(l, sides, warm.Values, init); rep.Err() != nil {
				return fmt.Errorf("slr+: warm-restarted result does not certify: %w", rep.Err())
			}
		} else if aerr != nil {
			return fmt.Errorf("slr+: abort carries no checkpoint: %w", aerr)
		}
	}
	return nil
}

// abortPoints picks representative interruption budgets within an
// uninterrupted run of total evaluations: immediately, midway, and on the
// last evaluation.
func abortPoints(total int) []int {
	pts := []int{1, total / 2, total - 1}
	var out []int
	for _, p := range pts {
		if p < 1 || p >= total {
			continue
		}
		dup := false
		for _, q := range out {
			if q == p {
				dup = true
			}
		}
		if !dup {
			out = append(out, p)
		}
	}
	return out
}

// CheckGeneratedResume runs the checkpoint/resume verdict on a generated
// system, wiring in the domain's wire-format codec so every checkpoint also
// round-trips through MarshalCheckpoint. Errors carry the reproduction
// recipe.
func CheckGeneratedResume(cfg eqgen.Config, opt Options) error {
	g := eqgen.New(cfg)
	var err error
	switch {
	case g.Interval != nil:
		l := lattice.Ints
		codec := ckptcodec.IntervalCodec()
		err = CheckResume[int, lattice.Interval](l, g.Interval, eqn.ConstBottom[int, lattice.Interval](l), opt, &codec)
	case g.Flat != nil:
		l := eqgen.FlatL
		codec := ckptcodec.FlatCodec()
		err = CheckResume[int, lattice.Flat[int64]](l, g.Flat, eqn.ConstBottom[int, lattice.Flat[int64]](l), opt, &codec)
	case g.Powerset != nil:
		l := eqgen.PowersetL()
		codec := ckptcodec.PowersetCodec()
		err = CheckResume[int, lattice.Set[int]](l, g.Powerset, eqn.ConstBottom[int, lattice.Set[int]](l), opt, &codec)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", g.Shape.Cfg, err)
	}
	return nil
}
