package diffsolve

import (
	"context"
	"errors"
	"testing"
	"time"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// example1 is the paper's Example 1 over ℕ ∪ {∞} — RR with ⊟ diverges on it.
func example1() *eqn.System[string, lattice.Nat] {
	inc := func(n lattice.Nat) lattice.Nat {
		if n.IsInf() {
			return n
		}
		return lattice.NatOf(n.Val() + 1)
	}
	s := eqn.NewSystem[string, lattice.Nat]()
	s.Define("x1", []string{"x2"}, func(get func(string) lattice.Nat) lattice.Nat {
		return get("x2")
	})
	s.Define("x2", []string{"x3"}, func(get func(string) lattice.Nat) lattice.Nat {
		return inc(get("x3"))
	})
	s.Define("x3", []string{"x1"}, func(get func(string) lattice.Nat) lattice.Nat {
		return get("x1")
	})
	return s
}

// example2 is the paper's Example 2 — W with ⊟ diverges on it.
func example2() *eqn.System[string, lattice.Nat] {
	inc := func(n lattice.Nat) lattice.Nat {
		if n.IsInf() {
			return n
		}
		return lattice.NatOf(n.Val() + 1)
	}
	rhs := func(self, other string) eqn.RHS[string, lattice.Nat] {
		return func(get func(string) lattice.Nat) lattice.Nat {
			return lattice.NatInf.Meet(inc(get(self)), inc(get(other)))
		}
	}
	s := eqn.NewSystem[string, lattice.Nat]()
	s.Define("x1", []string{"x1", "x2"}, rhs("x1", "x2"))
	s.Define("x2", []string{"x1", "x2"}, rhs("x2", "x1"))
	return s
}

func natInit(string) lattice.Nat { return lattice.NatOf(0) }

// findOutcome returns the named outcome, failing the test if absent.
func findOutcome(t *testing.T, outcomes []Outcome[string, lattice.Nat], name string) Outcome[string, lattice.Nat] {
	t.Helper()
	for _, o := range outcomes {
		if o.Solver == name {
			return o
		}
	}
	t.Fatalf("no outcome named %q in %d outcomes", name, len(outcomes))
	panic("unreachable")
}

// TestEscalationExample1: end-to-end on the paper's Example 1 — RR with ⊟
// diverges, the oscillation watchdog fires with a structured report, and
// the escalated rerun on SRR terminates with a certified post-solution.
func TestEscalationExample1(t *testing.T) {
	outcomes := RunAll(lattice.NatInf, example1(), natInit,
		Options{MaxEvals: 100000, MaxFlips: 8, Escalate: true})

	rr := findOutcome(t, outcomes, "rr")
	if rr.Err == nil {
		t.Fatal("RR with ⊟ should diverge on Example 1")
	}
	rep, ok := solver.ReportOf(rr.Err)
	if !ok || rep.Reason != solver.AbortOscillation {
		t.Fatalf("rr report = %+v (ok=%v), want the oscillation watchdog", rep, ok)
	}

	esc := findOutcome(t, outcomes, "rr→srr")
	if esc.EscalatedFrom != "rr" {
		t.Errorf("EscalatedFrom = %q, want rr", esc.EscalatedFrom)
	}
	if esc.Err != nil {
		t.Fatalf("escalated SRR run failed: %v", esc.Err)
	}
	if err := esc.Report.Err(); err != nil {
		t.Fatalf("escalated result did not certify: %v", err)
	}
	for _, x := range []string{"x1", "x2", "x3"} {
		if !esc.Values[x].IsInf() {
			t.Errorf("escalated σ[%s] = %s, want ∞", x, esc.Values[x])
		}
	}
}

// TestEscalationExample2: same flow on Example 2 — W diverges, the workload
// escalates to SW, and the rerun certifies.
func TestEscalationExample2(t *testing.T) {
	outcomes := RunAll(lattice.NatInf, example2(), natInit,
		Options{MaxEvals: 100000, MaxFlips: 8, Escalate: true})

	w := findOutcome(t, outcomes, "w")
	if w.Err == nil {
		t.Fatal("W with ⊟ should diverge on Example 2")
	}
	if _, ok := solver.ReportOf(w.Err); !ok {
		t.Fatalf("w error %v carries no report", w.Err)
	}

	esc := findOutcome(t, outcomes, "w→sw")
	if esc.EscalatedFrom != "w" {
		t.Errorf("EscalatedFrom = %q, want w", esc.EscalatedFrom)
	}
	if esc.Err != nil {
		t.Fatalf("escalated SW run failed: %v", esc.Err)
	}
	if err := esc.Report.Err(); err != nil {
		t.Fatalf("escalated result did not certify: %v", err)
	}
	for _, x := range []string{"x1", "x2"} {
		if !esc.Values[x].IsInf() {
			t.Errorf("escalated σ[%s] = %s, want ∞", x, esc.Values[x])
		}
	}
}

// TestNoEscalationWithoutOptIn: without Escalate, diverging outcomes stay
// as they are and no rerun outcomes appear.
func TestNoEscalationWithoutOptIn(t *testing.T) {
	outcomes := RunAll(lattice.NatInf, example1(), natInit,
		Options{MaxEvals: 2000, MaxFlips: 8})
	for _, o := range outcomes {
		if o.EscalatedFrom != "" {
			t.Errorf("unexpected escalated outcome %q", o.Solver)
		}
	}
}

// TestCheckAcceptsWatchdogAborts: Check treats oscillation and escalated
// outcomes as controlled divergence, not as defects, on both examples.
func TestCheckAcceptsWatchdogAborts(t *testing.T) {
	opt := Options{MaxEvals: 100000, MaxFlips: 8, Escalate: true}
	if err := Check(lattice.NatInf, example1(), natInit, opt); err != nil {
		t.Errorf("example1: %v", err)
	}
	if err := Check(lattice.NatInf, example2(), natInit, opt); err != nil {
		t.Errorf("example2: %v", err)
	}
}

// TestCheckToleratesTimeout: with a wall-clock bound armed, Check must not
// flag schedule-dependent deadline aborts as disagreements.
func TestCheckToleratesTimeout(t *testing.T) {
	opt := Options{MaxEvals: 50_000_000, Timeout: 5 * time.Millisecond}
	if err := Check(lattice.NatInf, example1(), natInit, opt); err != nil {
		t.Errorf("example1 under timeout: %v", err)
	}
}

// TestDeadlineAbortIsAcceptable: acceptableAbort admits every structured
// abort and the legacy sentinel, but not arbitrary errors.
func TestDeadlineAbortIsAcceptable(t *testing.T) {
	if !acceptableAbort(solver.ErrEvalBudget) {
		t.Error("legacy sentinel rejected")
	}
	if !acceptableAbort(&solver.AbortError{Report: solver.AbortReport{Reason: solver.AbortDeadline}}) {
		t.Error("deadline abort rejected")
	}
	if acceptableAbort(errors.New("boom")) {
		t.Error("arbitrary error accepted")
	}
	if acceptableAbort(context.Canceled) {
		t.Error("bare context error accepted — cancellation is a caller decision, not divergence")
	}
}
