package diffsolve

import (
	"testing"

	"warrow/internal/eqgen"
)

// TestCPWClaimLadderOnGeneratedSystems sweeps the CPW verdict — certified
// completion or clean resumable abort, per core and worker count, plus
// cross-core checkpoint resume — over the shared recipe corpus of all three
// domains, monotonic and non-monotonic alike.
func TestCPWClaimLadderOnGeneratedSystems(t *testing.T) {
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for _, dom := range []eqgen.Domain{eqgen.Interval, eqgen.Flat, eqgen.Powerset} {
		dom := dom
		t.Run(dom.String(), func(t *testing.T) {
			t.Parallel()
			for _, cfg := range recipes(dom, seeds) {
				if err := CheckGeneratedCPW(cfg, Options{MaxEvals: 30_000, Workers: []int{1, 2, 4, 8}}); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestCPWClaimLadderOnGiantSCCs points the verdict at the generator's
// giant-SCC shape: a single component holding ≥90% of the unknowns, so the
// whole solve is one contended stratum and the worker ladder actually
// collides on shared unknowns.
func TestCPWClaimLadderOnGiantSCCs(t *testing.T) {
	for _, dom := range []eqgen.Domain{eqgen.Interval, eqgen.Flat, eqgen.Powerset} {
		dom := dom
		t.Run(dom.String(), func(t *testing.T) {
			t.Parallel()
			for seed := uint64(1); seed <= 4; seed++ {
				cfg := eqgen.Config{
					Seed:           seed,
					Dom:            dom,
					N:              32 + int(seed)*8,
					FanIn:          2,
					GiantSCC:       0.9,
					WidenDensity:   0.4,
					NonMonoDensity: 0.2 * float64(seed%2),
				}
				if err := CheckGeneratedCPW(cfg, Options{MaxEvals: 60_000, Workers: []int{1, 2, 4, 8}}); err != nil {
					t.Error(err)
				}
			}
		})
	}
}
