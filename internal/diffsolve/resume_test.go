package diffsolve

import (
	"testing"

	"warrow/internal/eqgen"
)

// TestResumeGeneratedSystems is the checkpoint round-trip sweep: 60 seeded
// generated systems across all three value domains — including
// non-monotonic right-hand sides and forward (acyclic) structure — each
// interrupted at several budgets, serialized through the versioned wire
// format, resumed, certified, and compared bit-for-bit against the
// uninterrupted run. SLR and SLR⁺ warm restarts are certified on every
// system as well.
func TestResumeGeneratedSystems(t *testing.T) {
	opt := Options{MaxEvals: 300_000, Workers: []int{1, 4}}
	count := 0
	for seed := uint64(1); seed <= 20; seed++ {
		for _, dom := range []eqgen.Domain{eqgen.Interval, eqgen.Flat, eqgen.Powerset} {
			cfg := eqgen.Config{Seed: seed, Dom: dom, N: 24}
			if seed%3 == 0 {
				cfg.NonMonoDensity = 0.3
			}
			if seed%4 == 0 {
				cfg.ForwardDensity = 0.6
			}
			if err := CheckGeneratedResume(cfg, opt); err != nil {
				t.Fatalf("seed %d dom %v: %v", seed, dom, err)
			}
			count++
		}
	}
	if count < 50 {
		t.Fatalf("swept only %d systems, want at least 50", count)
	}
}
