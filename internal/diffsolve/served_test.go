package diffsolve

import (
	"net"
	"testing"
	"time"

	"warrow/internal/eqgen"
	"warrow/internal/serve"
)

// servedSolvers is the column under differential test: the preemptible
// exact-resume family, which the daemon may slice at quantum boundaries.
var servedSolvers = []string{"rr", "w", "srr", "sw", "psw"}

// startServedHarness boots an in-process daemon with a small preemption
// quantum — so the long solves in the sweep genuinely checkpoint, park and
// resume — and dials one client.
func startServedHarness(t *testing.T) (*serve.Server, *serve.Client) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(serve.Options{Workers: 2, Queue: 8, Quantum: 64, MaxTimeout: 2 * time.Minute})
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	c, err := serve.Dial(ln.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return srv, c
}

// TestServedBitIdentity sweeps 42 generated systems (14 recipes × 3 domains)
// through a preempting daemon and requires every served solve to be
// bit-identical to its local control run — values, Evals and Updates — for
// all five preemptible solvers, completed and aborted alike.
func TestServedBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("served sweep is not -short work")
	}
	srv, c := startServedHarness(t)

	var recipes []eqgen.Config
	for _, dom := range []eqgen.Domain{eqgen.Interval, eqgen.Flat, eqgen.Powerset} {
		for seed := uint64(1); seed <= 14; seed++ {
			recipes = append(recipes, eqgen.Config{
				Seed: seed, Dom: dom,
				N:              int(20 + seed*9), // 29..146 unknowns: most solves span several quanta
				WidenDensity:   0.5,
				NonMonoDensity: float64(seed%3) * 0.1,
			})
		}
	}
	if len(recipes) < 40 {
		t.Fatalf("sweep too small: %d recipes", len(recipes))
	}
	for i, cfg := range recipes {
		// Every third recipe gets a tight budget, so the served-abort row
		// (preempted solves that run into the client bound) is exercised too.
		maxEvals := 100000
		if i%3 == 2 {
			maxEvals = 75
		}
		if err := CheckServed(c, cfg, servedSolvers, maxEvals); err != nil {
			t.Fatalf("recipe %d: %v", i, err)
		}
	}

	snap := srv.Metrics().Snapshot()
	if snap["eqsolved_preemptions_total"] == 0 {
		t.Error("the sweep never preempted a solve; the bit-identity claim was not tested across checkpoint/resume")
	}
	t.Logf("sweep: %d systems, %d served solves, %d preemptions",
		len(recipes), snap["eqsolved_accepted_total"], snap["eqsolved_preemptions_total"])
}

// TestServedClientResume drives the client-visible resume path on all three
// domains: interrupt at a budget, resume from the returned handle, and
// require bit-identity with an uninterrupted local run.
func TestServedClientResume(t *testing.T) {
	srv, c := startServedHarness(t)
	for _, tc := range []struct {
		cfg    eqgen.Config
		solver string
	}{
		{eqgen.Config{Seed: 21, Dom: eqgen.Interval, N: 80, WidenDensity: 0.5}, "sw"},
		{eqgen.Config{Seed: 22, Dom: eqgen.Flat, N: 80}, "rr"},
		{eqgen.Config{Seed: 23, Dom: eqgen.Powerset, N: 80}, "srr"},
	} {
		if err := CheckServedResume(c, tc.cfg, tc.solver, 60); err != nil {
			t.Errorf("%s on %s: %v", tc.solver, tc.cfg.Dom, err)
		}
	}
	if srv.Metrics().Snapshot()["eqsolved_resumes_total"] != 3 {
		t.Error("daemon did not record the three client resumes")
	}
}
