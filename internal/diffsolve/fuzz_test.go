package diffsolve

import (
	"testing"

	"warrow/internal/certify"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// recipeFromWords decodes a fuzzer-chosen (seed, knobs) pair into an eqgen
// reproduction recipe. Every knob is carved from a bit field of knobs so the
// fuzzer can mutate them independently; eqgen's Defaults() clamps whatever
// comes out, so the full uint64 range is safe.
func recipeFromWords(seed, knobs uint64) eqgen.Config {
	pct := func(bits uint64) float64 { return float64(bits%101) / 100 }
	return eqgen.Config{
		Seed:           seed,
		Dom:            eqgen.Domain(knobs % 3),
		N:              4 + int((knobs>>2)%24),
		FanIn:          int((knobs >> 7) % 5),
		MaxSCC:         1 + int((knobs>>10)%6),
		CycleDensity:   pct(knobs >> 13),
		WidenDensity:   pct(knobs >> 20),
		NonMonoDensity: pct(knobs>>27) / 2,
		ForwardDensity: pct(knobs>>34) / 3,
	}
}

// FuzzSolvers feeds fuzzer-chosen generator recipes through the full
// differential matrix: every terminating solver must certify, and PSW must
// be bit-identical to SW. A crash here is a reproduction recipe — the
// failure message embeds the eqgen.Config that rebuilds the system.
func FuzzSolvers(f *testing.F) {
	f.Add(uint64(1), uint64(0))                      // defaults, interval
	f.Add(uint64(2), uint64(1))                      // flat domain
	f.Add(uint64(3), uint64(2))                      // powerset domain
	f.Add(uint64(7), uint64(0x00_40_00_00_00_28_54)) // non-monotonic interval
	f.Add(uint64(11), uint64(0x09_20_00_32_19_7d))   // forward edges, wide SCCs
	f.Add(uint64(24), uint64(73_424_976))            // slr3 post-solution incomparable to sw's
	f.Fuzz(func(t *testing.T, seed, knobs uint64) {
		cfg := recipeFromWords(seed, knobs)
		if err := CheckGenerated(cfg, Options{MaxEvals: 20_000, Workers: []int{1, 3}}); err != nil {
			t.Fatal(err)
		}
	})
}

// certifyOracle cross-checks certify.System against the independent
// eqn.IsPostSolution oracle on a solver-produced candidate that the fuzzer
// may corrupt: same accept/reject verdict, and on reject the first
// counterexample names the oracle's first violated unknown with evidence
// that actually violates ⊑.
func certifyOracle[X comparable, D any](t *testing.T, l lattice.Lattice[D], sys *eqn.System[X, D], mut uint64, high, tweak D) {
	t.Helper()
	init := eqn.ConstBottom[X, D](l)
	op := solver.Op[X](solver.Warrow[D](l))
	sigma, _, _ := solver.SW(sys, l, op, init, solver.Config{MaxEvals: 20_000})
	order := sys.Order()
	if n := len(order); n > 0 {
		x := order[int(mut%uint64(n))]
		switch (mut >> 32) % 4 {
		case 1:
			sigma[x] = l.Bottom()
		case 2:
			sigma[x] = high
		case 3:
			sigma[x] = tweak
		}
	}
	rep := certify.System(l, sys, sigma, init)
	ox, ok := eqn.IsPostSolution(l, sys, sigma, init)
	if rep.OK() != ok {
		t.Fatalf("certifier says ok=%v, oracle says ok=%v (first bad unknown %v)", rep.OK(), ok, ox)
	}
	if ok {
		return
	}
	v := rep.Violations[0]
	if v.Unknown != ox {
		t.Fatalf("first counterexample names %v, oracle names %v", v.Unknown, ox)
	}
	if v.Kind != certify.NotPost {
		t.Fatalf("violation kind = %v, want NotPost", v.Kind)
	}
	if l.Leq(v.Got, v.Want) {
		t.Fatalf("evidence does not violate ⊑: got=%s want=%s", l.Format(v.Got), l.Format(v.Want))
	}
}

// FuzzCertify fuzzes the certifier itself: generate a system, solve it with
// SW+⊟, optionally corrupt one unknown (to ⊥, to a high element, or to an
// unrelated constant), and demand the certifier agree with the independent
// post-solution oracle — rejecting with precise, ⊑-violating evidence.
func FuzzCertify(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(0))               // untouched solution, must accept
	f.Add(uint64(2), uint64(0), uint64(1)<<32)           // lowered to ⊥
	f.Add(uint64(3), uint64(1), uint64(2)<<32|uint64(4)) // flat, raised high
	f.Add(uint64(5), uint64(2), uint64(3)<<32|uint64(7)) // powerset, tweaked
	f.Fuzz(func(t *testing.T, seed, knobs, mut uint64) {
		cfg := recipeFromWords(seed, knobs)
		g := eqgen.New(cfg)
		switch {
		case g.Interval != nil:
			certifyOracle[int, lattice.Interval](t, lattice.Ints, g.Interval, mut,
				lattice.FullInterval, lattice.Range(-3, 3))
		case g.Flat != nil:
			l := eqgen.FlatL
			certifyOracle[int, lattice.Flat[int64]](t, l, g.Flat, mut,
				l.Top(), lattice.FlatOf(int64(42)))
		case g.Powerset != nil:
			l := eqgen.PowersetL()
			certifyOracle[int, lattice.Set[int]](t, l, g.Powerset, mut,
				l.Top(), lattice.NewSet(3))
		}
	})
}
