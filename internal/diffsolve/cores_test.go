package diffsolve

import (
	"testing"

	"warrow/internal/eqgen"
)

// coreRecipes spans both sides of the dense-compilation threshold
// (denseMinUnknowns = 16): systems from 10 to 39 unknowns, all three
// domains, monotonic and non-monotonic, order-consistent and not. The cores
// are forced explicitly, so the small systems exercise the dense core on
// shapes CoreAuto would leave on the map core.
func coreRecipes(dom eqgen.Domain, seeds int) []eqgen.Config {
	out := make([]eqgen.Config, 0, seeds)
	for seed := uint64(1); seed <= uint64(seeds); seed++ {
		out = append(out, eqgen.Config{
			Seed:           seed,
			Dom:            dom,
			N:              10 + int(seed%30),
			FanIn:          int(seed % 4),
			MaxSCC:         1 + int(seed%6),
			WidenDensity:   0.3 + 0.1*float64(seed%5),
			NonMonoDensity: 0.2 * float64(seed%3),
			ForwardDensity: 0.25 * float64(seed%2),
		})
	}
	return out
}

// TestDenseCoreMatchesMapCoreGenerated is the cross-core property test:
// 72 seeded systems (24 per domain, monotonic and non-monotonic) solved by
// RR, W, SRR and SW on both execution cores must agree on termination
// status, values and every scheduling counter, and PSW at worker counts
// 1, 2, 4 and 8 must match the map-core SW outcome. Run under -race by the
// tier-2 gate.
func TestDenseCoreMatchesMapCoreGenerated(t *testing.T) {
	opt := Options{MaxEvals: 30_000, Workers: []int{1, 2, 4, 8}}
	for _, dom := range []eqgen.Domain{eqgen.Interval, eqgen.Flat, eqgen.Powerset} {
		dom := dom
		t.Run(dom.String(), func(t *testing.T) {
			t.Parallel()
			for _, cfg := range coreRecipes(dom, 24) {
				if err := CheckGeneratedCores(cfg, opt); err != nil {
					t.Error(err)
				}
			}
		})
	}
}

// TestCheckpointResumeCrossesCores interrupts each global solver under one
// core and resumes under the other, in both directions, through the
// versioned wire format — the resumed run must be indistinguishable from
// the uninterrupted one.
func TestCheckpointResumeCrossesCores(t *testing.T) {
	opt := Options{MaxEvals: 30_000}
	for _, dom := range []eqgen.Domain{eqgen.Interval, eqgen.Flat, eqgen.Powerset} {
		dom := dom
		t.Run(dom.String(), func(t *testing.T) {
			t.Parallel()
			for _, cfg := range coreRecipes(dom, 6) {
				if err := CheckGeneratedCoreResume(cfg, opt); err != nil {
					t.Error(err)
				}
			}
		})
	}
}
