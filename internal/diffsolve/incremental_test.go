package diffsolve

import (
	"testing"

	"warrow/internal/eqgen"
)

// incrOpt is the matrix the incremental property tests run under: every
// forced core for the sequential solvers, PSW at 1, 2, 4 and 8 workers.
var incrOpt = Options{MaxEvals: 20_000, Workers: []int{1, 2, 4, 8}}

// incrSweep enumerates the generator recipes of the incremental sweep:
// three shape families per domain — plain monotonic, deliberately
// non-monotonic, and forward-edged with wide SCCs — across enough seeds to
// clear sixty systems total (trimmed under -short).
func incrSweep(t *testing.T) []eqgen.Config {
	seeds := []uint64{1, 2, 3, 4, 5, 6, 7}
	if testing.Short() {
		seeds = seeds[:2]
	}
	var cfgs []eqgen.Config
	for _, dom := range []eqgen.Domain{eqgen.Interval, eqgen.Flat, eqgen.Powerset} {
		for _, seed := range seeds {
			cfgs = append(cfgs,
				eqgen.Config{Seed: seed, Dom: dom, N: 24},
				eqgen.Config{Seed: seed, Dom: dom, N: 18, NonMonoDensity: 0.3},
				eqgen.Config{Seed: seed, Dom: dom, N: 32, MaxSCC: 6, ForwardDensity: 0.3},
			)
		}
	}
	if !testing.Short() && len(cfgs) < 60 {
		t.Fatalf("sweep covers only %d systems, want at least 60", len(cfgs))
	}
	return cfgs
}

// TestIncrementalGenerated sweeps seeded systems through the incremental
// verdict: three edit generations each, every engine of the solver × core ×
// workers matrix bit-identical to its from-scratch control.
func TestIncrementalGenerated(t *testing.T) {
	t.Parallel()
	for _, cfg := range incrSweep(t) {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			t.Parallel()
			if err := CheckGeneratedIncremental(cfg, cfg.Seed*0x9e37+uint64(cfg.Dom), incrOpt); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestIncrementalResumeGenerated is the checkpoint column: incremental
// re-solves interrupted mid-cone must resume — through the wire codec, and
// across execution cores — to the uninterrupted incremental result.
func TestIncrementalResumeGenerated(t *testing.T) {
	t.Parallel()
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, dom := range []eqgen.Domain{eqgen.Interval, eqgen.Flat, eqgen.Powerset} {
		for _, seed := range seeds {
			for _, cfg := range []eqgen.Config{
				{Seed: seed, Dom: dom, N: 24},
				{Seed: seed, Dom: dom, N: 18, NonMonoDensity: 0.25},
			} {
				cfg := cfg
				t.Run(cfg.String(), func(t *testing.T) {
					t.Parallel()
					if err := CheckGeneratedIncrementalResume(cfg, seed^0xd1b54a32d192ed03, incrOpt); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}

// FuzzIncremental feeds fuzzer-chosen (generator recipe, edit seed) pairs
// through the incremental verdict. A crash is a two-part reproduction
// recipe: the failure message embeds the eqgen.Config and the edit seed.
func FuzzIncremental(f *testing.F) {
	f.Add(uint64(1), uint64(0), uint64(42))                      // defaults, interval
	f.Add(uint64(2), uint64(1), uint64(7))                       // flat domain
	f.Add(uint64(3), uint64(2), uint64(99))                      // powerset domain
	f.Add(uint64(7), uint64(0x00_40_00_00_00_28_54), uint64(13)) // non-monotonic interval
	f.Add(uint64(11), uint64(0x09_20_00_32_19_7d), uint64(1234)) // forward edges, wide SCCs
	f.Fuzz(func(t *testing.T, seed, knobs, editSeed uint64) {
		cfg := recipeFromWords(seed, knobs)
		if err := CheckGeneratedIncremental(cfg, editSeed, Options{MaxEvals: 10_000, Workers: []int{1, 3}}); err != nil {
			t.Fatal(err)
		}
	})
}
