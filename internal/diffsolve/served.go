package diffsolve

import (
	"fmt"

	"warrow/internal/ckptcodec"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/serve"
	"warrow/internal/serve/proto"
	"warrow/internal/solver"
)

// This file is the served-vs-local column of the differential harness: the
// same eqgen workload is solved in-process and through a live eqsolved
// daemon, and the two runs must agree bit-for-bit — same termination
// status, same encoded values, same Evals and Updates — even when the
// served solve was preempted at quantum boundaries and resumed from
// checkpoints along the way. The daemon fixes ⊟ with the diffsolve
// conventions (ConstBottom init, PSW with 2 workers), so agreement is exact
// identity, not up-to-post-solution equivalence.

// servedPSWWorkers mirrors the daemon's fixed PSW pool size; the local
// control run must use the same value for the bit-identity claim to hold.
const servedPSWWorkers = 2

// CheckServed solves the recipe with each named solver locally and through
// the client's daemon, and returns the first disagreement. maxEvals bounds
// both sides identically, so budgeted aborts must match too.
func CheckServed(c *serve.Client, cfg eqgen.Config, solvers []string, maxEvals int) error {
	g := eqgen.New(cfg)
	var err error
	switch {
	case g.Flat != nil:
		err = checkServedTyped(c, cfg, g.Flat, eqgen.FlatL, ckptcodec.FlatCodec(), solvers, maxEvals)
	case g.Powerset != nil:
		err = checkServedTyped(c, cfg, g.Powerset, eqgen.PowersetL(), ckptcodec.PowersetCodec(), solvers, maxEvals)
	default:
		err = checkServedTyped(c, cfg, g.Interval, lattice.Ints, ckptcodec.IntervalCodec(), solvers, maxEvals)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", g.Shape.Cfg, err)
	}
	return nil
}

func checkServedTyped[D any](c *serve.Client, cfg eqgen.Config, sys *eqn.System[int, D],
	l lattice.Lattice[D], codec solver.Codec[int, D], solvers []string, maxEvals int) error {

	op := solver.Op[int](solver.Warrow[D](l))
	init := eqn.ConstBottom[int, D](l)
	for _, name := range solvers {
		scfg := solver.Config{MaxEvals: maxEvals}
		if name == "psw" {
			scfg.Workers = servedPSWWorkers
		}
		sigma, st, lerr := runLocal(name, sys, l, op, init, scfg)

		resp, derr := c.Do(&proto.Request{Solver: name, Source: proto.SourceGen, Gen: &cfg, MaxEvals: maxEvals})
		if derr != nil {
			return fmt.Errorf("%s: served request died: %w", name, derr)
		}
		if resp.Status == proto.StatusRejected {
			return fmt.Errorf("%s: served request rejected: %s", name, resp.Reason)
		}

		if lerr != nil {
			lrep, ok := solver.ReportOf(lerr)
			if !ok {
				return fmt.Errorf("%s: local run failed structurally: %w", name, lerr)
			}
			if resp.Status != proto.StatusAborted {
				return fmt.Errorf("%s: local aborted (%s) but served %s", name, lrep.Reason, resp.Status)
			}
			if resp.Abort.Reason != lrep.Reason {
				return fmt.Errorf("%s: abort reason served %s != local %s", name, resp.Abort.Reason, lrep.Reason)
			}
			// Aborted runs stop at the same evaluation count on both sides.
			// Updates are compared only for the sequential solvers: PSW's
			// abort-time update count depends on worker interleaving (the
			// same concession Check makes for psw-vs-sw aborts).
			if resp.Stats.Evals != st.Evals {
				return fmt.Errorf("%s: aborted at %d evals served, %d local", name, resp.Stats.Evals, st.Evals)
			}
			if name != "psw" && resp.Stats.Updates != st.Updates {
				return fmt.Errorf("%s: aborted updates served %d != local %d", name, resp.Stats.Updates, st.Updates)
			}
			continue
		}
		if resp.Status != proto.StatusCompleted {
			return fmt.Errorf("%s: local completed but served %s (%v)", name, resp.Status, resp.Abort)
		}
		if resp.Stats.Evals != st.Evals || resp.Stats.Updates != st.Updates {
			return fmt.Errorf("%s: stats served %d/%d != local %d/%d",
				name, resp.Stats.Evals, resp.Stats.Updates, st.Evals, st.Updates)
		}
		if len(resp.Values) != len(sigma) {
			return fmt.Errorf("%s: served %d values, local %d", name, len(resp.Values), len(sigma))
		}
		for _, x := range sys.Order() {
			want := codec.EncodeD(sigma[x])
			if got := resp.Values[codec.EncodeX(x)]; got != want {
				return fmt.Errorf("%s: value of %d served %q != local %q", name, x, got, want)
			}
		}
	}
	return nil
}

// CheckServedResume interrupts a served solve with a small budget, resumes
// it through the client-visible checkpoint handle (Response.Checkpoint, fed
// back via Request.Checkpoint), and requires the stitched-together result to
// be bit-identical to one uninterrupted local run — values, Evals and
// Updates, with the budget cumulative across the interruption.
func CheckServedResume(c *serve.Client, cfg eqgen.Config, name string, interruptAt int) error {
	g := eqgen.New(cfg)
	var err error
	switch {
	case g.Flat != nil:
		err = checkResumeTyped(c, cfg, g.Flat, eqgen.FlatL, ckptcodec.FlatCodec(), name, interruptAt)
	case g.Powerset != nil:
		err = checkResumeTyped(c, cfg, g.Powerset, eqgen.PowersetL(), ckptcodec.PowersetCodec(), name, interruptAt)
	default:
		err = checkResumeTyped(c, cfg, g.Interval, lattice.Ints, ckptcodec.IntervalCodec(), name, interruptAt)
	}
	if err != nil {
		return fmt.Errorf("%s resume: %w", g.Shape.Cfg, err)
	}
	return nil
}

func checkResumeTyped[D any](c *serve.Client, cfg eqgen.Config, sys *eqn.System[int, D],
	l lattice.Lattice[D], codec solver.Codec[int, D], name string, interruptAt int) error {

	first, err := c.Do(&proto.Request{Solver: name, Source: proto.SourceGen, Gen: &cfg, MaxEvals: interruptAt})
	if err != nil {
		return err
	}
	if first.Status != proto.StatusAborted || first.Abort.Reason != solver.AbortBudget {
		return fmt.Errorf("interrupting solve: %s (want a budget abort at %d evals)", first.Status, interruptAt)
	}
	if first.Checkpoint == "" {
		return fmt.Errorf("interrupted solve carries no checkpoint handle")
	}
	second, err := c.Do(&proto.Request{Solver: name, Source: proto.SourceGen, Gen: &cfg,
		Checkpoint: first.Checkpoint})
	if err != nil {
		return err
	}
	if second.Status != proto.StatusCompleted {
		return fmt.Errorf("resumed solve: %s (%v)", second.Status, second.Abort)
	}

	op := solver.Op[int](solver.Warrow[D](l))
	init := eqn.ConstBottom[int, D](l)
	scfg := solver.Config{}
	if name == "psw" {
		scfg.Workers = servedPSWWorkers
	}
	sigma, st, lerr := runLocal(name, sys, l, op, init, scfg)
	if lerr != nil {
		return fmt.Errorf("local control run: %w", lerr)
	}
	if second.Stats.Evals != st.Evals || second.Stats.Updates != st.Updates {
		return fmt.Errorf("stitched stats %d/%d != uninterrupted local %d/%d",
			second.Stats.Evals, second.Stats.Updates, st.Evals, st.Updates)
	}
	for _, x := range sys.Order() {
		want := codec.EncodeD(sigma[x])
		if got := second.Values[codec.EncodeX(x)]; got != want {
			return fmt.Errorf("value of %d after resume %q != local %q", x, got, want)
		}
	}
	return nil
}

// runLocal dispatches to the named global solver — the in-process control
// the served runs are held against.
func runLocal[D any](name string, sys *eqn.System[int, D], l lattice.Lattice[D],
	op solver.Operator[int, D], init func(int) D, cfg solver.Config) (map[int]D, solver.Stats, error) {
	switch name {
	case "rr":
		return solver.RR(sys, l, op, init, cfg)
	case "w":
		return solver.W(sys, l, op, init, cfg)
	case "srr":
		return solver.SRR(sys, l, op, init, cfg)
	case "sw":
		return solver.SW(sys, l, op, init, cfg)
	case "psw":
		return solver.PSW(sys, l, op, init, cfg)
	case "slr2":
		return solver.SLR2(sys, l, op, init, cfg)
	case "slr3":
		return solver.SLR3(sys, l, op, init, cfg)
	case "slr4":
		return solver.SLR4(sys, l, op, init, cfg)
	default:
		return nil, solver.Stats{}, fmt.Errorf("unknown solver %q", name)
	}
}
