package diffsolve

import (
	"fmt"

	"warrow/internal/certify"
	"warrow/internal/ckptcodec"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/incr"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// This file is the differential verdict for the incremental re-solve engine
// (internal/incr). The claim under test is the engine's exactness contract:
// after any batch of equation redefinitions and initial-value perturbations,
// the merged incremental result is bit-identical — values, and for the
// full-re-solve solvers also Stats — to re-running the same solver from
// scratch on the edited system, for every solver × core × workers
// configuration. The edits come from eqgen.Mutate, so a failing case is a
// complete reproduction recipe: (generator config, edit seed).

// incrGenerations is the number of edit batches CheckIncremental pushes
// through every engine: enough to certify that baselines compound correctly
// (generation k re-solves on top of generation k-1's merged result, not on
// the original solve).
const incrGenerations = 3

// editRNG is a splitmix64 stream for deriving edit batches; deliberately the
// same generator family eqgen uses, duplicated here because eqgen's stream
// is internal to its shapes.
type editRNG struct{ s uint64 }

func (r *editRNG) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *editRNG) intn(n int) int {
	if n <= 1 {
		return 0
	}
	return int(r.next() % uint64(n))
}

// runScratch runs one global solver from scratch with the structured ⊟
// operator — the same dispatch the incremental engine uses, so scratch and
// incremental runs are comparable bit for bit.
func runScratch[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, name string, cfg solver.Config) (map[X]D, solver.Stats, error) {
	op := solver.WarrowOp[X](l)
	switch name {
	case "rr":
		return solver.RR(sys, l, op, init, cfg)
	case "w":
		return solver.W(sys, l, op, init, cfg)
	case "srr":
		return solver.SRR(sys, l, op, init, cfg)
	case "sw":
		return solver.SW(sys, l, op, init, cfg)
	default:
		return solver.PSW(sys, l, op, init, cfg)
	}
}

// incrEngine is one cell of the incremental test matrix: an engine plus the
// solver configuration it always runs under.
type incrEngine[D any] struct {
	name string
	e    *incr.Engine[int, D]
	cfg  solver.Config
	dead bool // diverged (acceptable abort): skipped for the rest of the run
}

// buildIncrMatrix builds the engine matrix over one shared system: RR, W,
// SRR and SW on each forced core, PSW once per worker count (CoreAuto, its
// only core). All engines share the system object, so journaled edits made
// by eqgen.Mutate reach every engine — and every engine exercises the same
// memoized compiled shape, including in-place patching.
func buildIncrMatrix[D any](l lattice.Lattice[D], sys *eqn.System[int, D], opt Options) ([]incrEngine[D], error) {
	init := eqn.ConstBottom[int, D](l)
	cores := []solver.Core{solver.CoreMap, solver.CoreDense, solver.CoreUnboxed}
	var out []incrEngine[D]
	for _, name := range []string{"rr", "w", "srr", "sw"} {
		for _, core := range cores {
			e, err := incr.New(l, sys, init, name)
			if err != nil {
				return nil, err
			}
			cfg := solver.Config{MaxEvals: opt.MaxEvals, Core: core}
			out = append(out, incrEngine[D]{name: name + "/" + core.String(), e: e, cfg: cfg})
		}
	}
	for _, wk := range opt.Workers {
		e, err := incr.New(l, sys, init, "psw")
		if err != nil {
			return nil, err
		}
		cfg := solver.Config{MaxEvals: opt.MaxEvals, Workers: wk}
		out = append(out, incrEngine[D]{name: fmt.Sprintf("psw/w=%d", wk), e: e, cfg: cfg})
	}
	return out, nil
}

// checkIncremental is the generic core of the incremental verdict. For every
// engine in the matrix it demands, per edit generation:
//
//   - the incremental result's values are bit-identical to a from-scratch
//     run of the same solver on the edited system (same core, same workers,
//     same live initial assignment);
//   - the incremental result certifies as a post-solution of the edited
//     system;
//   - the delta accounting is coherent: DirtyUnknowns + ReusedUnknowns is
//     the system size, and for the structured solvers the incremental Evals
//     never exceed the scratch Evals (stratum-compositionality makes the
//     cone re-solve a subset of the scratch work), while for RR and W —
//     which re-solve in full — Stats match scratch exactly;
//   - an incremental abort is only acceptable if the scratch run aborts on
//     the same budget too (the subset property in contrapositive).
//
// Engines whose workload diverges (acceptable abort) are marked dead and
// skipped — with ⊟, RR and W may legitimately diverge, and on deliberately
// non-monotonic systems any solver may.
func checkIncremental[D any](l lattice.Lattice[D], g eqgen.System, sys *eqn.System[int, D], editSeed uint64, opt Options, perturb func(u uint64) D) error {
	opt = opt.defaults()
	engines, err := buildIncrMatrix(l, sys, opt)
	if err != nil {
		return err
	}
	n := sys.Len()

	for i := range engines {
		en := &engines[i]
		if _, err := en.e.Solve(en.cfg); err != nil {
			if acceptableAbort(err) {
				en.dead = true
				continue
			}
			return fmt.Errorf("%s: initial solve: %w", en.name, err)
		}
	}

	r := &editRNG{s: editSeed ^ 0x6a09e667f3bcc909}
	for gen := 0; gen < incrGenerations; gen++ {
		k := 1 + r.intn(8)
		edited := eqgen.Mutate(g, r.next(), k)
		if len(edited) == 0 {
			return fmt.Errorf("gen %d: Mutate produced no edits", gen)
		}
		if r.next()%2 == 0 {
			// Half the generations also perturb one initial value, applied
			// identically to every engine so their live inits stay equal.
			px, pv := r.intn(n), perturb(r.next())
			for i := range engines {
				engines[i].e.Apply(incr.Perturb(px, pv))
			}
		}

		for i := range engines {
			en := &engines[i]
			if en.dead {
				continue
			}
			res, rerr := en.e.Resolve(en.cfg)
			scratch, scratchSt, serr := runScratch(l, sys, en.e.Init(), en.e.SolverName(), en.cfg)
			if rerr != nil {
				if !acceptableAbort(rerr) {
					return fmt.Errorf("%s gen %d: resolve: %w", en.name, gen, rerr)
				}
				// Incremental work is a subset of scratch work, so the
				// scratch run must have hit the same budget.
				if serr == nil {
					return fmt.Errorf("%s gen %d: incremental aborted (%v) but scratch terminated in %d evals",
						en.name, gen, rerr, scratchSt.Evals)
				}
				en.dead = true
				continue
			}
			if serr != nil {
				if !acceptableAbort(serr) {
					return fmt.Errorf("%s gen %d: scratch control: %w", en.name, gen, serr)
				}
				// Scratch diverged where the incremental run terminated —
				// for rr/w the runs are identical, so this cannot happen;
				// for the structured solvers it cannot either (subset).
				return fmt.Errorf("%s gen %d: incremental terminated in %d evals but scratch aborted: %v",
					en.name, gen, res.Stats.Evals, serr)
			}
			if res.DirtyUnknowns+res.ReusedUnknowns != n {
				return fmt.Errorf("%s gen %d: dirty %d + reused %d != n %d",
					en.name, gen, res.DirtyUnknowns, res.ReusedUnknowns, n)
			}
			name := en.e.SolverName()
			if name == "rr" || name == "w" {
				if res.ReusedUnknowns != 0 {
					return fmt.Errorf("%s gen %d: generic solver reported %d reused unknowns", en.name, gen, res.ReusedUnknowns)
				}
				if res.Stats.Evals != scratchSt.Evals || res.Stats.Updates != scratchSt.Updates {
					return fmt.Errorf("%s gen %d: full re-solve evals/updates %d/%d differ from scratch %d/%d",
						en.name, gen, res.Stats.Evals, res.Stats.Updates, scratchSt.Evals, scratchSt.Updates)
				}
			} else {
				if res.Stats.Evals > scratchSt.Evals {
					return fmt.Errorf("%s gen %d: incremental evals %d exceed scratch %d",
						en.name, gen, res.Stats.Evals, scratchSt.Evals)
				}
			}
			for _, x := range sys.Order() {
				if !l.Eq(res.Values[x], scratch[x]) {
					return fmt.Errorf("%s gen %d: value of %v = %s, scratch = %s",
						en.name, gen, x, l.Format(res.Values[x]), l.Format(scratch[x]))
				}
			}
			if rep := certify.System(l, sys, res.Values, en.e.Init()); rep.Err() != nil {
				return fmt.Errorf("%s gen %d: incremental result does not certify: %w", en.name, gen, rep.Err())
			}
		}
	}
	return nil
}

// CheckGeneratedIncremental generates the system for an eqgen reproduction
// recipe and runs the incremental verdict with editSeed-derived edit batches
// — the shared entry point of the property tests and FuzzIncremental. Errors
// carry both halves of the reproduction recipe.
func CheckGeneratedIncremental(cfg eqgen.Config, editSeed uint64, opt Options) error {
	g := eqgen.New(cfg)
	var err error
	switch {
	case g.Interval != nil:
		err = checkIncremental(lattice.Ints, g, g.Interval, editSeed, opt, func(u uint64) lattice.Interval {
			lo := int64(u % 32)
			return lattice.Range(lo, lo+int64((u>>8)%64))
		})
	case g.Flat != nil:
		err = checkIncremental(eqgen.FlatL, g, g.Flat, editSeed, opt, func(u uint64) lattice.Flat[int64] {
			return lattice.FlatOf(int64(u % 9))
		})
	case g.Powerset != nil:
		err = checkIncremental(eqgen.PowersetL(), g, g.Powerset, editSeed, opt, func(u uint64) lattice.Set[int] {
			return lattice.NewSet(int(u%16), int((u>>8)%16))
		})
	}
	if err != nil {
		return fmt.Errorf("%s editSeed=%d: %w", g.Shape.Cfg, editSeed, err)
	}
	return nil
}

// checkIncrementalResume is the checkpoint column of the incremental
// verdict: an incremental re-solve interrupted mid-cone must resume to the
// exact result of an uninterrupted incremental run — which in turn matches a
// from-scratch solve of the edited system. Checkpoints round-trip through
// the wire codec, and every other resume switches execution core, so a
// checkpoint taken on one core restarts the cone on another.
func checkIncrementalResume[D any](l lattice.Lattice[D], g eqgen.System, sys *eqn.System[int, D], editSeed uint64, opt Options, codec solver.Codec[int, D]) error {
	opt = opt.defaults()
	init := eqn.ConstBottom[int, D](l)
	cfg := solver.Config{MaxEvals: opt.MaxEvals}

	// One reference engine plus one engine per abort point, per solver, all
	// created and solved before the edit lands so each holds the same
	// pre-edit baseline. abortPoints yields at most 3 budgets.
	type column struct {
		name   string
		cfg    solver.Config
		ref    *incr.Engine[int, D]
		aborts []*incr.Engine[int, D]
	}
	var cols []column
	for _, name := range []string{"srr", "sw", "psw"} {
		c := column{name: name, cfg: cfg}
		if name == "psw" {
			c.cfg.Workers = 2
			c.name = "psw/w=2"
		}
		var err error
		if c.ref, err = incr.New(l, sys, init, name); err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			e, err := incr.New(l, sys, init, name)
			if err != nil {
				return err
			}
			c.aborts = append(c.aborts, e)
		}
		cols = append(cols, c)
	}
	for _, c := range cols {
		for _, e := range append([]*incr.Engine[int, D]{c.ref}, c.aborts...) {
			if _, err := e.Solve(c.cfg); err != nil {
				if acceptableAbort(err) {
					return nil // diverged workload: nothing to interrupt
				}
				return fmt.Errorf("%s: initial solve: %w", c.name, err)
			}
		}
	}

	r := &editRNG{s: editSeed ^ 0xbb67ae8584caa73b}
	if len(eqgen.Mutate(g, r.next(), 1+r.intn(4))) == 0 {
		return fmt.Errorf("Mutate produced no edits")
	}

	for _, c := range cols {
		refRes, err := c.ref.Resolve(c.cfg)
		if err != nil {
			if acceptableAbort(err) {
				continue // edited workload diverged for this solver
			}
			return fmt.Errorf("%s: reference resolve: %w", c.name, err)
		}
		if refRes.Stats.Evals < 2 {
			continue
		}
		for bi, budget := range abortPoints(refRes.Stats.Evals) {
			e := c.aborts[bi]
			ac := c.cfg
			ac.MaxEvals = budget
			_, aerr := e.Resolve(ac)
			if aerr == nil {
				return fmt.Errorf("%s: budget %d of %d did not abort", c.name, budget, refRes.Stats.Evals)
			}
			cp, ok := solver.CheckpointOf[int, D](aerr)
			if !ok {
				return fmt.Errorf("%s: abort at budget %d carries no checkpoint: %w", c.name, budget, aerr)
			}
			data, merr := solver.MarshalCheckpoint(cp, codec)
			if merr != nil {
				return fmt.Errorf("%s: marshal at budget %d: %w", c.name, budget, merr)
			}
			if cp, merr = solver.UnmarshalCheckpoint[int, D](data, codec); merr != nil {
				return fmt.Errorf("%s: unmarshal at budget %d: %w", c.name, budget, merr)
			}
			rc := c.cfg
			rc.Resume = cp
			if rc.Workers == 0 && bi%2 == 0 {
				// Cross cores on resume: the checkpoint speaks X-space.
				rc.Core = solver.CoreDense
			}
			got, rerr := e.Resolve(rc)
			if rerr != nil {
				return fmt.Errorf("%s: resume from budget %d failed: %w", c.name, budget, rerr)
			}
			if got.Stats.Evals != refRes.Stats.Evals || got.Stats.Updates != refRes.Stats.Updates {
				return fmt.Errorf("%s: resumed from budget %d with evals/updates %d/%d, uninterrupted %d/%d",
					c.name, budget, got.Stats.Evals, got.Stats.Updates, refRes.Stats.Evals, refRes.Stats.Updates)
			}
			if got.DirtyUnknowns != refRes.DirtyUnknowns || got.ConeStrata != refRes.ConeStrata {
				return fmt.Errorf("%s: resumed cone dirty/strata %d/%d differ from uninterrupted %d/%d",
					c.name, got.DirtyUnknowns, got.ConeStrata, refRes.DirtyUnknowns, refRes.ConeStrata)
			}
			for _, x := range sys.Order() {
				if !l.Eq(got.Values[x], refRes.Values[x]) {
					return fmt.Errorf("%s: resumed from budget %d: value of %v = %s, uninterrupted %s",
						c.name, budget, x, l.Format(got.Values[x]), l.Format(refRes.Values[x]))
				}
			}
			if rep := certify.System(l, sys, got.Values, e.Init()); rep.Err() != nil {
				return fmt.Errorf("%s: resumed result from budget %d does not certify: %w", c.name, budget, rep.Err())
			}
		}
		// The uninterrupted incremental result must itself match scratch.
		scratch, _, serr := runScratch(l, sys, c.ref.Init(), c.ref.SolverName(), c.cfg)
		if serr != nil {
			return fmt.Errorf("%s: scratch control: %w", c.name, serr)
		}
		for _, x := range sys.Order() {
			if !l.Eq(refRes.Values[x], scratch[x]) {
				return fmt.Errorf("%s: incremental value of %v = %s, scratch = %s",
					c.name, x, l.Format(refRes.Values[x]), l.Format(scratch[x]))
			}
		}
	}
	return nil
}

// CheckGeneratedIncrementalResume runs the interrupted-incremental verdict
// on a generated system, wiring in the domain's wire-format codec.
func CheckGeneratedIncrementalResume(cfg eqgen.Config, editSeed uint64, opt Options) error {
	g := eqgen.New(cfg)
	var err error
	switch {
	case g.Interval != nil:
		err = checkIncrementalResume(lattice.Ints, g, g.Interval, editSeed, opt, ckptcodec.IntervalCodec())
	case g.Flat != nil:
		err = checkIncrementalResume(eqgen.FlatL, g, g.Flat, editSeed, opt, ckptcodec.FlatCodec())
	case g.Powerset != nil:
		err = checkIncrementalResume(eqgen.PowersetL(), g, g.Powerset, editSeed, opt, ckptcodec.PowersetCodec())
	}
	if err != nil {
		return fmt.Errorf("%s editSeed=%d: %w", g.Shape.Cfg, editSeed, err)
	}
	return nil
}
