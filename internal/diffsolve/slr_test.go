package diffsolve

import (
	"testing"

	"warrow/internal/certify"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// TestSLRFamilyGeneratedSystems is the widening-point family's property
// test: 60 seeded eqgen interval systems — monotonic and non-monotonic,
// with and without order-inconsistent forward edges — solved by SLR2, SLR3
// and SLR4 at all three cores (map, boxed-dense, unboxed). The gates:
//
//   - every terminating run certifies via internal/certify (Lemma 1 — the
//     universal guarantee of the family);
//   - the three cores are bit-identical per solver: same values, same
//     Evals/Updates/Restarts;
//   - a non-terminating run aborts with a classified watchdog report.
//
// The precision partial order against the ⊟-everywhere baseline is
// *recorded*, not gated: selective ∇ placement can land the family on
// post-solutions incomparable to (or locally coarser than) the baseline's
// on arbitrary generated systems — the order is a property of structured
// loop programs, where the WCET experiment and diffsolve's StrictOrder
// option enforce it (see Options.StrictOrder).
func TestSLRFamilyGeneratedSystems(t *testing.T) {
	l := lattice.Ints
	init := eqn.ConstBottom[int, lattice.Interval](l)
	op := solver.Op[int](solver.Warrow[lattice.Interval](l))
	cores := []struct {
		name string
		core solver.Core
	}{
		{"map", solver.CoreMap},
		{"dense", solver.CoreDense},
		{"unboxed", solver.CoreUnboxed},
	}
	family := map[string]func(*eqn.System[int, lattice.Interval], lattice.Lattice[lattice.Interval], solver.Operator[int, lattice.Interval], func(int) lattice.Interval, solver.Config) (map[int]lattice.Interval, solver.Stats, error){
		"slr2": solver.SLR2[int, lattice.Interval],
		"slr3": solver.SLR3[int, lattice.Interval],
		"slr4": solver.SLR4[int, lattice.Interval],
	}

	var leq, above, aborted int
	for _, recipe := range recipes(eqgen.Interval, 60) {
		g := eqgen.New(recipe)
		sys := g.Interval
		base, _, baseErr := solver.SW(sys, l, op, init, solver.Config{MaxEvals: 30_000})
		for fname, run := range family {
			ref, refSt, refErr := run(sys, l, op, init, solver.Config{MaxEvals: 30_000, Core: solver.CoreMap})
			if refErr != nil {
				if !acceptableAbort(refErr) {
					t.Fatalf("%s: %s/map: unclassified error: %v", recipe, fname, refErr)
				}
				aborted++
			} else {
				if rep := certify.System(l, sys, ref, init); !rep.OK() {
					t.Fatalf("%s: %s/map: %v", recipe, fname, rep.Err())
				}
				if baseErr == nil && (fname == "slr3" || fname == "slr4") {
					ok := true
					for _, x := range sys.Order() {
						if !l.Leq(ref[x], base[x]) {
							ok = false
							break
						}
					}
					if ok {
						leq++
					} else {
						above++
					}
				}
			}
			for _, c := range cores[1:] {
				got, gotSt, err := run(sys, l, op, init, solver.Config{MaxEvals: 30_000, Core: c.core})
				if (err == nil) != (refErr == nil) {
					t.Fatalf("%s: %s/%s termination (err=%v) differs from map (err=%v)", recipe, fname, c.name, err, refErr)
				}
				if err != nil {
					continue
				}
				if rep := certify.System(l, sys, got, init); !rep.OK() {
					t.Fatalf("%s: %s/%s: %v", recipe, fname, c.name, rep.Err())
				}
				for _, x := range sys.Order() {
					if !l.Eq(got[x], ref[x]) {
						t.Fatalf("%s: %s/%s: σ[%d]=%s differs from map core's %s",
							recipe, fname, c.name, x, got[x], ref[x])
					}
				}
				if gotSt.Evals != refSt.Evals || gotSt.Updates != refSt.Updates || gotSt.Restarts != refSt.Restarts {
					t.Fatalf("%s: %s/%s: stats (%d/%d/%d) differ from map core (%d/%d/%d)",
						recipe, fname, c.name, gotSt.Evals, gotSt.Updates, gotSt.Restarts,
						refSt.Evals, refSt.Updates, refSt.Restarts)
				}
			}
		}
	}
	t.Logf("SLR3/SLR4 vs SW on generated systems: %d runs pointwise ≤, %d incomparable/coarser; %d aborted runs", leq, above, aborted)
}
