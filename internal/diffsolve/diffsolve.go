// Package diffsolve is the cross-solver differential harness: it runs the
// full solver matrix — RR, W, SRR, SW, PSW (several worker counts), the
// widening-point family SLR2/SLR3/SLR4, SLR and SLR⁺ — on one equation
// system, certifies every terminating result through internal/certify, and
// cross-checks the solver pairs with exact-agreement claims (PSW is
// bit-identical to SW for any worker count) and order claims (SLR3/SLR4 are
// pointwise ≤ SW when both terminate).
//
// The harness is the oracle behind three consumers:
//
//   - property tests that sweep seeded systems from internal/eqgen,
//   - the native fuzz targets FuzzSolvers and FuzzCertify (fuzz_test.go),
//   - ad-hoc debugging of a single reproduction recipe (eqgen.Config).
//
// Divergence is not a failure: RR and W may exhaust their budget with ⊟
// even on monotonic systems (the paper's Examples 1 and 2), and every
// solver may on deliberately non-monotonic ones. A budgeted run that does
// terminate, however, must certify — that is Lemma 1, and it holds per
// solver with no cross-solver assumption. Distinct structured solvers may
// legitimately return *different* post-solutions (they agree only up to
// post-solution ordering), so value equality is asserted only where the
// implementation claims it: SW vs. PSW.
package diffsolve

import (
	"errors"
	"fmt"
	"time"

	"warrow/internal/certify"
	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// Options tunes a differential run.
type Options struct {
	// MaxEvals is the per-solver evaluation budget (default 100 000).
	MaxEvals int
	// Workers lists the PSW worker-pool sizes to cross-check against SW
	// (default 1, 2, 4).
	Workers []int
	// Timeout, when positive, is the per-solver wall-clock bound; a solver
	// that trips it counts as diverged, exactly like a budget abort.
	Timeout time.Duration
	// MaxFlips, when positive, arms the per-solver oscillation watchdog, so
	// ⊟ divergence is caught by its narrow→widen signature instead of by
	// exhausting the whole budget.
	MaxFlips int
	// Escalate reruns the workload of a diverging generic solver (rr, w) on
	// its terminating structured variant (srr, sw) and appends the rerun as
	// an extra outcome named "rr→srr" / "w→sw" with EscalatedFrom set —
	// the graceful-degradation policy of the robustness layer.
	Escalate bool
	// StrictOrder additionally enforces the precision partial order of the
	// widening-point family: SLR3/SLR4 values pointwise ≤ SW's whenever both
	// terminate. The order is a property of structured (loop-shaped) systems
	// — the analysis-derived and WCET suites — not a theorem for arbitrary
	// systems, where selective ∇ placement can land the family on post-
	// solutions incomparable to (or locally coarser than) SW's; leave it off
	// for random fuzz recipes, where certification alone is the gate.
	StrictOrder bool
}

func (o Options) defaults() Options {
	if o.MaxEvals <= 0 {
		o.MaxEvals = 100_000
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4}
	}
	return o
}

// Outcome is one solver's result on the system under test.
type Outcome[X comparable, D any] struct {
	// Solver names the run: rr, w, srr, sw, psw/w=N, slr, slr+.
	Solver string
	// Values is the (possibly partial) assignment the solver returned.
	Values map[X]D
	// Stats is the solver's work record.
	Stats solver.Stats
	// Err is the solver error; an abort matching solver.ErrEvalBudget (or
	// carrying a solver.AbortReport) marks divergence.
	Err error
	// Report is the certification outcome; zero (OK) for diverged runs,
	// which return no result to certify.
	Report certify.Report[X, D]
	// EscalatedFrom names the diverging generic solver whose workload this
	// outcome reran on a terminating structured variant; empty for
	// first-class runs. The Stats of an escalated outcome record the work
	// of the rerun only.
	EscalatedFrom string
}

// RunAll runs the solver matrix with the combined operator ⊟ on a finite
// system and certifies every terminating result: the global solvers through
// certify.System, SLR through certify.Partial, and SLR⁺ (the system viewed
// as side-effecting with no side effects) through certify.Sides. The local
// solvers are queried for the last unknown of the linear order.
func RunAll[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, opt Options) []Outcome[X, D] {
	opt = opt.defaults()
	op := solver.Op[X](solver.Warrow[D](l))
	cfg := solver.Config{MaxEvals: opt.MaxEvals, Timeout: opt.Timeout, MaxFlips: opt.MaxFlips}
	var out []Outcome[X, D]

	global := func(name string, run func() (map[X]D, solver.Stats, error)) Outcome[X, D] {
		sigma, st, err := run()
		o := Outcome[X, D]{Solver: name, Values: sigma, Stats: st, Err: err}
		if err == nil {
			o.Report = certify.System(l, sys, sigma, init)
		}
		out = append(out, o)
		return o
	}
	// escalate reruns a diverged generic solver's workload on its
	// terminating structured variant and records the escalation.
	escalate := func(from Outcome[X, D], name string, run func() (map[X]D, solver.Stats, error)) {
		if !opt.Escalate || from.Err == nil {
			return
		}
		global(from.Solver+"→"+name, run)
		out[len(out)-1].EscalatedFrom = from.Solver
	}
	rr := global("rr", func() (map[X]D, solver.Stats, error) { return solver.RR(sys, l, op, init, cfg) })
	escalate(rr, "srr", func() (map[X]D, solver.Stats, error) { return solver.SRR(sys, l, op, init, cfg) })
	w := global("w", func() (map[X]D, solver.Stats, error) { return solver.W(sys, l, op, init, cfg) })
	escalate(w, "sw", func() (map[X]D, solver.Stats, error) { return solver.SW(sys, l, op, init, cfg) })
	global("srr", func() (map[X]D, solver.Stats, error) { return solver.SRR(sys, l, op, init, cfg) })
	global("sw", func() (map[X]D, solver.Stats, error) { return solver.SW(sys, l, op, init, cfg) })
	for _, w := range opt.Workers {
		w := w
		pcfg := cfg
		pcfg.Workers = w
		global(fmt.Sprintf("psw/w=%d", w), func() (map[X]D, solver.Stats, error) {
			return solver.PSW(sys, l, op, init, pcfg)
		})
	}
	global("slr2", func() (map[X]D, solver.Stats, error) { return solver.SLR2(sys, l, op, init, cfg) })
	global("slr3", func() (map[X]D, solver.Stats, error) { return solver.SLR3(sys, l, op, init, cfg) })
	global("slr4", func() (map[X]D, solver.Stats, error) { return solver.SLR4(sys, l, op, init, cfg) })

	if n := sys.Len(); n > 0 {
		query := sys.Order()[n-1]
		res, err := solver.SLR(sys.AsPure(), l, op, init, query, cfg)
		o := Outcome[X, D]{Solver: "slr", Values: res.Values, Stats: res.Stats, Err: err}
		if err == nil {
			o.Report = certify.Partial(l, sys.AsPure(), res.Values, init)
		}
		out = append(out, o)

		sides := asSides(sys)
		resP, errP := solver.SLRPlus(sides, l, op, init, query, cfg)
		oP := Outcome[X, D]{Solver: "slr+", Values: resP.Values, Stats: resP.Stats, Err: errP}
		if errP == nil {
			oP.Report = certify.Sides(l, sides, resP.Values, init)
		}
		out = append(out, oP)
	}
	return out
}

// asSides views a finite pure system as a side-effecting system with no
// side effects, so SLR⁺ can join the differential matrix.
func asSides[X comparable, D any](sys *eqn.System[X, D]) eqn.Sides[X, D] {
	return func(x X) eqn.SideRHS[X, D] {
		rhs := sys.RHS(x)
		if rhs == nil {
			return nil
		}
		return func(get func(X) D, _ func(X, D)) D { return rhs(get) }
	}
}

// Check runs the matrix and returns the differential verdict:
//
//   - every terminating solver's result must certify (Lemma 1);
//   - PSW must agree with SW bit-for-bit — same termination status, same
//     values, same Evals and Updates — for every tested worker count;
//   - on an exhausted budget, PSW must have stopped at the budget exactly
//     like SW does.
//
// A nil error means the system produced no disagreement.
func Check[X comparable, D any](l lattice.Lattice[D], sys *eqn.System[X, D], init func(X) D, opt Options) error {
	outcomes := RunAll(l, sys, init, opt)
	var sw *Outcome[X, D]
	for i := range outcomes {
		o := &outcomes[i]
		if o.Err != nil && !acceptableAbort(o.Err) {
			return fmt.Errorf("%s: unexpected error: %w", o.Solver, o.Err)
		}
		if o.Err == nil {
			if err := o.Report.Err(); err != nil {
				return fmt.Errorf("%s: %w", o.Solver, err)
			}
		}
		if o.Solver == "sw" {
			sw = o
		}
	}
	if opt.Timeout > 0 {
		// Wall-clock aborts are schedule-dependent, so the PSW ≡ SW
		// bit-identity claims below only hold for deterministic bounds.
		return nil
	}
	for i := range outcomes {
		o := &outcomes[i]
		if len(o.Solver) < 3 || o.Solver[:3] != "psw" {
			continue
		}
		if (o.Err == nil) != (sw.Err == nil) {
			return fmt.Errorf("%s: termination status (err=%v) differs from sw (err=%v)", o.Solver, o.Err, sw.Err)
		}
		if o.Err != nil {
			if o.Stats.Evals != sw.Stats.Evals {
				return fmt.Errorf("%s: stopped at %d evals, sw at %d", o.Solver, o.Stats.Evals, sw.Stats.Evals)
			}
			continue
		}
		if o.Stats.Evals != sw.Stats.Evals || o.Stats.Updates != sw.Stats.Updates {
			return fmt.Errorf("%s: evals/updates %d/%d differ from sw %d/%d",
				o.Solver, o.Stats.Evals, o.Stats.Updates, sw.Stats.Evals, sw.Stats.Updates)
		}
		for _, x := range sys.Order() {
			if !l.Eq(o.Values[x], sw.Values[x]) {
				return fmt.Errorf("%s: value of %v = %s differs from sw = %s",
					o.Solver, x, l.Format(o.Values[x]), l.Format(sw.Values[x]))
			}
		}
	}
	// The widening-point family is *not* bit-pinned to SW: applying ⊟ at
	// fewer points legitimately lands on a different post-solution. The gate
	// is certified-post-solution (above) plus, under StrictOrder, a precision
	// partial order: the restarting members SLR3/SLR4 must be pointwise ≤ the
	// ⊟-everywhere warrow baseline whenever both terminate.
	if opt.StrictOrder && sw != nil && sw.Err == nil {
		for i := range outcomes {
			o := &outcomes[i]
			if (o.Solver != "slr3" && o.Solver != "slr4") || o.Err != nil {
				continue
			}
			for _, x := range sys.Order() {
				if !l.Leq(o.Values[x], sw.Values[x]) {
					return fmt.Errorf("%s: value of %v = %s not ≤ sw's %s (precision order violated)",
						o.Solver, x, l.Format(o.Values[x]), l.Format(sw.Values[x]))
				}
			}
		}
	}
	return nil
}

// acceptableAbort reports whether a solver error is a controlled watchdog
// abort (budget, deadline, oscillation, …) rather than a defect: every
// abort carries a solver.AbortReport, and legacy bare budget sentinels are
// honored too.
func acceptableAbort(err error) bool {
	if errors.Is(err, solver.ErrEvalBudget) {
		return true
	}
	_, ok := solver.ReportOf(err)
	return ok
}

// CheckGenerated generates the system for an eqgen reproduction recipe and
// runs the differential verdict on it — the shared entry point of the
// property tests and the FuzzSolvers target. Errors are prefixed with the
// recipe so every failure is reproducible from its message.
func CheckGenerated(cfg eqgen.Config, opt Options) error {
	g := eqgen.New(cfg)
	var err error
	switch {
	case g.Interval != nil:
		l := lattice.Ints
		err = Check[int, lattice.Interval](l, g.Interval, eqn.ConstBottom[int, lattice.Interval](l), opt)
	case g.Flat != nil:
		l := eqgen.FlatL
		err = Check[int, lattice.Flat[int64]](l, g.Flat, eqn.ConstBottom[int, lattice.Flat[int64]](l), opt)
	case g.Powerset != nil:
		l := eqgen.PowersetL()
		err = Check[int, lattice.Set[int]](l, g.Powerset, eqn.ConstBottom[int, lattice.Set[int]](l), opt)
	}
	if err != nil {
		return fmt.Errorf("%s: %w", g.Shape.Cfg, err)
	}
	return nil
}
