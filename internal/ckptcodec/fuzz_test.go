package ckptcodec

import (
	"testing"

	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// FuzzCkptDecode feeds arbitrary bytes to solver.UnmarshalCheckpoint under
// every committed codec. The daemon accepts checkpoint payloads from
// untrusted clients, so truncated or corrupted checkpoints must produce a
// clean error — never a panic and never a partially-populated checkpoint
// that a later Resume would trust. Successfully decoded checkpoints must
// survive a marshal/unmarshal round trip.
func FuzzCkptDecode(f *testing.F) {
	// Seed the corpus with genuine checkpoints of each domain, so mutations
	// start from the real wire format rather than random noise.
	natCp := &solver.Checkpoint[string, lattice.Nat]{
		Solver: "sw", SysFP: 42, Evals: 7,
		Sigma: []solver.CheckpointEntry[string, lattice.Nat]{{X: "x", V: lattice.NatOf(3)}, {X: "y", V: lattice.NatInfElem}},
		Queue: []string{"x"},
	}
	if data, err := solver.MarshalCheckpoint(natCp, NatCodec()); err == nil {
		f.Add(data)
	}
	ivCp := &solver.Checkpoint[int, lattice.Interval]{
		Solver: "rr", SysFP: 7, Evals: 3, Rounds: 1,
		Sigma: []solver.CheckpointEntry[int, lattice.Interval]{{X: 0, V: lattice.Singleton(5)}, {X: 1, V: lattice.EmptyInterval}},
	}
	if data, err := solver.MarshalCheckpoint(ivCp, IntervalCodec()); err == nil {
		f.Add(data)
	}
	setCp := &solver.Checkpoint[int, lattice.Set[int]]{
		Solver: "psw", Sigma: []solver.CheckpointEntry[int, lattice.Set[int]]{{X: 0, V: lattice.NewSet(1, 2, 3)}},
	}
	if data, err := solver.MarshalCheckpoint(setCp, PowersetCodec()); err == nil {
		f.Add(data)
	}
	f.Add([]byte("warrow-checkpoint v1\n"))
	f.Add([]byte("warrow-checkpoint v99\nsolver sw\n"))
	f.Add([]byte(""))

	f.Fuzz(func(t *testing.T, data []byte) {
		roundTrip(t, data, NatCodec())
		roundTrip(t, data, StringIntervalCodec())
		roundTrip(t, data, IntervalCodec())
		roundTrip(t, data, FlatCodec())
		roundTrip(t, data, PowersetCodec())
	})
}

// roundTrip decodes data under codec; on success the checkpoint must
// re-marshal and decode back without error.
func roundTrip[X comparable, D any](t *testing.T, data []byte, codec solver.Codec[X, D]) {
	cp, err := solver.UnmarshalCheckpoint(data, codec)
	if err != nil {
		return
	}
	re, err := solver.MarshalCheckpoint(cp, codec)
	if err != nil {
		t.Fatalf("decoded checkpoint failed to re-marshal: %v", err)
	}
	back, err := solver.UnmarshalCheckpoint(re, codec)
	if err != nil {
		t.Fatalf("re-marshaled checkpoint failed to decode: %v", err)
	}
	if back.Solver != cp.Solver || back.SysFP != cp.SysFP || back.Evals != cp.Evals || len(back.Sigma) != len(cp.Sigma) {
		t.Fatalf("checkpoint round trip drifted: %+v vs %+v", back, cp)
	}
}
