// Package ckptcodec provides solver checkpoint codecs for the value domains
// of generated constraint systems (internal/eqgen): int unknowns over the
// interval, flat and powerset lattices. It lives outside eqgen so the
// solver's own tests can import eqgen without an import cycle.
package ckptcodec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// This file provides the checkpoint codecs for the generator's three value
// domains, so solver checkpoints over generated systems round-trip through
// the versioned wire format (solver.MarshalCheckpoint). Every encoding is
// canonical — one string per abstract value — which the round-trip and
// golden-format tests rely on.

// IntCodec encodes the unknowns of generated systems (plain ints).
func encodeInt(x int) string { return strconv.Itoa(x) }

func decodeInt(s string) (int, error) { return strconv.Atoi(s) }

// encodeExt renders an extended integer bound.
func encodeExt(e lattice.Ext) string {
	switch {
	case e.IsNegInf():
		return "-inf"
	case e.IsPosInf():
		return "+inf"
	default:
		return strconv.FormatInt(e.Int(), 10)
	}
}

func decodeExt(s string) (lattice.Ext, error) {
	switch s {
	case "-inf":
		return lattice.NegInf, nil
	case "+inf":
		return lattice.PosInf, nil
	default:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return lattice.Ext{}, fmt.Errorf("bad bound %q", s)
		}
		return lattice.Fin(v), nil
	}
}

// EncodeInterval renders an interval as "empty" or "lo..hi" with -inf/+inf
// bounds. It is the value half of IntervalCodec, exported so string-keyed
// callers (the eqsolve CLI) share the exact wire rendering.
func EncodeInterval(v lattice.Interval) string {
	if v.IsEmpty() {
		return "empty"
	}
	return encodeExt(v.Lo) + ".." + encodeExt(v.Hi)
}

// DecodeInterval inverts EncodeInterval.
func DecodeInterval(s string) (lattice.Interval, error) {
	if s == "empty" {
		return lattice.EmptyInterval, nil
	}
	lo, hi, ok := strings.Cut(s, "..")
	if !ok {
		return lattice.Interval{}, fmt.Errorf("bad interval %q", s)
	}
	l, err := decodeExt(lo)
	if err != nil {
		return lattice.Interval{}, err
	}
	h, err := decodeExt(hi)
	if err != nil {
		return lattice.Interval{}, err
	}
	iv := lattice.NewInterval(l, h)
	if iv.IsEmpty() {
		return lattice.Interval{}, fmt.Errorf("bad interval %q: empty bounds", s)
	}
	return iv, nil
}

// IntervalCodec round-trips checkpoints of interval-domain systems.
// Intervals render as "empty" or "lo..hi" with -inf/+inf bounds.
func IntervalCodec() solver.Codec[int, lattice.Interval] {
	return solver.Codec[int, lattice.Interval]{
		EncodeX: encodeInt,
		DecodeX: decodeInt,
		EncodeD: EncodeInterval,
		DecodeD: DecodeInterval,
	}
}

// FlatCodec round-trips checkpoints of flat-domain systems. Values render
// as "bot", "top" or the decimal constant.
func FlatCodec() solver.Codec[int, lattice.Flat[int64]] {
	return solver.Codec[int, lattice.Flat[int64]]{
		EncodeX: encodeInt,
		DecodeX: decodeInt,
		EncodeD: func(v lattice.Flat[int64]) string {
			switch v.Kind {
			case lattice.FlatBot:
				return "bot"
			case lattice.FlatTop:
				return "top"
			default:
				return strconv.FormatInt(v.V, 10)
			}
		},
		DecodeD: func(s string) (lattice.Flat[int64], error) {
			switch s {
			case "bot":
				return lattice.Flat[int64]{Kind: lattice.FlatBot}, nil
			case "top":
				return lattice.Flat[int64]{Kind: lattice.FlatTop}, nil
			default:
				v, err := strconv.ParseInt(s, 10, 64)
				if err != nil {
					return lattice.Flat[int64]{}, fmt.Errorf("bad flat value %q", s)
				}
				return lattice.FlatOf(v), nil
			}
		},
	}
}

// NatCodec round-trips checkpoints of string-keyed ℕ ∪ {∞} systems (the
// eqdsl natinf domain). Values render as "inf" or the decimal value. Shared
// by the eqsolve CLI and the eqsolved daemon, so a checkpoint written by one
// resumes under the other.
func NatCodec() solver.Codec[string, lattice.Nat] {
	return solver.Codec[string, lattice.Nat]{
		EncodeX: func(x string) string { return x },
		DecodeX: func(s string) (string, error) { return s, nil },
		EncodeD: func(v lattice.Nat) string {
			if v.IsInf() {
				return "inf"
			}
			return strconv.FormatUint(v.Val(), 10)
		},
		DecodeD: func(s string) (lattice.Nat, error) {
			if s == "inf" {
				return lattice.NatInfElem, nil
			}
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				return lattice.Nat{}, fmt.Errorf("bad nat value %q", s)
			}
			return lattice.NatOf(v), nil
		},
	}
}

// StringIntervalCodec round-trips checkpoints of string-keyed interval
// systems (the eqdsl interval domain), with the same value rendering as the
// int-keyed IntervalCodec.
func StringIntervalCodec() solver.Codec[string, lattice.Interval] {
	return solver.Codec[string, lattice.Interval]{
		EncodeX: func(x string) string { return x },
		DecodeX: func(s string) (string, error) { return s, nil },
		EncodeD: EncodeInterval,
		DecodeD: DecodeInterval,
	}
}

// PowersetCodec round-trips checkpoints of powerset-domain systems. Sets
// render as their sorted elements separated by spaces; the empty set is the
// empty string.
func PowersetCodec() solver.Codec[int, lattice.Set[int]] {
	return solver.Codec[int, lattice.Set[int]]{
		EncodeX: encodeInt,
		DecodeX: decodeInt,
		EncodeD: func(v lattice.Set[int]) string {
			elems := v.Elems()
			sort.Ints(elems)
			parts := make([]string, len(elems))
			for i, e := range elems {
				parts[i] = strconv.Itoa(e)
			}
			return strings.Join(parts, " ")
		},
		DecodeD: func(s string) (lattice.Set[int], error) {
			if s == "" {
				return lattice.NewSet[int](), nil
			}
			var elems []int
			for _, p := range strings.Fields(s) {
				e, err := strconv.Atoi(p)
				if err != nil {
					return lattice.Set[int]{}, fmt.Errorf("bad set element %q", p)
				}
				elems = append(elems, e)
			}
			return lattice.NewSet(elems...), nil
		},
	}
}
