// Package interp is a concrete interpreter for mini-C. Its purpose is
// validation: executing a program concretely and checking that every value
// a variable actually takes lies inside the interval the abstract
// interpreter computed for it — the soundness property tests in
// internal/analysis build on this.
package interp

import (
	"errors"
	"fmt"

	"warrow/internal/cint"
)

// ErrFuel is returned when execution exceeds its step budget.
var ErrFuel = errors.New("interp: out of fuel")

// Observer is invoked after every store with the variable declaration, its
// new value, and the source position of the statement performing the store
// (function entry for parameter binding); arrays report element writes with
// the array declaration.
type Observer func(v *cint.VarDecl, value int64, pos cint.Pos)

// Interp executes mini-C programs.
type Interp struct {
	prog *cint.Program
	// Fuel bounds executed statements; 0 means a default of one million.
	Fuel int
	// Observe, if set, sees every store.
	Observe Observer

	globals map[string]*cell
	steps   int
}

// cell is a storage location: a scalar, a pointer, or an array.
type cell struct {
	decl *cint.VarDecl
	v    int64
	arr  []int64
	box  *ptrBox // pointer-typed cells store their target here
}

// ptrBox is the value of a pointer-typed cell.
type ptrBox struct {
	target *cell
	idx    int
}

// value is a runtime value: an integer or a pointer to a cell (with an
// optional element index for pointers into arrays).
type value struct {
	i   int64
	ptr *cell
	idx int
}

type frame struct {
	locals map[string]*cell
}

// New returns an interpreter for a checked program.
func New(prog *cint.Program) *Interp {
	return &Interp{prog: prog, Fuel: 1_000_000}
}

// Run executes main() and returns its result.
func (ip *Interp) Run() (ret int64, err error) {
	main, ok := ip.prog.FuncByName["main"]
	if !ok {
		return 0, errors.New("interp: no main function")
	}
	ip.steps = 0
	ip.globals = make(map[string]*cell)
	for _, g := range ip.prog.Globals {
		c := ip.newCell(g)
		if g.Init != nil {
			// Global initializers are checked constant expressions.
			v, e := ip.eval(&frame{}, g.Init)
			if e != nil {
				return 0, e
			}
			c.v = v.i
			ip.observe(g, v.i, g.Pos)
		}
		ip.globals[g.ID] = c
	}
	v, err := ip.call(main, nil)
	if err != nil {
		return 0, err
	}
	return v.i, nil
}

func (ip *Interp) newCell(d *cint.VarDecl) *cell {
	c := &cell{decl: d}
	if d.Type.Kind == cint.TypeArray {
		c.arr = make([]int64, d.Type.Len)
	}
	return c
}

func (ip *Interp) observe(d *cint.VarDecl, v int64, pos cint.Pos) {
	if ip.Observe != nil {
		ip.Observe(d, v, pos)
	}
}

func (ip *Interp) fuel() error {
	ip.steps++
	limit := ip.Fuel
	if limit == 0 {
		limit = 1_000_000
	}
	if ip.steps > limit {
		return ErrFuel
	}
	return nil
}

// call runs fn with the given argument values and returns its result.
func (ip *Interp) call(fn *cint.FuncDecl, args []value) (value, error) {
	fr := &frame{locals: make(map[string]*cell)}
	for i, p := range fn.Params {
		c := ip.newCell(p)
		fr.locals[p.ID] = c
		ip.storeCell(c, args[i])
		if p.Type.Kind == cint.TypeInt {
			ip.observe(p, args[i].i, fn.Pos)
		}
	}
	err := ip.execBlock(fr, fn.Body)
	if err != nil {
		var rs *retErr
		if errors.As(err, &rs) {
			return rs.v, nil
		}
		return value{}, err
	}
	return value{}, nil // fell off the end
}

// retErr carries a return value as an error for clean unwinding.
type retErr struct{ v value }

func (*retErr) Error() string { return "return" }

// storeCell writes a value into a cell; pointer-typed cells keep their
// target in box, everything else in v.
func (ip *Interp) storeCell(c *cell, v value) {
	if c.decl != nil && c.decl.Type.Kind == cint.TypePtr {
		c.box = &ptrBox{target: v.ptr, idx: v.idx}
		return
	}
	c.v = v.i
}

func (ip *Interp) execBlock(fr *frame, blk *cint.BlockStmt) error {
	for _, s := range blk.Stmts {
		if err := ip.exec(fr, s); err != nil {
			return err
		}
	}
	return nil
}

func (ip *Interp) exec(fr *frame, s cint.Stmt) error {
	if err := ip.fuel(); err != nil {
		return err
	}
	switch s := s.(type) {
	case *cint.BlockStmt:
		return ip.execBlock(fr, s)
	case *cint.EmptyStmt:
		return nil
	case *cint.DeclStmt:
		c := ip.newCell(s.Decl)
		fr.locals[s.Decl.ID] = c
		if s.Decl.Init != nil {
			v, err := ip.eval(fr, s.Decl.Init)
			if err != nil {
				return err
			}
			ip.storeCell(c, v)
			ip.observe(s.Decl, v.i, s.Position())
		}
		return nil
	case *cint.AssignStmt:
		var v value
		var err error
		if s.Call != nil {
			v, err = ip.evalCall(fr, s.Call)
		} else {
			v, err = ip.eval(fr, s.Rhs)
		}
		if err != nil {
			return err
		}
		return ip.assign(fr, s.Lhs, v, s.Position())
	case *cint.ExprStmt:
		_, err := ip.evalCall(fr, s.Call)
		return err
	case *cint.IfStmt:
		c, err := ip.eval(fr, s.Cond)
		if err != nil {
			return err
		}
		if truthy(c) {
			return ip.exec(fr, s.Then)
		}
		if s.Else != nil {
			return ip.exec(fr, s.Else)
		}
		return nil
	case *cint.WhileStmt:
		for {
			c, err := ip.eval(fr, s.Cond)
			if err != nil {
				return err
			}
			if !truthy(c) {
				return nil
			}
			if err := ip.loopBody(fr, s.Body); err != nil {
				if errors.Is(err, errBreak) {
					return nil
				}
				return err
			}
		}
	case *cint.DoWhileStmt:
		for {
			if err := ip.loopBody(fr, s.Body); err != nil {
				if errors.Is(err, errBreak) {
					return nil
				}
				return err
			}
			c, err := ip.eval(fr, s.Cond)
			if err != nil {
				return err
			}
			if !truthy(c) {
				return nil
			}
		}
	case *cint.ForStmt:
		if s.Init != nil {
			if err := ip.exec(fr, s.Init); err != nil {
				return err
			}
		}
		for {
			if s.Cond != nil {
				c, err := ip.eval(fr, s.Cond)
				if err != nil {
					return err
				}
				if !truthy(c) {
					return nil
				}
			}
			if err := ip.loopBody(fr, s.Body); err != nil {
				if errors.Is(err, errBreak) {
					return nil
				}
				return err
			}
			if s.Post != nil {
				if err := ip.exec(fr, s.Post); err != nil {
					return err
				}
			}
		}
	case *cint.AssertStmt:
		c, err := ip.eval(fr, s.Cond)
		if err != nil {
			return err
		}
		if !truthy(c) {
			return fmt.Errorf("interp: assertion failed at %s: %s", s.Position(), s.Cond)
		}
		return nil
	case *cint.ReturnStmt:
		var v value
		if s.Value != nil {
			var err error
			v, err = ip.eval(fr, s.Value)
			if err != nil {
				return err
			}
		}
		return &retErr{v: v}
	case *cint.BreakStmt:
		return errBreak
	case *cint.ContinueStmt:
		return errContinue
	default:
		return fmt.Errorf("interp: unhandled statement %T", s)
	}
}

var (
	errBreak    = errors.New("break")
	errContinue = errors.New("continue")
)

// loopBody executes a loop body, absorbing continue.
func (ip *Interp) loopBody(fr *frame, body cint.Stmt) error {
	err := ip.exec(fr, body)
	if errors.Is(err, errContinue) {
		return nil
	}
	return err
}

func truthy(v value) bool {
	if v.ptr != nil {
		return true
	}
	return v.i != 0
}

// lookup resolves a declaration to its cell.
func (ip *Interp) lookup(fr *frame, d *cint.VarDecl) (*cell, error) {
	if c, ok := fr.locals[d.ID]; ok {
		return c, nil
	}
	if c, ok := ip.globals[d.ID]; ok {
		return c, nil
	}
	return nil, fmt.Errorf("interp: unbound variable %s (use before declaration?)", d.ID)
}

// assign stores v into an lvalue.
func (ip *Interp) assign(fr *frame, lhs cint.Expr, v value, pos cint.Pos) error {
	switch l := lhs.(type) {
	case *cint.Ident:
		c, err := ip.lookup(fr, l.Obj)
		if err != nil {
			return err
		}
		ip.storeCell(c, v)
		ip.observe(l.Obj, v.i, pos)
		return nil
	case *cint.UnaryExpr: // *p = v
		pv, err := ip.eval(fr, l.X)
		if err != nil {
			return err
		}
		if pv.ptr == nil {
			return fmt.Errorf("interp: nil pointer dereference at %s", l.Position())
		}
		return ip.storeInto(pv.ptr, pv.idx, v, pos)
	case *cint.IndexExpr: // a[i] = v
		base, idx, err := ip.evalIndex(fr, l)
		if err != nil {
			return err
		}
		return ip.storeInto(base, idx, v, pos)
	default:
		return fmt.Errorf("interp: bad lvalue %T", lhs)
	}
}

// storeInto writes v at an element (or the scalar) of target.
func (ip *Interp) storeInto(target *cell, idx int, v value, pos cint.Pos) error {
	if target.arr != nil {
		if idx < 0 || idx >= len(target.arr) {
			return fmt.Errorf("interp: index %d out of range [0,%d) of %s",
				idx, len(target.arr), target.decl.ID)
		}
		target.arr[idx] = v.i
		ip.observe(target.decl, v.i, pos)
		return nil
	}
	ip.storeCell(target, v)
	ip.observe(target.decl, v.i, pos)
	return nil
}

// evalIndex resolves a[i] to (cell, index).
func (ip *Interp) evalIndex(fr *frame, e *cint.IndexExpr) (*cell, int, error) {
	base, err := ip.eval(fr, e.X)
	if err != nil {
		return nil, 0, err
	}
	idx, err := ip.eval(fr, e.Idx)
	if err != nil {
		return nil, 0, err
	}
	if base.ptr == nil {
		return nil, 0, fmt.Errorf("interp: indexing nil pointer at %s", e.Position())
	}
	return base.ptr, base.idx + int(idx.i), nil
}

func (ip *Interp) evalCall(fr *frame, call *cint.CallExpr) (value, error) {
	args := make([]value, len(call.Args))
	for i, a := range call.Args {
		v, err := ip.eval(fr, a)
		if err != nil {
			return value{}, err
		}
		args[i] = v
	}
	return ip.call(call.Fn, args)
}

func (ip *Interp) eval(fr *frame, e cint.Expr) (value, error) {
	switch x := e.(type) {
	case *cint.IntLit:
		return value{i: x.Value}, nil
	case *cint.Ident:
		c, err := ip.lookup(fr, x.Obj)
		if err != nil {
			return value{}, err
		}
		switch x.Obj.Type.Kind {
		case cint.TypeArray:
			return value{ptr: c}, nil // decay
		case cint.TypePtr:
			if c.box == nil {
				return value{}, nil // null pointer
			}
			return value{ptr: c.box.target, idx: c.box.idx}, nil
		default:
			return value{i: c.v}, nil
		}
	case *cint.UnaryExpr:
		switch x.Op {
		case cint.TokAmp:
			id := x.X.(*cint.Ident)
			c, err := ip.lookup(fr, id.Obj)
			if err != nil {
				return value{}, err
			}
			return value{ptr: c}, nil
		case cint.TokStar:
			pv, err := ip.eval(fr, x.X)
			if err != nil {
				return value{}, err
			}
			if pv.ptr == nil {
				return value{}, fmt.Errorf("interp: nil pointer dereference at %s", x.Position())
			}
			return ip.loadFrom(pv.ptr, pv.idx, x.Position())
		case cint.TokMinus:
			v, err := ip.eval(fr, x.X)
			if err != nil {
				return value{}, err
			}
			return value{i: -v.i}, nil
		case cint.TokNot:
			v, err := ip.eval(fr, x.X)
			if err != nil {
				return value{}, err
			}
			if truthy(v) {
				return value{i: 0}, nil
			}
			return value{i: 1}, nil
		}
	case *cint.BinaryExpr:
		l, err := ip.eval(fr, x.X)
		if err != nil {
			return value{}, err
		}
		// Short-circuit evaluation.
		switch x.Op {
		case cint.TokAndAnd:
			if !truthy(l) {
				return value{i: 0}, nil
			}
			r, err := ip.eval(fr, x.Y)
			if err != nil {
				return value{}, err
			}
			return boolVal(truthy(r)), nil
		case cint.TokOrOr:
			if truthy(l) {
				return value{i: 1}, nil
			}
			r, err := ip.eval(fr, x.Y)
			if err != nil {
				return value{}, err
			}
			return boolVal(truthy(r)), nil
		}
		r, err := ip.eval(fr, x.Y)
		if err != nil {
			return value{}, err
		}
		switch x.Op {
		case cint.TokPlus:
			return value{i: l.i + r.i}, nil
		case cint.TokMinus:
			return value{i: l.i - r.i}, nil
		case cint.TokStar:
			return value{i: l.i * r.i}, nil
		case cint.TokSlash:
			if r.i == 0 {
				return value{}, fmt.Errorf("interp: division by zero at %s", x.Position())
			}
			return value{i: l.i / r.i}, nil
		case cint.TokPercent:
			if r.i == 0 {
				return value{}, fmt.Errorf("interp: modulo by zero at %s", x.Position())
			}
			return value{i: l.i % r.i}, nil
		case cint.TokLt:
			return boolVal(l.i < r.i), nil
		case cint.TokLe:
			return boolVal(l.i <= r.i), nil
		case cint.TokGt:
			return boolVal(l.i > r.i), nil
		case cint.TokGe:
			return boolVal(l.i >= r.i), nil
		case cint.TokEq:
			if x.X.Type().Kind == cint.TypePtr || x.X.Type().Kind == cint.TypeArray {
				return boolVal(l.ptr == r.ptr && l.idx == r.idx), nil
			}
			return boolVal(l.i == r.i), nil
		case cint.TokNe:
			if x.X.Type().Kind == cint.TypePtr || x.X.Type().Kind == cint.TypeArray {
				return boolVal(l.ptr != r.ptr || l.idx != r.idx), nil
			}
			return boolVal(l.i != r.i), nil
		}
	case *cint.IndexExpr:
		base, idx, err := ip.evalIndex(fr, x)
		if err != nil {
			return value{}, err
		}
		return ip.loadFrom(base, idx, x.Position())
	}
	return value{}, fmt.Errorf("interp: unhandled expression %T", e)
}

// loadFrom reads an element (or the scalar) of a cell.
func (ip *Interp) loadFrom(c *cell, idx int, pos cint.Pos) (value, error) {
	if c.arr != nil {
		if idx < 0 || idx >= len(c.arr) {
			return value{}, fmt.Errorf("interp: index %d out of range [0,%d) of %s at %s",
				idx, len(c.arr), c.decl.ID, pos)
		}
		return value{i: c.arr[idx]}, nil
	}
	if c.decl != nil && c.decl.Type.Kind == cint.TypePtr {
		if c.box == nil {
			return value{}, nil
		}
		return value{ptr: c.box.target, idx: c.box.idx}, nil
	}
	return value{i: c.v}, nil
}

func boolVal(b bool) value {
	if b {
		return value{i: 1}
	}
	return value{i: 0}
}
