package interp

import (
	"errors"
	"testing"

	"warrow/internal/cint"
)

func runProgram(t *testing.T, src string) int64 {
	t.Helper()
	ip := New(cint.MustParse(src))
	v, err := ip.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v
}

func TestArithmeticAndLoops(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{`int main() { return 2 + 3 * 4; }`, 14},
		{`int main() { return (2 + 3) * 4; }`, 20},
		{`int main() { return 17 / 5; }`, 3},
		{`int main() { return 17 % 5; }`, 2},
		{`int main() { return -17 % 5; }`, -2},
		{`int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { s = s + i; } return s; }`, 45},
		{`int main() { int i; i = 0; while (i < 7) { i = i + 2; } return i; }`, 8},
		{`int main() { int i; i = 10; do { i = i - 3; } while (i > 0); return i; }`, -2},
		{`int main() { if (1 < 2 && 3 != 4) { return 1; } return 0; }`, 1},
		{`int main() { if (0 || !1) { return 1; } return 2; }`, 2},
		{`int main() { int i; i = 0; while (1) { i = i + 1; if (i == 5) { break; } } return i; }`, 5},
		{`int main() { int i; int s; s = 0; for (i = 0; i < 10; i = i + 1) { if (i % 2 == 0) { continue; } s = s + 1; } return s; }`, 5},
	}
	for _, c := range cases {
		if got := runProgram(t, c.src); got != c.want {
			t.Errorf("%q = %d, want %d", c.src, got, c.want)
		}
	}
}

func TestFunctionsAndRecursion(t *testing.T) {
	src := `
int fac(int n) {
    int r;
    if (n <= 1) { return 1; }
    r = fac(n - 1);
    return n * r;
}
int main() { int x; x = fac(6); return x; }`
	if got := runProgram(t, src); got != 720 {
		t.Errorf("fac(6) = %d", got)
	}
}

func TestGlobalsAndArrays(t *testing.T) {
	src := `
int g = 5;
int a[4];
int main() {
    int i;
    for (i = 0; i < 4; i = i + 1) {
        a[i] = i * i;
    }
    g = g + a[3];
    return g;
}`
	if got := runProgram(t, src); got != 14 {
		t.Errorf("got %d, want 14", got)
	}
}

func TestPointers(t *testing.T) {
	src := `
void set(int *p, int v) { *p = v; }
int main() {
    int x; int y;
    int *q;
    x = 1; y = 2;
    q = &x;
    set(q, 10);
    q = &y;
    set(q, 20);
    return x + y;
}`
	if got := runProgram(t, src); got != 30 {
		t.Errorf("got %d, want 30", got)
	}
}

func TestPointerIntoArray(t *testing.T) {
	src := `
int buf[8];
int main() {
    int *p;
    p = buf;
    *p = 7;
    p[3] = 9;
    return buf[0] + buf[3];
}`
	if got := runProgram(t, src); got != 16 {
		t.Errorf("got %d, want 16", got)
	}
}

func TestPointerToPointer(t *testing.T) {
	src := `
int main() {
    int x;
    int *p;
    int **pp;
    x = 3;
    p = &x;
    pp = &p;
    **pp = 42;
    return x;
}`
	if got := runProgram(t, src); got != 42 {
		t.Errorf("got %d, want 42", got)
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct {
		name, src string
	}{
		{"div by zero", `int main() { int z; z = 0; return 1 / z; }`},
		{"mod by zero", `int main() { int z; z = 0; return 1 % z; }`},
		{"nil deref", `int main() { int *p; return *p; }`},
		{"index out of range", `int a[2]; int main() { return a[5]; }`},
	}
	for _, c := range cases {
		ip := New(cint.MustParse(c.src))
		if _, err := ip.Run(); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

func TestFuel(t *testing.T) {
	ip := New(cint.MustParse(`int main() { int i; i = 0; while (1) { i = i + 1; } return i; }`))
	ip.Fuel = 1000
	_, err := ip.Run()
	if !errors.Is(err, ErrFuel) {
		t.Fatalf("err = %v, want ErrFuel", err)
	}
}

func TestObserver(t *testing.T) {
	var stores []int64
	ip := New(cint.MustParse(`int main() { int i; for (i = 0; i < 3; i = i + 1) { ; } return i; }`))
	ip.Observe = func(v *cint.VarDecl, val int64, _ cint.Pos) {
		if v.Name == "i" {
			stores = append(stores, val)
		}
	}
	if _, err := ip.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2, 3}
	if len(stores) != len(want) {
		t.Fatalf("stores = %v, want %v", stores, want)
	}
	for i := range want {
		if stores[i] != want[i] {
			t.Fatalf("stores = %v, want %v", stores, want)
		}
	}
}

func TestShortCircuitSkipsSideConditions(t *testing.T) {
	// && must not evaluate the second operand when the first is false:
	// here the second operand would divide by zero.
	src := `int main() { int z; z = 0; if (0 != 0 && 1 / z > 0) { return 1; } return 2; }`
	if got := runProgram(t, src); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
}

func TestPointerGlobalsAndChaining(t *testing.T) {
	src := `
int x;
int *gp;
int main() {
    int v;
    gp = &x;
    *gp = 11;
    v = *gp;
    return v + x;
}`
	if got := runProgram(t, src); got != 22 {
		t.Errorf("got %d, want 22", got)
	}
}

func TestPointerComparisonRuntime(t *testing.T) {
	src := `
int main() {
    int a; int b;
    int *p; int *q;
    p = &a;
    q = &a;
    if (p == q) { b = 1; } else { b = 2; }
    q = &b;
    if (p != q) { b = b + 10; }
    return b;
}`
	if got := runProgram(t, src); got != 11 {
		t.Errorf("got %d, want 11", got)
	}
}

func TestArrayElementPointerWrite(t *testing.T) {
	src := `
int buf[4];
int main() {
    int *p;
    int i;
    p = buf;
    for (i = 0; i < 4; i = i + 1) {
        p[i] = i * i;
    }
    return buf[3];
}`
	if got := runProgram(t, src); got != 9 {
		t.Errorf("got %d, want 9", got)
	}
}

func TestVoidFunctionAndFallOffEnd(t *testing.T) {
	src := `
int g = 0;
void bump() { g = g + 1; }
int noret(int x) { if (x > 0) { return x; } }
int main() {
    int r;
    bump();
    bump();
    r = noret(0); // falls off the end: result is unspecified (0 here)
    return g + r;
}`
	if got := runProgram(t, src); got != 2 {
		t.Errorf("got %d, want 2", got)
	}
}

func TestNegativeIndexError(t *testing.T) {
	ip := New(cint.MustParse(`int a[3]; int main() { int i; i = -1; return a[i]; }`))
	if _, err := ip.Run(); err == nil {
		t.Fatal("negative index should error")
	}
}

func TestGlobalInitializerExpression(t *testing.T) {
	if got := runProgram(t, `int g = 3 * 5 - 1; int main() { return g; }`); got != 14 {
		t.Errorf("got %d, want 14", got)
	}
}

func TestNoMainError(t *testing.T) {
	ip := New(cint.MustParse(`int f() { return 1; }`))
	if _, err := ip.Run(); err == nil {
		t.Fatal("missing main should error")
	}
}
