package wcet

// The embedded suite. Each program is a mini-C reimplementation of the
// like-named Mälardalen WCET kernel: same loop structure and global usage,
// simplified arithmetic (mini-C has no bitwise operators; shifts appear as
// *2 and /2, masks as %).
var suite = []Benchmark{
	{Name: "fac", Src: `
// fac: recursive factorial, summed over a small range. The global
// highest tracks the largest input handled so far.
int s = 0;
int highest = 0;

int fac(int n) {
    int r;
    if (n == 0) { return 1; }
    r = fac(n - 1);
    return n * r;
}

int main() {
    int i;
    int f;
    int chk;
    for (i = 0; i <= 5; i = i + 1) {
        f = fac(i);
        s = s + f;
        highest = i;
    }
    chk = highest;
    return s + chk;
}
`},

	{Name: "fibcall", Src: `
// fibcall: iterative Fibonacci over a range of inputs; the globals record
// the result and the last input processed.
int fibresult = 0;
int lastinput = 0;

int fib(int n) {
    int i;
    int fnew; int fold; int temp;
    fnew = 1; fold = 0;
    for (i = 2; i <= n; i = i + 1) {
        temp = fnew;
        fnew = fnew + fold;
        fold = temp;
    }
    return fnew;
}

int main() {
    int a;
    int r;
    int chk;
    for (a = 10; a <= 30; a = a + 5) {
        r = fib(a);
        fibresult = r;
        lastinput = a;
    }
    chk = lastinput;
    return fibresult + chk;
}
`},

	{Name: "bs", Src: `
// bs: binary search over a global table of 15 entries.
int data[15];
int found = 0;

int binary_search(int x) {
    int fvalue; int mid; int up; int low;
    low = 0;
    up = 14;
    fvalue = -1;
    while (low <= up) {
        mid = (low + up) / 2;
        if (data[mid] == x) {
            up = low - 1;
            fvalue = mid;
            found = found + 1;
        } else {
            if (data[mid] > x) {
                up = mid - 1;
            } else {
                low = mid + 1;
            }
        }
    }
    return fvalue;
}

int main() {
    int i; int r;
    for (i = 0; i < 15; i = i + 1) {
        data[i] = i * 10;
    }
    r = binary_search(8);
    return r;
}
`},

	{Name: "cnt", Src: `
// cnt: count and sum positive entries of a 10x10 matrix.
int array[100];
int postotal = 0;
int poscnt = 0;

void initialize() {
    int i; int j; int seed;
    seed = 0;
    for (i = 0; i < 10; i = i + 1) {
        for (j = 0; j < 10; j = j + 1) {
            seed = (seed * 133 + 81) % 8095;
            array[i * 10 + j] = seed % 100;
        }
    }
}

void sum() {
    int i; int j; int v;
    for (i = 0; i < 10; i = i + 1) {
        for (j = 0; j < 10; j = j + 1) {
            v = array[i * 10 + j];
            if (v >= 0) {
                postotal = postotal + v;
                poscnt = poscnt + 1;
            }
        }
    }
}

int main() {
    initialize();
    sum();
    return postotal;
}
`},

	{Name: "insertsort", Src: `
// insertsort: insertion sort of an 11-element global array.
int a[11];

int main() {
    int i; int j; int key;
    for (i = 0; i < 11; i = i + 1) {
        a[i] = 11 - i;
    }
    i = 1;
    while (i < 11) {
        key = a[i];
        j = i - 1;
        while (j >= 0 && a[j] > key) {
            a[j + 1] = a[j];
            j = j - 1;
        }
        a[j + 1] = key;
        i = i + 1;
    }
    return a[0];
}
`},

	{Name: "bsort", Src: `
// bsort: bubble sort of a 100-element global array.
int arr[100];
int sorted = 0;

void init() {
    int i;
    for (i = 0; i < 100; i = i + 1) {
        arr[i] = 100 - i;
    }
}

void bubble() {
    int i; int j; int temp; int swapped;
    for (i = 0; i < 99; i = i + 1) {
        swapped = 0;
        for (j = 0; j < 99 - i; j = j + 1) {
            if (arr[j] > arr[j + 1]) {
                temp = arr[j];
                arr[j] = arr[j + 1];
                arr[j + 1] = temp;
                swapped = swapped + 1;
            }
        }
        if (swapped == 0) {
            sorted = i + 1;
            i = 99;
        }
    }
}

int main() {
    init();
    bubble();
    return arr[0];
}
`},

	{Name: "duff", Src: `
// duff: copying loop with a remainder prologue (Duff's device flattened).
int source[100];
int target[100];
int copied = 0;

void duffcopy(int len) {
    int i; int rem;
    rem = len % 8;
    i = 0;
    while (i < rem) {
        target[i] = source[i];
        copied = copied + 1;
        i = i + 1;
    }
    while (i < len) {
        target[i] = source[i];
        target[i + 1] = source[i + 1];
        target[i + 2] = source[i + 2];
        target[i + 3] = source[i + 3];
        target[i + 4] = source[i + 4];
        target[i + 5] = source[i + 5];
        target[i + 6] = source[i + 6];
        target[i + 7] = source[i + 7];
        copied = copied + 8;
        i = i + 8;
    }
}

int main() {
    int k;
    for (k = 0; k < 100; k = k + 1) {
        source[k] = k;
    }
    duffcopy(43);
    return target[0];
}
`},

	{Name: "expint", Src: `
// expint: series computation with a triangular loop nest; rounds records
// the outer iteration reached.
int result = 0;
int rounds = 0;

int expint(int n, int x) {
    int i; int ii; int del;
    int a; int b; int c; int d; int h;
    b = x + n;
    c = 2000000;
    d = 30000000 / b;
    h = d;
    for (i = 1; i <= 100; i = i + 1) {
        a = -i * (n - 1 + i);
        b = b + 2;
        d = 10000000 / (a * d + b);
        c = b + 10000000 / (a * c);
        del = c * d;
        h = h * del / 10000;
        if (del < 10001 && del > 9999) {
            return h;
        }
        for (ii = 1; ii < i; ii = ii + 1) {
            result = result + ii;
        }
        rounds = i;
    }
    return h;
}

int main() {
    int r; int chk;
    r = expint(50, 1);
    result = r;
    chk = rounds;
    return r + chk;
}
`},

	{Name: "fir", Src: `
// fir: finite impulse response filter over a global signal.
int in[64];
int out[64];
int coef[8];
int acc_hi = 0;

int lastidx = 0;

void fir_filter() {
    int i; int j; int acc;
    for (i = 7; i < 64; i = i + 1) {
        acc = 0;
        for (j = 0; j < 8; j = j + 1) {
            acc = acc + coef[j] * in[i - j];
        }
        out[i] = acc / 256;
        if (acc > acc_hi) {
            acc_hi = acc;
        }
        lastidx = i;
    }
}

int main() {
    int k;
    for (k = 0; k < 64; k = k + 1) {
        in[k] = k % 16;
    }
    for (k = 0; k < 8; k = k + 1) {
        coef[k] = k + 1;
    }
    fir_filter();
    k = lastidx;
    return out[63] + k;
}
`},

	{Name: "crc", Src: `
// crc: cyclic redundancy check with bit operations spelled as %2 and /2.
int icrc = 0;

int crc_byte(int crc, int onech) {
    int i; int ans; int topbit;
    ans = crc + onech;
    for (i = 0; i < 8; i = i + 1) {
        topbit = ans / 32768;
        ans = (ans * 2) % 65536;
        if (topbit % 2 == 1) {
            ans = ans - 4129;
            if (ans < 0) { ans = ans + 65536; }
        }
    }
    return ans;
}

int bytes_done = 0;

int main() {
    int n; int c; int ch; int chk;
    c = 0;
    for (n = 0; n < 40; n = n + 1) {
        ch = (n * 7) % 256;
        c = crc_byte(c, ch);
        bytes_done = n;
    }
    icrc = c;
    chk = bytes_done;
    return c + chk;
}
`},

	{Name: "matmult", Src: `
// matmult: 20x20 integer matrix multiplication into a global.
int matA[400];
int matB[400];
int matC[400];
int maxcell = 0;

void initmat() {
    int i; int j; int seed;
    seed = 1;
    for (i = 0; i < 20; i = i + 1) {
        for (j = 0; j < 20; j = j + 1) {
            seed = (seed * 3 + 1) % 10;
            matA[i * 20 + j] = seed;
            matB[i * 20 + j] = (seed + j) % 10;
        }
    }
}

int rowsdone = 0;

void multiply() {
    int i; int j; int k; int sum;
    for (i = 0; i < 20; i = i + 1) {
        for (j = 0; j < 20; j = j + 1) {
            sum = 0;
            for (k = 0; k < 20; k = k + 1) {
                sum = sum + matA[i * 20 + k] * matB[k * 20 + j];
            }
            matC[i * 20 + j] = sum;
            if (sum > maxcell) {
                maxcell = sum;
            }
        }
        rowsdone = i;
    }
}

int main() {
    int chk;
    initmat();
    multiply();
    chk = rowsdone;
    return matC[0] + chk;
}
`},

	{Name: "ns", Src: `
// ns: search in a 4-dimensional array (5x5x5x5), flattened.
int keys[625];
int answer[625];
int hits = 0;

int foo(int x) {
    int i; int j; int k; int l;
    for (i = 0; i < 5; i = i + 1) {
        for (j = 0; j < 5; j = j + 1) {
            for (k = 0; k < 5; k = k + 1) {
                for (l = 0; l < 5; l = l + 1) {
                    if (keys[i * 125 + j * 25 + k * 5 + l] == x) {
                        hits = hits + 1;
                        return answer[i * 125 + j * 25 + k * 5 + l];
                    }
                }
            }
        }
    }
    return -1;
}

int main() {
    int m; int r;
    for (m = 0; m < 625; m = m + 1) {
        keys[m] = m % 400;
        answer[m] = m;
    }
    r = foo(123);
    return r;
}
`},

	{Name: "prime", Src: `
// prime: trial-division primality testing over a range.
int primecount = 0;
int lastprime = 0;

int divides(int n, int m) {
    int r;
    r = m % n;
    if (r == 0) { return 1; }
    return 0;
}

int prime(int n) {
    int i; int d;
    if (n < 2) { return 0; }
    if (n % 2 == 0) {
        if (n == 2) { return 1; }
        return 0;
    }
    i = 3;
    while (i * i <= n) {
        d = divides(i, n);
        if (d == 1) { return 0; }
        i = i + 2;
    }
    return 1;
}

int main() {
    int n; int p;
    for (n = 0; n < 200; n = n + 1) {
        p = prime(n);
        if (p == 1) {
            primecount = primecount + 1;
            lastprime = n;
        }
    }
    return lastprime;
}
`},

	{Name: "sqrt", Src: `
// sqrt: integer square root by bounded Newton iteration.
int sqrtresult = 0;

int isqrt(int x) {
    int guess; int next; int iter;
    if (x <= 0) { return 0; }
    guess = x;
    iter = 0;
    while (iter < 20) {
        next = (guess + x / guess) / 2;
        if (next >= guess) {
            return guess;
        }
        guess = next;
        iter = iter + 1;
    }
    return guess;
}

int tested = 0;

int main() {
    int i; int r; int acc; int chk;
    acc = 0;
    for (i = 1; i <= 50; i = i + 1) {
        r = isqrt(i * i);
        acc = acc + r;
        sqrtresult = r;
        tested = i;
    }
    chk = tested;
    return acc + chk;
}
`},

	{Name: "janne_complex", Src: `
// janne_complex: two interlocked loops whose bounds depend on each other —
// the canonical hard case for loop-bound analysis. The globals record the
// iteration count and the last outer state.
int iters = 0;
int last_a = 0;

int complex(int a, int b) {
    while (a < 30) {
        while (b < a) {
            if (b > 5) {
                b = b * 3;
            } else {
                b = b + 2;
            }
            if (b >= 10 && b <= 12) {
                a = a + 10;
            } else {
                a = a + 1;
            }
            iters = iters + 1;
        }
        last_a = a;
        a = a + 2;
        b = b - 10;
    }
    return last_a;
}

int main() {
    int a; int b; int answer;
    a = 1;
    b = 1;
    answer = complex(a, b);
    return answer;
}
`},

	{Name: "jfdctint", Src: `
// jfdctint: integer forward DCT over an 8x8 block (row and column passes).
int block[64];
int dcmax = 0;
int colpass = 0;

void jpeg_fdct() {
    int i; int tmp0; int tmp1; int tmp2; int tmp3;
    for (i = 0; i < 8; i = i + 1) {
        tmp0 = block[i * 8 + 0] + block[i * 8 + 7];
        tmp1 = block[i * 8 + 1] + block[i * 8 + 6];
        tmp2 = block[i * 8 + 2] + block[i * 8 + 5];
        tmp3 = block[i * 8 + 3] + block[i * 8 + 4];
        block[i * 8 + 0] = (tmp0 + tmp3) * 4;
        block[i * 8 + 2] = (tmp1 - tmp2) * 4;
        block[i * 8 + 4] = (tmp0 - tmp3) * 4;
        block[i * 8 + 6] = (tmp1 + tmp2) * 4;
    }
    for (i = 0; i < 8; i = i + 1) {
        tmp0 = block[0 * 8 + i] + block[7 * 8 + i];
        tmp1 = block[1 * 8 + i] + block[6 * 8 + i];
        block[0 * 8 + i] = (tmp0 + tmp1) / 8;
        block[4 * 8 + i] = (tmp0 - tmp1) / 8;
        if (block[0 * 8 + i] > dcmax) {
            dcmax = block[0 * 8 + i];
        }
        colpass = i;
    }
}

int main() {
    int k;
    for (k = 0; k < 64; k = k + 1) {
        block[k] = (k * 3) % 256 - 128;
    }
    jpeg_fdct();
    k = colpass;
    return block[0] + k;
}
`},

	{Name: "fdct", Src: `
// fdct: fast DCT variant with scaled arithmetic.
int dct[64];
int spectral = 0;
int rowsdone = 0;

void fdct(int shift) {
    int i; int x0; int x1; int x2; int x3;
    for (i = 0; i < 8; i = i + 1) {
        x0 = dct[i * 8] + dct[i * 8 + 7];
        x1 = dct[i * 8] - dct[i * 8 + 7];
        x2 = dct[i * 8 + 3] + dct[i * 8 + 4];
        x3 = dct[i * 8 + 3] - dct[i * 8 + 4];
        dct[i * 8] = (x0 + x2) / shift;
        dct[i * 8 + 4] = (x0 - x2) / shift;
        dct[i * 8 + 2] = (x1 * 181) / 128 / shift;
        dct[i * 8 + 6] = (x3 * 181) / 128 / shift;
        spectral = spectral + dct[i * 8];
        rowsdone = i;
    }
}

int main() {
    int k;
    for (k = 0; k < 64; k = k + 1) {
        dct[k] = k % 64;
    }
    fdct(2);
    k = rowsdone;
    return dct[0] + k;
}
`},

	{Name: "lcdnum", Src: `
// lcdnum: map digits to 7-segment codes via an if-chain in a loop.
int out = 0;

int num_to_lcd(int a) {
    if (a == 0) { return 63; }
    if (a == 1) { return 6; }
    if (a == 2) { return 91; }
    if (a == 3) { return 79; }
    if (a == 4) { return 102; }
    if (a == 5) { return 109; }
    if (a == 6) { return 125; }
    if (a == 7) { return 7; }
    if (a == 8) { return 127; }
    if (a == 9) { return 111; }
    return 0;
}

int main() {
    int i; int n; int seg;
    n = 0;
    for (i = 0; i < 10; i = i + 1) {
        seg = num_to_lcd(i);
        if (i < 5) {
            n = n + seg % 16;
        } else {
            n = n + seg / 16;
        }
        out = n;
    }
    return out;
}
`},

	{Name: "ud", Src: `
// ud: LU decomposition and back substitution on a 5x5 system.
int amat[25];
int bvec[5];
int xvec[5];
int pivots = 0;
int lastrow = 0;

int ludcmp(int n) {
    int i; int j; int k; int w;
    for (i = 0; i < n; i = i + 1) {
        for (j = i + 1; j <= n; j = j + 1) {
            w = amat[j * 5 + i];
            if (amat[i * 5 + i] != 0) {
                w = w / amat[i * 5 + i];
                pivots = pivots + 1;
            }
            for (k = i + 1; k <= n; k = k + 1) {
                amat[j * 5 + k] = amat[j * 5 + k] - w * amat[i * 5 + k];
            }
            amat[j * 5 + i] = w;
        }
    }
    for (i = 1; i <= n; i = i + 1) {
        w = bvec[i];
        for (j = 0; j < i; j = j + 1) {
            w = w - amat[i * 5 + j] * bvec[j];
        }
        bvec[i] = w;
    }
    for (i = n; i >= 0; i = i - 1) {
        w = bvec[i];
        for (j = i + 1; j <= n; j = j + 1) {
            w = w - amat[i * 5 + j] * xvec[j];
        }
        if (amat[i * 5 + i] != 0) {
            xvec[i] = w / amat[i * 5 + i];
        }
        lastrow = i;
    }
    return lastrow;
}

int main() {
    int i; int j; int r;
    for (i = 0; i < 5; i = i + 1) {
        bvec[i] = i + 1;
        for (j = 0; j < 5; j = j + 1) {
            amat[i * 5 + j] = 1 + i + j;
        }
        amat[i * 5 + i] = amat[i * 5 + i] + 10;
    }
    r = ludcmp(4);
    return xvec[0] + r;
}
`},

	{Name: "edn", Src: `
// edn: a batch of small vector kernels (dot product, saturated add, IIR).
int va[200];
int vb[200];
int vout[200];
int gsum = 0;

void vec_mpy(int scale) {
    int i;
    for (i = 0; i < 150; i = i + 1) {
        vout[i] = vout[i] + (va[i] * scale) / 32768;
    }
}

int mac(int n) {
    int i; int acc;
    acc = 0;
    for (i = 0; i < n; i = i + 1) {
        acc = acc + va[i] * vb[i];
        if (acc > 1000000) { acc = 1000000; }
    }
    gsum = acc;
    return acc;
}

void iir(int n) {
    int i; int state;
    state = 0;
    for (i = 0; i < n; i = i + 1) {
        state = (state * 3) / 4 + va[i];
        vout[i] = state;
    }
}

int main() {
    int k; int m;
    for (k = 0; k < 200; k = k + 1) {
        va[k] = k % 32;
        vb[k] = (200 - k) % 32;
    }
    vec_mpy(4096);
    m = mac(150);
    iir(100);
    return m;
}
`},

	{Name: "statemate", Src: `
// statemate: a generated state machine stepping through modes, with the
// mode stored in a global.
int mode = 0;
int ticks = 0;
int errors = 0;

void step(int input) {
    if (mode == 0) {
        if (input > 0) { mode = 1; }
    } else {
        if (mode == 1) {
            if (input > 10) { mode = 2; } else { if (input < 0) { mode = 0; } }
        } else {
            if (mode == 2) {
                if (input % 2 == 0) { mode = 3; }
            } else {
                if (mode == 3) {
                    if (input < 5) { mode = 0; } else { mode = 2; }
                } else {
                    errors = errors + 1;
                    mode = 0;
                }
            }
        }
    }
    ticks = ticks + 1;
}

int main() {
    int t; int inp;
    for (t = 0; t < 1000; t = t + 1) {
        inp = (t * 13) % 17 - 3;
        step(inp);
    }
    return mode;
}
`},

	{Name: "qsort-exam", Src: `
// qsort-exam: in-place partition sort with explicit index stacks. All
// invariants are local index arithmetic — the benchmark that shows no
// improvement in Fig. 7.
int arr[20];

int main() {
    int lostack[20];
    int histack[20];
    int top; int lo; int hi; int i; int j; int pivot; int tmp;
    for (i = 0; i < 20; i = i + 1) {
        arr[i] = (i * 7) % 20;
    }
    top = 0;
    lostack[0] = 0;
    histack[0] = 19;
    while (top >= 0) {
        lo = lostack[top];
        hi = histack[top];
        top = top - 1;
        if (lo < hi) {
            pivot = arr[hi];
            i = lo - 1;
            for (j = lo; j < hi; j = j + 1) {
                if (arr[j] <= pivot) {
                    i = i + 1;
                    tmp = arr[i]; arr[i] = arr[j]; arr[j] = tmp;
                }
            }
            tmp = arr[i + 1]; arr[i + 1] = arr[hi]; arr[hi] = tmp;
            if (top < 17) {
                top = top + 1;
                lostack[top] = lo;
                histack[top] = i;
                top = top + 1;
                lostack[top] = i + 2;
                histack[top] = hi;
            }
        }
    }
    return arr[0];
}
`},

	{Name: "ndes", Src: `
// ndes: rounds of a DES-like bit shuffle using modular arithmetic.
int keybits[64];
int datum = 0;

int shuffle(int v, int round) {
    int i; int acc;
    acc = v;
    for (i = 0; i < 16; i = i + 1) {
        acc = (acc * 2 + keybits[(i + round) % 64]) % 65536;
        if (acc % 2 == 1) {
            acc = acc + 32768;
            if (acc >= 65536) { acc = acc - 65536; }
        }
    }
    return acc;
}

int main() {
    int r; int v; int k;
    for (k = 0; k < 64; k = k + 1) {
        keybits[k] = (k * 11) % 2;
    }
    v = 12345;
    for (r = 0; r < 16; r = r + 1) {
        v = shuffle(v, r);
    }
    datum = v;
    return v;
}
`},

	{Name: "nsichneu-lite", Src: `
// nsichneu-lite: a Petri-net simulation slice — many guarded global
// updates per iteration (the original is ~4000 lines of such blocks).
int P1 = 1; int P2 = 0; int P3 = 0; int P4 = 0;
int T_count = 0;

void fire() {
    if (P1 >= 1 && P2 < 3) {
        P1 = P1 - 1;
        P2 = P2 + 1;
        T_count = T_count + 1;
    }
    if (P2 >= 2 && P3 < 4) {
        P2 = P2 - 2;
        P3 = P3 + 1;
        T_count = T_count + 1;
    }
    if (P3 >= 1 && P4 < 2) {
        P3 = P3 - 1;
        P4 = P4 + 1;
        T_count = T_count + 1;
    }
    if (P4 >= 2) {
        P4 = P4 - 2;
        P1 = P1 + 1;
        T_count = T_count + 1;
    }
}

int steps = 0;

int main() {
    int i; int chk;
    for (i = 0; i < 500; i = i + 1) {
        fire();
        steps = i;
        if (P1 == 0 && P2 == 0 && P3 == 0 && P4 == 0) {
            i = 500;
        }
    }
    chk = steps;
    return T_count + chk;
}
`},

	{Name: "adpcm-lite", Src: `
// adpcm-lite: ADPCM encoder inner loop with quantization tables.
int steptable[16];
int encoded[128];
int clip = 0;

int encode(int sample, int state) {
    int diff; int code; int step;
    step = steptable[state % 16];
    diff = sample - state * 4;
    if (diff < 0) {
        code = 8;
        diff = -diff;
    } else {
        code = 0;
    }
    if (diff >= step) {
        code = code + 4;
        diff = diff - step;
    }
    if (diff >= step / 2) {
        code = code + 2;
        diff = diff - step / 2;
    }
    if (diff >= step / 4) {
        code = code + 1;
    }
    if (code > 15) {
        code = 15;
        clip = clip + 1;
    }
    return code;
}

int main() {
    int i; int st; int c;
    for (i = 0; i < 16; i = i + 1) {
        steptable[i] = 7 + i * 5;
    }
    st = 0;
    for (i = 0; i < 128; i = i + 1) {
        c = encode((i * 37) % 256 - 128, st);
        encoded[i] = c;
        st = (st + c) % 16;
    }
    return encoded[127];
}
`},
	{Name: "select", Src: `
// select: k-th smallest element by repeated partitioning.
int arr[20];
int passes = 0;

int kth(int k) {
    int lo; int hi; int i; int j; int pivot; int tmp;
    lo = 0;
    hi = 19;
    while (lo < hi) {
        pivot = arr[k];
        i = lo;
        j = hi;
        while (i <= j) {
            while (arr[i] < pivot) { i = i + 1; }
            while (pivot < arr[j]) { j = j - 1; }
            if (i <= j) {
                tmp = arr[i]; arr[i] = arr[j]; arr[j] = tmp;
                i = i + 1;
                j = j - 1;
            }
        }
        if (j < k) { lo = i; }
        if (k < i) { hi = j; }
        passes = passes + 1;
    }
    return arr[k];
}

int main() {
    int m; int r; int chk;
    for (m = 0; m < 20; m = m + 1) {
        arr[m] = (m * 13) % 20;
    }
    r = kth(10);
    chk = passes;
    return r + chk;
}
`},

	{Name: "minver-lite", Src: `
// minver-lite: 3x3 matrix inversion by Gauss-Jordan (fixed-point scaled).
int mat[9];
int inv[9];
int det = 0;
int col_done = 0;

int minver() {
    int i; int j; int k; int pivot; int w;
    for (i = 0; i < 9; i = i + 1) {
        inv[i] = 0;
    }
    inv[0] = 1000; inv[4] = 1000; inv[8] = 1000;
    for (k = 0; k < 3; k = k + 1) {
        pivot = mat[k * 3 + k];
        if (pivot == 0) { return -1; }
        for (j = 0; j < 3; j = j + 1) {
            mat[k * 3 + j] = mat[k * 3 + j] * 1000 / pivot;
            inv[k * 3 + j] = inv[k * 3 + j] * 1000 / pivot;
        }
        for (i = 0; i < 3; i = i + 1) {
            if (i != k) {
                w = mat[i * 3 + k];
                for (j = 0; j < 3; j = j + 1) {
                    mat[i * 3 + j] = mat[i * 3 + j] - w * mat[k * 3 + j] / 1000;
                    inv[i * 3 + j] = inv[i * 3 + j] - w * inv[k * 3 + j] / 1000;
                }
            }
        }
        col_done = k;
    }
    return 0;
}

int main() {
    int r; int chk;
    mat[0] = 2000; mat[1] = 300; mat[2] = 500;
    mat[3] = 100;  mat[4] = 4000; mat[5] = 600;
    mat[6] = 700;  mat[7] = 800; mat[8] = 5000;
    r = minver();
    chk = col_done;
    return inv[0] + r + chk;
}
`},

	{Name: "qurt-lite", Src: `
// qurt-lite: quadratic root classification with integer discriminants.
int real_roots = 0;
int complex_roots = 0;
int last_d = 0;

int classify(int a, int b, int c) {
    int d;
    d = b * b - 4 * a * c;
    if (d > 0) {
        real_roots = real_roots + 2;
        return 2;
    }
    if (d == 0) {
        real_roots = real_roots + 1;
        return 1;
    }
    complex_roots = complex_roots + 2;
    return 0;
}

int main() {
    int a; int b; int n; int v; int chk;
    n = 0;
    for (a = 1; a <= 10; a = a + 1) {
        for (b = -10; b <= 10; b = b + 1) {
            v = classify2(a, b);
            n = n + v;
        }
    }
    chk = last_d;
    return n + chk;
}

int classify2(int a, int b) {
    int r;
    r = classify(a, b, 3);
    last_d = b;
    return r;
}
`},

	{Name: "cover", Src: `
// cover: many small switch-like decision chains (branch coverage kernel).
int hits[10];
int total = 0;

int swi(int c) {
    if (c == 0) { return 1; }
    if (c == 1) { return 3; }
    if (c == 2) { return 5; }
    if (c == 3) { return 7; }
    if (c == 4) { return 9; }
    if (c == 5) { return 11; }
    if (c == 6) { return 13; }
    if (c == 7) { return 15; }
    if (c == 8) { return 17; }
    return 19;
}

int main() {
    int i; int c; int v; int chk;
    for (i = 0; i < 120; i = i + 1) {
        c = i % 10;
        v = swi(c);
        hits[c] = hits[c] + 1;
        total = total + v;
    }
    chk = hits[0];
    return total + chk;
}
`},

	{Name: "recursion", Src: `
// recursion: mutually recursive even/odd with an accumulator global.
int calls = 0;
int deepest = 0;

// Mutual recursion needs no prototypes: name resolution is whole-program.
int isEven(int n) {
    int r;
    calls = calls + 1;
    if (n == 0) { return 1; }
    r = isOdd(n - 1);
    return r;
}

int isOdd(int n) {
    int r;
    calls = calls + 1;
    if (n == 0) { return 0; }
    r = isEven(n - 1);
    return r;
}

int main() {
    int i; int e; int acc; int chk;
    acc = 0;
    for (i = 0; i <= 12; i = i + 1) {
        e = isEven(i);
        acc = acc + e;
        deepest = i;
    }
    chk = deepest;
    return acc + chk;
}
`},

	{Name: "compress-lite", Src: `
// compress-lite: run-length encoding of a generated buffer.
int input[128];
int output[256];
int outlen = 0;

void rle() {
    int i; int run; int v;
    i = 0;
    while (i < 128) {
        v = input[i];
        run = 1;
        while (i + run < 128 && input[i + run] == v && run < 255) {
            run = run + 1;
        }
        output[outlen % 256] = run;
        outlen = outlen + 1;
        output[outlen % 256] = v;
        outlen = outlen + 1;
        i = i + run;
    }
}

int main() {
    int k; int chk;
    for (k = 0; k < 128; k = k + 1) {
        input[k] = (k / 16) % 4;
    }
    rle();
    chk = outlen;
    return output[0] + chk;
}
`},
	{Name: "st", Src: `
// st: two-pass statistics (sum, mean, variance, correlation) over global
// arrays, scaled integer arithmetic.
int dataA[100];
int dataB[100];
int sumA = 0;
int sumB = 0;
int meanA = 0;
int meanB = 0;
int varA = 0;
int corr = 0;
int samples = 0;

void initialize() {
    int i; int seed;
    seed = 1;
    for (i = 0; i < 100; i = i + 1) {
        seed = (seed * 133 + 81) % 8095;
        dataA[i] = seed % 100;
        dataB[i] = (seed / 7) % 100;
        samples = i;
    }
}

void sums() {
    int i;
    for (i = 0; i < 100; i = i + 1) {
        sumA = sumA + dataA[i];
        sumB = sumB + dataB[i];
    }
    meanA = sumA / 100;
    meanB = sumB / 100;
}

void variance() {
    int i; int dA; int dB;
    for (i = 0; i < 100; i = i + 1) {
        dA = dataA[i] - meanA;
        dB = dataB[i] - meanB;
        varA = varA + dA * dA / 100;
        corr = corr + dA * dB / 100;
    }
}

int main() {
    int chk;
    initialize();
    sums();
    variance();
    chk = samples;
    return corr + chk;
}
`},
}
