// Package wcet embeds a suite of mini-C benchmark programs modelled on the
// Mälardalen WCET benchmarks used in the paper's Fig. 7 experiment: small,
// loop-intensive kernels (binary search, sorting, CRC, filters, matrix
// multiplication, …) that read and write global state from bounded loops —
// the pattern on which intertwined ⊟ iteration recovers precision that the
// classical two-phase regime gives up on flow-insensitive globals.
//
// The original benchmarks are real C; these are reimplementations of the
// same kernels in mini-C (see DESIGN.md for the substitution argument).
package wcet

import (
	"sort"
	"strings"

	"warrow/internal/cint"
)

// Benchmark is one embedded program.
type Benchmark struct {
	// Name matches the Mälardalen kernel the program is modelled on.
	Name string
	// Src is the mini-C source.
	Src string
}

// LOC counts non-blank source lines.
func (b Benchmark) LOC() int {
	n := 0
	for _, line := range strings.Split(b.Src, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// Parse parses the benchmark; the suite is tested to always parse.
func (b Benchmark) Parse() (*cint.Program, error) { return cint.Parse(b.Src) }

// All returns the suite sorted by increasing size (the x-axis of Fig. 7).
func All() []Benchmark {
	out := make([]Benchmark, len(suite))
	copy(out, suite)
	sort.Slice(out, func(i, j int) bool {
		if li, lj := out[i].LOC(), out[j].LOC(); li != lj {
			return li < lj
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// ByName returns the named benchmark.
func ByName(name string) (Benchmark, bool) {
	for _, b := range suite {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}
