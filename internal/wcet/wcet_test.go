package wcet

import (
	"testing"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
)

// TestAllBenchmarksParse: every embedded benchmark lexes, parses and
// type-checks.
func TestAllBenchmarksParse(t *testing.T) {
	if len(All()) < 20 {
		t.Fatalf("suite has %d benchmarks, want >= 20", len(All()))
	}
	for _, b := range All() {
		if _, err := b.Parse(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
		}
		if b.LOC() < 10 {
			t.Errorf("%s: suspiciously small (%d LOC)", b.Name, b.LOC())
		}
	}
}

// TestAllBenchmarksAnalyzeWithWarrow: the ⊟-solver terminates on every
// benchmark under the Fig. 7 configuration (context-insensitive locals,
// flow-insensitive globals) and reaches main.
func TestAllBenchmarksAnalyzeWithWarrow(t *testing.T) {
	for _, b := range All() {
		ast, err := b.Parse()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		res, err := analysis.Run(cfg.Build(ast), analysis.Options{
			Context:  analysis.NoContext,
			Op:       analysis.OpWarrow,
			MaxEvals: 5_000_000,
		})
		if err != nil {
			t.Errorf("%s: ⊟-solver diverged: %v (stats %+v)", b.Name, err, res.Stats)
			continue
		}
		if !res.Reachable("main") {
			t.Errorf("%s: main unreachable", b.Name)
		}
	}
}

// TestAllBenchmarksAnalyzeTwoPhase: the two-phase baseline also terminates
// (systems are monotonic without context sensitivity).
func TestAllBenchmarksAnalyzeTwoPhase(t *testing.T) {
	for _, b := range All() {
		ast, err := b.Parse()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if _, err := analysis.Run(cfg.Build(ast), analysis.Options{
			Context:  analysis.NoContext,
			Op:       analysis.OpTwoPhase,
			MaxEvals: 5_000_000,
		}); err != nil {
			t.Errorf("%s: two-phase diverged: %v", b.Name, err)
		}
	}
}

// TestSortedBySize: All returns the suite ordered by LOC, like the x-axis
// of Fig. 7.
func TestSortedBySize(t *testing.T) {
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].LOC() > all[i].LOC() {
			t.Errorf("suite not sorted: %s (%d) before %s (%d)",
				all[i-1].Name, all[i-1].LOC(), all[i].Name, all[i].LOC())
		}
	}
}

// TestByName: lookup works and misses are reported.
func TestByName(t *testing.T) {
	if _, ok := ByName("bs"); !ok {
		t.Error("bs should exist")
	}
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Error("lookup of missing benchmark should fail")
	}
}
