package wcet

import (
	"testing"

	"warrow/internal/cint"
)

// TestSuiteRoundTripsThroughPrinter: every benchmark survives
// parse → print → reparse → print with a stable result — a broad
// property test of both the parser and the printer.
func TestSuiteRoundTripsThroughPrinter(t *testing.T) {
	for _, b := range All() {
		p1, err := cint.Parse(b.Src)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		out1 := cint.Print(p1)
		p2, err := cint.Parse(out1)
		if err != nil {
			t.Fatalf("%s: reparse failed: %v", b.Name, err)
		}
		if out2 := cint.Print(p2); out1 != out2 {
			t.Errorf("%s: printing unstable", b.Name)
		}
	}
}
