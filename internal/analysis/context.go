package analysis

import (
	"strings"

	"warrow/internal/cint"
	"warrow/internal/lattice"
)

// ContextPolicy selects how calling contexts are formed for
// interprocedural analysis.
type ContextPolicy int

// Context policies.
const (
	// NoContext analyzes each function once, merging all call sites —
	// the "without context" configuration of Table 1. The resulting
	// constraint system is monotonic.
	NoContext ContextPolicy = iota
	// BucketContext distinguishes calls by a finite abstraction of the
	// integer arguments (sign buckets of the bounds). The context depends
	// non-monotonically on computed values — the paper's central
	// motivation — while the context space stays finite, so ⊟-solvers
	// terminate. This is the "with context" configuration of Table 1.
	BucketContext
	// FullContext distinguishes calls by the exact argument intervals.
	// Maximal precision, but the set of contexts — and hence unknowns —
	// may grow without bound; use with an evaluation budget.
	FullContext
)

// String renders the policy.
func (p ContextPolicy) String() string {
	switch p {
	case NoContext:
		return "none"
	case BucketContext:
		return "bucket"
	case FullContext:
		return "full"
	default:
		return "?"
	}
}

// bucketBound classifies an extended bound into a small finite alphabet.
func bucketBound(e lattice.Ext) string {
	switch {
	case e.IsNegInf():
		return "-inf"
	case e.IsPosInf():
		return "+inf"
	case e.Int() < 0:
		return "neg"
	case e.Int() == 0:
		return "0"
	case e.Int() <= 16:
		return "small"
	default:
		return "big"
	}
}

// bucket renders a finite abstraction of an interval.
func bucket(v lattice.Interval) string {
	if v.IsEmpty() {
		return "bot"
	}
	return bucketBound(v.Lo) + ".." + bucketBound(v.Hi)
}

// makeContext renders the calling context string for a call to fn whose
// integer parameters receive the given argument intervals (indexed like
// fn.Params; non-integer parameters contribute nothing).
func makeContext(policy ContextPolicy, fn *cint.FuncDecl, args []lattice.Interval) string {
	if policy == NoContext {
		return ""
	}
	var parts []string
	for i, p := range fn.Params {
		if p.Type.Kind != cint.TypeInt || i >= len(args) {
			continue
		}
		switch policy {
		case BucketContext:
			parts = append(parts, p.Name+":"+bucket(args[i]))
		case FullContext:
			parts = append(parts, p.Name+":"+args[i].String())
		}
	}
	return strings.Join(parts, ",")
}
