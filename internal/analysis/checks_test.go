package analysis

import (
	"strings"
	"testing"
)

func checkWarnings(t *testing.T, src string, opts Options) []Warning {
	t.Helper()
	return run(t, src, opts).Check()
}

func findWarning(ws []Warning, kind WarnKind) (Warning, bool) {
	for _, w := range ws {
		if w.Kind == kind {
			return w, true
		}
	}
	return Warning{}, false
}

// TestCheckDivByZero: a possibly-zero divisor is flagged; a proven-nonzero
// one is not.
func TestCheckDivByZero(t *testing.T) {
	ws := checkWarnings(t, `
int main() {
    int x;
    int y;
    y = 100 / x;
    return y;
}`, Options{Op: OpWarrow})
	w, ok := findWarning(ws, WarnDivByZero)
	if !ok {
		t.Fatalf("missing div-by-zero warning: %v", ws)
	}
	if w.Definite {
		t.Errorf("x is unknown, warning should be possible, got %s", w)
	}

	ws = checkWarnings(t, `
int main() {
    int x;
    int y;
    if (x > 0) {
        y = 100 / x;
    }
    return 0;
}`, Options{Op: OpWarrow})
	if w, ok := findWarning(ws, WarnDivByZero); ok {
		t.Errorf("guarded division flagged: %s", w)
	}
}

// TestCheckDefiniteDivByZero: dividing by a constant zero is definite.
func TestCheckDefiniteDivByZero(t *testing.T) {
	ws := checkWarnings(t, `
int main() {
    int z;
    int y;
    z = 0;
    y = 1 / z;
    return y;
}`, Options{Op: OpWarrow})
	w, ok := findWarning(ws, WarnDivByZero)
	if !ok || !w.Definite {
		t.Fatalf("want definite div-by-zero, got %v", ws)
	}
}

// TestCheckIndexBounds: proven-safe subscripts are silent; out-of-range
// ones are flagged with the right severity.
func TestCheckIndexBounds(t *testing.T) {
	// Safe: loop bound matches the array length.
	ws := checkWarnings(t, `
int a[10];
int main() {
    int i;
    for (i = 0; i < 10; i = i + 1) { a[i] = i; }
    return a[9];
}`, Options{Op: OpWarrow})
	if w, ok := findWarning(ws, WarnIndexOOB); ok {
		t.Errorf("safe loop flagged: %s", w)
	}

	// Possible: the loop runs one step too far.
	ws = checkWarnings(t, `
int a[10];
int main() {
    int i;
    for (i = 0; i <= 10; i = i + 1) { a[i] = i; }
    return a[9];
}`, Options{Op: OpWarrow})
	w, ok := findWarning(ws, WarnIndexOOB)
	if !ok {
		t.Fatalf("off-by-one loop not flagged: %v", ws)
	}
	if w.Definite {
		t.Errorf("off-by-one is possible, not definite: %s", w)
	}

	// Definite: constant index beyond the bounds.
	ws = checkWarnings(t, `
int a[4];
int main() { return a[7]; }`, Options{Op: OpWarrow})
	w, ok = findWarning(ws, WarnIndexOOB)
	if !ok || !w.Definite {
		t.Fatalf("want definite OOB, got %v", ws)
	}
}

// TestCheckIndexThroughPointer: subscripting a pointer checks the smallest
// array it may reference.
func TestCheckIndexThroughPointer(t *testing.T) {
	ws := checkWarnings(t, `
int small[4];
int big[100];
int main() {
    int *p;
    int x;
    if (small[0] == 0) { p = small; } else { p = big; }
    x = p[50];
    return x;
}`, Options{Op: OpWarrow})
	w, ok := findWarning(ws, WarnIndexOOB)
	if !ok {
		t.Fatalf("p may point to small[4]; p[50] not flagged: %v", ws)
	}
	if !strings.Contains(w.Msg, "[0,3]") {
		t.Errorf("warning should cite the smallest array: %s", w)
	}
}

// TestCheckDeadCode: code after a non-returning call is reported once.
func TestCheckDeadCode(t *testing.T) {
	ws := checkWarnings(t, `
void spin() {
    int i;
    i = 0;
    while (1) { i = i + 1; }
}
int main() {
    int x;
    x = 1;
    spin();
    x = 2;
    return x;
}`, Options{Op: OpWarrow})
	if _, ok := findWarning(ws, WarnDeadCode); !ok {
		t.Fatalf("missing dead-code warning: %v", ws)
	}
}

// TestCheckInfeasibleBranchNotDead: branch pruning is not "dead code".
func TestCheckInfeasibleBranchNotDead(t *testing.T) {
	ws := checkWarnings(t, `
int main() {
    int x;
    x = 5;
    if (x > 10) { x = 99; }
    return x;
}`, Options{Op: OpWarrow})
	if w, ok := findWarning(ws, WarnDeadCode); ok {
		t.Errorf("infeasible branch flagged as dead code: %s", w)
	}
}

// TestWarningReportFormat smoke-tests the textual report.
func TestWarningReportFormat(t *testing.T) {
	res := run(t, `
int a[4];
int main() { return a[7]; }`, Options{Op: OpWarrow})
	rep := res.WarningReport()
	if !strings.Contains(rep, "definite index-out-of-bounds") {
		t.Errorf("report: %s", rep)
	}
	clean := run(t, `int main() { return 0; }`, Options{Op: OpWarrow})
	if got := clean.WarningReport(); got != "no warnings\n" {
		t.Errorf("clean report: %q", got)
	}
}

// TestWarrowSharpensChecks: the ⊟-solver's extra precision eliminates a
// false alarm the ∇-only analysis raises — precision has a user-visible
// payoff.
func TestWarrowSharpensChecks(t *testing.T) {
	src := `
int bound = 0;
int a[10];
int main() {
    int i;
    int j;
    for (i = 0; i < 10; i = i + 1) {
        bound = i;
    }
    j = bound;
    if (j >= 0) {
        if (j < 10) {
            a[j] = 1;
        }
    }
    return a[0];
}`
	warrow := checkWarnings(t, src, Options{Op: OpWarrow})
	if w, ok := findWarning(warrow, WarnIndexOOB); ok {
		t.Errorf("⊟: guarded a[j] flagged: %s", w)
	}
}
