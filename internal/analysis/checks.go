package analysis

import (
	"fmt"
	"sort"
	"strings"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/lattice"
)

// WarnKind classifies analyzer warnings.
type WarnKind int

// Warning kinds.
const (
	// WarnDivByZero: a / or % whose divisor may be zero.
	WarnDivByZero WarnKind = iota
	// WarnIndexOOB: an array subscript that may fall outside the bounds of
	// every array the base can point to.
	WarnIndexOOB
	// WarnDeadCode: a program point no abstract state reaches, inside a
	// function that is itself reachable.
	WarnDeadCode
)

// String renders the kind.
func (k WarnKind) String() string {
	switch k {
	case WarnDivByZero:
		return "div-by-zero"
	case WarnIndexOOB:
		return "index-out-of-bounds"
	case WarnDeadCode:
		return "dead-code"
	default:
		return "?"
	}
}

// Warning is one analyzer finding.
type Warning struct {
	Kind WarnKind
	Fn   string
	Pos  cint.Pos
	// Definite reports whether the condition holds on every abstract value
	// (e.g. the divisor is exactly [0,0]) rather than possibly.
	Definite bool
	Msg      string
}

// String renders the warning.
func (w Warning) String() string {
	sev := "possible"
	if w.Definite {
		sev = "definite"
	}
	return fmt.Sprintf("%s:%s: %s %s: %s", w.Fn, w.Pos, sev, w.Kind, w.Msg)
}

// checker walks edge expressions against the computed invariants.
type resultChecker struct {
	r        *Result
	ec       evalCtx
	arrayLen map[string]int64 // cell ID -> array length
	warnings []Warning
	fn       string
	env      Env
	pos      cint.Pos
}

// Check inspects every reachable edge of the program for possible runtime
// errors under the computed invariants, plus abstractly-dead code. Findings
// are sorted by position.
func (r *Result) Check() []Warning {
	flowIns := make(map[string]bool)
	for k := range r.Values {
		if k.Kind == KGlobal {
			flowIns[k.Var] = true
		}
	}
	a := &analyzer{pt: r.PT, envL: r.EnvL, ivl: r.EnvL.Iv, flowIns: flowIns}
	c := &resultChecker{
		r:        r,
		ec:       evalCtx{a: a, readFI: func(id string) lattice.Interval { return r.Global(id) }},
		arrayLen: make(map[string]int64),
	}
	for _, g := range r.CFG.AST.Globals {
		if g.Type.Kind == cint.TypeArray {
			c.arrayLen[g.ID] = g.Type.Len
		}
	}
	for _, fn := range r.CFG.AST.Funcs {
		for _, l := range fn.Locals {
			if l.Type.Kind == cint.TypeArray {
				c.arrayLen[l.ID] = l.Type.Len
			}
		}
	}
	for _, fn := range r.CFG.Order {
		if !r.Reachable(fn) {
			continue
		}
		g := r.CFG.Graphs[fn]
		c.fn = fn
		deadReported := false
		for _, n := range g.Nodes {
			env := r.PointEnv(fn, n.ID)
			if env.IsBot() {
				// Report the first dead point per function: downstream
				// points of the same dead region add no information.
				if !deadReported && n != g.Exit && len(n.In) > 0 && anyLiveGuardlessPred(r, fn, n) {
					c.warnings = append(c.warnings, Warning{
						Kind: WarnDeadCode, Fn: fn, Pos: n.Pos, Definite: true,
						Msg: fmt.Sprintf("point @%d is unreachable", n.ID),
					})
					deadReported = true
				}
				continue
			}
			c.env = env
			for _, e := range n.Out {
				c.pos = e.Pos
				c.edge(e)
			}
		}
	}
	sort.Slice(c.warnings, func(i, j int) bool {
		a, b := c.warnings[i], c.warnings[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Col < b.Pos.Col
	})
	return c.warnings
}

// anyLiveGuardlessPred reports whether a dead node has a live predecessor
// via a non-guard edge — i.e. it is dead for a reason other than an
// infeasible branch (infeasible branches are normal and not reported).
func anyLiveGuardlessPred(r *Result, fn string, n *cfg.Node) bool {
	for _, e := range n.In {
		if e.Kind == cfg.Guard || e.Kind == cfg.Assert {
			continue
		}
		if !r.PointEnv(fn, e.From.ID).IsBot() {
			return true
		}
	}
	return false
}

// edge checks the expressions an edge evaluates.
func (c *resultChecker) edge(e *cfg.Edge) {
	switch e.Kind {
	case cfg.Decl:
		if e.Rhs != nil {
			c.expr(e.Rhs)
		}
	case cfg.Assign:
		c.expr(e.Rhs)
		c.lvalue(e.Lhs)
	case cfg.Guard, cfg.Assert:
		c.expr(e.Cond)
	case cfg.Call:
		for _, a := range e.Call.Args {
			c.expr(a)
		}
		if e.Lhs != nil {
			c.lvalue(e.Lhs)
		}
	case cfg.Ret:
		if e.Rhs != nil {
			c.expr(e.Rhs)
		}
	}
}

// lvalue checks subscripts on the left-hand side.
func (c *resultChecker) lvalue(e cint.Expr) {
	if ix, ok := e.(*cint.IndexExpr); ok {
		c.index(ix)
	}
}

// expr recursively checks an expression.
func (c *resultChecker) expr(e cint.Expr) {
	switch x := e.(type) {
	case *cint.BinaryExpr:
		c.expr(x.X)
		c.expr(x.Y)
		if x.Op == cint.TokSlash || x.Op == cint.TokPercent {
			d := c.ec.eval(c.env, x.Y)
			if d.IsEmpty() || !d.Contains(0) {
				return
			}
			op := "/"
			if x.Op == cint.TokPercent {
				op = "%"
			}
			_, isZero := d.IsConst()
			c.warnings = append(c.warnings, Warning{
				Kind: WarnDivByZero, Fn: c.fn, Pos: x.Position(), Definite: isZero,
				Msg: fmt.Sprintf("divisor of %s is %s", op, d),
			})
		}
	case *cint.UnaryExpr:
		if x.Op != cint.TokAmp {
			c.expr(x.X)
		}
	case *cint.IndexExpr:
		c.index(x)
	}
}

// index checks a subscript against the lengths of all possible base arrays.
func (c *resultChecker) index(x *cint.IndexExpr) {
	c.expr(x.Idx)
	idx := c.ec.eval(c.env, x.Idx)
	if idx.IsEmpty() {
		return
	}
	// The subscript must fit the smallest array the base may denote.
	minLen := int64(-1)
	for _, cell := range c.ec.targets(x.X) {
		if n, ok := c.arrayLen[cell]; ok && (minLen < 0 || n < minLen) {
			minLen = n
		}
	}
	if minLen < 0 {
		return // base resolves to no known array
	}
	valid := lattice.Range(0, minLen-1)
	if lattice.Ints.Leq(idx, valid) {
		return
	}
	definite := lattice.Ints.Meet(idx, valid).IsEmpty()
	c.warnings = append(c.warnings, Warning{
		Kind: WarnIndexOOB, Fn: c.fn, Pos: x.Position(), Definite: definite,
		Msg: fmt.Sprintf("index %s outside [0,%d]", idx, minLen-1),
	})
}

// WarningReport renders all findings, one per line.
func (r *Result) WarningReport() string {
	ws := r.Check()
	if len(ws) == 0 {
		return "no warnings\n"
	}
	var sb strings.Builder
	for _, w := range ws {
		sb.WriteString(w.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}
