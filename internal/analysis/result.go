package analysis

import (
	"fmt"
	"sort"
	"strings"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/lattice"
)

// Global returns the flow-insensitive interval computed for a variable ID,
// or the empty interval if the variable was never written (unreachable).
func (r *Result) Global(id string) lattice.Interval {
	return r.Values[Key{Kind: KGlobal, Var: id}].Get(id)
}

// PointEnv returns the environment at a program point, joined over all
// contexts in which the function was analyzed.
func (r *Result) PointEnv(fn string, node int) Env {
	out := BotEnv
	for k, v := range r.Values {
		if k.Kind == KPoint && k.Fn == fn && k.Node == node {
			out = r.EnvL.Join(out, v)
		}
	}
	return out
}

// Contexts returns the distinct contexts in which fn was analyzed, sorted.
func (r *Result) Contexts(fn string) []string {
	seen := map[string]bool{}
	for k := range r.Values {
		if k.Kind == KPoint && k.Fn == fn && !seen[k.Ctx] {
			seen[k.Ctx] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Reachable reports whether fn was analyzed in any context with a reachable
// entry.
func (r *Result) Reachable(fn string) bool {
	for k, v := range r.Values {
		if k.Kind == KPoint && k.Fn == fn && k.Node == 0 && !v.IsBot() {
			return true
		}
	}
	return false
}

// NumUnknowns returns the number of unknowns the solver encountered.
func (r *Result) NumUnknowns() int { return len(r.Values) }

// ReturnValue returns the interval of fn's return value joined over all
// contexts.
func (r *Result) ReturnValue(fn string) lattice.Interval {
	g := r.CFG.Graphs[fn]
	if g == nil {
		return lattice.EmptyInterval
	}
	env := r.PointEnv(fn, g.Exit.ID)
	return env.Get(g.Fn.Name + "::@ret")
}

// Report renders all per-point invariants of a function (merged over
// contexts) plus the globals, for the CLI and the examples.
func (r *Result) Report() string {
	var sb strings.Builder
	var globals []string
	for k := range r.Values {
		if k.Kind == KGlobal {
			globals = append(globals, k.Var)
		}
	}
	sort.Strings(globals)
	if len(globals) > 0 {
		sb.WriteString("flow-insensitive variables:\n")
		for _, id := range globals {
			fmt.Fprintf(&sb, "  %-24s %s\n", id, r.Global(id))
		}
	}
	for _, name := range r.CFG.Order {
		if !r.Reachable(name) {
			fmt.Fprintf(&sb, "%s: unreachable\n", name)
			continue
		}
		ctxs := r.Contexts(name)
		fmt.Fprintf(&sb, "%s (%d context(s)):\n", name, len(ctxs))
		g := r.CFG.Graphs[name]
		for _, n := range g.Nodes {
			env := r.PointEnv(name, n.ID)
			fmt.Fprintf(&sb, "  @%-3d %s\n", n.ID, env)
		}
	}
	return sb.String()
}

// AssertStatus classifies an assertion.
type AssertStatus int

// Assertion classifications.
const (
	// AssertProved: the condition holds on every abstract state reaching it.
	AssertProved AssertStatus = iota
	// AssertFailed: the condition is false on every abstract state reaching
	// it (and the point is reachable) — the assertion always aborts.
	AssertFailed
	// AssertUnknown: the analysis cannot decide.
	AssertUnknown
	// AssertUnreachable: no abstract state reaches the assertion.
	AssertUnreachable
)

// String renders the status.
func (s AssertStatus) String() string {
	switch s {
	case AssertProved:
		return "proved"
	case AssertFailed:
		return "failed"
	case AssertUnknown:
		return "unknown"
	default:
		return "unreachable"
	}
}

// Assertion is the verdict for one assert statement.
type Assertion struct {
	Fn     string
	Pos    cint.Pos
	Cond   cint.Expr
	Status AssertStatus
}

// Assertions classifies every assert statement of the program against the
// computed invariants (merged over contexts).
func (r *Result) Assertions() []Assertion {
	var out []Assertion
	for _, fn := range r.CFG.Order {
		g := r.CFG.Graphs[fn]
		for _, n := range g.Nodes {
			for _, e := range n.Out {
				if e.Kind != cfg.Assert {
					continue
				}
				env := r.PointEnv(fn, e.From.ID)
				a := Assertion{Fn: fn, Pos: e.Pos, Cond: e.Cond}
				switch {
				case env.IsBot():
					a.Status = AssertUnreachable
				default:
					switch r.truthAt(env, e.Cond) {
					case lattice.TriTrue:
						a.Status = AssertProved
					case lattice.TriFalse:
						a.Status = AssertFailed
					default:
						a.Status = AssertUnknown
					}
				}
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Col < out[j].Pos.Col
	})
	return out
}

// truthAt evaluates a condition against an environment using the computed
// flow-insensitive values for globals.
func (r *Result) truthAt(env Env, cond cint.Expr) lattice.Tri {
	flowIns := make(map[string]bool)
	for k := range r.Values {
		if k.Kind == KGlobal {
			flowIns[k.Var] = true
		}
	}
	a := &analyzer{pt: r.PT, envL: r.EnvL, ivl: r.EnvL.Iv, flowIns: flowIns}
	ec := evalCtx{a: a, readFI: func(id string) lattice.Interval { return r.Global(id) }}
	return ec.truth(env, cond)
}

// AssertionReport renders the verdicts, one per line.
func (r *Result) AssertionReport() string {
	as := r.Assertions()
	if len(as) == 0 {
		return ""
	}
	var sb strings.Builder
	proved := 0
	for _, a := range as {
		if a.Status == AssertProved {
			proved++
		}
		fmt.Fprintf(&sb, "  %s:%-8s %-12s assert(%s)\n", a.Fn, a.Pos, a.Status, a.Cond)
	}
	fmt.Fprintf(&sb, "assertions: %d/%d proved\n", proved, len(as))
	return sb.String()
}
