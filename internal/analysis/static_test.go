package analysis

import (
	"testing"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/eqn"
	"warrow/internal/solver"
	"warrow/internal/wcet"
)

func staticWCET(t *testing.T, name string) (*eqn.System[Key, Env], *EnvLattice) {
	t.Helper()
	b, ok := wcet.ByName(name)
	if !ok {
		t.Fatalf("no WCET benchmark %q", name)
	}
	ast, err := cint.Parse(b.Src)
	if err != nil {
		t.Fatalf("parse %s: %v", name, err)
	}
	prog := cfg.Build(ast)
	sys, l, err := StaticSystemOf(prog)
	if err != nil {
		t.Fatalf("StaticSystemOf(%s): %v", name, err)
	}
	return sys, l
}

// TestStaticSystemCertifies: the materialized pure system of a WCET
// benchmark is solvable by the global solvers, and their results certify —
// the gate that protects against the observed (rather than proved)
// dependency sets of the purification.
func TestStaticSystemCertifies(t *testing.T) {
	for _, name := range []string{"fibcall", "janne_complex", "fac"} {
		sys, l := staticWCET(t, name)
		init := func(Key) Env { return BotEnv }
		cfg := solver.Config{MaxEvals: 20_000_000}
		base, _, err := solver.SW(sys, l, solver.WarrowOp[Key](l), init, cfg)
		if err != nil {
			t.Fatalf("%s: SW: %v", name, err)
		}
		if x, ok := eqn.IsPostSolution[Key, Env](l, sys, base, init); !ok {
			t.Fatalf("%s: SW result not a post-solution at %v", name, x)
		}
		reachable := 0
		for _, v := range base {
			if !v.IsBot() {
				reachable++
			}
		}
		if reachable == 0 {
			t.Fatalf("%s: SW found no reachable unknowns — materialization lost the program", name)
		}
		for sname, run := range map[string]func() (map[Key]Env, solver.Stats, error){
			"slr2": func() (map[Key]Env, solver.Stats, error) {
				return solver.SLR2(sys, l, solver.WarrowOp[Key](l), init, cfg)
			},
			"slr3": func() (map[Key]Env, solver.Stats, error) {
				return solver.SLR3(sys, l, solver.WarrowOp[Key](l), init, cfg)
			},
			"slr4": func() (map[Key]Env, solver.Stats, error) {
				return solver.SLR4(sys, l, solver.WarrowOp[Key](l), init, cfg)
			},
		} {
			sigma, _, err := run()
			if err != nil {
				t.Fatalf("%s: %s: %v", name, sname, err)
			}
			if x, ok := eqn.IsPostSolution[Key, Env](l, sys, sigma, init); !ok {
				t.Fatalf("%s: %s result not a post-solution at %v", name, sname, x)
			}
		}
	}
}

// TestStaticSystemDeterministic: two materializations of the same program
// agree on unknown order and dependency shape, so the widening-point
// refinement — and with it the committed benchmark artifact — is
// reproducible.
func TestStaticSystemDeterministic(t *testing.T) {
	a, _ := staticWCET(t, "fibcall")
	b, _ := staticWCET(t, "fibcall")
	ao, bo := a.Order(), b.Order()
	if len(ao) != len(bo) {
		t.Fatalf("orders differ in length: %d vs %d", len(ao), len(bo))
	}
	for i := range ao {
		if ao[i] != bo[i] {
			t.Fatalf("order[%d]: %v vs %v", i, ao[i], bo[i])
		}
	}
	if a.ShapeHash() != b.ShapeHash() {
		t.Fatalf("shape hashes differ: %x vs %x", a.ShapeHash(), b.ShapeHash())
	}
}
