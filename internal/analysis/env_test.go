package analysis

import (
	"math/rand"
	"strings"
	"testing"

	"warrow/internal/lattice"
)

func randEnv(r *rand.Rand) Env {
	if r.Intn(8) == 0 {
		return BotEnv
	}
	e := TopEnv
	vars := []string{"x", "y", "z"}
	for _, v := range vars {
		switch r.Intn(4) {
		case 0: // unbound (⊤)
		case 1:
			lo := int64(r.Intn(21) - 10)
			hi := lo + int64(r.Intn(10))
			e = e.Set(v, lattice.Range(lo, hi))
		case 2:
			e = e.Set(v, lattice.AtLeast(int64(r.Intn(11)-5)))
		case 3:
			e = e.Set(v, lattice.AtMost(int64(r.Intn(11)-5)))
		}
	}
	return e
}

// TestEnvLatticeLaws: the environment lattice satisfies the lattice and
// widening/narrowing laws on random samples (property-based CheckLaws).
func TestEnvLatticeLaws(t *testing.T) {
	l := NewEnvLattice(lattice.Ints)
	r := rand.New(rand.NewSource(11))
	samples := []Env{BotEnv, TopEnv}
	for i := 0; i < 20; i++ {
		samples = append(samples, randEnv(r))
	}
	if err := lattice.CheckLaws[Env](l, samples); err != nil {
		t.Fatal(err)
	}
}

func TestEnvBasics(t *testing.T) {
	e := TopEnv.Set("x", lattice.Range(1, 2))
	if e.IsBot() || e.Len() != 1 {
		t.Fatal("Set")
	}
	if !lattice.Ints.Eq(e.Get("x"), lattice.Range(1, 2)) {
		t.Fatal("Get")
	}
	if !lattice.Ints.Eq(e.Get("unbound"), lattice.FullInterval) {
		t.Fatal("unbound reads as ⊤")
	}
	// Binding ⊤ removes the entry.
	e2 := e.Set("x", lattice.FullInterval)
	if e2.Len() != 0 {
		t.Fatalf("binding ⊤ should drop the entry: %s", e2)
	}
	// Binding ⊥ collapses to the unreachable environment.
	e3 := e.Set("y", lattice.EmptyInterval)
	if !e3.IsBot() {
		t.Fatalf("binding ⊥ should collapse: %s", e3)
	}
	// Bot is sticky.
	if !BotEnv.Set("x", lattice.Singleton(1)).IsBot() {
		t.Fatal("Set on ⊥")
	}
	if !BotEnv.Get("x").IsEmpty() {
		t.Fatal("Get on ⊥")
	}
}

func TestEnvImmutability(t *testing.T) {
	e := TopEnv.Set("x", lattice.Range(1, 2))
	_ = e.Set("x", lattice.Singleton(9))
	_ = e.Set("y", lattice.Singleton(3))
	if !lattice.Ints.Eq(e.Get("x"), lattice.Range(1, 2)) || e.Len() != 1 {
		t.Fatal("Set mutated the receiver")
	}
}

func TestEnvJoinDropsOneSidedBindings(t *testing.T) {
	l := NewEnvLattice(lattice.Ints)
	a := TopEnv.Set("x", lattice.Range(0, 1))
	b := TopEnv.Set("y", lattice.Range(5, 6))
	j := l.Join(a, b)
	// x is ⊤ in b and y is ⊤ in a, so the join constrains nothing.
	if j.Len() != 0 {
		t.Fatalf("join = %s, want ⊤", j)
	}
	// ⊥ is neutral.
	if !l.Eq(l.Join(BotEnv, a), a) || !l.Eq(l.Join(a, BotEnv), a) {
		t.Fatal("⊥ not neutral for join")
	}
}

func TestEnvWidenNarrow(t *testing.T) {
	l := NewEnvLattice(lattice.Ints)
	a := TopEnv.Set("x", lattice.Range(0, 10))
	b := TopEnv.Set("x", lattice.Range(0, 11))
	w := l.Widen(a, b)
	if !lattice.Ints.Eq(w.Get("x"), lattice.NewInterval(lattice.Fin(0), lattice.PosInf)) {
		t.Fatalf("widen = %s", w)
	}
	n := l.Narrow(w, b)
	if !lattice.Ints.Eq(n.Get("x"), lattice.Range(0, 11)) {
		t.Fatalf("narrow = %s", n)
	}
	// Narrowing can introduce bindings absent in a (a reads them as ⊤).
	n2 := l.Narrow(TopEnv, b)
	if !lattice.Ints.Eq(n2.Get("x"), lattice.Range(0, 11)) {
		t.Fatalf("narrow from ⊤ = %s", n2)
	}
}

func TestEnvStringDeterministic(t *testing.T) {
	e := TopEnv.Set("b", lattice.Singleton(2)).Set("a", lattice.Singleton(1))
	if got := e.String(); got != "{a=[1,1], b=[2,2]}" {
		t.Fatalf("String = %q", got)
	}
	if BotEnv.String() != "⊥" || TopEnv.String() != "⊤" {
		t.Fatal("extremal strings")
	}
}

func TestBindingHelper(t *testing.T) {
	b := Binding("g", lattice.Range(0, 3))
	if b.Len() != 1 || !lattice.Ints.Eq(b.Get("g"), lattice.Range(0, 3)) {
		t.Fatalf("Binding = %s", b)
	}
	if Binding("g", lattice.FullInterval).Len() != 0 {
		t.Fatal("Binding of ⊤ should be empty")
	}
	if !Binding("g", lattice.EmptyInterval).IsBot() {
		t.Fatal("Binding of ⊥ should be ⊥")
	}
}

func TestKeyString(t *testing.T) {
	cases := []struct {
		k    Key
		want string
	}{
		{Key{Kind: KStart}, "<start>"},
		{Key{Kind: KGlobal, Var: "g"}, "glob:g"},
		{Key{Kind: KPoint, Fn: "f", Node: 3}, "f@3"},
		{Key{Kind: KPoint, Fn: "f", Ctx: "b:small..small", Node: 3}, "f[b:small..small]@3"},
	}
	for _, c := range cases {
		if got := c.k.String(); got != c.want {
			t.Errorf("Key%v = %q, want %q", c.k, got, c.want)
		}
	}
}

func TestContextPolicies(t *testing.T) {
	src := `int f(int a, int b) { return a + b; } int main() { int r; r = f(1, 2); return r; }`
	res := run(t, src, Options{Context: FullContext, Op: OpWarrow})
	ctxs := res.Contexts("f")
	if len(ctxs) != 1 || !strings.Contains(ctxs[0], "a:[1,1]") {
		t.Errorf("full contexts: %v", ctxs)
	}
	res = run(t, src, Options{Context: BucketContext, Op: OpWarrow})
	ctxs = res.Contexts("f")
	if len(ctxs) != 1 || !strings.Contains(ctxs[0], "small") {
		t.Errorf("bucket contexts: %v", ctxs)
	}
	res = run(t, src, Options{Context: NoContext, Op: OpWarrow})
	if ctxs = res.Contexts("f"); len(ctxs) != 1 || ctxs[0] != "" {
		t.Errorf("no-context contexts: %v", ctxs)
	}
}
