package analysis

import (
	"testing"

	"warrow/internal/certify"
	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/wcet"
)

func certifyRun(t *testing.T, name, src string, opts Options) *Result {
	t.Helper()
	ast, err := cint.Parse(src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	res, err := Run(cfg.Build(ast), opts)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	rep := certify.Sides[Key, Env](res.EnvL, res.System(), res.Values,
		func(Key) Env { return BotEnv })
	if !rep.OK() {
		t.Errorf("%s: analysis result does not certify: %s", name, rep)
	}
	return res
}

// TestCertifyWCETSuite re-checks every WCET benchmark's analysis result
// against the constraint system it was solved from: each reached unknown's
// right-hand side re-evaluates to something ⊑ its solved value, and every
// replayed side-effect contribution is covered by its target. This is
// Lemma 1 as an executable acceptance gate for SLR⁺ — solver-independent,
// so a scheduling or side-effect-accounting bug in the solver cannot hide
// behind the solver's own bookkeeping.
func TestCertifyWCETSuite(t *testing.T) {
	for _, op := range []OpKind{OpWarrow, OpWiden} {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			t.Parallel()
			for _, b := range wcet.All() {
				certifyRun(t, b.Name, b.Src, Options{Op: op, Context: NoContext, MaxEvals: 20_000_000})
			}
		})
	}
}

// TestCertifyRejectsCorruptedAnalysis corrupts one flow-insensitive global
// of a certified result — the exact shape of bug a broken side-effect
// accounting would produce — and demands a counterexample naming it.
func TestCertifyRejectsCorruptedAnalysis(t *testing.T) {
	const src = `
int g = 0;
int main() {
  int i = 0;
  while (i < 10) { g = g + i; i = i + 1; }
  return g;
}`
	res := certifyRun(t, "corrupt", src, Options{Op: OpWarrow, Context: NoContext, MaxEvals: 1_000_000})
	var target Key
	found := false
	for k, v := range res.Values {
		if k.Kind == KGlobal && !v.IsBot() {
			target, found = k, true
			break
		}
	}
	if !found {
		t.Fatal("no reachable flow-insensitive unknown in result")
	}
	res.Values[target] = BotEnv
	rep := certify.Sides[Key, Env](res.EnvL, res.System(), res.Values,
		func(Key) Env { return BotEnv })
	if rep.OK() {
		t.Fatalf("corrupted result (lowered %v) certified", target)
	}
	named := false
	for _, v := range rep.Violations {
		if v.Unknown == target {
			named = true
		}
	}
	if !named {
		t.Fatalf("no counterexample names %v: %s", target, rep)
	}
}
