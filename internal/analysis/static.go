package analysis

import (
	"fmt"
	"sort"

	"warrow/internal/cfg"
	"warrow/internal/eqn"
	"warrow/internal/solver"
)

// StaticSystem materializes the side-effecting constraint system of an
// analysis run as a pure static eqn.System over the unknowns an
// instrumented seed solve discovers, so the global solvers — SW and the
// widening-point family SLR2/SLR3/SLR4 — can iterate a real program
// analysis instead of only synthetic systems.
//
// The purification is the standard one: a side effect x ─side→ g becomes
// part of g's right-hand side. The pure RHS of g joins g's own RHS (if
// any) with the contribution of every unknown observed side-effecting g
// during the seed solve, re-evaluating each contributor's RHS with its
// side callback filtered to g. Dependencies of g are the union of the
// reads recorded for g's own RHS and for all its contributors, across
// every evaluation of the seed solve — conditional reads behind gates that
// open only transiently are kept, because the seed solve itself widens
// through those transients.
//
// The dependency sets are observed, not proved: a solve of the returned
// system could in principle open a gate the seed run never did, miss a
// re-evaluation, and terminate early. Callers must therefore certify
// results (eqn.IsPostSolution) rather than trust termination — which the
// experiments and the diffsolve matrix do for every solver anyway.
//
// Unknowns, dependencies and contributors are ordered canonically
// (keyLess), so the system's Order — and with it the widening-point
// refinement built on top of it — is reproducible across runs.
func StaticSystem(prog *cfg.Program, opts Options) (*eqn.System[Key, Env], *EnvLattice, error) {
	a, err := newAnalyzer(prog, &opts)
	if err != nil {
		return nil, nil, err
	}
	sys := a.system()

	tr := &sideTrace{
		deps:    map[Key]map[Key]bool{},
		contrib: map[Key]map[Key]bool{},
		seen:    map[Key]bool{},
	}
	wrapped := eqn.Sides[Key, Env](func(x Key) eqn.SideRHS[Key, Env] {
		tr.note(x)
		rhs := sys(x)
		if rhs == nil {
			return nil
		}
		return func(get func(Key) Env, side func(Key, Env)) Env {
			rec := func(k Key) Env { tr.dep(x, k); return get(k) }
			sid := func(g Key, v Env) { tr.side(x, g); side(g, v) }
			return rhs(rec, sid)
		}
	})

	var op solver.Operator[Key, Env]
	if opts.DegradeAfter > 0 {
		op = solver.NewDegrading[Key, Env](a.envL, opts.DegradeAfter)
	} else {
		op = solver.Op[Key](solver.Warrow[Env](a.envL))
	}
	init := func(Key) Env { return BotEnv }
	if _, err := solver.SLRPlusKeyed(wrapped, a.envL, op, init,
		Key{Kind: KStart}, Band, solverConfig(opts)); err != nil {
		return nil, nil, fmt.Errorf("analysis: seed solve for static system: %w", err)
	}

	keys := make([]Key, 0, len(tr.seen))
	for k := range tr.seen {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keyLess(keys[i], keys[j]) })

	out := eqn.NewSystem[Key, Env]()
	for _, x := range keys {
		x := x
		own := sys(x)
		contribs := sortedKeys(tr.contrib[x])
		depSet := map[Key]bool{}
		for d := range tr.deps[x] {
			depSet[d] = true
		}
		for _, c := range contribs {
			for d := range tr.deps[c] {
				depSet[d] = true
			}
		}
		out.Define(x, sortedKeys(depSet), func(get func(Key) Env) Env {
			v := BotEnv
			if own != nil {
				v = own(get, func(Key, Env) {})
			}
			for _, c := range contribs {
				crhs := sys(c)
				if crhs == nil {
					continue
				}
				acc := BotEnv
				crhs(get, func(g Key, sv Env) {
					if g == x {
						acc = a.envL.Join(acc, sv)
					}
				})
				v = a.envL.Join(v, acc)
			}
			return v
		})
	}
	return out, a.envL, nil
}

// StaticSystemOf is the cfg.Program-from-source convenience used by the
// experiments: parse and build are the caller's job, this merely names the
// common NoContext configuration of the WCET precision runs.
func StaticSystemOf(prog *cfg.Program) (*eqn.System[Key, Env], *EnvLattice, error) {
	return StaticSystem(prog, Options{Context: NoContext, MaxEvals: 20_000_000})
}

// sideTrace records, across every evaluation of the seed solve, which
// unknowns each right-hand side read and which it side-effected.
type sideTrace struct {
	deps    map[Key]map[Key]bool // x -> keys read by rhs(x)
	contrib map[Key]map[Key]bool // g -> unknowns whose rhs side-effected g
	seen    map[Key]bool
}

func (t *sideTrace) note(x Key) { t.seen[x] = true }

func (t *sideTrace) dep(x, k Key) {
	t.seen[k] = true
	s := t.deps[x]
	if s == nil {
		s = map[Key]bool{}
		t.deps[x] = s
	}
	s[k] = true
}

func (t *sideTrace) side(x, g Key) {
	t.seen[g] = true
	s := t.contrib[g]
	if s == nil {
		s = map[Key]bool{}
		t.contrib[g] = s
	}
	s[x] = true
}

// keyLess is the canonical unknown order of materialized systems: the root
// first, then program points grouped by function in node order, then the
// flow-insensitive variables. Within a function the entry precedes the
// loop heads, so the refinement's first-defined-member header rule picks
// the natural loop heads.
func keyLess(a, b Key) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Fn != b.Fn {
		return a.Fn < b.Fn
	}
	if a.Ctx != b.Ctx {
		return a.Ctx < b.Ctx
	}
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	return a.Var < b.Var
}

func sortedKeys(s map[Key]bool) []Key {
	out := make([]Key, 0, len(s))
	for k := range s {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return keyLess(out[i], out[j]) })
	return out
}
