package analysis

import (
	"errors"
	"fmt"
	"testing"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/interp"
	"warrow/internal/wcet"
)

// storeSite identifies where a concrete store lands in the CFG: the node
// *after* the storing edge, where the abstract environment reflects it.
type storeSite struct {
	fn   string
	node int
}

// storeIndex maps (varID, source position) to the program points following
// the assignments of that variable at that position.
func storeIndex(prog *cfg.Program) map[string]map[cint.Pos][]storeSite {
	idx := make(map[string]map[cint.Pos][]storeSite)
	add := func(id string, pos cint.Pos, s storeSite) {
		if idx[id] == nil {
			idx[id] = make(map[cint.Pos][]storeSite)
		}
		idx[id][pos] = append(idx[id][pos], s)
	}
	for _, fn := range prog.Order {
		g := prog.Graphs[fn]
		for _, n := range g.Nodes {
			for _, e := range n.Out {
				var id string
				switch {
				case e.Kind == cfg.Decl:
					id = e.Var.ID
				case (e.Kind == cfg.Assign || e.Kind == cfg.Call) && e.Lhs != nil:
					if l, ok := e.Lhs.(*cint.Ident); ok {
						id = l.Obj.ID
					}
				}
				if id != "" {
					add(id, e.Pos, storeSite{fn: fn, node: e.To.ID})
				}
			}
		}
	}
	return idx
}

// TestSoundnessAgainstConcreteExecution is the strongest end-to-end
// property test of the analyzer: every WCET benchmark is executed
// concretely with an observer recording every store, and every observed
// value must lie within the abstract invariant at the corresponding
// program point — the flow-insensitive interval for globals, address-taken
// locals and arrays; the post-store point environment for scalar locals;
// the entry environment for parameters. The concrete return value of main
// must lie in the abstract one. All three fixpoint regimes must be sound
// here, since without context sensitivity the systems are monotonic.
func TestSoundnessAgainstConcreteExecution(t *testing.T) {
	for _, op := range []OpKind{OpWarrow, OpWiden, OpTwoPhase} {
		op := op
		t.Run(op.String(), func(t *testing.T) {
			for _, b := range wcet.All() {
				checkSoundness(t, op, b.Name, b.Src)
			}
		})
	}
}

func checkSoundness(t *testing.T, op OpKind, name, src string) {
	t.Helper()
	checkSoundnessOpts(t, name, src, Options{Op: op, Context: NoContext, MaxEvals: 20_000_000})
}

func checkSoundnessOpts(t *testing.T, name, src string, opts Options) {
	t.Helper()
	op := opts.Op
	ast, err := cint.Parse(src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	prog := cfg.Build(ast)
	res, err := Run(prog, opts)
	if err != nil {
		t.Fatalf("%s (%v): %v", name, op, err)
	}
	sites := storeIndex(prog)
	flowIns := func(v *cint.VarDecl) bool {
		return v.Global || v.AddrTaken || v.Type.Kind == cint.TypeArray
	}
	// Cache merged point environments.
	envCache := make(map[storeSite]Env)
	pointEnv := func(s storeSite) Env {
		if e, ok := envCache[s]; ok {
			return e
		}
		e := res.PointEnv(s.fn, s.node)
		envCache[s] = e
		return e
	}

	violations := 0
	report := func(format string, args ...any) {
		violations++
		if violations <= 5 {
			t.Errorf("%s (%v): %s", name, op, fmt.Sprintf(format, args...))
		}
	}
	ip := interp.New(ast)
	ip.Fuel = 3_000_000
	ip.Observe = func(v *cint.VarDecl, val int64, pos cint.Pos) {
		if flowIns(v) {
			if !intValued(v.Type) {
				return
			}
			if g := res.Global(v.ID); !g.Contains(val) {
				report("store %s = %d outside flow-insensitive %s", v.ID, val, g)
			}
			return
		}
		if v.Type.Kind != cint.TypeInt {
			return
		}
		if v.Fn != nil && pos == v.Fn.Pos {
			// Parameter binding: check the entry environment.
			env := pointEnv(storeSite{fn: v.Fn.Name, node: 0})
			if iv := env.Get(v.ID); !iv.Contains(val) {
				report("param %s = %d outside entry %s", v.ID, val, iv)
			}
			return
		}
		for _, s := range sites[v.ID][pos] {
			env := pointEnv(s)
			if env.IsBot() {
				report("store %s = %d at concretely-executed but abstractly-unreachable %s@%d",
					v.ID, val, s.fn, s.node)
				continue
			}
			if iv := env.Get(v.ID); !iv.Contains(val) {
				report("store %s = %d at %s@%d outside %s", v.ID, val, s.fn, s.node, iv)
			}
		}
	}
	ret, err := ip.Run()
	if err != nil {
		if errors.Is(err, interp.ErrFuel) {
			t.Logf("%s: out of fuel (partial trace checked)", name)
			return
		}
		t.Fatalf("%s: concrete execution failed: %v", name, err)
	}
	if rv := res.ReturnValue("main"); !rv.Contains(ret) {
		t.Errorf("%s (%v): concrete return %d outside abstract %s", name, op, ret, rv)
	}
	if violations > 5 {
		t.Errorf("%s (%v): %d further violations suppressed", name, op, violations-5)
	}
}
