package analysis

import (
	"context"
	"fmt"
	"time"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/points2"
	"warrow/internal/solver"
)

// KeyKind distinguishes the unknowns of the constraint system.
type KeyKind int8

// Key kinds.
const (
	// KStart is the synthetic root unknown: its right-hand side seeds the
	// global initializers and the entry of the entry function, and returns
	// the entry function's exit environment.
	KStart KeyKind = iota
	// KPoint is the environment at (function, context, program point).
	KPoint
	// KGlobal is the flow-insensitive value of one variable (a global, an
	// address-taken local, or an array), stored as a one-binding Env.
	KGlobal
)

// Key identifies an unknown of the analysis constraint system.
type Key struct {
	Kind KeyKind
	Fn   string // KPoint: function name
	Ctx  string // KPoint: calling context
	Node int    // KPoint: CFG node ID
	Var  string // KGlobal: variable ID
}

// String renders the unknown.
func (k Key) String() string {
	switch k.Kind {
	case KStart:
		return "<start>"
	case KGlobal:
		return "glob:" + k.Var
	default:
		if k.Ctx == "" {
			return fmt.Sprintf("%s@%d", k.Fn, k.Node)
		}
		return fmt.Sprintf("%s[%s]@%d", k.Fn, k.Ctx, k.Node)
	}
}

// OpKind selects the fixpoint regime.
type OpKind int

// Fixpoint regimes.
const (
	// OpWarrow solves with the combined operator ⊟ — the paper's
	// contribution: intertwined widening and narrowing in one pass.
	OpWarrow OpKind = iota
	// OpWiden solves with plain widening ∇ and no narrowing — the
	// comparator of Table 1.
	OpWiden
	// OpTwoPhase runs a complete widening iteration followed by a separate
	// narrowing iteration — the classical baseline of Fig. 7. Sound only
	// for monotonic systems (context-insensitive analyses).
	OpTwoPhase
)

// String renders the regime.
func (o OpKind) String() string {
	switch o {
	case OpWarrow:
		return "warrow"
	case OpWiden:
		return "widen"
	case OpTwoPhase:
		return "two-phase"
	default:
		return "?"
	}
}

// Options configures an analysis run.
type Options struct {
	// Entry is the entry function; defaults to "main".
	Entry string
	// Context selects the calling-context policy.
	Context ContextPolicy
	// Op selects the fixpoint regime.
	Op OpKind
	// MaxEvals bounds right-hand-side evaluations (0 = unbounded); runs
	// with FullContext on recursive programs need a budget.
	MaxEvals int
	// Ctx, when non-nil, cancels the underlying solve: the run returns its
	// partial result together with a solver.AbortError (see solver.Config).
	Ctx context.Context
	// Timeout, when positive, bounds the wall-clock duration of the solve.
	Timeout time.Duration
	// MaxFlips, when positive, arms the solver's oscillation watchdog: an
	// unknown that alternates narrow→widen more than MaxFlips times aborts
	// the run with a structured divergence diagnosis instead of burning the
	// whole evaluation budget.
	MaxFlips int
	// Widening selects the interval lattice (e.g. with thresholds);
	// defaults to plain widening.
	Widening *lattice.IntervalLattice
	// DegradeAfter, when positive, replaces ⊟ with the self-terminating
	// ⊟ₖ operator (k = DegradeAfter): each unknown abandons narrowing after
	// k narrow→widen phase switches. This is the paper's Sec. 4 remedy for
	// non-monotonic systems, on which plain ⊟ may oscillate forever —
	// context-sensitive analyses are exactly such systems, since a widened
	// argument can select a different callee context whose exit is
	// transiently ⊥, collapsing and reviving paths in alternation. Only
	// meaningful with Op == OpWarrow.
	DegradeAfter int
	// Localized restricts the accelerated operator to widening points
	// (loop heads) plus the side-effected unknowns — the Bourdoncle
	// discipline. Other program points are updated by plain re-evaluation.
	// Only meaningful with Op == OpWarrow.
	Localized bool
}

// Result is the outcome of an analysis run.
type Result struct {
	CFG    *cfg.Program
	PT     *points2.Result
	EnvL   *EnvLattice
	Values map[Key]Env
	Stats  solver.Stats
	Opts   Options
	sys    eqn.Sides[Key, Env]
}

// System returns the side-effecting constraint system the run solved, so a
// result can be re-checked independently of the solver that produced it
// (see internal/certify).
func (r *Result) System() eqn.Sides[Key, Env] { return r.sys }

// analyzer holds the static program information the right-hand sides read.
type analyzer struct {
	prog    *cfg.Program
	pt      *points2.Result
	envL    *EnvLattice
	ivl     *lattice.IntervalLattice
	flowIns map[string]bool
	policy  ContextPolicy
	entry   string
}

// retID is the pseudo-variable holding fn's return value in exit
// environments.
func retID(fn *cint.FuncDecl) string { return fn.Name + "::@ret" }

// trackedCell reports whether a variable holds integer values we track
// flow-insensitively (pointer cells carry no interval information).
func intValued(t *cint.Type) bool {
	return t.Kind == cint.TypeInt ||
		(t.Kind == cint.TypeArray && t.Elem.Kind == cint.TypeInt)
}

// newAnalyzer validates options and builds the static analysis state.
func newAnalyzer(prog *cfg.Program, opts *Options) (*analyzer, error) {
	if opts.Entry == "" {
		opts.Entry = "main"
	}
	if opts.Widening == nil {
		opts.Widening = lattice.Ints
	}
	if _, ok := prog.Graphs[opts.Entry]; !ok {
		return nil, fmt.Errorf("analysis: no entry function %q", opts.Entry)
	}
	a := &analyzer{
		prog:    prog,
		pt:      points2.Analyze(prog),
		envL:    NewEnvLattice(opts.Widening),
		ivl:     opts.Widening,
		flowIns: make(map[string]bool),
		policy:  opts.Context,
		entry:   opts.Entry,
	}
	for _, g := range prog.AST.Globals {
		a.flowIns[g.ID] = true
	}
	for _, fn := range prog.AST.Funcs {
		for _, l := range fn.Locals {
			if l.AddrTaken || l.Type.Kind == cint.TypeArray {
				a.flowIns[l.ID] = true
			}
		}
	}
	return a, nil
}

// Band is the priority-band assignment the analysis feeds to
// solver.SLRPlusKeyed (exported for instrumentation tools).
func Band(k Key) int {
	switch {
	case k.Kind == KStart:
		return 2
	case k.Kind == KGlobal:
		return 1
	case k.Kind == KPoint && k.Node == 0:
		return 1
	default:
		return 0
	}
}

// RunWithOperator analyzes the program with a caller-supplied update
// operator — the hook used by instrumentation and ablation tools;
// opts.Op is ignored.
func RunWithOperator(prog *cfg.Program, opts Options, op solver.Operator[Key, Env]) (*Result, error) {
	a, err := newAnalyzer(prog, &opts)
	if err != nil {
		return nil, err
	}
	sys := a.system()
	res, err := solver.SLRPlusKeyed(sys, a.envL, op,
		func(Key) Env { return BotEnv }, Key{Kind: KStart}, Band,
		solverConfig(opts))
	return &Result{
		CFG: prog, PT: a.pt, EnvL: a.envL,
		Values: res.Values, Stats: res.Stats, Opts: opts, sys: sys,
	}, err
}

// Run analyzes the program.
func Run(prog *cfg.Program, opts Options) (*Result, error) {
	a, err := newAnalyzer(prog, &opts)
	if err != nil {
		return nil, err
	}

	sys := a.system()
	init := func(Key) Env { return BotEnv }
	start := Key{Kind: KStart}
	cfgS := solverConfig(opts)
	// Priority bands: side-effected unknowns — flow-insensitive variables
	// AND function-entry unknowns — are scheduled above all other program
	// points, so they are re-evaluated only after the points contributing
	// to them have refreshed their side effects (see solver.SLRPlusKeyed).
	// Without this, the first call site of a function (discovered before
	// the callee's entry, hence keyed above it) feeds the entry with values
	// derived from the callee's own results, and ⊟ oscillates: the entry
	// narrows against the stale contribution, the call site bumps it, and
	// the phases alternate forever. The root tops everything.
	band := Band

	var res solver.Result[Key, Env]
	switch opts.Op {
	case OpWarrow:
		if opts.Localized && opts.DegradeAfter == 0 {
			// Localized acceleration needs ⊟ₖ at the widening points: with
			// plain ⊟ a loop head can narrow forever against stale
			// downstream values (see localizedOp).
			opts.DegradeAfter = 2
		}
		var op solver.Operator[Key, Env]
		if opts.DegradeAfter > 0 {
			op = solver.NewDegrading[Key, Env](a.envL, opts.DegradeAfter)
		} else {
			op = solver.Op[Key](solver.Warrow[Env](a.envL))
		}
		if opts.Localized {
			op = &localizedOp{inner: op, wp: wideningPoints(prog)}
		}
		res, err = solver.SLRPlusKeyed(sys, a.envL, op, init, start, band, cfgS)
	case OpWiden:
		op := solver.Op[Key](solver.Widen[Env](a.envL))
		res, err = solver.SLRPlusKeyed(sys, a.envL, op, init, start, band, cfgS)
	case OpTwoPhase:
		// The classical baseline of Sec. 7: a complete widening phase, then
		// a distinct narrowing phase in which program points may improve
		// but flow-insensitive globals only accumulate — narrowing a global
		// against individual contributions would be unsound (Example 8).
		up := solver.Op[Key](solver.Widen[Env](a.envL))
		down := &phase2Op{l: a.envL}
		res, err = solver.TwoPhaseSidesKeyed(sys, a.envL, init, start, band, up, down, cfgS)
	default:
		return nil, fmt.Errorf("analysis: unknown op %v", opts.Op)
	}
	out := &Result{
		CFG:    prog,
		PT:     a.pt,
		EnvL:   a.envL,
		Values: res.Values,
		Stats:  res.Stats,
		Opts:   opts,
		sys:    sys,
	}
	return out, err
}

// solverConfig translates the run options into the solver's robustness
// bounds.
func solverConfig(opts Options) solver.Config {
	return solver.Config{
		MaxEvals: opts.MaxEvals,
		Ctx:      opts.Ctx,
		Timeout:  opts.Timeout,
		MaxFlips: opts.MaxFlips,
	}
}

// phase2Op is the update operator of the baseline's narrowing phase:
// program points narrow (widen defensively if a non-monotonic right-hand
// side still grows), while flow-insensitive unknowns only join — the
// soundness restriction of Example 8 that the combined operator ⊟ lifts.
type phase2Op struct {
	l *EnvLattice
}

// Apply implements solver.Operator.
func (o *phase2Op) Apply(k Key, old, new Env) Env {
	if k.Kind == KGlobal {
		return o.l.Join(old, new)
	}
	if o.l.Leq(new, old) {
		return o.l.Narrow(old, new)
	}
	return o.l.Widen(old, new)
}

// system builds the side-effecting constraint system.
func (a *analyzer) system() eqn.Sides[Key, Env] {
	return func(k Key) eqn.SideRHS[Key, Env] {
		switch k.Kind {
		case KGlobal:
			return nil // contributions only
		case KStart:
			return a.startRHS()
		default:
			if k.Node == 0 {
				return nil // entry environments arrive as contributions
			}
			return a.pointRHS(k)
		}
	}
}

// batchSides wraps a raw side callback so that multiple contributions to
// the same unknown within one right-hand-side evaluation are joined and
// emitted once, preserving the paper's at-most-one-side-effect-per-unknown
// discipline.
func (a *analyzer) batchSides(side func(Key, Env)) (buffered func(Key, Env), flush func()) {
	buf := make(map[Key]Env)
	var order []Key
	buffered = func(k Key, v Env) {
		old, seen := buf[k]
		if !seen {
			order = append(order, k)
			old = BotEnv
		}
		buf[k] = a.envL.Join(old, v)
	}
	flush = func() {
		for _, k := range order {
			side(k, buf[k])
		}
	}
	return buffered, flush
}

// startRHS seeds globals and the entry function, and returns its exit
// environment.
func (a *analyzer) startRHS() eqn.SideRHS[Key, Env] {
	return func(get func(Key) Env, rawSide func(Key, Env)) Env {
		side, flush := a.batchSides(rawSide)
		defer flush()
		for _, g := range a.prog.AST.Globals {
			if !intValued(g.Type) {
				continue
			}
			v := lattice.Singleton(0) // C zero-initialization
			if g.Init != nil {
				ec := evalCtx{a: a, readFI: func(string) lattice.Interval { return lattice.FullInterval }}
				v = ec.eval(TopEnv, g.Init)
			}
			side(Key{Kind: KGlobal, Var: g.ID}, Binding(g.ID, v))
		}
		g := a.prog.Graphs[a.entry]
		fn := g.Fn
		args := make([]lattice.Interval, len(fn.Params))
		for i := range args {
			args[i] = lattice.FullInterval
		}
		ctx0 := makeContext(a.policy, fn, args)
		entry := TopEnv
		for _, p := range fn.Params {
			if p.Type.Kind == cint.TypeInt && a.flowIns[p.ID] {
				side(Key{Kind: KGlobal, Var: p.ID}, Binding(p.ID, lattice.FullInterval))
			}
		}
		side(Key{Kind: KPoint, Fn: fn.Name, Ctx: ctx0, Node: 0}, entry)
		return get(Key{Kind: KPoint, Fn: fn.Name, Ctx: ctx0, Node: g.Exit.ID})
	}
}

// pointRHS joins the transfer of all in-edges of a program point.
func (a *analyzer) pointRHS(k Key) eqn.SideRHS[Key, Env] {
	g := a.prog.Graphs[k.Fn]
	if g == nil || k.Node < 0 || k.Node >= len(g.Nodes) {
		return nil
	}
	node := g.Nodes[k.Node]
	return func(get func(Key) Env, rawSide func(Key, Env)) Env {
		side, flush := a.batchSides(rawSide)
		defer flush()
		readFI := func(id string) lattice.Interval {
			return get(Key{Kind: KGlobal, Var: id}).Get(id)
		}
		ec := evalCtx{a: a, readFI: readFI}
		out := BotEnv
		for _, e := range node.In {
			pred := get(Key{Kind: KPoint, Fn: k.Fn, Ctx: k.Ctx, Node: e.From.ID})
			out = a.envL.Join(out, a.transfer(e, k.Ctx, pred, ec, get, side))
		}
		return out
	}
}

// transfer applies one CFG edge to the predecessor environment.
func (a *analyzer) transfer(e *cfg.Edge, ctx string, env Env, ec evalCtx, get func(Key) Env, side func(Key, Env)) Env {
	if env.IsBot() {
		return BotEnv
	}
	switch e.Kind {
	case cfg.Nop:
		return env
	case cfg.Decl:
		v := e.Var
		if !intValued(v.Type) {
			return env // pointer declarations carry no interval state
		}
		val := lattice.FullInterval
		if e.Rhs != nil {
			val = ec.eval(env, e.Rhs)
		}
		if a.flowIns[v.ID] {
			if v.Type.Kind == cint.TypeArray && e.Rhs == nil {
				val = lattice.FullInterval // uninitialized local array
			}
			side(Key{Kind: KGlobal, Var: v.ID}, Binding(v.ID, val))
			return env
		}
		return env.Set(v.ID, val)
	case cfg.Assign:
		if e.Rhs.Type().Kind != cint.TypeInt {
			return env // pointer assignment: handled by points-to
		}
		return a.assign(e.Lhs, ec.eval(env, e.Rhs), env, ec, side)
	case cfg.Guard:
		return ec.refine(env, e.Cond, e.Branch)
	case cfg.Assert:
		// Execution only continues past a passing assertion, so the
		// condition may be assumed; Result.Assertions classifies it.
		return ec.refine(env, e.Cond, true)
	case cfg.Ret:
		if e.Rhs != nil && e.Rhs.Type().Kind == cint.TypeInt {
			return env.Set(retID(e.From.Fn), ec.eval(env, e.Rhs))
		}
		return env
	case cfg.Call:
		return a.call(e, env, ec, get, side)
	default:
		panic(fmt.Sprintf("analysis: unhandled edge kind %v", e.Kind))
	}
}

// assign stores val into an lvalue: a strong update for scalar locals, a
// side-effect contribution for flow-insensitive variables and pointer or
// array targets (weak by construction).
func (a *analyzer) assign(lhs cint.Expr, val lattice.Interval, env Env, ec evalCtx, side func(Key, Env)) Env {
	switch l := lhs.(type) {
	case *cint.Ident:
		if a.flowIns[l.Obj.ID] {
			side(Key{Kind: KGlobal, Var: l.Obj.ID}, Binding(l.Obj.ID, val))
			return env
		}
		return env.Set(l.Obj.ID, val)
	case *cint.UnaryExpr: // *p = val
		for _, t := range ec.targets(l.X) {
			side(Key{Kind: KGlobal, Var: t}, Binding(t, val))
		}
		return env
	case *cint.IndexExpr: // a[i] = val
		for _, t := range ec.targets(l.X) {
			side(Key{Kind: KGlobal, Var: t}, Binding(t, val))
		}
		return env
	default:
		panic(fmt.Sprintf("analysis: assign to %T", lhs))
	}
}

// call transfers a call edge: it computes the callee context, contributes
// the entry environment, reads the callee's exit environment, and binds the
// result.
func (a *analyzer) call(e *cfg.Edge, env Env, ec evalCtx, get func(Key) Env, side func(Key, Env)) Env {
	callee := e.Call.Fn
	g := a.prog.Graphs[callee.Name]
	args := make([]lattice.Interval, len(callee.Params))
	for i, p := range callee.Params {
		if p.Type.Kind == cint.TypeInt {
			args[i] = ec.eval(env, e.Call.Args[i])
		}
	}
	ctx := makeContext(a.policy, callee, args)
	entry := TopEnv
	for i, p := range callee.Params {
		if p.Type.Kind != cint.TypeInt {
			continue
		}
		if a.flowIns[p.ID] {
			side(Key{Kind: KGlobal, Var: p.ID}, Binding(p.ID, args[i]))
			continue
		}
		entry = entry.Set(p.ID, args[i])
	}
	if entry.IsBot() {
		return BotEnv // an argument evaluated to ⊥: the call cannot execute
	}
	side(Key{Kind: KPoint, Fn: callee.Name, Ctx: ctx, Node: 0}, entry)
	exitEnv := get(Key{Kind: KPoint, Fn: callee.Name, Ctx: ctx, Node: g.Exit.ID})
	if exitEnv.IsBot() {
		return BotEnv // the callee (for this context) never returns
	}
	if e.Lhs != nil && callee.Ret.Kind == cint.TypeInt {
		return a.assign(e.Lhs, exitEnv.Get(retID(callee)), env, ec, side)
	}
	return env
}
