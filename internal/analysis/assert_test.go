package analysis

import (
	"strings"
	"testing"

	"warrow/internal/cint"
	"warrow/internal/interp"
)

// TestAssertClassification: the analyzer proves assertions that follow from
// the ⊟-invariants, flags impossible ones, and says "unknown" honestly.
func TestAssertClassification(t *testing.T) {
	src := `
int g = 0;
void f(int b) {
    if (b) { g = b + 1; } else { g = -b - 1; }
}
int main() {
    int i;
    int x;
    i = 0;
    while (i < 100) {
        i = i + 1;
        assert(i <= 100);          // proved: loop invariant
    }
    assert(i == 100);              // proved: exact exit value
    f(1);
    f(2);
    assert(g >= 0);                // proved: flow-insensitive g = [0,3]
    assert(g <= 3);                // proved
    assert(g == 2);                // unknown: g is [0,3]
    if (i < 50) {
        assert(0 == 1);            // unreachable: i == 100 here
    }
    x = i - 100;
    assert(x != 0);                // failed: x is exactly 0
    return x;
}`
	res := run(t, src, Options{Op: OpWarrow, Context: FullContext})
	as := res.Assertions()
	if len(as) != 7 {
		t.Fatalf("found %d assertions, want 7:\n%s", len(as), res.AssertionReport())
	}
	want := []AssertStatus{
		AssertProved,      // i <= 100
		AssertProved,      // i == 100
		AssertProved,      // g >= 0
		AssertProved,      // g <= 3
		AssertUnknown,     // g == 2
		AssertUnreachable, // 0 == 1
		AssertFailed,      // x != 0
	}
	for i, a := range as {
		if a.Status != want[i] {
			t.Errorf("assert(%s) at %s: %s, want %s", a.Cond, a.Pos, a.Status, want[i])
		}
	}
	rep := res.AssertionReport()
	if !strings.Contains(rep, "4/7 proved") {
		t.Errorf("report:\n%s", rep)
	}
}

// TestAssertRefinesDownstream: a passing assertion may be assumed afterwards.
func TestAssertRefinesDownstream(t *testing.T) {
	src := `
int main() {
    int x;
    assert(x >= 0 && x < 10);
    return x;
}`
	res := run(t, src, Options{Op: OpWarrow})
	ret := res.ReturnValue("main")
	if !ret.Contains(0) || !ret.Contains(9) || ret.Contains(-1) || ret.Contains(10) {
		t.Errorf("return = %s, want [0,9]", ret)
	}
}

// TestAssertInterp: the concrete interpreter aborts on failing assertions
// and passes true ones.
func TestAssertInterp(t *testing.T) {
	ok := cint.MustParse(`int main() { int i; i = 3; assert(i == 3); return i; }`)
	if _, err := interp.New(ok).Run(); err != nil {
		t.Fatalf("true assertion aborted: %v", err)
	}
	bad := cint.MustParse(`int main() { int i; i = 3; assert(i > 3); return i; }`)
	if _, err := interp.New(bad).Run(); err == nil || !strings.Contains(err.Error(), "assertion failed") {
		t.Fatalf("false assertion did not abort: %v", err)
	}
}
