package analysis

import (
	"fmt"

	"warrow/internal/cint"
	"warrow/internal/lattice"
)

// evalCtx evaluates expressions abstractly during one right-hand-side
// evaluation. readFI reads the current value of a flow-insensitive variable
// (routed through the solver's get so dependences are tracked).
type evalCtx struct {
	a      *analyzer
	readFI func(id string) lattice.Interval
}

// readVar returns the interval of a variable, from the environment for
// scalar locals and from the flow-insensitive unknown otherwise.
func (ec evalCtx) readVar(env Env, v *cint.VarDecl) lattice.Interval {
	if ec.a.flowIns[v.ID] {
		return ec.readFI(v.ID)
	}
	return env.Get(v.ID)
}

// targets returns the cells a pointer-valued expression may point to.
func (ec evalCtx) targets(e cint.Expr) []string {
	switch x := e.(type) {
	case *cint.Ident:
		if x.Obj.Type.Kind == cint.TypeArray {
			return []string{x.Obj.ID}
		}
		return ec.a.pt.PointsTo(x.Obj.ID).Elems()
	case *cint.UnaryExpr:
		if x.Op == cint.TokAmp {
			return []string{x.X.(*cint.Ident).Obj.ID}
		}
		if x.Op == cint.TokStar {
			var out []string
			for _, t := range ec.targets(x.X) {
				out = append(out, ec.a.pt.PointsTo(t).Elems()...)
			}
			return out
		}
	case *cint.IndexExpr:
		// &a[i] aliases the array cell itself in our summarization.
		return ec.targets(x.X)
	}
	return nil
}

// eval returns the interval abstraction of an int-valued expression.
func (ec evalCtx) eval(env Env, e cint.Expr) lattice.Interval {
	if env.IsBot() {
		return lattice.EmptyInterval
	}
	switch x := e.(type) {
	case *cint.IntLit:
		return lattice.Singleton(x.Value)
	case *cint.Ident:
		if x.Obj.Type.Kind != cint.TypeInt {
			return lattice.FullInterval // pointer used as value (comparisons)
		}
		return ec.readVar(env, x.Obj)
	case *cint.UnaryExpr:
		switch x.Op {
		case cint.TokMinus:
			return ec.eval(env, x.X).Neg()
		case cint.TokNot:
			return triToInterval(triNot(ec.truth(env, x.X)))
		case cint.TokStar:
			return ec.readCells(ec.targets(x.X))
		}
		return lattice.FullInterval
	case *cint.BinaryExpr:
		switch x.Op {
		case cint.TokPlus:
			return ec.eval(env, x.X).Add(ec.eval(env, x.Y))
		case cint.TokMinus:
			return ec.eval(env, x.X).Sub(ec.eval(env, x.Y))
		case cint.TokStar:
			return ec.eval(env, x.X).Mul(ec.eval(env, x.Y))
		case cint.TokSlash:
			return ec.eval(env, x.X).Div(ec.eval(env, x.Y))
		case cint.TokPercent:
			return ec.eval(env, x.X).Rem(ec.eval(env, x.Y))
		case cint.TokLt, cint.TokLe, cint.TokGt, cint.TokGe, cint.TokEq, cint.TokNe,
			cint.TokAndAnd, cint.TokOrOr:
			return triToInterval(ec.truth(env, x))
		}
		return lattice.FullInterval
	case *cint.IndexExpr:
		return ec.readCells(ec.targets(x.X))
	default:
		panic(fmt.Sprintf("analysis: eval of %T", e))
	}
}

// readCells joins the flow-insensitive values of the given cells; an empty
// target set (e.g. a wild pointer) reads as ⊤.
func (ec evalCtx) readCells(cells []string) lattice.Interval {
	if len(cells) == 0 {
		return lattice.FullInterval
	}
	out := lattice.EmptyInterval
	for _, c := range cells {
		out = ec.a.ivl.Join(out, ec.readFI(c))
	}
	return out
}

// Not negates a three-valued truth value.
func triNot(t lattice.Tri) lattice.Tri {
	switch t {
	case lattice.TriTrue:
		return lattice.TriFalse
	case lattice.TriFalse:
		return lattice.TriTrue
	default:
		return lattice.TriUnknown
	}
}

// triToInterval renders a truth value as the interval of a C boolean.
func triToInterval(t lattice.Tri) lattice.Interval {
	switch t {
	case lattice.TriTrue:
		return lattice.Singleton(1)
	case lattice.TriFalse:
		return lattice.Singleton(0)
	default:
		return lattice.Range(0, 1)
	}
}

// truth abstractly evaluates an expression as a condition.
func (ec evalCtx) truth(env Env, e cint.Expr) lattice.Tri {
	switch x := e.(type) {
	case *cint.BinaryExpr:
		switch x.Op {
		case cint.TokLt:
			return ec.eval(env, x.X).CmpLt(ec.eval(env, x.Y))
		case cint.TokLe:
			return ec.eval(env, x.X).CmpLe(ec.eval(env, x.Y))
		case cint.TokGt:
			return ec.eval(env, x.Y).CmpLt(ec.eval(env, x.X))
		case cint.TokGe:
			return ec.eval(env, x.Y).CmpLe(ec.eval(env, x.X))
		case cint.TokEq:
			if x.X.Type().Kind != cint.TypeInt {
				return lattice.TriUnknown // pointer equality
			}
			return ec.eval(env, x.X).CmpEq(ec.eval(env, x.Y))
		case cint.TokNe:
			if x.X.Type().Kind != cint.TypeInt {
				return lattice.TriUnknown
			}
			return triNot(ec.eval(env, x.X).CmpEq(ec.eval(env, x.Y)))
		case cint.TokAndAnd:
			l, r := ec.truth(env, x.X), ec.truth(env, x.Y)
			switch {
			case l == lattice.TriFalse || r == lattice.TriFalse:
				return lattice.TriFalse
			case l == lattice.TriTrue && r == lattice.TriTrue:
				return lattice.TriTrue
			default:
				return lattice.TriUnknown
			}
		case cint.TokOrOr:
			l, r := ec.truth(env, x.X), ec.truth(env, x.Y)
			switch {
			case l == lattice.TriTrue || r == lattice.TriTrue:
				return lattice.TriTrue
			case l == lattice.TriFalse && r == lattice.TriFalse:
				return lattice.TriFalse
			default:
				return lattice.TriUnknown
			}
		}
	case *cint.UnaryExpr:
		if x.Op == cint.TokNot {
			return triNot(ec.truth(env, x.X))
		}
	}
	// Arithmetic condition: nonzero means true.
	v := ec.eval(env, e)
	switch {
	case v.IsEmpty():
		return lattice.TriUnknown
	case !v.Contains(0):
		return lattice.TriTrue
	default:
		if c, ok := v.IsConst(); ok && c == 0 {
			return lattice.TriFalse
		}
		return lattice.TriUnknown
	}
}

// refine restricts env under the assumption that cond evaluates to branch,
// returning ⊥ when the branch is infeasible.
func (ec evalCtx) refine(env Env, cond cint.Expr, branch bool) Env {
	if env.IsBot() {
		return BotEnv
	}
	switch t := ec.truth(env, cond); {
	case t == lattice.TriTrue && !branch:
		return BotEnv
	case t == lattice.TriFalse && branch:
		return BotEnv
	}
	switch x := cond.(type) {
	case *cint.BinaryExpr:
		op := x.Op
		if !branch {
			if neg, ok := negateCmp(op); ok {
				return ec.refineCmp(env, neg, x.X, x.Y)
			}
			// !(a && b), !(a || b): handled conservatively (the CFG
			// compiles short-circuit guards away; this path only triggers
			// for programmatic use).
			return env
		}
		switch op {
		case cint.TokLt, cint.TokLe, cint.TokGt, cint.TokGe, cint.TokEq, cint.TokNe:
			return ec.refineCmp(env, op, x.X, x.Y)
		case cint.TokAndAnd:
			return ec.refine(ec.refine(env, x.X, true), x.Y, true)
		}
		return env
	case *cint.UnaryExpr:
		if x.Op == cint.TokNot {
			return ec.refine(env, x.X, !branch)
		}
	case *cint.Ident:
		// Truthiness of a scalar: x != 0 / x == 0.
		if x.Obj.Type.Kind == cint.TypeInt && !ec.a.flowIns[x.Obj.ID] {
			v := env.Get(x.Obj.ID)
			if branch {
				return env.Set(x.Obj.ID, v.RestrictNe(lattice.Singleton(0)))
			}
			return env.Set(x.Obj.ID, v.RestrictEq(lattice.Singleton(0)))
		}
	}
	return env
}

// negateCmp returns the complementary comparison operator.
func negateCmp(op cint.TokKind) (cint.TokKind, bool) {
	switch op {
	case cint.TokLt:
		return cint.TokGe, true
	case cint.TokLe:
		return cint.TokGt, true
	case cint.TokGt:
		return cint.TokLe, true
	case cint.TokGe:
		return cint.TokLt, true
	case cint.TokEq:
		return cint.TokNe, true
	case cint.TokNe:
		return cint.TokEq, true
	default:
		return op, false
	}
}

// refineCmp refines env under the comparison lhs op rhs, narrowing the
// bindings of scalar-local operands on both sides.
func (ec evalCtx) refineCmp(env Env, op cint.TokKind, lhs, rhs cint.Expr) Env {
	lv, rv := ec.eval(env, lhs), ec.eval(env, rhs)
	env = ec.refineVar(env, lhs, restrict(op, lv, rv))
	env = ec.refineVar(env, rhs, restrict(swapCmp(op), rv, lv))
	return env
}

// swapCmp mirrors a comparison operator (a < b ⇔ b > a).
func swapCmp(op cint.TokKind) cint.TokKind {
	switch op {
	case cint.TokLt:
		return cint.TokGt
	case cint.TokLe:
		return cint.TokGe
	case cint.TokGt:
		return cint.TokLt
	case cint.TokGe:
		return cint.TokLe
	default:
		return op // ==, != are symmetric
	}
}

// restrict applies the refinement for "x op other" to the interval of x.
func restrict(op cint.TokKind, x, other lattice.Interval) lattice.Interval {
	switch op {
	case cint.TokLt:
		return x.RestrictLt(other)
	case cint.TokLe:
		return x.RestrictLe(other)
	case cint.TokGt:
		return x.RestrictGt(other)
	case cint.TokGe:
		return x.RestrictGe(other)
	case cint.TokEq:
		return x.RestrictEq(other)
	case cint.TokNe:
		return x.RestrictNe(other)
	default:
		return x
	}
}

// refineVar stores a refined interval back if the operand is a scalar local
// identifier (flow-insensitive variables cannot be refined soundly).
func (ec evalCtx) refineVar(env Env, e cint.Expr, v lattice.Interval) Env {
	id, ok := e.(*cint.Ident)
	if !ok || id.Obj.Type.Kind != cint.TypeInt || ec.a.flowIns[id.Obj.ID] {
		return env
	}
	return env.Set(id.Obj.ID, v)
}
