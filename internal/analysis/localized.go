package analysis

import (
	"warrow/internal/cfg"
	"warrow/internal/solver"
)

// wideningPoints computes, per function, the loop heads: targets of
// retreating edges in the reverse-postorder numbering. Restricting the
// accelerated operator to these points (plus the side-effected unknowns)
// is the classical Bourdoncle discipline; everywhere else plain
// re-evaluation suffices, since every cycle of the constraint system
// passes through a widening point.
func wideningPoints(prog *cfg.Program) map[string]map[int]bool {
	wp := make(map[string]map[int]bool, len(prog.Graphs))
	for name, g := range prog.Graphs {
		pts := make(map[int]bool)
		for _, n := range g.Nodes {
			for _, e := range n.Out {
				if e.To.ID <= e.From.ID {
					pts[e.To.ID] = true
				}
			}
		}
		wp[name] = pts
	}
	return wp
}

// localizedOp applies an accelerated operator only at widening points,
// function entries, flow-insensitive unknowns and the root; all other
// program points take the plain new value. Soundness is unaffected — a
// replace-updated unknown satisfies σ[x] = fₓ(σ) exactly — and a non-loop
// join never passes through a widened intermediate state that narrowing
// must repair.
//
// Termination caveat: the Theorem 3 guarantee relies on *every* unknown
// stabilizing its own chain; plain updates track their inputs instead, so
// a widening point can repeatedly narrow against a stale downstream value
// that then creeps upward (observed on the `prime` benchmark: the loop
// head flips [3,∞] ↔ [3,k] with k growing by 2 per cycle). Localized mode
// therefore uses the degrading operator ⊟ₖ at widening points, which
// bounds the narrow→widen flips per unknown; Run defaults k to 2.
type localizedOp struct {
	inner solver.Operator[Key, Env] // the accelerated operator, normally ⊟ₖ
	wp    map[string]map[int]bool
}

// Apply implements solver.Operator.
func (o *localizedOp) Apply(k Key, old, new Env) Env {
	if k.Kind == KPoint && k.Node != 0 && !o.wp[k.Fn][k.Node] {
		return new
	}
	return o.inner.Apply(k, old, new)
}
