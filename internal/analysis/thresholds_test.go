package analysis

import (
	"testing"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/lattice"
	"warrow/internal/wcet"
)

// TestInferThresholdsWidenOnly: with inferred thresholds, even the ∇-only
// solver lands on the exact loop bound — the counter widens to the guard
// constant instead of to +inf.
func TestInferThresholdsWidenOnly(t *testing.T) {
	src := `
int main() {
    int i;
    i = 0;
    while (i < 100) { i = i + 1; }
    return i;
}`
	ast := cint.MustParse(src)
	prog := cfg.Build(ast)
	res, err := Run(prog, Options{
		Op:       OpWiden,
		Widening: InferThresholds(ast),
		MaxEvals: 1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	ret := res.ReturnValue("main")
	if !ret.Hi.IsFinite() {
		t.Errorf("∇ with inferred thresholds should keep a finite bound, got %s", ret)
	}
	if !ret.Contains(100) {
		t.Errorf("return %s must contain 100", ret)
	}
}

// TestInferThresholdsSound: threshold widening never breaks the soundness
// check on a sample of benchmarks.
func TestInferThresholdsSound(t *testing.T) {
	for _, name := range []string{"bs", "crc", "adpcm-lite"} {
		b, ok := wcet.ByName(name)
		if !ok {
			t.Fatal(name)
		}
		ast := cint.MustParse(b.Src)
		checkSoundnessOpts(t, name, b.Src, Options{
			Op:       OpWarrow,
			Widening: InferThresholds(ast),
			MaxEvals: 20_000_000,
		})
	}
}

// TestInferThresholdsCollectsNeighbors: guard constants, their negations
// and off-by-one neighbours are all thresholds.
func TestInferThresholdsCollectsNeighbors(t *testing.T) {
	ast := cint.MustParse(`
int a[16];
int main() { int i; if (i < 42) { i = 7; } return i; }`)
	l := InferThresholds(ast)
	// Widening [0,40] up by 1 must stop at 41 (= 42-1), not jump to +inf.
	got := l.Widen(lattice.Range(0, 40), lattice.Range(0, 41))
	if !l.Eq(got, lattice.Range(0, 41)) {
		t.Errorf("widen stopped at %s, want [0,41]", got)
	}
	// Array length 16 is a threshold as well.
	got = l.Widen(lattice.Range(0, 14), lattice.Range(0, 15))
	if !got.Hi.IsFinite() || got.Hi.Int() > 16 {
		t.Errorf("widen with array-length threshold gave %s", got)
	}
	// Negations are present.
	got = l.Widen(lattice.Range(-40, 0), lattice.Range(-41, 0))
	if !got.Lo.IsFinite() {
		t.Errorf("negative side should hit a threshold, got %s", got)
	}
}
