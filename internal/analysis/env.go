// Package analysis implements the paper's evaluation analysis for mini-C:
// an interval analysis of integer variables in which local variables are
// analyzed context-sensitively (with a configurable notion of calling
// context) while globals — together with address-taken locals and arrays —
// are treated flow-insensitively through the side-effecting constraint
// systems of Sec. 6, on top of a flow-insensitive points-to analysis.
//
// The constraint system has one Env-valued unknown per (function, context,
// program point) plus one unknown per flow-insensitive variable. Function
// entry environments and global values are propagated purely by side
// effects, following Apinis, Seidl and Vojdani's "Side-Effecting Constraint
// Systems" formulation, so the system can be solved locally by SLR⁺ with
// any update operator: ⊟ (the paper's contribution), plain widening (the
// Table 1 comparator), or the classical two-phase baseline (the Fig. 7
// comparator).
package analysis

import (
	"sort"
	"strings"

	"warrow/internal/lattice"
)

// Env is an abstract environment: the interval values of the scalar,
// non-address-taken locals in scope, or ⊥ for unreachable program points.
// Variables without a binding are unconstrained (⊤ = [-∞,+∞]); bindings
// equal to ⊤ are never stored, so environments stay small and canonical.
// Env values are immutable.
type Env struct {
	bot  bool
	vars map[string]lattice.Interval
}

// BotEnv is the unreachable environment.
var BotEnv = Env{bot: true}

// TopEnv is the reachable environment with no constraints.
var TopEnv = Env{}

// IsBot reports whether the environment is unreachable.
func (e Env) IsBot() bool { return e.bot }

// Get returns the interval of id, or ⊤ if unbound. Get on ⊥ returns the
// empty interval.
func (e Env) Get(id string) lattice.Interval {
	if e.bot {
		return lattice.EmptyInterval
	}
	if v, ok := e.vars[id]; ok {
		return v
	}
	return lattice.FullInterval
}

// Set returns a copy of e with id bound to v. Binding the empty interval
// collapses the environment to ⊥ (no concrete state assigns an impossible
// value); binding ⊤ removes the entry.
func (e Env) Set(id string, v lattice.Interval) Env {
	if e.bot {
		return e
	}
	if v.IsEmpty() {
		return BotEnv
	}
	full := lattice.Ints.Eq(v, lattice.FullInterval)
	if full {
		if _, had := e.vars[id]; !had {
			return e
		}
	}
	vars := make(map[string]lattice.Interval, len(e.vars)+1)
	for k, val := range e.vars {
		vars[k] = val
	}
	if full {
		delete(vars, id)
	} else {
		vars[id] = v
	}
	return Env{vars: vars}
}

// Binding returns an environment with the single binding id ↦ v; used for
// side-effect contributions to flow-insensitive unknowns.
func Binding(id string, v lattice.Interval) Env {
	return TopEnv.Set(id, v)
}

// Len returns the number of explicit bindings.
func (e Env) Len() int { return len(e.vars) }

// Ids returns the bound variable IDs, sorted.
func (e Env) Ids() []string {
	out := make([]string, 0, len(e.vars))
	for k := range e.vars {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// String renders the environment deterministically.
func (e Env) String() string {
	if e.bot {
		return "⊥"
	}
	if len(e.vars) == 0 {
		return "⊤"
	}
	parts := make([]string, 0, len(e.vars))
	for _, id := range e.Ids() {
		parts = append(parts, id+"="+e.vars[id].String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// EnvLattice is the lattice of abstract environments: the bottom-lifted
// pointwise lift of an interval lattice, with absent bindings read as ⊤.
type EnvLattice struct {
	// Iv is the interval lattice used for variable values; its widening
	// (plain or threshold-based) determines the analysis's acceleration.
	Iv *lattice.IntervalLattice
}

// NewEnvLattice returns an environment lattice over the given interval
// lattice.
func NewEnvLattice(iv *lattice.IntervalLattice) *EnvLattice {
	return &EnvLattice{Iv: iv}
}

// Bottom returns the unreachable environment.
func (*EnvLattice) Bottom() Env { return BotEnv }

// Top returns the unconstrained environment.
func (*EnvLattice) Top() Env { return TopEnv }

// Leq reports the pointwise order with ⊥ below everything.
func (l *EnvLattice) Leq(a, b Env) bool {
	if a.bot {
		return true
	}
	if b.bot {
		return false
	}
	for id, bv := range b.vars {
		if !l.Iv.Leq(a.Get(id), bv) {
			return false
		}
	}
	return true
}

// Eq reports environment equality.
func (l *EnvLattice) Eq(a, b Env) bool {
	if a.bot || b.bot {
		return a.bot == b.bot
	}
	if len(a.vars) != len(b.vars) {
		return false
	}
	for id, av := range a.vars {
		bv, ok := b.vars[id]
		if !ok || !l.Iv.Eq(av, bv) {
			return false
		}
	}
	return true
}

// combine merges two reachable environments pointwise with op, dropping ⊤
// results. onlyCommon restricts the result to ids bound in both (correct
// for operations where op(x, ⊤) = ⊤, i.e. Join and Widen).
func (l *EnvLattice) combine(a, b Env, op func(x, y lattice.Interval) lattice.Interval, onlyCommon bool) Env {
	vars := make(map[string]lattice.Interval)
	for id, av := range a.vars {
		bv, inB := b.vars[id]
		if onlyCommon && !inB {
			continue
		}
		if !inB {
			bv = lattice.FullInterval
		}
		v := op(av, bv)
		if v.IsEmpty() {
			return BotEnv
		}
		if !l.Iv.Eq(v, lattice.FullInterval) {
			vars[id] = v
		}
	}
	for id, bv := range b.vars {
		if _, inA := a.vars[id]; inA {
			continue
		}
		if onlyCommon {
			continue
		}
		v := op(lattice.FullInterval, bv)
		if v.IsEmpty() {
			return BotEnv
		}
		if !l.Iv.Eq(v, lattice.FullInterval) {
			vars[id] = v
		}
	}
	return Env{vars: vars}
}

// Join joins pointwise; ⊥ is neutral.
func (l *EnvLattice) Join(a, b Env) Env {
	if a.bot {
		return b
	}
	if b.bot {
		return a
	}
	return l.combine(a, b, l.Iv.Join, true)
}

// Meet meets pointwise; an empty component collapses to ⊥.
func (l *EnvLattice) Meet(a, b Env) Env {
	if a.bot || b.bot {
		return BotEnv
	}
	return l.combine(a, b, l.Iv.Meet, false)
}

// Widen widens pointwise; ⊥ is neutral.
func (l *EnvLattice) Widen(a, b Env) Env {
	if a.bot {
		return b
	}
	if b.bot {
		return a
	}
	return l.combine(a, b, l.Iv.Widen, true)
}

// Narrow narrows pointwise; requires b ⊑ a.
func (l *EnvLattice) Narrow(a, b Env) Env {
	if a.bot || b.bot {
		return b
	}
	return l.combine(a, b, l.Iv.Narrow, false)
}

// Format renders an environment.
func (*EnvLattice) Format(a Env) string { return a.String() }
