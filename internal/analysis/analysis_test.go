package analysis

import (
	"strings"
	"testing"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/lattice"
)

func run(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	ast, err := cint.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if opts.MaxEvals == 0 {
		opts.MaxEvals = 2_000_000
	}
	res, err := Run(cfg.Build(ast), opts)
	if err != nil {
		t.Fatalf("analysis diverged: %v (stats %+v)", err, res.Stats)
	}
	return res
}

func wantIv(t *testing.T, got lattice.Interval, want lattice.Interval, what string) {
	t.Helper()
	if !lattice.Ints.Eq(got, want) {
		t.Errorf("%s = %s, want %s", what, got, want)
	}
}

// The program of the paper's Example 7.
const example7 = `
int g = 0;
void f(int b) {
    if (b) { g = b + 1; } else { g = -b - 1; }
}
int main() {
    f(1);
    f(2);
    return 0;
}
`

// TestExample7WarrowGlobal: context-sensitive analysis with ⊟ computes the
// tight interval [0,3] for g, exactly as in the paper's Example 9.
func TestExample7WarrowGlobal(t *testing.T) {
	res := run(t, example7, Options{Context: FullContext, Op: OpWarrow})
	wantIv(t, res.Global("g"), lattice.Range(0, 3), "g")
	// f must have been analyzed in two contexts (b:[1,1] and b:[2,2]).
	if ctxs := res.Contexts("f"); len(ctxs) != 2 {
		t.Errorf("contexts of f: %v, want 2", ctxs)
	}
}

// TestExample7WidenOnly: with plain ∇ the global keeps its widened value.
func TestExample7WidenOnly(t *testing.T) {
	res := run(t, example7, Options{Context: FullContext, Op: OpWiden})
	g := res.Global("g")
	if !g.Hi.IsPosInf() {
		t.Errorf("g = %s, want an upper bound widened to +inf", g)
	}
	if g.Lo.IsNegInf() {
		t.Errorf("g = %s: lower bound should stay 0 (values only grew upward)", g)
	}
}

// TestCountingLoop: the canonical loop gets exact bounds with ⊟.
func TestCountingLoop(t *testing.T) {
	res := run(t, `
int main() {
    int i;
    i = 0;
    while (i < 100) {
        i = i + 1;
    }
    return i;
}`, Options{Op: OpWarrow})
	wantIv(t, res.ReturnValue("main"), lattice.Singleton(100), "return of main")
}

// TestCountingLoopWidenOnly: without narrowing the exit keeps +inf.
func TestCountingLoopWidenOnly(t *testing.T) {
	res := run(t, `
int main() {
    int i;
    i = 0;
    while (i < 100) {
        i = i + 1;
    }
    return i;
}`, Options{Op: OpWiden})
	ret := res.ReturnValue("main")
	if !ret.Hi.IsPosInf() {
		t.Errorf("return = %s, want upper bound +inf under ∇-only", ret)
	}
}

// TestTwoPhaseOnMonotone: context-insensitive (monotonic) systems give the
// same loop bounds under two-phase and ⊟.
func TestTwoPhaseOnMonotone(t *testing.T) {
	src := `
int main() {
    int i;
    i = 0;
    while (i < 100) {
        i = i + 1;
    }
    return i;
}`
	a := run(t, src, Options{Op: OpWarrow, Context: NoContext})
	b := run(t, src, Options{Op: OpTwoPhase, Context: NoContext})
	wantIv(t, a.ReturnValue("main"), lattice.Singleton(100), "⊟ return")
	wantIv(t, b.ReturnValue("main"), lattice.Singleton(100), "two-phase return")
}

// TestNestedLoops: invariants for both counters.
func TestNestedLoops(t *testing.T) {
	res := run(t, `
int main() {
    int s;
    s = 0;
    for (int i = 0; i < 10; i = i + 1) {
        for (int j = 0; j < i; j = j + 1) {
            s = s + 1;
        }
    }
    return s;
}`, Options{Op: OpWarrow})
	ret := res.ReturnValue("main")
	if !lattice.Ints.Leq(ret, lattice.AtLeast(0)) {
		t.Errorf("s = %s, want ⊆ [0,+inf]", ret)
	}
	if ret.Lo.IsNegInf() {
		t.Errorf("s = %s: narrowing should recover s >= 0", ret)
	}
}

// TestBranchRefinement: guards refine both operands.
func TestBranchRefinement(t *testing.T) {
	res := run(t, `
int main() {
    int x;
    int y;
    y = 0;
    if (x < 10) {
        if (x > 0) {
            y = x;
        }
    }
    return y;
}`, Options{Op: OpWarrow})
	wantIv(t, res.ReturnValue("main"), lattice.Range(0, 9), "return of main")
}

// TestInfeasibleBranchPruned: constant conditions kill the dead branch.
func TestInfeasibleBranchPruned(t *testing.T) {
	res := run(t, `
int main() {
    int x;
    x = 5;
    if (x > 10) {
        x = 1000;
    }
    return x;
}`, Options{Op: OpWarrow})
	wantIv(t, res.ReturnValue("main"), lattice.Singleton(5), "return of main")
}

// TestContextSensitivityPrecision: FullContext keeps call sites apart;
// NoContext merges them.
func TestContextSensitivityPrecision(t *testing.T) {
	src := `
int id(int x) { return x; }
int main() {
    int a;
    int b;
    a = id(1);
    b = id(100);
    return a;
}`
	full := run(t, src, Options{Context: FullContext, Op: OpWarrow})
	wantIv(t, full.ReturnValue("main"), lattice.Singleton(1), "full-context return")

	none := run(t, src, Options{Context: NoContext, Op: OpWarrow})
	ret := none.ReturnValue("main")
	if !ret.Contains(1) || !ret.Contains(100) {
		t.Errorf("context-insensitive return %s must cover both call sites", ret)
	}
}

// TestRecursionBucketContext: recursion terminates under the finite bucket
// context policy and yields a sound result.
func TestRecursionBucketContext(t *testing.T) {
	res := run(t, `
int fac(int n) {
    int r;
    if (n <= 1) { return 1; }
    r = fac(n - 1);
    return n * r;
}
int main() {
    int x;
    x = fac(5);
    return x;
}`, Options{Context: BucketContext, Op: OpWarrow})
	ret := res.ReturnValue("main")
	if !ret.Contains(120) {
		t.Errorf("fac(5) result %s must contain 120", ret)
	}
}

// TestPointerWrites: writes through pointers reach the flow-insensitive
// cells of their targets.
func TestPointerWrites(t *testing.T) {
	res := run(t, `
void store(int *dst, int v) { *dst = v; }
int main() {
    int x;
    int y;
    x = 0;
    y = 0;
    store(&x, 7);
    store(&y, 9);
    return x + y;
}`, Options{Context: FullContext, Op: OpWarrow})
	// x and y are address-taken, hence flow-insensitive; both collect their
	// initializations and the stored values.
	var xID, yID string
	for _, l := range res.CFG.AST.FuncByName["main"].Locals {
		switch l.Name {
		case "x":
			xID = l.ID
		case "y":
			yID = l.ID
		}
	}
	x := res.Global(xID)
	if !x.Contains(0) || !x.Contains(7) || !x.Contains(9) {
		// Points-to is flow-insensitive, so dst may target x or y: the
		// union of stored values is sound.
		t.Errorf("x = %s, want to contain {0,7,9}", x)
	}
	y := res.Global(yID)
	if !y.Contains(9) {
		t.Errorf("y = %s, want to contain 9", y)
	}
}

// TestArraySummary: array cells join all written values plus the implicit
// initial value.
func TestArraySummary(t *testing.T) {
	res := run(t, `
int a[10];
int main() {
    for (int i = 0; i < 10; i = i + 1) {
        a[i] = i * 2;
    }
    return a[3];
}`, Options{Op: OpWarrow})
	av := res.Global("a")
	if !av.Contains(0) || !av.Contains(18) {
		t.Errorf("a = %s, want to contain 0 and 18", av)
	}
	ret := res.ReturnValue("main")
	if !lattice.Ints.Leq(av, ret) {
		t.Errorf("a[3] read %s should be the summary %s", ret, av)
	}
}

// TestUnreachableFunctionNotAnalyzed: local solving skips dead code.
func TestUnreachableFunctionNotAnalyzed(t *testing.T) {
	res := run(t, `
int dead() { return 42; }
int main() { return 0; }
`, Options{Op: OpWarrow})
	if res.Reachable("dead") {
		t.Error("dead should not be analyzed")
	}
	if res.Reachable("main") != true {
		t.Error("main should be reachable")
	}
}

// TestGlobalReadsSeeInitializers: a global read before any write sees the
// initializer.
func TestGlobalReadsSeeInitializers(t *testing.T) {
	res := run(t, `
int limit = 25;
int main() {
    int i;
    i = 0;
    while (i < limit) {
        i = i + 1;
    }
    return i;
}`, Options{Op: OpWarrow})
	wantIv(t, res.Global("limit"), lattice.Singleton(25), "limit")
	ret := res.ReturnValue("main")
	if !lattice.Ints.Leq(ret, lattice.Range(0, 25)) {
		t.Errorf("return %s, want ⊆ [0,25]", ret)
	}
}

// TestVoidInfiniteLoopCalleeBlocksCaller: a call that never returns makes
// the continuation unreachable.
func TestVoidInfiniteLoopCalleeBlocksCaller(t *testing.T) {
	res := run(t, `
int g = 0;
void spin() {
    int i;
    i = 0;
    while (1) { i = i + 1; }
}
int main() {
    spin();
    g = 1;
    return 0;
}`, Options{Op: OpWarrow})
	wantIv(t, res.Global("g"), lattice.Singleton(0), "g (write after non-returning call)")
}

// TestDoWhileBounds: do-while executes at least once.
func TestDoWhileBounds(t *testing.T) {
	res := run(t, `
int main() {
    int i;
    i = 0;
    do { i = i + 1; } while (i < 5);
    return i;
}`, Options{Op: OpWarrow})
	wantIv(t, res.ReturnValue("main"), lattice.Singleton(5), "return of main")
}

// TestBreakRefinement: break exits carry the loop-body environment.
func TestBreakRefinement(t *testing.T) {
	res := run(t, `
int main() {
    int i;
    i = 0;
    while (1) {
        i = i + 1;
        if (i >= 10) { break; }
    }
    return i;
}`, Options{Op: OpWarrow})
	wantIv(t, res.ReturnValue("main"), lattice.Singleton(10), "return of main")
}

// TestModAndDiv: arithmetic transfer functions flow through.
func TestModAndDiv(t *testing.T) {
	res := run(t, `
int main() {
    int x;
    int r;
    if (x < 0) { x = -x; }
    r = x % 10;
    return r / 2;
}`, Options{Op: OpWarrow})
	ret := res.ReturnValue("main")
	if !lattice.Ints.Leq(ret, lattice.Range(0, 4)) {
		t.Errorf("return %s, want ⊆ [0,4]", ret)
	}
}

// TestReportSmoke: the textual report renders without crashing and mentions
// every function.
func TestReportSmoke(t *testing.T) {
	res := run(t, example7, Options{Context: FullContext, Op: OpWarrow})
	rep := res.Report()
	for _, want := range []string{"main", "f (", "g"} {
		if !strings.Contains(rep, want) {
			t.Errorf("report missing %q:\n%s", want, rep)
		}
	}
}
