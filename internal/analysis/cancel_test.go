package analysis

import (
	"context"
	"errors"
	"testing"
	"time"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/solver"
)

const cancelLoopSrc = `
int main() {
    int i;
    i = 0;
    while (i < 100) {
        i = i + 1;
    }
    return i;
}
`

// TestRunHonorsCancelledContext: a pre-cancelled context aborts the analysis
// before any fixpoint work, surfacing a structured cancel report.
func TestRunHonorsCancelledContext(t *testing.T) {
	ast, err := cint.Parse(cancelLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Run(cfg.Build(ast), Options{Op: OpWarrow, Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want cancellation", err)
	}
	rep, ok := solver.ReportOf(err)
	if !ok || rep.Reason != solver.AbortCancel {
		t.Fatalf("report = %+v (ok=%v), want reason cancel", rep, ok)
	}
}

// TestRunHonorsTimeout: an expired wall-clock bound aborts the analysis with
// a deadline report; a generous bound leaves the result untouched.
func TestRunHonorsTimeout(t *testing.T) {
	ast, err := cint.Parse(cancelLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(cfg.Build(ast), Options{Op: OpWarrow, Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline abort", err)
	}

	res, err := Run(cfg.Build(ast), Options{Op: OpWarrow, Timeout: time.Minute, MaxEvals: 2_000_000})
	if err != nil {
		t.Fatalf("generous bound aborted: %v", err)
	}
	if res.Stats.Evals == 0 {
		t.Error("no evaluations recorded")
	}
}

// TestRunMaxFlipsThreaded: MaxFlips reaches the solver layer — the
// self-feeding oscillation of a context-sensitive analysis is caught by the
// watchdog instead of the eval budget when the threshold is set low.
func TestRunMaxFlipsThreaded(t *testing.T) {
	ast, err := cint.Parse(cancelLoopSrc)
	if err != nil {
		t.Fatal(err)
	}
	// The loop analysis converges in a handful of flips, so MaxFlips far
	// below that is not tripped, while the option still round-trips through
	// solverConfig; assert convergence is unaffected.
	res, err := Run(cfg.Build(ast), Options{Op: OpWarrow, MaxEvals: 2_000_000, MaxFlips: 1000})
	if err != nil {
		t.Fatalf("watchdog tripped on a convergent analysis: %v", err)
	}
	if res.Stats.Evals == 0 {
		t.Error("no evaluations recorded")
	}
}
