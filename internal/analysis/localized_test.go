package analysis

import (
	"testing"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/lattice"
	"warrow/internal/wcet"
)

// TestLocalizedLoopExact: localized ⊟ computes the same exact invariants on
// the counting loop.
func TestLocalizedLoopExact(t *testing.T) {
	src := `
int main() {
    int i;
    i = 0;
    while (i < 100) { i = i + 1; }
    return i;
}`
	res := run(t, src, Options{Op: OpWarrow, Localized: true})
	wantIv(t, res.ReturnValue("main"), lattice.Singleton(100), "localized return")
}

// TestWideningPointsComputed: only loop heads are widening points.
func TestWideningPointsComputed(t *testing.T) {
	ast := cint.MustParse(`
int main() {
    int i; int j; int s;
    s = 0;
    for (i = 0; i < 4; i = i + 1) {
        for (j = 0; j < i; j = j + 1) {
            s = s + 1;
        }
    }
    if (s > 3) { s = 3; }
    return s;
}`)
	prog := cfg.Build(ast)
	wp := wideningPoints(prog)["main"]
	if len(wp) != 2 {
		t.Fatalf("widening points: %v, want the two loop heads", wp)
	}
	// Each widening point must be the target of a retreating edge.
	g := prog.Graphs["main"]
	for id := range wp {
		found := false
		for _, e := range g.Nodes[id].In {
			if e.From.ID >= id {
				found = true
			}
		}
		if !found {
			t.Errorf("node %d has no back edge", id)
		}
	}
}

// TestLocalizedPrecisionOnSuite: on the WCET suite, localized ⊟₂
// terminates everywhere and its precision is close to full ⊟ — plain
// updates avoid widening detours at joins, while the ⊟₂ backstop at loop
// heads occasionally gives up a narrowing step. Both effects are counted;
// soundness is asserted separately (TestLocalizedSoundness).
func TestLocalizedPrecisionOnSuite(t *testing.T) {
	better, worse := 0, 0
	for _, b := range wcet.All() {
		ast, err := cint.Parse(b.Src)
		if err != nil {
			t.Fatal(err)
		}
		g := cfg.Build(ast)
		full, err := Run(g, Options{Op: OpWarrow, MaxEvals: 20_000_000})
		if err != nil {
			t.Fatalf("%s full: %v", b.Name, err)
		}
		loc, err := Run(g, Options{Op: OpWarrow, Localized: true, MaxEvals: 20_000_000})
		if err != nil {
			t.Fatalf("%s localized: %v", b.Name, err)
		}
		for _, fn := range g.Order {
			for _, n := range g.Graphs[fn].Nodes {
				ef := full.PointEnv(fn, n.ID)
				el := loc.PointEnv(fn, n.ID)
				switch {
				case full.EnvL.Eq(el, ef):
				case full.EnvL.Leq(el, ef):
					better++
				case full.EnvL.Leq(ef, el):
					worse++
				default:
					worse++
				}
			}
		}
	}
	t.Logf("localized strictly better at %d points, worse/incomparable at %d", better, worse)
	if worse > better+200 {
		t.Errorf("localized ⊟₂ lost far more precision than expected: better=%d worse=%d", better, worse)
	}
}

// TestLocalizedSoundness: localized results still pass the concrete
// soundness check on a couple of benchmarks.
func TestLocalizedSoundness(t *testing.T) {
	for _, name := range []string{"bs", "bsort", "janne_complex", "adpcm-lite"} {
		b, ok := wcet.ByName(name)
		if !ok {
			t.Fatal(name)
		}
		checkSoundnessOpts(t, name, b.Src, Options{Op: OpWarrow, Localized: true, MaxEvals: 20_000_000})
	}
}
