package analysis

import (
	"errors"
	"testing"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/interp"
	"warrow/internal/synth"
)

// TestSoundnessOnGeneratedPrograms is a fuzz-grade soundness check: random
// (but seed-deterministic) programs from the synthetic generator are
// executed concretely and every observed store is validated against the
// abstract invariants, exactly as in the WCET soundness test. Runtime
// errors (e.g. a generated negative array index) end the concrete run
// early; the trace up to that point must still be covered.
func TestSoundnessOnGeneratedPrograms(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		p := synth.Generate("fuzz", synth.Config{
			Seed: seed, Funcs: 8, Globals: 6, Arrays: 2,
			StmtsPerFunc: 30, CallFanout: 2, Recursion: seed%2 == 0,
		})
		ast, err := cint.Parse(p.Src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		prog := cfg.Build(ast)
		res, err := Run(prog, Options{Op: OpWarrow, Context: NoContext, MaxEvals: 10_000_000})
		if err != nil {
			t.Fatalf("seed %d: analysis: %v", seed, err)
		}
		sites := storeIndex(prog)
		flowIns := func(v *cint.VarDecl) bool {
			return v.Global || v.AddrTaken || v.Type.Kind == cint.TypeArray
		}
		violations := 0
		ip := interp.New(ast)
		ip.Fuel = 500_000
		ip.Observe = func(v *cint.VarDecl, val int64, pos cint.Pos) {
			if violations > 3 {
				return
			}
			if flowIns(v) {
				if !intValued(v.Type) {
					return
				}
				if g := res.Global(v.ID); !g.Contains(val) {
					violations++
					t.Errorf("seed %d: store %s = %d outside flow-insensitive %s",
						seed, v.ID, val, g)
				}
				return
			}
			if v.Type.Kind != cint.TypeInt {
				return
			}
			if v.Fn != nil && pos == v.Fn.Pos {
				env := res.PointEnv(v.Fn.Name, 0)
				if iv := env.Get(v.ID); !iv.Contains(val) {
					violations++
					t.Errorf("seed %d: param %s = %d outside entry %s", seed, v.ID, val, iv)
				}
				return
			}
			for _, s := range sites[v.ID][pos] {
				env := res.PointEnv(s.fn, s.node)
				if env.IsBot() {
					violations++
					t.Errorf("seed %d: store %s = %d at abstractly-unreachable %s@%d",
						seed, v.ID, val, s.fn, s.node)
					continue
				}
				if iv := env.Get(v.ID); !iv.Contains(val) {
					violations++
					t.Errorf("seed %d: store %s = %d at %s@%d outside %s",
						seed, v.ID, val, s.fn, s.node, iv)
				}
			}
		}
		ret, err := ip.Run()
		switch {
		case err == nil:
			if rv := res.ReturnValue("main"); !rv.Contains(ret) {
				t.Errorf("seed %d: return %d outside %s", seed, ret, rv)
			}
		case errors.Is(err, interp.ErrFuel):
			// Long-running program: the observed prefix was checked.
		default:
			// Generated programs may trap concretely (negative index, /0 in
			// dead arithmetic); the prefix trace is still a valid witness.
			t.Logf("seed %d: concrete run stopped: %v", seed, err)
		}
	}
}
