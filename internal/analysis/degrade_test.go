package analysis

import (
	"testing"

	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// TestDegradeAfterOption: ⊟ₖ via Options still computes exact invariants on
// monotone programs (no phase switches occur, so it behaves like plain ⊟).
func TestDegradeAfterOption(t *testing.T) {
	src := `
int main() {
    int i;
    i = 0;
    while (i < 100) { i = i + 1; }
    return i;
}`
	res := run(t, src, Options{Op: OpWarrow, DegradeAfter: 2})
	wantIv(t, res.ReturnValue("main"), lattice.Singleton(100), "return with ⊟₂")
}

// TestRunWithOperator: the instrumentation hook produces the same result as
// Run with the equivalent operator.
func TestRunWithOperator(t *testing.T) {
	src := `
int g = 0;
void f(int b) { g = b + 1; }
int main() { f(1); f(2); return 0; }`
	res1 := run(t, src, Options{Op: OpWarrow, Context: FullContext})

	ast := res1.CFG
	envL := NewEnvLattice(lattice.Ints)
	op := solver.Op[Key](solver.Warrow[Env](envL))
	res2, err := RunWithOperator(ast, Options{Context: FullContext, MaxEvals: 1_000_000}, op)
	if err != nil {
		t.Fatal(err)
	}
	if !lattice.Ints.Eq(res1.Global("g"), res2.Global("g")) {
		t.Errorf("g: Run=%s RunWithOperator=%s", res1.Global("g"), res2.Global("g"))
	}
}

// TestBandAssignment documents the priority bands.
func TestBandAssignment(t *testing.T) {
	cases := []struct {
		k    Key
		want int
	}{
		{Key{Kind: KStart}, 2},
		{Key{Kind: KGlobal, Var: "g"}, 1},
		{Key{Kind: KPoint, Fn: "f", Node: 0}, 1}, // entry: side-effected
		{Key{Kind: KPoint, Fn: "f", Node: 3}, 0},
	}
	for _, c := range cases {
		if got := Band(c.k); got != c.want {
			t.Errorf("Band(%v) = %d, want %d", c.k, got, c.want)
		}
	}
}
