package analysis

import (
	"errors"
	"testing"

	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/lattice"
	"warrow/internal/points2"
	"warrow/internal/solver"
)

// selfFeedSrc accumulates a bounded local into a global that is also read
// on the right-hand side: the update g = g + f reads the global it feeds.
// Such self-feeding globals expose a scheduling hazard of uniform
// discovery-order keys (see solver.SLRPlusKeyed): the global is discovered
// *during* the evaluation of its own reader, receives a smaller key, and
// with ⊟ keeps narrowing against a stale contribution while the reader
// bumps it by one — forever.
const selfFeedSrc = `
int s = 0;
int fac(int n) {
    int r;
    if (n == 0) { return 1; }
    r = fac(n - 1);
    return n * r;
}
int main() {
    int i;
    int f;
    for (i = 0; i <= 5; i = i + 1) {
        f = fac(i);
        s = s + f;
    }
    return s;
}`

func buildSelfFeed(t *testing.T) (*analyzer, Key) {
	t.Helper()
	ast, err := cint.Parse(selfFeedSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog := cfg.Build(ast)
	return &analyzer{
		prog:    prog,
		pt:      points2.Analyze(prog),
		envL:    NewEnvLattice(lattice.Ints),
		ivl:     lattice.Ints,
		flowIns: map[string]bool{"s": true},
		policy:  NoContext,
		entry:   "main",
	}, Key{Kind: KStart}
}

// TestSelfFeedingGlobalDivergesWithoutBands documents the hazard: plain
// SLR⁺ with uniform keys and ⊟ oscillates on the self-feeding global.
func TestSelfFeedingGlobalDivergesWithoutBands(t *testing.T) {
	a, start := buildSelfFeed(t)
	op := solver.Op[Key](solver.Warrow[Env](a.envL))
	init := func(Key) Env { return BotEnv }
	_, err := solver.SLRPlus(a.system(), a.envL, op, init, start, solver.Config{MaxEvals: 200000})
	if !errors.Is(err, solver.ErrEvalBudget) {
		t.Fatalf("expected oscillation under uniform keys, got err=%v", err)
	}
}

// TestSelfFeedingGlobalTerminatesWithBands: scheduling flow-insensitive
// unknowns in a higher priority band restores termination and yields the
// expected fixpoint s = [0,+inf] (the flow-insensitive least solution of
// s ⊒ s + f).
func TestSelfFeedingGlobalTerminatesWithBands(t *testing.T) {
	a, start := buildSelfFeed(t)
	op := solver.Op[Key](solver.Warrow[Env](a.envL))
	init := func(Key) Env { return BotEnv }
	band := func(k Key) int {
		switch k.Kind {
		case KStart:
			return 2
		case KGlobal:
			return 1
		default:
			return 0
		}
	}
	res, err := solver.SLRPlusKeyed(a.system(), a.envL, op, init, start, band, solver.Config{MaxEvals: 200000})
	if err != nil {
		t.Fatalf("banded SLR⁺ diverged: %v", err)
	}
	s := res.Values[Key{Kind: KGlobal, Var: "s"}].Get("s")
	want := lattice.NewInterval(lattice.Fin(0), lattice.PosInf)
	if !lattice.Ints.Eq(s, want) {
		t.Errorf("s = %s, want %s", s, want)
	}
}
