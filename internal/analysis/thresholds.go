package analysis

import (
	"warrow/internal/cint"
	"warrow/internal/lattice"
)

// InferThresholds collects the integer constants appearing in a program —
// literals, their negations, and off-by-one neighbours — as widening
// thresholds. Guards like `i < 100` make 99/100 the natural resting points
// of loop counters, so widening to the nearest program constant instead of
// straight to ±∞ frequently removes the need to narrow at all. Use the
// returned lattice as Options.Widening.
func InferThresholds(prog *cint.Program) *lattice.IntervalLattice {
	set := map[int64]bool{0: true, 1: true, -1: true}
	add := func(v int64) {
		set[v] = true
		set[-v] = true
		set[v-1] = true
		set[v+1] = true
	}
	var walkExpr func(e cint.Expr)
	walkExpr = func(e cint.Expr) {
		switch x := e.(type) {
		case *cint.IntLit:
			add(x.Value)
		case *cint.UnaryExpr:
			walkExpr(x.X)
		case *cint.BinaryExpr:
			walkExpr(x.X)
			walkExpr(x.Y)
		case *cint.IndexExpr:
			walkExpr(x.X)
			walkExpr(x.Idx)
		case *cint.CallExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		}
	}
	var walkStmt func(s cint.Stmt)
	walkStmt = func(s cint.Stmt) {
		switch x := s.(type) {
		case *cint.BlockStmt:
			for _, sub := range x.Stmts {
				walkStmt(sub)
			}
		case *cint.DeclStmt:
			if x.Decl.Init != nil {
				walkExpr(x.Decl.Init)
			}
			if x.Decl.Type.Kind == cint.TypeArray {
				add(x.Decl.Type.Len)
			}
		case *cint.AssignStmt:
			walkExpr(x.Lhs)
			if x.Call != nil {
				walkExpr(x.Call)
			} else {
				walkExpr(x.Rhs)
			}
		case *cint.ExprStmt:
			walkExpr(x.Call)
		case *cint.IfStmt:
			walkExpr(x.Cond)
			walkStmt(x.Then)
			if x.Else != nil {
				walkStmt(x.Else)
			}
		case *cint.WhileStmt:
			walkExpr(x.Cond)
			walkStmt(x.Body)
		case *cint.DoWhileStmt:
			walkStmt(x.Body)
			walkExpr(x.Cond)
		case *cint.ForStmt:
			if x.Init != nil {
				walkStmt(x.Init)
			}
			if x.Cond != nil {
				walkExpr(x.Cond)
			}
			if x.Post != nil {
				walkStmt(x.Post)
			}
			walkStmt(x.Body)
		case *cint.ReturnStmt:
			if x.Value != nil {
				walkExpr(x.Value)
			}
		case *cint.AssertStmt:
			walkExpr(x.Cond)
		}
	}
	for _, g := range prog.Globals {
		if g.Init != nil {
			walkExpr(g.Init)
		}
		if g.Type.Kind == cint.TypeArray {
			add(g.Type.Len)
		}
	}
	for _, fn := range prog.Funcs {
		walkStmt(fn.Body)
	}
	out := make([]int64, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	return lattice.NewIntervalLattice(out...)
}
