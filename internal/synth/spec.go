package synth

// SpecSuite generates the seven benchmark programs standing in for the
// SpecCPU2006 C programs of Table 1. Sizes are scaled so the relative
// ordering of constraint-system unknown counts mirrors the paper's
// context-insensitive column (470.lbm smallest, 458.sjeng largest); see
// EXPERIMENTS.md for measured counts.
func SpecSuite() []Program {
	specs := []struct {
		name string
		cfg  Config
	}{
		{"401.bzip2", Config{Seed: 401, Funcs: 45, Globals: 24, Arrays: 6, StmtsPerFunc: 55, CallFanout: 4}},
		{"429.mcf", Config{Seed: 429, Funcs: 10, Globals: 10, Arrays: 3, StmtsPerFunc: 45, CallFanout: 2}},
		{"433.milc", Config{Seed: 433, Funcs: 55, Globals: 30, Arrays: 8, StmtsPerFunc: 60, CallFanout: 5}},
		{"456.hmmer", Config{Seed: 456, Funcs: 82, Globals: 40, Arrays: 10, StmtsPerFunc: 66, CallFanout: 6}},
		{"458.sjeng", Config{Seed: 458, Funcs: 90, Globals: 36, Arrays: 8, StmtsPerFunc: 62, CallFanout: 6, Recursion: true}},
		{"470.lbm", Config{Seed: 470, Funcs: 6, Globals: 8, Arrays: 4, StmtsPerFunc: 48, CallFanout: 2}},
		{"482.sphinx", Config{Seed: 482, Funcs: 85, Globals: 38, Arrays: 9, StmtsPerFunc: 58, CallFanout: 6}},
	}
	out := make([]Program, 0, len(specs))
	for _, s := range specs {
		out = append(out, Generate(s.name, s.cfg))
	}
	return out
}
