// Package synth deterministically generates large mini-C programs that
// stand in for the SpecCPU2006 C programs of the paper's Table 1 (see
// DESIGN.md for the substitution argument). The generator controls exactly
// the properties the Table 1 experiment measures — number of functions,
// globals, loops, call structure and hence the number of constraint-system
// unknowns — while the analysis runtime follows from them.
//
// Generation is seeded and uses no global state, so every build of the
// suite produces byte-identical programs.
package synth

import (
	"fmt"
	"strings"
)

// rng is a splitmix64 generator: tiny, fast, deterministic across
// platforms.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// rangeInt returns a value in [lo, hi].
func (r *rng) rangeInt(lo, hi int) int { return lo + r.intn(hi-lo+1) }

// Config sizes a generated program.
type Config struct {
	// Seed drives all random choices.
	Seed uint64
	// Funcs is the number of generated functions besides main.
	Funcs int
	// Globals is the number of scalar int globals.
	Globals int
	// Arrays is the number of global int arrays.
	Arrays int
	// StmtsPerFunc is the approximate number of statements per function.
	StmtsPerFunc int
	// CallFanout is the number of calls each function makes to
	// later-numbered functions.
	CallFanout int
	// Recursion adds self-recursive functions with decreasing arguments.
	Recursion bool
	// CycleFuncs, when at least 2, fuses the first CycleFuncs functions
	// into one giant call cycle: each f<i> with i < CycleFuncs calls
	// f<(i+1) mod CycleFuncs> with a decreasing first argument (guarded
	// like Recursion, so the program still terminates). The cycle collapses
	// those functions into a single call-graph SCC — the knob the
	// mega-scale benchmarks turn to grow constraint systems whose
	// dependence graph is dominated by one giant component. Emitting the
	// cycle consumes no generator draws, so CycleFuncs=0 programs are
	// byte-identical to ones generated before the knob existed.
	CycleFuncs int
}

// Program is a generated benchmark.
type Program struct {
	Name string
	Src  string
}

// LOC counts non-blank lines.
func (p Program) LOC() int {
	n := 0
	for _, l := range strings.Split(p.Src, "\n") {
		if strings.TrimSpace(l) != "" {
			n++
		}
	}
	return n
}

// Generate produces one program.
func Generate(name string, cfg Config) Program {
	g := &gen{cfg: cfg, r: rng{state: cfg.Seed ^ 0xda7a5eed}}
	return Program{Name: name, Src: g.program()}
}

type gen struct {
	cfg     Config
	r       rng
	sb      strings.Builder
	arities []int // parameter count of each function, decided up front

	// Per-function state.
	locals   []string
	params   []string
	reserved map[string]bool // active loop counters: never assigned in bodies
	fn       int
	depth    int
}

// freeLocal picks a local that is not an active loop counter; ok is false
// if every local is reserved.
func (g *gen) freeLocal() (string, bool) {
	var free []string
	for _, l := range g.locals {
		if !g.reserved[l] {
			free = append(free, l)
		}
	}
	if len(free) == 0 {
		return "", false
	}
	return free[g.r.intn(len(free))], true
}

func (g *gen) w(format string, args ...any) {
	fmt.Fprintf(&g.sb, format, args...)
}

func (g *gen) indent() string { return strings.Repeat("    ", g.depth) }

func (g *gen) program() string {
	g.arities = make([]int, g.cfg.Funcs)
	for i := range g.arities {
		g.arities[i] = g.r.rangeInt(1, 2)
	}
	for i := 0; i < g.cfg.Globals; i++ {
		g.w("int g%d = %d;\n", i, g.r.intn(100))
	}
	for i := 0; i < g.cfg.Arrays; i++ {
		g.w("int arr%d[%d];\n", i, g.r.rangeInt(8, 64))
	}
	g.w("\n")
	for f := 0; f < g.cfg.Funcs; f++ {
		g.function(f)
	}
	g.mainFunc()
	return g.sb.String()
}

// function emits int f<i>(int p0, int p1) { ... }.
func (g *gen) function(f int) {
	g.fn = f
	nparams := g.arities[f]
	g.params = g.params[:0]
	var decl []string
	for p := 0; p < nparams; p++ {
		name := fmt.Sprintf("p%d", p)
		g.params = append(g.params, name)
		decl = append(decl, "int "+name)
	}
	g.w("int f%d(%s) {\n", f, strings.Join(decl, ", "))
	g.depth = 1
	g.reserved = make(map[string]bool)
	g.locals = g.locals[:0]
	nlocals := g.r.rangeInt(3, 5)
	for l := 0; l < nlocals; l++ {
		name := fmt.Sprintf("l%d", l)
		g.locals = append(g.locals, name)
		g.w("%sint %s;\n", g.indent(), name)
	}
	for _, l := range g.locals {
		g.w("%s%s = %d;\n", g.indent(), l, g.r.intn(10))
	}
	recursive := g.cfg.Recursion && g.r.intn(4) == 0
	cycle := g.cfg.CycleFuncs > 1 && f < g.cfg.CycleFuncs
	if recursive || cycle {
		g.w("%sif (p0 <= 0) { return 0; }\n", g.indent())
	}
	g.stmts(g.cfg.StmtsPerFunc)
	if recursive {
		args := []string{"p0 - 1"}
		for _, p := range g.params[1:] {
			args = append(args, p)
		}
		g.w("%s%s = f%d(%s);\n", g.indent(), g.locals[0], f, strings.Join(args, ", "))
	}
	if cycle {
		// The back edge of the giant call cycle: deterministic callee and
		// arguments, no generator draws (see Config.CycleFuncs).
		callee := (f + 1) % g.cfg.CycleFuncs
		args := []string{"p0 - 1"}
		for p := 1; p < g.arities[callee]; p++ {
			args = append(args, "p0")
		}
		g.w("%s%s = f%d(%s);\n", g.indent(), g.locals[0], callee, strings.Join(args, ", "))
	}
	g.w("%sreturn %s;\n", g.indent(), g.locals[g.r.intn(len(g.locals))])
	g.depth = 0
	g.w("}\n\n")
}

// stmts emits approximately n statements at the current depth.
func (g *gen) stmts(n int) {
	for n > 0 {
		n -= g.stmt(n)
	}
}

// stmt emits one construct and returns the statement budget it consumed.
func (g *gen) stmt(budget int) int {
	_, haveFree := g.freeLocal()
	switch k := g.r.intn(10); {
	case k < 3 && budget >= 4 && g.depth < 4 && haveFree:
		return g.loop(budget)
	case k < 5 && budget >= 3:
		return g.ifStmt(budget)
	case (k == 5 || k == 6) && g.fn+1 < g.cfg.Funcs:
		g.call()
		return 1
	case k == 7 && g.cfg.Globals > 0:
		g.globalUpdate()
		return 1
	case k == 8 && g.cfg.Arrays > 0:
		g.arrayWrite()
		return 1
	default:
		g.assign()
		return 1
	}
}

// loop emits a counted for-loop with a body; the counter is reserved so
// nothing inside can reassign it (generated programs must terminate).
func (g *gen) loop(budget int) int {
	v, ok := g.freeLocal()
	if !ok {
		g.assign()
		return 1
	}
	bound := g.bound()
	g.w("%sfor (%s = 0; %s < %s; %s = %s + 1) {\n", g.indent(), v, v, bound, v, v)
	g.reserved[v] = true
	g.depth++
	inner := g.r.rangeInt(2, min(budget-2, 6))
	g.stmts(inner)
	g.depth--
	g.reserved[v] = false
	g.w("%s}\n", g.indent())
	return inner + 2
}

// bound yields a loop bound: a constant, a parameter, or a global.
func (g *gen) bound() string {
	switch g.r.intn(4) {
	case 0:
		if len(g.params) > 0 {
			return g.params[g.r.intn(len(g.params))]
		}
		fallthrough
	case 1:
		if g.cfg.Globals > 0 {
			return fmt.Sprintf("g%d", g.r.intn(g.cfg.Globals))
		}
		fallthrough
	default:
		return fmt.Sprintf("%d", g.r.rangeInt(2, 64))
	}
}

func (g *gen) ifStmt(budget int) int {
	c := g.cond()
	g.w("%sif (%s) {\n", g.indent(), c)
	g.depth++
	inner := g.r.rangeInt(1, min(budget-2, 3))
	g.stmts(inner)
	g.depth--
	if g.r.intn(2) == 0 {
		g.w("%s} else {\n", g.indent())
		g.depth++
		g.stmts(1)
		g.depth--
		g.w("%s}\n", g.indent())
		return inner + 3
	}
	g.w("%s}\n", g.indent())
	return inner + 2
}

func (g *gen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	return fmt.Sprintf("%s %s %s", g.operand(), ops[g.r.intn(len(ops))], g.operand())
}

// operand yields a small expression atom.
func (g *gen) operand() string {
	switch g.r.intn(5) {
	case 0:
		if g.cfg.Globals > 0 {
			return fmt.Sprintf("g%d", g.r.intn(g.cfg.Globals))
		}
		fallthrough
	case 1:
		if len(g.params) > 0 {
			return g.params[g.r.intn(len(g.params))]
		}
		fallthrough
	case 2:
		return fmt.Sprintf("%d", g.r.rangeInt(0, 50))
	default:
		return g.locals[g.r.intn(len(g.locals))]
	}
}

func (g *gen) expr() string {
	ops := []string{"+", "-", "*", "/", "%"}
	op := ops[g.r.intn(len(ops))]
	rhs := g.operand()
	if op == "/" || op == "%" {
		rhs = fmt.Sprintf("%d", g.r.rangeInt(1, 16)) // avoid ⊥ from /0
	}
	return fmt.Sprintf("%s %s %s", g.operand(), op, rhs)
}

func (g *gen) assign() {
	v, ok := g.freeLocal()
	if !ok {
		v = g.locals[0] // unreachable by construction: loops need a free local
	}
	g.w("%s%s = %s;\n", g.indent(), v, g.expr())
}

func (g *gen) globalUpdate() {
	gi := g.r.intn(g.cfg.Globals)
	switch g.r.intn(3) {
	case 0:
		g.w("%sg%d = g%d + %s;\n", g.indent(), gi, gi, g.operand())
	case 1:
		g.w("%sg%d = %s;\n", g.indent(), gi, g.expr())
	default:
		g.w("%sg%d = %s %% %d;\n", g.indent(), gi, g.operand(), g.r.rangeInt(2, 100))
	}
}

func (g *gen) arrayWrite() {
	ai := g.r.intn(g.cfg.Arrays)
	g.w("%sarr%d[%s %% 8] = %s;\n", g.indent(), ai, g.locals[0], g.operand())
}

func (g *gen) call() {
	callee := g.fn + 1 + g.r.intn(g.cfg.Funcs-g.fn-1)
	v, ok := g.freeLocal()
	if !ok {
		v = g.locals[0]
	}
	g.w("%s%s = f%d(%s);\n", g.indent(), v, callee, g.callArgs(callee))
}

// callArgs yields arguments matching the callee's pre-decided arity: a mix
// of small constants (driving distinct bucket contexts) and locals.
func (g *gen) callArgs(callee int) string {
	args := make([]string, g.arities[callee])
	for i := range args {
		if g.r.intn(2) == 0 {
			args[i] = fmt.Sprintf("%d", g.r.rangeInt(0, 40))
		} else {
			args[i] = g.locals[g.r.intn(len(g.locals))]
		}
	}
	return strings.Join(args, ", ")
}

// mainFunc emits a main that exercises several root functions in loops
// with varied constant arguments, so context-sensitive analyses see
// multiple contexts per callee.
func (g *gen) mainFunc() {
	g.fn = g.cfg.Funcs // calls may target any generated function
	g.params = g.params[:0]
	g.w("int main() {\n")
	g.depth = 1
	g.reserved = make(map[string]bool)
	g.locals = g.locals[:0]
	for l := 0; l < 4; l++ {
		name := fmt.Sprintf("m%d", l)
		g.locals = append(g.locals, name)
		g.w("%sint %s;\n", g.indent(), name)
	}
	for _, l := range g.locals {
		g.w("%s%s = 0;\n", g.indent(), l)
	}
	counter := g.locals[0]
	results := g.locals[1:]
	roots := min(g.cfg.Funcs, 1+g.cfg.CallFanout)
	for r := 0; r < roots; r++ {
		callee := g.r.intn(g.cfg.Funcs)
		if r == 0 {
			callee = 0 // guarantee the call-chain root is reachable
		}
		v := results[g.r.intn(len(results))]
		g.w("%sfor (%s = 0; %s < %d; %s = %s + 1) {\n",
			g.indent(), counter, counter, g.r.rangeInt(3, 20), counter, counter)
		g.depth++
		g.w("%s%s = f%d(%s);\n", g.indent(), v, callee, g.callArgs(callee))
		if g.cfg.Globals > 0 {
			gi := g.r.intn(g.cfg.Globals)
			g.w("%sg%d = g%d + %s;\n", g.indent(), gi, gi, v)
		}
		g.depth--
		g.w("%s}\n", g.indent())
	}
	g.w("%sreturn %s;\n", g.indent(), results[0])
	g.depth = 0
	g.w("}\n")
}
