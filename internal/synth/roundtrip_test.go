package synth

import (
	"testing"

	"warrow/internal/cint"
)

// TestGeneratedProgramsRoundTrip: generator output (tens of thousands of
// statements across many seeds) survives parse → print → reparse — a
// fuzz-grade property test of the front-end.
func TestGeneratedProgramsRoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		p := Generate("fuzz", Config{
			Seed: seed, Funcs: 12, Globals: 8, Arrays: 3,
			StmtsPerFunc: 40, CallFanout: 3, Recursion: seed%2 == 0,
		})
		p1, err := cint.Parse(p.Src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		out1 := cint.Print(p1)
		p2, err := cint.Parse(out1)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v", seed, err)
		}
		if out2 := cint.Print(p2); out1 != out2 {
			t.Errorf("seed %d: printing unstable", seed)
		}
	}
}
