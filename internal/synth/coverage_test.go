package synth

import (
	"testing"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
)

// TestSuiteCallGraphCoverage: most generated functions must be reachable
// from main, so the unknown counts reflect whole-program analysis rather
// than a handful of roots.
func TestSuiteCallGraphCoverage(t *testing.T) {
	for _, p := range SpecSuite() {
		ast, err := cint.Parse(p.Src)
		if err != nil {
			t.Fatal(err)
		}
		g := cfg.Build(ast)
		res, err := analysis.Run(g, analysis.Options{
			Context:  analysis.NoContext,
			Op:       analysis.OpWarrow,
			MaxEvals: 20_000_000,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		reach, total := 0, 0
		for _, fn := range g.Order {
			total++
			if res.Reachable(fn) {
				reach++
			}
		}
		t.Logf("%-12s reachable %d/%d, unknowns %d, loc %d",
			p.Name, reach, total, res.NumUnknowns(), p.LOC())
		if reach*10 < total*6 { // at least 60%
			t.Errorf("%s: only %d/%d functions reachable", p.Name, reach, total)
		}
	}
}
