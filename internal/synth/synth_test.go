package synth

import (
	"testing"

	"warrow/internal/analysis"
	"warrow/internal/cfg"
	"warrow/internal/cint"
)

// TestGenerateDeterministic: same seed, same program.
func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Seed: 7, Funcs: 5, Globals: 4, Arrays: 2, StmtsPerFunc: 20, CallFanout: 2}
	a := Generate("a", cfg)
	b := Generate("b", cfg)
	if a.Src != b.Src {
		t.Fatal("generation is not deterministic")
	}
	cfg.Seed = 8
	c := Generate("c", cfg)
	if c.Src == a.Src {
		t.Fatal("different seeds should differ")
	}
}

// TestGeneratedProgramsParse: every suite program parses and type-checks.
func TestGeneratedProgramsParse(t *testing.T) {
	for _, p := range SpecSuite() {
		if _, err := cint.Parse(p.Src); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if p.LOC() < 100 {
			t.Errorf("%s: only %d LOC", p.Name, p.LOC())
		}
	}
}

// TestSmallGeneratedProgramAnalyzes: a small instance is analyzable under
// all regimes and context policies.
func TestSmallGeneratedProgramAnalyzes(t *testing.T) {
	p := Generate("small", Config{Seed: 3, Funcs: 6, Globals: 5, Arrays: 2, StmtsPerFunc: 25, CallFanout: 2, Recursion: true})
	ast, err := cint.Parse(p.Src)
	if err != nil {
		t.Fatal(err)
	}
	g := cfg.Build(ast)
	for _, op := range []analysis.OpKind{analysis.OpWarrow, analysis.OpWiden, analysis.OpTwoPhase} {
		for _, ctx := range []analysis.ContextPolicy{analysis.NoContext, analysis.BucketContext} {
			degrade := 0
			if op == analysis.OpWarrow && ctx == analysis.BucketContext {
				// Context-sensitive systems are non-monotonic; plain ⊟ has
				// no termination guarantee there (it oscillates on this
				// program). Use the paper's ⊟₂ as in Table 1.
				degrade = 2
			}
			res, err := analysis.Run(g, analysis.Options{
				Context:      ctx,
				Op:           op,
				DegradeAfter: degrade,
				MaxEvals:     3_000_000,
			})
			if err != nil {
				t.Errorf("op=%v ctx=%v: %v (stats %+v)", op, ctx, err, res.Stats)
			}
		}
	}
}

// TestUnknownOrdering: the suite's context-insensitive unknown counts keep
// the paper's relative order (lbm < mcf < bzip2 < milc < … ).
func TestUnknownOrdering(t *testing.T) {
	counts := map[string]int{}
	for _, p := range SpecSuite() {
		ast, err := cint.Parse(p.Src)
		if err != nil {
			t.Fatal(err)
		}
		res, err := analysis.Run(cfg.Build(ast), analysis.Options{
			Context:  analysis.NoContext,
			Op:       analysis.OpWarrow,
			MaxEvals: 20_000_000,
		})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		counts[p.Name] = res.NumUnknowns()
	}
	t.Logf("unknowns: %v", counts)
	if !(counts["470.lbm"] < counts["429.mcf"] && counts["429.mcf"] < counts["401.bzip2"]) {
		t.Errorf("small programs out of order: %v", counts)
	}
	if !(counts["401.bzip2"] < counts["456.hmmer"] && counts["401.bzip2"] < counts["458.sjeng"]) {
		t.Errorf("large programs out of order: %v", counts)
	}
}
