// Package eqdsl parses a small textual language for systems of equations,
// so the paper's example systems can be kept as plain-text artifacts and
// solved with any solver/operator combination from the command line
// (cmd/eqsolve).
//
// A system file looks like:
//
//	# Example 1 of the paper (monotonic, RR+⊟ diverges)
//	domain natinf
//	x1 = x2
//	x2 = x3 + 1
//	x3 = x1
//
// or, over intervals:
//
//	domain interval
//	h = join([0,0], b + [1,1])
//	b = meet(h, [-inf,99])
//	e = meet(h, [100,inf])
//
// Domains:
//
//	natinf    ℕ ∪ {∞} with the widening/narrowing of the paper's Examples
//	          1–4. Operators: +, min(a,b), max(a,b); literals: 0, 1, …, inf.
//	interval  integer intervals. Operators: +, -, *, join(a,b), meet(a,b);
//	          literals: n (singleton) and [lo,hi] with inf/-inf bounds.
//
// Equations are listed one per line as `name = expr`; # starts a comment.
// The order of equations fixes the linear order the structured solvers use.
//
// A bare `open` line after the domain header marks the file as an edit
// overlay: its equations may reference unknowns the file itself does not
// define, because they resolve against the base system the overlay is
// applied to (eqsolve -edit). Open files are not solvable on their own.
package eqdsl

import (
	"fmt"
	"strconv"
	"strings"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// Domain identifies the value domain of a system file.
type Domain int

// Supported domains.
const (
	DomainNatInf Domain = iota
	DomainInterval
)

// String renders the domain name.
func (d Domain) String() string {
	if d == DomainNatInf {
		return "natinf"
	}
	return "interval"
}

// File is a parsed system file.
type File struct {
	Domain Domain
	// Order lists unknowns in file order.
	Order []string
	// Defs maps unknowns to their right-hand-side expressions.
	Defs map[string]Expr
	// Open marks an edit overlay — a file carrying a bare `open` directive,
	// or any file parsed with ParseOverlay: its equations may reference
	// unknowns it does not define, because they resolve against the base
	// system the overlay is applied to.
	Open bool
	// DeclaredOpen reports whether the file itself carries the bare `open`
	// directive. ParseOverlay relaxes reference checking for any file, so
	// Open alone cannot tell a genuine overlay from a closed system handed
	// to -edit by mistake; DeclaredOpen can.
	DeclaredOpen bool
}

// Expr is an expression tree.
type Expr interface{ exprNode() }

// Var references an unknown.
type Var struct{ Name string }

// Lit is a literal: for natinf a single bound, for intervals a pair.
type Lit struct {
	Lo, Hi lattice.Ext // natinf uses Lo only (PosInf encodes ∞)
}

// BinOp is a binary operation: + - * min max join meet.
type BinOp struct {
	Op   string
	L, R Expr
}

func (*Var) exprNode()   {}
func (*Lit) exprNode()   {}
func (*BinOp) exprNode() {}

// Parse reads a system file. Every referenced unknown must be defined in
// the file itself.
func Parse(src string) (*File, error) {
	return parse(src, false)
}

// ParseOverlay reads an edit-overlay file: same format, but equations may
// reference unknowns the overlay does not define — they resolve against the
// base system the overlay is applied to (eqsolve -edit).
func ParseOverlay(src string) (*File, error) {
	return parse(src, true)
}

func parse(src string, open bool) (*File, error) {
	f := &File{Defs: make(map[string]Expr), Open: open}
	sawDomain := false
	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if !sawDomain {
			fields := strings.Fields(line)
			if len(fields) != 2 || fields[0] != "domain" {
				return nil, fmt.Errorf("line %d: expected `domain natinf|interval`, got %q", lineNo+1, line)
			}
			switch fields[1] {
			case "natinf":
				f.Domain = DomainNatInf
			case "interval":
				f.Domain = DomainInterval
			default:
				return nil, fmt.Errorf("line %d: unknown domain %q", lineNo+1, fields[1])
			}
			sawDomain = true
			continue
		}
		if line == "open" && len(f.Order) == 0 {
			f.Open = true
			f.DeclaredOpen = true
			continue
		}
		name, rhs, ok := strings.Cut(line, "=")
		if !ok {
			return nil, fmt.Errorf("line %d: expected `name = expr`", lineNo+1)
		}
		name = strings.TrimSpace(name)
		if name == "" || strings.ContainsAny(name, " \t()[],") {
			return nil, fmt.Errorf("line %d: bad unknown name %q", lineNo+1, name)
		}
		if _, dup := f.Defs[name]; dup {
			return nil, fmt.Errorf("line %d: duplicate equation for %q", lineNo+1, name)
		}
		e, err := parseExpr(rhs, f.Domain)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo+1, err)
		}
		f.Order = append(f.Order, name)
		f.Defs[name] = e
	}
	if !sawDomain {
		return nil, fmt.Errorf("empty system: missing `domain` header")
	}
	if len(f.Order) == 0 {
		return nil, fmt.Errorf("no equations")
	}
	if !f.Open {
		// All referenced unknowns must be defined.
		for _, name := range f.Order {
			var undef string
			walk(f.Defs[name], func(e Expr) {
				if v, ok := e.(*Var); ok {
					if _, defined := f.Defs[v.Name]; !defined && undef == "" {
						undef = v.Name
					}
				}
			})
			if undef != "" {
				return nil, fmt.Errorf("equation for %s references undefined unknown %q", name, undef)
			}
		}
	}
	return f, nil
}

// walk visits the expression tree.
func walk(e Expr, visit func(Expr)) {
	visit(e)
	if b, ok := e.(*BinOp); ok {
		walk(b.L, visit)
		walk(b.R, visit)
	}
}

// exprParser is a tiny recursive-descent parser over tokens.
type exprParser struct {
	toks   []string
	pos    int
	domain Domain
}

func tokenize(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case strings.IndexByte("()[],+*", c) >= 0:
			toks = append(toks, string(c))
			i++
		case c == '-':
			// Negative literal or subtraction: lex as '-' and let the
			// parser decide by context.
			toks = append(toks, "-")
			i++
		default:
			j := i
			for j < len(s) && strings.IndexByte(" \t()[],+-*", s[j]) < 0 {
				j++
			}
			toks = append(toks, s[i:j])
			i = j
		}
	}
	return toks
}

func parseExpr(s string, d Domain) (Expr, error) {
	p := &exprParser{toks: tokenize(s), domain: d}
	e, err := p.sum()
	if err != nil {
		return nil, err
	}
	if p.pos != len(p.toks) {
		return nil, fmt.Errorf("trailing input %q", strings.Join(p.toks[p.pos:], " "))
	}
	return e, nil
}

func (p *exprParser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *exprParser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *exprParser) expect(t string) error {
	if got := p.next(); got != t {
		return fmt.Errorf("expected %q, got %q", t, got)
	}
	return nil
}

func (p *exprParser) sum() (Expr, error) {
	l, err := p.product()
	if err != nil {
		return nil, err
	}
	for p.peek() == "+" || p.peek() == "-" {
		op := p.next()
		r, err := p.product()
		if err != nil {
			return nil, err
		}
		if op == "-" && p.domain == DomainNatInf {
			return nil, fmt.Errorf("subtraction is not available in the natinf domain")
		}
		l = &BinOp{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *exprParser) product() (Expr, error) {
	l, err := p.atom()
	if err != nil {
		return nil, err
	}
	for p.peek() == "*" {
		p.next()
		if p.domain == DomainNatInf {
			return nil, fmt.Errorf("multiplication is not available in the natinf domain")
		}
		r, err := p.atom()
		if err != nil {
			return nil, err
		}
		l = &BinOp{Op: "*", L: l, R: r}
	}
	return l, nil
}

func (p *exprParser) atom() (Expr, error) {
	switch t := p.next(); {
	case t == "":
		return nil, fmt.Errorf("unexpected end of expression")
	case t == "(":
		e, err := p.sum()
		if err != nil {
			return nil, err
		}
		return e, p.expect(")")
	case t == "[":
		if p.domain != DomainInterval {
			return nil, fmt.Errorf("interval literal in %s domain", p.domain)
		}
		lo, err := p.bound()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		hi, err := p.bound()
		if err != nil {
			return nil, err
		}
		return &Lit{Lo: lo, Hi: hi}, p.expect("]")
	case t == "-":
		// Negative numeric literal.
		n := p.next()
		v, err := strconv.ParseInt(n, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expected number after '-', got %q", n)
		}
		return p.numberLit(-v)
	case t == "min" || t == "max" || t == "join" || t == "meet":
		if err := p.expect("("); err != nil {
			return nil, err
		}
		l, err := p.sum()
		if err != nil {
			return nil, err
		}
		if err := p.expect(","); err != nil {
			return nil, err
		}
		r, err := p.sum()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		op := t
		// In a lattice min/max are meet/join; accept both spellings.
		if op == "min" {
			op = "meet"
		}
		if op == "max" {
			op = "join"
		}
		return &BinOp{Op: op, L: l, R: r}, nil
	case t == "inf":
		return &Lit{Lo: lattice.PosInf, Hi: lattice.PosInf}, nil
	default:
		if v, err := strconv.ParseInt(t, 10, 64); err == nil {
			return p.numberLit(v)
		}
		return &Var{Name: t}, nil
	}
}

func (p *exprParser) numberLit(v int64) (Expr, error) {
	if p.domain == DomainNatInf && v < 0 {
		return nil, fmt.Errorf("negative literal %d in natinf domain", v)
	}
	return &Lit{Lo: lattice.Fin(v), Hi: lattice.Fin(v)}, nil
}

// bound parses an interval bound: a number, inf, or -inf.
func (p *exprParser) bound() (lattice.Ext, error) {
	t := p.next()
	neg := false
	if t == "-" {
		neg = true
		t = p.next()
	}
	if t == "inf" {
		if neg {
			return lattice.NegInf, nil
		}
		return lattice.PosInf, nil
	}
	v, err := strconv.ParseInt(t, 10, 64)
	if err != nil {
		return lattice.Ext{}, fmt.Errorf("bad bound %q", t)
	}
	if neg {
		v = -v
	}
	return lattice.Fin(v), nil
}

// NatSystem builds the eqn.System over ℕ∪{∞} for a natinf file.
func (f *File) NatSystem() (*eqn.System[string, lattice.Nat], error) {
	if f.Domain != DomainNatInf {
		return nil, fmt.Errorf("eqdsl: system has domain %s, not natinf", f.Domain)
	}
	sys := eqn.NewSystem[string, lattice.Nat]()
	for _, name := range f.Order {
		e := f.Defs[name]
		deps := depsOf(e)
		sys.Define(name, deps, func(get func(string) lattice.Nat) lattice.Nat {
			return evalNat(e, get)
		})
	}
	return sys, nil
}

// IntervalSystem builds the eqn.System over intervals for an interval file.
// Expressions built from literals, variables, +, -, join and meet are also
// compiled to a fused raw form (eqn.AttachRaw), so the unboxed solver core
// evaluates them without materializing a boxed Interval; expressions using
// multiplication or literals outside the raw encoding's range stay boxed.
func (f *File) IntervalSystem() (*eqn.System[string, lattice.Interval], error) {
	if f.Domain != DomainInterval {
		return nil, fmt.Errorf("eqdsl: system has domain %s, not interval", f.Domain)
	}
	sys := eqn.NewSystem[string, lattice.Interval]()
	for _, name := range f.Order {
		e := f.Defs[name]
		deps := depsOf(e)
		sys.Define(name, deps, func(get func(string) lattice.Interval) lattice.Interval {
			return evalInterval(e, get)
		})
		if rf, ok := compileIv(e); ok {
			sys.AttachRaw(name, rf)
		}
	}
	return sys, nil
}

// tryEncIv encodes v into dst, reporting false for values the raw interval
// encoding cannot represent (bounds colliding with the ±∞ sentinels).
func tryEncIv(dst []uint64, v lattice.Interval) (ok bool) {
	defer func() {
		if recover() != nil {
			ok = false
		}
	}()
	lattice.Ints.RawEncode(dst, v)
	return true
}

// compileIv compiles an interval expression to a closure tree over raw word
// pairs, mirroring evalInterval node for node. Literals are encoded once at
// compile time; each binary node owns a private scratch pair, so evaluation
// allocates nothing. Returns false for expressions the raw layer cannot
// express (multiplication, unencodable literals) — those stay boxed.
func compileIv(e Expr) (func(get func(string) []uint64, dst []uint64), bool) {
	switch x := e.(type) {
	case *Lit:
		w := make([]uint64, 2)
		if !tryEncIv(w, lattice.NewInterval(x.Lo, x.Hi)) {
			return nil, false
		}
		return func(_ func(string) []uint64, dst []uint64) {
			dst[0], dst[1] = w[0], w[1]
		}, true
	case *Var:
		name := x.Name
		return func(get func(string) []uint64, dst []uint64) {
			t := get(name)
			dst[0], dst[1] = t[0], t[1]
		}, true
	case *BinOp:
		var apply func(dst, a, b []uint64)
		switch x.Op {
		case "+":
			apply = lattice.RawIntervalAdd
		case "-":
			apply = lattice.RawIntervalSub
		case "join":
			apply = lattice.RawIntervalJoin
		case "meet":
			apply = lattice.RawIntervalMeet
		default: // "*" has no raw form
			return nil, false
		}
		lf, lok := compileIv(x.L)
		rf, rok := compileIv(x.R)
		if !lok || !rok {
			return nil, false
		}
		tmp := make([]uint64, 2)
		return func(get func(string) []uint64, dst []uint64) {
			lf(get, dst)
			rf(get, tmp)
			apply(dst, dst, tmp)
		}, true
	}
	return nil, false
}

// depsOf collects the referenced unknowns.
func depsOf(e Expr) []string {
	seen := map[string]bool{}
	var out []string
	walk(e, func(x Expr) {
		if v, ok := x.(*Var); ok && !seen[v.Name] {
			seen[v.Name] = true
			out = append(out, v.Name)
		}
	})
	return out
}

// evalNat evaluates an expression over ℕ∪{∞}.
func evalNat(e Expr, get func(string) lattice.Nat) lattice.Nat {
	switch x := e.(type) {
	case *Var:
		return get(x.Name)
	case *Lit:
		if x.Lo.IsPosInf() {
			return lattice.NatInfElem
		}
		return lattice.NatOf(uint64(x.Lo.Int()))
	case *BinOp:
		l := evalNat(x.L, get)
		r := evalNat(x.R, get)
		switch x.Op {
		case "+":
			if l.IsInf() || r.IsInf() {
				return lattice.NatInfElem
			}
			return lattice.NatOf(l.Val() + r.Val())
		case "join":
			return lattice.NatInf.Join(l, r)
		case "meet":
			return lattice.NatInf.Meet(l, r)
		}
	}
	panic("eqdsl: bad natinf expression")
}

// evalInterval evaluates an expression over intervals.
func evalInterval(e Expr, get func(string) lattice.Interval) lattice.Interval {
	switch x := e.(type) {
	case *Lit:
		return lattice.NewInterval(x.Lo, x.Hi)
	case *Var:
		return get(x.Name)
	case *BinOp:
		l := evalInterval(x.L, get)
		r := evalInterval(x.R, get)
		switch x.Op {
		case "+":
			return l.Add(r)
		case "-":
			return l.Sub(r)
		case "*":
			return l.Mul(r)
		case "join":
			return lattice.Ints.Join(l, r)
		case "meet":
			return lattice.Ints.Meet(l, r)
		}
	}
	panic("eqdsl: bad interval expression")
}
