package eqdsl

import (
	"errors"
	"strings"
	"testing"

	"warrow/internal/lattice"
	"warrow/internal/solver"
)

const example1 = `
# Example 1 of the paper: RR with ⊟ diverges, SRR terminates.
domain natinf
x1 = x2
x2 = x3 + 1
x3 = x1
`

const example2 = `
domain natinf
x1 = min(x1 + 1, x2 + 1)
x2 = min(x2 + 1, x1 + 1)
`

const loopSystem = `
# Constraint system of: i = 0; while (i < 100) i = i + 1;
domain interval
h = join([0,0], b + [1,1])
b = meet(h, [-inf,99])
e = meet(h, [100,inf])
`

func TestParseExample1(t *testing.T) {
	f, err := Parse(example1)
	if err != nil {
		t.Fatal(err)
	}
	if f.Domain != DomainNatInf || len(f.Order) != 3 || f.Order[0] != "x1" {
		t.Fatalf("parsed: %+v", f)
	}
}

func TestSolveExample1(t *testing.T) {
	f, err := Parse(example1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := f.NatSystem()
	if err != nil {
		t.Fatal(err)
	}
	l := lattice.NatInf
	op := solver.Op[string](solver.Warrow[lattice.Nat](l))
	zero := func(string) lattice.Nat { return lattice.NatOf(0) }

	// RR diverges, SRR terminates — the paper's Examples 1 and 3, now
	// loaded from the text artifact.
	_, _, err = solver.RR(sys, l, op, zero, solver.Config{MaxEvals: 10000})
	if !errors.Is(err, solver.ErrEvalBudget) {
		t.Fatalf("RR should diverge: %v", err)
	}
	sigma, _, err := solver.SRR(sys, l, op, zero, solver.Config{MaxEvals: 10000})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range f.Order {
		if !sigma[x].IsInf() {
			t.Errorf("σ[%s] = %s, want ∞", x, sigma[x])
		}
	}
}

func TestSolveExample2(t *testing.T) {
	f, err := Parse(example2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := f.NatSystem()
	if err != nil {
		t.Fatal(err)
	}
	l := lattice.NatInf
	op := solver.Op[string](solver.Warrow[lattice.Nat](l))
	zero := func(string) lattice.Nat { return lattice.NatOf(0) }
	_, _, err = solver.W(sys, l, op, zero, solver.Config{MaxEvals: 10000})
	if !errors.Is(err, solver.ErrEvalBudget) {
		t.Fatalf("W should diverge: %v", err)
	}
	sigma, _, err := solver.SW(sys, l, op, zero, solver.Config{MaxEvals: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !sigma["x1"].IsInf() || !sigma["x2"].IsInf() {
		t.Errorf("σ = %v", sigma)
	}
}

func TestSolveLoopSystem(t *testing.T) {
	f, err := Parse(loopSystem)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := f.IntervalSystem()
	if err != nil {
		t.Fatal(err)
	}
	l := lattice.Ints
	op := solver.Op[string](solver.Warrow[lattice.Interval](l))
	bot := func(string) lattice.Interval { return lattice.EmptyInterval }
	sigma, _, err := solver.SW(sys, l, op, bot, solver.Config{MaxEvals: 10000})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Eq(sigma["h"], lattice.Range(0, 100)) {
		t.Errorf("h = %s, want [0,100]", sigma["h"])
	}
	if !l.Eq(sigma["e"], lattice.Singleton(100)) {
		t.Errorf("e = %s, want [100,100]", sigma["e"])
	}
}

func TestParseNegativeAndArith(t *testing.T) {
	f, err := Parse(`
domain interval
a = [-5,5] * [2,2] - 3
b = a + -2
`)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := f.IntervalSystem()
	if err != nil {
		t.Fatal(err)
	}
	l := lattice.Ints
	op := solver.Op[string](solver.Replace[lattice.Interval]())
	bot := func(string) lattice.Interval { return lattice.EmptyInterval }
	sigma, _, err := solver.SRR(sys, l, op, bot, solver.Config{MaxEvals: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Eq(sigma["a"], lattice.Range(-13, 7)) {
		t.Errorf("a = %s, want [-13,7]", sigma["a"])
	}
	if !l.Eq(sigma["b"], lattice.Range(-15, 5)) {
		t.Errorf("b = %s, want [-15,5]", sigma["b"])
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src, want string
	}{
		{`x = 1`, "domain"},
		{`domain foo`, "unknown domain"},
		{`domain natinf`, "no equations"},
		{`domain natinf` + "\nx = y", "undefined unknown"},
		{`domain natinf` + "\nx = 1\nx = 2", "duplicate"},
		{`domain natinf` + "\nx = x - 1", "subtraction"},
		{`domain natinf` + "\nx = x * 2", "multiplication"},
		{`domain natinf` + "\nx = -1", "negative"},
		{`domain natinf` + "\nx = [0,1]", "interval literal"},
		{`domain interval` + "\nx = (x", "expected"},
		{`domain interval` + "\nx = x 3", "trailing"},
		{`domain interval` + "\nbad name = 1", "bad unknown name"},
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error %v, want substring %q", c.src, err, c.want)
		}
	}
}

// TestOpenOverlay: the `open` directive and ParseOverlay both admit
// references to unknowns the file does not define; a closed Parse of the
// same equations rejects them, and `open` after the first equation is an
// ordinary (bad) equation line, not a directive.
func TestOpenOverlay(t *testing.T) {
	const body = "b = meet(h, [-inf,49])\n"
	for _, src := range []string{
		"domain interval\nopen\n" + body,
		"domain interval\n" + body, // closed text, opened by ParseOverlay
	} {
		f, err := ParseOverlay(src)
		if err != nil {
			t.Fatalf("ParseOverlay(%q): %v", src, err)
		}
		if !f.Open {
			t.Errorf("ParseOverlay(%q): Open = false", src)
		}
	}
	f, err := Parse("domain interval\nopen\n" + body)
	if err != nil {
		t.Fatalf("Parse with open directive: %v", err)
	}
	if !f.Open {
		t.Error("open directive did not set File.Open")
	}
	if _, err := Parse("domain interval\n" + body); err == nil ||
		!strings.Contains(err.Error(), "undefined unknown") {
		t.Errorf("closed Parse of overlay body: err = %v, want undefined unknown", err)
	}
	if _, err := Parse("domain interval\nx = 1\nopen\n"); err == nil ||
		!strings.Contains(err.Error(), "expected") {
		t.Errorf("open after first equation: err = %v, want parse error", err)
	}
}

func TestComments(t *testing.T) {
	f, err := Parse("# header\ndomain natinf # trailing\nx = 1 # eol\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Order) != 1 {
		t.Fatalf("order: %v", f.Order)
	}
}

// TestCompiledRawInterval: the fused raw form IntervalSystem attaches
// computes exactly the boxed right-hand side on random assignments, and
// expressions the raw layer cannot express (multiplication, sentinel-range
// literals) are left boxed-only.
func TestCompiledRawInterval(t *testing.T) {
	src := `domain interval
h = join([0,0], b + [1,1])
b = meet(h, [-inf,99])
e = meet(h, [100,inf])
d = h - join(b, [2,5])
`
	f, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := f.IntervalSystem()
	if err != nil {
		t.Fatal(err)
	}
	raw := lattice.AsRaw[lattice.Interval](lattice.Ints)
	names := sys.Order()
	samples := []lattice.Interval{
		lattice.EmptyInterval, lattice.FullInterval,
		lattice.Range(0, 0), lattice.Range(-7, 99), lattice.Range(100, 250),
		lattice.NewInterval(lattice.NegInf, lattice.Fin(5)),
		lattice.NewInterval(lattice.Fin(-3), lattice.PosInf),
	}
	rng := uint64(0x9e3779b97f4a7c15)
	pick := func() lattice.Interval {
		rng = rng*6364136223846793005 + 1442695040888963407
		return samples[rng>>33%uint64(len(samples))]
	}
	for round := 0; round < 200; round++ {
		vals := make(map[string]lattice.Interval, len(names))
		words := make(map[string][]uint64, len(names))
		for _, x := range names {
			v := pick()
			vals[x] = v
			w := make([]uint64, 2)
			raw.RawEncode(w, v)
			words[x] = w
		}
		get := func(y string) lattice.Interval { return vals[y] }
		getRaw := func(y string) []uint64 { return words[y] }
		dst, want := make([]uint64, 2), make([]uint64, 2)
		for _, x := range names {
			rf := sys.RawRHSOf(x)
			if rf == nil {
				t.Fatalf("%s: no raw RHS attached", x)
			}
			rf(getRaw, dst)
			raw.RawEncode(want, sys.RHS(x)(get))
			if dst[0] != want[0] || dst[1] != want[1] {
				t.Fatalf("round %d %s: raw %v boxed %v", round, x, dst, want)
			}
		}
	}

	// Multiplication and sentinel-colliding literals have no raw form.
	f2, err := Parse("domain interval\na = [1,2] * [3,4]\nb = [9223372036854775807,inf]\nc = a + b\n")
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := f2.IntervalSystem()
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []string{"a", "b"} {
		if sys2.RawRHSOf(x) != nil {
			t.Errorf("%s: expected boxed-only RHS", x)
		}
	}
	if sys2.RawRHSOf("c") == nil {
		t.Errorf("c: pure variable sum should compile to a raw form")
	}
}
