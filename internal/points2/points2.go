// Package points2 implements a flow-insensitive, field-insensitive
// Andersen-style points-to analysis for mini-C — the "standard analyses of
// pointers" the paper's evaluation runs beneath the interval analysis.
//
// Every variable declaration is one abstract cell; arrays are summarized by
// a single cell. The subset constraints are expressed as a pure equation
// system over powerset lattices and solved with the local solver SLR from
// internal/solver: the dynamic dependences arising from dereferences
// (pt(*p) depends on the current value of pt(p)) are exactly what SLR's
// on-the-fly dependence tracking handles.
package points2

import (
	"warrow/internal/cfg"
	"warrow/internal/cint"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// Result maps each pointer-holding cell ID to the set of cell IDs it may
// point to.
type Result struct {
	pt map[string]lattice.Set[string]
}

// PointsTo returns the points-to set of the cell id (empty if unknown).
func (r *Result) PointsTo(id string) lattice.Set[string] { return r.pt[id] }

// retCell is the pseudo-cell collecting pointer return values of fn.
func retCell(fn *cint.FuncDecl) string { return fn.Name + "::@ret" }

// rootCell drives the demand-driven solver over all cells.
const rootCell = "@points2-root"

// flow is one inflow into a cell: either the pointees of an expression, or
// (for call-result routing) the points-to set of another cell.
type flow struct {
	expr cint.Expr // nil when cell is set
	cell string    // direct cell-to-cell subset constraint
}

// Analyze computes points-to sets for the whole program.
func Analyze(p *cfg.Program) *Result {
	b := &ptBuilder{flows: make(map[string][]flow)}
	for _, name := range p.Order {
		g := p.Graphs[name]
		for _, n := range g.Nodes {
			for _, e := range n.Out {
				b.edge(g.Fn, e)
			}
		}
	}
	return b.solve()
}

type ptBuilder struct {
	flows     map[string][]flow // cell -> direct inflows
	cells     []string          // all cells with inflows, in discovery order
	indirects []indirect        // *p = rhs store constraints
}

func (b *ptBuilder) addFlow(cell string, e cint.Expr) {
	if _, seen := b.flows[cell]; !seen {
		b.cells = append(b.cells, cell)
	}
	b.flows[cell] = append(b.flows[cell], flow{expr: e})
}

// isPtrValued reports whether an expression produces a pointer.
func isPtrValued(e cint.Expr) bool {
	t := e.Type()
	return t != nil && (t.Kind == cint.TypePtr || t.Kind == cint.TypeArray)
}

// edge records constraints for one CFG edge.
func (b *ptBuilder) edge(fn *cint.FuncDecl, e *cfg.Edge) {
	switch e.Kind {
	case cfg.Decl:
		if e.Rhs != nil && isPtrValued(e.Rhs) {
			b.addFlow(e.Var.ID, e.Rhs)
		}
	case cfg.Assign:
		if isPtrValued(e.Rhs) {
			b.assignTo(e.Lhs, e.Rhs)
		}
	case cfg.Call:
		callee := e.Call.Fn
		for i, arg := range e.Call.Args {
			if isPtrValued(arg) {
				b.addFlow(callee.Params[i].ID, arg)
			}
		}
		if e.Lhs != nil && callee.Ret.Kind == cint.TypePtr {
			if id, ok := baseIdent(e.Lhs); ok {
				b.addCellFlow(id.Obj.ID, retCell(callee))
			}
		}
	case cfg.Ret:
		if e.Rhs != nil && isPtrValued(e.Rhs) {
			b.addFlow(retCell(fn), e.Rhs)
		}
	}
}

// addCellFlow records the subset constraint dst ⊇ pt(src).
func (b *ptBuilder) addCellFlow(dst, src string) {
	if _, seen := b.flows[dst]; !seen {
		b.cells = append(b.cells, dst)
	}
	b.flows[dst] = append(b.flows[dst], flow{cell: src})
}

// assignTo records lhs ⊇ pointees(rhs) where lhs may be an identifier, a
// dereference, or an index expression.
func (b *ptBuilder) assignTo(lhs cint.Expr, rhs cint.Expr) {
	switch l := lhs.(type) {
	case *cint.Ident:
		b.addFlow(l.Obj.ID, rhs)
	case *cint.UnaryExpr:
		if l.Op == cint.TokStar {
			// *p = rhs: every current target of p receives rhs. Encoded as
			// an indirect flow resolved during solving.
			b.addIndirect(l.X, rhs)
		}
	case *cint.IndexExpr:
		if id, ok := baseIdent(l.X); ok {
			b.addFlow(id.Obj.ID, rhs)
		} else {
			b.addIndirect(l.X, rhs)
		}
	}
}

// indirect captures "*target-expr receives pointees(rhs)".
type indirect struct {
	target cint.Expr
	rhs    cint.Expr
}

func (b *ptBuilder) addIndirect(target, rhs cint.Expr) {
	b.indirects = append(b.indirects, indirect{target: target, rhs: rhs})
}

// baseIdent unwraps an identifier.
func baseIdent(e cint.Expr) (*cint.Ident, bool) {
	id, ok := e.(*cint.Ident)
	return id, ok
}

func (b *ptBuilder) solve() *Result {
	l := &lattice.SetLattice[string]{}
	// pointees evaluates the points-to set of an expression under get.
	var pointees func(e cint.Expr, get func(string) lattice.Set[string]) lattice.Set[string]
	pointees = func(e cint.Expr, get func(string) lattice.Set[string]) lattice.Set[string] {
		switch x := e.(type) {
		case *cint.Ident:
			if x.Obj.Type.Kind == cint.TypeArray {
				return lattice.NewSet(x.Obj.ID) // array decays to its own cell
			}
			return get(x.Obj.ID)
		case *cint.UnaryExpr:
			switch x.Op {
			case cint.TokAmp:
				id := x.X.(*cint.Ident)
				return lattice.NewSet(id.Obj.ID)
			case cint.TokStar:
				// **q etc.: union of pt(t) over t in pointees(q).
				out := lattice.Set[string]{}
				for _, t := range pointees(x.X, get).Elems() {
					out = out.Union(get(t))
				}
				return out
			}
		case *cint.IndexExpr:
			// Elements of a cell: pt of the base cells.
			out := lattice.Set[string]{}
			for _, t := range pointees(x.X, get).Elems() {
				out = out.Union(get(t))
			}
			return out
		}
		return lattice.Set[string]{} // integers, null, arithmetic
	}

	sys := func(cell string) eqn.RHS[string, lattice.Set[string]] {
		if cell == rootCell {
			cells := b.cells
			ind := b.indirects
			return func(get func(string) lattice.Set[string]) lattice.Set[string] {
				for _, c := range cells {
					get(c)
				}
				// Touch indirect targets so their flows are installed below.
				for _, i := range ind {
					for _, t := range pointees(i.target, get).Elems() {
						get(t)
					}
				}
				return lattice.Set[string]{}
			}
		}
		inflows := b.flows[cell]
		ind := b.indirects
		return func(get func(string) lattice.Set[string]) lattice.Set[string] {
			out := lattice.Set[string]{}
			for _, f := range inflows {
				if f.expr == nil {
					out = out.Union(get(f.cell))
					continue
				}
				out = out.Union(pointees(f.expr, get))
			}
			// Indirect stores whose target set contains this cell.
			for _, i := range ind {
				if pointees(i.target, get).Has(cell) {
					out = out.Union(pointees(i.rhs, get))
				}
			}
			return out
		}
	}

	init := func(string) lattice.Set[string] { return lattice.Set[string]{} }
	op := solver.Op[string](solver.Join[lattice.Set[string]](l))
	res, err := solver.SLR(sys, l, op, init, rootCell, solver.Config{})
	if err != nil {
		// The system is monotone over a finite powerset; SLR cannot
		// diverge. A budget error would indicate an internal bug.
		panic("points2: solver failed: " + err.Error())
	}
	delete(res.Values, rootCell)
	return &Result{pt: res.Values}
}
