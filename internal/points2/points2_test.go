package points2

import (
	"testing"

	"warrow/internal/cfg"
	"warrow/internal/cint"
)

func analyze(t *testing.T, src string) (*cfg.Program, *Result) {
	t.Helper()
	ast, err := cint.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := cfg.Build(ast)
	return p, Analyze(p)
}

// localID finds the unique ID of a local variable by name.
func localID(t *testing.T, p *cfg.Program, fn, name string) string {
	t.Helper()
	for _, l := range p.AST.FuncByName[fn].Locals {
		if l.Name == name {
			return l.ID
		}
	}
	t.Fatalf("no local %s in %s", name, fn)
	return ""
}

func TestBasicAddressOf(t *testing.T) {
	p, r := analyze(t, `
int main() {
    int i; int j;
    int *p; int *q;
    p = &i;
    q = p;
    p = &j;
    return 0;
}`)
	pID := localID(t, p, "main", "p")
	qID := localID(t, p, "main", "q")
	iID := localID(t, p, "main", "i")
	jID := localID(t, p, "main", "j")
	pt := r.PointsTo(pID)
	if !pt.Has(iID) || !pt.Has(jID) || pt.Len() != 2 {
		t.Errorf("pt(p) = %s", pt.Key())
	}
	qt := r.PointsTo(qID)
	if !qt.Has(iID) || !qt.Has(jID) {
		t.Errorf("pt(q) = %s (flow-insensitive: must include both)", qt.Key())
	}
}

func TestArrayDecay(t *testing.T) {
	p, r := analyze(t, `
int buf[8];
int main() {
    int *p;
    p = buf;
    return 0;
}`)
	pID := localID(t, p, "main", "p")
	if pt := r.PointsTo(pID); !pt.Has("buf") || pt.Len() != 1 {
		t.Errorf("pt(p) = %s, want {buf}", pt.Key())
	}
}

func TestParameterBinding(t *testing.T) {
	p, r := analyze(t, `
void store(int *dst, int v) { *dst = v; }
int main() {
    int x; int y;
    store(&x, 1);
    store(&y, 2);
    return 0;
}`)
	dstID := localID(t, p, "store", "dst")
	xID := localID(t, p, "main", "x")
	yID := localID(t, p, "main", "y")
	pt := r.PointsTo(dstID)
	if !pt.Has(xID) || !pt.Has(yID) {
		t.Errorf("pt(dst) = %s, want {x, y}", pt.Key())
	}
}

func TestReturnedPointer(t *testing.T) {
	p, r := analyze(t, `
int g;
int *addr() { return &g; }
int main() {
    int *p;
    p = addr();
    return 0;
}`)
	pID := localID(t, p, "main", "p")
	if pt := r.PointsTo(pID); !pt.Has("g") {
		t.Errorf("pt(p) = %s, want {g}", pt.Key())
	}
}

func TestPointerToPointer(t *testing.T) {
	p, r := analyze(t, `
int main() {
    int i; int j;
    int *p;
    int **pp;
    p = &i;
    pp = &p;
    *pp = &j;
    return 0;
}`)
	pID := localID(t, p, "main", "p")
	ppID := localID(t, p, "main", "pp")
	iID := localID(t, p, "main", "i")
	jID := localID(t, p, "main", "j")
	if pt := r.PointsTo(ppID); !pt.Has(pID) {
		t.Errorf("pt(pp) = %s, want {p}", pt.Key())
	}
	pt := r.PointsTo(pID)
	if !pt.Has(iID) || !pt.Has(jID) {
		t.Errorf("pt(p) = %s, want {i, j} (indirect store via pp)", pt.Key())
	}
}

func TestDerefLoad(t *testing.T) {
	p, r := analyze(t, `
int main() {
    int i;
    int *p; int *q;
    int **pp;
    p = &i;
    pp = &p;
    q = *pp;
    return 0;
}`)
	qID := localID(t, p, "main", "q")
	iID := localID(t, p, "main", "i")
	if pt := r.PointsTo(qID); !pt.Has(iID) {
		t.Errorf("pt(q) = %s, want {i}", pt.Key())
	}
}

func TestNoPointersNoCrash(t *testing.T) {
	_, r := analyze(t, `int main() { int i; i = 3; return i; }`)
	if pt := r.PointsTo("main::i#0"); pt.Len() != 0 {
		t.Errorf("pt(i) = %s, want empty", pt.Key())
	}
}

func TestConditionalTargets(t *testing.T) {
	p, r := analyze(t, `
int main() {
    int a; int b;
    int *p;
    if (a > 0) { p = &a; } else { p = &b; }
    *p = 5;
    return 0;
}`)
	pID := localID(t, p, "main", "p")
	aID := localID(t, p, "main", "a")
	bID := localID(t, p, "main", "b")
	pt := r.PointsTo(pID)
	if !pt.Has(aID) || !pt.Has(bID) || pt.Len() != 2 {
		t.Errorf("pt(p) = %s, want {a, b}", pt.Key())
	}
}
