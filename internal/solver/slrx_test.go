package solver

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// TestWideningPoints: widening points are the headers of the recursive SCC
// refinement — one per nontrivial component at every nesting level, the
// first-defined member of each. On the counting loop that is the loop head
// h; the exit e sits in its own trivial SCC and stays plain. On the triply
// nested loop system the refinement peels one loop per level and marks
// exactly the three loop heads oh/mh/ih.
func TestWideningPoints(t *testing.T) {
	sys := loopSystem() // order: h=0, b=1, e=2; SCC {h,b}, header h
	w := wpointsOf(sys)
	if !w.wp.has(0) {
		t.Errorf("loop head h is the component header and must be a widening point")
	}
	if w.wp.has(1) || w.wp.has(2) {
		t.Errorf("body/exit must not be widening points (wp = {h:%v b:%v e:%v})",
			w.wp.has(0), w.wp.has(1), w.wp.has(2))
	}
	if len(w.comps) != 1 || w.seq[w.comps[0].start] != 0 {
		t.Errorf("expected one component headed by h, got %v (seq %v)", w.comps, w.seq)
	}

	nested := nestedLoopSystem() // oh ob mh mb me ih ib ie (one SCC)
	nw := wpointsOf(nested)
	// Refinement: {all} headed by oh; remove oh → {ob} trivial and
	// {mh,mb,ih,ib,ie} headed by mh; remove mh → {mb} and {ie} trivial,
	// {ih,ib} headed by ih. Exactly the loop heads are marked.
	want := map[int]bool{0: true, 2: true, 5: true}
	for i, x := range nested.Order() {
		if nw.wp.has(i) != want[i] {
			t.Errorf("wpoint(%s) = %v, want %v", x, nw.wp.has(i), want[i])
		}
	}
	if len(nw.comps) != 3 {
		t.Errorf("expected three nested components (outer/middle/inner), got %v", nw.comps)
	}
}

// TestSLRFamilyLoopInvariants: all three solvers recover the exact counting
// loop invariants, like the ⊟-everywhere solvers.
func TestSLRFamilyLoopInvariants(t *testing.T) {
	l := lattice.Ints
	op := WarrowOp[string](l)
	cfg := Config{MaxEvals: 100000}
	for name, run := range slrFamily[string, iv]() {
		sigma, st, err := run(loopSystem(), l, op, ivInit, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		wantLoopInvariants(t, sigma, name)
		if name == "slr2" && st.Restarts != 0 {
			t.Errorf("slr2 must never restart, got %d", st.Restarts)
		}
	}
}

// slrFamily enumerates the three solvers under their checkpoint names.
func slrFamily[X comparable, D any]() map[string]func(*eqn.System[X, D], lattice.Lattice[D], Operator[X, D], func(X) D, Config) (map[X]D, Stats, error) {
	return map[string]func(*eqn.System[X, D], lattice.Lattice[D], Operator[X, D], func(X) D, Config) (map[X]D, Stats, error){
		"slr2": SLR2[X, D],
		"slr3": SLR3[X, D],
		"slr4": SLR4[X, D],
	}
}

// TestSLRFamilyCrossCoreIdentity: the map, boxed-dense and unboxed cores run
// the same iteration, so forcing each core on the same system must produce
// identical values and identical work counters, including restarts.
func TestSLRFamilyCrossCoreIdentity(t *testing.T) {
	l := lattice.Ints
	r := rand.New(rand.NewSource(17))
	init := func(int) iv { return lattice.EmptyInterval }
	cores := map[string]Core{"map": CoreMap, "dense": CoreDense, "unboxed": CoreUnboxed}
	for trial := 0; trial < 25; trial++ {
		sys := randMonotoneSystem(r, 2+r.Intn(8))
		for name, run := range slrFamily[int, iv]() {
			ref, refSt, err := run(sys, l, WarrowOp[int](l), init, Config{MaxEvals: 2_000_000, Core: CoreMap})
			if err != nil {
				t.Fatalf("trial %d %s/map: %v", trial, name, err)
			}
			for cname, core := range cores {
				if cname == "map" {
					continue
				}
				got, gotSt, err := run(sys, l, WarrowOp[int](l), init, Config{MaxEvals: 2_000_000, Core: core})
				if err != nil {
					t.Fatalf("trial %d %s/%s: %v", trial, name, cname, err)
				}
				for x, v := range ref {
					if !l.Eq(got[x], v) {
						t.Fatalf("trial %d %s/%s: σ[%d] = %s, map core got %s", trial, name, cname, x, got[x], v)
					}
				}
				if gotSt.Evals != refSt.Evals || gotSt.Updates != refSt.Updates || gotSt.Restarts != refSt.Restarts {
					t.Fatalf("trial %d %s/%s: stats (evals %d, updates %d, restarts %d) diverge from map core (%d, %d, %d)",
						trial, name, cname, gotSt.Evals, gotSt.Updates, gotSt.Restarts,
						refSt.Evals, refSt.Updates, refSt.Restarts)
				}
			}
		}
	}
}

// TestSLRFamilyPrecisionVsSW is the precision gate of the family. The gate
// is deliberately NOT "bit-pinned to SW": selective widening moves where the
// ∇ jumps land, and on arbitrary (random soup) systems even the restarting
// members can settle on post-solutions incomparable to SW's — ∇ is not
// monotone in its iterates, so no pointwise theorem exists there. What IS
// guaranteed, and what the diffsolve matrix and the WCET benchmark enforce:
//   - every family member certifies (eqn.IsPostSolution) on every system;
//   - on structured loop systems — the shape the recursive refinement is
//     built for — SLR3/SLR4 are pointwise ≤ the ⊟-everywhere SW baseline.
// Random systems additionally log how often the restarting members are
// tighter/looser than SW, so precision drift is visible without pinning.
func TestSLRFamilyPrecisionVsSW(t *testing.T) {
	l := lattice.Ints
	r := rand.New(rand.NewSource(23))
	init := func(int) iv { return lattice.EmptyInterval }

	// Certification on random soup, including non-monotone jump placement.
	tighter, looser := 0, 0
	for trial := 0; trial < 60; trial++ {
		sys := randMonotoneSystem(r, 2+r.Intn(8))
		cfg := Config{MaxEvals: 2_000_000}
		base, _, err := SW(sys, l, WarrowOp[int](l), init, cfg)
		if err != nil {
			t.Fatalf("trial %d: SW: %v", trial, err)
		}
		for name, run := range slrFamily[int, iv]() {
			sigma, _, err := run(sys, l, WarrowOp[int](l), init, cfg)
			if err != nil {
				t.Fatalf("trial %d: %s: %v", trial, name, err)
			}
			if x, ok := eqn.IsPostSolution(l, sys, sigma, init); !ok {
				t.Fatalf("trial %d: %s result not a post-solution at %v", trial, name, x)
			}
			if name == "slr2" {
				continue
			}
			for _, x := range sys.Order() {
				switch {
				case l.Eq(sigma[x], base[x]):
				case l.Leq(sigma[x], base[x]):
					tighter++
				default:
					looser++
				}
			}
		}
	}
	t.Logf("random soup, SLR3/SLR4 vs SW: %d points strictly tighter, %d not ≤", tighter, looser)

	// The hard pointwise-≤ gate on structured loop systems.
	structured := map[string]*eqn.System[string, iv]{
		"loop":   loopSystem(),
		"nested": nestedLoopSystem(),
	}
	for sysName, sys := range structured {
		cfg := Config{MaxEvals: 100000}
		base, _, err := SW(sys, l, WarrowOp[string](l), ivInit, cfg)
		if err != nil {
			t.Fatalf("%s: SW: %v", sysName, err)
		}
		for name, run := range slrFamily[string, iv]() {
			if name == "slr2" {
				continue
			}
			sigma, _, err := run(sys, l, WarrowOp[string](l), ivInit, cfg)
			if err != nil {
				t.Fatalf("%s: %s: %v", sysName, name, err)
			}
			for _, x := range sys.Order() {
				if !l.Leq(sigma[x], base[x]) {
					t.Errorf("%s: %s σ[%s] = %s not ≤ SW's %s", sysName, name, x, sigma[x], base[x])
				}
			}
		}
	}
}

// nestedLoopSystem models the triply nested counting loop
//
//	for (x=0; x<2; x++) for (y=0; y<3; y++) for (z=0; z<5; z++) {}
//
// as one strongly connected system: each head re-enters through its loop's
// exit, so narrowing at an outer head invalidates the converged inner loops
// below it — the motivating shape for restarting narrowing (SLR3).
func nestedLoopSystem() *eqn.System[string, iv] {
	l := lattice.Ints
	seed := lattice.Singleton(0)
	one := lattice.Singleton(1)
	s := eqn.NewSystem[string, iv]()
	s.Define("oh", []string{"ob", "me"}, func(get func(string) iv) iv {
		inc := lattice.EmptyInterval
		if !get("me").IsEmpty() { // outer increment only after the middle loop exits
			inc = get("ob").Add(one)
		}
		return l.Join(seed, inc)
	})
	s.Define("ob", []string{"oh"}, func(get func(string) iv) iv {
		return get("oh").RestrictLt(lattice.Singleton(2))
	})
	s.Define("mh", []string{"ob", "mb", "ie"}, func(get func(string) iv) iv {
		v := lattice.EmptyInterval
		if !get("ob").IsEmpty() { // middle loop entered from the outer body
			v = seed
		}
		if !get("ie").IsEmpty() { // middle increment only after the inner loop exits
			v = l.Join(v, get("mb").Add(one))
		}
		return v
	})
	s.Define("mb", []string{"mh"}, func(get func(string) iv) iv {
		return get("mh").RestrictLt(lattice.Singleton(3))
	})
	s.Define("me", []string{"mh"}, func(get func(string) iv) iv {
		return get("mh").RestrictGe(lattice.Singleton(3))
	})
	s.Define("ih", []string{"mb", "ib"}, func(get func(string) iv) iv {
		v := lattice.EmptyInterval
		if !get("mb").IsEmpty() {
			v = seed
		}
		return l.Join(v, get("ib").Add(one))
	})
	s.Define("ib", []string{"ih"}, func(get func(string) iv) iv {
		return get("ih").RestrictLt(lattice.Singleton(5))
	})
	s.Define("ie", []string{"ih"}, func(get func(string) iv) iv {
		return get("ih").RestrictGe(lattice.Singleton(5))
	})
	return s
}

// TestSLR3RestartNotOscillation is the watchdog regression for restarting
// narrowing: on the nested loops, SLR3's restart cascade resets the inner
// heads after each outer narrowing, and the resets' re-ascension would read
// as narrow→widen oscillation if the watchdog did not erase phase history on
// PhaseRestart. With MaxFlips: 1 the pre-fix classification aborts with
// AbortOscillation; the restart-aware watchdog lets the run converge.
func TestSLR3RestartNotOscillation(t *testing.T) {
	l := lattice.Ints
	sys := nestedLoopSystem()
	cfg := Config{MaxEvals: 100000, MaxFlips: 1}
	sigma, st, err := SLR3(sys, l, WarrowOp[string](l), ivInit, cfg)
	if err != nil {
		t.Fatalf("SLR3 aborted on a convergent restarting run: %v", err)
	}
	if st.Restarts < 2 {
		t.Fatalf("expected a restart cascade through the nested loops, got %d resets", st.Restarts)
	}
	if x, ok := eqn.IsPostSolution(l, sys, sigma, ivInit); !ok {
		t.Fatalf("result not a post-solution at %v", x)
	}
	if !l.Eq(sigma["ih"], lattice.Range(0, 5)) {
		t.Errorf("σ[ih] = %s, want [0,5]", sigma["ih"])
	}
	if !l.Eq(sigma["oh"], lattice.Range(0, 2)) {
		t.Errorf("σ[oh] = %s, want [0,2]", sigma["oh"])
	}
}

// TestSLR2OscillationStillCaught: restart awareness must not blind the
// watchdog — a genuinely oscillating non-monotone unknown (which never emits
// PhaseRestart) still trips MaxFlips.
func TestSLR2OscillationStillCaught(t *testing.T) {
	l := lattice.Ints
	sys := nonMonotoneOscillator()
	_, _, err := SLR2(sys, l, WarrowOp[string](l), ivInit, Config{MaxEvals: 100000, MaxFlips: 3})
	rep, ok := ReportOf(err)
	if !ok || rep.Reason != AbortOscillation {
		t.Fatalf("want AbortOscillation, got %v", err)
	}
}

// deepChainSystem closes an n-long dependence chain through a counting
// widening point: w = 0 ⊔ (eₙ<100)+1, e₁ = w, eₖ = eₖ₋₁ — one giant cycle,
// so the whole chain lies inside w's component and is swept on every pass.
// The chain carries w's widened [0,+inf] when w narrows to [0,100], so
// SLR3's restart cascade must walk and reset the entire chain.
func deepChainSystem(n int) *eqn.System[int, iv] {
	l := lattice.Ints
	s := eqn.NewSystem[int, iv]()
	s.Define(0, []int{n}, func(get func(int) iv) iv {
		return l.Join(lattice.Singleton(0),
			get(n).RestrictLt(lattice.Singleton(100)).Add(lattice.Singleton(1)))
	})
	for k := 1; k <= n; k++ {
		k := k
		s.Define(k, []int{k - 1}, func(get func(int) iv) iv {
			return get(k - 1)
		})
	}
	return s
}

// TestSLR3RestartDeepChain is the deep-influence regression: the restart
// cascade is an explicit iterative worklist, so a 10⁵-long influence chain
// is reset without 10⁵ nested calls (a recursive cascade grows the
// goroutine stack by the chain length and dies on deeper systems). The
// whole chain carries the widened value when the head narrows, so every
// link must be reset exactly once.
func TestSLR3RestartDeepChain(t *testing.T) {
	const n = 100_000
	l := lattice.Ints
	sys := deepChainSystem(n)
	init := func(int) iv { return lattice.EmptyInterval }
	sigma, st, err := SLR3(sys, l, WarrowOp[int](l), init, Config{MaxEvals: 10_000_000})
	if err != nil {
		t.Fatalf("SLR3: %v", err)
	}
	if st.Restarts != n {
		t.Errorf("Restarts = %d, want %d (every chain link reset once)", st.Restarts, n)
	}
	if !l.Eq(sigma[0], lattice.Range(0, 100)) {
		t.Errorf("σ[w] = %s, want [0,100]", sigma[0])
	}
	if !l.Eq(sigma[n], lattice.Range(0, 100)) {
		t.Errorf("σ[e%d] = %s, want [0,100]", n, sigma[n])
	}
}

// TestSLR4LocalizesRestart: SLR4 must not reset converged unknowns outside
// the narrowing widening point's component. The system nests a gated
// counting loop {w,v} inside an outer feedback cycle a→g→w→t→a: on the
// first outer pass the gate g is empty, so the inner loop sits idle while
// the tail t converges; the second pass opens the gate, the inner loop
// ascends, widens and narrows — and its restart cascade reaches the
// already-converged t, which lies outside {w,v}. SLR3 resets t, SLR4 only
// reschedules it, so SLR4 records strictly fewer resets for the same final
// values.
func TestSLR4LocalizesRestart(t *testing.T) {
	l := lattice.Ints
	s := eqn.NewSystem[int, iv]()
	seed := lattice.Singleton(0)
	one := lattice.Singleton(1)
	s.Define(0, []int{4}, func(get func(int) iv) iv { // a = 0 ⊔ (t<3)
		return l.Join(seed, get(4).RestrictLt(lattice.Singleton(3)))
	})
	s.Define(1, []int{0}, func(get func(int) iv) iv { // g = a≥1: the gate
		return get(0).RestrictGe(one)
	})
	s.Define(2, []int{1, 3}, func(get func(int) iv) iv { // w: loop head, runs once gated
		v := lattice.EmptyInterval
		if !get(1).IsEmpty() {
			v = seed
		}
		return l.Join(v, get(3).Add(one))
	})
	s.Define(3, []int{2}, func(get func(int) iv) iv { // v = w<5: the loop body
		return get(2).RestrictLt(lattice.Singleton(5))
	})
	s.Define(4, []int{0, 2}, func(get func(int) iv) iv { // t = (a+1) ⊔ w: the tail
		return l.Join(get(0).Add(one), get(2))
	})
	init := func(int) iv { return lattice.EmptyInterval }
	cfg := Config{MaxEvals: 100000}
	_, st3, err := SLR3(s, l, WarrowOp[int](l), init, cfg)
	if err != nil {
		t.Fatalf("SLR3: %v", err)
	}
	_, st4, err := SLR4(s, l, WarrowOp[int](l), init, cfg)
	if err != nil {
		t.Fatalf("SLR4: %v", err)
	}
	if st4.Restarts >= st3.Restarts {
		t.Errorf("SLR4 restarts (%d) should be fewer than SLR3's (%d): the tail t is outside the inner loop's component", st4.Restarts, st3.Restarts)
	}
	if st4.Restarts == 0 {
		t.Errorf("SLR4 should still reset the inner loop body, got 0 restarts")
	}
	sig3, _, _ := SLR3(s, l, WarrowOp[int](l), init, cfg)
	sig4, _, _ := SLR4(s, l, WarrowOp[int](l), init, cfg)
	for x := 0; x <= 4; x++ {
		if !l.Eq(sig3[x], sig4[x]) {
			t.Errorf("σ[%d]: SLR3=%s SLR4=%s", x, sig3[x], sig4[x])
		}
	}
}

// TestSLRFamilyResume: abort at every feasible budget, resume from the
// attached checkpoint, and check the resumed run converges to the same
// certified values as the uninterrupted one. (Stats.Restarts is not part of
// the checkpoint wire format, so only values are compared.)
func TestSLRFamilyResume(t *testing.T) {
	l := lattice.Ints
	for name, run := range slrFamily[string, iv]() {
		ref, refSt, err := run(nestedLoopSystem(), l, WarrowOp[string](l), ivInit, Config{MaxEvals: 100000})
		if err != nil {
			t.Fatalf("%s: reference run: %v", name, err)
		}
		for budget := 1; budget < refSt.Evals; budget += 7 {
			_, _, err := run(nestedLoopSystem(), l, WarrowOp[string](l), ivInit, Config{MaxEvals: budget})
			if err == nil {
				t.Fatalf("%s: budget %d did not abort", name, budget)
			}
			cp, ok := CheckpointOf[string, iv](err)
			if !ok {
				t.Fatalf("%s: abort at budget %d carries no checkpoint: %v", name, budget, err)
			}
			got, _, err := run(nestedLoopSystem(), l, WarrowOp[string](l), ivInit, Config{Resume: cp})
			if err != nil {
				t.Fatalf("%s: resume from budget %d: %v", name, budget, err)
			}
			for x, v := range ref {
				if !l.Eq(got[x], v) {
					t.Fatalf("%s: resume from budget %d: σ[%s] = %s, want %s", name, budget, x, got[x], v)
				}
			}
		}
		// A checkpoint must not resume under a sibling solver's name.
		_, _, err = run(nestedLoopSystem(), l, WarrowOp[string](l), ivInit, Config{MaxEvals: 5})
		cp, _ := CheckpointOf[string, iv](err)
		other := "slr2"
		if name == "slr2" {
			other = "slr3"
		}
		if _, _, err := slrFamily[string, iv]()[other](nestedLoopSystem(), l, WarrowOp[string](l), ivInit, Config{Resume: cp}); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("%s checkpoint resumed under %s: err=%v", name, other, err)
		}
	}
}

// TestSLRFamilyFewerEvals: the point of widening-point selection — on a
// batch of random monotone systems the family needs no more total
// evaluations than ⊟-everywhere SW, and strictly fewer in aggregate.
func TestSLRFamilyFewerEvals(t *testing.T) {
	l := lattice.Ints
	r := rand.New(rand.NewSource(31))
	init := func(int) iv { return lattice.EmptyInterval }
	totals := map[string]int{}
	for trial := 0; trial < 40; trial++ {
		sys := randMonotoneSystem(r, 4+r.Intn(10))
		cfg := Config{MaxEvals: 2_000_000}
		_, swSt, err := SW(sys, l, WarrowOp[int](l), init, cfg)
		if err != nil {
			t.Fatalf("SW: %v", err)
		}
		totals["sw"] += swSt.Evals
		for name, run := range slrFamily[int, iv]() {
			_, st, err := run(sys, l, WarrowOp[int](l), init, cfg)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			totals[name] += st.Evals
		}
	}
	t.Logf("total evals: %v", totals)
	if totals["slr2"] > totals["sw"] {
		t.Errorf("SLR2 used more evaluations than SW in aggregate: %v", totals)
	}
}

var _ = fmt.Sprint // keep fmt imported for debugging edits
