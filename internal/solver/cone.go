package solver

// Dirty-cone computation for the incremental re-solve engine (internal/incr):
// given the static dependence graph and the unknowns whose equations (or
// initial values) changed, which part of a finished solution can an edit
// actually reach, and at what granularity can the rest be reused verbatim?
//
// The answer is stratum-granular. The downstream closure of the edited
// unknowns over the influence relation (the transitive readers) is the set
// of unknowns whose values may change — everything outside it has no
// dependence path to an edit, so its self-contained dynamics replays exactly
// and its previous finals remain correct. But reusing *individual* clean
// unknowns inside a stratum that also contains dirty ones would break
// bit-identity with a from-scratch solve: during scratch iteration, dirty
// members of the stratum read their clean stratum-mates' *intermediate*
// values, not their finals. Rounding the cone up to whole strata of
// stratify's decomposition restores exactness: a stratum is re-solved as one
// closed unit from the initial assignment, with every earlier stratum —
// clean or already re-solved — pinned at final values (see DESIGN.md §12 for
// why this makes SRR/SW/PSW re-solves bit-identical, and why no rounding
// discipline can do the same for RR and W).

// Stratum is a contiguous interval [Lo, Hi] of the linear order with no
// dependence crossing its boundary forwards — the exported form of the
// scheduling unit PSW and the dirty-cone computation share.
type Stratum struct{ Lo, Hi int }

// Stratify partitions the index line 0..n-1 of a static dependence graph
// (eqn.System.DepGraph) into the minimal contiguous intervals such that no
// dependence crosses a boundary forwards. Every strongly connected component
// lies inside a single stratum, and processing strata left to right visits
// every dependence before its reader.
func Stratify(adj [][]int) []Stratum {
	raw := stratify(adj)
	out := make([]Stratum, len(raw))
	for i, s := range raw {
		out[i] = Stratum{s.lo, s.hi}
	}
	return out
}

// DirtyCone computes which unknowns an edit batch can affect: the downstream
// closure of the seed indices over the influence relation (the reverse of
// adj), rounded up to whole strata. It returns the member indices in
// increasing order and the number of dirty strata. Unknowns outside the
// returned set have no dependence path to any seed; their previous finals
// are exact for any solver.
func DirtyCone(adj [][]int, seeds []int) (members []int, dirtyStrata int) {
	n := len(adj)
	if n == 0 || len(seeds) == 0 {
		return nil, 0
	}
	// Reverse adjacency: readers[j] lists the i with an edge i → j.
	readers := make([][]int, n)
	for i, row := range adj {
		for _, j := range row {
			readers[j] = append(readers[j], i)
		}
	}
	dirty := make([]bool, n)
	queue := make([]int, 0, len(seeds))
	for _, s := range seeds {
		if s >= 0 && s < n && !dirty[s] {
			dirty[s] = true
			queue = append(queue, s)
		}
	}
	for len(queue) > 0 {
		j := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, i := range readers[j] {
			if !dirty[i] {
				dirty[i] = true
				queue = append(queue, i)
			}
		}
	}
	// Round up to whole strata. No re-closure is needed: a reader of any
	// stratum member lives in the same or a later stratum, and the rounded-in
	// clean members reproduce their previous finals (their dependences are
	// all clean), so readers of theirs in later strata stay clean.
	for _, s := range stratify(adj) {
		hasDirty := false
		for i := s.lo; i <= s.hi; i++ {
			if dirty[i] {
				hasDirty = true
				break
			}
		}
		if !hasDirty {
			continue
		}
		dirtyStrata++
		for i := s.lo; i <= s.hi; i++ {
			members = append(members, i)
		}
	}
	return members, dirtyStrata
}
