package solver

import (
	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// TwoPhaseLocal is the classical two-phase regime on top of the local
// solver SLR: a complete widening iteration from init, followed by a
// separate narrowing iteration started from the widening result. This is
// the comparison baseline of the paper's Sec. 7 (Fig. 7). The narrowing
// phase is sound only for monotonic systems; on non-monotonic ones it may
// lose soundness or diverge — the deficiency ⊟ removes.
func TwoPhaseLocal[X comparable, D any](sys eqn.Pure[X, D], l lattice.Lattice[D], init func(X) D, x0 X, cfg Config) (Result[X, D], error) {
	up, err := SLR(sys, l, Op[X](Widen(l)), init, x0, cfg)
	if err != nil {
		return up, err
	}
	rest := remaining(cfg, up.Stats.Evals)
	if rest.MaxEvals < 0 {
		return up, ErrEvalBudget
	}
	fromUp := func(x X) D {
		if v, ok := up.Values[x]; ok {
			return v
		}
		return init(x)
	}
	down, err := SLR(sys, l, Op[X](Narrow(l)), fromUp, x0, rest)
	down.Stats = addStats(up.Stats, down.Stats)
	return down, err
}

// TwoPhaseSides is the two-phase regime on top of SLR⁺ for side-effecting
// systems, used as the Fig. 7 baseline for analyses with flow-insensitive
// globals.
func TwoPhaseSides[X comparable, D any](sys eqn.Sides[X, D], l lattice.Lattice[D], init func(X) D, x0 X, cfg Config) (Result[X, D], error) {
	up := Op[X](Widen(l))
	down := Op[X](Narrow(l))
	return TwoPhaseSidesKeyed(sys, l, init, x0, nil, up, down, cfg)
}

// TwoPhaseSidesKeyed generalizes TwoPhaseSides with a priority-band hook
// (see SLRPlusKeyed) and explicit phase operators, so callers can model
// classical baselines precisely — e.g. Goblint's distinct-phase solver, in
// which flow-insensitive globals only accumulate and are never narrowed.
func TwoPhaseSidesKeyed[X comparable, D any](sys eqn.Sides[X, D], l lattice.Lattice[D], init func(X) D, x0 X, band func(X) int, upOp, downOp Operator[X, D], cfg Config) (Result[X, D], error) {
	up, err := SLRPlusKeyed(sys, l, upOp, init, x0, band, cfg)
	if err != nil {
		return up, err
	}
	rest := remaining(cfg, up.Stats.Evals)
	if rest.MaxEvals < 0 {
		return up, ErrEvalBudget
	}
	fromUp := func(x X) D {
		if v, ok := up.Values[x]; ok {
			return v
		}
		return init(x)
	}
	down, err := SLRPlusKeyed(sys, l, downOp, fromUp, x0, band, rest)
	down.Stats = addStats(up.Stats, down.Stats)
	return down, err
}

// remaining deducts spent evaluations from a budgeted config; a negative
// MaxEvals signals exhaustion. An unbounded config stays unbounded.
func remaining(cfg Config, spent int) Config {
	if cfg.MaxEvals <= 0 {
		return cfg
	}
	cfg.MaxEvals -= spent
	if cfg.MaxEvals == 0 {
		cfg.MaxEvals = -1
	}
	return cfg
}

// addStats sums two work records.
func addStats(a, b Stats) Stats {
	return Stats{
		Evals:    a.Evals + b.Evals,
		Updates:  a.Updates + b.Updates,
		Rounds:   a.Rounds + b.Rounds,
		Unknowns: max(a.Unknowns, b.Unknowns),
	}
}
