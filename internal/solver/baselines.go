package solver

import (
	"time"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// twoPhases is the shared up/down plumbing of every classical two-phase
// baseline (TwoPhase, TwoPhaseLocal, TwoPhaseSidesKeyed): run a complete
// widening phase via run, thread the leftover evaluation budget into a
// narrowing phase started from the widening result, and sum the work.
func twoPhases[X comparable, D any](init func(X) D, cfg Config,
	run func(op Operator[X, D], init func(X) D, cfg Config) (Result[X, D], error),
	upOp, downOp Operator[X, D]) (Result[X, D], error) {

	// Pin the wall-clock deadline before the first phase so both phases
	// share one bound instead of each restarting the clock.
	cfg = cfg.started(time.Now())
	// Checkpoint/resume applies to direct solver entry points only: the
	// phases are internal runs whose checkpoints would carry the inner
	// solver's name and confuse a resume of the baseline.
	cfg.Resume = nil
	cfg.CheckpointEvery = 0
	cfg.CheckpointSink = nil
	up, err := run(upOp, init, cfg)
	if err != nil {
		return up, err
	}
	rest := remaining(cfg, up.Stats.Evals)
	if rest.MaxEvals < 0 {
		return up, &AbortError{Report: AbortReport{
			Reason: AbortBudget,
			Evals:  up.Stats.Evals,
		}}
	}
	fromUp := func(x X) D {
		if v, ok := up.Values[x]; ok {
			return v
		}
		return init(x)
	}
	down, err := run(downOp, fromUp, rest)
	down.Stats = addStats(up.Stats, down.Stats)
	return down, err
}

// TwoPhaseLocal is the classical two-phase regime on top of the local
// solver SLR: a complete widening iteration from init, followed by a
// separate narrowing iteration started from the widening result. This is
// the comparison baseline of the paper's Sec. 7 (Fig. 7). The narrowing
// phase is sound only for monotonic systems; on non-monotonic ones it may
// lose soundness or diverge — the deficiency ⊟ removes.
func TwoPhaseLocal[X comparable, D any](sys eqn.Pure[X, D], l lattice.Lattice[D], init func(X) D, x0 X, cfg Config) (Result[X, D], error) {
	return twoPhases(init, cfg,
		func(op Operator[X, D], init func(X) D, cfg Config) (Result[X, D], error) {
			return SLR(sys, l, op, init, x0, cfg)
		},
		Op[X](Widen(l)), Op[X](Narrow(l)))
}

// TwoPhaseSides is the two-phase regime on top of SLR⁺ for side-effecting
// systems, used as the Fig. 7 baseline for analyses with flow-insensitive
// globals.
func TwoPhaseSides[X comparable, D any](sys eqn.Sides[X, D], l lattice.Lattice[D], init func(X) D, x0 X, cfg Config) (Result[X, D], error) {
	up := Op[X](Widen(l))
	down := Op[X](Narrow(l))
	return TwoPhaseSidesKeyed(sys, l, init, x0, nil, up, down, cfg)
}

// TwoPhaseSidesKeyed generalizes TwoPhaseSides with a priority-band hook
// (see SLRPlusKeyed) and explicit phase operators, so callers can model
// classical baselines precisely — e.g. Goblint's distinct-phase solver, in
// which flow-insensitive globals only accumulate and are never narrowed.
func TwoPhaseSidesKeyed[X comparable, D any](sys eqn.Sides[X, D], l lattice.Lattice[D], init func(X) D, x0 X, band func(X) int, upOp, downOp Operator[X, D], cfg Config) (Result[X, D], error) {
	return twoPhases(init, cfg,
		func(op Operator[X, D], init func(X) D, cfg Config) (Result[X, D], error) {
			return SLRPlusKeyed(sys, l, op, init, x0, band, cfg)
		},
		upOp, downOp)
}

// remaining deducts spent evaluations from a budgeted config; a negative
// MaxEvals signals exhaustion. An unbounded config stays unbounded.
func remaining(cfg Config, spent int) Config {
	if cfg.MaxEvals <= 0 {
		return cfg
	}
	cfg.MaxEvals -= spent
	if cfg.MaxEvals == 0 {
		cfg.MaxEvals = -1
	}
	return cfg
}

// addStats combines the work records of two phases over the same system:
// work counters add up, while capacity-style measurements — distinct
// unknowns and the queue high-water mark — carry the maximum of the two
// phases (summing them would double-count the shared system).
func addStats(a, b Stats) Stats {
	out := Stats{
		Evals:      a.Evals + b.Evals,
		Updates:    a.Updates + b.Updates,
		Rounds:     a.Rounds + b.Rounds,
		Retries:    a.Retries + b.Retries,
		Restarts:   a.Restarts + b.Restarts,
		Unknowns:   max(a.Unknowns, b.Unknowns),
		MaxQueue:   max(a.MaxQueue, b.MaxQueue),
		WallNs:     a.WallNs + b.WallNs,
		Workers:    max(a.Workers, b.Workers),
		SCCs:       max(a.SCCs, b.SCCs),
		Strata:     max(a.Strata, b.Strata),
		Contention: a.Contention + b.Contention,
	}
	// Both phases see the same dependence graph, so the histograms agree
	// whenever both are populated; keep whichever phase recorded one.
	out.SCCSize, out.SCCDepth = a.SCCSize, a.SCCDepth
	if a.SCCs == 0 {
		out.SCCSize, out.SCCDepth = b.SCCSize, b.SCCDepth
	}
	// Per-worker eval distributions are per-phase: keep whichever phase
	// recorded one (both only when phases ran the same pool).
	out.WorkerEvals = a.WorkerEvals
	if a.Workers == 0 {
		out.WorkerEvals = b.WorkerEvals
	}
	return out
}
