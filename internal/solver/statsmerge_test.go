package solver

import (
	"testing"

	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// TestAddStatsOverStrataMatchesSW replays SW stratum by stratum on a wide
// generated system and folds the per-stratum Stats with addStats: the fold
// must reproduce the whole-system SW run exactly on Evals and Updates, and
// its MaxQueue must equal PSW's documented semantics — the largest
// per-stratum queue high-water mark — rather than SW's global one. This
// pins down what addStats means for queue statistics: summing work counters
// while taking the maximum over scheduling units.
func TestAddStatsOverStrataMatchesSW(t *testing.T) {
	// A wide, order-consistent system: many small SCC blocks, no forward
	// cross-block edges, so stratify yields one stratum per block.
	g := eqgen.New(eqgen.Config{Seed: 11, Dom: eqgen.Interval, N: 120, MaxSCC: 3, FanIn: 2, WidenDensity: 0.6})
	sys := g.Interval
	l := lattice.Ints
	init := eqn.ConstBottom[int, lattice.Interval](l)
	op := Op[int](Warrow[lattice.Interval](l))
	cfg := Config{MaxEvals: 2_000_000}

	swSigma, swSt, err := SW(sys, l, op, init, cfg)
	if err != nil {
		t.Fatalf("sw: %v", err)
	}
	pswSigma, pswSt, err := PSW(sys, l, op, init, Config{MaxEvals: cfg.MaxEvals, Workers: 4})
	if err != nil {
		t.Fatalf("psw: %v", err)
	}

	strata := stratify(sys.DepGraph())
	if len(strata) < 10 {
		t.Fatalf("system not wide enough for the test: %d strata", len(strata))
	}

	// Replay: solve each stratum as its own subsystem with SW, reading the
	// already-solved strata through init, and fold the Stats.
	order := sys.Order()
	acc := make(map[int]lattice.Interval, len(order))
	var merged Stats
	for _, s := range strata {
		sub := eqn.NewSystem[int, lattice.Interval]()
		for i := s.lo; i <= s.hi; i++ {
			x := order[i]
			var deps []int
			for _, d := range sys.Deps(x) {
				if d >= s.lo && d <= s.hi {
					deps = append(deps, d)
				}
			}
			sub.Define(x, deps, sys.RHS(x))
		}
		subInit := func(y int) lattice.Interval {
			if v, ok := acc[y]; ok {
				return v
			}
			return init(y)
		}
		sigma, st, err := SW(sub, l, op, subInit, cfg)
		if err != nil {
			t.Fatalf("stratum [%d,%d]: %v", s.lo, s.hi, err)
		}
		for x, v := range sigma {
			acc[x] = v
		}
		merged = addStats(merged, st)
	}

	if merged.Evals != swSt.Evals || merged.Updates != swSt.Updates {
		t.Errorf("merged evals/updates %d/%d, sw %d/%d", merged.Evals, merged.Updates, swSt.Evals, swSt.Updates)
	}
	if merged.Evals != pswSt.Evals || merged.Updates != pswSt.Updates {
		t.Errorf("merged evals/updates %d/%d, psw %d/%d", merged.Evals, merged.Updates, pswSt.Evals, pswSt.Updates)
	}
	if merged.MaxQueue != pswSt.MaxQueue {
		t.Errorf("merged MaxQueue %d, psw %d (largest per-stratum queue)", merged.MaxQueue, pswSt.MaxQueue)
	}
	if pswSt.MaxQueue > swSt.MaxQueue {
		t.Errorf("psw MaxQueue %d exceeds sw global MaxQueue %d", pswSt.MaxQueue, swSt.MaxQueue)
	}
	// The replayed values agree with both whole-system runs.
	for _, x := range order {
		if !l.Eq(acc[x], swSigma[x]) || !l.Eq(acc[x], pswSigma[x]) {
			t.Fatalf("replayed value of x%d = %s, sw %s, psw %s",
				x, l.Format(acc[x]), l.Format(swSigma[x]), l.Format(pswSigma[x]))
		}
	}
}
