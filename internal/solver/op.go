// Package solver implements the fixpoint solvers of Apinis, Seidl and
// Vojdani, "How to Combine Widening and Narrowing for Non-monotonic Systems
// of Equations" (PLDI 2013):
//
//   - the generic global solvers RR (round-robin, Fig. 1) and W (worklist,
//     Fig. 2), which may fail to terminate with the combined operator ⊟ even
//     on finite monotonic systems (Examples 1 and 2);
//   - the structured variants SRR (Fig. 3) and SW (Fig. 4), which are
//     guaranteed to terminate for monotonic systems;
//   - the local solvers RLD (Fig. 5, from Hofmann, Karbyshev and Seidl,
//     included for reference — it is not generic) and SLR (Fig. 6);
//   - the side-effecting local solver SLR⁺ (Sec. 6);
//   - the classical two-phase widening/narrowing iteration used as the
//     paper's baseline.
//
// All solvers are generic: they perform update steps
// σ[x] ← σ[x] ⊞ fₓ(σ) for an arbitrary binary operator ⊞ supplied as an
// Operator. Instantiating ⊞ with the combined operator ⊟ (Warrow) turns any
// of them into a solver computing post-solutions of arbitrary — monotonic or
// not — systems whenever they terminate (Lemma 1).
package solver

import (
	"context"
	"errors"
	"math"
	"runtime"
	"time"

	"warrow/internal/lattice"
)

// Combine is a binary update operator ⊞ used in update steps
// σ[x] ← σ[x] ⊞ fₓ(σ).
type Combine[D any] func(old, new D) D

// Operator supplies the update operator, possibly specialized per unknown.
// Stateless operators wrap a Combine via Op; stateful ones (Degrading)
// track per-unknown iteration history.
type Operator[X comparable, D any] interface {
	// Apply combines the old value of x with the new right-hand-side value.
	Apply(x X, old, new D) D
}

type opFunc[X comparable, D any] struct{ f Combine[D] }

func (o opFunc[X, D]) Apply(_ X, old, new D) D { return o.f(old, new) }

// Op wraps a stateless Combine as an Operator.
func Op[X comparable, D any](f Combine[D]) Operator[X, D] {
	return opFunc[X, D]{f}
}

// Replace is the operator a ⊞ b = b: a ⊞-solution is an ordinary solution.
func Replace[D any]() Combine[D] {
	return func(_, new D) D { return new }
}

// Join is the operator a ⊞ b = a ⊔ b: a ⊞-solution is a post-solution.
func Join[D any](l lattice.Lattice[D]) Combine[D] { return l.Join }

// Meet is the operator a ⊞ b = a ⊓ b: a ⊞-solution is a pre-solution.
func Meet[D any](l lattice.Lattice[D]) Combine[D] { return l.Meet }

// Widen is the operator a ⊞ b = a ∇ b, the pure widening iteration.
func Widen[D any](l lattice.Lattice[D]) Combine[D] { return l.Widen }

// Narrow is the operator a ⊞ b = a Δ b, the pure narrowing iteration. It is
// meaningful only on post-solutions of monotonic systems.
func Narrow[D any](l lattice.Lattice[D]) Combine[D] { return l.Narrow }

// Warrow is the paper's combined operator:
//
//	a ⊟ b = a Δ b   if b ⊑ a
//	        a ∇ b   otherwise.
//
// A solver with ⊟ widens as long as values grow and switches to narrowing
// the moment the right-hand side no longer exceeds the current value, so
// precision is recovered immediately instead of in a separate phase. Every
// ⊟-solution is a post-solution (Lemma 1) with no monotonicity assumption.
func Warrow[D any](l lattice.Lattice[D]) Combine[D] {
	return func(old, new D) D {
		if l.Leq(new, old) {
			return l.Narrow(old, new)
		}
		return l.Widen(old, new)
	}
}

// rawOperator is implemented by structured operators that can apply
// themselves directly on raw-encoded values (lattice.Raw word slices).
// The unboxed core requires it: an opaque Combine closure cannot be
// translated to the raw layer, so solvers given one fall back to the
// boxed dense core.
type rawOperator[D any] interface {
	rawApply(r lattice.Raw[D], dst, old, new []uint64)
}

// stdOpKind enumerates the structured update operators.
type stdOpKind int8

const (
	opReplace stdOpKind = iota
	opJoin
	opMeet
	opWiden
	opNarrow
	opWarrow
)

// stdOp is the structured form of the stateless update operators: the same
// six combinators Op(Replace(..)) … Op(Warrow(..)) produce, but with the
// kind reified so the unboxed core can apply them on raw-encoded values.
// The boxed Apply is bit-identical to the closure-based forms.
type stdOp[X comparable, D any] struct {
	kind stdOpKind
	l    lattice.Lattice[D]
}

// Apply implements Operator.
func (o stdOp[X, D]) Apply(_ X, old, new D) D {
	switch o.kind {
	case opReplace:
		return new
	case opJoin:
		return o.l.Join(old, new)
	case opMeet:
		return o.l.Meet(old, new)
	case opWiden:
		return o.l.Widen(old, new)
	case opNarrow:
		return o.l.Narrow(old, new)
	default: // opWarrow
		if o.l.Leq(new, old) {
			return o.l.Narrow(old, new)
		}
		return o.l.Widen(old, new)
	}
}

// rawApply implements rawOperator, mirroring Apply on encoded values.
func (o stdOp[X, D]) rawApply(r lattice.Raw[D], dst, old, new []uint64) {
	switch o.kind {
	case opReplace:
		copy(dst, new)
	case opJoin:
		r.RawJoin(dst, old, new)
	case opMeet:
		r.RawMeet(dst, old, new)
	case opWiden:
		r.RawWiden(dst, old, new)
	case opNarrow:
		r.RawNarrow(dst, old, new)
	default: // opWarrow
		if r.RawLeq(new, old) {
			r.RawNarrow(dst, old, new)
		} else {
			r.RawWiden(dst, old, new)
		}
	}
}

// ReplaceOp is the structured form of Op(Replace[D]()).
func ReplaceOp[X comparable, D any](l lattice.Lattice[D]) Operator[X, D] {
	return stdOp[X, D]{kind: opReplace, l: l}
}

// JoinOp is the structured form of Op(Join(l)).
func JoinOp[X comparable, D any](l lattice.Lattice[D]) Operator[X, D] {
	return stdOp[X, D]{kind: opJoin, l: l}
}

// MeetOp is the structured form of Op(Meet(l)).
func MeetOp[X comparable, D any](l lattice.Lattice[D]) Operator[X, D] {
	return stdOp[X, D]{kind: opMeet, l: l}
}

// WidenOp is the structured form of Op(Widen(l)).
func WidenOp[X comparable, D any](l lattice.Lattice[D]) Operator[X, D] {
	return stdOp[X, D]{kind: opWiden, l: l}
}

// NarrowOp is the structured form of Op(Narrow(l)).
func NarrowOp[X comparable, D any](l lattice.Lattice[D]) Operator[X, D] {
	return stdOp[X, D]{kind: opNarrow, l: l}
}

// WarrowOp is the structured form of Op(Warrow(l)): the paper's ⊟ with the
// branch reified, which is what lets the unboxed core run ⊟ solves with no
// boxed values on the hot path. Prefer it over Op(Warrow(l)) wherever the
// lattice might have a raw encoding.
func WarrowOp[X comparable, D any](l lattice.Lattice[D]) Operator[X, D] {
	return stdOp[X, D]{kind: opWarrow, l: l}
}

// Degrading is the ⊟ₖ operator sketched at the end of Sec. 4: each unknown
// carries a counter of how often iteration has switched from the narrowing
// phase back to widening. Once the counter reaches the threshold K the
// operator gives up improving (a ⊞ b = a whenever b ⊑ a), which enforces
// termination of any ⊟-solver even on non-monotonic systems.
type Degrading[X comparable, D any] struct {
	L lattice.Lattice[D]
	// K is the number of narrow→widen phase switches after which narrowing
	// is abandoned for an unknown. K = 0 disables narrowing entirely.
	K int

	phase    map[X]int8 // 0 unseen / 1 widening / 2 narrowing
	switches map[X]int
}

// NewDegrading returns a fresh ⊟ₖ operator with threshold k.
func NewDegrading[X comparable, D any](l lattice.Lattice[D], k int) *Degrading[X, D] {
	return &Degrading[X, D]{
		L:        l,
		K:        k,
		phase:    make(map[X]int8),
		switches: make(map[X]int),
	}
}

// Apply implements Operator.
func (d *Degrading[X, D]) Apply(x X, old, new D) D {
	if d.L.Eq(new, old) {
		return old // stable: no phase transition
	}
	if d.L.Leq(new, old) {
		if d.switches[x] >= d.K {
			return old // degraded: no more improvement for x
		}
		d.phase[x] = 2
		return d.L.Narrow(old, new)
	}
	// Growth from ⊥ is initialization (an unknown becoming live during
	// exploration), not evidence of non-monotonicity: do not count it.
	if d.phase[x] == 2 && !d.L.Eq(old, d.L.Bottom()) {
		d.switches[x]++
	}
	d.phase[x] = 1
	return d.L.Widen(old, new)
}

// Switches reports how often iteration on x switched from narrowing back to
// widening, exposing the non-monotonicity the operator observed.
func (d *Degrading[X, D]) Switches(x X) int { return d.switches[x] }

// Phase classifies one update step of a ⊟-style operator, mirroring the
// branch ⊟ takes on its arguments: the step narrows when the freshly
// evaluated right-hand side is below the current value, widens when it is
// not, and is stable when the two are equal.
type Phase int8

// Phases.
const (
	PhaseStable Phase = iota
	PhaseWiden
	PhaseNarrow
	// PhaseRestart marks a restart transition of the restarting solvers
	// (SLR3/SLR4): a widening point shrank and the solver reset the unknowns
	// below it to their initial values. PhaseOf never classifies a value pair
	// as PhaseRestart — the restarting solvers emit it explicitly through the
	// Observe hook, and the divergence watchdog treats it as phase-history
	// erasure: the reset unknown's re-ascension (∇→⊟→∇ around the restart) is
	// deliberate iteration, not the oscillation signature of Examples 1 and 2.
	PhaseRestart
)

// String renders the phase.
func (p Phase) String() string {
	switch p {
	case PhaseStable:
		return "stable"
	case PhaseWiden:
		return "widen"
	case PhaseNarrow:
		return "narrow"
	case PhaseRestart:
		return "restart"
	default:
		return "?"
	}
}

// PhaseOf classifies the update step from old to the right-hand-side value
// new: PhaseNarrow when new ⊑ old (the branch where ⊟ applies Δ),
// PhaseWiden otherwise (the branch where ⊟ applies ∇), PhaseStable when the
// values are equal.
func PhaseOf[D any](l lattice.Lattice[D], old, new D) Phase {
	if l.Eq(new, old) {
		return PhaseStable
	}
	if l.Leq(new, old) {
		return PhaseNarrow
	}
	return PhaseWiden
}

// Observe wraps op so that every Apply first reports (x, PhaseOf(old, new))
// to fn. This is the ⊟ hook the divergence watchdog attaches to: it sees
// every update step's phase without the solvers' update logic changing, so
// ∇/Δ oscillation (the divergence signature of Examples 1 and 2) can be
// detected for any operator, stateful ones included.
func Observe[X comparable, D any](l lattice.Lattice[D], op Operator[X, D], fn func(X, Phase)) Operator[X, D] {
	return observedOp[X, D]{l: l, inner: op, fn: fn}
}

type observedOp[X comparable, D any] struct {
	l     lattice.Lattice[D]
	inner Operator[X, D]
	fn    func(X, Phase)
}

// Apply implements Operator.
func (o observedOp[X, D]) Apply(x X, old, new D) D {
	o.fn(x, PhaseOf(o.l, old, new))
	return o.inner.Apply(x, old, new)
}

// HistBuckets is the number of power-of-two buckets of a Hist.
const HistBuckets = 24

// Hist is a power-of-two histogram: bucket k counts values v with
// 2^k ≤ v < 2^(k+1) (bucket 0 additionally counts v ≤ 1).
type Hist [HistBuckets]int

// Observe adds one value to the histogram.
func (h *Hist) Observe(v int) {
	b := 0
	for v > 1 && b < HistBuckets-1 {
		v >>= 1
		b++
	}
	h[b]++
}

// Stats records the work a solver performed. The JSON field names are part
// of the serving-tier wire format (eqsolved responses, structured logs, the
// metrics endpoint) and are pinned by a golden test: renaming one is a
// protocol change, not a refactor.
type Stats struct {
	// Evals counts evaluations of right-hand sides. Failed attempts are not
	// counted: a panicked or retried evaluation rolls its reservation back,
	// so Evals always counts performed evaluations only.
	Evals int `json:"evals"`
	// Retries counts failed evaluation attempts that were retried under
	// Config.Retry (a solve with Retries > 0 healed that many transient
	// faults on its way to the result).
	Retries int `json:"retries"`
	// Updates counts update steps that changed a value.
	Updates int `json:"updates"`
	// Restarts counts unknowns reset to their initial value by the
	// restarting narrowing of SLR3/SLR4 (zero for every other solver). A
	// resumed run counts only its own resets: restarts are not part of the
	// checkpoint wire format.
	Restarts int `json:"restarts"`
	// Rounds counts outer iterations (RR) or is zero for other solvers.
	Rounds int `json:"rounds"`
	// Unknowns counts distinct unknowns touched (local solvers: |dom|).
	Unknowns int `json:"unknowns"`
	// MaxQueue is the high-water mark of the scheduling queue for worklist
	// solvers (W, SW, SLR, SLR⁺; for PSW, the largest per-stratum queue).
	// For CPW the queue is sharded, and the reported value is the maximum
	// over per-shard high-water marks, never their sum: the shards of one
	// stratum hold disjoint slices of the same logical worklist, so summing
	// them would re-count the whole stratum and make the number incomparable
	// with the sequential solvers' (see shardQueue).
	MaxQueue int `json:"max_queue"`
	// WallNs is the wall-clock duration of the solve in nanoseconds
	// (recorded by PSW; zero for the sequential solvers).
	WallNs int64 `json:"wall_ns"`
	// Workers is the size of the worker pool (PSW; zero for sequential
	// solvers).
	Workers int `json:"workers"`
	// SCCs is the number of strongly connected components of the static
	// dependence graph, and Strata the number of scheduling units PSW
	// derived from them (Strata ≤ SCCs; equal when the linear order is
	// topologically consistent with the condensation).
	SCCs   int `json:"sccs"`
	Strata int `json:"strata"`
	// SCCSize and SCCDepth are power-of-two histograms of component sizes
	// and of component depths in the condensation DAG (PSW/CPW only).
	SCCSize  Hist `json:"scc_size"`
	SCCDepth Hist `json:"scc_depth"`
	// WorkerEvals is a power-of-two histogram of per-worker evaluation
	// counts (CPW only). Chaotic intra-stratum scheduling makes the split of
	// work across workers schedule-dependent, so it is reported as a
	// distribution and never compared bit-for-bit (DESIGN.md §15).
	WorkerEvals Hist `json:"worker_evals"`
	// Contention counts dirty-while-running collisions (CPW only): an
	// unknown was marked dirty while a worker was evaluating it, forcing an
	// immediate re-queue of that unknown after the evaluation completed.
	Contention int `json:"contention"`
}

// ErrEvalBudget is the sentinel for budget exhaustion — the mechanism the
// tests use to detect the divergence of RR and W with ⊟ on the paper's
// Examples 1 and 2. Solvers no longer return it bare: a budget abort is an
// *AbortError with Reason AbortBudget, which errors.Is-matches this
// sentinel, so existing errors.Is(err, ErrEvalBudget) checks keep working
// while the error now carries the full divergence diagnosis.
var ErrEvalBudget = errors.New("solver: evaluation budget exceeded")

// Core selects the execution core of the global solvers (RR, W, SRR, SW).
// All cores implement the same algorithms with bit-identical results,
// Stats and checkpoints; they differ only in representation — hash maps,
// the dense index-compiled structures of compile.go with boxed D values,
// or the unboxed core of valuerep.go, which additionally stores values as
// raw machine words when the lattice has a raw encoding (lattice.AsRaw)
// and the operator is structured (WarrowOp and friends). PSW always runs
// its strata on the compiled structures and picks the unboxed value store
// under the same conditions. The local solvers (RLD, SLR, SLR⁺) discover
// their unknowns on the fly and have no compiled core.
type Core int8

// Cores.
const (
	// CoreAuto compiles systems of at least denseMinUnknowns unknowns and
	// keeps tiny systems on the map core, where compilation overhead would
	// dominate. Compiled systems store values unboxed when the domain and
	// operator support it, boxed otherwise.
	CoreAuto Core = iota
	// CoreMap forces the map core.
	CoreMap
	// CoreDense forces the dense core with boxed values.
	CoreDense
	// CoreUnboxed forces the compiled core and requests the unboxed value
	// store regardless of system size; if the lattice has no raw encoding
	// or the operator is opaque, the solve gracefully falls back to the
	// boxed dense core.
	CoreUnboxed
)

// String renders the core name.
func (c Core) String() string {
	switch c {
	case CoreAuto:
		return "auto"
	case CoreMap:
		return "map"
	case CoreDense:
		return "dense"
	case CoreUnboxed:
		return "unboxed"
	default:
		return "?"
	}
}

// Config tunes a solver run. The zero value imposes no bound of any kind;
// setting any of MaxEvals, Ctx, Timeout or MaxFlips arms the divergence
// watchdog, and an armed run that trips a bound aborts with an *AbortError
// carrying a structured AbortReport instead of completing.
type Config struct {
	// MaxEvals bounds the number of right-hand-side evaluations; 0 means
	// effectively unbounded.
	MaxEvals int
	// Workers bounds the PSW worker pool; 0 means runtime.GOMAXPROCS(0).
	// Sequential solvers ignore it.
	Workers int
	// Ctx, when non-nil, is polled at every scheduling point: once it is
	// cancelled the solver stops at its next evaluation and returns the
	// partial assignment with reason AbortCancel (or AbortDeadline if the
	// context expired through its own deadline).
	Ctx context.Context
	// Timeout, when positive, bounds the wall-clock duration of the solve;
	// exceeding it aborts with reason AbortDeadline. Two-phase baselines
	// share one deadline across both phases.
	Timeout time.Duration
	// MaxFlips, when positive, bounds how many narrow→widen phase
	// alternations the watchdog tolerates on any single unknown before
	// aborting with reason AbortOscillation — the cheap early diagnosis of
	// the ⊟ divergence pattern of Examples 1 and 2, which burns through an
	// evaluation budget orders of magnitude more slowly.
	MaxFlips int
	// Retry tunes per-unknown retries of failed right-hand-side
	// evaluations; the zero value aborts on the first failure. Panic
	// isolation itself is unconditional: a panicking right-hand side always
	// becomes a structured AbortEvalFailure, never a process crash.
	Retry RetryPolicy
	// CheckpointEvery, when positive, emits a snapshot through
	// CheckpointSink every that-many evaluations (in addition to the
	// snapshot every abort carries in its report). PSW snapshots only on
	// abort: a consistent cut of a running worker pool would require a
	// global pause.
	CheckpointEvery int
	// CheckpointSink receives periodic snapshots as *Checkpoint[X, D]
	// values (typed any because Config is element-type-agnostic).
	CheckpointSink func(cp any)
	// Core selects the execution core of the global solvers; the zero value
	// (CoreAuto) picks the dense index-compiled core for systems of at
	// least denseMinUnknowns unknowns. Results are bit-identical either
	// way, and checkpoints captured by one core resume on the other.
	Core Core
	// Resume, when non-nil, must hold a *Checkpoint[X, D] captured by the
	// same solver on a system with the same shape; the solver continues the
	// interrupted iteration (exactly for RR, W, SRR, SW, PSW; as a warm
	// restart for RLD, SLR, SLR⁺) instead of starting fresh. A mismatched
	// checkpoint fails the solve with ErrBadCheckpoint.
	Resume any

	// deadline pins the absolute wall-clock bound once the first phase of a
	// chained run has started, so later phases do not restart the clock.
	deadline time.Time
}

func (c Config) budget() int {
	if c.MaxEvals <= 0 {
		return math.MaxInt
	}
	return c.MaxEvals
}

// started resolves Timeout into an absolute deadline exactly once.
func (c Config) started(now time.Time) Config {
	if c.Timeout > 0 && c.deadline.IsZero() {
		c.deadline = now.Add(c.Timeout)
	}
	return c
}

// useDense decides which core a global solver runs on for a system of n
// unknowns. CoreAuto keeps tiny systems on the map core: compiling the CSR
// graph costs more than the whole solve there.
func (c Config) useDense(n int) bool {
	switch c.Core {
	case CoreDense, CoreUnboxed:
		return true
	case CoreMap:
		return false
	default:
		return n >= denseMinUnknowns
	}
}

func (c Config) workers() int {
	if c.Workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return c.Workers
}
