package solver

import (
	"sync"

	"warrow/internal/eqn"
)

// denseMinUnknowns is the system size below which the global solvers skip
// compilation (Config.Core = CoreAuto): for a handful of unknowns the
// one-off cost of building the dense representation is comparable to the
// whole solve, and the map core is already fast at that scale.
const denseMinUnknowns = 16

// compiled is the dense index-compiled representation of a finite system,
// built once per solve: unknowns are renumbered to their positions 0..n-1
// in the linear order, the assignment becomes a flat slice indexed by
// position, right-hand sides are resolved into a slice, and the influence
// sets are flattened into CSR form (one []int32 data array plus offsets).
// Everything a hot loop touches per evaluation is an array access; hashing
// survives only inside the get callback, which must translate the X-typed
// reads of a right-hand side back to positions.
//
// The compiled core is an execution detail: results, Stats, checkpoints and
// abort reports are bit-identical to the map core's (see DESIGN.md §10 for
// the argument), and the wire format still speaks X-space, so checkpoints
// cross freely between the cores.
type compiled[X comparable, D any] struct {
	*denseShape[X, D]
	sys  *eqn.System[X, D]
	init func(X) D
	// vals is the assignment, indexed by order position.
	vals []D
}

// denseShape is the shape-derived part of the compiled representation,
// memoized on the System (eqn.ShapeMemo) so repeated solves of the same
// system pay for the CSR build exactly once.
type denseShape[X comparable, D any] struct {
	order []X
	idx   map[X]int
	rhs   []eqn.RHS[X, D]
	// inflOff/inflDat are the CSR influence sets: the readers of unknown i
	// (i itself first, per eqn.Infl) are inflDat[inflOff[i]:inflOff[i+1]].
	inflOff []int32
	inflDat []int32
	// identInt marks systems whose unknowns are ints forming the identity
	// permutation (order[i] == i): there get needs no hash translation at
	// all — an unknown IS its position (see evaluator).
	identInt bool
	// rawRHS holds the fused unboxed right-hand sides (eqn.AttachRaw) by
	// order position; nil entries go through the boxed boundary adapter.
	rawRHS []eqn.RawRHS[X]
	// valsPool and wordsPool recycle the per-solve value stores (the boxed
	// []D assignment and the unboxed word store). Without them every solve
	// of a memoized shape pays a fresh n-element allocation, which is what
	// put the dense core's bytes/eval above the map core's on interval
	// workloads; see the release methods and the regression benchmark in
	// alloc_test.go.
	valsPool  sync.Pool
	wordsPool sync.Pool
}

// denseShapeKey is the ShapeMemo slot the compiled shape lives under.
const denseShapeKey = "solver.denseShape"

// compile builds the dense representation and the initial assignment. The
// shape part is memoized on the System; only the assignment slice is fresh
// per solve.
func compile[X comparable, D any](sys *eqn.System[X, D], init func(X) D) *compiled[X, D] {
	sh := sys.ShapeMemo(denseShapeKey, func() any { return buildDenseShape(sys) }).(*denseShape[X, D])
	var vals []D
	if v, ok := sh.valsPool.Get().([]D); ok && len(v) == len(sh.order) {
		vals = v
	} else {
		vals = make([]D, len(sh.order))
	}
	c := &compiled[X, D]{denseShape: sh, sys: sys, init: init, vals: vals}
	for i, x := range sh.order {
		c.vals[i] = init(x)
	}
	return c
}

// release returns the assignment slice to the shape's pool. Callers must
// not touch c.vals afterwards; snapshots and sigma maps taken earlier are
// safe because they copied the values out.
func (c *compiled[X, D]) release() {
	if c.vals == nil {
		return
	}
	c.valsPool.Put(c.vals)
	c.vals = nil
}

func buildDenseShape[X comparable, D any](sys *eqn.System[X, D]) *denseShape[X, D] {
	order := sys.Order()
	n := len(order)
	idx := sys.Index()
	infl := sys.Infl()
	sh := &denseShape[X, D]{
		order:   order,
		idx:     idx,
		rhs:     make([]eqn.RHS[X, D], n),
		rawRHS:  make([]eqn.RawRHS[X], n),
		inflOff: make([]int32, n+1),
	}
	total := 0
	for _, x := range order {
		total += len(infl[x])
	}
	sh.inflDat = make([]int32, 0, total)
	for i, x := range order {
		sh.rhs[i] = sys.RHS(x)
		sh.rawRHS[i] = sys.RawRHSOf(x)
		for _, y := range infl[x] {
			sh.inflDat = append(sh.inflDat, int32(idx[y]))
		}
		sh.inflOff[i+1] = int32(len(sh.inflDat))
	}
	if ints, ok := any(order).([]int); ok {
		sh.identInt = true
		for i, x := range ints {
			if x != i {
				sh.identInt = false
				break
			}
		}
	}
	return sh
}

// PatchRHS implements eqn.RHSPatcher: a same-dependences Redefine replaces
// exactly one right-hand-side slot, so the memoized shape — order, CSR
// influence rows, pools and all — stays live across the edit instead of
// being rebuilt. Patching is mutation of shared state: like any edit to a
// system, it must not race a solve running on the same shape.
func (sh *denseShape[X, D]) PatchRHS(i int, rhs eqn.RHS[X, D], raw eqn.RawRHS[X]) {
	sh.rhs[i] = rhs
	sh.rawRHS[i] = raw
}

// infl returns the CSR row of unknown i: the positions of its readers, in
// the exact order eqn.Infl lists them.
func (sh *denseShape[X, D]) infl(i int) []int32 {
	return sh.inflDat[sh.inflOff[i]:sh.inflOff[i+1]]
}

// sigmaMap renders the dense assignment back into the map the public API
// returns.
func (c *compiled[X, D]) sigmaMap() map[X]D {
	sigma := make(map[X]D, len(c.order))
	for i, x := range c.order {
		sigma[x] = c.vals[i]
	}
	return sigma
}

// denseEval is the reusable evaluation closure pair of one dense run (or,
// under PSW, of one stratum): get translates a right-hand side's X-typed
// reads to slice accesses, and thunk evaluates the unknown cur points at.
// Both closures are allocated once and reused for every evaluation, where
// the map core used to allocate a fresh pair per evaluation.
type denseEval[X comparable, D any] struct {
	cur   int
	get   func(X) D
	thunk func() D
}

// evaluator builds the closure pair. PSW workers call this per stratum:
// cur is worker-local while vals may be read concurrently (strata write
// disjoint ranges; see psw.go for the hand-off argument).
func (c *compiled[X, D]) evaluator() *denseEval[X, D] {
	e := &denseEval[X, D]{}
	if c.identInt {
		// X is int and order[i] == i, so an unknown is its own position:
		// get degenerates to a bounds-checked slice load, with the bounds
		// failure path (an unknown outside the system) falling back to σ₀
		// exactly like the map lookup miss below. The assertions cannot
		// fail — identInt is only set when X's dynamic type is int.
		vals, initInt := c.vals, any(c.init).(func(int) D)
		e.get = any(func(y int) D {
			if uint(y) < uint(len(vals)) {
				return vals[y]
			}
			return initInt(y)
		}).(func(X) D)
	} else {
		e.get = func(y X) D {
			if j, ok := c.idx[y]; ok {
				return c.vals[j]
			}
			return c.init(y)
		}
	}
	e.thunk = func() D { return c.rhs[e.cur](e.get) }
	return e
}
