package solver

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// PSW is the parallel structured worklist solver: SW (Fig. 4) stratified
// over the condensation of the system's static dependence graph and
// scheduled onto a bounded worker pool (Config.Workers).
//
// The decomposition: Tarjan condenses the dependence graph into SCCs, and
// stratify groups them into contiguous intervals of the linear order such
// that every dependence either stays inside a stratum or reads a strictly
// earlier one (for Bourdoncle/WTO orders each stratum is exactly one SCC;
// for orders that are not topologically consistent with the condensation,
// forward cross-SCC reads coarsen strata until the property holds). Each
// stratum is solved to stabilization by a sequential SW run restricted to
// its members, and a stratum is dispatched only once every stratum it reads
// has stabilized — so every evaluation sees exactly the values it would see
// in a sequential SW pass.
//
// Why the result is bit-identical to SW: sequential SW pops min-first, so
// it fully stabilizes each stratum before first popping a member of the
// next (changes only ever push the changed unknown and its readers, and
// readers never live in an earlier stratum). Restricted to one stratum,
// SW's pop sequence is therefore exactly the per-stratum run PSW performs:
// same initial queue, same priorities, same values read (external reads hit
// already-final strata), hence the same evaluations, the same updates, and
// the same solution — per unknown and per Stats.Evals — for any worker
// count and any update operator, ⊟ included. Incomparable strata share no
// unknowns and read disjoint, already-stable prefixes, so running them
// concurrently is safe; the scheduler's channel hand-offs order every write
// of a stratum before every read by its dependents.
//
// Like SW, PSW instantiated with ⊟ terminates for every finite monotonic
// system (Theorem 2 applies per stratum). The per-SCC stabilization premise
// is the same localized-iteration invariant exploited by Amato–Scozzari–
// Seidl–Apinis–Vojdani: all unknowns a component reads are stable when the
// component iterates.
//
// The update operator is shared by all workers and must be safe for
// concurrent use with Workers > 1: stateless operators (Op) are; the
// stateful Degrading operator is not and requires Workers == 1.
//
// On any abort — budget exhaustion, context cancellation, wall-clock
// deadline, the oscillation watchdog or a failed right-hand side — every
// worker stops at its next scheduling point, the stratum DAG drains without
// deadlock (completed strata release their successors, which the workers
// then suspend), and the first error is returned together with the partial
// assignment and a checkpoint recording, per stratum, whether it completed
// and which unknowns its suspended queue still held. Resuming skips
// completed strata entirely and restarts suspended ones from their captured
// queues, reproducing the uninterrupted run's Evals, Updates and assignment
// exactly (PSW totals are schedule-independent).
func PSW[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	start := time.Now()
	vc, wd := buildCore(sys, l, op, init, cfg)
	defer vc.release()
	sh := vc.shape()
	order := sh.order
	n := len(order)
	adj := sys.DepGraph()
	comp, ncomp := tarjanSCC(adj)
	strata := stratify(adj)

	r := &pswRun[X, D]{
		vc:     vc,
		sh:     sh,
		budget: int64(cfg.budget()),
		wd:     wd,
	}

	var st Stats
	st.Unknowns = n

	// done[si] is true for strata that stabilized — in a previous run (per
	// the resume checkpoint) or in this one. initQ[si], when non-nil, is the
	// queue a suspended stratum restarts from instead of its full range.
	done := make([]bool, len(strata))
	initQ := make([][]int, len(strata))
	if cp, err := resumeCheckpoint[X, D](cfg, "psw", Fingerprint(sys)); err != nil {
		return map[X]D{}, st, err
	} else if cp != nil {
		if len(cp.Strata) != len(strata) {
			return map[X]D{}, st, fmt.Errorf("%w: checkpoint has %d strata, system has %d", ErrBadCheckpoint, len(cp.Strata), len(strata))
		}
		vc.restore(cp)
		for si, sc := range cp.Strata {
			switch {
			case sc.Done:
				done[si] = true
			case sc.Started:
				for _, i := range sc.Queue {
					if i < strata[si].lo || i > strata[si].hi {
						return map[X]D{}, st, fmt.Errorf("%w: queued index %d outside stratum %d", ErrBadCheckpoint, i, si)
					}
				}
				if len(sc.Queue) == 0 {
					done[si] = true
				} else {
					initQ[si] = sc.Queue
				}
			}
		}
		r.evals.Store(int64(cp.Evals))
		r.updates.Store(int64(cp.Updates))
		r.maxQueue.Store(int64(cp.MaxQueue))
		r.retries.Store(int64(cp.Retries))
		st.Rounds = cp.Rounds
	}

	workers := cfg.workers()
	if workers > len(strata) && len(strata) > 0 {
		workers = len(strata)
	}

	// Stratum DAG: preds counts how many distinct earlier strata a stratum
	// reads; succs lists the dependents to release on completion. Strata
	// already completed by a resumed run take no part in the DAG.
	strat := make([]int, n) // stratum index per unknown
	for si, s := range strata {
		for i := s.lo; i <= s.hi; i++ {
			strat[i] = si
		}
	}
	preds := make([]int, len(strata))
	succs := make([][]int, len(strata))
	seen := make([]int, len(strata)) // last stratum that recorded an edge from us
	for i := range seen {
		seen[i] = -1
	}
	pending := 0
	for si, s := range strata {
		if done[si] {
			continue
		}
		pending++
		for i := s.lo; i <= s.hi; i++ {
			for _, j := range adj[i] {
				if sj := strat[j]; sj != si && !done[sj] && seen[sj] != si {
					seen[sj] = si
					preds[si]++
					succs[sj] = append(succs[sj], si)
				}
			}
		}
	}

	st.Workers = workers
	st.SCCs = ncomp
	st.Strata = len(strata)
	sizes := make([]int, ncomp)
	for _, c := range comp {
		sizes[c]++
	}
	for _, sz := range sizes {
		st.SCCSize.Observe(sz)
	}
	for _, d := range sccDepths(adj, comp, ncomp) {
		st.SCCDepth.Observe(d)
	}

	if len(strata) == 0 {
		st.WallNs = time.Since(start).Nanoseconds()
		return map[X]D{}, st, nil
	}

	susp := make([][]int, len(strata))
	var firstErr error
	if pending > 0 {
		jobs := make(chan int, len(strata))
		doneCh := make(chan stratumResult, len(strata))
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for si := range jobs {
					suspended, err := r.runStratum(strata[si], initQ[si])
					doneCh <- stratumResult{si, suspended, err}
				}
			}()
		}
		for si, p := range preds {
			if p == 0 && !done[si] {
				jobs <- si
			}
		}
		for remaining := pending; remaining > 0; remaining-- {
			res := <-doneCh
			if res.err != nil && firstErr == nil {
				firstErr = res.err
				r.abort.Store(true)
			}
			if res.suspended == nil {
				done[res.si] = true
			} else {
				susp[res.si] = res.suspended
			}
			for _, t := range succs[res.si] {
				preds[t]--
				if preds[t] == 0 {
					// Dispatch even after an error: workers see the abort flag
					// and suspend immediately, which keeps the completion
					// accounting uniform (no stratum is ever lost).
					jobs <- t
				}
			}
		}
		close(jobs)
		wg.Wait()
	}

	st.Evals = int(r.evals.Load())
	if firstErr != nil && int64(st.Evals) > r.budget {
		// Several workers can trip the shared budget at once; report the
		// budget itself, matching SW's "stopped at exactly MaxEvals".
		st.Evals = int(r.budget)
	}
	st.Updates = int(r.updates.Load())
	st.Retries = int(r.retries.Load())
	st.MaxQueue = int(r.maxQueue.Load())
	st.WallNs = time.Since(start).Nanoseconds()

	sigma := vc.sigmaMap()
	if firstErr != nil {
		cp := vc.snapshot("psw", st)
		cp.Strata = make([]StratumCheckpoint, len(strata))
		for si := range strata {
			switch {
			case done[si]:
				cp.Strata[si] = StratumCheckpoint{Done: true}
			case susp[si] != nil:
				cp.Strata[si] = StratumCheckpoint{Started: true, Queue: susp[si]}
			}
		}
		firstErr = attachCheckpoint(firstErr, cp)
	}
	return sigma, st, firstErr
}

// stratumResult reports one dispatched stratum back to the scheduler:
// suspended is nil when the stratum stabilized, and otherwise holds the
// order indices still queued when the run was interrupted.
type stratumResult struct {
	si        int
	suspended []int
	err       error
}

// pswRun is the shared state of one PSW invocation. The core's assignment
// (boxed values or raw words) is indexed by order position; concurrent
// strata write disjoint index ranges and read only ranges whose strata
// completed before they were dispatched.
type pswRun[X comparable, D any] struct {
	vc execCore[X, D]
	sh *denseShape[X, D]

	budget   int64
	wd       *watchdog[X]
	evals    atomic.Int64
	updates  atomic.Int64
	retries  atomic.Int64
	maxQueue atomic.Int64
	abort    atomic.Bool
}

// runStratum runs SW restricted to the unknowns of one stratum, with the
// global order indices as priorities — the exact evaluation sequence
// sequential SW performs on this index range. initQ, when non-nil, seeds
// the queue from a resumed checkpoint instead of the full index range.
// It returns the sorted indices still queued if the run was interrupted
// (nil when the stratum stabilized) and the abort error, if any.
func (r *pswRun[X, D]) runStratum(s stratum, initQ []int) ([]int, error) {
	q := newBucketQueue(s.lo, s.hi)
	if initQ == nil {
		for i := s.lo; i <= s.hi; i++ {
			q.push(i)
		}
	} else {
		for _, i := range initQ {
			q.push(i)
		}
	}
	// Each stratum gets its own step function: its evaluation scratch is
	// per-run mutable state, while the shared assignment is safe to touch —
	// concurrent strata write disjoint ranges and read only stable ones.
	step := r.vc.stepper()
	// suspend captures the still-queued indices in ascending order; the
	// result is never nil, which is how the scheduler tells an interrupted
	// stratum from a stabilized one.
	suspend := func() []int { return q.indices() }
	localMax := int64(q.len())
	for !q.empty() {
		if r.abort.Load() {
			return suspend(), nil
		}
		n := r.evals.Add(1)
		if n > r.budget {
			// A bounded budget implies an armed watchdog; report the budget
			// value itself, matching SW's "stopped at exactly MaxEvals" even
			// when several workers trip the shared counter at once.
			return suspend(), r.wd.abort(AbortBudget, int(r.budget))
		}
		if err := r.wd.check(int(n - 1)); err != nil {
			// The reserved slot was never used — undo it so Stats.Evals
			// counts performed evaluations only.
			r.evals.Add(-1)
			return suspend(), err
		}
		i := q.popMin()
		changed, attempts, ee := step(i)
		if attempts > 1 {
			r.retries.Add(int64(attempts - 1))
		}
		if ee != nil {
			// The failed evaluation never happened: roll the reservation back
			// and keep x scheduled so the checkpoint re-evaluates it.
			r.evals.Add(-1)
			q.push(i)
			return suspend(), r.wd.failEval(ee, int(n-1))
		}
		if changed {
			r.updates.Add(1)
			q.push(i)
			for _, j := range r.sh.infl(i) {
				if int(j) >= s.lo && int(j) <= s.hi {
					q.push(int(j))
				}
			}
			if int64(q.len()) > localMax {
				localMax = int64(q.len())
			}
		}
	}
	for {
		cur := r.maxQueue.Load()
		if localMax <= cur || r.maxQueue.CompareAndSwap(cur, localMax) {
			return nil, nil
		}
	}
}
