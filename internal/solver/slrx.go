// The improved solver family SLR2/SLR3/SLR4 of Amato, Scozzari, Seidl,
// Apinis and Vojdani, "Efficiently intertwining widening and narrowing"
// (arXiv:1503.00883), as global solvers over a finite system:
//
//   - SLR2 applies the supplied update operator ⊞ (usually ⊟) only at
//     widening points and plain replacement σ[x] ← fₓ(σ) everywhere else.
//     Widening points are the headers of the recursive SCC refinement of
//     the static dependence graph (Bourdoncle's hierarchical decomposition):
//     condense the graph, pick the first-defined member of every nontrivial
//     component as its header, remove the header and recurse on the rest.
//     Every dependence cycle lies inside some component and survives the
//     refinement until one of its members is picked as a header, so the set
//     is admissible; loop analyses get exactly their loop heads marked, and
//     every other unknown stabilizes by plain (cheap, ∇-free) replacement.
//   - SLR3 additionally restarts the descending iteration below a widening
//     point whose value shrinks: every unknown transitively influenced by x
//     that is ordered after it is reset to its initial value and
//     rescheduled, so the subtree re-ascends from scratch under x's tighter
//     value instead of narrowing down from stale widened values.
//   - SLR4 localizes the restart to the widening point's own component:
//     unknowns outside it are rescheduled but not reset — ordinary
//     iteration already propagates the tighter value downstream, so
//     resetting them would only discard converged work.
//
// All three iterate with the recursive strategy the decomposition induces —
// stabilize a component completely before its surrounding component
// re-evaluates — and run on the same three execution cores as the other
// global solvers (map, dense boxed, dense unboxed) through one shared loop
// (slrxRun) over a small core seam (slrxCore); there is no second
// implementation of the iteration logic. Results certify as post-solutions
// via internal/certify whenever the run terminates (the stabilized updates
// satisfy σ(x) ⊒ fₓ(σ) at every unknown, by the same Lemma 1 argument as
// for ⊟ everywhere), but they are NOT bit-pinned to SW: applying ⊞ at
// fewer points changes the iterate sequence, generally to a pointwise
// smaller (more precise) result.
//
// Two iteration decisions are load-bearing for termination, standing in for
// the recursive evaluation discipline of the paper's local solvers (which
// re-solve an unknown's inputs before reading them, so a widening point
// never narrows against values it has itself outdated):
//
//   - Component-at-a-time stabilization: while a component iterates, every
//     unknown outside it is frozen, and nested components stabilize before
//     the enclosing pass continues. A header therefore always narrows
//     against fully restabilized inner values, and two sibling cycles can
//     never interleave their updates through a shared plain reader — the
//     interference that makes flat worklist orders creep forever on
//     plain-update cycles (∇ to ∞, Δ back to a slightly larger finite
//     bound, da capo) is structurally impossible.
//   - One cascade per widening point (SLR3/SLR4): a reset subtree re-ascends
//     through ∇ at its own widening points, which can overshoot the trigger
//     and re-widen it; its subsequent re-narrowing to the very same value
//     would re-trigger the cascade forever. Later shrinks at a spent trigger
//     still propagate by ordinary narrowing — the cascade is a precision
//     device, not a soundness one — and the cascade count is bounded by the
//     widening-point count.
//
// On non-monotonic systems the family, like every ⊟ solver here, is bounded
// by the watchdog (budget/deadline/flips) rather than by a termination
// proof.
package solver

import (
	"fmt"
	"sort"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// wpointKey is the ShapeMemo slot the widening-point analysis lives under.
const wpointKey = "solver.wpoints"

// compSpan is one component of the hierarchical decomposition as a
// half-open interval of the linear order seq: the header sits at start, the
// body (including nested components) fills (start, end).
type compSpan struct{ start, end int32 }

// wpointInfo is the memoized widening-point analysis of a system shape: the
// recursive SCC refinement of the dependence graph, flattened into a linear
// order with nested component spans, and the header set derived from it.
// It depends only on the dependence structure, never on right-hand sides,
// so PatchRHS is a no-op and the analysis survives same-dependences
// redefines (the incremental engine's common case).
//
// The order seq lists dependencies before readers wherever the graph allows
// it: sibling components are emitted in topological order of the (sub-)
// condensation, and within a component the header comes first, followed by
// the refinement of the body. Iterating seq left to right and re-passing a
// component until it stabilizes is the recursive strategy of Bourdoncle,
// which the shared loop implements with an explicit frame stack.
type wpointInfo[X comparable, D any] struct {
	// wp marks the component headers — the widening points.
	wp bitset
	// ncomp is the number of top-level SCCs (reported as Stats.SCCs).
	ncomp int
	// seq is the flattened hierarchical order; pos is its inverse
	// (pos[seq[p]] == p). The restart cascade resets only unknowns ordered
	// after the trigger, the static analogue of the local solvers' "reset
	// what was discovered after x".
	seq []int32
	pos []int32
	// comps are the nontrivial components; startComp[p] is the index of the
	// component whose span starts at position p, or -1. A component's
	// header is seq[comps[ci].start].
	comps     []compSpan
	startComp []int32
}

// PatchRHS implements eqn.RHSPatcher; see wpointInfo.
func (w *wpointInfo[X, D]) PatchRHS(int, eqn.RHS[X, D], eqn.RawRHS[X]) {}

// wpointsOf computes (memoized) the hierarchical decomposition; see
// wpointInfo for the order and the header rule.
func wpointsOf[X comparable, D any](sys *eqn.System[X, D]) *wpointInfo[X, D] {
	return sys.ShapeMemo(wpointKey, func() any {
		adj := sys.DepGraph()
		n := len(adj)
		w := &wpointInfo[X, D]{
			wp:        newBitset(n),
			seq:       make([]int32, 0, n),
			pos:       make([]int32, n),
			startComp: make([]int32, n),
		}
		for p := range w.startComp {
			w.startComp[p] = -1
		}

		// Scratch for the induced-subgraph Tarjan runs of the refinement;
		// each call initializes exactly the entries of its node set, so the
		// arrays are shared across all levels.
		member := newBitset(n)
		num := make([]int32, n)
		low := make([]int32, n)
		onStack := newBitset(n)

		// sccs condenses the subgraph induced by nodes, returning the
		// components in emission order of the iterative Tarjan traversal —
		// reverse topological order of the sub-condensation, i.e. every
		// component before its readers — with each component sorted by
		// definition index (deterministic headers and root order).
		sccs := func(nodes []int32) [][]int32 {
			for _, v := range nodes {
				member.set(int(v))
				num[v] = -1
			}
			var groups [][]int32
			var tstack []int32
			type tframe struct {
				v  int32
				ei int
			}
			var frames []tframe
			var counter int32
			for _, root := range nodes {
				if num[root] >= 0 {
					continue
				}
				num[root], low[root] = counter, counter
				counter++
				tstack = append(tstack, root)
				onStack.set(int(root))
				frames = append(frames[:0], tframe{root, 0})
				for len(frames) > 0 {
					f := &frames[len(frames)-1]
					v := f.v
					if f.ei < len(adj[v]) {
						u := int32(adj[v][f.ei])
						f.ei++
						if !member.has(int(u)) {
							continue
						}
						if num[u] < 0 {
							num[u], low[u] = counter, counter
							counter++
							tstack = append(tstack, u)
							onStack.set(int(u))
							frames = append(frames, tframe{u, 0})
						} else if onStack.has(int(u)) && num[u] < low[v] {
							low[v] = num[u]
						}
						continue
					}
					if low[v] == num[v] {
						var g []int32
						for {
							u := tstack[len(tstack)-1]
							tstack = tstack[:len(tstack)-1]
							onStack.clear(int(u))
							g = append(g, u)
							if u == v {
								break
							}
						}
						sort.Slice(g, func(a, b int) bool { return g[a] < g[b] })
						groups = append(groups, g)
					}
					frames = frames[:len(frames)-1]
					if len(frames) > 0 {
						p := frames[len(frames)-1].v
						if low[v] < low[p] {
							low[p] = low[v]
						}
					}
				}
			}
			for _, v := range nodes {
				member.clear(int(v))
			}
			return groups
		}

		selfLoop := func(v int32) bool {
			for _, u := range adj[v] {
				if int32(u) == v {
					return true
				}
			}
			return false
		}

		// The refinement driver: an explicit item stack in place of
		// recursion (component nesting can in principle track system size —
		// a complete graph refines one header per level).
		const (
			emitNode = iota
			openComp
			closeComp
		)
		type item struct {
			kind    int8
			node    int32 // emitNode: the node; openComp: the header; closeComp: comps index
			members []int32
		}
		var stack []item
		pushGroups := func(groups [][]int32) {
			for gi := len(groups) - 1; gi >= 0; gi-- {
				g := groups[gi]
				if len(g) == 1 && !selfLoop(g[0]) {
					stack = append(stack, item{kind: emitNode, node: g[0]})
					continue
				}
				stack = append(stack, item{kind: openComp, node: g[0], members: g[1:]})
			}
		}
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		top := sccs(all)
		w.ncomp = len(top)
		pushGroups(top)
		for len(stack) > 0 {
			it := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			switch it.kind {
			case emitNode:
				w.pos[it.node] = int32(len(w.seq))
				w.seq = append(w.seq, it.node)
			case openComp:
				ci := int32(len(w.comps))
				w.comps = append(w.comps, compSpan{start: int32(len(w.seq))})
				w.startComp[len(w.seq)] = ci
				w.wp.set(int(it.node))
				w.pos[it.node] = int32(len(w.seq))
				w.seq = append(w.seq, it.node)
				stack = append(stack, item{kind: closeComp, node: ci})
				pushGroups(sccs(it.members))
			case closeComp:
				w.comps[it.node].end = int32(len(w.seq))
			}
		}
		return w
	}).(*wpointInfo[X, D])
}

// restartMode selects the restarting-narrowing behavior of slrxRun.
type restartMode int8

const (
	// restartNone: SLR2 — no restarts.
	restartNone restartMode = iota
	// restartAll: SLR3 — a shrinking widening point resets every
	// transitively influenced unknown ordered after it.
	restartAll
	// restartSCC: SLR4 — like restartAll, but only within the widening
	// point's own component; unknowns outside it are rescheduled, not
	// reset.
	restartSCC
)

// slrxCore is the seam the shared SLR2/3/4 loop runs on. It is index-space
// throughout (scheduling is over order positions on every core); the boxed
// and unboxed wrappers delegate to the compiled structures, the map core
// re-derives the same index view from the system's memoized maps, so the
// three cores iterate identically and produce bit-identical results, Stats
// and checkpoints.
type slrxCore[X comparable, D any] interface {
	// size is the number of unknowns.
	size() int
	// slrStepper returns the step function of one run: step(i, accel)
	// evaluates unknown i under the eval guard, observes the step's phase,
	// and stores op.Apply (accel — at widening points) or the plain
	// right-hand-side value (elsewhere). It reports the observed phase,
	// whether the value changed, the attempt count, and the evaluation
	// error, if any; on an error nothing is rolled forward.
	slrStepper() func(i int, accel bool) (Phase, bool, int, *EvalError)
	// slrReset returns the restart primitive: reset(i) sets σ[i] back to
	// init and reports whether that changed the value, emitting a
	// PhaseRestart observation when it did.
	slrReset() func(i int) bool
	// noteRestart records a PhaseRestart observation for unknown i without
	// touching its value — issued at a cascade's triggering widening point,
	// whose shrink is part of the restart, not oscillation.
	noteRestart(i int)
	// influenced is the CSR influence row of unknown i: the positions of
	// its readers, in the order eqn.Infl lists them.
	influenced(i int) []int32
	// unknowns and indices translate between order positions and X-space
	// for the checkpoint queue.
	unknowns(idxs []int) []X
	indices(queue []X) ([]int, error)
	// sigmaMap renders the assignment as the map the public API returns.
	sigmaMap() map[X]D
	// snapshot captures a checkpoint of the current assignment; the loop
	// fills in the queue.
	snapshot(name string, st Stats) *Checkpoint[X, D]
	// restore applies a checkpointed assignment.
	restore(cp *Checkpoint[X, D])
	// release returns pooled stores; the core must not be used afterwards.
	release()
}

// slrxBoxed runs the family on the dense core with boxed values. Unlike the
// plain dense solvers, the wrapped boxedCore holds the UNinstrumented
// operator: the slr step observes phases itself (it needs the phase to
// decide restarts), in the same before-apply position as observedOp.
type slrxBoxed[X comparable, D any] struct {
	*boxedCore[X, D]
	wd *watchdog[X]
}

func (c *slrxBoxed[X, D]) size() int                    { return len(c.order) }
func (c *slrxBoxed[X, D]) influenced(i int) []int32     { return c.denseShape.infl(i) }
func (c *slrxBoxed[X, D]) unknowns(idxs []int) []X      { return c.queueUnknowns(idxs) }
func (c *slrxBoxed[X, D]) indices(q []X) ([]int, error) { return c.queueIndices(q) }

func (c *slrxBoxed[X, D]) slrStepper() func(int, bool) (Phase, bool, int, *EvalError) {
	e := c.evaluator()
	return func(i int, accel bool) (Phase, bool, int, *EvalError) {
		x := c.order[i]
		e.cur = i
		rhsVal, attempts, ee := guardedEval(c.g, x, e.thunk)
		if ee != nil {
			return PhaseStable, false, attempts, ee
		}
		old := c.vals[i]
		ph := PhaseOf(c.l, old, rhsVal)
		if c.wd != nil {
			c.wd.observe(x, ph)
		}
		next := rhsVal
		if accel {
			next = c.op.Apply(x, old, rhsVal)
		}
		if c.l.Eq(old, next) {
			return ph, false, attempts, nil
		}
		c.vals[i] = next
		return ph, true, attempts, nil
	}
}

func (c *slrxBoxed[X, D]) slrReset() func(int) bool {
	return func(i int) bool {
		x := c.order[i]
		v0 := c.init(x)
		if c.l.Eq(c.vals[i], v0) {
			return false
		}
		if c.wd != nil {
			c.wd.observe(x, PhaseRestart)
		}
		c.vals[i] = v0
		return true
	}
}

func (c *slrxBoxed[X, D]) noteRestart(i int) {
	if c.wd != nil {
		c.wd.observe(c.order[i], PhaseRestart)
	}
}

// slrxRaw runs the family on the unboxed word core. rawCore already keeps
// its operator uninstrumented and its watchdog explicit, so the wrapper
// only adds the slr step and the reset primitive.
type slrxRaw[X comparable, D any] struct {
	*rawCore[X, D]
}

func (c *slrxRaw[X, D]) size() int                    { return len(c.order) }
func (c *slrxRaw[X, D]) influenced(i int) []int32     { return c.denseShape.infl(i) }
func (c *slrxRaw[X, D]) unknowns(idxs []int) []X      { return c.queueUnknowns(idxs) }
func (c *slrxRaw[X, D]) indices(q []X) ([]int, error) { return c.queueIndices(q) }

func (c *slrxRaw[X, D]) slrStepper() func(int, bool) (Phase, bool, int, *EvalError) {
	stride := c.stride
	words := c.words
	raw := c.raw
	e := c.rawCore.evaluator()
	res := make([]uint64, stride)
	return func(i int, accel bool) (Phase, bool, int, *EvalError) {
		e.cur = i
		x := c.order[i]
		_, attempts, ee := guardedEval(c.g, x, e.thunk)
		if ee != nil {
			return PhaseStable, false, attempts, ee
		}
		old := words[i*stride : (i+1)*stride]
		ph := rawPhase(raw, old, e.newv)
		if c.wd != nil {
			c.wd.observe(x, ph)
		}
		if accel {
			c.op.rawApply(raw, res, old, e.newv)
		} else {
			copy(res, e.newv)
		}
		if raw.RawEq(old, res) {
			return ph, false, attempts, nil
		}
		copy(old, res)
		return ph, true, attempts, nil
	}
}

func (c *slrxRaw[X, D]) slrReset() func(int) bool {
	scratch := make([]uint64, c.stride)
	return func(i int) bool {
		x := c.order[i]
		c.raw.RawEncode(scratch, c.init(x))
		old := c.words[i*c.stride : (i+1)*c.stride]
		if c.raw.RawEq(old, scratch) {
			return false
		}
		if c.wd != nil {
			c.wd.observe(x, PhaseRestart)
		}
		copy(old, scratch)
		return true
	}
}

func (c *slrxRaw[X, D]) noteRestart(i int) {
	if c.wd != nil {
		c.wd.observe(c.order[i], PhaseRestart)
	}
}

// slrxMap runs the family on the map core: sigma stays a hash map (the
// tiny-system fast path and the differential oracle the compiled wrappers
// are pinned against), while scheduling uses the same index-space view the
// dense cores use, derived once from the system's memoized order/Infl.
type slrxMap[X comparable, D any] struct {
	sys   *eqn.System[X, D]
	l     lattice.Lattice[D]
	op    Operator[X, D]
	init  func(X) D
	wd    *watchdog[X]
	g     *evalGuard
	order []X
	idx   map[X]int
	sigma map[X]D
	infl  [][]int32
}

func newSlrxMap[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (*slrxMap[X, D], *watchdog[X]) {
	order := sys.Order()
	idx := sys.Index()
	wd := newWatchdog(cfg, idx)
	c := &slrxMap[X, D]{
		sys: sys, l: l, op: op, init: init,
		wd: wd, g: newEvalGuard(cfg),
		order: order, idx: idx,
		sigma: make(map[X]D, len(order)),
		infl:  make([][]int32, len(order)),
	}
	inflM := sys.Infl()
	for i, x := range order {
		c.sigma[x] = init(x)
		row := make([]int32, 0, len(inflM[x]))
		for _, y := range inflM[x] {
			row = append(row, int32(idx[y]))
		}
		c.infl[i] = row
	}
	return c, wd
}

func (c *slrxMap[X, D]) size() int                { return len(c.order) }
func (c *slrxMap[X, D]) influenced(i int) []int32 { return c.infl[i] }
func (c *slrxMap[X, D]) sigmaMap() map[X]D        { return c.sigma }
func (c *slrxMap[X, D]) release()                 {}

func (c *slrxMap[X, D]) unknowns(idxs []int) []X {
	out := make([]X, len(idxs))
	for k, i := range idxs {
		out[k] = c.order[i]
	}
	return out
}

func (c *slrxMap[X, D]) indices(queue []X) ([]int, error) {
	out := make([]int, len(queue))
	for k, x := range queue {
		j, ok := c.idx[x]
		if !ok {
			return nil, fmt.Errorf("%w: queued unknown %v is not in the system", ErrBadCheckpoint, x)
		}
		out[k] = j
	}
	return out, nil
}

func (c *slrxMap[X, D]) snapshot(name string, st Stats) *Checkpoint[X, D] {
	return snapshotGlobal(name, c.sys, c.sigma, st)
}

func (c *slrxMap[X, D]) restore(cp *Checkpoint[X, D]) {
	for x, v := range cp.sigmaMap() {
		c.sigma[x] = v
	}
}

func (c *slrxMap[X, D]) slrStepper() func(int, bool) (Phase, bool, int, *EvalError) {
	setCur, thunk := mapEvaluator(c.sys, c.sigma, c.init)
	return func(i int, accel bool) (Phase, bool, int, *EvalError) {
		x := c.order[i]
		setCur(x)
		rhsVal, attempts, ee := guardedEval(c.g, x, thunk)
		if ee != nil {
			return PhaseStable, false, attempts, ee
		}
		old := c.sigma[x]
		ph := PhaseOf(c.l, old, rhsVal)
		if c.wd != nil {
			c.wd.observe(x, ph)
		}
		next := rhsVal
		if accel {
			next = c.op.Apply(x, old, rhsVal)
		}
		if c.l.Eq(old, next) {
			return ph, false, attempts, nil
		}
		c.sigma[x] = next
		return ph, true, attempts, nil
	}
}

func (c *slrxMap[X, D]) slrReset() func(int) bool {
	return func(i int) bool {
		x := c.order[i]
		v0 := c.init(x)
		if c.l.Eq(c.sigma[x], v0) {
			return false
		}
		if c.wd != nil {
			c.wd.observe(x, PhaseRestart)
		}
		c.sigma[x] = v0
		return true
	}
}

func (c *slrxMap[X, D]) noteRestart(i int) {
	if c.wd != nil {
		c.wd.observe(c.order[i], PhaseRestart)
	}
}

// buildSlrxCore picks the execution core for an SLR2/3/4 solve, with the
// same selection rules as buildCore: dense for systems of at least
// denseMinUnknowns unknowns (override with Config.Core), unboxed when the
// operator is structured and the lattice has a clean raw encoding. The
// operator is never instrumented — the slr step observes phases itself.
func buildSlrxCore[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (slrxCore[X, D], *watchdog[X]) {
	if cfg.useDense(sys.Len()) {
		if cfg.Core != CoreDense {
			if ro, ok := op.(rawOperator[D]); ok {
				if raw := lattice.AsRaw[D](l); raw != nil {
					if rc, ok := tryRawCompile(sys, raw, init); ok {
						wd := newWatchdog(cfg, rc.idx)
						return &slrxRaw[X, D]{&rawCore[X, D]{rawCompiled: rc, op: ro, wd: wd, g: newEvalGuard(cfg)}}, wd
					}
				}
			}
		}
		c := compile(sys, init)
		wd := newWatchdog(cfg, c.idx)
		return &slrxBoxed[X, D]{boxedCore: &boxedCore[X, D]{compiled: c, l: l, op: op, g: newEvalGuard(cfg)}, wd: wd}, wd
	}
	return newSlrxMap(sys, l, op, init, cfg)
}

// SLR2 solves the system with ⊞ applied only at widening points and plain
// replacement everywhere else (Amato et al., SLR2). Same signature and
// bounds behavior as SW; checkpoints carry the assignment and the pending
// (dirty) unknowns under the solver name "slr2". The result is a certified
// post-solution whenever the run terminates, generally pointwise below
// SW's.
func SLR2[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	return slrxRun(sys, l, op, init, cfg, "slr2", restartNone)
}

// SLR3 is SLR2 plus restarting narrowing: when a widening point's value
// shrinks, every unknown transitively influenced by it that is ordered
// after it is reset to its initial value and rescheduled (Amato et al.,
// SLR3). Stats.Restarts counts the resets.
func SLR3[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	return slrxRun(sys, l, op, init, cfg, "slr3", restartAll)
}

// SLR4 is SLR3 with the restart localized to the widening point's own
// component: unknowns outside it are rescheduled but keep their values
// (Amato et al., SLR4-style localization).
func SLR4[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	return slrxRun(sys, l, op, init, cfg, "slr4", restartSCC)
}

// slrFrame is one active component of the recursive iteration strategy:
// scan position within the component's span and the update count at the
// start of the current pass (a pass that produced updates re-runs). ci is
// the comps index, or -1 for the virtual top-level span covering seq.
type slrFrame struct {
	ci   int32
	pos  int32
	base int
}

// slrxRun is the one shared iteration of the family: the recursive
// strategy over the hierarchical decomposition (an explicit frame stack —
// component nesting can track system size, so no recursion), evaluating
// only dirty unknowns (those whose inputs changed since their last
// evaluation), with the update operator gated on the widening-point set
// and (SLR3/SLR4) the iterative, once-per-point restart cascade.
func slrxRun[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config, name string, mode restartMode) (map[X]D, Stats, error) {
	core, wd := buildSlrxCore(sys, l, op, init, cfg)
	defer core.release()
	n := core.size()
	w := wpointsOf(sys)
	ck := newCkptSink(cfg)
	var st Stats
	st.Unknowns = n
	st.SCCs = w.ncomp
	if n == 0 {
		return core.sigmaMap(), st, nil
	}

	dirty := newBitset(n)
	dc := 0
	mark := func(i int) {
		if !dirty.has(i) {
			dirty.set(i)
			dc++
		}
	}
	if cp, err := resumeCheckpoint[X, D](cfg, name, Fingerprint(sys)); err != nil {
		return core.sigmaMap(), st, err
	} else if cp != nil {
		core.restore(cp)
		cp.restoreStats(&st)
		queued, qerr := core.indices(cp.Queue)
		if qerr != nil {
			return core.sigmaMap(), st, qerr
		}
		for _, i := range queued {
			mark(i)
		}
	} else {
		for i := 0; i < n; i++ {
			mark(i)
		}
		st.MaxQueue = dc
	}
	capture := func() *Checkpoint[X, D] {
		cp := core.snapshot(name, st)
		// The queue is the dirty set in hierarchical order; a resumed run
		// restarts the sweep from the top with exactly these unknowns
		// pending (everything else is stable by the dirtiness invariant).
		idxs := make([]int, 0, dc)
		for _, ip := range w.seq {
			if dirty.has(int(ip)) {
				idxs = append(idxs, int(ip))
			}
		}
		cp.Queue = core.unknowns(idxs)
		return cp
	}
	step := core.slrStepper()
	var reset func(int) bool
	// Restart-cascade scratch, reused across cascades: work is the explicit
	// iterative worklist (NEVER recursion — influence chains reach 10⁵
	// unknowns on synthetic systems, which would exhaust the goroutine
	// stack), seen dedups within one cascade, triggered caps each widening
	// point at one cascade per run (see the package comment on termination).
	var work []int32
	var seen, triggered bitset
	if mode != restartNone {
		reset = core.slrReset()
		seen = newBitset(n)
		triggered = newBitset(n)
	}
	frames := []slrFrame{{ci: -1, pos: 0, base: st.Updates}}
	for len(frames) > 0 {
		f := &frames[len(frames)-1]
		start, end := int32(0), int32(n)
		if f.ci >= 0 {
			span := w.comps[f.ci]
			start, end = span.start, span.end
		}
		if f.pos == end {
			if st.Updates > f.base {
				// The pass updated some member: the component has not
				// stabilized, run another pass over its span.
				f.base, f.pos = st.Updates, start
				continue
			}
			frames = frames[:len(frames)-1]
			continue
		}
		if ci := w.startComp[f.pos]; ci >= 0 && ci != f.ci {
			// A nested component starts here: stabilize it completely
			// before this pass continues behind it.
			childStart := f.pos
			f.pos = w.comps[ci].end
			frames = append(frames, slrFrame{ci: ci, pos: childStart, base: st.Updates})
			continue
		}
		p := f.pos
		f.pos++
		i := int(w.seq[p])
		if !dirty.has(i) {
			continue
		}
		if err := wd.check(st.Evals); err != nil {
			return core.sigmaMap(), st, attachCheckpoint(err, capture())
		}
		if ck.due(st.Evals) {
			ck.emit(st.Evals, capture())
		}
		accel := w.wp.has(i)
		ph, changed, attempts, ee := step(i, accel)
		st.Retries += attempts - 1
		if ee != nil {
			// The failed evaluation never happened: i stays dirty so the
			// checkpoint resumes by re-evaluating it.
			return core.sigmaMap(), st, attachCheckpoint(wd.failEval(ee, st.Evals), capture())
		}
		dirty.clear(i)
		dc--
		st.Evals++
		if !changed {
			continue
		}
		st.Updates++
		for _, j := range core.influenced(i) {
			mark(int(j))
		}
		if mode != restartNone && accel && ph == PhaseNarrow && !triggered.has(i) {
			// The widening point shrank for the first time: restart the
			// descending iteration below it. The shrink itself is part of
			// the restart, so erase its phase history too — without this,
			// the subtree's re-ascension would read as narrow→widen
			// oscillation and trip MaxFlips on perfectly convergent runs.
			triggered.set(i)
			core.noteRestart(i)
			pi := w.pos[i]
			compEnd := int32(n)
			if mode == restartSCC {
				compEnd = w.comps[w.startComp[pi]].end
			}
			work = append(work[:0], core.influenced(i)...)
			for len(work) > 0 {
				j := int(work[len(work)-1])
				work = work[:len(work)-1]
				if j == i || seen.has(j) {
					continue
				}
				seen.set(j)
				mark(j)
				// Reset strictly below the widening point — unknowns
				// ordered after it; SLR4 additionally stays inside its
				// component span. The cascade only crosses reset unknowns:
				// a non-reset reader is rescheduled and re-converges by
				// ordinary iteration.
				if pj := w.pos[j]; pj > pi && pj < compEnd {
					if reset(j) {
						st.Restarts++
					}
					work = append(work, core.influenced(j)...)
				}
			}
			clear(seen)
		}
		if dc > st.MaxQueue {
			st.MaxQueue = dc
		}
	}
	return core.sigmaMap(), st, nil
}
