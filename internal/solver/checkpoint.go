package solver

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"warrow/internal/eqn"
)

// CheckpointVersion is the wire-format version MarshalCheckpoint writes and
// UnmarshalCheckpoint accepts. The format is append-only within a version:
// readers reject any other version outright, so a format change must bump
// this constant and keep the old reader if old checkpoints are to survive.
const CheckpointVersion = 1

// ErrBadCheckpoint is wrapped by every checkpoint validation failure: wrong
// element types, wrong solver, wrong system fingerprint, corrupt wire data.
var ErrBadCheckpoint = errors.New("solver: checkpoint rejected")

// Checkpoint is a deterministic snapshot of an in-flight solve, captured at
// a scheduling point (never mid-evaluation): the assignment, the solver's
// scheduling state, and the work counters. For the global solvers (RR, W,
// SRR, SW, PSW) the snapshot is exact — resuming it via Config.Resume
// continues the very iteration that was interrupted, and for SRR, SW and
// PSW the resumed run is bit-identical (Evals, Updates, assignment) to an
// uninterrupted one. For the local solvers (RLD, SLR, SLR⁺), whose state
// lives on the Go stack, the snapshot holds the assignment only and resume
// is a warm restart: iteration restarts from the checkpointed values, which
// Amato et al.'s localized-restart argument makes sound — the run completes
// and certifies, but its eval counts are its own.
//
// Checkpoints are captured on every abort (attached to the AbortReport and
// extracted with CheckpointOf) and, when Config.CheckpointEvery is set,
// every that-many evaluations through Config.CheckpointSink.
type Checkpoint[X comparable, D any] struct {
	// Solver names the entry point that captured the snapshot: rr, w, srr,
	// sw, psw, rld, slr, slr+. Resume rejects a mismatched solver.
	Solver string
	// SysFP fingerprints the system shape (rendered order + dependences);
	// resume rejects a checkpoint whose fingerprint differs from the target
	// system's. Zero for local solvers, whose systems are functions.
	SysFP uint64
	// Evals, Updates, Rounds, MaxQueue and Retries restore Stats so the
	// resumed run's totals continue where the interrupted run stopped.
	Evals, Updates, Rounds, MaxQueue, Retries int
	// Sigma lists the assignment in the system's linear order (global
	// solvers) or discovery order (local solvers).
	Sigma []CheckpointEntry[X, D]
	// Cursor is the solver-specific program counter: for RR the order index
	// of the next unknown to evaluate in the interrupted sweep; for SRR the
	// 1-based innermost active frame.
	Cursor int
	// Dirty is RR's "current sweep already changed something" flag.
	Dirty bool
	// Queue is the pending-work set at the scheduling point: W's stack from
	// bottom to top, SW's queued unknowns (priorities are recomputed from
	// the linear order).
	Queue []X
	// Strata is PSW's per-stratum progress, indexed like the deterministic
	// stratification of the system.
	Strata []StratumCheckpoint
}

// CheckpointEntry is one assignment row of a Checkpoint.
type CheckpointEntry[X comparable, D any] struct {
	X X
	V D
}

// StratumCheckpoint records one PSW stratum's progress: completed strata
// are skipped on resume, started ones resume from their pending queue
// (order indices), and untouched ones start fresh.
type StratumCheckpoint struct {
	Done    bool
	Started bool
	// Queue holds the order indices still queued in a started stratum,
	// ascending.
	Queue []int
}

// Codec serializes unknowns and domain values for the checkpoint wire
// format. Encoded strings may contain arbitrary bytes; the wire format
// quotes them. Decode must invert Encode exactly — the round-trip tests and
// the golden format test pin this.
type Codec[X comparable, D any] struct {
	EncodeX func(X) string
	DecodeX func(string) (X, error)
	EncodeD func(D) string
	DecodeD func(string) (D, error)
}

// Fingerprint hashes the system shape — the rendered linear order and every
// dependence list — so a checkpoint cannot be resumed against a different
// system. Values and right-hand sides are deliberately not hashed: the
// whole point of warm restarts is resuming after the environment healed.
func Fingerprint[X comparable, D any](sys *eqn.System[X, D]) uint64 {
	return sys.ShapeHash()
}

// CheckpointOf extracts the checkpoint attached to a solver abort, if the
// error carries one of the matching element types.
func CheckpointOf[X comparable, D any](err error) (*Checkpoint[X, D], bool) {
	rep, ok := ReportOf(err)
	if !ok {
		return nil, false
	}
	cp, ok := rep.Checkpoint.(*Checkpoint[X, D])
	return cp, ok && cp != nil
}

// attachCheckpoint stores cp in the AbortReport carried by err, so every
// abort hands back a resume point alongside its diagnosis.
func attachCheckpoint(err error, cp any) error {
	var ae *AbortError
	if errors.As(err, &ae) {
		ae.Report.Checkpoint = cp
	}
	return err
}

// resumeCheckpoint validates Config.Resume for a solver entry point: nil
// Resume means a fresh run; anything else must be a *Checkpoint with the
// solver's element types, the solver's name, and (for fingerprinted
// solvers) the target system's shape.
func resumeCheckpoint[X comparable, D any](cfg Config, solverName string, fp uint64) (*Checkpoint[X, D], error) {
	if cfg.Resume == nil {
		return nil, nil
	}
	cp, ok := cfg.Resume.(*Checkpoint[X, D])
	if !ok {
		return nil, fmt.Errorf("%w: Resume holds %T, not a checkpoint of this solver's element types", ErrBadCheckpoint, cfg.Resume)
	}
	if cp.Solver != solverName {
		return nil, fmt.Errorf("%w: checkpoint was captured by %q, resumed on %q", ErrBadCheckpoint, cp.Solver, solverName)
	}
	if fp != 0 && cp.SysFP != 0 && cp.SysFP != fp {
		return nil, fmt.Errorf("%w: system fingerprint %#x does not match checkpoint %#x", ErrBadCheckpoint, fp, cp.SysFP)
	}
	return cp, nil
}

// restoreStats seeds a Stats from a checkpoint, so the resumed run's totals
// continue the interrupted run's.
func (cp *Checkpoint[X, D]) restoreStats(st *Stats) {
	st.Evals = cp.Evals
	st.Updates = cp.Updates
	st.Rounds = cp.Rounds
	st.MaxQueue = cp.MaxQueue
	st.Retries = cp.Retries
}

// sigmaMap returns the checkpointed assignment as a map.
func (cp *Checkpoint[X, D]) sigmaMap() map[X]D {
	m := make(map[X]D, len(cp.Sigma))
	for _, e := range cp.Sigma {
		m[e.X] = e.V
	}
	return m
}

// overlayInit returns an initial assignment that reads the checkpointed
// value where one exists and falls back to init otherwise — the warm
// restart used by the local solvers.
func (cp *Checkpoint[X, D]) overlayInit(init func(X) D) func(X) D {
	m := cp.sigmaMap()
	return func(x X) D {
		if v, ok := m[x]; ok {
			return v
		}
		return init(x)
	}
}

// snapshotGlobal captures the shared part of a global-solver checkpoint:
// name, fingerprint, counters and the full assignment in linear order.
func snapshotGlobal[X comparable, D any](name string, sys *eqn.System[X, D], sigma map[X]D, st Stats) *Checkpoint[X, D] {
	cp := &Checkpoint[X, D]{Solver: name, SysFP: Fingerprint(sys)}
	cp.Evals, cp.Updates, cp.Rounds, cp.MaxQueue, cp.Retries =
		st.Evals, st.Updates, st.Rounds, st.MaxQueue, st.Retries
	for _, x := range sys.Order() {
		cp.Sigma = append(cp.Sigma, CheckpointEntry[X, D]{X: x, V: sigma[x]})
	}
	return cp
}

// snapshotCompiled captures the shared part of a dense-core checkpoint
// without materializing a sigma map: the Sigma rows are read straight off
// the flat assignment in linear order, producing byte-identical wire output
// to snapshotGlobal on the same state — which is what lets checkpoints
// captured by one core resume on the other.
func (c *compiled[X, D]) snapshot(name string, st Stats) *Checkpoint[X, D] {
	cp := &Checkpoint[X, D]{Solver: name, SysFP: Fingerprint(c.sys)}
	cp.Evals, cp.Updates, cp.Rounds, cp.MaxQueue, cp.Retries =
		st.Evals, st.Updates, st.Rounds, st.MaxQueue, st.Retries
	cp.Sigma = make([]CheckpointEntry[X, D], len(c.order))
	for i, x := range c.order {
		cp.Sigma[i] = CheckpointEntry[X, D]{X: x, V: c.vals[i]}
	}
	return cp
}

// restore applies a checkpointed assignment to the dense core. Entries for
// unknowns outside the system are ignored, exactly as the map core's get
// would never read them on a fingerprint-matched checkpoint.
func (c *compiled[X, D]) restore(cp *Checkpoint[X, D]) {
	for _, e := range cp.Sigma {
		if j, ok := c.idx[e.X]; ok {
			c.vals[j] = e.V
		}
	}
}

// queueIndices maps a checkpoint's X-space queue to order positions,
// rejecting unknowns the system does not define.
func (sh *denseShape[X, D]) queueIndices(queue []X) ([]int, error) {
	out := make([]int, len(queue))
	for k, x := range queue {
		j, ok := sh.idx[x]
		if !ok {
			return nil, fmt.Errorf("%w: queued unknown %v is not in the system", ErrBadCheckpoint, x)
		}
		out[k] = j
	}
	return out, nil
}

// queueUnknowns maps order positions back to X-space for a checkpoint.
func (sh *denseShape[X, D]) queueUnknowns(idxs []int) []X {
	out := make([]X, len(idxs))
	for k, i := range idxs {
		out[k] = sh.order[i]
	}
	return out
}

// snapshotLocal captures a warm-restart checkpoint for a local solver: the
// assignment in discovery order, plus counters for reporting.
func snapshotLocal[X comparable, D any](name string, dom []X, sigma map[X]D, st Stats) *Checkpoint[X, D] {
	cp := &Checkpoint[X, D]{Solver: name}
	cp.Evals, cp.Updates, cp.Rounds, cp.MaxQueue, cp.Retries =
		st.Evals, st.Updates, st.Rounds, st.MaxQueue, st.Retries
	for _, x := range dom {
		if v, ok := sigma[x]; ok {
			cp.Sigma = append(cp.Sigma, CheckpointEntry[X, D]{X: x, V: v})
		}
	}
	return cp
}

// ckptSink drives periodic snapshots: solvers ask due() at every scheduling
// point and emit a capture when the eval counter crossed the next threshold.
// A nil sink is free.
type ckptSink struct {
	every int
	sink  func(any)
	next  int
}

func newCkptSink(cfg Config) *ckptSink {
	if cfg.CheckpointEvery <= 0 || cfg.CheckpointSink == nil {
		return nil
	}
	return &ckptSink{every: cfg.CheckpointEvery, sink: cfg.CheckpointSink, next: cfg.CheckpointEvery}
}

func (c *ckptSink) due(evals int) bool {
	return c != nil && evals >= c.next
}

func (c *ckptSink) emit(evals int, cp any) {
	for c.next <= evals {
		c.next += c.every
	}
	c.sink(cp)
}

// MarshalCheckpoint renders a checkpoint in the versioned textual wire
// format. The output is deterministic for a given checkpoint — fields in a
// fixed order, strings quoted with strconv.Quote — which the golden format
// test pins byte for byte.
func MarshalCheckpoint[X comparable, D any](cp *Checkpoint[X, D], codec Codec[X, D]) ([]byte, error) {
	if codec.EncodeX == nil || codec.EncodeD == nil {
		return nil, fmt.Errorf("%w: codec lacks encoders", ErrBadCheckpoint)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "warrow-checkpoint v%d\n", CheckpointVersion)
	fmt.Fprintf(&b, "solver %s\n", cp.Solver)
	fmt.Fprintf(&b, "fingerprint %d\n", cp.SysFP)
	fmt.Fprintf(&b, "evals %d\n", cp.Evals)
	fmt.Fprintf(&b, "updates %d\n", cp.Updates)
	fmt.Fprintf(&b, "rounds %d\n", cp.Rounds)
	fmt.Fprintf(&b, "maxqueue %d\n", cp.MaxQueue)
	fmt.Fprintf(&b, "retries %d\n", cp.Retries)
	fmt.Fprintf(&b, "cursor %d\n", cp.Cursor)
	fmt.Fprintf(&b, "dirty %t\n", cp.Dirty)
	fmt.Fprintf(&b, "sigma %d\n", len(cp.Sigma))
	for _, e := range cp.Sigma {
		fmt.Fprintf(&b, "v %s %s\n", strconv.Quote(codec.EncodeX(e.X)), strconv.Quote(codec.EncodeD(e.V)))
	}
	fmt.Fprintf(&b, "queue %d\n", len(cp.Queue))
	for _, x := range cp.Queue {
		fmt.Fprintf(&b, "q %s\n", strconv.Quote(codec.EncodeX(x)))
	}
	fmt.Fprintf(&b, "strata %d\n", len(cp.Strata))
	for _, s := range cp.Strata {
		switch {
		case s.Done:
			fmt.Fprintf(&b, "s done\n")
		case s.Started:
			fmt.Fprintf(&b, "s started")
			for _, i := range s.Queue {
				fmt.Fprintf(&b, " %d", i)
			}
			fmt.Fprintf(&b, "\n")
		default:
			fmt.Fprintf(&b, "s fresh\n")
		}
	}
	fmt.Fprintf(&b, "end\n")
	return b.Bytes(), nil
}

// UnmarshalCheckpoint parses the wire format back into a checkpoint,
// rejecting unknown versions and malformed input with ErrBadCheckpoint.
func UnmarshalCheckpoint[X comparable, D any](data []byte, codec Codec[X, D]) (*Checkpoint[X, D], error) {
	if codec.DecodeX == nil || codec.DecodeD == nil {
		return nil, fmt.Errorf("%w: codec lacks decoders", ErrBadCheckpoint)
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<26)
	line := func() (string, error) {
		if !sc.Scan() {
			return "", fmt.Errorf("%w: truncated input", ErrBadCheckpoint)
		}
		return sc.Text(), nil
	}
	header, err := line()
	if err != nil {
		return nil, err
	}
	if header != fmt.Sprintf("warrow-checkpoint v%d", CheckpointVersion) {
		return nil, fmt.Errorf("%w: unsupported header %q", ErrBadCheckpoint, header)
	}
	cp := &Checkpoint[X, D]{}
	field := func(key string) (string, error) {
		l, err := line()
		if err != nil {
			return "", err
		}
		if !strings.HasPrefix(l, key+" ") {
			return "", fmt.Errorf("%w: expected %q field, got %q", ErrBadCheckpoint, key, l)
		}
		return l[len(key)+1:], nil
	}
	intField := func(key string) (int, error) {
		s, err := field(key)
		if err != nil {
			return 0, err
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("%w: bad %s %q", ErrBadCheckpoint, key, s)
		}
		return n, nil
	}
	if cp.Solver, err = field("solver"); err != nil {
		return nil, err
	}
	fp, err := field("fingerprint")
	if err != nil {
		return nil, err
	}
	if cp.SysFP, err = strconv.ParseUint(fp, 10, 64); err != nil {
		return nil, fmt.Errorf("%w: bad fingerprint %q", ErrBadCheckpoint, fp)
	}
	if cp.Evals, err = intField("evals"); err != nil {
		return nil, err
	}
	if cp.Updates, err = intField("updates"); err != nil {
		return nil, err
	}
	if cp.Rounds, err = intField("rounds"); err != nil {
		return nil, err
	}
	if cp.MaxQueue, err = intField("maxqueue"); err != nil {
		return nil, err
	}
	if cp.Retries, err = intField("retries"); err != nil {
		return nil, err
	}
	if cp.Cursor, err = intField("cursor"); err != nil {
		return nil, err
	}
	dirty, err := field("dirty")
	if err != nil {
		return nil, err
	}
	if cp.Dirty, err = strconv.ParseBool(dirty); err != nil {
		return nil, fmt.Errorf("%w: bad dirty flag %q", ErrBadCheckpoint, dirty)
	}
	unquote := func(s string) (string, error) {
		u, err := strconv.Unquote(s)
		if err != nil {
			return "", fmt.Errorf("%w: bad quoted string %q", ErrBadCheckpoint, s)
		}
		return u, nil
	}
	nsigma, err := intField("sigma")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nsigma; i++ {
		l, err := field("v")
		if err != nil {
			return nil, err
		}
		// Two quoted strings separated by one space; the first ends at the
		// closing quote strconv.Unquote accepts via QuotedPrefix.
		xq, err := strconv.QuotedPrefix(l)
		if err != nil || len(xq)+1 > len(l) || l[len(xq)] != ' ' {
			return nil, fmt.Errorf("%w: bad sigma row %q", ErrBadCheckpoint, l)
		}
		xs, err := unquote(xq)
		if err != nil {
			return nil, err
		}
		ds, err := unquote(l[len(xq)+1:])
		if err != nil {
			return nil, err
		}
		x, err := codec.DecodeX(xs)
		if err != nil {
			return nil, fmt.Errorf("%w: unknown %q: %v", ErrBadCheckpoint, xs, err)
		}
		v, err := codec.DecodeD(ds)
		if err != nil {
			return nil, fmt.Errorf("%w: value %q: %v", ErrBadCheckpoint, ds, err)
		}
		cp.Sigma = append(cp.Sigma, CheckpointEntry[X, D]{X: x, V: v})
	}
	nqueue, err := intField("queue")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nqueue; i++ {
		l, err := field("q")
		if err != nil {
			return nil, err
		}
		xs, err := unquote(l)
		if err != nil {
			return nil, err
		}
		x, err := codec.DecodeX(xs)
		if err != nil {
			return nil, fmt.Errorf("%w: queued unknown %q: %v", ErrBadCheckpoint, xs, err)
		}
		cp.Queue = append(cp.Queue, x)
	}
	nstrata, err := intField("strata")
	if err != nil {
		return nil, err
	}
	for i := 0; i < nstrata; i++ {
		l, err := field("s")
		if err != nil {
			return nil, err
		}
		var s StratumCheckpoint
		parts := strings.Fields(l)
		switch {
		case len(parts) == 1 && parts[0] == "done":
			s.Done = true
		case len(parts) == 1 && parts[0] == "fresh":
		case len(parts) >= 1 && parts[0] == "started":
			s.Started = true
			for _, p := range parts[1:] {
				n, err := strconv.Atoi(p)
				if err != nil {
					return nil, fmt.Errorf("%w: bad stratum queue index %q", ErrBadCheckpoint, p)
				}
				s.Queue = append(s.Queue, n)
			}
		default:
			return nil, fmt.Errorf("%w: bad stratum row %q", ErrBadCheckpoint, l)
		}
		cp.Strata = append(cp.Strata, s)
	}
	if end, err := line(); err != nil || end != "end" {
		return nil, fmt.Errorf("%w: missing end marker", ErrBadCheckpoint)
	}
	return cp, nil
}
