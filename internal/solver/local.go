package solver

import (
	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// Result is the outcome of a local solver: a partial assignment over the
// unknowns encountered while answering the query.
type Result[X comparable, D any] struct {
	// Values maps every encountered unknown (the set dom) to its value.
	Values map[X]D
	// Stats records the work performed.
	Stats Stats
}

// RLD is the local solver of Hofmann, Karbyshev and Seidl (Fig. 5),
// generalized over the update operator. It is included for reference and
// comparison: as the paper observes, RLD is *not* a generic solver —
// because eval recursively solves on every lookup, an evaluation of a
// right-hand side may mix values from several intermediate assignments, so
// with a non-trivial ⊞ (such as ⊟) it is not guaranteed to return a
// ⊞-solution even when it terminates. Use SLR instead.
//
// Aborts attach a warm-restart checkpoint (the assignment in discovery
// order); Config.Resume seeds σ₀ from it, restarting iteration from the
// checkpointed values — the localized-restart argument of Amato et al.
// makes the restarted run's result as sound as an uninterrupted one, but
// its eval counts are its own.
func RLD[X comparable, D any](sys eqn.Pure[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, x0 X, cfg Config) (Result[X, D], error) {
	if cp, err := resumeCheckpoint[X, D](cfg, "rld", 0); err != nil {
		return Result[X, D]{Values: map[X]D{}}, err
	} else if cp != nil {
		init = cp.overlayInit(init)
	}
	wd := newWatchdog[X](cfg, nil)
	op = instrument(wd, l, op)
	g := newEvalGuard(cfg)
	ck := newCkptSink(cfg)
	var st Stats
	sigma := make(map[X]D)
	var dom []X // discovery order of sigma's keys, for deterministic snapshots
	set := func(x X, v D) {
		if _, ok := sigma[x]; !ok {
			dom = append(dom, x)
		}
		sigma[x] = v
	}
	capture := func() *Checkpoint[X, D] { return snapshotLocal("rld", dom, sigma, st) }
	infl := make(map[X][]X)
	stable := make(map[X]bool)
	get := func(y X) D {
		if v, ok := sigma[y]; ok {
			return v
		}
		return init(y)
	}
	// eval and thunk are allocated once per run and read the current frame
	// from cur; solve is reentrant (eval recurses into it), so each frame
	// saves and restores cur around its evaluation.
	var solve func(x X) error
	var cur struct {
		x       X
		rhs     eqn.RHS[X, D]
		evalErr error
	}
	eval := func(y X) D {
		if cur.evalErr == nil {
			cur.evalErr = solve(y)
		}
		infl[y] = append(infl[y], cur.x)
		return get(y)
	}
	thunk := func() D { return cur.rhs(eval) }
	solve = func(x X) error {
		if stable[x] {
			return nil
		}
		stable[x] = true
		rhs := sys(x)
		if rhs == nil {
			if _, ok := sigma[x]; !ok {
				set(x, init(x))
			}
			return nil
		}
		if err := wd.check(st.Evals); err != nil {
			return err
		}
		if ck.due(st.Evals) {
			ck.emit(st.Evals, capture())
		}
		st.Evals++
		saved := cur
		cur.x, cur.rhs, cur.evalErr = x, rhs, nil
		rhsVal, attempts, ee := guardedEval(g, x, thunk)
		evalErr := cur.evalErr
		cur = saved
		st.Retries += attempts - 1
		if ee != nil {
			// The failed evaluation never happened; roll its count back.
			// Evaluations of unknowns discovered during failed attempts did
			// happen and stand.
			st.Evals--
			return wd.failEval(ee, st.Evals)
		}
		tmp := op.Apply(x, get(x), rhsVal)
		if evalErr != nil {
			return evalErr
		}
		if !l.Eq(tmp, get(x)) {
			w := infl[x]
			set(x, tmp)
			st.Updates++
			infl[x] = nil
			for _, y := range w {
				delete(stable, y)
			}
			for _, y := range w {
				if err := solve(y); err != nil {
					return err
				}
			}
		} else {
			set(x, tmp)
		}
		return nil
	}
	err := solve(x0)
	if err != nil {
		err = attachCheckpoint(err, capture())
	}
	st.Unknowns = len(sigma)
	return Result[X, D]{Values: sigma, Stats: st}, err
}

// slrState is the shared machinery of SLR and SLR⁺.
type slrState[X comparable, D any] struct {
	name string
	l    lattice.Lattice[D]
	op   Operator[X, D]
	init func(X) D
	band func(X) int
	wd   *watchdog[X]
	g    *evalGuard
	ck   *ckptSink
	st   Stats

	sigma  map[X]D
	dom    []X // discovery order, for deterministic snapshots
	infl   map[X]map[X]bool
	stable map[X]bool
	key    map[X]int64
	count  int
	q      *pq[X]
}

func newSLRState[X comparable, D any](name string, l lattice.Lattice[D], op Operator[X, D], init func(X) D, band func(X) int, cfg Config) *slrState[X, D] {
	wd := newWatchdog[X](cfg, nil)
	return &slrState[X, D]{
		name:   name,
		l:      l,
		op:     instrument(wd, l, op),
		init:   init,
		band:   band,
		wd:     wd,
		g:      newEvalGuard(cfg),
		ck:     newCkptSink(cfg),
		sigma:  make(map[X]D),
		infl:   make(map[X]map[X]bool),
		stable: make(map[X]bool),
		key:    make(map[X]int64),
		q:      newPQ[X](),
	}
}

// capture snapshots the current partial assignment for a warm restart.
func (s *slrState[X, D]) capture() *Checkpoint[X, D] {
	return snapshotLocal(s.name, s.dom, s.sigma, s.st)
}

// inDom reports whether y has been initialized.
func (s *slrState[X, D]) inDom(y X) bool {
	_, ok := s.key[y]
	return ok
}

// initVar is the paper's init: y joins dom with a key smaller than all
// previously assigned keys within its priority band, depends on itself,
// and starts at σ₀[y]. Unknowns in a higher band always carry larger keys
// than every unknown in a lower band, so they are re-evaluated only after
// all their lower-band readers have refreshed — the scheduling refinement
// needed for side-effected unknowns (see SLRPlusKeyed).
func (s *slrState[X, D]) initVar(y X) {
	band := 0
	if s.band != nil {
		band = s.band(y)
	}
	s.key[y] = bandKey(band, s.count)
	s.count++
	s.infl[y] = map[X]bool{y: true}
	s.sigma[y] = s.init(y)
	s.dom = append(s.dom, y)
}

// bandKey computes the priority key for the count-th discovered unknown of
// a band. The band occupies bits 32 and up, so it must be widened to int64
// before the shift: computed in int, band<<32 is zero on 32-bit platforms,
// which silently collapses every band to 0 and disables the scheduling
// refinement SLRPlusKeyed's termination argument relies on.
func bandKey(band, count int) int64 {
	return int64(band)<<32 - int64(count)
}

// destabilize removes the unknowns influenced by x from stable and
// schedules them, resetting infl[x] to {x}.
func (s *slrState[X, D]) destabilize(x X) {
	w := s.infl[x]
	s.infl[x] = map[X]bool{x: true}
	for y := range w {
		delete(s.stable, y)
		s.q.push(y, s.key[y])
	}
	if s.q.len() > s.st.MaxQueue {
		s.st.MaxQueue = s.q.len()
	}
}

// drain solves queued unknowns while the least key does not exceed bound.
//
// The unknowns it pops are solved with drainAfter=false: a popped unknown's
// own post-update drain would process exactly the same queue prefix in the
// same min-first order as this loop, so skipping it preserves the iteration
// order of the paper's recursive formulation while keeping update chains
// off the Go stack (the recursion that remains — solving freshly discovered
// unknowns inside eval — is bounded by the discovery-chain depth, not by
// the number of updates).
func (s *slrState[X, D]) drain(bound int64, solve func(X, bool) error) error {
	for !s.q.empty() && s.q.minKey() <= bound {
		if err := solve(s.q.popMin(), false); err != nil {
			return err
		}
	}
	return nil
}

// SLR is the structured local recursive solver of Fig. 6: a variant of RLD
// in which right-hand sides are evaluated atomically (solve recurses only
// into *fresh* unknowns; already-known ones are just read), every unknown
// depends on itself, and destabilized unknowns are re-solved through a
// priority queue ordered by discovery time (later-discovered unknowns have
// smaller keys and are solved first). SLR is a generic local solver: upon
// termination it returns a partial ⊞-solution whose domain contains x0
// (Theorem 3.1), and with ⊟ it terminates whenever the system is monotonic
// and only finitely many unknowns are encountered (Theorem 3.2).
//
// Aborts attach a warm-restart checkpoint; see RLD for the resume contract.
func SLR[X comparable, D any](sys eqn.Pure[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, x0 X, cfg Config) (Result[X, D], error) {
	if cp, err := resumeCheckpoint[X, D](cfg, "slr", 0); err != nil {
		return Result[X, D]{Values: map[X]D{}}, err
	} else if cp != nil {
		init = cp.overlayInit(init)
	}
	s := newSLRState("slr", l, op, init, nil, cfg)
	// eval and thunk are allocated once per run and read the current frame
	// from cur; solve is reentrant (eval recurses into it for fresh
	// unknowns), so each frame saves and restores cur around its evaluation.
	var solve func(x X, drainAfter bool) error
	var cur struct {
		x       X
		rhs     eqn.RHS[X, D]
		evalErr error
	}
	eval := func(y X) D {
		if !s.inDom(y) {
			s.initVar(y)
			if cur.evalErr == nil {
				cur.evalErr = solve(y, true)
			}
		}
		s.infl[y][cur.x] = true
		return s.sigma[y]
	}
	thunk := func() D { return cur.rhs(eval) }
	solve = func(x X, drainAfter bool) error {
		if s.stable[x] {
			return nil
		}
		s.stable[x] = true
		rhs := sys(x)
		if rhs == nil {
			return nil // no equation: value stays σ₀[x]
		}
		if err := s.wd.check(s.st.Evals); err != nil {
			return err
		}
		if s.ck.due(s.st.Evals) {
			s.ck.emit(s.st.Evals, s.capture())
		}
		s.st.Evals++
		saved := cur
		cur.x, cur.rhs, cur.evalErr = x, rhs, nil
		rhsVal, attempts, ee := guardedEval(s.g, x, thunk)
		evalErr := cur.evalErr
		cur = saved
		s.st.Retries += attempts - 1
		if ee != nil {
			// The failed evaluation never happened; roll its count back.
			// Evaluations of unknowns discovered during failed attempts did
			// happen and stand.
			s.st.Evals--
			return s.wd.failEval(ee, s.st.Evals)
		}
		tmp := s.op.Apply(x, s.sigma[x], rhsVal)
		if evalErr != nil {
			return evalErr
		}
		if !s.l.Eq(tmp, s.sigma[x]) {
			s.destabilize(x)
			s.sigma[x] = tmp
			s.st.Updates++
			if drainAfter {
				return s.drain(s.key[x], solve)
			}
		}
		return nil
	}
	s.initVar(x0)
	err := solve(x0, true)
	if err == nil {
		// The paper argues Q is empty here since x0 holds the largest key;
		// drain defensively so the result is a partial solution regardless.
		err = s.drain(s.key[x0], solve)
	}
	if err != nil {
		err = attachCheckpoint(err, s.capture())
	}
	s.st.Unknowns = len(s.sigma)
	return Result[X, D]{Values: s.sigma, Stats: s.st}, err
}

// sideKey identifies the auxiliary unknown (From, To) that the paper's SLR⁺
// creates for the side effect of From's right-hand side onto To.
type sideKey[X comparable] struct{ From, To X }

// SLRPlus is the side-effecting solver of Sec. 6. Right-hand sides receive,
// besides get, a side callback contributing values to other unknowns — the
// mechanism by which context-sensitive analyses feed flow-insensitive
// globals. Each side effect (x → z) is stored in an auxiliary unknown
// (x, z); the effective right-hand side of z joins z's own equation (if
// any) with all recorded contributions before applying ⊞. Upon termination
// SLRPlus returns a partial post-solution (Theorem 4.1); with ⊟ it
// terminates for monotonic systems whenever finitely many unknowns are
// encountered (Theorem 4.2).
func SLRPlus[X comparable, D any](sys eqn.Sides[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, x0 X, cfg Config) (Result[X, D], error) {
	return SLRPlusKeyed(sys, l, op, init, x0, nil, cfg)
}

// SLRPlusKeyed is SLRPlus with a priority-band hook: unknowns with a larger
// band always receive larger keys than unknowns with a smaller band, on top
// of the discovery-time ordering within a band.
//
// The hook addresses a scheduling hazard the paper's uniform key scheme
// leaves open: an unknown z that is fed by side effects *computed from z's
// own value* (e.g. a flow-insensitive global accumulated as g = g + k) may
// be discovered during the evaluation of its own reader, giving z a smaller
// key than the reader. With ⊟, z is then always re-evaluated before the
// reader refreshes its contribution, so z narrows against a stale value,
// the reader bumps it again, and the widen/narrow phases alternate forever.
// Scheduling side-effected unknowns in a higher band (as Goblint does for
// globals) restores the invariant the termination proof of Theorem 4 needs:
// when z is re-evaluated, all of its lower-band readers are stable.
func SLRPlusKeyed[X comparable, D any](sys eqn.Sides[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, x0 X, band func(X) int, cfg Config) (Result[X, D], error) {
	if cp, err := resumeCheckpoint[X, D](cfg, "slr+", 0); err != nil {
		return Result[X, D]{Values: map[X]D{}}, err
	} else if cp != nil {
		init = cp.overlayInit(init)
	}
	s := newSLRState("slr+", l, op, init, band, cfg)
	contrib := make(map[sideKey[X]]D)
	contribSet := make(map[X][]X) // set[z]: contributors in first-seen order

	// sideErr is the shared error slot for the side callback: solving a
	// freshly discovered side-effected unknown has no error channel of its
	// own, and an abort raised there must not be dropped — if the caller
	// finishes without performing another evaluation, the solver would
	// otherwise report success on a truncated run.
	// eval, side and thunk are allocated once per run and read the current
	// frame from cur; solve is reentrant (eval and side recurse into it for
	// fresh unknowns), so each frame saves and restores cur around its
	// evaluation.
	var sideErr error
	var solve func(x X, drainAfter bool) error
	var cur struct {
		x       X
		rhs     eqn.SideRHS[X, D]
		evalErr error
	}
	side := func(z X, d D) {
		x := cur.x
		if z == x {
			// A contract violation, not an evaluation fault: the typed
			// panic passes through the recover barrier unchanged.
			panic(contractViolation{msg: "solver: SLRPlus right-hand side side-effects its own unknown"})
		}
		p := sideKey[X]{From: x, To: z}
		old, seen := contrib[p]
		if !seen {
			old = l.Bottom()
		}
		if l.Eq(d, old) {
			return
		}
		contrib[p] = d
		if !seen {
			contribSet[z] = append(contribSet[z], x)
		}
		if s.inDom(z) {
			delete(s.stable, z)
			s.q.push(z, s.key[z])
			if s.q.len() > s.st.MaxQueue {
				s.st.MaxQueue = s.q.len()
			}
		} else {
			s.initVar(z)
			if err := solve(z, true); err != nil && sideErr == nil {
				sideErr = err
			}
		}
	}
	eval := func(y X) D {
		if !s.inDom(y) {
			s.initVar(y)
			if cur.evalErr == nil {
				cur.evalErr = solve(y, true)
			}
		}
		s.infl[y][cur.x] = true
		return s.sigma[y]
	}
	thunk := func() D { return cur.rhs(eval, side) }
	solve = func(x X, drainAfter bool) error {
		if s.stable[x] {
			return nil
		}
		s.stable[x] = true
		rhs := sys(x)
		if rhs == nil && len(contribSet[x]) == 0 {
			return nil
		}
		if err := s.wd.check(s.st.Evals); err != nil {
			return err
		}
		if s.ck.due(s.st.Evals) {
			s.ck.emit(s.st.Evals, s.capture())
		}
		s.st.Evals++
		v := l.Bottom()
		var evalErr error
		if rhs != nil {
			saved := cur
			cur.x, cur.rhs, cur.evalErr = x, rhs, nil
			rhsVal, attempts, ee := guardedEval(s.g, x, thunk)
			evalErr = cur.evalErr
			cur = saved
			s.st.Retries += attempts - 1
			if ee != nil {
				// The failed evaluation never happened; roll its count back.
				// Side effects and evaluations of unknowns discovered during
				// failed attempts did happen and stand — re-running the
				// evaluation replays them idempotently.
				s.st.Evals--
				return s.wd.failEval(ee, s.st.Evals)
			}
			v = rhsVal
		}
		if evalErr != nil {
			return evalErr
		}
		if sideErr != nil {
			return sideErr
		}
		for _, z := range contribSet[x] {
			v = l.Join(v, contrib[sideKey[X]{From: z, To: x}])
		}
		tmp := s.op.Apply(x, s.sigma[x], v)
		if !s.l.Eq(tmp, s.sigma[x]) {
			s.destabilize(x)
			s.sigma[x] = tmp
			s.st.Updates++
			if drainAfter {
				return s.drain(s.key[x], solve)
			}
		}
		return nil
	}
	s.initVar(x0)
	err := solve(x0, true)
	for err == nil && !s.q.empty() {
		// Side effects may have scheduled unknowns after x0's last update;
		// keep draining until the queue is empty so the result is a partial
		// post-solution.
		err = s.drain(s.key[x0], solve)
		if err == nil && !s.q.empty() {
			err = solve(s.q.popMin(), false)
		}
	}
	if err == nil {
		// A side-callback abort can be raised on a path where the caller
		// returns without another evaluation; surface it instead of
		// reporting success on a truncated run.
		err = sideErr
	}
	if err != nil {
		err = attachCheckpoint(err, s.capture())
	}
	s.st.Unknowns = len(s.sigma)
	return Result[X, D]{Values: s.sigma, Stats: s.st}, err
}
