package solver

import (
	"errors"
	"testing"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// example1System builds the monotonic system of paper Example 1 over
// ℕ ∪ {∞}:
//
//	x1 = x2
//	x2 = x3 + 1
//	x3 = x1
func example1System() *eqn.System[string, lattice.Nat] {
	inc := func(n lattice.Nat) lattice.Nat {
		if n.IsInf() {
			return n
		}
		return lattice.NatOf(n.Val() + 1)
	}
	s := eqn.NewSystem[string, lattice.Nat]()
	s.Define("x1", []string{"x2"}, func(get func(string) lattice.Nat) lattice.Nat {
		return get("x2")
	})
	s.Define("x2", []string{"x3"}, func(get func(string) lattice.Nat) lattice.Nat {
		return inc(get("x3"))
	})
	s.Define("x3", []string{"x1"}, func(get func(string) lattice.Nat) lattice.Nat {
		return get("x1")
	})
	return s
}

// example2System builds the monotonic system of paper Example 2:
//
//	x1 = (x1+1) ⊓ (x2+1)
//	x2 = (x2+1) ⊓ (x1+1)
func example2System() *eqn.System[string, lattice.Nat] {
	inc := func(n lattice.Nat) lattice.Nat {
		if n.IsInf() {
			return n
		}
		return lattice.NatOf(n.Val() + 1)
	}
	rhs := func(self, other string) eqn.RHS[string, lattice.Nat] {
		return func(get func(string) lattice.Nat) lattice.Nat {
			return lattice.NatInf.Meet(inc(get(self)), inc(get(other)))
		}
	}
	s := eqn.NewSystem[string, lattice.Nat]()
	s.Define("x1", []string{"x1", "x2"}, rhs("x1", "x2"))
	s.Define("x2", []string{"x1", "x2"}, rhs("x2", "x1"))
	return s
}

func natWarrow() Operator[string, lattice.Nat] {
	return Op[string](Warrow[lattice.Nat](lattice.NatInf))
}

func zeroInit(string) lattice.Nat { return lattice.NatOf(0) }

// TestExample1RRDiverges: round-robin with ⊟ fails to terminate on the
// monotonic system of Example 1.
func TestExample1RRDiverges(t *testing.T) {
	sys := example1System()
	_, _, err := RR(sys, lattice.NatInf, natWarrow(), zeroInit, Config{MaxEvals: 100000})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("RR with ⊟ should diverge on Example 1, got err=%v", err)
	}
}

// TestExample2WDiverges: LIFO worklist iteration with ⊟ fails to terminate
// on the monotonic system of Example 2.
func TestExample2WDiverges(t *testing.T) {
	sys := example2System()
	_, _, err := W(sys, lattice.NatInf, natWarrow(), zeroInit, Config{MaxEvals: 100000})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("W with ⊟ should diverge on Example 2, got err=%v", err)
	}
}

// TestExample3SRRTerminates: structured round-robin with ⊟ terminates on
// the system of Example 1 and returns the post-solution (∞, ∞, ∞) shown in
// Example 3.
func TestExample3SRRTerminates(t *testing.T) {
	sys := example1System()
	sigma, st, err := SRR(sys, lattice.NatInf, natWarrow(), zeroInit, Config{MaxEvals: 100000})
	if err != nil {
		t.Fatalf("SRR diverged: %v", err)
	}
	for _, x := range sys.Order() {
		if !sigma[x].IsInf() {
			t.Errorf("σ[%s] = %s, want ∞", x, sigma[x])
		}
	}
	if _, ok := eqn.IsPostSolution(lattice.NatInf, sys, sigma, zeroInit); !ok {
		t.Error("SRR result is not a post-solution")
	}
	if st.Evals == 0 || st.Updates == 0 {
		t.Errorf("implausible stats: %+v", st)
	}
}

// TestExample4SWTerminates: structured worklist iteration with ⊟ terminates
// on the system of Example 2 and returns the post-solution (∞, ∞) shown in
// Example 4.
func TestExample4SWTerminates(t *testing.T) {
	sys := example2System()
	sigma, _, err := SW(sys, lattice.NatInf, natWarrow(), zeroInit, Config{MaxEvals: 100000})
	if err != nil {
		t.Fatalf("SW diverged: %v", err)
	}
	for _, x := range sys.Order() {
		if !sigma[x].IsInf() {
			t.Errorf("σ[%s] = %s, want ∞", x, sigma[x])
		}
	}
	if _, ok := eqn.IsPostSolution(lattice.NatInf, sys, sigma, zeroInit); !ok {
		t.Error("SW result is not a post-solution")
	}
}

// TestExample1SWAlsoTerminates: SW handles Example 1 as well.
func TestExample1SWAlsoTerminates(t *testing.T) {
	sys := example1System()
	sigma, _, err := SW(sys, lattice.NatInf, natWarrow(), zeroInit, Config{MaxEvals: 100000})
	if err != nil {
		t.Fatalf("SW diverged on Example 1: %v", err)
	}
	if _, ok := eqn.IsPostSolution(lattice.NatInf, sys, sigma, zeroInit); !ok {
		t.Error("not a post-solution")
	}
}

// TestExample2SRRAlsoTerminates: SRR handles Example 2 as well.
func TestExample2SRRAlsoTerminates(t *testing.T) {
	sys := example2System()
	sigma, _, err := SRR(sys, lattice.NatInf, natWarrow(), zeroInit, Config{MaxEvals: 100000})
	if err != nil {
		t.Fatalf("SRR diverged on Example 2: %v", err)
	}
	if _, ok := eqn.IsPostSolution(lattice.NatInf, sys, sigma, zeroInit); !ok {
		t.Error("not a post-solution")
	}
}

// TestExample5SLRInfiniteSystem: the infinite system of Example 5,
//
//	y_{2n}   = max(y_{y_{2n}}, n)
//	y_{2n+1} = y_{6n+4}
//
// has a finite partial max-solution. SLR, queried for y1, must return the
// partial solution {y0 ↦ 0, y1 ↦ 2, y2 ↦ 2, y4 ↦ 2} of Example 6.
func TestExample5SLRInfiniteSystem(t *testing.T) {
	l := lattice.NatInf
	sys := func(x uint64) eqn.RHS[uint64, lattice.Nat] {
		if x%2 == 0 {
			n := x / 2
			return func(get func(uint64) lattice.Nat) lattice.Nat {
				idx := get(x) // y_{y_{2n}}: the index is the current value
				if idx.IsInf() {
					return lattice.NatInfElem
				}
				return l.Join(get(idx.Val()), lattice.NatOf(n))
			}
		}
		n := (x - 1) / 2
		return func(get func(uint64) lattice.Nat) lattice.Nat {
			return get(6*n + 4)
		}
	}
	res, err := SLR[uint64, lattice.Nat](sys, l, Op[uint64](Join[lattice.Nat](l)),
		func(uint64) lattice.Nat { return lattice.NatOf(0) }, 1, Config{MaxEvals: 10000})
	if err != nil {
		t.Fatalf("SLR diverged: %v", err)
	}
	want := map[uint64]uint64{0: 0, 1: 2, 2: 2, 4: 2}
	if len(res.Values) != len(want) {
		t.Fatalf("dom = %v, want keys %v", res.Values, want)
	}
	for x, v := range want {
		got, ok := res.Values[x]
		if !ok || got.IsInf() || got.Val() != v {
			t.Errorf("σ[y%d] = %v, want %d", x, got, v)
		}
	}
	if x, ok := eqn.IsPartialPostSolution[uint64, lattice.Nat](l, sys, res.Values); !ok {
		t.Errorf("not a partial post-solution at y%d", x)
	}
}

// TestExample9SLRPlusGlobal reproduces the side-effecting iteration of
// Examples 7–9: three contexts contribute 0, 2 and 3 to the global g; with
// ⊟ the global first widens to [0,∞] and immediately narrows to the final
// interval [0,3].
func TestExample9SLRPlusGlobal(t *testing.T) {
	l := lattice.Ints
	type v = lattice.Interval
	sys := func(x string) eqn.SideRHS[string, v] {
		switch x {
		case "main":
			return func(get func(string) v, side func(string, v)) v {
				side("g", lattice.Singleton(0)) // int g = 0;
				_ = get("f/1")                  // f(1)
				_ = get("f/2")                  // f(2)
				return lattice.Singleton(0)     // return 0
			}
		case "f/1":
			return func(get func(string) v, side func(string, v)) v {
				side("g", lattice.Singleton(2)) // g = b+1 with b=1
				return lattice.EmptyInterval
			}
		case "f/2":
			return func(get func(string) v, side func(string, v)) v {
				side("g", lattice.Singleton(3)) // g = b+1 with b=2
				return lattice.EmptyInterval
			}
		default:
			return nil // the global g has no equation of its own
		}
	}
	res, err := SLRPlus[string, v](sys, l, Op[string](Warrow[v](l)),
		func(string) v { return lattice.EmptyInterval }, "main", Config{MaxEvals: 10000})
	if err != nil {
		t.Fatalf("SLR⁺ diverged: %v", err)
	}
	g := res.Values["g"]
	if !l.Eq(g, lattice.Range(0, 3)) {
		t.Errorf("σ[g] = %s, want [0,3]", g)
	}
}

// TestSLRPlusWideningOnlyLosesPrecision: the same system solved with plain
// ∇ (no narrowing) must leave g at [0,∞], demonstrating what ⊟ recovers.
func TestSLRPlusWideningOnlyLosesPrecision(t *testing.T) {
	l := lattice.Ints
	type v = lattice.Interval
	sys := func(x string) eqn.SideRHS[string, v] {
		switch x {
		case "main":
			return func(get func(string) v, side func(string, v)) v {
				side("g", lattice.Singleton(0))
				_ = get("f/1")
				_ = get("f/2")
				return lattice.Singleton(0)
			}
		case "f/1":
			return func(_ func(string) v, side func(string, v)) v {
				side("g", lattice.Singleton(2))
				return lattice.EmptyInterval
			}
		case "f/2":
			return func(_ func(string) v, side func(string, v)) v {
				side("g", lattice.Singleton(3))
				return lattice.EmptyInterval
			}
		default:
			return nil
		}
	}
	res, err := SLRPlus[string, v](sys, l, Op[string](Widen[v](l)),
		func(string) v { return lattice.EmptyInterval }, "main", Config{MaxEvals: 10000})
	if err != nil {
		t.Fatalf("SLR⁺ diverged: %v", err)
	}
	g := res.Values["g"]
	if !l.Eq(g, lattice.NewInterval(lattice.Fin(0), lattice.PosInf)) {
		t.Errorf("σ[g] = %s, want [0,+inf]", g)
	}
}
