package solver

// Strongly connected components and scheduling strata of a static
// dependence graph, the decomposition behind the parallel solver PSW.
//
// The graph is given in index space (see eqn.System.DepGraph): vertex i is
// the i-th unknown of the linear order, and an edge i → j means the
// right-hand side of i may read j. Condensing the graph into SCCs yields a
// DAG; PSW solves whole components to stabilization and lets incomparable
// components run concurrently.

// tarjanSCC condenses the graph into strongly connected components using an
// iterative Tarjan traversal (the systems reach hundreds of thousands of
// unknowns, so recursion depth must not scale with graph size). It returns
// the component id of every vertex and the number of components. Ids number
// the components in reverse topological order of the condensation: for every
// edge i → j with comp[i] ≠ comp[j], comp[j] < comp[i] — so processing
// components in increasing id order visits every dependence before its
// reader.
func tarjanSCC(adj [][]int) (comp []int, ncomp int) {
	n := len(adj)
	comp = make([]int, n)
	low := make([]int, n)
	num := make([]int, n)
	onStack := make([]bool, n)
	for i := range comp {
		comp[i] = -1
		num[i] = -1
	}
	stack := make([]int, 0, n)
	// The DFS frame keeps the vertex and the index of the next out-edge to
	// explore, replacing the recursive call stack.
	type frame struct{ v, ei int }
	var frames []frame
	counter := 0
	for root := 0; root < n; root++ {
		if num[root] >= 0 {
			continue
		}
		frames = append(frames[:0], frame{root, 0})
		num[root], low[root] = counter, counter
		counter++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			if f.ei < len(adj[v]) {
				w := adj[v][f.ei]
				f.ei++
				if num[w] < 0 {
					num[w], low[w] = counter, counter
					counter++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && num[w] < low[v] {
					low[v] = num[w]
				}
				continue
			}
			// v is fully explored: pop its component if it is a root.
			if low[v] == num[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = ncomp
					if w == v {
						break
					}
				}
				ncomp++
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
	return comp, ncomp
}

// sccDepths returns, per component, its depth in the condensation DAG: 1
// for components without cross-component dependences, otherwise one more
// than the deepest component they read. Component ids are in reverse
// topological order (tarjanSCC), so a single increasing sweep suffices.
func sccDepths(adj [][]int, comp []int, ncomp int) []int {
	depth := make([]int, ncomp)
	for c := range depth {
		depth[c] = 1
	}
	// Visit vertices grouped by component in increasing id order.
	byComp := make([][]int, ncomp)
	for v, c := range comp {
		byComp[c] = append(byComp[c], v)
	}
	for c := 0; c < ncomp; c++ {
		for _, v := range byComp[c] {
			for _, w := range adj[v] {
				if d := comp[w]; d != c && depth[d]+1 > depth[c] {
					depth[c] = depth[d] + 1
				}
			}
		}
	}
	return depth
}

// stratum is a contiguous interval [lo, hi] of the linear order that PSW
// solves as one sequential unit.
type stratum struct{ lo, hi int }

// stratify partitions the index line 0..n-1 into the minimal contiguous
// intervals such that no dependence crosses a boundary forwards: for every
// edge i → j, either j < lo(i)'s stratum start (a backward read of an
// earlier stratum) or j lies in the same stratum as i.
//
// Every SCC ends up inside a single stratum (a cycle over indices induces a
// chain of forward edges covering its whole index span), so strata are
// unions of SCCs. When the linear order is topologically consistent with
// the condensation — as for Bourdoncle/WTO orders — each stratum is exactly
// one SCC; for arbitrary definition orders, forward cross-SCC reads coarsen
// strata until sequential-equivalence holds (see psw.go for why this makes
// PSW bit-identical to SW).
func stratify(adj [][]int) []stratum {
	n := len(adj)
	var out []stratum
	for start := 0; start < n; {
		end := start
		for i := start; i <= end; i++ {
			for _, j := range adj[i] {
				if j > end {
					end = j
				}
			}
		}
		out = append(out, stratum{start, end})
		start = end + 1
	}
	return out
}
