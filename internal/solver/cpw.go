package solver

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// CPW is the chaotic parallel warrowing solver: PSW's SCC stratification
// with the sequential per-stratum SW loop replaced by N asynchronous
// workers iterating the SAME stratum concurrently. It exists for the regime
// PSW cannot touch — one giant SCC is one stratum, so stratum-level
// parallelism degenerates to a serial run no matter how many workers the
// pool has (ROADMAP, "Million-unknown interprocedural scale").
//
// The license for chaotic order is the paper's central result: the ⊟
// (warrowing) combination of ∇ and Δ makes fixpoint iteration terminate for
// arbitrary — even non-monotonic — systems regardless of the order in which
// unknowns are updated. CPW leans on exactly that robustness: within a
// stratum, workers claim dirty unknowns from a sharded worklist in whatever
// order the scheduler produces, every write goes through the update
// operator at that unknown, and iteration runs until the stratum-wide dirty
// count drains.
//
// Concurrency discipline, bottom to top:
//
//   - Claim states. Each unknown carries an atomic state — idle, queued,
//     running, runningDirty — and only the transition queued→running admits
//     evaluation, so two workers NEVER evaluate the same unknown
//     concurrently. An unknown marked dirty mid-evaluation moves to
//     runningDirty (counted in Stats.Contention) and is re-queued by its
//     owner when the evaluation completes, which closes the lost-wakeup
//     window: under Go's sequentially-consistent atomics, a marker that
//     finds the state queued or running has its value-write ordered before
//     the next evaluation's reads, and a marker that finds idle re-queues
//     the unknown itself.
//   - σ reads are racy but atomic. Values live in atomic slots (boxed: an
//     atomic pointer to an immutable value; unboxed: atomic words under a
//     per-unknown seqlock for multi-word strides, see atomicWords). A
//     worker may read a neighbor mid-update and see the OLD value — that is
//     the chaos warrowing tolerates — but never a torn one.
//   - Writes are owned. Only the running claim-holder stores to a slot, so
//     the read-combine-write in the step function needs no CAS loop.
//
// What CPW promises — and deliberately does not. The assignment it returns
// is certified-quality (post-solution checking via internal/certify is the
// gate everywhere in this repo: diffsolve column, chaos harness, serving
// tier), but it is NOT bit-pinned to SW: with chaotic scheduling the
// warrowing trajectory, and with it Evals, Updates, MaxQueue and even the
// final fixpoint on non-monotonic systems, are schedule-dependent. Callers
// that need SW's exact numbers use SW or PSW; callers that need a certified
// solution at intra-SCC parallel speed use CPW. DESIGN.md §15 spells out
// the full claim ladder.
//
// Termination inherits SW's posture, not its theorem: per-unknown warrowing
// still forces every individual trajectory through a widening ascent and a
// narrowing descent, but the bounded-flip argument is per schedule, so CPW
// runs under the same watchdog/budget envelope as every other solver and
// aborts with a resumable checkpoint rather than diverging silently.
//
// Aborts quiesce-and-drain: every worker stops at its next scheduling
// point, the pool joins, and the still-dirty indices of the aborted stratum
// are captured into a warm checkpoint (solver name "cpw") in the same
// per-stratum format PSW uses — which is what lets eqsolved preempt a CPW
// solve on its quantum and resume it later, on any core. Because totals are
// schedule-dependent, a resumed run reproduces a certified solution, not
// the uninterrupted run's exact Stats.
//
// Like PSW, the update operator is shared by all workers and must be safe
// for concurrent use with Workers > 1: stateless operators (Op, WarrowOp
// and the other structured operators) are; the stateful Degrading operator
// is not and requires Workers == 1.
func CPW[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	start := time.Now()
	en, wd := buildCPWEngine(sys, l, op, init, cfg)
	sh := en.shape()
	n := len(sh.order)
	adj := sys.DepGraph()
	comp, ncomp := tarjanSCC(adj)
	strata := stratify(adj)

	workers := cfg.workers()

	r := &cpwRun[X, D]{
		en:          en,
		sh:          sh,
		budget:      int64(cfg.budget()),
		wd:          wd,
		state:       make([]atomic.Uint32, n),
		workerEvals: make([]int64, workers),
	}

	var st Stats
	st.Unknowns = n

	// done[si] is true for strata that stabilized — in a previous run (per
	// the resume checkpoint) or in this one. initQ[si], when non-nil, is the
	// queue a suspended stratum restarts from instead of its full range.
	done := make([]bool, len(strata))
	initQ := make([][]int, len(strata))
	if cp, err := resumeCheckpoint[X, D](cfg, "cpw", Fingerprint(sys)); err != nil {
		return map[X]D{}, st, err
	} else if cp != nil {
		if len(cp.Strata) != len(strata) {
			return map[X]D{}, st, fmt.Errorf("%w: checkpoint has %d strata, system has %d", ErrBadCheckpoint, len(cp.Strata), len(strata))
		}
		en.restore(cp)
		for si, sc := range cp.Strata {
			switch {
			case sc.Done:
				done[si] = true
			case sc.Started:
				for _, i := range sc.Queue {
					if i < strata[si].lo || i > strata[si].hi {
						return map[X]D{}, st, fmt.Errorf("%w: queued index %d outside stratum %d", ErrBadCheckpoint, i, si)
					}
				}
				if len(sc.Queue) == 0 {
					done[si] = true
				} else {
					initQ[si] = sc.Queue
				}
			}
		}
		r.evals.Store(int64(cp.Evals))
		r.updates.Store(int64(cp.Updates))
		r.maxQueue.Store(int64(cp.MaxQueue))
		r.retries.Store(int64(cp.Retries))
		st.Rounds = cp.Rounds
	}

	st.Workers = workers
	st.SCCs = ncomp
	st.Strata = len(strata)
	sizes := make([]int, ncomp)
	for _, c := range comp {
		sizes[c]++
	}
	for _, sz := range sizes {
		st.SCCSize.Observe(sz)
	}
	for _, d := range sccDepths(adj, comp, ncomp) {
		st.SCCDepth.Observe(d)
	}

	// Strata are solved one after another in index order — stratify
	// guarantees every dependence stays inside a stratum or reads a
	// strictly earlier one, so index order is a topological order of the
	// stratum DAG. CPW's parallelism is deliberately INTRA-stratum only:
	// the workloads it targets are dominated by one giant SCC, where
	// PSW-style stratum-level concurrency has nothing to schedule. On an
	// abort the loop stops and later strata stay fresh (zero-value rows in
	// the checkpoint), exactly like PSW strata that were never dispatched.
	susp := make([][]int, len(strata))
	var firstErr error
	for si := range strata {
		if done[si] {
			continue
		}
		suspended, err := r.runStratum(strata[si], initQ[si], workers)
		if err != nil {
			firstErr = err
			susp[si] = suspended
			break
		}
		done[si] = true
	}

	st.Evals = int(r.evals.Load())
	if firstErr != nil && int64(st.Evals) > r.budget {
		// Several workers can trip the shared budget at once; report the
		// budget itself, matching SW's "stopped at exactly MaxEvals".
		st.Evals = int(r.budget)
	}
	st.Updates = int(r.updates.Load())
	st.Retries = int(r.retries.Load())
	st.MaxQueue = int(r.maxQueue.Load())
	st.Contention = int(r.contention.Load())
	for _, we := range r.workerEvals {
		st.WorkerEvals.Observe(int(we))
	}
	st.WallNs = time.Since(start).Nanoseconds()

	sigma := en.sigmaMap()
	if firstErr != nil {
		cp := en.snapshot("cpw", st)
		cp.Strata = make([]StratumCheckpoint, len(strata))
		for si := range strata {
			switch {
			case done[si]:
				cp.Strata[si] = StratumCheckpoint{Done: true}
			case susp[si] != nil:
				cp.Strata[si] = StratumCheckpoint{Started: true, Queue: susp[si]}
			}
		}
		firstErr = attachCheckpoint(firstErr, cp)
	}
	return sigma, st, firstErr
}

// Claim states of one unknown. Only queued→running admits evaluation;
// running→runningDirty is the dirty-while-running collision markDirty
// resolves by making the owner re-queue.
const (
	cpwIdle uint32 = iota
	cpwQueued
	cpwRunning
	cpwRunningDirty
)

// cpwRun is the shared state of one CPW invocation.
type cpwRun[X comparable, D any] struct {
	en cpwEngine[X, D]
	sh *denseShape[X, D]

	budget int64
	wd     *watchdog[X]

	// state holds the per-unknown claim machine; pending counts unknowns
	// whose state is not idle and is the stratum-wide termination criterion
	// (the dirty count that must drain).
	state   []atomic.Uint32
	pending atomic.Int64

	evals      atomic.Int64
	updates    atomic.Int64
	retries    atomic.Int64
	maxQueue   atomic.Int64
	contention atomic.Int64
	abort      atomic.Bool

	// workerEvals accumulates per-worker evaluation counts across the
	// sequentially-run strata; only worker w's goroutine writes slot w.
	workerEvals []int64

	errMu    sync.Mutex
	firstErr error
}

// fail records the first abort error and raises the abort flag every worker
// polls at its next scheduling point.
func (r *cpwRun[X, D]) fail(err error) {
	r.errMu.Lock()
	if r.firstErr == nil {
		r.firstErr = err
	}
	r.errMu.Unlock()
	r.abort.Store(true)
}

// runStratum iterates one stratum chaotically to quiescence with a pool of
// workers. It returns the indices still dirty if the run was interrupted
// (never nil on error — quiesce-and-drain collects them after the pool
// joins) and the abort error, if any.
func (r *cpwRun[X, D]) runStratum(s stratum, initQ []int, workers int) ([]int, error) {
	size := s.hi - s.lo + 1
	if workers > size {
		workers = size
	}
	sq := newShardQueue(s.lo, s.hi, workers)
	seeded := 0
	seed := func(i int) {
		r.state[i].Store(cpwQueued)
		sq.push(i)
		seeded++
	}
	if initQ == nil {
		for i := s.lo; i <= s.hi; i++ {
			seed(i)
		}
	} else {
		for _, i := range initQ {
			seed(i)
		}
	}
	r.pending.Store(int64(seeded))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r.work(w, s, sq)
		}(w)
	}
	wg.Wait()

	// Per-stratum MaxQueue contribution: the maximum over shard high-water
	// marks (see shardQueue — the sum would re-count the stratum), merged
	// across strata by maximum like PSW's per-stratum queues.
	localMax := int64(sq.maxShardHigh())
	for {
		cur := r.maxQueue.Load()
		if localMax <= cur || r.maxQueue.CompareAndSwap(cur, localMax) {
			break
		}
	}

	r.errMu.Lock()
	err := r.firstErr
	r.errMu.Unlock()
	if err == nil {
		return nil, nil
	}
	// Quiesce-and-drain: the pool has joined, every in-flight evaluation
	// has settled its claim, so the non-idle states ARE the dirty set the
	// resumed run must re-iterate.
	suspended := make([]int, 0)
	for i := s.lo; i <= s.hi; i++ {
		if r.state[i].Load() != cpwIdle {
			suspended = append(suspended, i)
		}
	}
	return suspended, err
}

// work is one worker's loop: claim a dirty unknown, evaluate it under the
// budget/watchdog envelope, propagate the change, settle the claim; exit
// when the stratum's dirty count drains or the run aborts.
func (r *cpwRun[X, D]) work(w int, s stratum, sq *shardQueue) {
	step := r.en.stepper()
	local := int64(0)
	defer func() { r.workerEvals[w] += local }()
	for {
		if r.abort.Load() {
			return
		}
		if r.pending.Load() == 0 {
			return
		}
		i, ok := sq.pop(w)
		if !ok {
			// pending > 0 but nothing poppable: some claim is mid-flight on
			// another worker. Yield rather than spin hot.
			runtime.Gosched()
			continue
		}
		r.state[i].Store(cpwRunning)

		n := r.evals.Add(1)
		if n > r.budget {
			// A bounded budget implies an armed watchdog; report the budget
			// value itself, matching SW's "stopped at exactly MaxEvals" even
			// when several workers trip the shared counter at once.
			r.requeue(i, sq)
			r.fail(r.wd.abort(AbortBudget, int(r.budget)))
			return
		}
		if err := r.wd.check(int(n - 1)); err != nil {
			// The reserved slot was never used — undo it so Stats.Evals
			// counts performed evaluations only.
			r.evals.Add(-1)
			r.requeue(i, sq)
			r.fail(err)
			return
		}
		changed, attempts, ee := step(i)
		if attempts > 1 {
			r.retries.Add(int64(attempts - 1))
		}
		if ee != nil {
			// The failed evaluation never happened: roll the reservation back
			// and keep i dirty so the checkpoint re-evaluates it.
			r.evals.Add(-1)
			r.requeue(i, sq)
			r.fail(r.wd.failEval(ee, int(n-1)))
			return
		}
		local++
		if changed {
			r.updates.Add(1)
			for _, j := range r.sh.infl(i) {
				if int(j) >= s.lo && int(j) <= s.hi && int(j) != i {
					r.markDirty(int(j), sq)
				}
			}
			// Re-queue i itself, like SW: an unknown's final evaluation must
			// be a stable one, or certification of its slot would hinge on a
			// neighbor happening to re-dirty it.
			r.requeue(i, sq)
			continue
		}
		if !r.state[i].CompareAndSwap(cpwRunning, cpwIdle) {
			// Marked dirty mid-evaluation (runningDirty): the marker's write
			// may not have been visible to the evaluation just performed, so
			// the owner re-queues on its behalf.
			r.requeue(i, sq)
			continue
		}
		r.pending.Add(-1)
	}
}

// requeue moves an unknown the caller holds the running claim on (or just
// seeded) back to queued and stacks it. pending is NOT incremented: the
// unknown never left the dirty set.
func (r *cpwRun[X, D]) requeue(i int, sq *shardQueue) {
	r.state[i].Store(cpwQueued)
	sq.push(i)
}

// markDirty is the propagation edge of the claim machine: called by the
// writer of a changed value for each in-stratum reader j. Every
// interleaving either queues j or defers to a claim-holder that will:
// idle→queued queues it here (pending grows); queued means it is already
// stacked and its next evaluation is ordered after our write; running flips
// to runningDirty so the owner re-queues it; runningDirty needs nothing.
func (r *cpwRun[X, D]) markDirty(j int, sq *shardQueue) {
	for {
		switch r.state[j].Load() {
		case cpwIdle:
			if r.state[j].CompareAndSwap(cpwIdle, cpwQueued) {
				r.pending.Add(1)
				sq.push(j)
				return
			}
		case cpwQueued:
			return
		case cpwRunning:
			if r.state[j].CompareAndSwap(cpwRunning, cpwRunningDirty) {
				r.contention.Add(1)
				return
			}
		default: // cpwRunningDirty
			return
		}
	}
}

// cpwEngine is execCore's concurrency-safe sibling: same boundary surface,
// but stepper() may be called once per worker and the steppers run
// concurrently against the shared atomic value store.
type cpwEngine[X comparable, D any] interface {
	shape() *denseShape[X, D]
	stepper() func(i int) (changed bool, attempts int, ee *EvalError)
	sigmaMap() map[X]D
	snapshot(name string, st Stats) *Checkpoint[X, D]
	restore(cp *Checkpoint[X, D])
}

// buildCPWEngine mirrors buildCore's selection: the atomic-word engine when
// the core choice allows it, the operator is structured, the lattice has a
// raw encoding and the initial assignment encodes cleanly; the
// atomic-pointer boxed engine otherwise. Value stores are NOT pooled —
// unlike the sequential cores the slots are atomic types, and recycling
// them across solves would thread one solve's happens-before edges into the
// next for no measurable win.
func buildCPWEngine[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (cpwEngine[X, D], *watchdog[X]) {
	if cfg.Core != CoreDense {
		if ro, ok := op.(rawOperator[D]); ok {
			if raw := lattice.AsRaw[D](l); raw != nil {
				if en, ok := tryCPWRaw(sys, raw, init); ok {
					wd := newWatchdog(cfg, en.sh.idx)
					en.op = ro
					en.wd = wd
					en.g = newEvalGuard(cfg)
					return en, wd
				}
			}
		}
	}
	sh := sys.ShapeMemo(denseShapeKey, func() any { return buildDenseShape(sys) }).(*denseShape[X, D])
	wd := newWatchdog(cfg, sh.idx)
	bc := &cpwBoxed[X, D]{
		sh:   sh,
		sys:  sys,
		init: init,
		l:    l,
		op:   instrument(wd, l, op),
		g:    newEvalGuard(cfg),
		vals: make([]atomic.Pointer[D], len(sh.order)),
	}
	for i, x := range sh.order {
		v := init(x)
		bc.vals[i].Store(&v)
	}
	return bc, wd
}

// cpwBoxed is the boxed chaotic engine: each slot is an atomic pointer to
// an immutable value, so readers either see the old value or the new one,
// never a mix — publication is the pointer swap.
type cpwBoxed[X comparable, D any] struct {
	sh   *denseShape[X, D]
	sys  *eqn.System[X, D]
	init func(X) D
	l    lattice.Lattice[D]
	// op is the instrumented operator: the watchdog's phase hook is already
	// attached (its observation path is mutex-guarded, so concurrent Apply
	// calls are safe, as in PSW).
	op   Operator[X, D]
	g    *evalGuard
	vals []atomic.Pointer[D]
}

func (bc *cpwBoxed[X, D]) shape() *denseShape[X, D] { return bc.sh }

// stepper builds one worker's step function. The closure scratch (cur) is
// per-worker; the shared assignment is touched only through atomic loads
// and the claim-holder's final store.
func (bc *cpwBoxed[X, D]) stepper() func(i int) (bool, int, *EvalError) {
	cur := 0
	var get func(X) D
	if bc.sh.identInt {
		n := len(bc.sh.order)
		initInt := any(bc.init).(func(int) D)
		get = any(func(y int) D {
			if uint(y) < uint(n) {
				return *bc.vals[y].Load()
			}
			return initInt(y)
		}).(func(X) D)
	} else {
		get = func(y X) D {
			if j, ok := bc.sh.idx[y]; ok {
				return *bc.vals[j].Load()
			}
			return bc.init(y)
		}
	}
	thunk := func() D { return bc.sh.rhs[cur](get) }
	return func(i int) (bool, int, *EvalError) {
		cur = i
		x := bc.sh.order[i]
		rhsVal, attempts, ee := guardedEval(bc.g, x, thunk)
		if ee != nil {
			return false, attempts, ee
		}
		old := *bc.vals[i].Load()
		next := bc.op.Apply(x, old, rhsVal)
		if bc.l.Eq(old, next) {
			return false, attempts, nil
		}
		p := new(D)
		*p = next
		bc.vals[i].Store(p)
		return true, attempts, nil
	}
}

func (bc *cpwBoxed[X, D]) sigmaMap() map[X]D {
	sigma := make(map[X]D, len(bc.sh.order))
	for i, x := range bc.sh.order {
		sigma[x] = *bc.vals[i].Load()
	}
	return sigma
}

func (bc *cpwBoxed[X, D]) snapshot(name string, st Stats) *Checkpoint[X, D] {
	cp := &Checkpoint[X, D]{Solver: name, SysFP: Fingerprint(bc.sys)}
	cp.Evals, cp.Updates, cp.Rounds, cp.MaxQueue, cp.Retries =
		st.Evals, st.Updates, st.Rounds, st.MaxQueue, st.Retries
	cp.Sigma = make([]CheckpointEntry[X, D], len(bc.sh.order))
	for i, x := range bc.sh.order {
		cp.Sigma[i] = CheckpointEntry[X, D]{X: x, V: *bc.vals[i].Load()}
	}
	return cp
}

func (bc *cpwBoxed[X, D]) restore(cp *Checkpoint[X, D]) {
	for _, e := range cp.Sigma {
		if j, ok := bc.sh.idx[e.X]; ok {
			v := e.V
			bc.vals[j].Store(&v)
		}
	}
}

// cpwRaw is the unboxed chaotic engine: rawCompiled's flat word layout with
// every access routed through atomicWords (plain atomic words for
// single-word strides, per-unknown seqlocks above that).
type cpwRaw[X comparable, D any] struct {
	sh   *denseShape[X, D]
	sys  *eqn.System[X, D]
	init func(X) D
	raw  lattice.Raw[D]
	st   *atomicWords
	op   rawOperator[D]
	wd   *watchdog[X]
	g    *evalGuard
}

// tryCPWRaw builds the atomic word store with the encode panic converted
// into a fallback signal, exactly like tryRawCompile.
func tryCPWRaw[X comparable, D any](sys *eqn.System[X, D], raw lattice.Raw[D], init func(X) D) (en *cpwRaw[X, D], ok bool) {
	defer func() {
		if r := recover(); r != nil {
			en, ok = nil, false
		}
	}()
	sh := sys.ShapeMemo(denseShapeKey, func() any { return buildDenseShape(sys) }).(*denseShape[X, D])
	stride := raw.RawWords()
	st := newAtomicWords(len(sh.order), stride)
	tmp := make([]uint64, stride)
	for i, x := range sh.order {
		raw.RawEncode(tmp, init(x))
		st.store(i, tmp)
	}
	return &cpwRaw[X, D]{sh: sh, sys: sys, init: init, raw: raw, st: st}, true
}

func (rc *cpwRaw[X, D]) shape() *denseShape[X, D] { return rc.sh }

// stepper builds one worker's step function over the atomic word store. All
// buffers are per-worker scratch; unlike rawCore's evaluator, getRaw cannot
// hand out live word slices (another worker may be mid-store), so every
// in-system read snapshots into readBuf — the fused right-hand sides'
// consume-before-next-get contract makes one buffer enough.
func (rc *cpwRaw[X, D]) stepper() func(i int) (bool, int, *EvalError) {
	stride := rc.st.stride
	raw := rc.raw
	cur := 0
	newv := make([]uint64, stride)
	readBuf := make([]uint64, stride)
	ext := make([]uint64, stride)
	oldBuf := make([]uint64, stride)
	res := make([]uint64, stride)

	var getRaw func(X) []uint64
	if rc.sh.identInt {
		n := len(rc.sh.order)
		initInt := any(rc.init).(func(int) D)
		getRaw = any(func(y int) []uint64 {
			if uint(y) < uint(n) {
				rc.st.load(y, readBuf)
				return readBuf
			}
			raw.RawEncode(ext, initInt(y))
			return ext
		}).(func(X) []uint64)
	} else {
		getRaw = func(y X) []uint64 {
			if j, ok := rc.sh.idx[y]; ok {
				rc.st.load(j, readBuf)
				return readBuf
			}
			raw.RawEncode(ext, rc.init(y))
			return ext
		}
	}
	getBoxed := func(y X) D {
		if j, ok := rc.sh.idx[y]; ok {
			rc.st.load(j, readBuf)
			return raw.RawDecode(readBuf)
		}
		return rc.init(y)
	}
	thunk := func() struct{} {
		if rf := rc.sh.rawRHS[cur]; rf != nil {
			rf(getRaw, newv)
		} else {
			raw.RawEncode(newv, rc.sh.rhs[cur](getBoxed))
		}
		return struct{}{}
	}
	return func(i int) (bool, int, *EvalError) {
		cur = i
		x := rc.sh.order[i]
		_, attempts, ee := guardedEval(rc.g, x, thunk)
		if ee != nil {
			return false, attempts, ee
		}
		// The caller holds the running claim on i, so this load observes
		// the slot's settled value: nobody else may store to it.
		rc.st.load(i, oldBuf)
		if rc.wd != nil {
			rc.wd.observe(x, rawPhase(raw, oldBuf, newv))
		}
		rc.op.rawApply(raw, res, oldBuf, newv)
		if raw.RawEq(oldBuf, res) {
			return false, attempts, nil
		}
		rc.st.store(i, res)
		return true, attempts, nil
	}
}

func (rc *cpwRaw[X, D]) sigmaMap() map[X]D {
	stride := rc.st.stride
	buf := make([]uint64, stride)
	sigma := make(map[X]D, len(rc.sh.order))
	for i, x := range rc.sh.order {
		rc.st.load(i, buf)
		sigma[x] = rc.raw.RawDecode(buf)
	}
	return sigma
}

func (rc *cpwRaw[X, D]) snapshot(name string, st Stats) *Checkpoint[X, D] {
	stride := rc.st.stride
	buf := make([]uint64, stride)
	cp := &Checkpoint[X, D]{Solver: name, SysFP: Fingerprint(rc.sys)}
	cp.Evals, cp.Updates, cp.Rounds, cp.MaxQueue, cp.Retries =
		st.Evals, st.Updates, st.Rounds, st.MaxQueue, st.Retries
	cp.Sigma = make([]CheckpointEntry[X, D], len(rc.sh.order))
	for i, x := range rc.sh.order {
		rc.st.load(i, buf)
		cp.Sigma[i] = CheckpointEntry[X, D]{X: x, V: rc.raw.RawDecode(buf)}
	}
	return cp
}

func (rc *cpwRaw[X, D]) restore(cp *Checkpoint[X, D]) {
	stride := rc.st.stride
	buf := make([]uint64, stride)
	for _, e := range cp.Sigma {
		if j, ok := rc.sh.idx[e.X]; ok {
			rc.raw.RawEncode(buf, e.V)
			rc.st.store(j, buf)
		}
	}
}
