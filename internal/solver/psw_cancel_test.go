package solver

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// gatedSystem builds a system whose "gate" unknown calls block() on every
// evaluation: a handful of terminating counting loops plus a gate self-loop
// that stabilizes at [0,0] after two evaluations. With a blocking hook the
// gate holds its stratum open deterministically, so a test can cancel the
// solve mid-stratum from outside; with a no-op hook the system terminates
// and its solution certifies.
func gatedSystem(block func()) *eqn.System[string, iv] {
	l := lattice.Ints
	sys := eqn.NewSystem[string, iv]()
	for c := 0; c < 3; c++ {
		h, b := fmt.Sprintf("h%d", c), fmt.Sprintf("b%d", c)
		sys.Define(h, []string{b}, func(get func(string) iv) iv {
			return l.Join(lattice.Singleton(0), get(b).Add(lattice.Singleton(1)))
		})
		sys.Define(b, []string{h}, func(get func(string) iv) iv {
			return get(h).RestrictLt(lattice.Singleton(100))
		})
	}
	sys.Define("gate", []string{"gate"}, func(get func(string) iv) iv {
		block()
		if get("gate").IsEmpty() {
			return lattice.Singleton(0)
		}
		return get("gate")
	})
	return sys
}

// TestPSWCancellationMidStratum cancels a PSW solve from an external
// goroutine while a worker is provably inside a stratum (blocked in the
// gate's right-hand side), for every tier-1 worker count. The solve must
// return an AbortCancel report with its partial assignment, the worker pool
// must shut down without leaking goroutines, and rerunning the identical
// workload without cancellation must produce a certified post-solution.
func TestPSWCancellationMidStratum(t *testing.T) {
	l := lattice.Ints
	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			before := runtime.NumGoroutine()
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			entered := make(chan struct{})
			firstEntry := true
			sys := gatedSystem(func() {
				// The gate is confined to one stratum worker, so no lock is
				// needed; signal the first entry, then hold the stratum open
				// until the external cancel arrives.
				if firstEntry {
					firstEntry = false
					close(entered)
				}
				<-ctx.Done()
			})
			go func() {
				<-entered
				cancel()
			}()
			sigma, _, err := PSW(sys, l, Op[string](Warrow[iv](l)), ivInit,
				Config{Workers: workers, Ctx: ctx})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want cancellation", err)
			}
			rep, ok := ReportOf(err)
			if !ok || rep.Reason != AbortCancel {
				t.Fatalf("report = %+v (ok=%v), want reason cancel", rep, ok)
			}
			if sigma == nil {
				t.Fatal("cancelled solve returned nil assignment, want the partial state")
			}

			// The pool must wind down: poll until the goroutine count returns
			// to the pre-solve level (the canceller goroutine exits with us).
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before {
				t.Fatalf("goroutine leak after cancellation: %d running, %d before the solve", n, before)
			}

			// The identical workload without cancellation terminates and
			// certifies — graceful degradation is recoverable.
			clean := gatedSystem(func() {})
			full, _, err := PSW(clean, l, Op[string](Warrow[iv](l)), ivInit, Config{Workers: workers})
			if err != nil {
				t.Fatalf("rerun without cancellation failed: %v", err)
			}
			if _, ok := eqn.IsPostSolution(l, clean, full, ivInit); !ok {
				t.Fatal("rerun result is not a post-solution")
			}
		})
	}
}

// TestPSWDeadlineMidStratum: the wall-clock bound takes the same controlled
// shutdown path as cancellation — workers drain, the report says deadline,
// and the error matches context.DeadlineExceeded.
func TestPSWDeadlineMidStratum(t *testing.T) {
	l := lattice.Ints
	sys := oscillatorFarm(4)
	for _, workers := range []int{1, 4} {
		_, st, err := PSW(sys, l, Op[string](Warrow[iv](l)), ivInit,
			Config{Workers: workers, Timeout: 5 * time.Millisecond})
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("workers=%d: err = %v, want deadline abort", workers, err)
		}
		rep, ok := ReportOf(err)
		if !ok || rep.Reason != AbortDeadline {
			t.Fatalf("workers=%d: report = %+v (ok=%v), want reason deadline", workers, rep, ok)
		}
		// The report snapshots the counter at the abort; concurrent workers
		// may legitimately finish evaluations after it, never fewer.
		if rep.Evals > st.Evals {
			t.Errorf("workers=%d: report Evals = %d exceeds stats %d", workers, rep.Evals, st.Evals)
		}
		if workers == 1 && rep.Evals != st.Evals {
			t.Errorf("workers=1: report Evals = %d, stats %d, want exact agreement", rep.Evals, st.Evals)
		}
	}
}
