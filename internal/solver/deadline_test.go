package solver

import (
	"context"
	"errors"
	"testing"
	"time"

	"warrow/internal/lattice"
)

// TestDeadlineBoundAttribution is the regression test for the
// Config.Timeout vs. Ctx-deadline interplay: when both are set, the
// effective deadline is the minimum of the two, and the AbortReport says
// which bound fired. Both orderings are exercised across every solver entry
// point (global, structured, parallel, widening-point and local families
// via allSolvers).
func TestDeadlineBoundAttribution(t *testing.T) {
	orderings := []struct {
		name      string
		cfg       func() (Config, context.CancelFunc)
		wantBound string
	}{
		{
			// Timeout is the minimum: a nanosecond wall bound under a
			// far-future ctx deadline must fire as "timeout", not wait for
			// the context.
			name: "timeout-below-ctx",
			cfg: func() (Config, context.CancelFunc) {
				ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(time.Hour))
				return Config{Ctx: ctx, Timeout: time.Nanosecond}, cancel
			},
			wantBound: "timeout",
		},
		{
			// Ctx deadline is the minimum: an already-expired ctx deadline
			// under a far-future Timeout must fire as "ctx" — before the fix
			// the larger Timeout masked nothing (the ctx poll caught it), but
			// the report could not say which bound was binding.
			name: "ctx-below-timeout",
			cfg: func() (Config, context.CancelFunc) {
				ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
				return Config{Ctx: ctx, Timeout: time.Hour}, cancel
			},
			wantBound: "ctx",
		},
	}
	for _, ord := range orderings {
		t.Run(ord.name, func(t *testing.T) {
			for name, solve := range allSolvers() {
				t.Run(name, func(t *testing.T) {
					cfg, cancel := ord.cfg()
					defer cancel()
					sigma, err := solve(cfg)
					if err == nil {
						t.Skip("solver finished before the first deadline check")
					}
					if !errors.Is(err, context.DeadlineExceeded) {
						t.Fatalf("err = %v, want a deadline abort", err)
					}
					rep, ok := ReportOf(err)
					if !ok || rep.Reason != AbortDeadline {
						t.Fatalf("report = %+v (ok=%v), want reason deadline", rep, ok)
					}
					if rep.Bound != ord.wantBound {
						t.Errorf("Bound = %q, want %q: the report must name the bound that is the minimum", rep.Bound, ord.wantBound)
					}
					if sigma == nil {
						t.Error("aborted solve returned a nil assignment, want the partial state")
					}
				})
			}
		})
	}
}

// TestDeadlineBoundWithoutCtx: with only Timeout armed the report says
// "timeout", and with only a ctx deadline it says "ctx"; non-deadline aborts
// carry no bound at all.
func TestDeadlineBoundWithoutCtx(t *testing.T) {
	_, _, err := RR(example1System(), lattice.NatInf, natWarrow(), zeroInit, Config{Timeout: time.Nanosecond})
	rep, ok := ReportOf(err)
	if !ok || rep.Reason != AbortDeadline || rep.Bound != "timeout" {
		t.Errorf("Timeout-only abort: report = %+v (ok=%v), want deadline/timeout", rep, ok)
	}

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, _, err = RR(example1System(), lattice.NatInf, natWarrow(), zeroInit, Config{Ctx: ctx})
	rep, ok = ReportOf(err)
	if !ok || rep.Reason != AbortDeadline || rep.Bound != "ctx" {
		t.Errorf("ctx-only abort: report = %+v (ok=%v), want deadline/ctx", rep, ok)
	}

	_, _, err = RR(example1System(), lattice.NatInf, natWarrow(), zeroInit, Config{MaxEvals: 10})
	rep, ok = ReportOf(err)
	if !ok || rep.Reason != AbortBudget || rep.Bound != "" {
		t.Errorf("budget abort: report = %+v (ok=%v), want empty Bound", rep, ok)
	}
}

// TestWatchdogEffectiveDeadlineIsMinimum checks the watchdog directly: the
// armed deadline is the minimum of the two bounds in both orderings, with
// ties going to "timeout" (the explicit solver knob outranks the ambient
// context).
func TestWatchdogEffectiveDeadlineIsMinimum(t *testing.T) {
	now := time.Now()

	ctxFar, cancelFar := context.WithDeadline(context.Background(), now.Add(time.Hour))
	defer cancelFar()
	wd := newWatchdog[string](Config{Ctx: ctxFar, Timeout: time.Minute}, nil)
	if wd.bound != "timeout" {
		t.Errorf("timeout-below-ctx: bound = %q, want timeout", wd.bound)
	}
	if !wd.deadline.Before(now.Add(2 * time.Minute)) {
		t.Errorf("effective deadline %v not the minimum of the two bounds", wd.deadline)
	}

	ctxNear, cancelNear := context.WithDeadline(context.Background(), now.Add(time.Minute))
	defer cancelNear()
	wd = newWatchdog[string](Config{Ctx: ctxNear, Timeout: time.Hour}, nil)
	if wd.bound != "ctx" {
		t.Errorf("ctx-below-timeout: bound = %q, want ctx", wd.bound)
	}
	if !wd.deadline.Equal(now.Add(time.Minute)) {
		t.Errorf("effective deadline %v, want the ctx deadline %v", wd.deadline, now.Add(time.Minute))
	}
}
