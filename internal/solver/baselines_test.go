package solver

import (
	"errors"
	"testing"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// sideLoop is a small side-effecting system: a driver evaluates a counted
// loop and contributes each round's value to a global g.
func sideLoop() eqn.Sides[string, iv] {
	l := lattice.Ints
	return func(x string) eqn.SideRHS[string, iv] {
		switch x {
		case "head":
			return func(get func(string) iv, side func(string, iv)) iv {
				v := l.Join(lattice.Singleton(0),
					get("head").RestrictLt(lattice.Singleton(10)).Add(lattice.Singleton(1)))
				side("g", v)
				return v
			}
		default:
			return nil // g: contributions only
		}
	}
}

// TestTwoPhaseSides: the uniform two-phase baseline on a side-effecting
// system reaches the narrowed loop bound.
func TestTwoPhaseSides(t *testing.T) {
	l := lattice.Ints
	res, err := TwoPhaseSides(sideLoop(), l, func(string) iv { return lattice.EmptyInterval },
		"head", Config{MaxEvals: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Eq(res.Values["head"], lattice.Range(0, 10)) {
		t.Errorf("head = %s, want [0,10]", res.Values["head"])
	}
	if !l.Eq(res.Values["g"], lattice.Range(0, 10)) {
		t.Errorf("g = %s, want [0,10]", res.Values["g"])
	}
}

// TestTwoPhaseSidesKeyedGlobalsJoinOnly: with a down-phase operator that
// only joins globals (the Goblint-faithful baseline), the global keeps its
// widened value while the point narrows.
func TestTwoPhaseSidesKeyedGlobalsJoinOnly(t *testing.T) {
	l := lattice.Ints
	up := Op[string](Widen[iv](l))
	down := Op[string](func(old, new iv) iv {
		return l.Narrow(old, new)
	})
	band := func(x string) int {
		if x == "g" {
			return 1
		}
		return 0
	}
	res, err := TwoPhaseSidesKeyed(sideLoop(), l, func(string) iv { return lattice.EmptyInterval },
		"head", band, up, down, Config{MaxEvals: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Eq(res.Values["head"], lattice.Range(0, 10)) {
		t.Errorf("head = %s, want [0,10]", res.Values["head"])
	}
}

// TestTwoPhaseBudgetSplitting: the evaluation budget spans both phases and
// exhausting it in either phase reports ErrEvalBudget.
func TestTwoPhaseBudgetSplitting(t *testing.T) {
	sys := loopSystem()
	l := lattice.Ints
	// A budget that covers the ∇ phase but not the Δ phase.
	up, upStats, err := RR(sys, l, Op[string](Widen[iv](l)), ivInit, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_ = up
	_, _, err = TwoPhase(sys, l, ivInit, Config{MaxEvals: upStats.Evals})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("want budget error when Δ phase has no budget, got %v", err)
	}
	// One less than the ∇ phase needs: fails in phase 1.
	_, _, err = TwoPhase(sys, l, ivInit, Config{MaxEvals: upStats.Evals - 1})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("want budget error in ∇ phase, got %v", err)
	}
}

// TestTwoPhaseLocalBudget: same accounting for the local variant.
func TestTwoPhaseLocalBudget(t *testing.T) {
	sys := loopSystem().AsPure()
	l := lattice.Ints
	res, err := TwoPhaseLocal(sys, l, ivInit, "e", Config{MaxEvals: 3})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("want budget error, got %v (stats %+v)", err, res.Stats)
	}
}

// TestMeetOperator: ⊞ = ⊓ turns a solver into a pre-solution finder.
func TestMeetOperator(t *testing.T) {
	l := lattice.Ints
	sys := eqn.NewSystem[string, iv]()
	sys.Define("x", nil, func(func(string) iv) iv { return lattice.Range(0, 10) })
	top := func(string) iv { return lattice.FullInterval }
	sigma, _, err := RR(sys, l, Op[string](Meet[iv](l)), top, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// σ[x] = ⊤ ⊓ [0,10] = [0,10]: a pre-solution (σ[x] ⊑ f(σ)).
	if !l.Eq(sigma["x"], lattice.Range(0, 10)) {
		t.Errorf("x = %s", sigma["x"])
	}
}

// TestRLDBudget: RLD also honors the evaluation budget.
func TestRLDBudget(t *testing.T) {
	l := lattice.NatInf
	sys := eqn.NewSystem[int, lattice.Nat]()
	const n = 50
	for i := 0; i < n; i++ {
		i := i
		sys.Define(i, []int{(i + 1) % n}, func(get func(int) lattice.Nat) lattice.Nat {
			v := get((i + 1) % n)
			if v.IsInf() || v.Val() >= 100 {
				return lattice.NatOf(100)
			}
			return lattice.NatOf(v.Val() + 1)
		})
	}
	init := func(int) lattice.Nat { return lattice.NatOf(0) }
	_, err := RLD(sys.AsPure(), l, Op[int](Join[lattice.Nat](l)), init, 0, Config{MaxEvals: 5})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("want budget error, got %v", err)
	}
	// And solves fully when unconstrained.
	res, err := RLD(sys.AsPure(), l, Op[int](Join[lattice.Nat](l)), init, 0, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Values[0] != lattice.NatOf(100) {
		t.Errorf("x0 = %s, want 100", res.Values[0])
	}
}

// TestSRRTheorem1Bound: for ⊞ = ⊔ on a height-h lattice, SRR started from
// bottom performs at most n + (h/2)·n(n+1) evaluations (Theorem 1).
func TestSRRTheorem1Bound(t *testing.T) {
	const h = 12
	for _, n := range []int{3, 6, 12} {
		l := lattice.NatInf
		sys := eqn.NewSystem[int, lattice.Nat]()
		for i := 0; i < n; i++ {
			d := (i + 1) % n
			sys.Define(i, []int{d}, func(get func(int) lattice.Nat) lattice.Nat {
				v := get(d)
				if v.IsInf() || v.Val() >= h-1 {
					return lattice.NatOf(h - 1)
				}
				return lattice.NatOf(v.Val() + 1)
			})
		}
		init := func(int) lattice.Nat { return lattice.NatOf(0) }
		_, st, err := SRR(sys, l, Op[int](Join[lattice.Nat](l)), init, Config{})
		if err != nil {
			t.Fatal(err)
		}
		bound := n + h/2*n*(n+1)
		if st.Evals > bound {
			t.Errorf("n=%d: SRR used %d evals, Theorem 1 bound %d", n, st.Evals, bound)
		}
	}
}
