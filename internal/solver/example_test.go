package solver_test

import (
	"fmt"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
	"warrow/internal/solver"
)

// ExampleWarrow solves the constraint system of a counting loop with the
// combined operator ⊟: widening accelerates the ascent, narrowing recovers
// the exact bound the moment growth stops — one pass, no separate phase.
func ExampleWarrow() {
	l := lattice.Ints
	sys := eqn.NewSystem[string, lattice.Interval]()
	sys.Define("head", []string{"body"}, func(get func(string) lattice.Interval) lattice.Interval {
		return l.Join(lattice.Singleton(0), get("body").Add(lattice.Singleton(1)))
	})
	sys.Define("body", []string{"head"}, func(get func(string) lattice.Interval) lattice.Interval {
		return get("head").RestrictLt(lattice.Singleton(10))
	})

	op := solver.Op[string](solver.Warrow[lattice.Interval](l))
	sigma, _, err := solver.SW(sys, l, op, eqn.ConstBottom[string](l), solver.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("head =", sigma["head"])
	fmt.Println("body =", sigma["body"])
	// Output:
	// head = [0,10]
	// body = [0,9]
}

// ExampleSLR queries one unknown of an infinite equation system; the local
// solver explores only what the answer depends on.
func ExampleSLR() {
	l := lattice.NatInf
	// y_n = y_{2n} for odd n; y_n = n/2 for even n.
	sys := func(x uint64) eqn.RHS[uint64, lattice.Nat] {
		if x%2 == 1 {
			return func(get func(uint64) lattice.Nat) lattice.Nat { return get(2 * x) }
		}
		return func(func(uint64) lattice.Nat) lattice.Nat { return lattice.NatOf(x / 2) }
	}
	res, err := solver.SLR[uint64, lattice.Nat](sys, l,
		solver.Op[uint64](solver.Join[lattice.Nat](l)),
		func(uint64) lattice.Nat { return lattice.NatOf(0) },
		7, solver.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("y7 =", res.Values[7])
	fmt.Println("unknowns explored:", res.Stats.Unknowns)
	// Output:
	// y7 = 7
	// unknowns explored: 2
}

// ExampleSLRPlus reproduces the paper's Example 9: three contexts
// contribute to a flow-insensitive global; ⊟ widens it to [0,+inf] and
// immediately narrows it back to the tight [0,3].
func ExampleSLRPlus() {
	l := lattice.Ints
	sys := func(x string) eqn.SideRHS[string, lattice.Interval] {
		switch x {
		case "main":
			return func(get func(string) lattice.Interval, side func(string, lattice.Interval)) lattice.Interval {
				side("g", lattice.Singleton(0))
				get("f(1)")
				get("f(2)")
				return lattice.EmptyInterval
			}
		case "f(1)":
			return func(_ func(string) lattice.Interval, side func(string, lattice.Interval)) lattice.Interval {
				side("g", lattice.Singleton(2))
				return lattice.EmptyInterval
			}
		case "f(2)":
			return func(_ func(string) lattice.Interval, side func(string, lattice.Interval)) lattice.Interval {
				side("g", lattice.Singleton(3))
				return lattice.EmptyInterval
			}
		default:
			return nil // g: contributions only
		}
	}
	res, err := solver.SLRPlus[string, lattice.Interval](sys, l,
		solver.Op[string](solver.Warrow[lattice.Interval](l)),
		func(string) lattice.Interval { return lattice.EmptyInterval },
		"main", solver.Config{})
	if err != nil {
		panic(err)
	}
	fmt.Println("g =", res.Values["g"])
	// Output:
	// g = [0,3]
}

// ExampleNewDegrading shows the ⊟ₖ operator terminating a non-monotonic
// oscillation that plain ⊟ cannot.
func ExampleNewDegrading() {
	l := lattice.Ints
	sys := eqn.NewSystem[string, lattice.Interval]()
	sys.Define("x", []string{"x"}, func(get func(string) lattice.Interval) lattice.Interval {
		v := get("x")
		switch {
		case v.IsEmpty():
			return lattice.Singleton(0)
		case v.Hi.IsPosInf():
			return lattice.Range(0, 5)
		default:
			return lattice.NewInterval(lattice.Fin(0), v.Hi.Add(lattice.Fin(1)))
		}
	})
	deg := solver.NewDegrading[string, lattice.Interval](l, 1)
	sigma, _, err := solver.SRR(sys, l, deg, eqn.ConstBottom[string](l), solver.Config{MaxEvals: 1000})
	if err != nil {
		panic(err)
	}
	fmt.Println("x =", sigma["x"], "switches =", deg.Switches("x"))
	// Output:
	// x = [0,+inf] switches = 1
}
