package solver

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"
)

// EvalError describes the failure of a single right-hand-side evaluation:
// the rendered unknown whose equation failed, the 1-based attempt number of
// the last attempt, and the recovered cause. A panicking right-hand side is
// converted into an EvalError by the recover barrier every solver routes
// evaluations through, so one faulty equation aborts the solve with a
// structured diagnosis instead of killing the process (and, under PSW,
// instead of killing the whole worker pool).
type EvalError struct {
	// Unknown is the rendered unknown (fmt.Sprint of the solver's X).
	Unknown string
	// Attempt is the 1-based number of the attempt that failed last; with
	// retries enabled it equals the number of attempts performed.
	Attempt int
	// Cause is the recovered panic value (wrapped as an error) or the
	// injected failure.
	Cause error
}

// Error implements error.
func (e *EvalError) Error() string {
	return fmt.Sprintf("solver: evaluation of %s failed (attempt %d): %v", e.Unknown, e.Attempt, e.Cause)
}

// Unwrap exposes the cause, so errors.Is(err, ErrTransient) sees through.
func (e *EvalError) Unwrap() error { return e.Cause }

// evalErrorJSON is the stable wire shape of an EvalError: the cause is
// flattened to its rendered message, because error values do not survive
// serialization (and the serving tier only needs the diagnosis, not the
// chain).
type evalErrorJSON struct {
	Unknown string `json:"unknown"`
	Attempt int    `json:"attempt"`
	Cause   string `json:"cause"`
}

// MarshalJSON renders the failure with stable field names (golden-tested),
// so structured logs and wire responses never hand-roll it.
func (e *EvalError) MarshalJSON() ([]byte, error) {
	var cause string
	if e.Cause != nil {
		cause = e.Cause.Error()
	}
	return json.Marshal(evalErrorJSON{Unknown: e.Unknown, Attempt: e.Attempt, Cause: cause})
}

// UnmarshalJSON inverts MarshalJSON; the cause comes back as an opaque
// error carrying the rendered message only.
func (e *EvalError) UnmarshalJSON(data []byte) error {
	var aux evalErrorJSON
	if err := json.Unmarshal(data, &aux); err != nil {
		return err
	}
	e.Unknown, e.Attempt, e.Cause = aux.Unknown, aux.Attempt, nil
	if aux.Cause != "" {
		e.Cause = errors.New(aux.Cause)
	}
	return nil
}

// ErrTransient marks evaluation failures that a retry may heal: timeouts of
// an external fact provider, injected chaos faults, resource blips. The
// default retry predicate retries exactly the causes that match it through
// errors.Is; persistent failures (plain panics, nil dereferences) do not
// match and abort on the first attempt.
var ErrTransient = errors.New("transient evaluation failure")

// contractViolation is the panic payload of programming-contract violations
// raised by the solvers themselves (for example a right-hand side
// side-effecting its own unknown). The recover barrier re-panics on it:
// contract violations are bugs in the equation system, not evaluation
// faults, and must surface as panics in tests and callers alike.
type contractViolation struct{ msg string }

func (c contractViolation) String() string { return c.msg }

// RetryPolicy tunes per-unknown retries of failed right-hand-side
// evaluations. The zero value disables retrying: every failure aborts on
// the first attempt.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts per evaluation, the first
	// one included; values ≤ 1 disable retrying.
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt; it doubles for
	// each further attempt. Zero means retry immediately.
	BaseDelay time.Duration
	// MaxDelay caps the backoff; 0 means uncapped.
	MaxDelay time.Duration
	// Retryable decides whether a failure is worth retrying; nil means
	// errors.Is(err, ErrTransient).
	Retryable func(error) bool
	// Seed seeds the jitter stream (full jitter in [delay/2, delay]), so a
	// run's sleep schedule is reproducible. The jitter stream never affects
	// the solve result, only its timing.
	Seed uint64
}

// evalGuard is the per-run recover barrier and retry loop shared by every
// solver. It is always armed — panic isolation has no configuration knob —
// while the retry behavior comes from Config.Retry. PSW shares one guard
// across its worker pool, so the jitter stream is mutex-guarded.
type evalGuard struct {
	policy RetryPolicy

	mu  sync.Mutex
	rng uint64
	// sleep is a test seam; nil means time.Sleep.
	sleep func(time.Duration)
}

func newEvalGuard(cfg Config) *evalGuard {
	return &evalGuard{policy: cfg.Retry, rng: cfg.Retry.Seed ^ 0x9e3779b97f4a7c15}
}

func (g *evalGuard) retryable(err error) bool {
	if g.policy.Retryable != nil {
		return g.policy.Retryable(err)
	}
	return errors.Is(err, ErrTransient)
}

// backoff sleeps before retry attempt number next (2-based), with
// exponential growth and full jitter in [delay/2, delay].
func (g *evalGuard) backoff(next int) {
	d := g.policy.BaseDelay
	if d <= 0 {
		return
	}
	for i := 2; i < next; i++ {
		d *= 2
		if g.policy.MaxDelay > 0 && d >= g.policy.MaxDelay {
			d = g.policy.MaxDelay
			break
		}
	}
	if g.policy.MaxDelay > 0 && d > g.policy.MaxDelay {
		d = g.policy.MaxDelay
	}
	g.mu.Lock()
	g.rng += 0x9e3779b97f4a7c15
	z := g.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	g.mu.Unlock()
	half := d / 2
	jittered := half + time.Duration(z%uint64(half+1))
	sleep := g.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(jittered)
}

// attemptEval runs one evaluation under the recover barrier, converting a
// panic into an error. Contract-violation panics propagate unchanged.
func attemptEval[D any](f func() D) (d D, cause error) {
	defer func() {
		if r := recover(); r != nil {
			if cv, ok := r.(contractViolation); ok {
				// Re-panic the typed value, not its message: nested barriers
				// (local solvers evaluate unknowns inside other evaluations)
				// must pass contract violations through unchanged too.
				panic(cv)
			}
			if err, ok := r.(error); ok {
				cause = fmt.Errorf("panic: %w", err)
			} else {
				cause = fmt.Errorf("panic: %v", r)
			}
		}
	}()
	return f(), nil
}

// guardedEval evaluates f under the recover barrier with g's retry policy.
// It returns the value, the number of attempts performed, and — if the last
// attempt failed — the structured EvalError. Failed attempts never count as
// evaluations in Stats.Evals; the callers roll nothing forward on failure.
func guardedEval[X comparable, D any](g *evalGuard, x X, f func() D) (D, int, *EvalError) {
	maxAttempts := g.policy.MaxAttempts
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	for attempt := 1; ; attempt++ {
		d, cause := attemptEval(f)
		if cause == nil {
			return d, attempt, nil
		}
		if attempt >= maxAttempts || !g.retryable(cause) {
			var zero D
			return zero, attempt, &EvalError{Unknown: fmt.Sprint(x), Attempt: attempt, Cause: cause}
		}
		g.backoff(attempt + 1)
	}
}
