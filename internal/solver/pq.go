package solver

// pq is a binary min-heap keyed by int64 priorities with O(1) membership
// dedup: pushing an element already in the queue is a no-op, matching the
// add function of the paper's SW and SLR solvers. Keys are int64, not int:
// the SLR⁺ priority bands live in bits 32 and up (see slrState.initVar), so
// an int key would collapse every band to zero on 32-bit platforms.
type pq[X comparable] struct {
	heap []X
	key  map[X]int64
	pos  map[X]int // position in heap; presence marker
}

func newPQ[X comparable]() *pq[X] {
	return &pq[X]{key: make(map[X]int64), pos: make(map[X]int)}
}

func (q *pq[X]) empty() bool { return len(q.heap) == 0 }

func (q *pq[X]) len() int { return len(q.heap) }

// minKey returns the smallest key in the queue; the queue must be nonempty.
func (q *pq[X]) minKey() int64 { return q.key[q.heap[0]] }

// push inserts x with the given key unless already present.
func (q *pq[X]) push(x X, key int64) {
	if _, in := q.pos[x]; in {
		return
	}
	q.key[x] = key
	q.heap = append(q.heap, x)
	q.pos[x] = len(q.heap) - 1
	q.up(len(q.heap) - 1)
}

// popMin removes and returns the element with the smallest key.
func (q *pq[X]) popMin() X {
	x := q.heap[0]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap = q.heap[:last]
	delete(q.pos, x)
	if last > 0 {
		q.down(0)
	}
	return x
}

func (q *pq[X]) less(i, j int) bool { return q.key[q.heap[i]] < q.key[q.heap[j]] }

func (q *pq[X]) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i]] = i
	q.pos[q.heap[j]] = j
}

func (q *pq[X]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

// bucketQueue is the dense priority queue of the index-compiled SW and PSW
// cores: elements are order indices in a fixed window [base, base+cap), and
// an element's priority IS its index, so the heap collapses to a bitset of
// queued indices plus a lower bound on the minimum. push is a mask test and
// popMin a find-first-set scan from the bound — no hashing, no comparisons,
// no per-element bookkeeping. Because indices are unique priorities, the pop
// sequence is exactly the binary heap's, which keeps the dense solvers
// bit-identical to the map core (same evaluations, same MaxQueue).
type bucketQueue struct {
	bits bitset
	base int // index of bit 0
	n    int // queued element count
	min  int // lower bound: no queued index is smaller (absolute, not offset)
}

// newBucketQueue covers the index window [lo, hi] inclusive.
func newBucketQueue(lo, hi int) *bucketQueue {
	return &bucketQueue{bits: newBitset(hi - lo + 1), base: lo, min: hi + 1}
}

func (q *bucketQueue) empty() bool { return q.n == 0 }

func (q *bucketQueue) len() int { return q.n }

// push inserts index i unless already queued.
func (q *bucketQueue) push(i int) {
	o := i - q.base
	if q.bits.has(o) {
		return
	}
	q.bits.set(o)
	q.n++
	if i < q.min {
		q.min = i
	}
}

// popMin removes and returns the smallest queued index; the queue must be
// nonempty.
func (q *bucketQueue) popMin() int {
	o := q.bits.nextSet(q.min - q.base)
	q.bits.clear(o)
	q.n--
	i := q.base + o
	q.min = i + 1
	return i
}

// indices returns the queued indices in ascending order without modifying
// the queue — the non-destructive snapshot checkpoints are captured from.
func (q *bucketQueue) indices() []int {
	out := make([]int, 0, q.n)
	for o := q.bits.nextSet(0); o >= 0; o = q.bits.nextSet(o + 1) {
		out = append(out, q.base+o)
	}
	return out
}

func (q *pq[X]) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
