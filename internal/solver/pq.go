package solver

// pq is a binary min-heap keyed by int64 priorities with O(1) membership
// dedup: pushing an element already in the queue is a no-op, matching the
// add function of the paper's SW and SLR solvers. Keys are int64, not int:
// the SLR⁺ priority bands live in bits 32 and up (see slrState.initVar), so
// an int key would collapse every band to zero on 32-bit platforms.
type pq[X comparable] struct {
	heap []X
	key  map[X]int64
	pos  map[X]int // position in heap; presence marker
}

func newPQ[X comparable]() *pq[X] {
	return &pq[X]{key: make(map[X]int64), pos: make(map[X]int)}
}

func (q *pq[X]) empty() bool { return len(q.heap) == 0 }

func (q *pq[X]) len() int { return len(q.heap) }

// minKey returns the smallest key in the queue; the queue must be nonempty.
func (q *pq[X]) minKey() int64 { return q.key[q.heap[0]] }

// push inserts x with the given key unless already present.
func (q *pq[X]) push(x X, key int64) {
	if _, in := q.pos[x]; in {
		return
	}
	q.key[x] = key
	q.heap = append(q.heap, x)
	q.pos[x] = len(q.heap) - 1
	q.up(len(q.heap) - 1)
}

// popMin removes and returns the element with the smallest key.
func (q *pq[X]) popMin() X {
	x := q.heap[0]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap = q.heap[:last]
	delete(q.pos, x)
	if last > 0 {
		q.down(0)
	}
	return x
}

func (q *pq[X]) less(i, j int) bool { return q.key[q.heap[i]] < q.key[q.heap[j]] }

func (q *pq[X]) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i]] = i
	q.pos[q.heap[j]] = j
}

func (q *pq[X]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q *pq[X]) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
