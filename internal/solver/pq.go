package solver

import "sync"

// pq is a binary min-heap keyed by int64 priorities with O(1) membership
// dedup: pushing an element already in the queue is a no-op, matching the
// add function of the paper's SW and SLR solvers. Keys are int64, not int:
// the SLR⁺ priority bands live in bits 32 and up (see slrState.initVar), so
// an int key would collapse every band to zero on 32-bit platforms.
type pq[X comparable] struct {
	heap []X
	key  map[X]int64
	pos  map[X]int // position in heap; presence marker
}

func newPQ[X comparable]() *pq[X] {
	return &pq[X]{key: make(map[X]int64), pos: make(map[X]int)}
}

func (q *pq[X]) empty() bool { return len(q.heap) == 0 }

func (q *pq[X]) len() int { return len(q.heap) }

// minKey returns the smallest key in the queue; the queue must be nonempty.
func (q *pq[X]) minKey() int64 { return q.key[q.heap[0]] }

// push inserts x with the given key unless already present.
func (q *pq[X]) push(x X, key int64) {
	if _, in := q.pos[x]; in {
		return
	}
	q.key[x] = key
	q.heap = append(q.heap, x)
	q.pos[x] = len(q.heap) - 1
	q.up(len(q.heap) - 1)
}

// popMin removes and returns the element with the smallest key.
func (q *pq[X]) popMin() X {
	x := q.heap[0]
	last := len(q.heap) - 1
	q.swap(0, last)
	q.heap = q.heap[:last]
	delete(q.pos, x)
	if last > 0 {
		q.down(0)
	}
	return x
}

func (q *pq[X]) less(i, j int) bool { return q.key[q.heap[i]] < q.key[q.heap[j]] }

func (q *pq[X]) swap(i, j int) {
	q.heap[i], q.heap[j] = q.heap[j], q.heap[i]
	q.pos[q.heap[i]] = i
	q.pos[q.heap[j]] = j
}

func (q *pq[X]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.swap(i, parent)
		i = parent
	}
}

// bucketQueue is the dense priority queue of the index-compiled SW and PSW
// cores: elements are order indices in a fixed window [base, base+cap), and
// an element's priority IS its index, so the heap collapses to a bitset of
// queued indices plus a lower bound on the minimum. push is a mask test and
// popMin a find-first-set scan from the bound — no hashing, no comparisons,
// no per-element bookkeeping. Because indices are unique priorities, the pop
// sequence is exactly the binary heap's, which keeps the dense solvers
// bit-identical to the map core (same evaluations, same MaxQueue).
type bucketQueue struct {
	bits bitset
	base int // index of bit 0
	n    int // queued element count
	min  int // lower bound: no queued index is smaller (absolute, not offset)
}

// newBucketQueue covers the index window [lo, hi] inclusive.
func newBucketQueue(lo, hi int) *bucketQueue {
	return &bucketQueue{bits: newBitset(hi - lo + 1), base: lo, min: hi + 1}
}

func (q *bucketQueue) empty() bool { return q.n == 0 }

func (q *bucketQueue) len() int { return q.n }

// push inserts index i unless already queued.
func (q *bucketQueue) push(i int) {
	o := i - q.base
	if q.bits.has(o) {
		return
	}
	q.bits.set(o)
	q.n++
	if i < q.min {
		q.min = i
	}
}

// popMin removes and returns the smallest queued index; the queue must be
// nonempty.
func (q *bucketQueue) popMin() int {
	o := q.bits.nextSet(q.min - q.base)
	q.bits.clear(o)
	q.n--
	i := q.base + o
	q.min = i + 1
	return i
}

// indices returns the queued indices in ascending order without modifying
// the queue — the non-destructive snapshot checkpoints are captured from.
func (q *bucketQueue) indices() []int {
	out := make([]int, 0, q.n)
	for o := q.bits.nextSet(0); o >= 0; o = q.bits.nextSet(o + 1) {
		out = append(out, q.base+o)
	}
	return out
}

// shardQueue is the sharded present-set of the chaotic intra-stratum solver
// (CPW): one mutex-guarded bucketQueue per worker over a fixed index window
// [base, hi]. An index's home shard is (i-base) mod shards, and each shard
// stores the compressed coordinate (i-base) div shards, so S shards over a
// window of n indices cost the same total bits as one bucketQueue over the
// whole window.
//
// Per-shard pops are min-first for the same reason SW's are: ⊟ iteration
// is only guaranteed to terminate under orders that stabilize inner
// unknowns before their outer readers re-widen them (the paper's Example 1
// diverges under RR precisely because it lacks this), so each worker
// drains the lowest dirty index its shard holds and steals round-robin
// when the shard runs dry. At one worker the single shard makes CPW's pop
// sequence exactly SW's; at S workers the schedule is "the S smallest
// dirty indices, concurrently" plus scheduler jitter — chaotic enough to
// scale, ordered enough to converge, and always under the watchdog
// envelope because the termination theorem does not cover chaotic orders.
//
// Membership dedup does NOT live here (bucketQueue's bitset would provide
// it, but never fires): CPW's per-unknown claim states guarantee an index
// is pushed only by the goroutine that transitioned it to queued, so each
// index is queued at most once globally. Home-shard pushing turns that
// invariant into a measurable bound: every shard's high-water mark is at
// most ceil(window/shards). Stats.MaxQueue takes the MAXIMUM over shard
// marks — summing them would re-count the whole stratum (≈window at seed
// time, when every shard is simultaneously full) and make the figure
// incomparable with the sequential solvers'; maxShardHigh and its
// regression test pin this.
type shardQueue struct {
	base   int
	stride int // == len(shards): the compression factor of shard coordinates
	shards []queueShard
}

// queueShard is one lane of the sharded worklist.
type queueShard struct {
	mu   sync.Mutex
	q    *bucketQueue
	high int
}

// newShardQueue covers the index window [lo, hi] inclusive with one shard
// per worker.
func newShardQueue(lo, hi, shards int) *shardQueue {
	if shards < 1 {
		shards = 1
	}
	q := &shardQueue{base: lo, stride: shards, shards: make([]queueShard, shards)}
	per := (hi - lo + shards) / shards // ceil(window/shards)
	for s := range q.shards {
		q.shards[s].q = newBucketQueue(0, per-1)
	}
	return q
}

// push queues index i on its home shard. The caller must hold the queued
// claim on i (see cpwRun.markDirty): that is what keeps each index in at
// most one shard slot without relying on the bitset dedup.
func (q *shardQueue) push(i int) {
	o := i - q.base
	sh := &q.shards[o%q.stride]
	sh.mu.Lock()
	sh.q.push(o / q.stride)
	if n := sh.q.len(); n > sh.high {
		sh.high = n
	}
	sh.mu.Unlock()
}

// pop returns the smallest queued index of worker w's own shard, stealing
// round-robin from the other shards when it is empty; ok is false when
// every shard was empty at the moment it was inspected (not a stable
// emptiness claim — concurrent pushes may land behind the scan, which is
// why CPW terminates on its pending count, not on pop failures).
func (q *shardQueue) pop(w int) (i int, ok bool) {
	n := len(q.shards)
	for k := 0; k < n; k++ {
		s := (w + k) % n
		sh := &q.shards[s]
		sh.mu.Lock()
		if !sh.q.empty() {
			c := sh.q.popMin()
			sh.mu.Unlock()
			return q.base + c*q.stride + s, true
		}
		sh.mu.Unlock()
	}
	return 0, false
}

// maxShardHigh merges the per-shard high-water marks into the stratum's
// MaxQueue contribution: the maximum, never the sum (see the shardQueue
// doc). Callers invoke it after the worker pool has quiesced, so the
// unlocked reads are ordered by the pool's WaitGroup.
func (q *shardQueue) maxShardHigh() int {
	m := 0
	for s := range q.shards {
		if h := q.shards[s].high; h > m {
			m = h
		}
	}
	return m
}

func (q *pq[X]) down(i int) {
	n := len(q.heap)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && q.less(l, smallest) {
			smallest = l
		}
		if r < n && q.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		q.swap(i, smallest)
		i = smallest
	}
}
