package solver

import (
	"testing"

	"warrow/internal/eqgen"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// The unboxed core's perf claim is structural: once the stepper exists, an
// evaluation of a fused right-hand side touches only preallocated word
// slices. These guards pin that claim with testing.AllocsPerRun so a future
// change that reintroduces boxing on the hot path fails a test, not a
// benchmark eyeball.

// rawStepper builds the unboxed core for sys and fails the test if buildCore
// falls back to boxed values — an alloc measurement of the wrong core would
// pass vacuously.
func rawStepper[D any](t *testing.T, sys *eqn.System[int, D], l lattice.Lattice[D]) (func(i int) (bool, int, *EvalError), int) {
	t.Helper()
	vc, _ := buildCore(sys, l, WarrowOp[int, D](l), eqn.ConstBottom[int, D](l), Config{})
	t.Cleanup(vc.release)
	if _, ok := vc.(*rawCore[int, D]); !ok {
		t.Fatalf("buildCore returned %T, want *rawCore (raw gate regressed)", vc)
	}
	return vc.stepper(), len(vc.shape().order)
}

// passAllocs measures steady-state allocations per evaluation: a few warm-up
// passes first (widening transients, pool growth), then AllocsPerRun over
// full passes.
func passAllocs(step func(i int) (bool, int, *EvalError), n int) float64 {
	for r := 0; r < 4; r++ {
		for i := 0; i < n; i++ {
			step(i)
		}
	}
	perPass := testing.AllocsPerRun(10, func() {
		for i := 0; i < n; i++ {
			step(i)
		}
	})
	return perPass / float64(n)
}

func TestUnboxedIntervalEvalAllocFree(t *testing.T) {
	g := eqgen.New(eqgen.Config{Seed: 5, Dom: eqgen.Interval, N: 256, FanIn: 3, NonMonoDensity: 0.3})
	step, n := rawStepper(t, g.Interval, lattice.Ints)
	if a := passAllocs(step, n); a != 0 {
		t.Fatalf("unboxed interval hot path allocates %.2f/eval, want 0", a)
	}
}

func TestUnboxedSignEvalAllocFree(t *testing.T) {
	// A handwritten ring over the sign domain with manually attached raw
	// right-hand sides: the fused form recomputes the boxed one on Sign
	// values pulled straight out of the word store.
	l := lattice.Signs
	sys := eqn.NewSystem[int, lattice.Sign]()
	const n = 64
	for i := 0; i < n; i++ {
		i := i
		a, b := (i+1)%n, (i+n-1)%n
		sys.Define(i, []int{a, b}, func(get func(int) lattice.Sign) lattice.Sign {
			s := get(a).Add(get(b).Neg())
			if i%7 == 0 {
				s = l.Join(s, lattice.SignPos)
			}
			if i%5 == 0 {
				s = l.Meet(s, lattice.SignGe0)
			}
			return s
		})
		sys.AttachRaw(i, func(get func(int) []uint64, dst []uint64) {
			s := lattice.Sign(get(a)[0]).Add(lattice.Sign(get(b)[0]).Neg())
			if i%7 == 0 {
				s |= lattice.SignPos
			}
			if i%5 == 0 {
				s &= lattice.SignGe0
			}
			dst[0] = uint64(s)
		})
	}
	step, nn := rawStepper(t, sys, lattice.Lattice[lattice.Sign](l))
	if a := passAllocs(step, nn); a != 0 {
		t.Fatalf("unboxed sign hot path allocates %.2f/eval, want 0", a)
	}
}

func TestUnboxedPowersetEvalAllocFloor(t *testing.T) {
	// Fused powerset right-hand sides (eqgen attaches them) are pure bitset
	// arithmetic: zero allocations, same as interval and sign.
	g := eqgen.New(eqgen.Config{Seed: 7, Dom: eqgen.Powerset, N: 256, FanIn: 3, NonMonoDensity: 0.3})
	pl := eqgen.PowersetL()
	step, n := rawStepper(t, g.Powerset, lattice.Lattice[lattice.Set[int]](pl))
	if a := passAllocs(step, n); a != 0 {
		t.Fatalf("fused powerset hot path allocates %.2f/eval, want 0", a)
	}

	// The allocation floor of the powerset domain lives in the boundary
	// adapter: a right-hand side with no fused form reads boxed Sets, and
	// every read decodes the bitset into a fresh map (plus the Union/encode
	// traffic of the boxed evaluation). That cost is per unfused RHS, not a
	// property of the word store — DESIGN.md §11 documents it. The guard
	// below only keeps the adapter from regressing into something
	// pathological.
	adapter := eqn.NewSystem[int, lattice.Set[int]]()
	seedSet := lattice.NewSet(1, 3)
	for i := 0; i < 64; i++ {
		a, b := (i+1)%64, (i+63)%64
		adapter.Define(i, []int{a, b}, func(get func(int) lattice.Set[int]) lattice.Set[int] {
			return pl.Join(pl.Join(get(a), get(b)), seedSet)
		})
	}
	step, n = rawStepper(t, adapter, lattice.Lattice[lattice.Set[int]](pl))
	a := passAllocs(step, n)
	t.Logf("powerset boundary-adapter floor: %.2f allocs/eval", a)
	if a == 0 {
		t.Fatalf("boundary adapter reports zero allocs/eval — the measurement is broken")
	}
	if a > 32 {
		t.Fatalf("powerset boundary adapter allocates %.2f/eval, want <= 32", a)
	}
}
