// Value-representation cores of the compiled global solvers.
//
// The dense loops of dense.go and psw.go are written against execCore, which
// hides how the assignment is stored. Two implementations exist:
//
//   - boxedCore keeps []D exactly as compile.go builds it — the dense core
//     that existed before the unboxed work;
//   - rawCore stores every value as raw machine words (lattice.Raw): the
//     assignment is one flat []uint64, update steps run entirely on word
//     slices, and a boxed D materializes only at the boundaries — snapshots,
//     sigma maps, and right-hand sides that have no fused raw form.
//
// Selection happens in buildCore: the unboxed store is used when the lattice
// has a raw encoding (lattice.AsRaw), the update operator is structured
// (rawOperator — WarrowOp and friends), and the initial assignment encodes
// cleanly; otherwise the solve falls back to the boxed core. Config.Core =
// CoreDense forces the boxed store; CoreUnboxed requests the raw one but
// still falls back when the domain cannot support it, so the flag is always
// safe to set.
//
// Bit-identity: the raw lattice operations are certified word-for-word
// against the boxed ones (lattice.CheckRawAgreement and the raw tests), the
// structured operators take the same branches on words as on values, and the
// watchdog observes the same phases in the same order — so values, Stats,
// abort reports and checkpoints are identical across all three cores, and
// checkpoints (always boxed X-space on the wire) cross freely between them.
// The differential tests in internal/diffsolve pin this per solver, per
// domain, and across resume boundaries.
package solver

import (
	"runtime"
	"sync/atomic"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// execCore is what a compiled solver loop needs from the value store: shape
// access for scheduling, a step function for the hot loop, and the boxed
// boundary operations (results, checkpoints).
type execCore[X comparable, D any] interface {
	// shape exposes the memoized dense shape (order, CSR influence rows,
	// queue translation).
	shape() *denseShape[X, D]
	// stepper returns the step function of one run (PSW: one stratum): step(i)
	// evaluates unknown i under the eval guard, applies the update operator,
	// and stores the result, reporting whether the value changed, how many
	// evaluation attempts were made, and the evaluation error, if any. On an
	// error nothing is rolled forward — the failed evaluation never happened.
	stepper() func(i int) (changed bool, attempts int, ee *EvalError)
	// sigmaMap renders the assignment as the map the public API returns.
	sigmaMap() map[X]D
	// snapshot captures a checkpoint of the current assignment; the caller
	// fills in the solver-specific scheduling state.
	snapshot(name string, st Stats) *Checkpoint[X, D]
	// restore applies a checkpointed assignment.
	restore(cp *Checkpoint[X, D])
	// release returns the value store to the shape's pool; the core must not
	// be used afterwards.
	release()
}

// boxedCore is the dense core with boxed values: compiled's []D assignment
// plus the pieces the step function needs. snapshot, restore, sigmaMap and
// release come from the embedded compiled.
type boxedCore[X comparable, D any] struct {
	*compiled[X, D]
	l lattice.Lattice[D]
	// op is the instrumented operator: the watchdog's phase hook is already
	// attached, so Apply both observes and combines.
	op Operator[X, D]
	g  *evalGuard
}

func (bc *boxedCore[X, D]) shape() *denseShape[X, D] { return bc.denseShape }

func (bc *boxedCore[X, D]) stepper() func(i int) (bool, int, *EvalError) {
	e := bc.evaluator()
	return func(i int) (bool, int, *EvalError) {
		x := bc.order[i]
		e.cur = i
		rhsVal, attempts, ee := guardedEval(bc.g, x, e.thunk)
		if ee != nil {
			return false, attempts, ee
		}
		next := bc.op.Apply(x, bc.vals[i], rhsVal)
		if bc.l.Eq(bc.vals[i], next) {
			return false, attempts, nil
		}
		bc.vals[i] = next
		return true, attempts, nil
	}
}

// rawCompiled is the unboxed twin of compiled: the assignment is one flat
// []uint64, stride words per unknown, indexed by order position.
type rawCompiled[X comparable, D any] struct {
	*denseShape[X, D]
	sys    *eqn.System[X, D]
	init   func(X) D
	raw    lattice.Raw[D]
	stride int
	// words is the assignment: unknown i lives at words[i*stride:(i+1)*stride].
	words []uint64
}

// rawCompile builds the unboxed store and encodes the initial assignment.
// It panics if an initial value has no raw encoding; buildCore catches that
// and falls back to the boxed core.
func rawCompile[X comparable, D any](sys *eqn.System[X, D], raw lattice.Raw[D], init func(X) D) *rawCompiled[X, D] {
	sh := sys.ShapeMemo(denseShapeKey, func() any { return buildDenseShape(sys) }).(*denseShape[X, D])
	stride := raw.RawWords()
	n := len(sh.order)
	var words []uint64
	if w, ok := sh.wordsPool.Get().([]uint64); ok && len(w) == n*stride {
		words = w
	} else {
		words = make([]uint64, n*stride)
	}
	rc := &rawCompiled[X, D]{denseShape: sh, sys: sys, init: init, raw: raw, stride: stride, words: words}
	for i, x := range sh.order {
		raw.RawEncode(words[i*stride:(i+1)*stride], init(x))
	}
	return rc
}

// tryRawCompile is rawCompile with the encode panic converted into a
// fallback signal: an initial assignment the encoding cannot represent
// (sentinel-colliding interval bounds, out-of-universe set elements) sends
// the solve to the boxed core instead of crashing.
func tryRawCompile[X comparable, D any](sys *eqn.System[X, D], raw lattice.Raw[D], init func(X) D) (rc *rawCompiled[X, D], ok bool) {
	defer func() {
		if r := recover(); r != nil {
			rc, ok = nil, false
		}
	}()
	return rawCompile(sys, raw, init), true
}

// release returns the word store to the shape's pool.
func (rc *rawCompiled[X, D]) release() {
	if rc.words == nil {
		return
	}
	rc.wordsPool.Put(rc.words)
	rc.words = nil
}

// sigmaMap decodes the assignment into the map the public API returns.
func (rc *rawCompiled[X, D]) sigmaMap() map[X]D {
	sigma := make(map[X]D, len(rc.order))
	for i, x := range rc.order {
		sigma[x] = rc.raw.RawDecode(rc.words[i*rc.stride : (i+1)*rc.stride])
	}
	return sigma
}

// snapshot decodes the assignment into boxed Sigma rows in linear order.
// Raw encodings are canonical and RawDecode inverts RawEncode exactly, so
// the wire output is byte-identical to the boxed cores' on the same state —
// which is what lets a checkpoint captured here resume on either of them.
func (rc *rawCompiled[X, D]) snapshot(name string, st Stats) *Checkpoint[X, D] {
	cp := &Checkpoint[X, D]{Solver: name, SysFP: Fingerprint(rc.sys)}
	cp.Evals, cp.Updates, cp.Rounds, cp.MaxQueue, cp.Retries =
		st.Evals, st.Updates, st.Rounds, st.MaxQueue, st.Retries
	cp.Sigma = make([]CheckpointEntry[X, D], len(rc.order))
	for i, x := range rc.order {
		cp.Sigma[i] = CheckpointEntry[X, D]{X: x, V: rc.raw.RawDecode(rc.words[i*rc.stride : (i+1)*rc.stride])}
	}
	return cp
}

// restore encodes a checkpointed assignment into the word store. Entries for
// unknowns outside the system are ignored, like the boxed cores do. A value
// the encoding cannot represent panics loudly — such a checkpoint can only
// come from a boxed run of a domain the raw gate would reject, which resume
// on the unboxed core does not support.
func (rc *rawCompiled[X, D]) restore(cp *Checkpoint[X, D]) {
	for _, e := range cp.Sigma {
		if j, ok := rc.idx[e.X]; ok {
			rc.raw.RawEncode(rc.words[j*rc.stride:(j+1)*rc.stride], e.V)
		}
	}
}

// rawCore is the unboxed execution core: rawCompiled's word store plus the
// structured operator and the watchdog hook.
type rawCore[X comparable, D any] struct {
	*rawCompiled[X, D]
	// op is NOT instrumented — on the raw side the phase observation runs on
	// words (rawPhase) and is issued explicitly by the step function, in the
	// same before-apply position where observedOp.Apply issues it.
	op rawOperator[D]
	wd *watchdog[X]
	g  *evalGuard
}

func (rc *rawCore[X, D]) shape() *denseShape[X, D] { return rc.denseShape }

// rawPhase is PhaseOf on encoded values: equality is word equality because
// encodings are canonical, and RawLeq mirrors the boxed order bit for bit.
func rawPhase[D any](r lattice.Raw[D], old, new []uint64) Phase {
	if r.RawEq(new, old) {
		return PhaseStable
	}
	if r.RawLeq(new, old) {
		return PhaseNarrow
	}
	return PhaseWiden
}

// rawEval is the reusable evaluation environment of one raw run (or, under
// PSW, of one stratum), the unboxed twin of denseEval: newv receives the
// right-hand-side value of the unknown cur points at when thunk runs.
type rawEval struct {
	cur   int
	newv  []uint64
	thunk func() struct{}
}

// evaluator builds the closure environment of one raw run. Per-evaluator
// scratch: newv receives the right-hand-side value, ext the encoding of an
// out-of-system read. One stratum owns one evaluator, so the buffers are
// never shared across goroutines.
func (rc *rawCore[X, D]) evaluator() *rawEval {
	stride := rc.stride
	words := rc.words
	raw := rc.raw
	e := &rawEval{newv: make([]uint64, stride)}
	ext := make([]uint64, stride)

	// getRaw translates a right-hand side's X-typed reads to word slices, the
	// raw twin of denseEval.get; out-of-system reads encode σ₀ into ext (the
	// returned slice is only valid until the next get, which fused right-hand
	// sides respect by consuming each read before the next).
	var getRaw func(X) []uint64
	if rc.identInt {
		n := len(rc.order)
		initInt := any(rc.init).(func(int) D)
		getRaw = any(func(y int) []uint64 {
			if uint(y) < uint(n) {
				return words[y*stride : (y+1)*stride]
			}
			raw.RawEncode(ext, initInt(y))
			return ext
		}).(func(X) []uint64)
	} else {
		getRaw = func(y X) []uint64 {
			if j, ok := rc.idx[y]; ok {
				return words[j*stride : (j+1)*stride]
			}
			raw.RawEncode(ext, rc.init(y))
			return ext
		}
	}
	// getBoxed is the boundary adapter for right-hand sides without a fused
	// raw form: decode on read, evaluate boxed, encode the result.
	getBoxed := func(y X) D {
		if j, ok := rc.idx[y]; ok {
			return raw.RawDecode(words[j*stride : (j+1)*stride])
		}
		return rc.init(y)
	}
	// The thunk runs under the eval guard so that panics — in the right-hand
	// side or in the result encoding — become EvalErrors, exactly like boxed
	// evaluation failures.
	e.thunk = func() struct{} {
		if rf := rc.rawRHS[e.cur]; rf != nil {
			rf(getRaw, e.newv)
		} else {
			raw.RawEncode(e.newv, rc.rhs[e.cur](getBoxed))
		}
		return struct{}{}
	}
	return e
}

func (rc *rawCore[X, D]) stepper() func(i int) (bool, int, *EvalError) {
	stride := rc.stride
	words := rc.words
	raw := rc.raw
	e := rc.evaluator()
	// res receives the combined result of each step.
	res := make([]uint64, stride)
	return func(i int) (bool, int, *EvalError) {
		e.cur = i
		x := rc.order[i]
		_, attempts, ee := guardedEval(rc.g, x, e.thunk)
		if ee != nil {
			return false, attempts, ee
		}
		old := words[i*stride : (i+1)*stride]
		if rc.wd != nil {
			rc.wd.observe(x, rawPhase(raw, old, e.newv))
		}
		rc.op.rawApply(raw, res, old, e.newv)
		if raw.RawEq(old, res) {
			return false, attempts, nil
		}
		copy(old, res)
		return true, attempts, nil
	}
}

// atomicWords is the racy-but-atomic word store of the chaotic solver: the
// same flat stride-words-per-unknown layout as rawCompiled, but every access
// goes through sync/atomic so concurrent workers can read a slot while its
// single writer (CPW's claim protocol guarantees at most one) replaces it.
//
// For single-word domains (flat, sign, parity, powerset) an atomic load IS a
// consistent snapshot. For wider strides a per-unknown seqlock removes torn
// values entirely: the writer makes the version odd, stores the words, and
// makes it even again; a reader retries until it sees the same even version
// on both sides of its copy. Readers therefore always observe some value the
// slot actually held — possibly a stale one, which chaotic warrowing
// tolerates by construction (a staleness-induced change re-queues the
// reader), but never a bit-mix of two values, which nothing tolerates.
type atomicWords struct {
	stride int
	// words is the assignment: unknown i lives at words[i*stride:(i+1)*stride].
	words []uint64
	// seq holds the per-unknown seqlock versions; nil when stride == 1 and
	// plain atomic word access already yields consistent snapshots.
	seq []atomic.Uint32
}

func newAtomicWords(n, stride int) *atomicWords {
	a := &atomicWords{stride: stride, words: make([]uint64, n*stride)}
	if stride > 1 {
		a.seq = make([]atomic.Uint32, n)
	}
	return a
}

// load copies unknown i's value into dst (len ≥ stride) as a consistent
// snapshot.
func (a *atomicWords) load(i int, dst []uint64) {
	base := i * a.stride
	if a.seq == nil {
		dst[0] = atomic.LoadUint64(&a.words[base])
		return
	}
	for {
		v := a.seq[i].Load()
		if v&1 == 0 {
			for k := 0; k < a.stride; k++ {
				dst[k] = atomic.LoadUint64(&a.words[base+k])
			}
			if a.seq[i].Load() == v {
				return
			}
		}
		// A write is in flight; yield so its goroutine can finish even on
		// GOMAXPROCS=1.
		runtime.Gosched()
	}
}

// store publishes src (len ≥ stride) as unknown i's value. Only one
// goroutine may store to a given slot at a time — CPW's running claim is
// what enforces that.
func (a *atomicWords) store(i int, src []uint64) {
	base := i * a.stride
	if a.seq == nil {
		atomic.StoreUint64(&a.words[base], src[0])
		return
	}
	a.seq[i].Add(1) // odd: write in flight
	for k := 0; k < a.stride; k++ {
		atomic.StoreUint64(&a.words[base+k], src[k])
	}
	a.seq[i].Add(1) // even: published
}

// buildCore picks the value representation for a compiled solve and builds
// the core together with its watchdog. The unboxed store requires all three
// of: a core selection that allows it (anything but CoreDense), a structured
// update operator, and a lattice with a raw encoding whose initial
// assignment encodes cleanly; any miss falls back to boxed values with the
// exact pre-unboxed behavior.
func buildCore[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (execCore[X, D], *watchdog[X]) {
	if cfg.Core != CoreDense {
		if ro, ok := op.(rawOperator[D]); ok {
			if raw := lattice.AsRaw[D](l); raw != nil {
				if rc, ok := tryRawCompile(sys, raw, init); ok {
					wd := newWatchdog(cfg, rc.idx)
					return &rawCore[X, D]{rawCompiled: rc, op: ro, wd: wd, g: newEvalGuard(cfg)}, wd
				}
			}
		}
	}
	c := compile(sys, init)
	wd := newWatchdog(cfg, c.idx)
	return &boxedCore[X, D]{compiled: c, l: l, op: instrument(wd, l, op), g: newEvalGuard(cfg)}, wd
}
