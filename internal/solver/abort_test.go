package solver

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// sidesOf views a finite pure system as a side-effecting one with no side
// effects, so SLR⁺ joins the all-solvers tables below.
func sidesOf(sys *eqn.System[string, lattice.Nat]) eqn.Sides[string, lattice.Nat] {
	return func(x string) eqn.SideRHS[string, lattice.Nat] {
		rhs := sys.RHS(x)
		if rhs == nil {
			return nil
		}
		return func(get func(string) lattice.Nat, _ func(string, lattice.Nat)) lattice.Nat {
			return rhs(get)
		}
	}
}

// allSolvers adapts every solver entry point to a uniform signature on the
// Example 1 system, so bound-honoring contracts can be asserted across the
// whole stack in one table.
func allSolvers() map[string]func(cfg Config) (map[string]lattice.Nat, error) {
	l := lattice.NatInf
	return map[string]func(cfg Config) (map[string]lattice.Nat, error){
		"rr": func(cfg Config) (map[string]lattice.Nat, error) {
			sigma, _, err := RR(example1System(), l, natWarrow(), zeroInit, cfg)
			return sigma, err
		},
		"w": func(cfg Config) (map[string]lattice.Nat, error) {
			sigma, _, err := W(example1System(), l, natWarrow(), zeroInit, cfg)
			return sigma, err
		},
		"srr": func(cfg Config) (map[string]lattice.Nat, error) {
			sigma, _, err := SRR(example1System(), l, natWarrow(), zeroInit, cfg)
			return sigma, err
		},
		"sw": func(cfg Config) (map[string]lattice.Nat, error) {
			sigma, _, err := SW(example1System(), l, natWarrow(), zeroInit, cfg)
			return sigma, err
		},
		"psw": func(cfg Config) (map[string]lattice.Nat, error) {
			sigma, _, err := PSW(example1System(), l, natWarrow(), zeroInit, cfg)
			return sigma, err
		},
		"slr2": func(cfg Config) (map[string]lattice.Nat, error) {
			sigma, _, err := SLR2(example1System(), l, natWarrow(), zeroInit, cfg)
			return sigma, err
		},
		"slr3": func(cfg Config) (map[string]lattice.Nat, error) {
			sigma, _, err := SLR3(example1System(), l, natWarrow(), zeroInit, cfg)
			return sigma, err
		},
		"slr4": func(cfg Config) (map[string]lattice.Nat, error) {
			sigma, _, err := SLR4(example1System(), l, natWarrow(), zeroInit, cfg)
			return sigma, err
		},
		"rld": func(cfg Config) (map[string]lattice.Nat, error) {
			res, err := RLD(example1System().AsPure(), l, natWarrow(), zeroInit, "x1", cfg)
			return res.Values, err
		},
		"slr": func(cfg Config) (map[string]lattice.Nat, error) {
			res, err := SLR(example1System().AsPure(), l, natWarrow(), zeroInit, "x1", cfg)
			return res.Values, err
		},
		"slr+": func(cfg Config) (map[string]lattice.Nat, error) {
			res, err := SLRPlus(sidesOf(example1System()), l, natWarrow(), zeroInit, "x1", cfg)
			return res.Values, err
		},
	}
}

// TestAllSolversHonorCancellation: every solver entry point returns promptly
// on an already-cancelled context, with an AbortReport carrying reason
// cancel, an error matching context.Canceled, and a (possibly partial)
// non-nil assignment.
func TestAllSolversHonorCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, solve := range allSolvers() {
		t.Run(name, func(t *testing.T) {
			sigma, err := solve(Config{MaxEvals: 100000, Ctx: ctx})
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want a context.Canceled abort", err)
			}
			rep, ok := ReportOf(err)
			if !ok || rep.Reason != AbortCancel {
				t.Fatalf("report = %+v (ok=%v), want reason cancel", rep, ok)
			}
			if sigma == nil {
				t.Error("aborted solve returned a nil assignment, want the partial state")
			}
		})
	}
}

// TestAllSolversHonorDeadline: on the diverging Example 1 workload, every
// solver trips a short wall-clock bound with reason deadline and an error
// matching context.DeadlineExceeded, instead of running to the eval budget.
func TestAllSolversHonorDeadline(t *testing.T) {
	for name, solve := range allSolvers() {
		t.Run(name, func(t *testing.T) {
			// SRR, SW, PSW, SLR and SLR⁺ terminate on Example 1, so give the
			// deadline a head start over the first scheduling-point check.
			sigma, err := solve(Config{Timeout: time.Nanosecond})
			if err == nil {
				t.Skip("solver finished before the first deadline check")
			}
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want a deadline abort", err)
			}
			rep, ok := ReportOf(err)
			if !ok || rep.Reason != AbortDeadline {
				t.Fatalf("report = %+v (ok=%v), want reason deadline", rep, ok)
			}
			if sigma == nil {
				t.Error("aborted solve returned a nil assignment, want the partial state")
			}
		})
	}
}

// TestOscillationWatchdogOnExample1: with MaxFlips armed, RR's ⊟ divergence
// on Example 1 is caught by its narrow→widen signature long before the eval
// budget, and the report names the oscillating unknowns.
func TestOscillationWatchdogOnExample1(t *testing.T) {
	sigma, st, err := RR(example1System(), lattice.NatInf, natWarrow(), zeroInit,
		Config{MaxEvals: 100000, MaxFlips: 8})
	rep, ok := ReportOf(err)
	if !ok || rep.Reason != AbortOscillation {
		t.Fatalf("err = %v (report ok=%v), want an oscillation abort", err, ok)
	}
	if errors.Is(err, ErrEvalBudget) {
		t.Error("oscillation abort must not match ErrEvalBudget")
	}
	if st.Evals >= 100000 || rep.Evals != st.Evals {
		t.Errorf("Evals = %d, report %d: the watchdog should fire well before the budget", st.Evals, rep.Evals)
	}
	if rep.Widens == 0 || rep.Narrows == 0 {
		t.Errorf("report phases widens=%d narrows=%d, want both nonzero", rep.Widens, rep.Narrows)
	}
	if len(rep.Hottest) == 0 {
		t.Fatal("report lists no hottest unknowns")
	}
	if rep.Hottest[0].Updates == 0 || rep.Hottest[0].Flips <= 8 {
		t.Errorf("hottest entry %+v should record the oscillating traffic (>8 flips)", rep.Hottest[0])
	}
	var flipped int
	for _, n := range rep.FlipHist {
		flipped += n
	}
	if flipped == 0 {
		t.Error("flip histogram empty, want the oscillation fingerprint")
	}
	if len(sigma) != 3 {
		t.Errorf("partial assignment has %d unknowns, want all 3", len(sigma))
	}
	if !strings.Contains(err.Error(), "oscillation") {
		t.Errorf("error text %q does not mention oscillation", err)
	}
}

// TestBudgetAbortCarriesReport: a budget abort still matches the legacy
// ErrEvalBudget sentinel, retains the legacy message fragment, and now also
// carries the structured report with exact eval accounting and a hottest
// list sorted by update count.
func TestBudgetAbortCarriesReport(t *testing.T) {
	_, st, err := RR(example1System(), lattice.NatInf, natWarrow(), zeroInit, Config{MaxEvals: 100})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("err = %v, want ErrEvalBudget compatibility", err)
	}
	if !strings.Contains(err.Error(), "evaluation budget exceeded") {
		t.Errorf("error text %q lost the legacy budget phrase", err)
	}
	rep, ok := ReportOf(err)
	if !ok || rep.Reason != AbortBudget {
		t.Fatalf("report = %+v (ok=%v), want reason budget", rep, ok)
	}
	if rep.Evals != st.Evals || rep.Evals != 100 {
		t.Errorf("report Evals = %d, stats %d, want exactly 100", rep.Evals, st.Evals)
	}
	for i := 1; i < len(rep.Hottest); i++ {
		if rep.Hottest[i].Updates > rep.Hottest[i-1].Updates {
			t.Errorf("Hottest not sorted by updates: %+v", rep.Hottest)
		}
	}
}

// TestUnboundedConfigHasNilWatchdog: a Config with no bound at all must not
// arm the watchdog, so unbounded benchmark runs pay zero instrumentation.
func TestUnboundedConfigHasNilWatchdog(t *testing.T) {
	if wd := newWatchdog[string](Config{}, nil); wd != nil {
		t.Fatal("newWatchdog(Config{}) != nil, unbounded runs would pay for instrumentation")
	}
	if wd := newWatchdog[string](Config{MaxFlips: 1}, nil); wd == nil {
		t.Fatal("newWatchdog with MaxFlips = nil, the oscillation bound is ignored")
	}
	var wd *watchdog[string]
	if err := wd.check(1 << 30); err != nil {
		t.Fatalf("nil watchdog check = %v, want nil", err)
	}
	if err := wd.abort(AbortBudget, 0); !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("nil watchdog abort = %v, want the bare sentinel", err)
	}
}

// TestTwoPhaseSharesDeadline: both phases of a two-phase baseline run
// against one absolute deadline; the second phase must not restart the
// clock. An expired bound aborts in phase 1 already.
func TestTwoPhaseSharesDeadline(t *testing.T) {
	l := lattice.Ints
	type v = lattice.Interval
	sys := func(x string) eqn.SideRHS[string, v] {
		return func(get func(string) v, _ func(string, v)) v {
			old := get(x)
			if old.IsEmpty() {
				return lattice.Singleton(0)
			}
			return lattice.NewInterval(old.Lo, old.Hi.Add(lattice.Fin(1)))
		}
	}
	_, err := TwoPhaseSides(sys, l, func(string) v { return lattice.EmptyInterval }, "x",
		Config{Timeout: time.Nanosecond})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline abort from the widening phase", err)
	}
}

// TestRRCountsInterruptedSweep pins the satellite fix for RR's round
// accounting: a sweep cut short by the budget counts toward Stats.Rounds
// (Example 1 has 3 unknowns; budget 4 stops inside sweep 2), while an abort
// at an exact sweep boundary does not start a phantom round.
func TestRRCountsInterruptedSweep(t *testing.T) {
	l := lattice.NatInf
	_, st, err := RR(example1System(), l, natWarrow(), zeroInit, Config{MaxEvals: 4})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("err = %v, want budget abort", err)
	}
	if st.Evals != 4 {
		t.Errorf("Evals = %d, want 4", st.Evals)
	}
	if st.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2: the interrupted second sweep performed an evaluation", st.Rounds)
	}

	// Budget 3 is an exact sweep boundary: the abort fires before the first
	// evaluation of sweep 2, which therefore never becomes a round.
	_, st, err = RR(example1System(), l, natWarrow(), zeroInit, Config{MaxEvals: 3})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("err = %v, want budget abort", err)
	}
	if st.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1: no evaluation of sweep 2 happened", st.Rounds)
	}
}

// TestSLRPlusSideSolveBudgetPropagates pins the satellite fix for the
// swallowed side-callback error: with budget 1, main's side effect discovers
// the fresh global z, solving z trips the budget inside the callback, and
// main finishes without another evaluation — the solver must report the
// abort, not success over a truncated run (pre-fix, z silently kept its
// initial value).
func TestSLRPlusSideSolveBudgetPropagates(t *testing.T) {
	l := lattice.NatInf
	sys := func(x string) eqn.SideRHS[string, lattice.Nat] {
		if x != "main" {
			return nil
		}
		return func(_ func(string) lattice.Nat, side func(string, lattice.Nat)) lattice.Nat {
			side("z", lattice.NatOf(5))
			return lattice.NatOf(0)
		}
	}
	res, err := SLRPlus(sys, l, natWarrow(), zeroInit, "main", Config{MaxEvals: 1})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("err = %v, want the budget abort raised inside the side callback", err)
	}
	if _, ok := res.Values["z"]; !ok {
		t.Error("partial assignment lost the side-effected unknown z")
	}
}

// TestBandKeyInt64Reference pins the satellite fix for the 32-bit key
// overflow: priority bands live in bits 32 and up, so keys must be computed
// in int64 — in int, band<<32 is 0 on 32-bit platforms and every band
// collapses. The reference values and the band-dominance property below
// only hold with 64-bit arithmetic (the GOARCH=386 build in tier1 guards
// the operand types mechanically).
func TestBandKeyInt64Reference(t *testing.T) {
	cases := []struct {
		band, count int
		want        int64
	}{
		{0, 0, 0},
		{0, 5, -5},
		{1, 0, 1 << 32},
		{1, 3, 1<<32 - 3},
		{3, 7, 3<<32 - 7},
	}
	for _, c := range cases {
		if got := bandKey(c.band, c.count); got != c.want {
			t.Errorf("bandKey(%d, %d) = %d, want %d", c.band, c.count, got, c.want)
		}
	}
	// Band dominance: any key of band b+1 exceeds every key of band b, even
	// after a billion discoveries — the invariant SLRPlusKeyed's termination
	// argument needs.
	if bandKey(1, 1_000_000_000) <= bandKey(0, 0) {
		t.Error("band 1 key does not dominate band 0")
	}
	if bandKey(2, 1<<31) <= bandKey(1, 0) {
		t.Error("band 2 key does not dominate band 1")
	}
}

// TestAbortErrorIsCrossSolver: two aborts match via errors.Is exactly when
// their reasons agree — the contract assertPSWMatchesSW relies on.
func TestAbortErrorIsCrossSolver(t *testing.T) {
	budget := &AbortError{Report: AbortReport{Reason: AbortBudget}}
	budget2 := &AbortError{Report: AbortReport{Reason: AbortBudget, Evals: 7}}
	osc := &AbortError{Report: AbortReport{Reason: AbortOscillation}}
	if !errors.Is(budget, budget2) {
		t.Error("same-reason aborts should match")
	}
	if errors.Is(budget, osc) {
		t.Error("different-reason aborts should not match")
	}
	if !errors.Is(budget, ErrEvalBudget) {
		t.Error("budget abort should match the legacy sentinel")
	}
	if errors.Is(osc, ErrEvalBudget) {
		t.Error("oscillation abort must not match ErrEvalBudget")
	}
}
