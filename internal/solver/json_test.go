package solver

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// zeroHistJSON renders the JSON of an all-zero Hist, so the golden strings
// below stay readable.
func zeroHistJSON() string {
	return "[" + strings.TrimSuffix(strings.Repeat("0,", HistBuckets), ",") + "]"
}

// TestStatsJSONGolden pins the wire format of Stats: the daemon's structured
// logs and metrics endpoint serialize Stats verbatim, so a renamed or
// reordered field is a protocol change and must fail here first.
func TestStatsJSONGolden(t *testing.T) {
	st := Stats{
		Evals:      1,
		Retries:    2,
		Updates:    3,
		Restarts:   4,
		Rounds:     5,
		Unknowns:   6,
		MaxQueue:   7,
		WallNs:     8,
		Workers:    9,
		SCCs:       10,
		Strata:     11,
		Contention: 12,
	}
	got, err := json.Marshal(st)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want := `{"evals":1,"retries":2,"updates":3,"restarts":4,"rounds":5,"unknowns":6,` +
		`"max_queue":7,"wall_ns":8,"workers":9,"sccs":10,"strata":11,` +
		`"scc_size":` + zeroHistJSON() + `,"scc_depth":` + zeroHistJSON() +
		`,"worker_evals":` + zeroHistJSON() + `,"contention":12}`
	if string(got) != want {
		t.Errorf("Stats JSON drifted:\n got %s\nwant %s", got, want)
	}

	var back Stats
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != st {
		t.Errorf("round trip: got %+v, want %+v", back, st)
	}
}

// TestAbortReportJSONGolden pins the wire format of AbortReport, including
// the string rendering of the reason, the bound attribution, the nested
// hottest rows and the flattened failure cause. Checkpoint is deliberately
// absent: the wire carries checkpoints through MarshalCheckpoint, never JSON.
func TestAbortReportJSONGolden(t *testing.T) {
	rep := AbortReport{
		Reason:  AbortDeadline,
		Bound:   "timeout",
		Evals:   12,
		Elapsed: 5 * time.Millisecond,
		Widens:  3,
		Narrows: 4,
		Hottest: []HotUnknown{{Unknown: "x1", Updates: 9, Flips: 2}},
		Failure: &EvalError{Unknown: "x2", Attempt: 2, Cause: errors.New("boom")},
		Checkpoint: &Checkpoint[string, int]{
			Solver: "rr",
		},
	}
	got, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want := `{"reason":"deadline","bound":"timeout","evals":12,"elapsed_ns":5000000,` +
		`"widens":3,"narrows":4,` +
		`"hottest":[{"unknown":"x1","updates":9,"flips":2}],` +
		`"flip_hist":` + zeroHistJSON() + `,` +
		`"failure":{"unknown":"x2","attempt":2,"cause":"boom"}}`
	if string(got) != want {
		t.Errorf("AbortReport JSON drifted:\n got %s\nwant %s", got, want)
	}

	var back AbortReport
	if err := json.Unmarshal(got, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Reason != AbortDeadline || back.Bound != "timeout" || back.Evals != 12 ||
		back.Elapsed != 5*time.Millisecond || back.Widens != 3 || back.Narrows != 4 {
		t.Errorf("round trip lost scalar fields: %+v", back)
	}
	if len(back.Hottest) != 1 || back.Hottest[0] != rep.Hottest[0] {
		t.Errorf("round trip lost hottest rows: %+v", back.Hottest)
	}
	if back.Failure == nil || back.Failure.Unknown != "x2" || back.Failure.Attempt != 2 ||
		back.Failure.Cause == nil || back.Failure.Cause.Error() != "boom" {
		t.Errorf("round trip lost failure: %+v", back.Failure)
	}
	if back.Checkpoint != nil {
		t.Error("Checkpoint leaked through JSON; the wire format for checkpoints is MarshalCheckpoint")
	}
}

// TestAbortReportJSONOmitsEmpty: non-deadline aborts carry no bound, and
// reports without hottest rows or failures omit those keys entirely, so log
// lines stay minimal.
func TestAbortReportJSONOmitsEmpty(t *testing.T) {
	got, err := json.Marshal(AbortReport{Reason: AbortBudget, Evals: 100})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	want := `{"reason":"budget","evals":100,"elapsed_ns":0,"widens":0,"narrows":0,` +
		`"flip_hist":` + zeroHistJSON() + `}`
	if string(got) != want {
		t.Errorf("minimal AbortReport JSON drifted:\n got %s\nwant %s", got, want)
	}
}

// TestAbortReasonJSONRejectsUnknown: decoding an unrecognized reason name is
// an error, not a silent zero value — a daemon must not misreport a remote
// abort as "budget" because of a version skew.
func TestAbortReasonJSONRejectsUnknown(t *testing.T) {
	var r AbortReason
	if err := json.Unmarshal([]byte(`"totally-new-reason"`), &r); err == nil {
		t.Fatal("unknown reason decoded without error")
	}
	for _, cand := range []AbortReason{AbortBudget, AbortDeadline, AbortCancel, AbortOscillation, AbortEvalFailure} {
		data, err := json.Marshal(cand)
		if err != nil {
			t.Fatalf("marshal %v: %v", cand, err)
		}
		var back AbortReason
		if err := json.Unmarshal(data, &back); err != nil || back != cand {
			t.Errorf("round trip of %v: got %v, err %v", cand, back, err)
		}
	}
}
