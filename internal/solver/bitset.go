package solver

import "math/bits"

// bitset is a fixed-capacity set over the order indices 0..n-1, the dense
// replacement for the map[X]bool present-sets of the worklist solvers: one
// cache line covers 512 unknowns, membership is a mask test, and clearing
// for reuse is a memclr.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)>>6) }

func (b bitset) has(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

func (b bitset) set(i int) { b[i>>6] |= 1 << uint(i&63) }

func (b bitset) clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// nextSet returns the smallest set index ≥ from, or -1 when none exists.
func (b bitset) nextSet(from int) int {
	if w := from >> 6; w < len(b) {
		if word := b[w] >> uint(from&63); word != 0 {
			return from + bits.TrailingZeros64(word)
		}
		for w++; w < len(b); w++ {
			if b[w] != 0 {
				return w<<6 + bits.TrailingZeros64(b[w])
			}
		}
	}
	return -1
}
