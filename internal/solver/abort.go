package solver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"warrow/internal/lattice"
)

// AbortReason says why the divergence watchdog stopped a solve.
type AbortReason int8

// Abort reasons.
const (
	// AbortBudget: the evaluation budget (Config.MaxEvals) ran out.
	AbortBudget AbortReason = iota
	// AbortDeadline: the wall-clock bound (Config.Timeout, or a deadline
	// carried by Config.Ctx) passed.
	AbortDeadline
	// AbortCancel: Config.Ctx was cancelled.
	AbortCancel
	// AbortOscillation: a single unknown alternated narrow→widen more than
	// Config.MaxFlips times — the divergence signature of ⊟ on the
	// unstructured solvers (Examples 1 and 2) and of self-feeding globals
	// under SLR⁺.
	AbortOscillation
	// AbortEvalFailure: a right-hand-side evaluation panicked or failed and
	// was not healed by the retry policy; the failing unknown is pinned in
	// AbortReport.Failure.
	AbortEvalFailure
)

// String renders the reason.
func (r AbortReason) String() string {
	switch r {
	case AbortBudget:
		return "budget"
	case AbortDeadline:
		return "deadline"
	case AbortCancel:
		return "cancel"
	case AbortOscillation:
		return "oscillation"
	case AbortEvalFailure:
		return "eval-failure"
	default:
		return "?"
	}
}

// MarshalJSON renders the reason as its string name, so structured logs and
// wire responses say "deadline" rather than an opaque ordinal.
func (r AbortReason) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.String())
}

// UnmarshalJSON inverts MarshalJSON, rejecting unknown reason names.
func (r *AbortReason) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for _, cand := range []AbortReason{AbortBudget, AbortDeadline, AbortCancel, AbortOscillation, AbortEvalFailure} {
		if cand.String() == s {
			*r = cand
			return nil
		}
	}
	return fmt.Errorf("solver: unknown abort reason %q", s)
}

// HotUnknown is one row of AbortReport.Hottest: an unknown together with
// the update traffic the watchdog observed on it.
type HotUnknown struct {
	// Unknown is the rendered unknown (fmt.Sprint of the solver's X).
	Unknown string `json:"unknown"`
	// Updates counts the non-stable update steps applied to it.
	Updates int `json:"updates"`
	// Flips counts its narrow→widen phase alternations.
	Flips int `json:"flips"`
}

// AbortReport is the structured diagnosis attached to every aborted solve:
// why the run stopped, how much work it had done, which unknowns were
// hottest, and how the ∇/Δ phases were distributed — enough to decide
// whether to escalate the workload to a terminating structured solver
// (SRR/SW) or to reject it. Like Stats, the JSON field names are wire
// format, pinned by a golden test.
type AbortReport struct {
	// Reason says which bound tripped.
	Reason AbortReason `json:"reason"`
	// Bound, on AbortDeadline aborts, names the bound that actually fired
	// when both Config.Timeout and a Ctx deadline can be armed: "timeout"
	// for the wall-clock bound derived from Config.Timeout, "ctx" for the
	// deadline carried by Config.Ctx. The effective deadline is always the
	// minimum of the two; Bound records which one that minimum came from.
	// Empty for every other abort reason.
	Bound string `json:"bound,omitempty"`
	// Evals counts right-hand-side evaluations performed before the abort.
	Evals int `json:"evals"`
	// Elapsed is the wall-clock duration of the run up to the abort.
	Elapsed time.Duration `json:"elapsed_ns"`
	// Widens and Narrows count the update steps per phase across all
	// unknowns, as classified by the ⊟ hook (PhaseOf).
	Widens  int `json:"widens"`
	Narrows int `json:"narrows"`
	// Hottest lists the most-updated unknowns, descending; at most
	// maxHotUnknowns entries.
	Hottest []HotUnknown `json:"hottest,omitempty"`
	// FlipHist is a power-of-two histogram over the per-unknown
	// narrow→widen flip counts (unknowns that never flipped are omitted).
	// A heavy tail here is the oscillation fingerprint; an empty histogram
	// with a huge Evals count points at slow convergence instead.
	FlipHist Hist `json:"flip_hist"`
	// Failure pins the failing evaluation on AbortEvalFailure aborts: the
	// unknown, the attempt count, and the recovered cause.
	Failure *EvalError `json:"failure,omitempty"`
	// Checkpoint, when non-nil, is the *Checkpoint[X, D] captured at the
	// abort's scheduling point; extract it with CheckpointOf. It is typed
	// any because reports are element-type-agnostic. Never serialized with
	// the report: the wire carries checkpoints through their own versioned
	// format (MarshalCheckpoint), not through JSON.
	Checkpoint any `json:"-"`
}

// String renders a one-line summary of the report.
func (r AbortReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "aborted (%s) after %d evals in %v: %d widens, %d narrows",
		r.Reason, r.Evals, r.Elapsed.Round(time.Microsecond), r.Widens, r.Narrows)
	if r.Failure != nil {
		fmt.Fprintf(&b, "; failed unknown %s (attempt %d): %v", r.Failure.Unknown, r.Failure.Attempt, r.Failure.Cause)
	}
	for i, h := range r.Hottest {
		if i == 0 {
			b.WriteString("; hottest:")
		}
		fmt.Fprintf(&b, " %s(%d updates, %d flips)", h.Unknown, h.Updates, h.Flips)
	}
	return b.String()
}

// AbortError is the error every aborted solve returns alongside its partial
// assignment. It matches the legacy sentinels through errors.Is — a budget
// abort matches ErrEvalBudget, a cancellation matches context.Canceled and
// a deadline abort matches context.DeadlineExceeded — so callers may keep
// testing with the sentinels while the report carries the diagnosis.
type AbortError struct {
	Report AbortReport
}

// Error implements error. The budget message deliberately contains the
// legacy "evaluation budget exceeded" phrase so textual matchers survive.
func (e *AbortError) Error() string {
	switch e.Report.Reason {
	case AbortBudget:
		return "solver: evaluation budget exceeded; " + e.Report.String()
	case AbortDeadline:
		return "solver: wall-clock deadline exceeded; " + e.Report.String()
	case AbortCancel:
		return "solver: cancelled; " + e.Report.String()
	case AbortOscillation:
		return "solver: divergence watchdog tripped; " + e.Report.String()
	case AbortEvalFailure:
		return "solver: right-hand side failed; " + e.Report.String()
	default:
		return "solver: " + e.Report.String()
	}
}

// Unwrap exposes the failing evaluation of an AbortEvalFailure abort, so
// errors.As finds the *EvalError and errors.Is sees its cause chain
// (ErrTransient for injected faults). Other aborts unwrap to nothing.
func (e *AbortError) Unwrap() error {
	if e.Report.Failure != nil {
		return e.Report.Failure
	}
	return nil
}

// Is implements the errors.Is protocol (see AbortError). Two AbortErrors
// match when they aborted for the same reason, so cross-solver comparisons
// like errors.Is(pswErr, swErr) treat equal-reason aborts as equivalent.
func (e *AbortError) Is(target error) bool {
	if other, ok := target.(*AbortError); ok {
		return other.Report.Reason == e.Report.Reason
	}
	switch e.Report.Reason {
	case AbortBudget:
		return target == ErrEvalBudget
	case AbortDeadline:
		return target == context.DeadlineExceeded
	case AbortCancel:
		return target == context.Canceled
	default:
		return false
	}
}

// ReportOf extracts the AbortReport from a solver error, if it carries one.
func ReportOf(err error) (AbortReport, bool) {
	var ae *AbortError
	if errors.As(err, &ae) {
		return ae.Report, true
	}
	return AbortReport{}, false
}

// maxHotUnknowns bounds AbortReport.Hottest.
const maxHotUnknowns = 5

// watchdog is the per-run robustness monitor shared by all solvers. It owns
// every abort decision — budget, context cancellation, wall-clock deadline
// and ∇/Δ oscillation — and the per-unknown accounting that turns an abort
// into an AbortReport. Solvers consult check at every scheduling point and
// route their operator through instrument, which taps the ⊟ hook (Observe).
//
// A nil watchdog is valid and free: newWatchdog returns nil for an entirely
// unbounded Config, and every method is a no-op on a nil receiver, so
// benchmark-grade runs pay nothing.
//
// All state is guarded by mu because PSW shares one watchdog across its
// worker pool.
type watchdog[X comparable] struct {
	budget   int
	ctx      context.Context
	deadline time.Time
	// bound names the source of deadline — "timeout" (Config.Timeout) or
	// "ctx" (the deadline carried by Config.Ctx) — whichever is the
	// minimum; empty when no wall-clock bound is armed.
	bound    string
	maxFlips int
	start    time.Time

	// idx maps unknowns to their linear-order index for deterministic
	// tie-breaking in AbortReport.Hottest; nil for local solvers, which
	// fall back to the rendered unknown.
	idx map[X]int

	mu      sync.Mutex
	updates map[X]int
	last    map[X]Phase
	flips   map[X]int
	widens  int
	narrows int
	// osc holds the first unknown whose flip count crossed maxFlips; the
	// abort itself happens at the owner's next check, since an Operator has
	// no error channel.
	osc *X
}

// newWatchdog arms a watchdog for cfg, or returns nil when cfg imposes no
// bound at all. idx, when non-nil, maps unknowns to their linear-order
// positions (the global solvers pass the memoized eqn.Index); the watchdog
// uses it to break hottest-unknown ties by index, so reports are stable
// even when concurrent schedules (PSW) observe updates in different
// interleavings. Local solvers pass nil and tie-break on the rendered
// unknown.
func newWatchdog[X comparable](cfg Config, idx map[X]int) *watchdog[X] {
	cfg = cfg.started(time.Now())
	if cfg.MaxEvals <= 0 && cfg.Ctx == nil && cfg.deadline.IsZero() && cfg.MaxFlips <= 0 {
		return nil
	}
	w := &watchdog[X]{
		budget:   cfg.budget(),
		ctx:      cfg.Ctx,
		deadline: cfg.deadline,
		maxFlips: cfg.MaxFlips,
		start:    time.Now(),
		idx:      idx,
		updates:  make(map[X]int),
		last:     make(map[X]Phase),
		flips:    make(map[X]int),
	}
	// The effective wall-clock bound is the minimum of Config.Timeout and
	// the deadline carried by Config.Ctx (when both are set); bound records
	// which of the two that minimum came from, so an AbortDeadline report
	// can say which bound fired. Ties go to "timeout": the explicit solver
	// knob outranks the ambient context.
	if !w.deadline.IsZero() {
		w.bound = "timeout"
	}
	if cfg.Ctx != nil {
		if cd, ok := cfg.Ctx.Deadline(); ok && (w.deadline.IsZero() || cd.Before(w.deadline)) {
			w.deadline = cd
			w.bound = "ctx"
		}
	}
	return w
}

// instrument routes op through the watchdog's ⊟ hook so phases and update
// counts are recorded; a nil watchdog returns op unchanged.
func instrument[X comparable, D any](w *watchdog[X], l lattice.Lattice[D], op Operator[X, D]) Operator[X, D] {
	if w == nil {
		return op
	}
	return Observe(l, op, w.observe)
}

// observe is the ⊟ hook: it records the phase of one update step.
func (w *watchdog[X]) observe(x X, p Phase) {
	if p == PhaseStable {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if p == PhaseRestart {
		// A restarting solver (SLR3/SLR4) reset x to its initial value:
		// forget the phase history so the re-ascension that follows is not
		// counted as a narrow→widen flip. Restart transitions are deliberate
		// iteration; genuine oscillation — alternation with no intervening
		// restart — still accumulates flips and trips MaxFlips.
		delete(w.last, x)
		return
	}
	w.updates[x]++
	if p == PhaseWiden {
		w.widens++
		if w.last[x] == PhaseNarrow {
			w.flips[x]++
			if w.maxFlips > 0 && w.flips[x] > w.maxFlips && w.osc == nil {
				x := x
				w.osc = &x
			}
		}
	} else {
		w.narrows++
	}
	w.last[x] = p
}

// check is the scheduling-point gate: solvers call it with the number of
// evaluations performed so far, immediately before performing another one.
// It returns nil to proceed or an *AbortError to stop; the caller must
// return its partial assignment together with that error.
func (w *watchdog[X]) check(evals int) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if evals >= w.budget {
		return w.abortLocked(AbortBudget, evals)
	}
	if w.osc != nil {
		return w.abortLocked(AbortOscillation, evals)
	}
	// The effective deadline (the min of Timeout and the ctx deadline, see
	// newWatchdog) is checked before the context poll, so deadline aborts
	// are attributed to the bound that is actually the minimum even when
	// both have expired by the time this scheduling point is reached.
	if !w.deadline.IsZero() && !time.Now().Before(w.deadline) {
		return w.abortLocked(AbortDeadline, evals)
	}
	if w.ctx != nil {
		if err := w.ctx.Err(); err != nil {
			reason := AbortCancel
			if errors.Is(err, context.DeadlineExceeded) {
				reason = AbortDeadline
			}
			return w.abortLocked(reason, evals)
		}
	}
	return nil
}

// failEval turns a persistent evaluation failure into an AbortEvalFailure
// abort with the failing unknown pinned. Unlike every other abort reason,
// evaluation failures do not require an armed watchdog — panic isolation is
// unconditional — so a nil receiver builds a minimal report.
func (w *watchdog[X]) failEval(ee *EvalError, evals int) error {
	if w == nil {
		return &AbortError{Report: AbortReport{Reason: AbortEvalFailure, Evals: evals, Failure: ee}}
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	err := w.abortLocked(AbortEvalFailure, evals)
	err.(*AbortError).Report.Failure = ee
	return err
}

// abort builds the abort error from outside the lock (PSW's budget path,
// which accounts evaluations atomically rather than through check). On a
// nil watchdog it degrades to the bare sentinel.
func (w *watchdog[X]) abort(reason AbortReason, evals int) error {
	if w == nil {
		return ErrEvalBudget
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.abortLocked(reason, evals)
}

func (w *watchdog[X]) abortLocked(reason AbortReason, evals int) error {
	rep := AbortReport{
		Reason:  reason,
		Evals:   evals,
		Elapsed: time.Since(w.start),
		Widens:  w.widens,
		Narrows: w.narrows,
	}
	if reason == AbortDeadline {
		rep.Bound = w.bound
		if rep.Bound == "" {
			// A context that reports DeadlineExceeded without exposing its
			// deadline (custom implementations) can only have come from Ctx.
			rep.Bound = "ctx"
		}
	}
	for _, n := range w.flips {
		rep.FlipHist.Observe(n)
	}
	type hot struct {
		x X
		n int
	}
	hottest := make([]hot, 0, len(w.updates))
	for x, n := range w.updates {
		hottest = append(hottest, hot{x, n})
	}
	sort.Slice(hottest, func(i, j int) bool {
		if hottest[i].n != hottest[j].n {
			return hottest[i].n > hottest[j].n
		}
		// Break ties by linear-order index where the solver supplied one,
		// so tied update counts render in a stable, index-consistent order;
		// local solvers fall back to the rendered unknown.
		if w.idx != nil {
			return w.idx[hottest[i].x] < w.idx[hottest[j].x]
		}
		return fmt.Sprint(hottest[i].x) < fmt.Sprint(hottest[j].x)
	})
	if len(hottest) > maxHotUnknowns {
		hottest = hottest[:maxHotUnknowns]
	}
	for _, h := range hottest {
		rep.Hottest = append(rep.Hottest, HotUnknown{
			Unknown: fmt.Sprint(h.x),
			Updates: h.n,
			Flips:   w.flips[h.x],
		})
	}
	return &AbortError{Report: rep}
}
