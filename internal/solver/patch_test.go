package solver

import (
	"reflect"
	"testing"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// patchChain builds a 20-unknown interval chain (big enough for CoreAuto to
// compile): unknown 0 is a constant, every other unknown copies its
// predecessor joined with a per-unknown constant.
func patchChain() *eqn.System[int, lattice.Interval] {
	sys := eqn.NewSystem[int, lattice.Interval]()
	sys.Define(0, nil, func(func(int) lattice.Interval) lattice.Interval {
		return lattice.Singleton(0)
	})
	for i := 1; i < 20; i++ {
		i := i
		sys.Define(i, []int{i - 1}, func(get func(int) lattice.Interval) lattice.Interval {
			return lattice.Ints.Join(get(i-1), lattice.Singleton(int64(i)))
		})
	}
	return sys
}

// TestRedefinePatchesDenseShape pins the reuse contract the incremental
// engine depends on: a same-dependences Redefine patches the memoized
// compiled shape in place — provably the same object, with only the edited
// right-hand-side slot replaced — while a dependence-list change rebuilds
// it. The eqn-side shape maps survive the same-deps edit by pointer
// identity too, so nothing downstream recompiles.
func TestRedefinePatchesDenseShape(t *testing.T) {
	sys := patchChain()
	l := lattice.Ints
	op := WarrowOp[int](l)
	init := eqn.ConstBottom[int, lattice.Interval](l)
	cfg := Config{MaxEvals: 100_000, Core: CoreDense}

	before, _, err := SW(sys, l, op, init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	shAny := sys.ShapeMemo(denseShapeKey, func() any {
		t.Fatal("solve did not memoize the dense shape")
		return nil
	})
	sh := shAny.(*denseShape[int, lattice.Interval])
	idxPtr := reflect.ValueOf(sys.Index()).Pointer()
	inflPtr := reflect.ValueOf(sys.Infl()).Pointer()
	adjBefore := sys.DepGraph()

	// Same deps: raise unknown 5's constant.
	sys.Redefine(5, []int{4}, func(get func(int) lattice.Interval) lattice.Interval {
		return l.Join(get(4), lattice.Singleton(50))
	})

	again := sys.ShapeMemo(denseShapeKey, func() any {
		t.Fatal("same-deps Redefine dropped the dense shape")
		return nil
	}).(*denseShape[int, lattice.Interval])
	if again != sh {
		t.Fatal("same-deps Redefine replaced the dense shape object")
	}
	if got := sh.rhs[5](func(int) lattice.Interval { return l.Bottom() }); !l.Eq(got, lattice.Singleton(50)) {
		t.Fatalf("patched rhs slot evaluates to %s, want [50,50]", l.Format(got))
	}
	if sh.rawRHS[5] != nil {
		t.Fatal("patch did not clear the stale raw twin")
	}
	if reflect.ValueOf(sys.Index()).Pointer() != idxPtr {
		t.Fatal("same-deps Redefine rebuilt Index")
	}
	if reflect.ValueOf(sys.Infl()).Pointer() != inflPtr {
		t.Fatal("same-deps Redefine rebuilt Infl")
	}
	if &sys.DepGraph()[0] != &adjBefore[0] {
		t.Fatal("same-deps Redefine rebuilt DepGraph")
	}

	// The patched shape solves to the edited fixpoint, bit-identical to the
	// map core on the same edited system.
	after, _, err := SW(sys, l, op, init, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mapRes, _, err := SW(sys, l, op, init, Config{MaxEvals: 100_000, Core: CoreMap})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range sys.Order() {
		if !l.Eq(after[x], mapRes[x]) {
			t.Fatalf("patched dense solve of %v = %s, map core = %s", x, l.Format(after[x]), l.Format(mapRes[x]))
		}
	}
	if l.Eq(after[19], before[19]) {
		t.Fatalf("edit did not reach the chain tail: still %s", l.Format(after[19]))
	}

	// Changed deps: unknown 5 now also reads unknown 0. The shape rebuilds.
	sys.Redefine(5, []int{4, 0}, func(get func(int) lattice.Interval) lattice.Interval {
		return l.Join(get(4), get(0))
	})
	if _, _, err := SW(sys, l, op, init, cfg); err != nil {
		t.Fatal(err)
	}
	rebuilt := sys.ShapeMemo(denseShapeKey, func() any {
		t.Fatal("solve did not rebuild the dense shape")
		return nil
	}).(*denseShape[int, lattice.Interval])
	if rebuilt == sh {
		t.Fatal("deps-changed Redefine kept the stale dense shape")
	}
}
