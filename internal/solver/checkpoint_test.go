package solver

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// flakyLoopSystem is loopSystem with injectable transient faults: each
// unknown fails its next failures[x] evaluations by panicking with a cause
// wrapping ErrTransient, then heals. The injection counter is mutex-guarded
// so PSW workers can share it.
func flakyLoopSystem(mu *sync.Mutex, failures map[string]int) *eqn.System[string, iv] {
	l := lattice.Ints
	fail := func(x string) {
		mu.Lock()
		n := failures[x]
		if n > 0 {
			failures[x] = n - 1
		}
		mu.Unlock()
		if n > 0 {
			panic(fmt.Errorf("%w: injected glitch on %s", ErrTransient, x))
		}
	}
	s := eqn.NewSystem[string, iv]()
	s.Define("h", []string{"b"}, func(get func(string) iv) iv {
		fail("h")
		return l.Join(lattice.Singleton(0), get("b").Add(lattice.Singleton(1)))
	})
	s.Define("b", []string{"h"}, func(get func(string) iv) iv {
		fail("b")
		return get("h").RestrictLt(lattice.Singleton(100))
	})
	s.Define("e", []string{"h"}, func(get func(string) iv) iv {
		fail("e")
		return get("h").RestrictGe(lattice.Singleton(100))
	})
	return s
}

// globalSolvers enumerates the global entry points under their checkpoint
// names, PSW at several tier-1 worker counts.
func globalSolvers() map[string]func(*eqn.System[string, iv], Config) (map[string]iv, Stats, error) {
	l := lattice.Ints
	op := func() Operator[string, iv] { return Op[string](Warrow[iv](l)) }
	m := map[string]func(*eqn.System[string, iv], Config) (map[string]iv, Stats, error){
		"rr": func(s *eqn.System[string, iv], cfg Config) (map[string]iv, Stats, error) {
			return RR(s, l, op(), ivInit, cfg)
		},
		"w": func(s *eqn.System[string, iv], cfg Config) (map[string]iv, Stats, error) {
			return W(s, l, op(), ivInit, cfg)
		},
		"srr": func(s *eqn.System[string, iv], cfg Config) (map[string]iv, Stats, error) {
			return SRR(s, l, op(), ivInit, cfg)
		},
		"sw": func(s *eqn.System[string, iv], cfg Config) (map[string]iv, Stats, error) {
			return SW(s, l, op(), ivInit, cfg)
		},
	}
	for _, w := range []int{1, 2, 4} {
		w := w
		m[fmt.Sprintf("psw%d", w)] = func(s *eqn.System[string, iv], cfg Config) (map[string]iv, Stats, error) {
			cfg.Workers = w
			return PSW(s, l, op(), ivInit, cfg)
		}
	}
	return m
}

func sameAssignment(t *testing.T, tag string, got, want map[string]iv) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: assignment has %d unknowns, want %d", tag, len(got), len(want))
	}
	for x, w := range want {
		if g, ok := got[x]; !ok || !lattice.Ints.Eq(g, w) {
			t.Fatalf("%s: σ[%s] = %s, want %s", tag, x, g, w)
		}
	}
}

// TestResumeBitIdentity aborts every global solver at every feasible budget
// and resumes the attached checkpoint with the bound lifted: the resumed
// run must finish with exactly the uninterrupted run's Evals, Updates and
// assignment. Every abort must carry a checkpoint.
func TestResumeBitIdentity(t *testing.T) {
	for name, run := range globalSolvers() {
		t.Run(name, func(t *testing.T) {
			ref, refSt, err := run(loopSystem(), Config{})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			for budget := 1; budget < refSt.Evals; budget++ {
				_, _, err := run(loopSystem(), Config{MaxEvals: budget})
				if err == nil {
					t.Fatalf("budget %d: expected abort", budget)
				}
				cp, ok := CheckpointOf[string, iv](err)
				if !ok {
					t.Fatalf("budget %d: abort carries no checkpoint: %v", budget, err)
				}
				got, gotSt, err := run(loopSystem(), Config{Resume: cp})
				if err != nil {
					t.Fatalf("budget %d: resumed run failed: %v", budget, err)
				}
				if gotSt.Evals != refSt.Evals || gotSt.Updates != refSt.Updates {
					t.Fatalf("budget %d: resumed evals/updates = %d/%d, want %d/%d",
						budget, gotSt.Evals, gotSt.Updates, refSt.Evals, refSt.Updates)
				}
				sameAssignment(t, fmt.Sprintf("budget %d", budget), got, ref)
			}
		})
	}
}

// TestResumeChain aborts, resumes into another abort, and resumes again:
// checkpoints compose, and the final totals still match the uninterrupted
// run.
func TestResumeChain(t *testing.T) {
	for name, run := range globalSolvers() {
		t.Run(name, func(t *testing.T) {
			ref, refSt, err := run(loopSystem(), Config{})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if refSt.Evals < 5 {
				t.Skipf("reference run too short (%d evals)", refSt.Evals)
			}
			_, _, err = run(loopSystem(), Config{MaxEvals: 2})
			cp1, ok := CheckpointOf[string, iv](err)
			if !ok {
				t.Fatalf("first abort carries no checkpoint: %v", err)
			}
			_, _, err = run(loopSystem(), Config{MaxEvals: refSt.Evals - 2, Resume: cp1})
			cp2, ok := CheckpointOf[string, iv](err)
			if !ok {
				t.Fatalf("second abort carries no checkpoint: %v", err)
			}
			got, gotSt, err := run(loopSystem(), Config{Resume: cp2})
			if err != nil {
				t.Fatalf("final resume failed: %v", err)
			}
			if gotSt.Evals != refSt.Evals || gotSt.Updates != refSt.Updates {
				t.Fatalf("chained resume evals/updates = %d/%d, want %d/%d",
					gotSt.Evals, gotSt.Updates, refSt.Evals, refSt.Updates)
			}
			sameAssignment(t, "chained", got, ref)
		})
	}
}

// TestResumeRejectsMismatch: a checkpoint must not resume on a different
// solver, a different system shape, or different element types.
func TestResumeRejectsMismatch(t *testing.T) {
	l := lattice.Ints
	op := Op[string](Warrow[iv](l))
	_, _, err := SW(loopSystem(), l, op, ivInit, Config{MaxEvals: 3})
	cp, ok := CheckpointOf[string, iv](err)
	if !ok {
		t.Fatalf("no checkpoint: %v", err)
	}

	if _, _, err := RR(loopSystem(), l, op, ivInit, Config{Resume: cp}); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("wrong solver accepted: %v", err)
	}

	other := eqn.NewSystem[string, iv]()
	other.Define("z", nil, func(func(string) iv) iv { return lattice.Singleton(1) })
	if _, _, err := SW(other, l, op, ivInit, Config{Resume: cp}); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("wrong system shape accepted: %v", err)
	}

	if _, _, err := SW(loopSystem(), l, op, ivInit, Config{Resume: "not a checkpoint"}); !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("foreign resume value accepted: %v", err)
	}
}

// TestRetryHealsTransientFaults: with a retry policy, transient injected
// faults are retried in place and the run completes with exactly the clean
// run's Evals, Updates and assignment — failed attempts never count.
func TestRetryHealsTransientFaults(t *testing.T) {
	for name, run := range globalSolvers() {
		t.Run(name, func(t *testing.T) {
			ref, refSt, err := run(loopSystem(), Config{})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			var mu sync.Mutex
			faults := map[string]int{"h": 2, "e": 1}
			got, gotSt, err := run(flakyLoopSystem(&mu, faults),
				Config{Retry: RetryPolicy{MaxAttempts: 3}})
			if err != nil {
				t.Fatalf("flaky run with retries failed: %v", err)
			}
			if gotSt.Evals != refSt.Evals || gotSt.Updates != refSt.Updates {
				t.Fatalf("flaky evals/updates = %d/%d, want %d/%d",
					gotSt.Evals, gotSt.Updates, refSt.Evals, refSt.Updates)
			}
			if gotSt.Retries != 3 {
				t.Fatalf("Stats.Retries = %d, want 3", gotSt.Retries)
			}
			sameAssignment(t, "flaky", got, ref)
		})
	}
}

// TestEvalFailureAbortsWithDiagnosis: without retries, an injected fault
// aborts with reason eval-failure, the failing unknown pinned, the cause
// visible to errors.Is, and a resumable checkpoint attached; resuming after
// the fault healed completes with the clean run's exact totals.
func TestEvalFailureAbortsWithDiagnosis(t *testing.T) {
	for name, run := range globalSolvers() {
		t.Run(name, func(t *testing.T) {
			ref, refSt, err := run(loopSystem(), Config{})
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			var mu sync.Mutex
			faults := map[string]int{"b": 1}
			sys := flakyLoopSystem(&mu, faults)
			_, _, err = run(sys, Config{})
			if err == nil {
				t.Fatal("expected eval-failure abort")
			}
			rep, ok := ReportOf(err)
			if !ok || rep.Reason != AbortEvalFailure {
				t.Fatalf("report = %+v (ok=%v), want eval-failure", rep, ok)
			}
			if rep.Failure == nil || rep.Failure.Unknown != "b" || rep.Failure.Attempt != 1 {
				t.Fatalf("Failure = %+v, want unknown b, attempt 1", rep.Failure)
			}
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("errors.Is(err, ErrTransient) = false for %v", err)
			}
			cp, ok := CheckpointOf[string, iv](err)
			if !ok {
				t.Fatalf("no checkpoint on eval failure: %v", err)
			}
			// The injector already consumed its fault; the resumed run sees a
			// healed system and must finish bit-identically.
			got, gotSt, err := run(sys, Config{Resume: cp})
			if err != nil {
				t.Fatalf("resume after heal failed: %v", err)
			}
			if gotSt.Evals != refSt.Evals || gotSt.Updates != refSt.Updates {
				t.Fatalf("healed evals/updates = %d/%d, want %d/%d",
					gotSt.Evals, gotSt.Updates, refSt.Evals, refSt.Updates)
			}
			sameAssignment(t, "healed", got, ref)
		})
	}
}

// TestNonRetryablePanicAbortsFirstAttempt: plain panics are programming
// errors, not transient faults; even with a generous retry budget they
// abort on attempt 1, with the panic text preserved in the cause.
func TestNonRetryablePanicAbortsFirstAttempt(t *testing.T) {
	l := lattice.Ints
	sys := eqn.NewSystem[string, iv]()
	sys.Define("a", nil, func(func(string) iv) iv { panic("nil map write") })
	_, _, err := SW(sys, l, Op[string](Warrow[iv](l)), ivInit,
		Config{Retry: RetryPolicy{MaxAttempts: 5}})
	rep, ok := ReportOf(err)
	if !ok || rep.Reason != AbortEvalFailure {
		t.Fatalf("report = %+v (ok=%v), want eval-failure", rep, ok)
	}
	if rep.Failure.Attempt != 1 {
		t.Fatalf("Attempt = %d, want 1 (plain panics must not be retried)", rep.Failure.Attempt)
	}
	var ee *EvalError
	if !errors.As(err, &ee) || ee.Cause == nil || ee.Cause.Error() != "panic: nil map write" {
		t.Fatalf("cause = %v, want the recovered panic text", err)
	}
}

// TestLocalSolversWarmRestart: the local solvers attach a warm-restart
// checkpoint on abort; resuming it completes and reproduces the loop
// invariants (eval counts are the restarted run's own).
func TestLocalSolversWarmRestart(t *testing.T) {
	l := lattice.Ints
	op := func() Operator[string, iv] { return Op[string](Warrow[iv](l)) }
	runs := map[string]func(Config) (Result[string, iv], error){
		"slr": func(cfg Config) (Result[string, iv], error) {
			return SLR(loopSystem().AsPure(), l, op(), ivInit, "e", cfg)
		},
		"rld": func(cfg Config) (Result[string, iv], error) {
			return RLD(loopSystem().AsPure(), l, op(), ivInit, "e", cfg)
		},
	}
	for name, run := range runs {
		t.Run(name, func(t *testing.T) {
			_, err := run(Config{MaxEvals: 4})
			if err == nil {
				t.Fatal("expected abort")
			}
			cp, ok := CheckpointOf[string, iv](err)
			if !ok {
				t.Fatalf("no checkpoint on local abort: %v", err)
			}
			if len(cp.Sigma) == 0 {
				t.Fatal("local checkpoint carries no assignment")
			}
			res, err := run(Config{Resume: cp})
			if err != nil {
				t.Fatalf("warm restart failed: %v", err)
			}
			if name == "slr" {
				wantLoopInvariants(t, res.Values, name+" resumed")
			} else {
				// RLD is not a generic solver: restarted from mid-widening
				// values it may stabilize above the exact invariants. Require
				// soundness (a superset of the exact result), not precision.
				for x, exact := range map[string]iv{"h": lattice.Range(0, 100), "b": lattice.Range(0, 99), "e": lattice.Singleton(100)} {
					if !l.Leq(exact, res.Values[x]) {
						t.Errorf("rld resumed: σ[%s] = %s does not contain %s", x, res.Values[x], exact)
					}
				}
			}
		})
	}
}

// TestSLRPlusWarmRestart: the side-effecting solver also checkpoints on
// abort and completes from a warm restart.
func TestSLRPlusWarmRestart(t *testing.T) {
	l := lattice.Ints
	const n = 20
	sys := func(x string) eqn.SideRHS[string, iv] {
		if x == "g" {
			return nil
		}
		var i int
		if _, err := fmt.Sscanf(x, "c%d", &i); err != nil {
			return nil
		}
		return func(get func(string) iv, side func(string, iv)) iv {
			side("g", lattice.Singleton(int64(i)))
			if i+1 < n {
				return get(fmt.Sprintf("c%d", i+1))
			}
			return lattice.Singleton(0)
		}
	}
	init := func(string) iv { return lattice.EmptyInterval }
	op := Op[string](Warrow[iv](l))
	ref, err := SLRPlus[string, iv](sys, l, op, init, "c0", Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = SLRPlus[string, iv](sys, l, op, init, "c0", Config{MaxEvals: 5})
	if err == nil {
		t.Fatal("expected abort")
	}
	cp, ok := CheckpointOf[string, iv](err)
	if !ok {
		t.Fatalf("no checkpoint on SLR⁺ abort: %v", err)
	}
	res, err := SLRPlus[string, iv](sys, l, op, init, "c0", Config{Resume: cp})
	if err != nil {
		t.Fatalf("warm restart failed: %v", err)
	}
	if !l.Eq(res.Values["g"], ref.Values["g"]) {
		t.Fatalf("σ[g] = %s after restart, want %s", res.Values["g"], ref.Values["g"])
	}
}

// TestPeriodicCheckpointSink: Config.CheckpointEvery emits snapshots at the
// configured cadence, and a mid-run snapshot resumes to the uninterrupted
// totals.
func TestPeriodicCheckpointSink(t *testing.T) {
	l := lattice.Ints
	op := func() Operator[string, iv] { return Op[string](Warrow[iv](l)) }
	for _, name := range []string{"rr", "sw"} {
		t.Run(name, func(t *testing.T) {
			run := func(cfg Config) (map[string]iv, Stats, error) {
				if name == "rr" {
					return RR(loopSystem(), l, op(), ivInit, cfg)
				}
				return SW(loopSystem(), l, op(), ivInit, cfg)
			}
			ref, refSt, err := run(Config{})
			if err != nil {
				t.Fatal(err)
			}
			var cps []*Checkpoint[string, iv]
			_, _, err = run(Config{
				// The sink alone must not arm the watchdog, so give it a big
				// budget to keep the run bounded-but-complete.
				MaxEvals:        refSt.Evals + 1,
				CheckpointEvery: 3,
				CheckpointSink:  func(cp any) { cps = append(cps, cp.(*Checkpoint[string, iv])) },
			})
			if err != nil {
				t.Fatal(err)
			}
			want := (refSt.Evals - 1) / 3 // thresholds 3, 6, … strictly below the total
			if len(cps) != want {
				t.Fatalf("sink saw %d snapshots, want %d (evals %d, every 3)", len(cps), want, refSt.Evals)
			}
			mid := cps[len(cps)/2]
			got, gotSt, err := run(Config{Resume: mid})
			if err != nil {
				t.Fatalf("resume from periodic snapshot: %v", err)
			}
			if gotSt.Evals != refSt.Evals || gotSt.Updates != refSt.Updates {
				t.Fatalf("resumed evals/updates = %d/%d, want %d/%d",
					gotSt.Evals, gotSt.Updates, refSt.Evals, refSt.Updates)
			}
			sameAssignment(t, "periodic", got, ref)
		})
	}
}

// TestPSWWorkerPanicDrainsPool is the worker-panic regression test: a
// right-hand side that panics inside a PSW worker must surface as a
// structured eval-failure abort (not a process crash), the pool must drain
// without leaking goroutines at every tier-1 worker count, and the failed
// attempt must be rolled back from Stats.Evals — pinned by comparing the
// deterministic workers=1 run against sequential SW on the same system.
func TestPSWWorkerPanicDrainsPool(t *testing.T) {
	l := lattice.Ints
	mk := func() *eqn.System[string, iv] {
		sys := eqn.NewSystem[string, iv]()
		for c := 0; c < 3; c++ {
			h, b := fmt.Sprintf("h%d", c), fmt.Sprintf("b%d", c)
			sys.Define(h, []string{b}, func(get func(string) iv) iv {
				return l.Join(lattice.Singleton(0), get(b).Add(lattice.Singleton(1)))
			})
			sys.Define(b, []string{h}, func(get func(string) iv) iv {
				return get(h).RestrictLt(lattice.Singleton(100))
			})
		}
		sys.Define("bad", []string{"h2"}, func(func(string) iv) iv {
			panic("corrupted fact table")
		})
		return sys
	}
	op := func() Operator[string, iv] { return Op[string](Warrow[iv](l)) }

	_, swSt, swErr := SW(mk(), l, op(), ivInit, Config{})
	if rep, ok := ReportOf(swErr); !ok || rep.Reason != AbortEvalFailure {
		t.Fatalf("SW report = %+v (ok=%v), want eval-failure", rep, ok)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			before := runtime.NumGoroutine()
			_, st, err := PSW(mk(), l, op(), ivInit, Config{Workers: workers})
			rep, ok := ReportOf(err)
			if !ok || rep.Reason != AbortEvalFailure {
				t.Fatalf("report = %+v (ok=%v), want eval-failure", rep, ok)
			}
			if rep.Failure == nil || rep.Failure.Unknown != "bad" {
				t.Fatalf("Failure = %+v, want unknown bad", rep.Failure)
			}
			if _, ok := CheckpointOf[string, iv](err); !ok {
				t.Fatal("worker panic abort carries no checkpoint")
			}
			if workers == 1 && st.Evals != swSt.Evals {
				t.Fatalf("PSW evals = %d, SW evals = %d: failed attempt not rolled back", st.Evals, swSt.Evals)
			}
			deadline := time.Now().Add(5 * time.Second)
			for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
				time.Sleep(time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > before {
				t.Fatalf("goroutine leak after worker panic: %d running, %d before", n, before)
			}
		})
	}
}

// TestAbortHottestTieBreak is the golden test for the hottest-unknown
// ordering: unknowns with tied update counts must render in linear-order
// position, not in lexicographic order of their rendered names ("x10" would
// sort before "x2" as a string).
func TestAbortHottestTieBreak(t *testing.T) {
	l := lattice.Ints
	sys := eqn.NewSystem[string, iv]()
	for _, x := range []string{"x2", "x10", "x1"} {
		x := x
		sys.Define(x, nil, func(func(string) iv) iv { return lattice.Singleton(1) })
	}
	// Every unknown updates exactly once (⊥ → [1,1]); the budget trips on
	// the next scheduling point, with a three-way tie in the update counts.
	_, _, err := RR(sys, l, Op[string](Warrow[iv](l)), ivInit, Config{MaxEvals: 3})
	rep, ok := ReportOf(err)
	if !ok {
		t.Fatalf("no report: %v", err)
	}
	var got []string
	for _, h := range rep.Hottest {
		got = append(got, h.Unknown)
	}
	want := []string{"x2", "x10", "x1"} // the system's linear (definition) order
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Hottest order = %v, want linear order %v", got, want)
	}
}

// identityCodec serializes string/string checkpoints verbatim.
func identityCodec() Codec[string, string] {
	id := func(s string) string { return s }
	idErr := func(s string) (string, error) { return s, nil }
	return Codec[string, string]{EncodeX: id, DecodeX: idErr, EncodeD: id, DecodeD: idErr}
}

// TestCheckpointGoldenFormat pins the v1 wire format byte for byte: any
// accidental format change must bump CheckpointVersion instead of silently
// orphaning persisted checkpoints.
func TestCheckpointGoldenFormat(t *testing.T) {
	cp := &Checkpoint[string, string]{
		Solver:   "sw",
		SysFP:    42,
		Evals:    7,
		Updates:  3,
		Rounds:   1,
		MaxQueue: 4,
		Retries:  2,
		Cursor:   5,
		Dirty:    true,
		Sigma: []CheckpointEntry[string, string]{
			{X: `a "quoted"`, V: "0..5"},
			{X: "b", V: "empty"},
		},
		Queue: []string{"a"},
		Strata: []StratumCheckpoint{
			{Done: true},
			{Started: true, Queue: []int{2, 3}},
			{},
		},
	}
	golden := "warrow-checkpoint v1\n" +
		"solver sw\n" +
		"fingerprint 42\n" +
		"evals 7\n" +
		"updates 3\n" +
		"rounds 1\n" +
		"maxqueue 4\n" +
		"retries 2\n" +
		"cursor 5\n" +
		"dirty true\n" +
		"sigma 2\n" +
		"v \"a \\\"quoted\\\"\" \"0..5\"\n" +
		"v \"b\" \"empty\"\n" +
		"queue 1\n" +
		"q \"a\"\n" +
		"strata 3\n" +
		"s done\n" +
		"s started 2 3\n" +
		"s fresh\n" +
		"end\n"
	data, err := MarshalCheckpoint(cp, identityCodec())
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != golden {
		t.Fatalf("wire format drifted:\n--- got ---\n%s\n--- want ---\n%s", data, golden)
	}
	back, err := UnmarshalCheckpoint[string, string](data, identityCodec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, cp) {
		t.Fatalf("round trip drifted:\ngot  %+v\nwant %+v", back, cp)
	}

	for _, bad := range []string{
		"",
		"warrow-checkpoint v2\n",
		golden[:len(golden)-4], // missing end marker
		"warrow-checkpoint v1\nsolver sw\nfingerprint x\n", // corrupt field
	} {
		if _, err := UnmarshalCheckpoint[string, string]([]byte(bad), identityCodec()); !errors.Is(err, ErrBadCheckpoint) {
			t.Fatalf("malformed input %q accepted: %v", bad, err)
		}
	}
}

// TestRetryBackoffSchedule: the jittered exponential backoff is
// deterministic for a fixed seed, grows exponentially, respects the cap,
// and stays within [delay/2, delay].
func TestRetryBackoffSchedule(t *testing.T) {
	var slept []time.Duration
	g := &evalGuard{
		policy: RetryPolicy{
			MaxAttempts: 6,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    500 * time.Millisecond,
			Seed:        7,
		},
		rng:   7 ^ 0x9e3779b97f4a7c15,
		sleep: func(d time.Duration) { slept = append(slept, d) },
	}
	for next := 2; next <= 6; next++ {
		g.backoff(next)
	}
	want := []time.Duration{100, 200, 400, 500, 500} // ms, pre-jitter
	if len(slept) != len(want) {
		t.Fatalf("slept %d times, want %d", len(slept), len(want))
	}
	for i, d := range slept {
		lo, hi := want[i]*time.Millisecond/2, want[i]*time.Millisecond
		if d < lo || d > hi {
			t.Fatalf("backoff %d slept %v, want within [%v, %v]", i+2, d, lo, hi)
		}
	}
	// Same seed, same schedule.
	var again []time.Duration
	g2 := &evalGuard{
		policy: g.policy,
		rng:    7 ^ 0x9e3779b97f4a7c15,
		sleep:  func(d time.Duration) { again = append(again, d) },
	}
	for next := 2; next <= 6; next++ {
		g2.backoff(next)
	}
	if !reflect.DeepEqual(slept, again) {
		t.Fatalf("backoff schedule not deterministic: %v vs %v", slept, again)
	}
}
