package solver

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

type iv = lattice.Interval

func ivInit(string) iv { return lattice.EmptyInterval }

// loopSystem is the constraint system of the canonical counting loop
//
//	x = 0; while (x < 100) x = x+1;
//
// over unknowns for the loop head (h), body entry (b) and exit (e).
func loopSystem() *eqn.System[string, iv] {
	l := lattice.Ints
	s := eqn.NewSystem[string, iv]()
	s.Define("h", []string{"b"}, func(get func(string) iv) iv {
		return l.Join(lattice.Singleton(0), get("b").Add(lattice.Singleton(1)))
	})
	s.Define("b", []string{"h"}, func(get func(string) iv) iv {
		return get("h").RestrictLt(lattice.Singleton(100))
	})
	s.Define("e", []string{"h"}, func(get func(string) iv) iv {
		return get("h").RestrictGe(lattice.Singleton(100))
	})
	return s
}

func wantLoopInvariants(t *testing.T, sigma map[string]iv, solver string) {
	t.Helper()
	l := lattice.Ints
	if !l.Eq(sigma["h"], lattice.Range(0, 100)) {
		t.Errorf("%s: σ[h] = %s, want [0,100]", solver, sigma["h"])
	}
	if !l.Eq(sigma["b"], lattice.Range(0, 99)) {
		t.Errorf("%s: σ[b] = %s, want [0,99]", solver, sigma["b"])
	}
	if !l.Eq(sigma["e"], lattice.Singleton(100)) {
		t.Errorf("%s: σ[e] = %s, want [100,100]", solver, sigma["e"])
	}
}

// TestWarrowRecoversLoopBounds: on the counting loop every ⊟-solver
// computes the exact invariants in one go — the two-phase result with no
// separate narrowing phase.
func TestWarrowRecoversLoopBounds(t *testing.T) {
	l := lattice.Ints
	sys := loopSystem()
	op := Op[string](Warrow[iv](l))
	cfg := Config{MaxEvals: 100000}

	sigma, _, err := SRR(sys, l, op, ivInit, cfg)
	if err != nil {
		t.Fatalf("SRR: %v", err)
	}
	wantLoopInvariants(t, sigma, "SRR")

	sigma, _, err = SW(sys, l, op, ivInit, cfg)
	if err != nil {
		t.Fatalf("SW: %v", err)
	}
	wantLoopInvariants(t, sigma, "SW")

	res, err := SLR(sys.AsPure(), l, op, ivInit, "e", cfg)
	if err != nil {
		t.Fatalf("SLR: %v", err)
	}
	wantLoopInvariants(t, res.Values, "SLR")
}

// TestTwoPhaseMatchesOnMonotone: on the monotone loop system the classical
// two-phase iteration reaches the same result as ⊟.
func TestTwoPhaseMatchesOnMonotone(t *testing.T) {
	l := lattice.Ints
	sys := loopSystem()
	sigma, _, err := TwoPhase(sys, l, ivInit, Config{MaxEvals: 100000})
	if err != nil {
		t.Fatalf("TwoPhase: %v", err)
	}
	wantLoopInvariants(t, sigma, "TwoPhase")

	res, err := TwoPhaseLocal(sys.AsPure(), l, ivInit, "e", Config{MaxEvals: 100000})
	if err != nil {
		t.Fatalf("TwoPhaseLocal: %v", err)
	}
	wantLoopInvariants(t, res.Values, "TwoPhaseLocal")
}

// TestWideningOnlyLoop: with plain ∇ the loop head stays at [0,+inf],
// quantifying what narrowing recovers.
func TestWideningOnlyLoop(t *testing.T) {
	l := lattice.Ints
	sys := loopSystem()
	sigma, _, err := SW(sys, l, Op[string](Widen[iv](l)), ivInit, Config{MaxEvals: 100000})
	if err != nil {
		t.Fatalf("SW: %v", err)
	}
	if !l.Eq(sigma["h"], lattice.NewInterval(lattice.Fin(0), lattice.PosInf)) {
		t.Errorf("σ[h] = %s, want [0,+inf]", sigma["h"])
	}
}

// TestGenericSolversWithReplace: with ⊞ = replace, solvers compute ordinary
// solutions of acyclic systems exactly.
func TestGenericSolversWithReplace(t *testing.T) {
	l := lattice.Ints
	s := eqn.NewSystem[string, iv]()
	s.Define("a", nil, func(func(string) iv) iv { return lattice.Range(1, 2) })
	s.Define("b", []string{"a"}, func(get func(string) iv) iv {
		return get("a").Add(lattice.Singleton(10))
	})
	s.Define("c", []string{"a", "b"}, func(get func(string) iv) iv {
		return l.Join(get("a"), get("b"))
	})
	op := Op[string](Replace[iv]())
	for name, run := range map[string]func() (map[string]iv, Stats, error){
		"RR":  func() (map[string]iv, Stats, error) { return RR(s, l, op, ivInit, Config{}) },
		"W":   func() (map[string]iv, Stats, error) { return W(s, l, op, ivInit, Config{}) },
		"SRR": func() (map[string]iv, Stats, error) { return SRR(s, l, op, ivInit, Config{}) },
		"SW":  func() (map[string]iv, Stats, error) { return SW(s, l, op, ivInit, Config{}) },
	} {
		sigma, _, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !l.Eq(sigma["b"], lattice.Range(11, 12)) || !l.Eq(sigma["c"], lattice.Range(1, 12)) {
			t.Errorf("%s: b=%s c=%s", name, sigma["b"], sigma["c"])
		}
	}
}

// randMonotoneSystem generates a random finite monotone equation system
// over intervals: each right-hand side joins a constant with monotone
// transformations (shift, join, meet-with-constant) of other unknowns.
func randMonotoneSystem(r *rand.Rand, n int) *eqn.System[int, iv] {
	l := lattice.Ints
	s := eqn.NewSystem[int, iv]()
	for i := 0; i < n; i++ {
		var deps []int
		type term struct {
			dep   int
			shift int64
			cap   iv // meet with this constant interval (monotone)
		}
		terms := make([]term, 0, 3)
		for k := 0; k < 1+r.Intn(3); k++ {
			d := r.Intn(n)
			deps = append(deps, d)
			cap := lattice.FullInterval
			if r.Intn(2) == 0 {
				cap = lattice.Range(int64(-r.Intn(50)), int64(r.Intn(50)))
			}
			terms = append(terms, term{dep: d, shift: int64(r.Intn(5) - 2), cap: cap})
		}
		base := lattice.Range(int64(-r.Intn(5)), int64(r.Intn(5)))
		ts := terms
		s.Define(i, deps, func(get func(int) iv) iv {
			v := base
			for _, tm := range ts {
				v = l.Join(v, l.Meet(get(tm.dep).Add(lattice.Singleton(tm.shift)), tm.cap))
			}
			return v
		})
	}
	return s
}

// TestWarrowSolversReturnPostSolutions: property test for Lemma 1 +
// Theorems 1–3 — on random finite monotone systems, SRR, SW and SLR with ⊟
// terminate and return post-solutions.
func TestWarrowSolversReturnPostSolutions(t *testing.T) {
	l := lattice.Ints
	r := rand.New(rand.NewSource(42))
	init := func(int) iv { return lattice.EmptyInterval }
	for trial := 0; trial < 60; trial++ {
		n := 2 + r.Intn(8)
		sys := randMonotoneSystem(r, n)
		op := Op[int](Warrow[iv](l))
		cfg := Config{MaxEvals: 2_000_000}

		sigma, _, err := SRR(sys, l, op, init, cfg)
		if err != nil {
			t.Fatalf("trial %d: SRR diverged on monotone system: %v", trial, err)
		}
		if x, ok := eqn.IsPostSolution(l, sys, sigma, init); !ok {
			t.Fatalf("trial %d: SRR result not a post-solution at %v", trial, x)
		}
		if x, ok := eqn.IsCombineSolution(l, Warrow[iv](l), sys, sigma, init); !ok {
			t.Fatalf("trial %d: SRR result not a ⊟-solution at %v", trial, x)
		}

		sigma, _, err = SW(sys, l, op, init, cfg)
		if err != nil {
			t.Fatalf("trial %d: SW diverged on monotone system: %v", trial, err)
		}
		if x, ok := eqn.IsPostSolution(l, sys, sigma, init); !ok {
			t.Fatalf("trial %d: SW result not a post-solution at %v", trial, x)
		}

		res, err := SLR(sys.AsPure(), l, op, init, 0, cfg)
		if err != nil {
			t.Fatalf("trial %d: SLR diverged on monotone system: %v", trial, err)
		}
		if x, ok := eqn.IsPartialPostSolution(l, sys.AsPure(), res.Values); !ok {
			t.Fatalf("trial %d: SLR result not a partial post-solution at %v", trial, x)
		}
	}
}

// TestWarrowPrecisionVsTwoPhase: on random monotone systems both ⊟ and the
// two-phase baseline return post-solutions; the solutions can be pointwise
// incomparable, but in aggregate intertwined ⊟ iteration should improve far
// more points than it loses — the trend behind the paper's Fig. 7.
func TestWarrowPrecisionVsTwoPhase(t *testing.T) {
	l := lattice.Ints
	r := rand.New(rand.NewSource(7))
	init := func(int) iv { return lattice.EmptyInterval }
	improved, worse := 0, 0
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(8)
		sys := randMonotoneSystem(r, n)
		cfg := Config{MaxEvals: 2_000_000}
		warrowed, _, err := SW(sys, l, Op[int](Warrow[iv](l)), init, cfg)
		if err != nil {
			t.Fatalf("SW ⊟ diverged: %v", err)
		}
		base, _, err := TwoPhase(sys, l, init, cfg)
		if err != nil {
			t.Fatalf("TwoPhase diverged: %v", err)
		}
		if x, ok := eqn.IsPostSolution(l, sys, warrowed, init); !ok {
			t.Fatalf("⊟ result not a post-solution at %v", x)
		}
		if x, ok := eqn.IsPostSolution(l, sys, base, init); !ok {
			t.Fatalf("two-phase result not a post-solution at %v", x)
		}
		for _, x := range sys.Order() {
			switch {
			case l.Eq(warrowed[x], base[x]):
			case l.Leq(warrowed[x], base[x]):
				improved++
			default:
				worse++
			}
		}
	}
	t.Logf("⊟ strictly better at %d points, worse/incomparable at %d points", improved, worse)
	if improved <= worse {
		t.Errorf("⊟ should improve more points than it loses: improved=%d worse=%d", improved, worse)
	}
}

// nonMonotoneOscillator is a single-unknown non-monotone system on which
// plain ⊟ oscillates forever: f(⊥)=[0,0]; f([0,+inf])=[0,5];
// f([0,h])=[0,h+1] otherwise.
func nonMonotoneOscillator() *eqn.System[string, iv] {
	s := eqn.NewSystem[string, iv]()
	s.Define("x", []string{"x"}, func(get func(string) iv) iv {
		v := get("x")
		if v.IsEmpty() {
			return lattice.Singleton(0)
		}
		if v.Hi.IsPosInf() {
			return lattice.Range(0, 5)
		}
		return lattice.NewInterval(lattice.Fin(0), v.Hi.Add(lattice.Fin(1)))
	})
	return s
}

// TestDegradingEnforcesTermination: the ⊟ₖ operator terminates the
// oscillating non-monotone system that plain ⊟ cannot, and still returns a
// post-solution.
func TestDegradingEnforcesTermination(t *testing.T) {
	l := lattice.Ints
	sys := nonMonotoneOscillator()
	init := func(string) iv { return lattice.EmptyInterval }

	_, _, err := SRR(sys, l, Op[string](Warrow[iv](l)), init, Config{MaxEvals: 10000})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("plain ⊟ should oscillate forever, got err=%v", err)
	}

	for k := 0; k <= 3; k++ {
		deg := NewDegrading[string, iv](l, k)
		sigma, _, err := SRR(sys, l, deg, init, Config{MaxEvals: 100000})
		if err != nil {
			t.Fatalf("⊟_%d diverged: %v", k, err)
		}
		if x, ok := eqn.IsPostSolution(l, sys, sigma, init); !ok {
			t.Fatalf("⊟_%d result not a post-solution at %v: %s", k, x, sigma["x"])
		}
		if k >= 1 && deg.Switches("x") == 0 {
			t.Errorf("⊟_%d observed no phase switches on an oscillator", k)
		}
	}
}

// TestDegradingZeroIsWideningOnly: ⊟₀ never narrows, so on the counting
// loop it matches the ∇-only result.
func TestDegradingZeroIsWideningOnly(t *testing.T) {
	l := lattice.Ints
	sys := loopSystem()
	deg := NewDegrading[string, iv](l, 0)
	sigma, _, err := SW(sys, l, deg, ivInit, Config{MaxEvals: 100000})
	if err != nil {
		t.Fatalf("SW: %v", err)
	}
	if !l.Eq(sigma["h"], lattice.NewInterval(lattice.Fin(0), lattice.PosInf)) {
		t.Errorf("σ[h] = %s, want [0,+inf]", sigma["h"])
	}
}

// TestRLDOnMonotoneJoin: RLD with plain join works on a monotone system
// with finite chains (its original setting) and agrees with SLR.
func TestRLDOnMonotoneJoin(t *testing.T) {
	l := lattice.NatInf
	sys := eqn.NewSystem[string, lattice.Nat]()
	sys.Define("a", []string{"b"}, func(get func(string) lattice.Nat) lattice.Nat {
		return l.Join(get("b"), lattice.NatOf(3))
	})
	sys.Define("b", []string{"c"}, func(get func(string) lattice.Nat) lattice.Nat {
		return get("c")
	})
	sys.Define("c", nil, func(func(string) lattice.Nat) lattice.Nat {
		return lattice.NatOf(7)
	})
	init := func(string) lattice.Nat { return lattice.NatOf(0) }
	op := Op[string](Join[lattice.Nat](l))

	rld, err := RLD(sys.AsPure(), l, op, init, "a", Config{MaxEvals: 10000})
	if err != nil {
		t.Fatalf("RLD: %v", err)
	}
	slr, err := SLR(sys.AsPure(), l, op, init, "a", Config{MaxEvals: 10000})
	if err != nil {
		t.Fatalf("SLR: %v", err)
	}
	for _, x := range []string{"a", "b", "c"} {
		if !l.Eq(rld.Values[x], slr.Values[x]) {
			t.Errorf("σ[%s]: RLD=%s SLR=%s", x, rld.Values[x], slr.Values[x])
		}
	}
	if rld.Values["a"] != lattice.NatOf(7) {
		t.Errorf("σ[a] = %s, want 7", rld.Values["a"])
	}
}

// TestSLRLocalization: SLR only explores unknowns reachable from the query.
func TestSLRLocalization(t *testing.T) {
	l := lattice.NatInf
	sys := eqn.NewSystem[int, lattice.Nat]()
	for i := 0; i < 100; i++ {
		i := i
		deps := []int{}
		if i > 0 && i < 50 {
			deps = []int{i - 1}
		}
		sys.Define(i, deps, func(get func(int) lattice.Nat) lattice.Nat {
			if i == 0 || i >= 50 {
				return lattice.NatOf(uint64(i))
			}
			return get(i - 1)
		})
	}
	init := func(int) lattice.Nat { return lattice.NatOf(0) }
	res, err := SLR(sys.AsPure(), l, Op[int](Join[lattice.Nat](l)), init, 10, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Unknowns != 11 { // 10, 9, ..., 0
		t.Errorf("explored %d unknowns, want 11 (dom: %v)", res.Stats.Unknowns, res.Values)
	}
}

// TestSLRNoEquation: unknowns without an equation keep their initial value.
func TestSLRNoEquation(t *testing.T) {
	l := lattice.Ints
	sys := func(x string) eqn.RHS[string, iv] {
		if x == "a" {
			return func(get func(string) iv) iv {
				return get("free").Add(lattice.Singleton(1))
			}
		}
		return nil
	}
	init := func(x string) iv {
		if x == "free" {
			return lattice.Range(10, 20)
		}
		return lattice.EmptyInterval
	}
	res, err := SLR(sys, l, Op[string](Warrow[iv](l)), init, "a", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if !l.Eq(res.Values["free"], lattice.Range(10, 20)) {
		t.Errorf("σ[free] = %s, want [10,20]", res.Values["free"])
	}
	if !l.Eq(res.Values["a"], lattice.Range(11, 21)) {
		t.Errorf("σ[a] = %s, want [11,21]", res.Values["a"])
	}
}

// TestBudgetPartialResult: exceeding the budget returns the partial state
// and ErrEvalBudget rather than panicking or looping.
func TestBudgetPartialResult(t *testing.T) {
	sys := example1System()
	sigma, st, err := RR(sys, lattice.NatInf, natWarrow(), zeroInit, Config{MaxEvals: 7})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("err = %v", err)
	}
	if st.Evals != 7 {
		t.Errorf("Evals = %d, want exactly 7", st.Evals)
	}
	if len(sigma) != 3 {
		t.Errorf("partial assignment missing unknowns: %v", sigma)
	}
}

// TestSWEvaluationCountTheorem2: for ⊞ = ⊔ on a bounded-height lattice, SW
// started from bottom performs at most h·Σ(2+|dep_i|) evaluations.
func TestSWEvaluationCountTheorem2(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(10)
		// Random system over NatInf capped at height h via meet with a cap.
		const h = 12
		l := lattice.NatInf
		sys := eqn.NewSystem[int, lattice.Nat]()
		bound := uint64(h - 1)
		N := 0
		for i := 0; i < n; i++ {
			d := r.Intn(n)
			deps := []int{d}
			N += 2 + len(deps)
			sys.Define(i, deps, func(get func(int) lattice.Nat) lattice.Nat {
				v := get(d)
				if v.IsInf() || v.Val() >= bound {
					return lattice.NatOf(bound)
				}
				return lattice.NatOf(v.Val() + 1)
			})
		}
		init := func(int) lattice.Nat { return lattice.NatOf(0) }
		_, st, err := SW(sys, l, Op[int](Join[lattice.Nat](l)), init, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if st.Evals > h*N {
			t.Errorf("trial %d: SW used %d evals, theorem bound %d", trial, st.Evals, h*N)
		}
	}
}

// TestPQOrdering: the priority queue pops in key order and dedups pushes.
func TestPQOrdering(t *testing.T) {
	q := newPQ[string]()
	q.push("c", 3)
	q.push("a", 1)
	q.push("b", 2)
	q.push("a", 1) // dup: no-op
	if q.len() != 3 {
		t.Fatalf("len = %d, want 3", q.len())
	}
	if q.minKey() != 1 {
		t.Fatalf("minKey = %d", q.minKey())
	}
	var got []string
	for !q.empty() {
		got = append(got, q.popMin())
	}
	want := []string{"a", "b", "c"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

// TestPQRandom: heap property holds under random workloads.
func TestPQRandom(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	q := newPQ[int]()
	keys := map[int]int{}
	for i := 0; i < 1000; i++ {
		x := r.Intn(200)
		k := r.Intn(1000)
		if _, in := keys[x]; !in {
			keys[x] = k
			q.push(x, int64(k))
		}
		if r.Intn(3) == 0 && !q.empty() {
			x := q.popMin()
			k := keys[x]
			delete(keys, x)
			for _, kk := range keys {
				if kk < k {
					t.Fatalf("popped key %d but %d remains", k, kk)
				}
			}
		}
	}
	prev := -1
	for !q.empty() {
		x := q.popMin()
		if keys[x] < prev {
			t.Fatalf("out of order: %d after %d", keys[x], prev)
		}
		prev = keys[x]
	}
}

// TestDuplicateDefinePanics documents the single-assignment rule of
// eqn.System.
func TestDuplicateDefinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := eqn.NewSystem[string, iv]()
	f := func(func(string) iv) iv { return lattice.EmptyInterval }
	s.Define("x", nil, f)
	s.Define("x", nil, f)
}

// TestInflIncludesSelf documents the self-influence precaution for
// non-idempotent operators.
func TestInflIncludesSelf(t *testing.T) {
	s := eqn.NewSystem[string, iv]()
	f := func(func(string) iv) iv { return lattice.EmptyInterval }
	s.Define("x", []string{"y"}, f)
	s.Define("y", nil, f)
	infl := s.Infl()
	found := map[string]bool{}
	for _, z := range infl["y"] {
		found[z] = true
	}
	if !found["y"] || !found["x"] {
		t.Errorf("infl[y] = %v, want to contain x and y", infl["y"])
	}
}

// TestSLRPlusSelfSideEffectPanics documents the paper's assumption that a
// right-hand side never side-effects its own unknown.
func TestSLRPlusSelfSideEffectPanics(t *testing.T) {
	l := lattice.Ints
	sys := func(x string) eqn.SideRHS[string, iv] {
		if x != "a" {
			return nil
		}
		return func(_ func(string) iv, side func(string, iv)) iv {
			side("a", lattice.Singleton(1))
			return lattice.EmptyInterval
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_, _ = SLRPlus[string, iv](sys, l, Op[string](Warrow[iv](l)),
		func(string) iv { return lattice.EmptyInterval }, "a", Config{})
}

// TestSLRPlusMonotoneChain: a chain of contexts each contributing to a
// global must terminate with the join of all contributions.
func TestSLRPlusMonotoneChain(t *testing.T) {
	l := lattice.Ints
	const n = 50
	sys := func(x string) eqn.SideRHS[string, iv] {
		if x == "g" {
			return nil
		}
		var i int
		if _, err := fmt.Sscanf(x, "c%d", &i); err != nil {
			return nil
		}
		return func(get func(string) iv, side func(string, iv)) iv {
			side("g", lattice.Singleton(int64(i)))
			if i+1 < n {
				return get(fmt.Sprintf("c%d", i+1))
			}
			return lattice.Singleton(0)
		}
	}
	res, err := SLRPlus[string, iv](sys, l, Op[string](Warrow[iv](l)),
		func(string) iv { return lattice.EmptyInterval }, "c0", Config{MaxEvals: 100000})
	if err != nil {
		t.Fatal(err)
	}
	g := res.Values["g"]
	if !l.Eq(g, lattice.Range(0, n-1)) {
		t.Errorf("σ[g] = %s, want [0,%d]", g, n-1)
	}
}
