package solver

import (
	"fmt"
	"sort"

	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// RR is the round-robin solver of Fig. 1: it repeatedly sweeps over all
// unknowns in order, performing update steps σ[x] ← σ[x] ⊞ fₓ(σ), until a
// full sweep changes nothing. RR is a generic solver, but with ⊟ it may
// fail to terminate even on finite monotonic systems (Example 1); the
// bounds in cfg (budget, deadline, cancellation, oscillation watchdog) turn
// such divergence into an AbortError alongside the partial assignment.
//
// Stats.Rounds counts every sweep that performed at least one evaluation:
// a sweep cut short by an abort is counted, so Rounds stays consistent with
// Evals on bounded runs (an abort at an exact sweep boundary, before the
// first evaluation of the next sweep, does not start a new round).
//
// Like all global solvers, RR runs on the dense index-compiled core for
// systems of at least denseMinUnknowns unknowns (override with Config.Core);
// both cores produce bit-identical results, Stats and checkpoints.
func RR[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	if cfg.useDense(sys.Len()) {
		return rrDense(sys, l, op, init, cfg)
	}
	return rrMap(sys, l, op, init, cfg)
}

// rrMap is RR on the original map-based core, kept both as the tiny-system
// fast path and as the differential oracle the dense core is pinned against.
func rrMap[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	order := sys.Order()
	wd := newWatchdog(cfg, sys.Index())
	op = instrument(wd, l, op)
	g := newEvalGuard(cfg)
	ck := newCkptSink(cfg)
	var st Stats
	sigma := make(map[X]D, len(order))
	for _, x := range order {
		sigma[x] = init(x)
	}
	st.Unknowns = len(order)
	start, dirty := 0, false
	if cp, err := resumeCheckpoint[X, D](cfg, "rr", Fingerprint(sys)); err != nil {
		return sigma, st, err
	} else if cp != nil {
		for x, v := range cp.sigmaMap() {
			sigma[x] = v
		}
		cp.restoreStats(&st)
		start, dirty = cp.Cursor, cp.Dirty
		if start < 0 || start >= len(order) {
			return sigma, st, fmt.Errorf("%w: rr cursor %d out of range", ErrBadCheckpoint, start)
		}
	}
	// capture snapshots the interrupted sweep: k is the order index of the
	// next unknown to evaluate, dirty whether the sweep already changed
	// something. Captured only at scheduling points, never mid-evaluation.
	capture := func(k int, dirty bool) *Checkpoint[X, D] {
		c := snapshotGlobal("rr", sys, sigma, st)
		c.Cursor, c.Dirty = k, dirty
		return c
	}
	setCur, thunk := mapEvaluator(sys, sigma, init)
	for {
		evaled := false
		for k := start; k < len(order); k++ {
			x := order[k]
			if err := wd.check(st.Evals); err != nil {
				err = attachCheckpoint(err, capture(k, dirty))
				if evaled {
					st.Rounds++
				}
				return sigma, st, err
			}
			if ck.due(st.Evals) {
				ck.emit(st.Evals, capture(k, dirty))
			}
			setCur(x)
			rhsVal, attempts, ee := guardedEval(g, x, thunk)
			st.Retries += attempts - 1
			if ee != nil {
				err := attachCheckpoint(wd.failEval(ee, st.Evals), capture(k, dirty))
				if evaled {
					st.Rounds++
				}
				return sigma, st, err
			}
			st.Evals++
			evaled = true
			next := op.Apply(x, sigma[x], rhsVal)
			if !l.Eq(sigma[x], next) {
				sigma[x] = next
				st.Updates++
				dirty = true
			}
		}
		start = 0
		st.Rounds++
		if !dirty {
			return sigma, st, nil
		}
		dirty = false
	}
}

// mapEvaluator builds the reusable evaluation closures of one map-core run:
// get reads the live assignment, setCur resolves the right-hand side of the
// unknown about to be evaluated, and thunk performs the evaluation. The
// trio replaces the closure the solvers used to allocate per evaluation
// (hoisting is worth a heap allocation and a map-closure construction on
// every single evaluation; see BenchmarkEvalThunk).
func mapEvaluator[X comparable, D any](sys *eqn.System[X, D], sigma map[X]D, init func(X) D) (setCur func(X), thunk func() D) {
	get := func(y X) D {
		if v, ok := sigma[y]; ok {
			return v
		}
		return init(y)
	}
	var cur eqn.RHS[X, D]
	setCur = func(x X) { cur = sys.RHS(x) }
	thunk = func() D { return cur(get) }
	return setCur, thunk
}

// W is the worklist solver of Fig. 2 with a LIFO discipline: when the value
// of an unknown changes, all unknowns it influences (including itself, as a
// precaution for non-idempotent operators) are pushed. W is a generic
// solver, but with ⊟ it may fail to terminate even on finite monotonic
// systems (Example 2). Runs on the dense core for large systems (see RR).
func W[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	if cfg.useDense(sys.Len()) {
		return wDense(sys, l, op, init, cfg)
	}
	return wMap(sys, l, op, init, cfg)
}

func wMap[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	order := sys.Order()
	wd := newWatchdog(cfg, sys.Index())
	op = instrument(wd, l, op)
	g := newEvalGuard(cfg)
	ck := newCkptSink(cfg)
	var st Stats
	sigma := make(map[X]D, len(order))
	for _, x := range order {
		sigma[x] = init(x)
	}
	st.Unknowns = len(order)
	infl := sys.Infl()

	stack := make([]X, 0, len(order))
	present := make(map[X]bool, len(order))
	push := func(x X) {
		if !present[x] {
			present[x] = true
			stack = append(stack, x)
		}
	}
	if cp, err := resumeCheckpoint[X, D](cfg, "w", Fingerprint(sys)); err != nil {
		return sigma, st, err
	} else if cp != nil {
		for x, v := range cp.sigmaMap() {
			sigma[x] = v
		}
		cp.restoreStats(&st)
		// cp.Queue holds the stack bottom-to-top; pushing in order restores
		// the exact LIFO state.
		for _, x := range cp.Queue {
			push(x)
		}
	} else {
		// Push in reverse so that x₁ is on top initially, matching the
		// paper's trace W = [x₁, x₂] where x₁ is extracted first.
		for i := len(order) - 1; i >= 0; i-- {
			push(order[i])
		}
		st.MaxQueue = len(stack)
	}
	capture := func() *Checkpoint[X, D] {
		c := snapshotGlobal("w", sys, sigma, st)
		c.Queue = append([]X(nil), stack...)
		return c
	}
	setCur, thunk := mapEvaluator(sys, sigma, init)
	for len(stack) > 0 {
		if err := wd.check(st.Evals); err != nil {
			return sigma, st, attachCheckpoint(err, capture())
		}
		if ck.due(st.Evals) {
			ck.emit(st.Evals, capture())
		}
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		present[x] = false
		setCur(x)
		rhsVal, attempts, ee := guardedEval(g, x, thunk)
		st.Retries += attempts - 1
		if ee != nil {
			// The failed evaluation never happened: keep x scheduled so the
			// checkpoint resumes by re-evaluating it.
			push(x)
			return sigma, st, attachCheckpoint(wd.failEval(ee, st.Evals), capture())
		}
		st.Evals++
		next := op.Apply(x, sigma[x], rhsVal)
		if !l.Eq(sigma[x], next) {
			sigma[x] = next
			st.Updates++
			deps := infl[x]
			for i := len(deps) - 1; i >= 0; i-- {
				push(deps[i])
			}
			if len(stack) > st.MaxQueue {
				st.MaxQueue = len(stack)
			}
		}
	}
	return sigma, st, nil
}

// SRR is the structured round-robin solver of Fig. 3: solve(i) first solves
// all unknowns x₁…xᵢ₋₁ recursively, then iterates on xᵢ until it
// stabilizes, re-solving the prefix before every update. SRR is a generic
// solver and, instantiated with ⊟, terminates for every finite monotonic
// system (Theorem 1) — with bounded lattice height it needs at most
// n + (h/2)·n·(n+1) evaluations.
//
// SRR's whole scheduling state at an abort is the innermost recursion frame
// (every outer frame is parked at its recursive call), so a checkpoint is
// just the assignment plus that frame index; resume re-enters the stack
// frames from the outside in and continues the interrupted iteration
// exactly — the resumed run is bit-identical to an uninterrupted one.
// Runs on the dense core for large systems (see RR).
func SRR[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	if cfg.useDense(sys.Len()) {
		return srrDense(sys, l, op, init, cfg)
	}
	return srrMap(sys, l, op, init, cfg)
}

func srrMap[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	order := sys.Order()
	wd := newWatchdog(cfg, sys.Index())
	op = instrument(wd, l, op)
	g := newEvalGuard(cfg)
	ck := newCkptSink(cfg)
	var st Stats
	sigma := make(map[X]D, len(order))
	for _, x := range order {
		sigma[x] = init(x)
	}
	st.Unknowns = len(order)
	resumeLevel := 0
	if cp, err := resumeCheckpoint[X, D](cfg, "srr", Fingerprint(sys)); err != nil {
		return sigma, st, err
	} else if cp != nil {
		for x, v := range cp.sigmaMap() {
			sigma[x] = v
		}
		cp.restoreStats(&st)
		resumeLevel = cp.Cursor
		if resumeLevel < 1 || resumeLevel > len(order) {
			return sigma, st, fmt.Errorf("%w: srr cursor %d out of range", ErrBadCheckpoint, resumeLevel)
		}
	}
	capture := func(i int) *Checkpoint[X, D] {
		c := snapshotGlobal("srr", sys, sigma, st)
		c.Cursor = i
		return c
	}
	setCur, thunk := mapEvaluator(sys, sigma, init)
	var solve func(i int, resumed bool) error
	solve = func(i int, resumed bool) error {
		if i == 0 {
			return nil
		}
		first := resumed
		for {
			// On the first iteration of a resumed frame, the recursive call
			// is the one that was in flight at the checkpoint: re-enter it
			// resumed too, except at the innermost frame, which had already
			// completed it and was parked at the evaluation.
			if !(first && i == resumeLevel) {
				if err := solve(i-1, first && i > resumeLevel); err != nil {
					return err
				}
			}
			first = false
			x := order[i-1]
			if err := wd.check(st.Evals); err != nil {
				return attachCheckpoint(err, capture(i))
			}
			if ck.due(st.Evals) {
				ck.emit(st.Evals, capture(i))
			}
			setCur(x)
			rhsVal, attempts, ee := guardedEval(g, x, thunk)
			st.Retries += attempts - 1
			if ee != nil {
				return attachCheckpoint(wd.failEval(ee, st.Evals), capture(i))
			}
			st.Evals++
			next := op.Apply(x, sigma[x], rhsVal)
			if l.Eq(sigma[x], next) {
				return nil
			}
			sigma[x] = next
			st.Updates++
		}
	}
	err := solve(len(order), resumeLevel > 0)
	return sigma, st, err
}

// SW is the structured worklist solver of Fig. 4: unknowns awaiting
// re-evaluation are kept in a priority queue ordered by their index in the
// given linear order, and the least unknown is extracted first. SW is a
// generic solver and, instantiated with ⊟, terminates for every finite
// monotonic system (Theorem 2). Runs on the dense core for large systems,
// where the heap collapses into a bucket queue over the indices (see RR).
func SW[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	if cfg.useDense(sys.Len()) {
		return swDense(sys, l, op, init, cfg)
	}
	return swMap(sys, l, op, init, cfg)
}

func swMap[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	order := sys.Order()
	wd := newWatchdog(cfg, sys.Index())
	op = instrument(wd, l, op)
	g := newEvalGuard(cfg)
	ck := newCkptSink(cfg)
	var st Stats
	sigma := make(map[X]D, len(order))
	idx := make(map[X]int, len(order))
	for i, x := range order {
		sigma[x] = init(x)
		idx[x] = i
	}
	st.Unknowns = len(order)
	infl := sys.Infl()

	q := newPQ[X]()
	if cp, err := resumeCheckpoint[X, D](cfg, "sw", Fingerprint(sys)); err != nil {
		return sigma, st, err
	} else if cp != nil {
		for x, v := range cp.sigmaMap() {
			sigma[x] = v
		}
		cp.restoreStats(&st)
		for _, x := range cp.Queue {
			q.push(x, int64(idx[x]))
		}
	} else {
		for _, x := range order {
			q.push(x, int64(idx[x]))
		}
		st.MaxQueue = q.len()
	}
	capture := func() *Checkpoint[X, D] {
		c := snapshotGlobal("sw", sys, sigma, st)
		queued := append([]X(nil), q.heap...)
		sort.Slice(queued, func(i, j int) bool { return idx[queued[i]] < idx[queued[j]] })
		c.Queue = queued
		return c
	}
	setCur, thunk := mapEvaluator(sys, sigma, init)
	for !q.empty() {
		if err := wd.check(st.Evals); err != nil {
			return sigma, st, attachCheckpoint(err, capture())
		}
		if ck.due(st.Evals) {
			ck.emit(st.Evals, capture())
		}
		x := q.popMin()
		setCur(x)
		rhsVal, attempts, ee := guardedEval(g, x, thunk)
		st.Retries += attempts - 1
		if ee != nil {
			// The failed evaluation never happened: keep x scheduled so the
			// checkpoint resumes by re-evaluating it.
			q.push(x, int64(idx[x]))
			return sigma, st, attachCheckpoint(wd.failEval(ee, st.Evals), capture())
		}
		st.Evals++
		next := op.Apply(x, sigma[x], rhsVal)
		if !l.Eq(sigma[x], next) {
			sigma[x] = next
			st.Updates++
			q.push(x, int64(idx[x]))
			for _, y := range infl[x] {
				q.push(y, int64(idx[y]))
			}
			if q.len() > st.MaxQueue {
				st.MaxQueue = q.len()
			}
		}
	}
	return sigma, st, nil
}

// TwoPhase is the classical Cousot–Cousot regime used as the paper's
// baseline: a complete widening iteration to a post-solution, followed by a
// separate narrowing iteration. Both phases run as round-robin sweeps. The
// narrowing phase assumes monotonic right-hand sides; on non-monotonic
// systems it may fail to terminate (bounded by the evaluation budget) or
// return a non-post-solution, which is exactly the deficiency the combined
// operator ⊟ removes.
func TwoPhase[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	res, err := twoPhases(init, cfg,
		func(op Operator[X, D], init func(X) D, cfg Config) (Result[X, D], error) {
			sigma, st, err := RR(sys, l, op, init, cfg)
			return Result[X, D]{Values: sigma, Stats: st}, err
		},
		Op[X](Widen(l)), Op[X](Narrow(l)))
	return res.Values, res.Stats, err
}
