package solver

import (
	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// RR is the round-robin solver of Fig. 1: it repeatedly sweeps over all
// unknowns in order, performing update steps σ[x] ← σ[x] ⊞ fₓ(σ), until a
// full sweep changes nothing. RR is a generic solver, but with ⊟ it may
// fail to terminate even on finite monotonic systems (Example 1); the
// bounds in cfg (budget, deadline, cancellation, oscillation watchdog) turn
// such divergence into an AbortError alongside the partial assignment.
//
// Stats.Rounds counts every sweep that performed at least one evaluation:
// a sweep cut short by an abort is counted, so Rounds stays consistent with
// Evals on bounded runs (an abort at an exact sweep boundary, before the
// first evaluation of the next sweep, does not start a new round).
func RR[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	wd := newWatchdog[X](cfg)
	op = instrument(wd, l, op)
	var st Stats
	sigma := make(map[X]D, sys.Len())
	for _, x := range sys.Order() {
		sigma[x] = init(x)
	}
	st.Unknowns = sys.Len()
	for {
		dirty := false
		evaled := false
		for _, x := range sys.Order() {
			if err := wd.check(st.Evals); err != nil {
				if evaled {
					st.Rounds++
				}
				return sigma, st, err
			}
			st.Evals++
			evaled = true
			next := op.Apply(x, sigma[x], sys.Eval(x, sigma, init))
			if !l.Eq(sigma[x], next) {
				sigma[x] = next
				st.Updates++
				dirty = true
			}
		}
		st.Rounds++
		if !dirty {
			return sigma, st, nil
		}
	}
}

// W is the worklist solver of Fig. 2 with a LIFO discipline: when the value
// of an unknown changes, all unknowns it influences (including itself, as a
// precaution for non-idempotent operators) are pushed. W is a generic
// solver, but with ⊟ it may fail to terminate even on finite monotonic
// systems (Example 2).
func W[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	wd := newWatchdog[X](cfg)
	op = instrument(wd, l, op)
	var st Stats
	sigma := make(map[X]D, sys.Len())
	for _, x := range sys.Order() {
		sigma[x] = init(x)
	}
	st.Unknowns = sys.Len()
	infl := sys.Infl()

	stack := make([]X, 0, sys.Len())
	present := make(map[X]bool, sys.Len())
	push := func(x X) {
		if !present[x] {
			present[x] = true
			stack = append(stack, x)
		}
	}
	// Push in reverse so that x₁ is on top initially, matching the paper's
	// trace W = [x₁, x₂] where x₁ is extracted first.
	order := sys.Order()
	for i := len(order) - 1; i >= 0; i-- {
		push(order[i])
	}
	st.MaxQueue = len(stack)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		present[x] = false
		if err := wd.check(st.Evals); err != nil {
			return sigma, st, err
		}
		st.Evals++
		next := op.Apply(x, sigma[x], sys.Eval(x, sigma, init))
		if !l.Eq(sigma[x], next) {
			sigma[x] = next
			st.Updates++
			deps := infl[x]
			for i := len(deps) - 1; i >= 0; i-- {
				push(deps[i])
			}
			if len(stack) > st.MaxQueue {
				st.MaxQueue = len(stack)
			}
		}
	}
	return sigma, st, nil
}

// SRR is the structured round-robin solver of Fig. 3: solve(i) first solves
// all unknowns x₁…xᵢ₋₁ recursively, then iterates on xᵢ until it
// stabilizes, re-solving the prefix before every update. SRR is a generic
// solver and, instantiated with ⊟, terminates for every finite monotonic
// system (Theorem 1) — with bounded lattice height it needs at most
// n + (h/2)·n·(n+1) evaluations.
func SRR[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	wd := newWatchdog[X](cfg)
	op = instrument(wd, l, op)
	var st Stats
	order := sys.Order()
	sigma := make(map[X]D, len(order))
	for _, x := range order {
		sigma[x] = init(x)
	}
	st.Unknowns = len(order)
	var solve func(i int) error
	solve = func(i int) error {
		if i == 0 {
			return nil
		}
		for {
			if err := solve(i - 1); err != nil {
				return err
			}
			x := order[i-1]
			if err := wd.check(st.Evals); err != nil {
				return err
			}
			st.Evals++
			next := op.Apply(x, sigma[x], sys.Eval(x, sigma, init))
			if l.Eq(sigma[x], next) {
				return nil
			}
			sigma[x] = next
			st.Updates++
		}
	}
	err := solve(len(order))
	return sigma, st, err
}

// SW is the structured worklist solver of Fig. 4: unknowns awaiting
// re-evaluation are kept in a priority queue ordered by their index in the
// given linear order, and the least unknown is extracted first. SW is a
// generic solver and, instantiated with ⊟, terminates for every finite
// monotonic system (Theorem 2).
func SW[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], op Operator[X, D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	wd := newWatchdog[X](cfg)
	op = instrument(wd, l, op)
	var st Stats
	order := sys.Order()
	sigma := make(map[X]D, len(order))
	idx := make(map[X]int, len(order))
	for i, x := range order {
		sigma[x] = init(x)
		idx[x] = i
	}
	st.Unknowns = len(order)
	infl := sys.Infl()

	q := newPQ[X]()
	for _, x := range order {
		q.push(x, int64(idx[x]))
	}
	st.MaxQueue = q.len()
	for !q.empty() {
		x := q.popMin()
		if err := wd.check(st.Evals); err != nil {
			return sigma, st, err
		}
		st.Evals++
		next := op.Apply(x, sigma[x], sys.Eval(x, sigma, init))
		if !l.Eq(sigma[x], next) {
			sigma[x] = next
			st.Updates++
			q.push(x, int64(idx[x]))
			for _, y := range infl[x] {
				q.push(y, int64(idx[y]))
			}
			if q.len() > st.MaxQueue {
				st.MaxQueue = q.len()
			}
		}
	}
	return sigma, st, nil
}

// TwoPhase is the classical Cousot–Cousot regime used as the paper's
// baseline: a complete widening iteration to a post-solution, followed by a
// separate narrowing iteration. Both phases run as round-robin sweeps. The
// narrowing phase assumes monotonic right-hand sides; on non-monotonic
// systems it may fail to terminate (bounded by the evaluation budget) or
// return a non-post-solution, which is exactly the deficiency the combined
// operator ⊟ removes.
func TwoPhase[X comparable, D any](sys *eqn.System[X, D], l lattice.Lattice[D], init func(X) D, cfg Config) (map[X]D, Stats, error) {
	res, err := twoPhases(init, cfg,
		func(op Operator[X, D], init func(X) D, cfg Config) (Result[X, D], error) {
			sigma, st, err := RR(sys, l, op, init, cfg)
			return Result[X, D]{Values: sigma, Stats: st}, err
		},
		Op[X](Widen(l)), Op[X](Narrow(l)))
	return res.Values, res.Stats, err
}
