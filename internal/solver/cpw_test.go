package solver

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"warrow/internal/certify"
	"warrow/internal/eqn"
	"warrow/internal/lattice"
)

// cpwWorkerMatrix is the worker grid every CPW property is checked on: the
// serial degenerate case, the even splits, and an oversubscribed pool.
var cpwWorkerMatrix = []int{1, 2, 4, 8}

// assertCPWCertified runs CPW across the worker matrix and holds each
// completed run to the certification gate — NOT to SW bit-identity, which
// chaotic scheduling deliberately forfeits (see the CPW doc comment).
func assertCPWCertified[X comparable, D any](t *testing.T, name string, sys *eqn.System[X, D], l lattice.Lattice[D], mkOp func() Operator[X, D], init func(X) D, cfg Config) {
	t.Helper()
	for _, workers := range cpwWorkerMatrix {
		ccfg := cfg
		ccfg.Workers = workers
		sigma, st, err := CPW(sys, l, mkOp(), init, ccfg)
		if err != nil {
			t.Fatalf("%s/workers=%d: %v", name, workers, err)
		}
		if rep := certify.System(l, sys, sigma, init); !rep.OK() {
			t.Fatalf("%s/workers=%d: %s", name, workers, rep)
		}
		if sys.Len() > 0 && st.Evals < sys.Len() {
			t.Errorf("%s/workers=%d: Evals = %d < %d unknowns", name, workers, st.Evals, sys.Len())
		}
	}
}

// ringSystem builds one giant SCC: n unknowns in a single dependence cycle,
// head counting up under a join with [0,0], one guard restricting below a
// bound so the descending (narrowing) phase has something to recover.
func ringSystem(n int) *eqn.System[int, iv] {
	l := lattice.Ints
	one := lattice.Singleton(1)
	bound := lattice.Singleton(int64(4 * n))
	sys := eqn.NewSystem[int, iv]()
	for i := 0; i < n; i++ {
		prev := (i + n - 1) % n
		switch i {
		case 0:
			sys.Define(i, []int{prev}, func(get func(int) iv) iv {
				return l.Join(lattice.Singleton(0), get(prev).Add(one))
			})
		case 1:
			sys.Define(i, []int{prev}, func(get func(int) iv) iv {
				return get(prev).RestrictLt(bound)
			})
		default:
			sys.Define(i, []int{prev}, func(get func(int) iv) iv {
				return get(prev).Add(one)
			})
		}
	}
	return sys
}

// TestCPWCertifiedOnTestSystems: the certification gate across the worker
// matrix on the solver suite's standard systems — the counting loop, the
// paper's Examples 1 and 2, an acyclic system, a giant single-SCC ring, and
// random monotone systems with non-topological definition orders.
func TestCPWCertifiedOnTestSystems(t *testing.T) {
	ints := lattice.Ints
	nat := lattice.NatInf
	cfg := Config{MaxEvals: 500_000}

	assertCPWCertified(t, "loop", loopSystem(), ints,
		func() Operator[string, iv] { return Op[string](Warrow[iv](ints)) }, ivInit, cfg)
	assertCPWCertified(t, "example1", example1System(), nat,
		func() Operator[string, lattice.Nat] { return natWarrow() }, zeroInit, cfg)
	assertCPWCertified(t, "example2", example2System(), nat,
		func() Operator[string, lattice.Nat] { return natWarrow() }, zeroInit, cfg)
	assertCPWCertified(t, "ring64", ringSystem(64), ints,
		func() Operator[int, iv] { return Op[int](Warrow[iv](ints)) },
		func(int) iv { return lattice.EmptyInterval }, Config{MaxEvals: 2_000_000})

	r := rand.New(rand.NewSource(977))
	for trial := 0; trial < 25; trial++ {
		n := 2 + r.Intn(12)
		sys := randMonotoneSystem(r, n)
		assertCPWCertified(t, fmt.Sprintf("rand%d", trial), sys, ints,
			func() Operator[int, iv] { return Op[int](Warrow[iv](ints)) },
			func(int) iv { return lattice.EmptyInterval }, Config{MaxEvals: 2_000_000})
	}
}

// TestCPWCertifiedAcrossCores: the same ring on all three core selections —
// CoreMap and CoreAuto route to the atomic-word engine, CoreDense to the
// atomic-pointer boxed engine — every run certified at every worker count.
func TestCPWCertifiedAcrossCores(t *testing.T) {
	l := lattice.Ints
	sys := ringSystem(48)
	init := func(int) iv { return lattice.EmptyInterval }
	for _, core := range []Core{CoreMap, CoreDense, CoreUnboxed, CoreAuto} {
		assertCPWCertified(t, fmt.Sprintf("ring/core=%v", core), sys, l,
			func() Operator[int, iv] { return Op[int](Warrow[iv](l)) },
			init, Config{MaxEvals: 2_000_000, Core: core})
	}
}

// TestCPWEmptySystem: zero unknowns is not a deadlock.
func TestCPWEmptySystem(t *testing.T) {
	sys := eqn.NewSystem[string, iv]()
	sigma, st, err := CPW(sys, lattice.Ints, Op[string](Warrow[iv](lattice.Ints)), ivInit, Config{Workers: 4})
	if err != nil || len(sigma) != 0 {
		t.Fatalf("σ = %v, err = %v", sigma, err)
	}
	if st.Strata != 0 {
		t.Errorf("Strata = %d, want 0", st.Strata)
	}
}

// TestCPWBudgetAbortIsResumable: workers hitting the shared budget surface
// ErrEvalBudget with the eval count clamped to the budget and a warm
// checkpoint attached; resuming the checkpoint (possibly through more
// budget exhaustions) eventually completes certified.
func TestCPWBudgetAbortIsResumable(t *testing.T) {
	l := lattice.Ints
	sys := ringSystem(40)
	init := func(int) iv { return lattice.EmptyInterval }
	for _, workers := range cpwWorkerMatrix {
		_, st, err := CPW(sys, l, Op[int](Warrow[iv](l)), init, Config{MaxEvals: 50, Workers: workers})
		if !errors.Is(err, ErrEvalBudget) {
			t.Fatalf("workers=%d: err = %v, want ErrEvalBudget", workers, err)
		}
		if st.Evals != 50 {
			t.Errorf("workers=%d: Evals = %d, want clamped to 50", workers, st.Evals)
		}
		cp, ok := CheckpointOf[int, iv](err)
		if !ok {
			t.Fatalf("workers=%d: budget abort carried no checkpoint", workers)
		}
		// Resume in bounded slices until completion.
		sigma := map[int]iv(nil)
		for slice := 0; ; slice++ {
			if slice > 10_000 {
				t.Fatalf("workers=%d: no completion after %d resume slices", workers, slice)
			}
			var rerr error
			sigma, _, rerr = CPW(sys, l, Op[int](Warrow[iv](l)), init,
				Config{MaxEvals: 997, Workers: workers, Resume: cp})
			if rerr == nil {
				break
			}
			if !errors.Is(rerr, ErrEvalBudget) {
				t.Fatalf("workers=%d: resume slice failed: %v", workers, rerr)
			}
			if cp, ok = CheckpointOf[int, iv](rerr); !ok {
				t.Fatalf("workers=%d: resumed abort carried no checkpoint", workers)
			}
		}
		if rep := certify.System(l, sys, sigma, init); !rep.OK() {
			t.Fatalf("workers=%d: resumed completion not certified: %s", workers, rep)
		}
	}
}

// TestCPWCheckpointCrossesCores: a checkpoint captured on one engine
// resumes on the other — boxed→unboxed and unboxed→boxed — and completes
// certified, like every other solver's checkpoints.
func TestCPWCheckpointCrossesCores(t *testing.T) {
	l := lattice.Ints
	sys := ringSystem(40)
	init := func(int) iv { return lattice.EmptyInterval }
	for _, dir := range []struct {
		name     string
		from, to Core
	}{
		{"boxed->unboxed", CoreDense, CoreUnboxed},
		{"unboxed->boxed", CoreUnboxed, CoreDense},
	} {
		_, _, err := CPW(sys, l, Op[int](Warrow[iv](l)), init,
			Config{MaxEvals: 60, Workers: 4, Core: dir.from})
		if !errors.Is(err, ErrEvalBudget) {
			t.Fatalf("%s: err = %v, want ErrEvalBudget", dir.name, err)
		}
		cp, ok := CheckpointOf[int, iv](err)
		if !ok {
			t.Fatalf("%s: no checkpoint", dir.name)
		}
		sigma, _, err := CPW(sys, l, Op[int](Warrow[iv](l)), init,
			Config{MaxEvals: 2_000_000, Workers: 4, Core: dir.to, Resume: cp})
		if err != nil {
			t.Fatalf("%s: resume failed: %v", dir.name, err)
		}
		if rep := certify.System(l, sys, sigma, init); !rep.OK() {
			t.Fatalf("%s: %s", dir.name, rep)
		}
	}
}

// TestCPWRejectsForeignCheckpoint: a checkpoint captured by another solver
// is refused with ErrBadCheckpoint, never silently reinterpreted.
func TestCPWRejectsForeignCheckpoint(t *testing.T) {
	l := lattice.Ints
	sys := ringSystem(24)
	init := func(int) iv { return lattice.EmptyInterval }
	_, _, err := SW(sys, l, Op[int](Warrow[iv](l)), init, Config{MaxEvals: 30})
	if !errors.Is(err, ErrEvalBudget) {
		t.Fatalf("sw: err = %v, want ErrEvalBudget", err)
	}
	cp, ok := CheckpointOf[int, iv](err)
	if !ok {
		t.Fatal("sw abort carried no checkpoint")
	}
	_, _, err = CPW(sys, l, Op[int](Warrow[iv](l)), init, Config{Workers: 2, Resume: cp})
	if !errors.Is(err, ErrBadCheckpoint) {
		t.Fatalf("cpw resumed a %q checkpoint: err = %v, want ErrBadCheckpoint", cp.Solver, err)
	}
}

// TestCPWNonMonotoneBudgetEnvelope: on the divergent non-monotone
// oscillator farm CPW neither hangs nor lies — it exhausts the budget and
// aborts with a resumable checkpoint at every worker count, the same
// posture SW and PSW take.
func TestCPWNonMonotoneBudgetEnvelope(t *testing.T) {
	l := lattice.Ints
	sys := oscillatorFarm(6)
	for _, workers := range cpwWorkerMatrix {
		_, st, err := CPW(sys, l, Op[string](Warrow[iv](l)), ivInit,
			Config{MaxEvals: 5000, Workers: workers})
		if !errors.Is(err, ErrEvalBudget) {
			t.Fatalf("workers=%d: err = %v, want ErrEvalBudget", workers, err)
		}
		if st.Evals != 5000 {
			t.Errorf("workers=%d: Evals = %d, want clamped to 5000", workers, st.Evals)
		}
		if _, ok := CheckpointOf[string, iv](err); !ok {
			t.Fatalf("workers=%d: no checkpoint on non-monotone abort", workers)
		}
	}
}

// TestCPWMaxQueueIsMaxOverShards is the merge-semantics regression of the
// sharded worklist: on one giant SCC of n unknowns with S shards, home-shard
// pushing plus the claim protocol bound every shard's high-water mark by
// ⌈n/S⌉ — so the reported MaxQueue must respect that bound. An
// implementation that SUMMED shard marks (the bug this test pre-dates and
// pins) would report ≈n at seed time, when every shard is full at once.
func TestCPWMaxQueueIsMaxOverShards(t *testing.T) {
	l := lattice.Ints
	n, workers := 64, 4
	sys := ringSystem(n)
	init := func(int) iv { return lattice.EmptyInterval }
	sigma, st, err := CPW(sys, l, Op[int](Warrow[iv](l)), init,
		Config{MaxEvals: 2_000_000, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	if rep := certify.System(l, sys, sigma, init); !rep.OK() {
		t.Fatal(rep)
	}
	bound := (n + workers - 1) / workers
	if st.MaxQueue <= 0 || st.MaxQueue > bound {
		t.Errorf("MaxQueue = %d, want in (0, %d]: shard marks must merge by max, not sum", st.MaxQueue, bound)
	}
}

// TestShardQueueMaxHigh: the merge helper itself — unbalanced pushes across
// shards report the largest stack, never the total.
func TestShardQueueMaxHigh(t *testing.T) {
	q := newShardQueue(10, 21, 3) // window [10,21], 3 shards
	// Home shards: (i-10)%3 — fill shard 0 with 4 elements, shard 1 with 2,
	// shard 2 with 1.
	for _, i := range []int{10, 13, 16, 19, 11, 14, 12} {
		q.push(i)
	}
	if got := q.maxShardHigh(); got != 4 {
		t.Fatalf("maxShardHigh = %d, want 4 (sum would be 7)", got)
	}
	// Draining does not lower the high-water mark.
	seen := map[int]bool{}
	for {
		i, ok := q.pop(0)
		if !ok {
			break
		}
		if seen[i] {
			t.Fatalf("index %d popped twice", i)
		}
		seen[i] = true
	}
	if len(seen) != 7 {
		t.Fatalf("drained %d elements, want 7", len(seen))
	}
	if got := q.maxShardHigh(); got != 4 {
		t.Fatalf("maxShardHigh after drain = %d, want 4", got)
	}
}

// TestShardQueueStealing: a worker whose own shard is empty steals from the
// others instead of reporting emptiness.
func TestShardQueueStealing(t *testing.T) {
	q := newShardQueue(0, 7, 4)
	q.push(1) // home shard 1
	if i, ok := q.pop(3); !ok || i != 1 {
		t.Fatalf("pop(3) = %d,%v, want stolen 1,true", i, ok)
	}
	if _, ok := q.pop(0); ok {
		t.Fatal("pop on empty queue reported an element")
	}
}

// TestCPWStatsShape: topology fields mirror PSW's, the per-worker eval
// histogram accounts for every configured worker, and the contention
// counter is wired (non-negative; usually positive is schedule-dependent,
// so only the histogram total is pinned).
func TestCPWStatsShape(t *testing.T) {
	l := lattice.Ints
	sys := ringSystem(32)
	init := func(int) iv { return lattice.EmptyInterval }
	_, st, err := CPW(sys, l, Op[int](Warrow[iv](l)), init, Config{MaxEvals: 2_000_000, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.Workers != 4 {
		t.Errorf("Workers = %d, want 4", st.Workers)
	}
	if st.SCCs != 1 || st.Strata != 1 {
		t.Errorf("SCCs,Strata = %d,%d, want 1,1 (one giant SCC)", st.SCCs, st.Strata)
	}
	if st.Unknowns != 32 {
		t.Errorf("Unknowns = %d, want 32", st.Unknowns)
	}
	total := 0
	for _, c := range st.WorkerEvals {
		total += c
	}
	if total != 4 {
		t.Errorf("WorkerEvals accounts for %d workers, want 4 (hist %v)", total, st.WorkerEvals)
	}
	if st.Contention < 0 {
		t.Errorf("Contention = %d, want ≥ 0", st.Contention)
	}
	if st.WallNs <= 0 {
		t.Errorf("WallNs = %d, want > 0", st.WallNs)
	}
}

// TestCPWDegradingSingleWorker: the stateful Degrading operator remains
// usable at Workers == 1 (the documented requirement), where CPW is a
// chaotic-order but single-threaded iteration.
func TestCPWDegradingSingleWorker(t *testing.T) {
	l := lattice.Ints
	sys := ringSystem(16)
	init := func(int) iv { return lattice.EmptyInterval }
	sigma, _, err := CPW(sys, l, NewDegrading[int, iv](l, 2), init, Config{MaxEvals: 2_000_000, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep := certify.System(l, sys, sigma, init); !rep.OK() {
		t.Fatal(rep)
	}
}
